(* Tests for the adversarial-injection substrate: the leaky bucket (with the
   windowed-constraint property the whole model rests on), injection
   patterns, pacing disciplines and the impossibility-proof saboteurs. *)

open Mac_adversary

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ---- Leaky bucket ---- *)

let test_bucket_initial_grant () =
  let b = Leaky_bucket.create ~rate:0.5 ~burst:3.0 in
  check_int "initial grant = floor(rate+burst)" 3 (Leaky_bucket.grant b)

let test_bucket_consume_refill () =
  let b = Leaky_bucket.create ~rate:0.5 ~burst:3.0 in
  Leaky_bucket.consume b 3;
  Leaky_bucket.advance b;
  check_int "after one refill" 1 (Leaky_bucket.grant b);
  Leaky_bucket.advance b;
  check_int "after two refills" 1 (Leaky_bucket.grant b)

let test_bucket_clamp () =
  let b = Leaky_bucket.create ~rate:0.5 ~burst:3.0 in
  for _ = 1 to 100 do Leaky_bucket.advance b done;
  check_int "clamped at rate+burst" 3 (Leaky_bucket.grant b)

let test_bucket_overdraw_rejected () =
  let b = Leaky_bucket.create ~rate:0.5 ~burst:1.0 in
  Alcotest.check_raises "overdraw" (Invalid_argument "Leaky_bucket.consume")
    (fun () -> Leaky_bucket.consume b 10)

let test_bucket_bad_args () =
  Alcotest.check_raises "rate 0" (Invalid_argument "Leaky_bucket: rate must be in (0, 1]")
    (fun () -> ignore (Leaky_bucket.create ~rate:0.0 ~burst:1.0));
  Alcotest.check_raises "burst" (Invalid_argument "Leaky_bucket: burst must be >= 1")
    (fun () -> ignore (Leaky_bucket.create ~rate:0.5 ~burst:0.5))

(* The defining property: for every greedy trace and every window [s, t],
   injections <= rate * len + burst — checked in exact arithmetic, with no
   rounding slack, over random rational types. *)
let bucket_window_property =
  let open Mac_channel in
  QCheck.Test.make ~name:"bucket_respects_every_window" ~count:100
    QCheck.(quad (int_range 1 32) (int_range 1 32) (int_range 1 7) (int_range 2 32))
    (fun (rn, rd, bi, bd) ->
      let rate = Qrat.make (min rn rd) rd in
      let burst = Qrat.add (Qrat.of_int bi) (Qrat.make 1 bd) in
      let b = Leaky_bucket.create_q ~rate ~burst in
      let horizon = 200 in
      let taken = Array.make horizon 0 in
      for t = 0 to horizon - 1 do
        let g = Leaky_bucket.grant b in
        (* adversarial: sometimes hold back to build credit *)
        let use = if t mod 7 = 3 then 0 else g in
        Leaky_bucket.consume b use;
        taken.(t) <- use;
        Leaky_bucket.advance b
      done;
      let ok = ref true in
      for s = 0 to horizon - 1 do
        let sum = ref 0 in
        for t = s to horizon - 1 do
          sum := !sum + taken.(t);
          let bound = Qrat.add (Qrat.mul_int rate (t - s + 1)) burst in
          if Qrat.compare (Qrat.of_int !sum) bound > 0 then ok := false
        done
      done;
      !ok)

(* ---- Patterns ---- *)

let dummy = View.dummy ~n:8

let no_self_pairs name pattern =
  Alcotest.test_case name `Quick (fun () ->
      for round = 0 to 50 do
        List.iter
          (fun (src, dst) ->
            check_bool "src<>dst" true (src <> dst);
            check_bool "in range" true
              (src >= 0 && src < 8 && dst >= 0 && dst < 8))
          (pattern.Pattern.generate ~round ~budget:3 ~view:dummy)
      done)

let test_pattern_budget () =
  let p = Pattern.uniform ~n:8 ~seed:1 in
  check_int "respects budget" 5
    (List.length (p.Pattern.generate ~round:0 ~budget:5 ~view:dummy));
  check_int "zero budget" 0
    (List.length (p.Pattern.generate ~round:0 ~budget:0 ~view:dummy))

let test_flood_targets_victim () =
  let p = Pattern.flood ~n:8 ~victim:3 in
  let pairs = p.Pattern.generate ~round:0 ~budget:14 ~view:dummy in
  List.iter (fun (src, _) -> check_int "into victim" 3 src) pairs;
  (* destinations cycle over all other stations *)
  let dsts = List.sort_uniq compare (List.map snd pairs) in
  check_int "covers all other stations" 7 (List.length dsts)

let test_pair_flood () =
  let p = Pattern.pair_flood ~src:2 ~dst:5 in
  List.iter
    (fun pr -> Alcotest.(check (pair int int)) "fixed pair" (2, 5) pr)
    (p.Pattern.generate ~round:9 ~budget:4 ~view:dummy);
  Alcotest.check_raises "src=dst rejected"
    (Invalid_argument "Pattern.pair_flood: src = dst") (fun () ->
      ignore (Pattern.pair_flood ~src:1 ~dst:1))

let test_alternating_parity () =
  let p = Pattern.alternating ~src:0 ~dst_odd:1 ~dst_even:2 in
  (match p.Pattern.generate ~round:3 ~budget:1 ~view:dummy with
   | [ (0, 1) ] -> ()
   | _ -> Alcotest.fail "odd round should target dst_odd");
  match p.Pattern.generate ~round:4 ~budget:1 ~view:dummy with
  | [ (0, 2) ] -> ()
  | _ -> Alcotest.fail "even round should target dst_even"

let test_mix_draws_from_both () =
  let p =
    Pattern.mix ~seed:5
      [ (1, Pattern.pair_flood ~src:0 ~dst:1); (1, Pattern.pair_flood ~src:2 ~dst:3) ]
  in
  let seen01 = ref false and seen23 = ref false in
  for round = 0 to 100 do
    List.iter
      (fun pair ->
        if pair = (0, 1) then seen01 := true;
        if pair = (2, 3) then seen23 := true)
      (p.Pattern.generate ~round ~budget:2 ~view:dummy)
  done;
  check_bool "both sources drawn" true (!seen01 && !seen23)

let test_mix_rejects_bad_weights () =
  Alcotest.check_raises "weight" (Invalid_argument "Pattern.mix: weight")
    (fun () ->
      ignore (Pattern.mix ~seed:1 [ (0, Pattern.pair_flood ~src:0 ~dst:1) ]))

let test_duty_cycle_gaps () =
  let p = Pattern.duty_cycle ~busy:3 ~idle:7 (Pattern.pair_flood ~src:0 ~dst:1) in
  for round = 0 to 40 do
    let injections = p.Pattern.generate ~round ~budget:1 ~view:dummy in
    if round mod 10 < 3 then
      check_int (Printf.sprintf "busy round %d" round) 1 (List.length injections)
    else check_int (Printf.sprintf "idle round %d" round) 0 (List.length injections)
  done

let test_one_shot_fires_once () =
  let p = Pattern.one_shot ~at:5 ~src:1 ~dst:2 in
  let total = ref 0 in
  for round = 0 to 20 do
    total := !total + List.length (p.Pattern.generate ~round ~budget:3 ~view:dummy)
  done;
  check_int "exactly one packet" 1 !total;
  match p.Pattern.generate ~round:5 ~budget:3 ~view:dummy with
  | [] -> ()
  | _ -> Alcotest.fail "must not fire twice even when asked again"

let test_to_busiest_follows_queues () =
  let view =
    { dummy with View.queue_size = (fun i -> if i = 4 then 10 else 0) }
  in
  let p = Pattern.to_busiest ~n:8 in
  List.iter
    (fun (src, _) -> check_int "into busiest" 4 src)
    (p.Pattern.generate ~round:0 ~budget:3 ~view)

(* ---- Adversary pacing ---- *)

let count_injections driver ~rounds =
  let total = ref 0 in
  let per_round = Array.make rounds 0 in
  for r = 0 to rounds - 1 do
    let view = { dummy with View.round = r } in
    let injected = List.length (Adversary.inject driver ~view) in
    per_round.(r) <- injected;
    total := !total + injected
  done;
  (!total, per_round)

let test_greedy_sustains_rate () =
  let adv = Adversary.create ~rate:0.5 ~burst:4.0 (Pattern.uniform ~n:8 ~seed:2) in
  let total, per_round = count_injections (Adversary.start adv) ~rounds:1000 in
  check_bool "close to rate*rounds+burst" true (total >= 495 && total <= 505);
  check_int "initial burst" 4 per_round.(0)

let test_paced_holds_reserve () =
  let adv =
    Adversary.create ~rate:0.5 ~burst:6.0
      ~pacing:(Adversary.Paced { burst_at = Some 100 })
      (Pattern.uniform ~n:8 ~seed:3)
  in
  let total, per_round = count_injections (Adversary.start adv) ~rounds:200 in
  check_int "steady start" 0 per_round.(0);
  check_bool "burst lands at 100" true (per_round.(100) >= 6);
  check_bool "rate+burst total" true (total >= 100 && total <= 107)

let test_injection_never_exceeds_bucket () =
  let adv = Adversary.create ~rate:0.3 ~burst:2.0 (Pattern.flood ~n:8 ~victim:1) in
  let total, _ = count_injections (Adversary.start adv) ~rounds:500 in
  check_bool "<= rate*t+burst" true (float_of_int total <= (0.3 *. 500.0) +. 2.0)

(* ---- Saboteurs ---- *)

let test_min_duty_picks_least_on () =
  (* schedule: station i is on iff round mod 8 < i+1 — station 0 has the
     least duty. *)
  let schedule ~me ~round = round mod 8 < me + 1 in
  let choice = Saboteur.min_duty ~n:8 ~horizon:800 ~schedule in
  let pairs = choice.Saboteur.pattern.Pattern.generate ~round:0 ~budget:3 ~view:dummy in
  List.iter (fun (src, _) -> check_int "floods min-duty station" 0 src) pairs

let test_min_pair_picks_least_coduty () =
  (* stations 0 and 1 are never on together; all other pairs co-occur. *)
  let schedule ~me ~round =
    match me with
    | 0 -> round mod 2 = 0
    | 1 -> round mod 2 = 1
    | _ -> true
  in
  let choice = Saboteur.min_pair ~n:5 ~horizon:100 ~schedule in
  match choice.Saboteur.pattern.Pattern.generate ~round:0 ~budget:1 ~view:dummy with
  | [ (0, 1) ] -> ()
  | [ (w, z) ] -> Alcotest.failf "expected pair (0,1), got (%d,%d)" w z
  | _ -> Alcotest.fail "expected one injection"

let test_cap2_breaker_injects_into_helper () =
  let choice = Saboteur.cap2_breaker ~n:5 in
  let view = View.dummy ~n:5 in
  (* witness starts at n-1 = 4; helpers are 0 and 1. *)
  (match choice.Saboteur.pattern.Pattern.generate ~round:0 ~budget:1 ~view with
   | [ (0, 1) ] -> ()
   | _ -> Alcotest.fail "expected injection 0 -> 1");
  Alcotest.check_raises "needs n >= 3"
    (Invalid_argument "Saboteur.cap2_breaker: needs n >= 3") (fun () ->
      ignore (Saboteur.cap2_breaker ~n:2))

let test_cap2_breaker_minimum_n () =
  (* n = 3 is the smallest population with a witness plus two helpers:
     witness 2, helpers 0 and 1. *)
  let choice = Saboteur.cap2_breaker ~n:3 in
  let view = View.dummy ~n:3 in
  (match choice.Saboteur.pattern.Pattern.generate ~round:0 ~budget:1 ~view with
   | [ (0, 1) ] -> ()
   | _ -> Alcotest.fail "expected injection 0 -> 1 at n = 3");
  Alcotest.check_raises "n = 0 rejected"
    (Invalid_argument "Saboteur.cap2_breaker: needs n >= 3") (fun () ->
      ignore (Saboteur.cap2_breaker ~n:0))

let test_cap2_breaker_moves_witness () =
  let choice = Saboteur.cap2_breaker ~n:5 in
  (* witness 4 wakes; station 3 is clean and off -> becomes the witness, so
     helpers stay 0,1. Then 0 wakes too: witness must move again and the
     helpers shift. *)
  let view_wake4 =
    { (View.dummy ~n:5) with View.was_on = (fun i -> i = 4) }
  in
  ignore (choice.Saboteur.pattern.Pattern.generate ~round:1 ~budget:1 ~view:view_wake4);
  let view_wake3 =
    { (View.dummy ~n:5) with View.was_on = (fun i -> i = 3) }
  in
  match choice.Saboteur.pattern.Pattern.generate ~round:2 ~budget:1 ~view:view_wake3 with
  | [ (s1, s2) ] ->
    check_bool "helpers avoid the new witness" true (s1 <> 4 && s2 <> 4 && s1 <> s2)
  | _ -> Alcotest.fail "expected one injection"

(* ---- drift regression ----

   The bucket's grant schedule under paced consumption (at most one packet
   a round, the discipline where the exact token value hits integer
   boundaries every 1/rho rounds), pinned against an integer recurrence
   over the rate's own denominator: tokens are tracked as a numerator, so
   every comparison is exact. The same loop drives a float
   re-implementation of the pre-fix bucket; its schedule must demonstrably
   drift — if it ever stops drifting, the regression test itself has lost
   its teeth. The discipline and the per-rate burst are chosen where the
   float orbit demonstrably drifts: under greedy full-grant consumption —
   and at rho=1/3 with burst 2 even under pacing — the float residue
   settles into a periodic orbit whose errors cancel at every grant
   boundary (round-to-even on the 3*fr tie), hiding the bug. *)

let drift_case ~rate_num ~rate_den ~burst_int () =
  let rounds = 1_000_000 in
  let den = rate_den in
  let cap = rate_num + (burst_int * den) in
  let bucket =
    Leaky_bucket.create_q
      ~rate:(Mac_channel.Qrat.make rate_num rate_den)
      ~burst:(Mac_channel.Qrat.of_int burst_int)
  in
  let tokens = ref cap in
  let fr = float_of_int rate_num /. float_of_int rate_den in
  let fcap = fr +. float_of_int burst_int in
  let ftokens = ref fcap in
  let bucket_mismatch = ref 0 and float_mismatch = ref 0 in
  for _ = 1 to rounds do
    let g = min 1 (!tokens / den) in
    tokens := min cap (!tokens - (g * den) + rate_num);
    let gb = min 1 (Leaky_bucket.grant bucket) in
    Leaky_bucket.consume bucket gb;
    Leaky_bucket.advance bucket;
    if gb <> g then incr bucket_mismatch;
    let gf = min 1 (int_of_float (Float.floor !ftokens)) in
    ftokens := Float.min fcap (!ftokens -. float_of_int gf +. fr);
    if gf <> g then incr float_mismatch
  done;
  check_int
    (Printf.sprintf "rho=%d/%d: bucket grant schedule is exact over %d rounds"
       rate_num rate_den rounds)
    0 !bucket_mismatch;
  check_bool
    (Printf.sprintf
       "rho=%d/%d: the float bucket drifts (the pre-fix bug is observable)"
       rate_num rate_den)
    true
    (!float_mismatch > 0)

let () =
  Alcotest.run "adversary"
    [ ("leaky-bucket",
       [ Alcotest.test_case "initial grant" `Quick test_bucket_initial_grant;
         Alcotest.test_case "consume/refill" `Quick test_bucket_consume_refill;
         Alcotest.test_case "clamp" `Quick test_bucket_clamp;
         Alcotest.test_case "overdraw" `Quick test_bucket_overdraw_rejected;
         Alcotest.test_case "bad args" `Quick test_bucket_bad_args;
         Alcotest.test_case "drift regression rho=1/10" `Quick
           (drift_case ~rate_num:1 ~rate_den:10 ~burst_int:2);
         Alcotest.test_case "drift regression rho=1/3" `Quick
           (drift_case ~rate_num:1 ~rate_den:3 ~burst_int:1);
         QCheck_alcotest.to_alcotest bucket_window_property ]);
      ("patterns",
       [ no_self_pairs "uniform valid" (Pattern.uniform ~n:8 ~seed:1);
         no_self_pairs "flood valid" (Pattern.flood ~n:8 ~victim:3);
         no_self_pairs "round-robin valid" (Pattern.round_robin ~n:8);
         no_self_pairs "hotspot valid" (Pattern.hotspot ~n:8 ~seed:4 ~hot:2 ~bias:0.5);
         Alcotest.test_case "budget" `Quick test_pattern_budget;
         Alcotest.test_case "flood victim" `Quick test_flood_targets_victim;
         Alcotest.test_case "pair flood" `Quick test_pair_flood;
         Alcotest.test_case "alternating" `Quick test_alternating_parity;
         Alcotest.test_case "mix" `Quick test_mix_draws_from_both;
         Alcotest.test_case "mix bad weights" `Quick test_mix_rejects_bad_weights;
         Alcotest.test_case "duty cycle" `Quick test_duty_cycle_gaps;
         Alcotest.test_case "one shot" `Quick test_one_shot_fires_once;
         Alcotest.test_case "to-busiest" `Quick test_to_busiest_follows_queues ]);
      ("pacing",
       [ Alcotest.test_case "greedy" `Quick test_greedy_sustains_rate;
         Alcotest.test_case "paced reserve" `Quick test_paced_holds_reserve;
         Alcotest.test_case "bucket cap" `Quick test_injection_never_exceeds_bucket ]);
      ("saboteurs",
       [ Alcotest.test_case "min-duty" `Quick test_min_duty_picks_least_on;
         Alcotest.test_case "min-pair" `Quick test_min_pair_picks_least_coduty;
         Alcotest.test_case "cap2 helper" `Quick test_cap2_breaker_injects_into_helper;
         Alcotest.test_case "cap2 minimum n" `Quick test_cap2_breaker_minimum_n;
         Alcotest.test_case "cap2 witness moves" `Quick test_cap2_breaker_moves_witness ]) ]
