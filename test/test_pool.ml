(* The worker pool: order-preserving map semantics, exactly-once
   execution, exception propagation, and — the property the experiment
   suites rely on — bit-identical parallel runs of the full Table-1
   scenario list, down to the recorded event streams. *)

module Pool = Mac_sim.Pool

let check_int = Alcotest.(check int)

(* ---- map semantics ---- *)

let test_map_matches_list_map () =
  let xs = List.init 100 (fun i -> i) in
  let f x = (x * x) + 1 in
  List.iter
    (fun jobs ->
      Alcotest.(check (list int))
        (Printf.sprintf "jobs=%d" jobs)
        (List.map f xs) (Pool.map ~jobs xs f))
    [ 1; 2; 4; 7; 64 ]

let test_map_empty_and_defaults () =
  Alcotest.(check (list int)) "empty" [] (Pool.map ~jobs:4 [] (fun x -> x));
  check_int "singleton" 1 (List.length (Pool.map ~jobs:8 [ () ] (fun () -> 0)));
  Alcotest.(check bool) "default_jobs >= 1" true (Pool.default_jobs () >= 1)

let test_map_rejects_bad_jobs () =
  Alcotest.check_raises "jobs=0"
    (Invalid_argument "Pool.map: jobs must be >= 1") (fun () ->
      ignore (Pool.map ~jobs:0 [ 1 ] (fun x -> x)))

(* ---- exactly-once execution ---- *)

let test_exactly_once () =
  List.iter
    (fun jobs ->
      let m = 200 in
      let counts = Array.init m (fun _ -> Atomic.make 0) in
      let results =
        Pool.map ~jobs
          (List.init m (fun i -> i))
          (fun i ->
            Atomic.incr counts.(i);
            i)
      in
      Alcotest.(check (list int))
        (Printf.sprintf "results in order (jobs=%d)" jobs)
        (List.init m (fun i -> i))
        results;
      Array.iteri
        (fun i c ->
          check_int (Printf.sprintf "item %d ran once (jobs=%d)" i jobs) 1
            (Atomic.get c))
        counts)
    [ 1; 4; 64 ]

(* ---- exception propagation ---- *)

exception Boom of int

let test_exception_propagates () =
  List.iter
    (fun jobs ->
      Alcotest.check_raises
        (Printf.sprintf "Boom propagates (jobs=%d)" jobs)
        (Boom 7)
        (fun () ->
          ignore
            (Pool.map ~jobs
               (List.init 20 (fun i -> i))
               (fun i -> if i = 7 then raise (Boom 7) else i))))
    [ 1; 4 ]

let test_clean_after_failure () =
  (* A failed batch leaves nothing behind: the same pool function works
     immediately afterwards, and no job of the failed batch runs twice. *)
  let ran = Array.init 50 (fun _ -> Atomic.make 0) in
  (try
     ignore
       (Pool.map ~jobs:4
          (List.init 50 (fun i -> i))
          (fun i ->
            Atomic.incr ran.(i);
            if i = 0 then raise (Boom 0);
            i))
   with Boom 0 -> ());
  Array.iteri
    (fun i c ->
      Alcotest.(check bool)
        (Printf.sprintf "item %d at most once" i)
        true
        (Atomic.get c <= 1))
    ran;
  Alcotest.(check (list int))
    "pool usable after failure" [ 0; 2; 4 ]
    (Pool.map ~jobs:4 [ 0; 1; 2 ] (fun x -> 2 * x))

(* ---- parallel Table-1 is bit-identical to sequential ---- *)

(* Observer recording every scenario's full event stream (as serialised
   JSON, round included) into a table keyed by scenario id. Scenario.run
   closes the sink when the run finishes; parallel runs hit the table
   from several domains, hence the mutex. *)
let recording_observer () =
  let tbl : (string, string list) Hashtbl.t = Hashtbl.create 64 in
  let calls : (string, int) Hashtbl.t = Hashtbl.create 64 in
  let mu = Mutex.create () in
  let observe ~id =
    Mutex.lock mu;
    Hashtbl.replace calls id (1 + Option.value ~default:0 (Hashtbl.find_opt calls id));
    Mutex.unlock mu;
    let buf = ref [] in
    Some
      (Mac_sim.Sink.make
         ~close:(fun () ->
           Mutex.lock mu;
           Hashtbl.replace tbl id (List.rev !buf);
           Mutex.unlock mu)
         (fun ~round ev -> buf := Mac_channel.Event.to_json ~round ev :: !buf))
  in
  (observe, tbl, calls)

let test_table1_parallel_bit_identical () =
  List.iter
    (fun (exp : Mac_experiments.Table1.t) ->
      let obs_seq, events_seq, calls_seq = recording_observer () in
      let obs_par, events_par, calls_par = recording_observer () in
      let seq = exp.run ~observe:obs_seq ~jobs:1 ~scale:`Quick () in
      let par = exp.run ~observe:obs_par ~jobs:4 ~scale:`Quick () in
      check_int (exp.id ^ ": outcome count") (List.length seq) (List.length par);
      List.iter2
        (fun (a : Mac_experiments.Scenario.outcome) b ->
          Alcotest.(check string)
            (exp.id ^ "/" ^ a.spec.id ^ ": outcome row")
            (Mac_experiments.Scenario.outcome_json ~experiment:exp.id a)
            (Mac_experiments.Scenario.outcome_json ~experiment:exp.id b))
        seq par;
      Hashtbl.iter
        (fun id count -> check_int (id ^ ": observed once sequentially") 1 count)
        calls_seq;
      Hashtbl.iter
        (fun id count -> check_int (id ^ ": observed once in parallel") 1 count)
        calls_par;
      check_int (exp.id ^ ": stream count")
        (Hashtbl.length events_seq) (Hashtbl.length events_par);
      Hashtbl.iter
        (fun id stream ->
          Alcotest.(check (list string))
            (exp.id ^ "/" ^ id ^ ": event stream")
            stream
            (Option.value ~default:[] (Hashtbl.find_opt events_par id)))
        events_seq)
    Mac_experiments.Table1.all

let () =
  Alcotest.run "pool"
    [ ("map",
       [ Alcotest.test_case "matches List.map" `Quick test_map_matches_list_map;
         Alcotest.test_case "empty and defaults" `Quick test_map_empty_and_defaults;
         Alcotest.test_case "rejects jobs < 1" `Quick test_map_rejects_bad_jobs ]);
      ("exactly-once",
       [ Alcotest.test_case "every job runs once" `Quick test_exactly_once ]);
      ("failure",
       [ Alcotest.test_case "exception propagates" `Quick test_exception_propagates;
         Alcotest.test_case "clean after failure" `Quick test_clean_after_failure ]);
      ("determinism",
       [ Alcotest.test_case "table1 parallel = sequential" `Quick
           test_table1_parallel_bit_identical ]) ]
