(* Tests for the serve layer: the protocol JSON codec, trace files, engine
   sessions, and the daemon itself driven in-process over its Unix socket —
   including the acceptance anchor that externally-injected replay is
   byte-identical (events and summary) to the equivalent batch run, even
   across shard crashes and a daemon drain/restart. *)

module J = Mac_serve.Jsonv
module E = Mac_sim.Engine
module Client = Mac_serve.Client

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

let temp_dir prefix =
  let dir = Filename.temp_file prefix "" in
  Sys.remove dir;
  Sys.mkdir dir 0o755;
  dir

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let contains hay needle =
  let hl = String.length hay and nl = String.length needle in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  nl = 0 || go 0

(* ---- jsonv ---- *)

let test_jsonv_roundtrip () =
  let v =
    J.Obj
      [ ("cmd", J.Str "open");
        ("n", J.Int 6);
        ("rate", J.Float 0.5);
        ("neg", J.Int (-3));
        ("flags", J.List [ J.Bool true; J.Bool false; J.Null ]);
        ("nested", J.Obj [ ("s", J.Str "a\"b\\c\nd\te") ]);
        ("empty", J.List []) ]
  in
  let s = J.to_string v in
  check_bool "single line" false (String.contains s '\n');
  (match J.parse s with
   | Ok v' -> check_bool "roundtrip" true (v = v')
   | Error msg -> Alcotest.fail ("roundtrip parse: " ^ msg));
  check_int "member/to_int" 6
    (Option.get (Option.bind (J.member "n" v) J.to_int));
  check_bool "member on non-obj" true (J.member "x" (J.Int 1) = None)

let test_jsonv_rejects_malformed () =
  List.iter
    (fun s ->
      match J.parse s with
      | Ok _ -> Alcotest.fail (Printf.sprintf "accepted malformed %S" s)
      | Error _ -> ())
    [ "";
      "{";
      "[1,";
      "[1,]";
      "{\"a\":}";
      "{\"a\" 1}";
      "tru";
      "nul";
      "\"unterminated";
      "1 2";
      "{} trailing" ]

(* ---- trace files ---- *)

let test_trace_file_roundtrip () =
  let path = Filename.temp_file "eear_trace" ".txt" in
  let items = [ (0, 0, 3); (5, 2, 1); (5, 1, 2); (99, 3, 0) ] in
  Mac_serve.Trace_file.save ~path items;
  (match Mac_serve.Trace_file.load ~n:4 ~path () with
   | Ok got -> check_bool "roundtrip" true (got = items)
   | Error msg -> Alcotest.fail msg);
  (* the same file must fail validation under a smaller n *)
  (match Mac_serve.Trace_file.load ~n:3 ~path () with
   | Ok _ -> Alcotest.fail "accepted out-of-range station"
   | Error _ -> ());
  Sys.remove path

let test_trace_file_rejects_bad_lines () =
  let write_lines lines =
    let path = Filename.temp_file "eear_trace" ".txt" in
    let oc = open_out path in
    List.iter (fun l -> output_string oc (l ^ "\n")) lines;
    close_out oc;
    path
  in
  let expect_error lines =
    let path = write_lines lines in
    (match Mac_serve.Trace_file.load ~path () with
     | Ok _ ->
       Alcotest.fail
         (Printf.sprintf "accepted %S" (String.concat "; " lines))
     | Error _ -> ());
    Sys.remove path
  in
  expect_error [ "0 1 1" ];
  expect_error [ "0 -1 2" ];
  expect_error [ "zero 1 2" ];
  expect_error [ "0 1" ];
  (* comments and blank lines are fine *)
  let path = write_lines [ "# header"; ""; "0 0 1"; "  # indented comment" ] in
  (match Mac_serve.Trace_file.load ~n:2 ~path () with
   | Ok got -> check_bool "comments skipped" true (got = [ (0, 0, 1) ])
   | Error msg -> Alcotest.fail msg);
  Sys.remove path

(* ---- shared fixtures: a tiny externally-fed orchestra channel ---------- *)

let trace6 =
  [ (0, 0, 1); (0, 2, 0); (3, 1, 4); (10, 3, 2); (50, 4, 5); (120, 5, 0);
    (121, 0, 5); (300, 2, 3) ]

(* The batch-mode reference: same engine configuration [adopt_channel]
   builds (minus the telemetry probe, whose frames the spool filters out),
   driven by the closed-loop [Engine.run]. The serve daemon's spool and
   summary must match these bytes exactly. *)
let batch_reference ~n ~k ~rounds ~drain ~trace =
  let module A = Mac_routing.Orchestra in
  let _feed, pattern = Mac_adversary.Pattern.external_queue ~initial:trace () in
  let adversary =
    Mac_adversary.Adversary.create_q
      ~rate:(Mac_channel.Qrat.make 1 2)
      ~burst:(Mac_channel.Qrat.of_int 2)
      pattern
  in
  let buf = Buffer.create 4096 in
  let sink =
    Mac_sim.Sink.make (fun ~round ev ->
        match ev with
        | Mac_channel.Event.Telemetry _ -> ()
        | _ ->
          Buffer.add_string buf (Mac_channel.Event.to_json ~round ev);
          Buffer.add_char buf '\n')
  in
  let config =
    { (E.default_config ~rounds) with
      drain_limit = drain;
      check_schedule = A.oblivious;
      sink = Some sink }
  in
  let summary =
    E.run ~config ~algorithm:(module A) ~n ~k ~adversary ~rounds ()
  in
  (Buffer.contents buf, Mac_sim.Export.summary_json summary ^ "\n")

(* ---- engine sessions --------------------------------------------------- *)

(* A session advanced in awkward chunks must be bit-identical to the
   closed-loop run — the property serve mode's step-wise driving rests
   on. *)
let test_session_chunked_equals_run () =
  let n = 6 and k = 3 and rounds = 400 and drain = 200 in
  let events_run, summary_run =
    batch_reference ~n ~k ~rounds ~drain ~trace:trace6
  in
  let module A = Mac_routing.Orchestra in
  let _feed, pattern =
    Mac_adversary.Pattern.external_queue ~initial:trace6 ()
  in
  let adversary =
    Mac_adversary.Adversary.create_q
      ~rate:(Mac_channel.Qrat.make 1 2)
      ~burst:(Mac_channel.Qrat.of_int 2)
      pattern
  in
  let buf = Buffer.create 4096 in
  let sink =
    Mac_sim.Sink.make (fun ~round ev ->
        match ev with
        | Mac_channel.Event.Telemetry _ -> ()
        | _ ->
          Buffer.add_string buf (Mac_channel.Event.to_json ~round ev);
          Buffer.add_char buf '\n')
  in
  let config =
    { (E.default_config ~rounds) with
      drain_limit = drain;
      check_schedule = A.oblivious;
      sink = Some sink }
  in
  let s =
    E.start ~config ~algorithm:(module A) ~n ~k ~adversary ~rounds ()
  in
  while not (E.session_complete s) do
    ignore (E.advance s ~max_steps:7)
  done;
  let summary = E.finish s in
  check_string "chunked events" events_run (Buffer.contents buf);
  check_string "chunked summary" summary_run
    (Mac_sim.Export.summary_json summary ^ "\n")

(* ---- in-process server -------------------------------------------------- *)

let algorithm_of ~name ~n:_ ~k:_ =
  match name with
  | "orchestra" -> Ok (module Mac_routing.Orchestra : Mac_channel.Algorithm.S)
  | _ -> Error (Printf.sprintf "unknown algorithm %S" name)

let pattern_of ~spec ~n ~seed:_ =
  match spec with
  | "round-robin" -> Ok (Mac_adversary.Pattern.round_robin ~n)
  | _ -> Error (Printf.sprintf "unknown pattern %S" spec)

let start_server ~dir ~shards =
  Mac_sim.Supervisor.reset_drain ();
  let socket = Filename.concat dir "serve.sock" in
  let cfg =
    { Mac_serve.Server.dir;
      socket;
      shards;
      checkpoint_every = 32;
      telemetry_every = 100;
      algorithm_of;
      pattern_of;
      summary_json = Mac_sim.Export.summary_json;
      log = (fun _ -> ()) }
  in
  match Mac_serve.Server.create cfg with
  | Error msg -> Alcotest.fail ("server create: " ^ msg)
  | Ok sv ->
    let d = Domain.spawn (fun () -> Mac_serve.Server.run sv) in
    (socket, d)

let stop_server socket d =
  (match Client.connect ~socket with
   | Ok c ->
     Client.send_line c "{\"cmd\":\"drain\"}";
     (try ignore (Client.recv_line c) with _ -> ());
     Client.close c
   | Error _ -> Mac_sim.Supervisor.request_drain ());
  let `Drained = Domain.join d in
  Mac_sim.Supervisor.reset_drain ()

let connect_ok socket =
  match Client.connect ~socket with
  | Ok c -> c
  | Error msg -> Alcotest.fail ("connect: " ^ msg)

let req c fields =
  match Client.request c (J.Obj fields) with
  | Ok v -> v
  | Error msg -> Alcotest.fail ("request failed: " ^ msg)

let req_err c fields =
  match Client.request c (J.Obj fields) with
  | Ok v -> Alcotest.fail ("expected error, got " ^ J.to_string v)
  | Error msg -> msg

let inject_cmd ~channel trace =
  [ ("cmd", J.Str "inject");
    ("channel", J.Str channel);
    ( "packets",
      J.List
        (List.map
           (fun (a, s, d) -> J.List [ J.Int a; J.Int s; J.Int d ])
           trace) ) ]

let open_cmd ~channel ~rounds ~drain =
  [ ("cmd", J.Str "open");
    ("channel", J.Str channel);
    ("algorithm", J.Str "orchestra");
    ("n", J.Int 6);
    ("k", J.Int 3);
    ("rounds", J.Int rounds);
    ("drain", J.Int drain) ]

(* Satellite: malformed or unknown input must produce a typed error reply —
   never a dropped connection or a dead shard. *)
let test_protocol_errors_are_typed () =
  let dir = temp_dir "eear_serve_err" in
  let socket, d = start_server ~dir ~shards:1 in
  let c = connect_ok socket in
  Client.send_line c "this is not json";
  (match Client.recv_line c with
   | None -> Alcotest.fail "connection dropped on bad json"
   | Some line -> (
     match J.parse line with
     | Ok reply ->
       check_bool "bad json gets ok:false" true
         (Option.bind (J.member "ok" reply) J.to_bool = Some false)
     | Error msg -> Alcotest.fail ("reply not json: " ^ msg)));
  check_bool "unknown command named in error" true
    (contains (req_err c [ ("cmd", J.Str "frobnicate") ]) "frobnicate");
  check_bool "missing cmd" true
    (contains (req_err c [ ("n", J.Int 1) ]) "cmd");
  check_bool "unknown channel" true
    (contains
       (req_err c
          [ ("cmd", J.Str "step"); ("channel", J.Str "ghost");
            ("rounds", J.Int 1) ])
       "ghost");
  check_bool "bad channel id" true
    (contains
       (req_err c
          (open_cmd ~channel:"no spaces allowed" ~rounds:10 ~drain:0))
       "id");
  (* an unresolvable algorithm fails in the shard's adoption path and must
     still come back as a typed reply *)
  check_bool "unknown algorithm" true
    (contains
       (req_err c
          [ ("cmd", J.Str "open"); ("channel", J.Str "x");
            ("algorithm", J.Str "nope") ])
       "nope");
  (* after all that abuse the daemon still works end to end *)
  let reply = req c [ ("cmd", J.Str "ping") ] in
  check_bool "ping survives" true
    (Option.bind (J.member "pong" reply) J.to_bool = Some true);
  ignore (req c (open_cmd ~channel:"alive" ~rounds:50 ~drain:0));
  check_bool "self-loop injection rejected" true
    (contains
       (req_err c
          [ ("cmd", J.Str "inject"); ("channel", J.Str "alive");
            ("src", J.Int 0); ("dst", J.Int 0) ])
       "src");
  ignore (req c (inject_cmd ~channel:"alive" [ (0, 0, 1) ]));
  let reply = req c [ ("cmd", J.Str "run"); ("channel", J.Str "alive") ] in
  check_bool "run completes after abuse" true
    (Option.bind (J.member "complete" reply) J.to_bool = Some true);
  Client.close c;
  stop_server socket d

(* Acceptance anchor: a channel fed over the socket and run to completion
   writes an event spool and summary byte-identical to the equivalent
   batch run. *)
let test_replay_is_byte_identical_to_batch () =
  let rounds = 400 and drain = 200 in
  let dir = temp_dir "eear_serve_eq" in
  let socket, d = start_server ~dir ~shards:2 in
  let c = connect_ok socket in
  ignore (req c (open_cmd ~channel:"eq" ~rounds ~drain));
  let reply = req c (inject_cmd ~channel:"eq" trace6) in
  check_int "all packets accepted" (List.length trace6)
    (Option.get (Option.bind (J.member "accepted" reply) J.to_int));
  let reply = req c [ ("cmd", J.Str "run"); ("channel", J.Str "eq") ] in
  check_bool "complete" true
    (Option.bind (J.member "complete" reply) J.to_bool = Some true);
  check_bool "summary in reply" true (J.member "summary" reply <> None);
  Client.close c;
  stop_server socket d;
  let events, summary =
    batch_reference ~n:6 ~k:3 ~rounds ~drain ~trace:trace6
  in
  check_string "event spool matches batch --events"
    events
    (read_file (Filename.concat dir "eq.events.jsonl"));
  check_string "summary matches batch --json"
    summary
    (read_file (Filename.concat dir "eq.summary.json"))

(* Satellite: a client vanishing mid-subscription must not take the shard
   (or the channel) down with it. *)
let test_disconnect_mid_subscribe_leaves_shard_alive () =
  let dir = temp_dir "eear_serve_sub" in
  let socket, d = start_server ~dir ~shards:1 in
  let c = connect_ok socket in
  ignore (req c (open_cmd ~channel:"sub" ~rounds:1200 ~drain:0));
  ignore (req c (inject_cmd ~channel:"sub" trace6));
  ignore
    (req c
       [ ("cmd", J.Str "step"); ("channel", J.Str "sub");
         ("rounds", J.Int 400) ]);
  (* subscribe from a second connection, read a little, vanish rudely *)
  let sub = connect_ok socket in
  ignore (req sub [ ("cmd", J.Str "subscribe"); ("channel", J.Str "sub") ]);
  (match Client.recv_line sub with
   | Some line -> check_bool "stream carries events" true (contains line "round")
   | None -> Alcotest.fail "no stream data");
  Client.close sub;
  (* the daemon and the channel's shard must both still be fine *)
  let reply =
    req c
      [ ("cmd", J.Str "step"); ("channel", J.Str "sub");
        ("rounds", J.Int 400) ]
  in
  check_bool "step works after subscriber vanished" true
    (Option.bind (J.member "round" reply) J.to_int <> None);
  let reply = req c [ ("cmd", J.Str "run"); ("channel", J.Str "sub") ] in
  check_bool "run completes" true
    (Option.bind (J.member "complete" reply) J.to_bool = Some true);
  (* a late subscriber streams the whole spool, then clean EOF *)
  let late = connect_ok socket in
  ignore (req late [ ("cmd", J.Str "subscribe"); ("channel", J.Str "sub") ]);
  let buf = Buffer.create 4096 in
  let rec drainl () =
    match Client.recv_line late with
    | Some line ->
      Buffer.add_string buf line;
      Buffer.add_char buf '\n';
      drainl ()
    | None -> ()
  in
  drainl ();
  Client.close late;
  Client.close c;
  stop_server socket d;
  check_string "late subscriber sees the full spool"
    (read_file (Filename.concat dir "sub.events.jsonl"))
    (Buffer.contents buf)

(* The strongest form of the equivalence guarantee: kill the shard mid-run
   (respawn re-adopts from the checkpoint, truncating the spool), then
   drain the daemon and restart it (cold re-adoption), and the final
   event spool and summary are STILL byte-identical to an uninterrupted
   batch run. *)
let test_chaos_preserves_byte_identity () =
  let rounds = 600 and drain = 200 in
  let dir = temp_dir "eear_serve_chaos" in
  let socket, d = start_server ~dir ~shards:1 in
  let c = connect_ok socket in
  ignore (req c (open_cmd ~channel:"chaos" ~rounds ~drain));
  ignore (req c (inject_cmd ~channel:"chaos" trace6));
  ignore
    (req c
       [ ("cmd", J.Str "step"); ("channel", J.Str "chaos");
         ("rounds", J.Int 200) ]);
  ignore (req c [ ("cmd", J.Str "kill-shard"); ("shard", J.Int 0) ]);
  (* the step may race the respawn and get a "re-issue" style error; the
     daemon must answer either way, never hang *)
  let rec step_after_respawn tries =
    match
      Client.request c
        (J.Obj
           [ ("cmd", J.Str "step"); ("channel", J.Str "chaos");
             ("rounds", J.Int 100) ])
    with
    | Ok _ -> ()
    | Error _ when tries > 0 ->
      Unix.sleepf 0.05;
      step_after_respawn (tries - 1)
    | Error msg -> Alcotest.fail ("step after kill-shard: " ^ msg)
  in
  step_after_respawn 100;
  let stats = req c [ ("cmd", J.Str "stats") ] in
  check_int "respawn counted" 1
    (Option.get (Option.bind (J.member "respawns" stats) J.to_int));
  Client.close c;
  (* drain (SIGTERM path) and restart the daemon on the same state dir *)
  stop_server socket d;
  let socket, d = start_server ~dir ~shards:1 in
  let c = connect_ok socket in
  let reply = req c [ ("cmd", J.Str "run"); ("channel", J.Str "chaos") ] in
  check_bool "resumed run completes" true
    (Option.bind (J.member "complete" reply) J.to_bool = Some true);
  Client.close c;
  stop_server socket d;
  let events, summary =
    batch_reference ~n:6 ~k:3 ~rounds ~drain ~trace:trace6
  in
  check_string "spool byte-identical despite crash + restart"
    events
    (read_file (Filename.concat dir "chaos.events.jsonl"));
  check_string "summary byte-identical despite crash + restart"
    summary
    (read_file (Filename.concat dir "chaos.summary.json"))

let () =
  Alcotest.run "serve"
    [ ("jsonv",
       [ Alcotest.test_case "roundtrip" `Quick test_jsonv_roundtrip;
         Alcotest.test_case "rejects malformed" `Quick
           test_jsonv_rejects_malformed ]);
      ("trace-file",
       [ Alcotest.test_case "roundtrip" `Quick test_trace_file_roundtrip;
         Alcotest.test_case "rejects bad lines" `Quick
           test_trace_file_rejects_bad_lines ]);
      ("session",
       [ Alcotest.test_case "chunked = run" `Quick
           test_session_chunked_equals_run ]);
      ("server",
       [ Alcotest.test_case "typed errors" `Quick
           test_protocol_errors_are_typed;
         Alcotest.test_case "replay byte-identical" `Quick
           test_replay_is_byte_identical_to_batch;
         Alcotest.test_case "subscriber disconnect" `Quick
           test_disconnect_mid_subscribe_leaves_shard_alive;
         Alcotest.test_case "chaos byte-identical" `Quick
           test_chaos_preserves_byte_identity ]) ]
