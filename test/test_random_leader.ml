(* Random-Leader (the randomised-schedule strawman baseline): schedule
   consistency, fairness of the rotating leadership, and the factor-k
   throughput loss against k-Subsets. *)

open Helpers

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let algo ?seed ~n ~k () = Mac_routing.Random_leader.algorithm ?seed ~n ~k ()

let schedule ~n ~k =
  Option.get (Mac_experiments.Scenario.schedule_of (algo ~n ~k ()) ~n ~k)

let test_exactly_k_awake () =
  let n = 9 and k = 4 in
  let schedule = schedule ~n ~k in
  for round = 0 to 200 do
    let awake = ref 0 in
    for me = 0 to n - 1 do
      if schedule ~me ~round then incr awake
    done;
    check_int (Printf.sprintf "round %d" round) k !awake
  done

let test_schedule_roughly_fair () =
  let n = 8 and k = 3 in
  let schedule = schedule ~n ~k in
  let horizon = 20_000 in
  let duty = Array.make n 0 in
  for round = 0 to horizon - 1 do
    for me = 0 to n - 1 do
      if schedule ~me ~round then duty.(me) <- duty.(me) + 1
    done
  done;
  let expected = horizon * k / n in
  Array.iteri
    (fun i d ->
      check_bool
        (Printf.sprintf "station %d duty %d ~ %d" i d expected)
        true
        (abs (d - expected) < expected / 4))
    duty

let test_seeds_give_different_schedules () =
  let n = 8 and k = 3 in
  let s0 = schedule ~n ~k in
  let s1 =
    Option.get
      (Mac_experiments.Scenario.schedule_of (algo ~seed:1 ~n ~k ()) ~n ~k)
  in
  let differs = ref false in
  for round = 0 to 100 do
    for me = 0 to n - 1 do
      if s0 ~me ~round <> s1 ~me ~round then differs := true
    done
  done;
  check_bool "seed changes the schedule" true !differs

let test_routes_at_low_rate () =
  let n = 8 and k = 3 in
  let s =
    run ~algorithm:(algo ~n ~k ()) ~n ~k ~rate:0.01 ~burst:2.0
      ~pattern:(Mac_adversary.Pattern.uniform ~n ~seed:3)
      ~rounds:60_000 ~drain:60_000 ()
  in
  assert_clean "low rate" s;
  assert_cap "cap k" k s;
  assert_delivered_all "low rate" s;
  check_int "direct" 1 s.max_hops

let test_loses_factor_k_to_k_subsets () =
  (* at 60% of k-Subsets' threshold the optimal schedule is stable and the
     random one drowns *)
  let n = 8 and k = 3 in
  let rate = 0.6 *. Mac_experiments.Bounds.k_subsets_rate ~n ~k in
  let pattern () = Mac_adversary.Pattern.pair_flood ~src:1 ~dst:2 in
  let run_algo algorithm =
    run ~algorithm ~n ~k ~rate ~burst:4.0 ~pattern:(pattern ())
      ~rounds:80_000 ~drain:0 ()
  in
  check_bool "k-subsets stable" true
    (is_stable (run_algo (Mac_routing.K_subsets.algorithm ~n ~k ())));
  check_bool "random-leader unstable" true (is_unstable (run_algo (algo ~n ~k ())))

let test_invalid_k () =
  Alcotest.check_raises "k too small"
    (Invalid_argument "Random_leader: need 2 <= k <= n") (fun () ->
      ignore (algo ~n:5 ~k:1 ()))

let () =
  Alcotest.run "random-leader"
    [ ("schedule",
       [ Alcotest.test_case "exactly k awake" `Quick test_exactly_k_awake;
         Alcotest.test_case "fair duty" `Quick test_schedule_roughly_fair;
         Alcotest.test_case "seed sensitivity" `Quick test_seeds_give_different_schedules;
         Alcotest.test_case "invalid k" `Quick test_invalid_k ]);
      ("routing",
       [ Alcotest.test_case "routes at low rate" `Slow test_routes_at_low_rate;
         Alcotest.test_case "factor-k loss" `Slow test_loses_factor_k_to_k_subsets ]) ]
