(* The supervisor: Pool-parity semantics under the default policy (first
   exception aborts, order-preserving, exactly-once), and the fault
   tolerance on top — per-job outcomes, retries with deterministic
   backoff, watchdog timeouts, worker respawn after a domain death,
   quarantine, and cooperative drain. *)

module Supervisor = Mac_sim.Supervisor

exception Boom of int

let check_int = Alcotest.(check int)

(* Events arrive from worker domains; collect them under a mutex. *)
let event_recorder () =
  let mu = Mutex.create () in
  let events = ref [] in
  let on_event ev =
    Mutex.lock mu;
    events := ev :: !events;
    Mutex.unlock mu
  in
  (on_event, fun () -> List.rev !events)

let ok = function
  | Ok v -> v
  | Error e -> Alcotest.failf "expected Ok, got %s" (Supervisor.error_to_string e)

(* ---- Pool parity under the default policy ---- *)

let test_map_matches_list_map () =
  let xs = List.init 60 (fun i -> i) in
  let f x = (x * 3) + 1 in
  List.iter
    (fun jobs ->
      Alcotest.(check (list int))
        (Printf.sprintf "jobs=%d" jobs)
        (List.map f xs)
        (List.map ok
           (Supervisor.map ~jobs xs (fun ~heartbeat:_ ~attempt:_ x -> f x))))
    [ 1; 2; 4 ]

let test_map_empty_and_invalid () =
  Alcotest.(check (list int)) "empty" []
    (List.map ok (Supervisor.map ~jobs:4 [] (fun ~heartbeat:_ ~attempt:_ x -> x)));
  Alcotest.check_raises "jobs=0"
    (Invalid_argument "Supervisor.map: jobs must be >= 1") (fun () ->
      ignore (Supervisor.map ~jobs:0 [ 1 ] (fun ~heartbeat:_ ~attempt:_ x -> x)));
  Alcotest.check_raises "retries<0"
    (Invalid_argument "Supervisor.map: retries must be >= 0") (fun () ->
      ignore
        (Supervisor.map
           ~policy:{ Supervisor.default_policy with retries = -1 }
           ~jobs:1 [ 1 ]
           (fun ~heartbeat:_ ~attempt:_ x -> x)))

(* First/middle/last failing index, jobs 1 and >1: the first error is
   re-raised (Pool.map parity), and no job of the failed batch ran twice. *)
let test_first_error_aborts () =
  let m = 20 in
  List.iter
    (fun jobs ->
      List.iter
        (fun bad ->
          let ran = Array.init m (fun _ -> Atomic.make 0) in
          Alcotest.check_raises
            (Printf.sprintf "Boom at %d propagates (jobs=%d)" bad jobs)
            (Boom bad)
            (fun () ->
              ignore
                (Supervisor.map ~jobs
                   (List.init m (fun i -> i))
                   (fun ~heartbeat:_ ~attempt:_ i ->
                     Atomic.incr ran.(i);
                     if i = bad then raise (Boom bad);
                     i)));
          Array.iteri
            (fun i c ->
              Alcotest.(check bool)
                (Printf.sprintf "item %d at most once (bad=%d jobs=%d)" i bad
                   jobs)
                true
                (Atomic.get c <= 1))
            ran)
        [ 0; m / 2; m - 1 ])
    [ 1; 4 ]

let test_exactly_once () =
  List.iter
    (fun jobs ->
      let m = 100 in
      let counts = Array.init m (fun _ -> Atomic.make 0) in
      let results =
        Supervisor.map ~jobs
          (List.init m (fun i -> i))
          (fun ~heartbeat:_ ~attempt:_ i ->
            Atomic.incr counts.(i);
            i)
      in
      Alcotest.(check (list int))
        (Printf.sprintf "results in order (jobs=%d)" jobs)
        (List.init m (fun i -> i))
        (List.map ok results);
      Array.iteri
        (fun i c ->
          check_int (Printf.sprintf "item %d ran once (jobs=%d)" i jobs) 1
            (Atomic.get c))
        counts)
    [ 1; 4 ]

(* ---- keep_going: per-job outcomes ---- *)

let test_keep_going_outcomes () =
  let m = 12 in
  let bad = [ 0; m / 2; m - 1 ] in
  List.iter
    (fun jobs ->
      let results =
        Supervisor.map
          ~policy:{ Supervisor.default_policy with keep_going = true }
          ~jobs
          (List.init m (fun i -> i))
          (fun ~heartbeat:_ ~attempt:_ i ->
            if List.mem i bad then raise (Boom i);
            i * 10)
      in
      check_int "outcome count" m (List.length results);
      List.iteri
        (fun i r ->
          match r with
          | Ok v when not (List.mem i bad) ->
            check_int (Printf.sprintf "job %d value" i) (i * 10) v
          | Error (Supervisor.Failed { attempts = 1; error = Boom b })
            when List.mem i bad ->
            check_int (Printf.sprintf "job %d failed with its own index" i) i b
          | _ ->
            Alcotest.failf "job %d (jobs=%d): unexpected outcome" i jobs)
        results)
    [ 1; 3 ]

(* ---- retries and backoff ---- *)

let retry_policy =
  { Supervisor.default_policy with
    retries = 2; backoff = 0.001; backoff_cap = 0.004; keep_going = true }

let test_retry_until_success () =
  let on_event, events = event_recorder () in
  let results =
    Supervisor.map ~policy:retry_policy ~on_event ~jobs:1 [ () ]
      (fun ~heartbeat:_ ~attempt () ->
        if attempt < 3 then raise (Boom attempt);
        attempt)
  in
  (match results with
   | [ Ok 3 ] -> ()
   | [ r ] ->
     Alcotest.failf "expected Ok 3, got %s"
       (match r with
        | Ok v -> Printf.sprintf "Ok %d" v
        | Error e -> Supervisor.error_to_string e)
   | _ -> Alcotest.fail "expected one outcome");
  let failed_attempts =
    List.filter
      (function Supervisor.Attempt_failed _ -> true | _ -> false)
      (events ())
  in
  check_int "two failed attempts before success" 2
    (List.length failed_attempts)

let test_retries_exhausted () =
  let runs = Atomic.make 0 in
  let results =
    Supervisor.map ~policy:retry_policy ~jobs:1 [ () ]
      (fun ~heartbeat:_ ~attempt:_ () ->
        Atomic.incr runs;
        raise (Boom 0))
  in
  (match results with
   | [ Error (Supervisor.Failed { attempts = 3; error = Boom 0 }) ] -> ()
   | _ -> Alcotest.fail "expected Failed after 3 attempts");
  check_int "ran once per attempt" 3 (Atomic.get runs)

let test_backoff_delays () =
  let p = { Supervisor.default_policy with backoff = 0.1; backoff_cap = 0.3 } in
  let d attempt = Supervisor.backoff_delay p ~attempt in
  Alcotest.(check (float 1e-9)) "attempt 1" 0.1 (d 1);
  Alcotest.(check (float 1e-9)) "attempt 2" 0.2 (d 2);
  Alcotest.(check (float 1e-9)) "attempt 3 capped" 0.3 (d 3);
  Alcotest.(check (float 1e-9)) "attempt 7 capped" 0.3 (d 7)

(* ---- watchdog timeouts ---- *)

(* The stalling job must heartbeat *sparsely*: a heartbeat is progress
   and resets the watchdog, so polling the cancel flag faster than the
   deadline would keep the attempt alive forever. *)
let stall ~heartbeat ~timeout =
  for _ = 1 to 60 do
    Unix.sleepf (3.0 *. timeout);
    heartbeat ()
  done;
  Alcotest.fail "stalled job was never cancelled"

let test_watchdog_cancels_stall () =
  let timeout = 0.05 in
  let policy =
    { Supervisor.default_policy with job_timeout = timeout; keep_going = true }
  in
  let results =
    Supervisor.map ~policy ~jobs:2
      [ `Stall; `Fine; `Fine ]
      (fun ~heartbeat ~attempt:_ x ->
        match x with
        | `Stall -> stall ~heartbeat ~timeout
        | `Fine ->
          heartbeat ();
          0)
  in
  match results with
  | [ Error (Supervisor.Timed_out { attempts = 1; timeout = t }); Ok 0; Ok 0 ]
    ->
    Alcotest.(check (float 1e-9)) "deadline reported" timeout t
  | _ -> Alcotest.fail "expected [Timed_out; Ok; Ok]"

(* ---- worker death and respawn ---- *)

let test_kill_worker_respawns () =
  List.iter
    (fun jobs ->
      let killed = Atomic.make false in
      let on_event, events = event_recorder () in
      let results =
        Supervisor.map
          ~policy:{ Supervisor.default_policy with keep_going = true }
          ~on_event ~jobs
          (List.init 6 (fun i -> i))
          (fun ~heartbeat:_ ~attempt i ->
            if i = 3 && not (Atomic.exchange killed true) then
              raise Supervisor.Kill_worker;
            (* a kill requeues without charging an attempt *)
            check_int "attempt unchanged after kill" 1 attempt;
            i)
      in
      Alcotest.(check (list int))
        (Printf.sprintf "all jobs complete (jobs=%d)" jobs)
        [ 0; 1; 2; 3; 4; 5 ] (List.map ok results);
      check_int
        (Printf.sprintf "one Worker_killed event (jobs=%d)" jobs)
        1
        (List.length
           (List.filter
              (function Supervisor.Worker_killed _ -> true | _ -> false)
              (events ()))))
    [ 1; 2 ]

(* ---- quarantine ---- *)

let test_quarantine_after_failures () =
  let policy =
    { retry_policy with retries = 5; quarantine_after = 2 }
  in
  let runs = Atomic.make 0 in
  let results =
    Supervisor.map ~policy ~jobs:1 [ () ]
      (fun ~heartbeat:_ ~attempt:_ () ->
        Atomic.incr runs;
        raise (Boom 0))
  in
  (match results with
   | [ Error (Supervisor.Quarantined { failures = 2 }) ] -> ()
   | _ -> Alcotest.fail "expected Quarantined after 2 failures");
  check_int "stopped at the quarantine threshold" 2 (Atomic.get runs)

let test_quarantined_on_arrival () =
  let ran = Atomic.make false in
  let results =
    Supervisor.map
      ~policy:{ Supervisor.default_policy with keep_going = true }
      ~label:(fun i -> Printf.sprintf "job-%d" i)
      ~quarantined:(fun l -> if l = "job-1" then Some 3 else None)
      ~jobs:1 [ 0; 1; 2 ]
      (fun ~heartbeat:_ ~attempt:_ i ->
        if i = 1 then Atomic.set ran true;
        i)
  in
  (match results with
   | [ Ok 0; Error (Supervisor.Quarantined { failures = 3 }); Ok 2 ] -> ()
   | _ -> Alcotest.fail "expected the middle job quarantined on arrival");
  Alcotest.(check bool) "quarantined job never ran" false (Atomic.get ran)

(* ---- cooperative drain ---- *)

let test_drain_skips_unstarted () =
  Supervisor.reset_drain ();
  Fun.protect
    ~finally:(fun () -> Supervisor.reset_drain ())
    (fun () ->
      let on_event, events = event_recorder () in
      let results =
        Supervisor.map
          ~policy:{ Supervisor.default_policy with keep_going = true }
          ~on_event ~jobs:1 [ 0; 1; 2; 3 ]
          (fun ~heartbeat:_ ~attempt:_ i ->
            (* in-flight work finishes; the drain lands before the next
               claim *)
            if i = 0 then Supervisor.request_drain ();
            i)
      in
      (match results with
       | [ Ok 0; Error Supervisor.Skipped; Error Supervisor.Skipped;
           Error Supervisor.Skipped ] ->
         ()
       | _ -> Alcotest.fail "expected [Ok 0; Skipped x3]");
      match
        List.filter
          (function Supervisor.Jobs_skipped _ -> true | _ -> false)
          (events ())
      with
      | [ Supervisor.Jobs_skipped { count = 3 } ] -> ()
      | _ -> Alcotest.fail "expected one Jobs_skipped{count=3} event")

let () =
  Alcotest.run "supervisor"
    [ ("pool-parity",
       [ Alcotest.test_case "matches List.map" `Quick test_map_matches_list_map;
         Alcotest.test_case "empty and invalid args" `Quick
           test_map_empty_and_invalid;
         Alcotest.test_case "first/middle/last error aborts" `Quick
           test_first_error_aborts;
         Alcotest.test_case "every job runs once" `Quick test_exactly_once ]);
      ("keep-going",
       [ Alcotest.test_case "per-job outcomes" `Quick test_keep_going_outcomes ]);
      ("retries",
       [ Alcotest.test_case "retry until success" `Quick
           test_retry_until_success;
         Alcotest.test_case "retries exhausted" `Quick test_retries_exhausted;
         Alcotest.test_case "deterministic backoff" `Quick test_backoff_delays ]);
      ("watchdog",
       [ Alcotest.test_case "stalled attempt cancelled" `Quick
           test_watchdog_cancels_stall ]);
      ("worker-death",
       [ Alcotest.test_case "kill respawns, job requeued" `Quick
           test_kill_worker_respawns ]);
      ("quarantine",
       [ Alcotest.test_case "after repeated failures" `Quick
           test_quarantine_after_failures;
         Alcotest.test_case "on arrival, without running" `Quick
           test_quarantined_on_arrival ]);
      ("drain",
       [ Alcotest.test_case "unstarted jobs skipped" `Quick
           test_drain_skips_unstarted ]) ]
