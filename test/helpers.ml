(* Shared helpers for the per-algorithm test suites. *)

let run ?(strict = true) ?(check_schedule = true) ?(drain = 0) ?pacing
    ~algorithm ~n ~k ~rate ~burst ~pattern ~rounds () =
  let adversary = Mac_adversary.Adversary.create ~rate ~burst ?pacing pattern in
  let config =
    { (Mac_sim.Engine.default_config ~rounds) with
      strict; check_schedule; drain_limit = drain }
  in
  Mac_sim.Engine.run ~config ~algorithm ~n ~k ~adversary ~rounds ()

let verdict (s : Mac_sim.Metrics.summary) =
  (Mac_sim.Stability.classify s.queue_series).Mac_sim.Stability.verdict

let is_stable s = verdict s = Mac_sim.Stability.Stable

let is_unstable s = verdict s = Mac_sim.Stability.Unstable

let assert_clean name (s : Mac_sim.Metrics.summary) =
  Alcotest.(check bool)
    (name ^ ": no violations")
    true
    (Mac_sim.Metrics.no_violations s);
  Alcotest.(check int) (name ^ ": no collisions") 0 s.collision_rounds

let assert_cap name cap (s : Mac_sim.Metrics.summary) =
  Alcotest.(check bool)
    (Printf.sprintf "%s: max %d stations on (saw %d)" name cap s.max_on)
    true (s.max_on <= cap)

let assert_delivered_all name (s : Mac_sim.Metrics.summary) =
  Alcotest.(check int) (name ^ ": everything delivered") 0 s.undelivered

let worst_delay (s : Mac_sim.Metrics.summary) = max s.max_delay s.max_queued_age
