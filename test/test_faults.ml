(* Tests for the fault-injection layer: plan construction and parsing,
   the empty-plan bit-identity guarantee, crash/restart/jam/noise
   semantics inside the engine, conservation under packet loss, replay
   of faulted runs, and the leaky-bucket bound when the adversary keeps
   injecting into a crashed station. *)

open Mac_channel
module FP = Mac_faults.Fault_plan

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ---- plan construction ---- *)

let test_empty_plan () =
  check_bool "empty is empty" true (FP.is_empty FP.empty);
  check_int "empty size" 0 (FP.size FP.empty);
  check_int "empty max_station" (-1) (FP.max_station FP.empty);
  check_int "no actions" 0 (List.length (FP.actions FP.empty ~round:0))

let test_scripted_plan () =
  let p =
    FP.scripted ~name:"demo"
      [ (20, FP.Restart { station = 1 });
        (10, FP.Crash { station = 1; queue = FP.Retain });
        (10, FP.Jam) ]
  in
  check_bool "non-empty" false (FP.is_empty p);
  Alcotest.(check string) "name" "demo" (FP.name p);
  check_int "size" 3 (FP.size p);
  check_int "max_station" 1 (FP.max_station p);
  check_bool "same-round order preserved" true
    (FP.actions p ~round:10
     = [ FP.Crash { station = 1; queue = FP.Retain }; FP.Jam ]);
  check_bool "restart scheduled" true
    (FP.actions p ~round:20 = [ FP.Restart { station = 1 } ]);
  check_int "quiet round" 0 (List.length (FP.actions p ~round:11))

let test_scripted_rejects_bad_entries () =
  (match FP.scripted ~name:"bad" [ (-1, FP.Jam) ] with
   | exception Invalid_argument _ -> ()
   | _ -> Alcotest.fail "negative round accepted");
  match FP.scripted ~name:"bad" [ (0, FP.Crash { station = -2; queue = FP.Retain }) ] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "negative station accepted"

let test_random_plan_deterministic () =
  let build () =
    FP.random ~seed:5 ~n:6 ~rounds:5_000 ~crash_rate:0.003 ~jam_rate:0.001
      ~noise_rate:0.0005 ~restart_after:40 ()
  in
  let p1 = build () and p2 = build () in
  check_int "same size" (FP.size p1) (FP.size p2);
  check_bool "plan has faults at this rate" true (FP.size p1 > 0);
  check_bool "stations in range" true (FP.max_station p1 < 6);
  for r = 0 to 4_999 do
    if not (FP.actions p1 ~round:r = FP.actions p2 ~round:r) then
      Alcotest.failf "plans diverge at round %d" r
  done

let test_random_plan_rejects_bad_args () =
  let expect_invalid what f =
    match f () with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.failf "%s accepted" what
  in
  expect_invalid "rate > 1" (fun () ->
      FP.random ~seed:1 ~n:4 ~rounds:10 ~crash_rate:1.5 ());
  expect_invalid "n = 0" (fun () -> FP.random ~seed:1 ~n:0 ~rounds:10 ());
  expect_invalid "negative restart_after" (fun () ->
      FP.random ~seed:1 ~n:4 ~rounds:10 ~restart_after:(-1) ())

(* ---- plan-file parsing ---- *)

let test_parse_good_script () =
  let script =
    "# header comment\n\
     \n\
     crash 10 1\n\
     crash 20 2 drop\n\
     restart 110 1   # trailing comment\n\
     jam 30..32\n\
     noise 40\n"
  in
  match FP.of_string ~name:"file" script with
  | Error msg -> Alcotest.failf "parse failed: %s" msg
  | Ok p ->
    check_int "size counts expanded ranges" 7 (FP.size p);
    check_int "max_station" 2 (FP.max_station p);
    check_bool "crash keep by default" true
      (FP.actions p ~round:10 = [ FP.Crash { station = 1; queue = FP.Retain } ]);
    check_bool "crash drop" true
      (FP.actions p ~round:20 = [ FP.Crash { station = 2; queue = FP.Drop } ]);
    check_bool "restart" true
      (FP.actions p ~round:110 = [ FP.Restart { station = 1 } ]);
    check_bool "jam range expands" true
      (FP.actions p ~round:30 = [ FP.Jam ]
       && FP.actions p ~round:31 = [ FP.Jam ]
       && FP.actions p ~round:32 = [ FP.Jam ]);
    check_bool "noise" true (FP.actions p ~round:40 = [ FP.Noise ])

let test_parse_rejects_malformed () =
  let contains s sub =
    let n = String.length sub in
    let rec go i = i + n <= String.length s && (String.sub s i n = sub || go (i + 1)) in
    go 0
  in
  let expect_error_at line script =
    match FP.of_string script with
    | Ok _ -> Alcotest.failf "accepted malformed script %S" script
    | Error msg ->
      check_bool
        (Printf.sprintf "%S reported at line %d (got %S)" script line msg)
        true
        (contains msg (Printf.sprintf "line %d" line))
  in
  expect_error_at 1 "crash 1";
  expect_error_at 1 "crash 1 2 maybe";
  expect_error_at 1 "jam 5..3";
  expect_error_at 1 "crash -1 0";
  expect_error_at 1 "flood 1";
  expect_error_at 2 "jam 1\nnoise\n";
  expect_error_at 3 "crash 1 0\ncrash 2 1\nrestart 3\n"

let test_plan_file_missing () =
  match FP.of_file "/nonexistent/eear-fault-plan" with
  | Ok _ -> Alcotest.fail "read a plan from a missing file"
  | Error msg -> check_bool "one-line error" false (String.contains msg '\n')

(* ---- engine integration ---- *)

let run ?(faults = None) ?(strict = true) ?(sink = None) ~algorithm ~n ~k
    ~rate ~burst ~pattern ~rounds ~drain () =
  let adversary = Mac_adversary.Adversary.create ~rate ~burst pattern in
  let config =
    { (Mac_sim.Engine.default_config ~rounds) with
      drain_limit = drain; strict; sink; faults }
  in
  Mac_sim.Engine.run ~config ~algorithm ~n ~k ~adversary ~rounds ()

(* Run while recording the full event stream, as in test_events.ml. *)
let record_run ?(faults = None) ?(strict = true) ~algorithm ~n ~k ~rate ~burst
    ~pattern ~rounds ~drain () =
  let path = Filename.temp_file "eear_faults" ".jsonl" in
  let sink = Mac_sim.Sink.jsonl_file path in
  let summary =
    Fun.protect
      ~finally:(fun () -> Mac_sim.Sink.close sink)
      (fun () ->
        run ~faults ~strict ~sink:(Some sink) ~algorithm ~n ~k ~rate ~burst
          ~pattern ~rounds ~drain ())
  in
  let events = ref [] in
  let ic = open_in path in
  (try
     while true do
       match Event.of_json_line (input_line ic) with
       | Ok entry -> events := entry :: !events
       | Error msg -> Alcotest.failf "bad line in recording: %s" msg
     done
   with End_of_file -> ());
  close_in ic;
  Sys.remove path;
  (summary, List.rev !events)

let conservation (s : Mac_sim.Metrics.summary) =
  s.injected = s.delivered + s.final_total_queue + s.faults.lost_to_crash

(* The acceptance gate: an empty plan leaves BOTH the summary and the
   event stream bit-identical to a run with no plan at all. *)
let test_empty_plan_bit_identical () =
  let go faults =
    record_run ~faults ~algorithm:(module Mac_routing.Count_hop) ~n:6 ~k:2
      ~rate:0.7 ~burst:2.0
      ~pattern:(Mac_adversary.Pattern.uniform ~n:6 ~seed:23)
      ~rounds:1_500 ~drain:500 ()
  in
  let s_none, e_none = go None in
  let s_empty, e_empty = go (Some FP.empty) in
  check_bool "summaries identical" true (s_none = s_empty);
  check_int "same stream length" (List.length e_none) (List.length e_empty);
  check_bool "event streams identical" true (e_none = e_empty);
  check_bool "no fault counters" true (Mac_sim.Metrics.no_faults s_none)

let test_same_plan_same_seed_deterministic () =
  let go () =
    let plan =
      FP.random ~seed:11 ~n:6 ~rounds:2_000 ~crash_rate:0.002 ~jam_rate:0.002
        ~noise_rate:0.001 ~restart_after:100 ()
    in
    run ~faults:(Some plan) ~strict:false
      ~algorithm:(module Mac_routing.Count_hop) ~n:6 ~k:2 ~rate:0.7 ~burst:2.0
      ~pattern:(Mac_adversary.Pattern.uniform ~n:6 ~seed:23) ~rounds:2_000
      ~drain:500 ()
  in
  check_bool "identical summaries across runs" true (go () = go ())

let test_crash_stop_keeps_queue () =
  let s =
    run
      ~faults:
        (Some
           (FP.scripted ~name:"stop"
              [ (400, FP.Crash { station = 1; queue = FP.Retain }) ]))
      ~strict:false ~algorithm:(module Mac_routing.Count_hop) ~n:6 ~k:2
      ~rate:0.5 ~burst:2.0
      ~pattern:(Mac_adversary.Pattern.flood ~n:6 ~victim:1) ~rounds:2_000
      ~drain:1_000 ()
  in
  let f = s.faults in
  check_int "one crash" 1 f.crashes;
  check_int "no restart" 0 f.restarts;
  check_int "retained queue loses nothing" 0 f.lost_to_crash;
  check_int "fault round recorded" 400 f.last_fault_round;
  check_bool "conservation" true (conservation s);
  check_bool "backlog grows after the source dies" true
    (f.post_fault_peak_queue > f.pre_fault_queue);
  check_int "never recovers" (-1) f.recovery_rounds

let test_crash_drop_counts_lost () =
  (* burst 8 floods station 1's queue at round 0; crashing it at round 3
     with the drop policy must lose at least the packets not yet served. *)
  let s =
    run
      ~faults:
        (Some
           (FP.scripted ~name:"drop"
              [ (3, FP.Crash { station = 1; queue = FP.Drop }) ]))
      ~strict:false ~algorithm:(module Mac_routing.Count_hop) ~n:6 ~k:2
      ~rate:0.9 ~burst:8.0
      ~pattern:(Mac_adversary.Pattern.flood ~n:6 ~victim:1) ~rounds:500
      ~drain:0 ()
  in
  let f = s.faults in
  check_bool "packets were lost" true (f.lost_to_crash > 0);
  check_bool "loss is explicit, not silent" true (conservation s);
  check_int "undelivered = injected - delivered" (s.injected - s.delivered)
    s.undelivered

(* Restart tolerance is an algorithm property, and the engine's
   fresh-state restart exposes it faithfully. k-cycle's schedule is a
   pure function of the round, so a restarted station falls straight
   back into its slots and serves its retained queue. count-hop aligns
   its phase machine by listening to the coordinator; a cold station
   can never rejoin, so for it a crash-restart behaves exactly like a
   crash-stop (see the fault-model section of DESIGN.md). *)
let test_restart_resumes_delivery () =
  let go faults =
    run ~faults ~strict:false
      ~algorithm:(Mac_routing.K_cycle.algorithm ~n:12 ~k:4) ~n:12 ~k:4
      ~rate:0.3 ~burst:2.0
      ~pattern:(Mac_adversary.Pattern.flood ~n:12 ~victim:1) ~rounds:2_000
      ~drain:1_000 ()
  in
  let crash = (400, FP.Crash { station = 1; queue = FP.Retain }) in
  let stop = go (Some (FP.scripted ~name:"stop" [ crash ])) in
  let restarted =
    go (Some (FP.scripted ~name:"restart" [ crash; (600, FP.Restart { station = 1 }) ]))
  in
  check_int "restart counted" 1 restarted.faults.restarts;
  check_bool "restarted station delivers its retained queue" true
    (restarted.delivered > stop.delivered);
  check_bool "conservation (stop)" true (conservation stop);
  check_bool "conservation (restart)" true (conservation restarted)

let test_restart_cannot_rejoin_count_hop () =
  let go faults =
    run ~faults ~strict:false ~algorithm:(module Mac_routing.Count_hop) ~n:6
      ~k:2 ~rate:0.5 ~burst:2.0
      ~pattern:(Mac_adversary.Pattern.flood ~n:6 ~victim:1) ~rounds:2_000
      ~drain:1_000 ()
  in
  let crash = (400, FP.Crash { station = 1; queue = FP.Retain }) in
  let stop = go (Some (FP.scripted ~name:"stop" [ crash ])) in
  let restarted =
    go (Some (FP.scripted ~name:"restart" [ crash; (600, FP.Restart { station = 1 }) ]))
  in
  check_int "restart counted" 1 restarted.faults.restarts;
  check_bool "a cold count-hop station stays mute: restart = stop" true
    (restarted.delivered = stop.delivered
     && restarted.final_total_queue = stop.final_total_queue);
  check_bool "conservation" true (conservation restarted)

let test_noise_forces_collisions () =
  let s =
    run
      ~faults:
        (Some
           (FP.scripted ~name:"noise"
              (List.init 10 (fun i -> (100 + i, FP.Noise)))))
      ~strict:false ~algorithm:(module Mac_routing.Count_hop) ~n:6 ~k:2
      ~rate:0.3 ~burst:2.0
      ~pattern:(Mac_adversary.Pattern.uniform ~n:6 ~seed:31) ~rounds:2_000
      ~drain:500 ()
  in
  let f = s.faults in
  check_int "every noise round forced" 10 f.noise_rounds;
  check_int "noise rounds are jammed rounds" 10 f.jammed_rounds;
  check_bool "collisions include the forced ones" true
    (s.collision_rounds >= f.jammed_rounds);
  check_bool "conservation" true (conservation s)

let test_jam_window_disrupts () =
  let s =
    run
      ~faults:
        (Some
           (FP.scripted ~name:"jam"
              (List.init 50 (fun i -> (100 + i, FP.Jam)))))
      ~strict:false ~algorithm:(module Mac_routing.Orchestra) ~n:6 ~k:3
      ~rate:0.9 ~burst:8.0
      ~pattern:(Mac_adversary.Pattern.uniform ~n:6 ~seed:31) ~rounds:2_000
      ~drain:500 ()
  in
  let f = s.faults in
  check_bool "busy channel: some jams bit" true (f.jammed_rounds > 0);
  check_bool "jams only fire on transmissions" true (f.jammed_rounds <= 50);
  check_int "no noise scheduled" 0 f.noise_rounds;
  check_bool "conservation" true (conservation s)

(* ---- replay: a faulted recording reproduces the live summary ---- *)

let faulted_recording () =
  let plan =
    FP.scripted ~name:"mixed"
      ([ (100, FP.Crash { station = 2; queue = FP.Drop });
         (300, FP.Restart { station = 2 });
         (700, FP.Crash { station = 4; queue = FP.Retain }) ]
       @ List.init 20 (fun i -> (400 + i, FP.Jam))
       @ List.init 10 (fun i -> (500 + i, FP.Noise)))
  in
  record_run ~faults:(Some plan) ~strict:false
    ~algorithm:(module Mac_routing.Count_hop) ~n:6 ~k:2 ~rate:0.7 ~burst:4.0
    ~pattern:(Mac_adversary.Pattern.uniform ~n:6 ~seed:23) ~rounds:2_000
    ~drain:500 ()

let test_counting_replay_matches_faulted_summary () =
  let summary, events = faulted_recording () in
  let f = summary.faults in
  check_bool "the plan actually bit" true
    (f.crashes = 2 && f.restarts = 1 && f.lost_to_crash > 0
     && f.jammed_rounds > 0);
  let sink, read = Mac_sim.Sink.counting () in
  List.iter (fun (round, ev) -> sink.Mac_sim.Sink.emit ~round ev) events;
  let c = read () in
  check_int "injected" summary.injected c.injected;
  check_int "delivered" summary.delivered c.delivered;
  check_int "collisions" summary.collision_rounds c.collisions;
  check_int "crashes" f.crashes c.crashes;
  check_int "restarts" f.restarts c.restarts;
  check_int "jammed" f.jammed_rounds c.jammed;
  check_int "lost" f.lost_to_crash c.lost

let test_metrics_replay_reconstructs_faulted_summary () =
  let rounds = 2_000 and drain = 500 in
  let summary, events = faulted_recording () in
  let replay =
    Mac_sim.Metrics.create ~algorithm:summary.algorithm
      ~adversary:summary.adversary ~n:summary.n ~k:summary.k
      ~cap:summary.energy_cap
      ~sample_every:(max 1 ((rounds + drain) / 1024))
  in
  List.iter (fun (round, ev) -> Mac_sim.Metrics.observe replay ~round ev) events;
  let rebuilt =
    Mac_sim.Metrics.finalize replay
      ~final_round:(summary.rounds + summary.drain_rounds)
      ~max_queued_age:summary.max_queued_age
  in
  check_bool "whole summary reconstructed, loss counters included" true
    (rebuilt = summary)

let test_jam_events_precede_their_collision () =
  let _, events = faulted_recording () in
  let rec walk = function
    | (r, Event.Round_jammed { transmitters; _ })
      :: ((r', next) :: _ as rest) -> (
      check_int "same round" r r';
      (* a jam over transmissions reads as a collision; a jam over an
         empty channel is counted but the round stays silent *)
      match next with
      | Event.Collision _ -> walk rest
      | Event.Silence when transmitters = 0 -> walk rest
      | _ -> Alcotest.fail "Round_jammed not resolved by Collision/Silence")
    | (_, Event.Round_jammed _) :: _ ->
      Alcotest.fail "Round_jammed not followed by its resolution"
    | _ :: rest -> walk rest
    | [] -> ()
  in
  walk events

(* A jam on a round where nobody transmits: the channel stays silent, but
   the fault is still counted — live and through a metrics replay of the
   recorded stream. (The pre-fix engine dropped these jams silently, so a
   replayed recording could disagree with the live summary.) *)
let test_jam_on_empty_round_counted () =
  let silent =
    Mac_adversary.Pattern.make ~name:"silent"
      (fun ~round:_ ~budget:_ ~view:_ -> [])
  in
  let plan = FP.scripted ~name:"jam-empty" [ (3, FP.Jam) ] in
  let summary, events =
    record_run ~faults:(Some plan)
      ~algorithm:(module Mac_routing.Count_hop) ~n:4 ~k:2 ~rate:0.5 ~burst:2.0
      ~pattern:silent ~rounds:10 ~drain:0 ()
  in
  check_int "the empty-round jam is counted" 1 summary.faults.jammed_rounds;
  check_int "no collision was fabricated" 0 summary.collision_rounds;
  (match
     List.find_opt
       (fun (_, ev) ->
         match ev with
         | Event.Round_jammed { transmitters = 0; noise = false } -> true
         | _ -> false)
       events
   with
  | Some (r, _) -> check_int "jam recorded at its round" 3 r
  | None -> Alcotest.fail "no zero-transmitter Round_jammed in the stream");
  let replay =
    Mac_sim.Metrics.create ~algorithm:summary.algorithm
      ~adversary:summary.adversary ~n:summary.n ~k:summary.k
      ~cap:summary.energy_cap ~sample_every:1
  in
  List.iter (fun (round, ev) -> Mac_sim.Metrics.observe replay ~round ev) events;
  let rebuilt =
    Mac_sim.Metrics.finalize replay
      ~final_round:(summary.rounds + summary.drain_rounds)
      ~max_queued_age:summary.max_queued_age
  in
  check_int "replay agrees on jammed rounds" summary.faults.jammed_rounds
    rebuilt.faults.jammed_rounds;
  check_bool "replay reconstructs the whole summary" true (rebuilt = summary)

(* ---- admission under faults: the bucket bound survives a crash ---- *)

(* The leaky-bucket window constraint is a property of admission, not of
   the stations: even when every injection targets a crashed station, the
   total admitted must respect rate * t + burst, and every admitted packet
   must be classified (delivered, still queued, or lost-to-crash) —
   never silently dropped. *)
let bucket_bound_under_crash =
  QCheck.Test.make ~name:"bucket_bound_holds_into_crashed_station" ~count:25
    QCheck.(pair (pair (int_range 1 9) (int_range 10 20)) (pair (int_range 1 5) (int_range 2 8)))
    (fun ((rn, rd), (bi, bd)) ->
      (* small exact rationals through the float shim: rate in (0, 0.9],
         burst in (1, 6) *)
      let rate = float_of_int rn /. float_of_int rd in
      let burst = float_of_int bi +. (1.0 /. float_of_int bd) in
      let rounds = 300 in
      let plan =
        FP.scripted ~name:"qcheck-crash"
          [ (50, FP.Crash { station = 1; queue = FP.Drop }) ]
      in
      let s =
        run ~faults:(Some plan) ~strict:false
          ~algorithm:(module Mac_routing.Count_hop) ~n:5 ~k:2 ~rate ~burst
          ~pattern:(Mac_adversary.Pattern.flood ~n:5 ~victim:1) ~rounds
          ~drain:0 ()
      in
      float_of_int s.injected <= (rate *. float_of_int rounds) +. burst +. 1e-9
      && conservation s)

let () =
  Alcotest.run "faults"
    [ ("plan",
       [ Alcotest.test_case "empty" `Quick test_empty_plan;
         Alcotest.test_case "scripted" `Quick test_scripted_plan;
         Alcotest.test_case "scripted bad entries" `Quick
           test_scripted_rejects_bad_entries;
         Alcotest.test_case "random deterministic" `Quick
           test_random_plan_deterministic;
         Alcotest.test_case "random bad args" `Quick
           test_random_plan_rejects_bad_args ]);
      ("parse",
       [ Alcotest.test_case "good script" `Quick test_parse_good_script;
         Alcotest.test_case "rejects malformed" `Quick
           test_parse_rejects_malformed;
         Alcotest.test_case "missing file" `Quick test_plan_file_missing ]);
      ("engine",
       [ Alcotest.test_case "empty plan bit-identical" `Quick
           test_empty_plan_bit_identical;
         Alcotest.test_case "same plan same seed" `Quick
           test_same_plan_same_seed_deterministic;
         Alcotest.test_case "crash-stop keeps queue" `Quick
           test_crash_stop_keeps_queue;
         Alcotest.test_case "crash-drop counts lost" `Quick
           test_crash_drop_counts_lost;
         Alcotest.test_case "restart resumes" `Quick
           test_restart_resumes_delivery;
         Alcotest.test_case "restart cannot rejoin count-hop" `Quick
           test_restart_cannot_rejoin_count_hop;
         Alcotest.test_case "noise forces collisions" `Quick
           test_noise_forces_collisions;
         Alcotest.test_case "jam window" `Quick test_jam_window_disrupts ]);
      ("replay",
       [ Alcotest.test_case "counting sink matches" `Quick
           test_counting_replay_matches_faulted_summary;
         Alcotest.test_case "metrics replay reconstructs" `Quick
           test_metrics_replay_reconstructs_faulted_summary;
         Alcotest.test_case "jam precedes collision" `Quick
           test_jam_events_precede_their_collision;
         Alcotest.test_case "jam on empty round counted" `Quick
           test_jam_on_empty_round_counted ]);
      ("admission",
       [ QCheck_alcotest.to_alcotest bucket_bound_under_crash ]) ]
