(* The differential harness: the engine against the naive oracle.

   Any disagreement — one summary field, one event — fails with the
   verdict printed. The deterministic sweep pins seeds 0..219 so a
   regression is reproducible by seed; the qcheck property adds fresh
   random seeds on every run (a divergence it finds is a real drift bug,
   never test flakiness, so the extra nondeterminism only adds power). *)

open Mac_verify

let check_pair seed =
  let engine, oracle = Diff.random_pair ~seed in
  let v = Diff.run_pair ~engine ~oracle in
  if not (Diff.agrees v) then
    Alcotest.failf "divergence at seed %d:@.%a" seed Diff.pp_verdict v

let test_deterministic_sweep () =
  for seed = 0 to 219 do
    check_pair seed
  done

let test_events_nonempty () =
  (* sanity: the comparison is not vacuous — streams carry real events *)
  let engine, oracle = Diff.random_pair ~seed:1 in
  let v = Diff.run_pair ~engine ~oracle in
  Alcotest.(check bool) "compared a real stream" true (v.Diff.events > 100)

let test_jobs_invariance () =
  (* the pooled driver returns the same verdicts in the same order *)
  let pairs = List.init 6 (fun seed -> Diff.random_pair ~seed) in
  let pairs' = List.init 6 (fun seed -> Diff.random_pair ~seed) in
  let seq = Diff.run_pairs ~jobs:1 pairs in
  let par = Diff.run_pairs ~jobs:2 pairs' in
  List.iter2
    (fun (a : Diff.verdict) (b : Diff.verdict) ->
      Alcotest.(check string) "same id" a.id b.id;
      Alcotest.(check int) "same events" a.events b.events;
      Alcotest.(check bool) "both agree" (Diff.agrees a) (Diff.agrees b))
    seq par

(* ---- sparse-mode certification ---- *)

let check_sparse seed =
  let v = Diff.certify_sparse ~make:(Diff.random_sparse ~seed) in
  if not (Diff.agrees v) then
    Alcotest.failf "sparse divergence at seed %d:@.%a" seed Diff.pp_verdict v

let test_sparse_deterministic_sweep () =
  for seed = 0 to 39 do
    check_sparse seed
  done

let test_sparse_batch_jobs_invariance () =
  let makers () = List.init 6 (fun seed -> Diff.random_sparse ~seed) in
  let seq = Diff.certify_sparse_batch ~jobs:1 (makers ()) in
  let par = Diff.certify_sparse_batch ~jobs:2 (makers ()) in
  List.iter2
    (fun (a : Diff.verdict) (b : Diff.verdict) ->
      Alcotest.(check string) "same id" a.id b.id;
      Alcotest.(check bool) "both agree" (Diff.agrees a) (Diff.agrees b))
    seq par

let qcheck_sparse_random_seeds =
  QCheck.Test.make ~name:"sparse_engine_matches_dense_on_random_seeds"
    ~count:30
    QCheck.(int_range 0 1_000_000)
    (fun seed ->
      Diff.agrees (Diff.certify_sparse ~make:(Diff.random_sparse ~seed)))

let qcheck_random_seeds =
  QCheck.Test.make ~name:"engine_matches_oracle_on_random_seeds" ~count:60
    QCheck.(int_range 0 1_000_000)
    (fun seed ->
      let engine, oracle = Diff.random_pair ~seed in
      Diff.agrees (Diff.run_pair ~engine ~oracle))

let () =
  Alcotest.run "verify"
    [ ("differential",
       [ Alcotest.test_case "seeds 0..219" `Slow test_deterministic_sweep;
         Alcotest.test_case "streams are real" `Quick test_events_nonempty;
         Alcotest.test_case "jobs invariance" `Quick test_jobs_invariance;
         QCheck_alcotest.to_alcotest qcheck_random_seeds ]);
      ("sparse",
       [ Alcotest.test_case "seeds 0..39" `Slow test_sparse_deterministic_sweep;
         Alcotest.test_case "batch jobs invariance" `Quick
           test_sparse_batch_jobs_invariance;
         QCheck_alcotest.to_alcotest qcheck_sparse_random_seeds ]) ]
