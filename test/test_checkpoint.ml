(* Checkpoint/resume equivalence: a run interrupted at a checkpoint and
   resumed from it must be bit-identical to the uninterrupted run — the
   event stream, the summary and the queue series — across the Table-1
   catalog and random configurations (fault plans included). The file
   layer must round-trip snapshots and reject junk, and the engine must
   reject snapshots that do not match the resuming configuration. *)

open Mac_verify

exception Interrupted

(* Run a configuration to completion (optionally from a snapshot),
   recording the full typed event stream. *)
let complete ?(mode = Mac_sim.Engine.Dense) ?resume (r : Diff.run) =
  let events = ref [] in
  let sink =
    Mac_sim.Sink.make (fun ~round ev -> events := (round, ev) :: !events)
  in
  let adversary =
    Mac_adversary.Adversary.create_q ~name:r.id ~rate:r.rate ~burst:r.burst
      ~pacing:r.pacing r.pattern
  in
  let config =
    { (Mac_sim.Engine.default_config ~rounds:r.rounds) with
      mode; drain_limit = r.drain; strict = false; check_schedule = false;
      sink = Some sink; faults = r.faults }
  in
  let summary =
    Mac_sim.Engine.run ~config ?resume ~algorithm:r.algorithm ~n:r.n ~k:r.k
      ~adversary ~rounds:r.rounds ()
  in
  (summary, List.rev !events)

(* Run until the checkpoint at round [at] fires, then crash: raising from
   [on_checkpoint] aborts [Engine.run] mid-loop exactly like a kill at
   that round boundary would. Returns the snapshot and the event prefix
   the run emitted before dying. *)
let interrupt ?(mode = Mac_sim.Engine.Dense) ?(with_sink = true) ~at
    (r : Diff.run) =
  let snap = ref None in
  let events = ref [] in
  let sink =
    Mac_sim.Sink.make (fun ~round ev -> events := (round, ev) :: !events)
  in
  let adversary =
    Mac_adversary.Adversary.create_q ~name:r.id ~rate:r.rate ~burst:r.burst
      ~pacing:r.pacing r.pattern
  in
  let config =
    { (Mac_sim.Engine.default_config ~rounds:r.rounds) with
      mode; drain_limit = r.drain; strict = false; check_schedule = false;
      sink = (if with_sink then Some sink else None); faults = r.faults;
      checkpoint_every = at;
      on_checkpoint = Some (fun s -> snap := Some s; raise Interrupted) }
  in
  (match
     Mac_sim.Engine.run ~config ~algorithm:r.algorithm ~n:r.n ~k:r.k
       ~adversary ~rounds:r.rounds ()
   with
   | _ -> Alcotest.failf "%s: checkpoint at round %d never fired" r.id at
   | exception Interrupted -> ());
  (Option.get !snap, List.rev !events)

let check_events id expected got =
  if expected <> got then begin
    let show (round, ev) =
      Printf.sprintf "r%d %s" round (Mac_channel.Event.to_string ev)
    in
    let rec first i ea eg =
      match (ea, eg) with
      | [], [] ->
        Alcotest.failf "%s: streams differ but no divergent event found" id
      | e :: _, [] ->
        Alcotest.failf "%s: resumed stream ends at event %d; expected %s" id i
          (show e)
      | [], e :: _ ->
        Alcotest.failf "%s: resumed stream has extra event %d: %s" id i (show e)
      | e :: ta, e' :: tg ->
        if e <> e' then
          Alcotest.failf "%s: first divergence at event %d: expected %s, got %s"
            id i (show e) (show e')
        else first (i + 1) ta tg
    in
    first 0 expected got
  end

let check_summaries id a b =
  Alcotest.(check string) (id ^ ": summary")
    (Mac_sim.Export.summary_json a) (Mac_sim.Export.summary_json b);
  Alcotest.(check string) (id ^ ": queue series")
    (Mac_sim.Export.series_csv a) (Mac_sim.Export.series_csv b)

(* The core property. [straight], [interrupted] and [resumer] must be the
   same configuration with independently created pattern state (patterns
   are stateful; each run needs its own). *)
let check_resume ~at (straight : Diff.run) interrupted resumer =
  match complete straight with
  | exception Mac_sim.Engine.Protocol_violation _ ->
    (* some random configs legitimately die on a protocol violation;
       there is no completed run to resume, so nothing to compare. A
       violation below, in the interrupted or resumed copy of a config
       whose straight run finished, still fails the test: determinism
       means it can only come from a resume bug. *)
    ()
  | s_sum, s_ev ->
    let snap, prefix = interrupt ~at interrupted in
    let r_sum, suffix = complete ~resume:snap resumer in
    let id = Printf.sprintf "%s@%d" straight.Diff.id at in
    check_summaries id s_sum r_sum;
    check_events id s_ev (prefix @ suffix)

(* Three independently instantiated copies of the same random config. *)
let triple ~seed =
  let a, b = Diff.random_pair ~seed in
  let c, _ = Diff.random_pair ~seed in
  (a, b, c)

let check_seed seed =
  let a, b, c = triple ~seed in
  let rng = Mac_channel.Rng.create ~seed:(seed lxor 0x5bd1e995) in
  let at = 1 + Mac_channel.Rng.int rng a.Diff.rounds in
  check_resume ~at a b c

let test_random_sweep () =
  for seed = 0 to 39 do
    check_seed seed
  done

(* Resume at the injection/drain boundary: the snapshot round equals the
   configured rounds, so the resumed run executes only the drain. *)
let test_boundary_resume () =
  let a, b, c = triple ~seed:17 in
  check_resume ~at:a.Diff.rounds a b c

let qcheck_random_configs =
  QCheck.Test.make ~name:"resume_bit_identical_on_random_configs" ~count:25
    QCheck.(int_range 0 1_000_000)
    (fun seed -> check_seed seed; true)

(* The equivalence check itself runs inside pool workers at jobs 1 and 2:
   resumed runs stay bit-identical off the main domain too. *)
let test_jobs_invariance () =
  let seeds = [ 101; 202; 303; 404 ] in
  List.iter
    (fun jobs ->
      ignore (Mac_sim.Pool.map ~jobs seeds (fun seed -> check_seed seed)))
    [ 1; 2 ]

(* ------------------------------------------------------------------ *)
(* Table-1 catalog: every cell of every row, rounds capped so the three
   runs per cell stay cheap (the resume logic is round-count agnostic). *)

let rounds_cap = 1_500

let spec_to_run (s : Mac_experiments.Scenario.spec) : Diff.run =
  { id = s.id; algorithm = s.algorithm; n = s.n; k = s.k; rate = s.rate;
    burst = s.burst; pacing = s.pacing; pattern = s.pattern;
    rounds = min s.rounds rounds_cap; drain = min s.drain rounds_cap;
    faults = s.faults }

let test_table1_catalog () =
  let catalog () =
    List.map spec_to_run (Mac_experiments.Table1.catalog ~scale:`Quick)
  in
  let rec go i a b c =
    match (a, b, c) with
    | [], [], [] -> ()
    | x :: a, y :: b, z :: c ->
      let at = 1 + ((i * 397) mod x.Diff.rounds) in
      check_resume ~at x y z;
      go (i + 1) a b c
    | _ -> assert false
  in
  go 0 (catalog ()) (catalog ()) (catalog ())

(* ------------------------------------------------------------------ *)
(* Checkpoint files. *)

let temp_path suffix = Filename.temp_file "mac_ckpt" suffix

let test_file_roundtrip () =
  let a, b, c = triple ~seed:5 in
  let at = max 1 (a.Diff.rounds / 2) in
  let snap, prefix = interrupt ~at b in
  let path = temp_path ".bin" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      Mac_sim.Checkpoint.write ~path snap;
      match Mac_sim.Checkpoint.read ~path with
      | Error msg -> Alcotest.fail msg
      | Ok snap' ->
        Alcotest.(check int) "round survives the file"
          (Mac_sim.Engine.snapshot_round snap)
          (Mac_sim.Engine.snapshot_round snap');
        Alcotest.(check string) "algorithm survives the file"
          (Mac_sim.Engine.snapshot_algorithm snap)
          (Mac_sim.Engine.snapshot_algorithm snap');
        (* resuming from the re-read snapshot is still bit-identical *)
        let s_sum, s_ev = complete a in
        let r_sum, suffix = complete ~resume:snap' c in
        check_summaries "file-roundtrip" s_sum r_sum;
        check_events "file-roundtrip" s_ev (prefix @ suffix);
        let d = Mac_sim.Checkpoint.describe snap' in
        Alcotest.(check bool)
          (Printf.sprintf "describe mentions the algorithm (%s)" d)
          true
          (let name = Mac_sim.Engine.snapshot_algorithm snap' in
           let rec has i =
             i + String.length name <= String.length d
             && (String.sub d i (String.length name) = name || has (i + 1))
           in
           has 0))

let expect_error what = function
  | Error _ -> ()
  | Ok _ -> Alcotest.failf "%s: expected an error" what

let write_string path s =
  let oc = open_out_bin path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc s)

let read_string path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let test_file_errors () =
  let missing = temp_path ".bin" in
  Sys.remove missing;
  expect_error "missing file" (Mac_sim.Checkpoint.read ~path:missing);
  let path = temp_path ".bin" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      write_string path "not a checkpoint\n";
      expect_error "bad magic" (Mac_sim.Checkpoint.read ~path);
      write_string path "MACCKPT 999\n{}\n";
      expect_error "future version" (Mac_sim.Checkpoint.read ~path);
      (* a real checkpoint, truncated mid-blob *)
      let _, b, _ = triple ~seed:3 in
      let snap, _ = interrupt ~at:50 b in
      Mac_sim.Checkpoint.write ~path snap;
      let whole = read_string path in
      write_string path (String.sub whole 0 (String.length whole - 20));
      expect_error "truncated blob" (Mac_sim.Checkpoint.read ~path))

(* v2 corruption: any truncation, or a single flipped bit anywhere in
   the file — magic line, metadata, CRC digits, blob — must surface as a
   clean [Error], never an [Ok] or a crash. The header is covered by the
   magic/version check, the metadata line by meta_crc32, the blob by
   blob_crc32. *)
let qcheck_corruption =
  let whole =
    lazy
      (let _, b, _ = triple ~seed:21 in
       let snap, _ = interrupt ~at:40 b in
       let path = temp_path ".bin" in
       Fun.protect
         ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
         (fun () ->
           Mac_sim.Checkpoint.write ~path snap;
           read_string path))
  in
  QCheck.Test.make ~name:"corrupt_v2_checkpoint_rejected_cleanly" ~count:80
    QCheck.(pair bool (int_range 0 10_000_000))
    (fun (truncate, r) ->
      let whole = Lazy.force whole in
      let len = String.length whole in
      let corrupt =
        if truncate then String.sub whole 0 (r mod len)
        else begin
          let pos = r mod len in
          let bit = r / len mod 8 in
          let b = Bytes.of_string whole in
          Bytes.set b pos
            (Char.chr (Char.code (Bytes.get b pos) lxor (1 lsl bit)));
          Bytes.to_string b
        end
      in
      let path = temp_path ".bin" in
      Fun.protect
        ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
        (fun () ->
          write_string path corrupt;
          match Mac_sim.Checkpoint.read ~path with
          | Error _ -> true
          | Ok _ -> false))

(* Keep-last-good rotation: the previous generation survives as .prev,
   and a corrupt or missing newest file salvages it. *)
let test_rotation_salvage () =
  let _, b, _ = triple ~seed:23 in
  let c1, _ = interrupt ~at:30 b in
  let _, b2, _ = triple ~seed:23 in
  let c2, _ = interrupt ~at:60 b2 in
  let path = temp_path ".bin" in
  (* temp_path creates the file; rotation wants a fresh path *)
  Sys.remove path;
  let prev = Mac_sim.Checkpoint.prev_path path in
  let cleanup () =
    List.iter
      (fun p -> try Sys.remove p with Sys_error _ -> ())
      [ path; prev ]
  in
  Fun.protect ~finally:cleanup (fun () ->
      Mac_sim.Checkpoint.write_rotated ~path c1;
      Alcotest.(check bool) "no .prev after the first write" false
        (Sys.file_exists prev);
      Mac_sim.Checkpoint.write_rotated ~path c2;
      Alcotest.(check bool) ".prev exists after the second write" true
        (Sys.file_exists prev);
      (match Mac_sim.Checkpoint.read_latest ~path with
       | Ok (snap, `Current) ->
         Alcotest.(check int) "newest generation wins" 60
           (Mac_sim.Engine.snapshot_round snap)
       | Ok (_, `Salvaged _) -> Alcotest.fail "intact newest must not salvage"
       | Error msg -> Alcotest.fail msg);
      (* flip one bit of the newest: the previous generation salvages *)
      let whole = read_string path in
      let bs = Bytes.of_string whole in
      let pos = Bytes.length bs / 2 in
      Bytes.set bs pos (Char.chr (Char.code (Bytes.get bs pos) lxor 0x10));
      write_string path (Bytes.to_string bs);
      (match Mac_sim.Checkpoint.read_latest ~path with
       | Ok (snap, `Salvaged reason) ->
         Alcotest.(check int) "salvaged the previous generation" 30
           (Mac_sim.Engine.snapshot_round snap);
         Alcotest.(check bool)
           (Printf.sprintf "salvage reason names the file (%s)" reason)
           true
           (String.length reason > 0)
       | Ok (_, `Current) -> Alcotest.fail "corrupt newest read as current"
       | Error msg -> Alcotest.fail msg);
      (* newest deleted entirely: still salvages *)
      Sys.remove path;
      (match Mac_sim.Checkpoint.read_latest ~path with
       | Ok (_, `Salvaged _) -> ()
       | Ok (_, `Current) -> Alcotest.fail "missing newest read as current"
       | Error msg -> Alcotest.fail msg);
      (* both gone: a plain error *)
      Sys.remove prev;
      match Mac_sim.Checkpoint.read_latest ~path with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail "expected an error with both generations gone")

(* Version-1 files carry no checksums but must stay readable. *)
let test_v1_still_readable () =
  let _, b, _ = triple ~seed:11 in
  let snap, _ = interrupt ~at:25 b in
  let blob = Marshal.to_string (snap : Mac_sim.Engine.snapshot) [] in
  let path = temp_path ".bin" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      write_string path ("MACCKPT 1\n{\"legacy\": 1}\n" ^ blob);
      match Mac_sim.Checkpoint.read ~path with
      | Error msg -> Alcotest.fail msg
      | Ok snap' ->
        Alcotest.(check int) "v1 round survives" 25
          (Mac_sim.Engine.snapshot_round snap'))

(* ------------------------------------------------------------------ *)
(* Engine-side validation: a snapshot must match the resuming run. *)

let expect_invalid what f =
  match f () with
  | _ -> Alcotest.failf "%s: expected Invalid_argument" what
  | exception Invalid_argument _ -> ()

let test_resume_validation () =
  let _, b, c = triple ~seed:9 in
  let snap, _ = interrupt ~at:(max 1 (b.Diff.rounds / 2)) b in
  expect_invalid "wrong n" (fun () ->
      complete ~resume:snap { c with Diff.n = c.Diff.n + 1 });
  expect_invalid "wrong rounds" (fun () ->
      complete ~resume:snap { c with Diff.rounds = c.Diff.rounds + 1 });
  expect_invalid "wrong drain" (fun () ->
      complete ~resume:snap { c with Diff.drain = c.Diff.drain + 1 });
  let other : Mac_channel.Algorithm.t =
    if Mac_sim.Engine.snapshot_algorithm snap = "count-hop" then
      (module Mac_routing.Orchestra)
    else (module Mac_routing.Count_hop)
  in
  expect_invalid "wrong algorithm" (fun () ->
      complete ~resume:snap { c with Diff.algorithm = other })

(* Telemetry sampling must not perturb checkpoints: the snapshot file
   written at the same round is byte-identical whether or not a probe is
   attached (with cadences chosen so samples and checkpoints interleave). *)
let test_checkpoint_bytes_telemetry_invariant () =
  let run telemetry =
    let path = temp_path ".bin" in
    Fun.protect
      ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
      (fun () ->
        let adversary =
          Mac_adversary.Adversary.create ~rate:0.7 ~burst:2.0
            (Mac_adversary.Pattern.uniform ~n:6 ~seed:29)
        in
        let config =
          { (Mac_sim.Engine.default_config ~rounds:2_000) with
            drain_limit = 500;
            checkpoint_every = 300;
            on_checkpoint = Some (fun s -> Mac_sim.Checkpoint.write ~path s);
            telemetry }
        in
        let summary =
          Mac_sim.Engine.run ~config ~algorithm:(module Mac_routing.Count_hop)
            ~n:6 ~k:2 ~adversary ~rounds:2_000 ()
        in
        (summary, read_string path))
  in
  let s_off, bytes_off = run None in
  let probe = Mac_sim.Telemetry.probe ~every:77 (Mac_sim.Telemetry.create ()) in
  let s_on, bytes_on = run (Some probe) in
  Alcotest.(check bool) "summaries identical" true (s_off = s_on);
  Alcotest.(check bool) "probe saw samples" true
    (Mac_sim.Telemetry.sample probe.Mac_sim.Telemetry.registry <> []);
  Alcotest.(check bool) "last checkpoint byte-identical" true
    (bytes_off = bytes_on)

(* Satellite regression: ~rounds disagreeing with config.rounds used to be
   silently resolved in config's favour; it must be rejected. *)
let test_rounds_config_mismatch () =
  let adversary =
    Mac_adversary.Adversary.create ~rate:0.5 ~burst:2.0
      (Mac_adversary.Pattern.uniform ~n:6 ~seed:1)
  in
  let config = Mac_sim.Engine.default_config ~rounds:100 in
  expect_invalid "rounds/config mismatch" (fun () ->
      Mac_sim.Engine.run ~config ~algorithm:(module Mac_routing.Orchestra) ~n:6
        ~k:3 ~adversary ~rounds:99 ())

(* ------------------------------------------------------------------ *)
(* Scenario-level resume: completion markers skip finished scenarios and
   replay their recorded JSON rows byte-for-byte. *)

let temp_dir () =
  let d = Filename.temp_file "mac_resume" "" in
  Sys.remove d;
  Sys.mkdir d 0o755;
  d

let small_spec ~id ~seed =
  Mac_experiments.Scenario.spec ~id ~algorithm:(module Mac_routing.Count_hop)
    ~n:6 ~k:2 ~rate:0.5 ~burst:2.0
    ~pattern:(Mac_adversary.Pattern.uniform ~n:6 ~seed)
    ~rounds:800 ~drain:200 ()

let test_scenario_resumable () =
  let dir = temp_dir () in
  let checks = [ Mac_experiments.Scenario.cap_at_most 2 ] in
  let run () =
    Mac_experiments.Scenario.run_resumable ~checks ~resume_dir:dir
      ~experiment:"exp" (small_spec ~id:"row/cell" ~seed:1)
  in
  let r1 = run () in
  (match r1 with
   | Mac_experiments.Scenario.Fresh _ -> ()
   | Cached _ -> Alcotest.fail "first run must simulate");
  let r2 = run () in
  (match r2 with
   | Mac_experiments.Scenario.Cached _ -> ()
   | Fresh _ -> Alcotest.fail "second run must hit the marker");
  let json r = Mac_experiments.Scenario.resumed_json ~experiment:"exp" r in
  Alcotest.(check string) "replayed row is byte-identical" (json r1) (json r2);
  Alcotest.(check string) "id" "row/cell"
    (Mac_experiments.Scenario.resumed_id r2);
  Alcotest.(check string) "verdict"
    (Mac_experiments.Scenario.resumed_verdict r1)
    (Mac_experiments.Scenario.resumed_verdict r2);
  Alcotest.(check bool) "passed"
    (Mac_experiments.Scenario.resumed_passed r1)
    (Mac_experiments.Scenario.resumed_passed r2);
  (* a corrupt marker is a miss: the scenario reruns (deterministically,
     so the row comes back identical) and the marker is rewritten *)
  let marker =
    Mac_experiments.Scenario.marker_path ~resume_dir:dir "row/cell"
  in
  Alcotest.(check bool) "marker exists" true (Sys.file_exists marker);
  write_string marker "garbage";
  let r3 = run () in
  (match r3 with
   | Mac_experiments.Scenario.Fresh _ -> ()
   | Cached _ -> Alcotest.fail "corrupt marker must not be trusted");
  Alcotest.(check string) "rerun row matches" (json r1) (json r3);
  (match run () with
   | Mac_experiments.Scenario.Cached _ -> ()
   | Fresh _ -> Alcotest.fail "marker must be rewritten after the rerun")

(* A half-finished sweep resumed at a different jobs count still produces
   the original rows, in order. *)
let test_resumable_batch_jobs () =
  let specs () = List.init 4 (fun i ->
      small_spec ~id:(Printf.sprintf "batch/cell-%d" i) ~seed:(10 + i))
  in
  let rows ~jobs ~dir specs =
    Mac_sim.Pool.map ~jobs specs (fun s ->
        Mac_experiments.Scenario.resumed_json ~experiment:"batch"
          (Mac_experiments.Scenario.run_resumable ~resume_dir:dir
             ~experiment:"batch" s))
  in
  let reference = rows ~jobs:1 ~dir:(temp_dir ()) (specs ()) in
  let dir = temp_dir () in
  (* first two cells complete, then the sweep dies *)
  ignore (rows ~jobs:1 ~dir (List.filteri (fun i _ -> i < 2) (specs ())));
  let resumed = rows ~jobs:2 ~dir (specs ()) in
  List.iteri
    (fun i (a, b) ->
      Alcotest.(check string) (Printf.sprintf "row %d" i) a b)
    (List.combine reference resumed)

(* ------------------------------------------------------------------ *)
(* Sparse mode. A low-rate pair-TDMA run spends most rounds in analytic
   skips; the checkpoint cadence forces each skip to land exactly on the
   snapshot boundary, so the snapshot below is taken "mid-skip" — the
   state the fast path reconstructs, never stepped to concretely. *)

let sparse_run () : Diff.run =
  { id = "sparse-mid-skip";
    algorithm = (module Mac_routing.Pair_tdma : Mac_channel.Algorithm.S);
    n = 8; k = 2;
    rate = Mac_channel.Qrat.make 1 40;
    burst = Mac_channel.Qrat.of_int 2;
    pacing = Mac_adversary.Adversary.Greedy;
    pattern = Mac_adversary.Pattern.uniform ~n:8 ~seed:33;
    rounds = 3_000; drain = 400; faults = None }

(* A snapshot written by a skipping sparse run resumes bit-identically —
   in sparse mode and, cross-mode, in dense mode. *)
let test_sparse_resume_mid_skip () =
  let s_sum, s_ev = complete (sparse_run ()) in
  let at = 1_237 in  (* coprime to the TDMA cycle: lands inside stretches *)
  let snap, _ =
    interrupt ~mode:Mac_sim.Engine.Sparse ~with_sink:false ~at (sparse_run ())
  in
  Alcotest.(check int) "snapshot at the cadence round" at
    (Mac_sim.Engine.snapshot_round snap);
  let expected_suffix = List.filter (fun (round, _) -> round >= at) s_ev in
  List.iter
    (fun (label, mode) ->
      let r_sum, suffix = complete ~mode ~resume:snap (sparse_run ()) in
      check_summaries label s_sum r_sum;
      check_events label expected_suffix suffix)
    [ ("sparse-resumes-sparse", Mac_sim.Engine.Sparse);
      ("sparse-resumes-dense", Mac_sim.Engine.Dense) ]

(* Dense and sparse runs of the same config write byte-identical
   checkpoint files at every cadence point. *)
let test_sparse_checkpoint_bytes () =
  let collect mode =
    let snaps = ref [] in
    let r = sparse_run () in
    let adversary =
      Mac_adversary.Adversary.create_q ~name:r.id ~rate:r.rate ~burst:r.burst
        ~pacing:r.pacing r.pattern
    in
    let config =
      { (Mac_sim.Engine.default_config ~rounds:r.rounds) with
        mode; drain_limit = r.drain; strict = false;
        checkpoint_every = 449;
        on_checkpoint = Some (fun s -> snaps := Marshal.to_string s [] :: !snaps) }
    in
    ignore
      (Mac_sim.Engine.run ~config ~algorithm:r.algorithm ~n:r.n ~k:r.k
         ~adversary ~rounds:r.rounds ());
    List.rev !snaps
  in
  let dense = collect Mac_sim.Engine.Dense in
  let sparse = collect Mac_sim.Engine.Sparse in
  Alcotest.(check int) "same checkpoint count"
    (List.length dense) (List.length sparse);
  Alcotest.(check bool) "several cadence points" true (List.length dense > 3);
  List.iteri
    (fun i (d, s) ->
      if not (String.equal d s) then
        Alcotest.failf "checkpoint %d differs between dense and sparse" i)
    (List.combine dense sparse)

let () =
  Alcotest.run "checkpoint"
    [ ("resume-equivalence",
       [ Alcotest.test_case "random configs, seeds 0..39" `Slow
           test_random_sweep;
         Alcotest.test_case "injection/drain boundary" `Quick
           test_boundary_resume;
         Alcotest.test_case "jobs 1 and 2" `Quick test_jobs_invariance;
         Alcotest.test_case "Table-1 catalog" `Slow test_table1_catalog;
         QCheck_alcotest.to_alcotest qcheck_random_configs;
         Alcotest.test_case "sparse resume mid-skip" `Quick
           test_sparse_resume_mid_skip;
         Alcotest.test_case "sparse checkpoint bytes" `Quick
           test_sparse_checkpoint_bytes ]);
      ("checkpoint-files",
       [ Alcotest.test_case "write/read round-trip" `Quick test_file_roundtrip;
         Alcotest.test_case "rejects junk" `Quick test_file_errors;
         QCheck_alcotest.to_alcotest qcheck_corruption;
         Alcotest.test_case "rotation and salvage" `Quick
           test_rotation_salvage;
         Alcotest.test_case "v1 files still readable" `Quick
           test_v1_still_readable;
         Alcotest.test_case "telemetry leaves checkpoints untouched" `Quick
           test_checkpoint_bytes_telemetry_invariant ]);
      ("validation",
       [ Alcotest.test_case "mismatched snapshots rejected" `Quick
           test_resume_validation;
         Alcotest.test_case "rounds/config mismatch rejected" `Quick
           test_rounds_config_mismatch ]);
      ("scenario-resume",
       [ Alcotest.test_case "markers replay rows byte-for-byte" `Quick
           test_scenario_resumable;
         Alcotest.test_case "half-finished sweep, jobs 1 -> 2" `Quick
           test_resumable_batch_jobs ]) ]
