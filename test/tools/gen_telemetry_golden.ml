(* Regenerates test/golden/telemetry.prom:

     dune exec test/tools/gen_telemetry_golden.exe > test/golden/telemetry.prom

   The registry built here must stay in lock-step with
   [reference_registry] in test/test_telemetry.ml — the golden test
   compares that registry's rendering against the file this prints. *)

module T = Mac_sim.Telemetry
module H = Mac_sim.Histogram

let () =
  let r = T.create ~labels:[ ("scenario", "t1/cell \"a\"") ] () in
  T.add (T.counter r ~help:"Packets delivered." "eear_delivered_total") 42;
  let g = T.gauge r ~help:"Current backlog." "eear_backlog_packets" in
  T.set_gauge g 17.0;
  let f = T.gauge r "fractional" in
  T.set_gauge f 0.125;
  let nf = T.gauge r "nonfinite" in
  T.set_gauge nf infinity;
  let h = T.histogram r ~help:"Delays." "eear_delay_rounds" in
  List.iter (H.record h) [ 1; 1; 2; 100; 1000 ];
  T.add (T.counter r ~labels:[ ("phase", "inject") ] "eear_phase_ns_total") 100;
  T.add (T.counter r ~labels:[ ("phase", "resolve") ] "eear_phase_ns_total") 200;
  print_string (T.render r)
