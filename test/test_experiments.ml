(* Tests for the experiments layer: the Table-1 bound formulas, the scenario
   runner and its checkers, and quick-scale executions of the catalog. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_float = Alcotest.(check (float 1e-6))

open Mac_experiments

(* ---- Bounds formulas ---- *)

let test_orchestra_bound () =
  check_float "2n^3+b" 2004.0 (Bounds.orchestra_queue_bound ~n:10 ~beta:4.0);
  check_int "big threshold" 99 (Bounds.orchestra_big_threshold ~n:10)

let test_count_hop_bounds () =
  check_float "paper" 2040.0 (Bounds.count_hop_latency ~n:10 ~rho:0.9 ~beta:2.0);
  check_float "impl" 3440.0 (Bounds.count_hop_latency_impl ~n:10 ~rho:0.9 ~beta:2.0)

let test_k_cycle_rate () =
  check_float "(k-1)/(n-1)" (3.0 /. 11.0) (Bounds.k_cycle_rate ~n:12 ~k:4);
  (* the n <= 2k adjustment feeds through *)
  check_float "adjusted" (3.0 /. 6.0) (Bounds.k_cycle_rate ~n:7 ~k:6);
  check_float "latency" 408.0 (Bounds.k_cycle_latency ~n:12 ~beta:2.0)

let test_k_cycle_impl_rate () =
  (* one group in ceil(n/(k-1)) owns a flood's rounds *)
  check_float "n=12 k=4" 0.25 (Bounds.k_cycle_rate_impl ~n:12 ~k:4);
  check_float "n=8 k=3" 0.25 (Bounds.k_cycle_rate_impl ~n:8 ~k:3);
  check_float "n=13 k=4 (5 groups)" 0.2 (Bounds.k_cycle_rate_impl ~n:13 ~k:4);
  check_bool "strictly below the paper's threshold" true
    (Bounds.k_cycle_rate_impl ~n:12 ~k:4 < Bounds.k_cycle_rate ~n:12 ~k:4);
  check_bool "still below Theorem 6's k/n" true
    (Bounds.k_cycle_rate_impl ~n:12 ~k:4 < Bounds.oblivious_rate_upper ~n:12 ~k:4)

let test_oblivious_upper () =
  check_float "k/n" (1.0 /. 3.0) (Bounds.oblivious_rate_upper ~n:12 ~k:4)

let test_k_clique_bounds () =
  check_float "latency rate" (16.0 /. 480.0) (Bounds.k_clique_latency_rate ~n:12 ~k:4);
  check_float "stable rate" (16.0 /. 240.0) (Bounds.k_clique_stable_rate ~n:12 ~k:4);
  check_float "latency" 360.0 (Bounds.k_clique_latency ~n:12 ~k:4 ~beta:2.0)

let test_k_subsets_bounds () =
  check_float "rate" (6.0 /. 30.0) (Bounds.k_subsets_rate ~n:6 ~k:3);
  check_float "queues" (2.0 *. 20.0 *. 40.0)
    (Bounds.k_subsets_queue_bound ~n:6 ~k:3 ~beta:4.0)

let test_adjust_window_impl_bound_grows_with_rho () =
  let b1 = Bounds.adjust_window_latency_impl ~n:4 ~rho:0.3 ~beta:2.0 in
  let b2 = Bounds.adjust_window_latency_impl ~n:4 ~rho:0.9 ~beta:2.0 in
  check_bool "monotone in rho" true (b2 >= b1);
  check_bool "at least two initial windows" true
    (b1 >= 2.0 *. float_of_int (Mac_routing.Adjust_window.initial_window ~n:4))

(* ---- Scenario runner ---- *)

let simple_spec ?(rate = 0.1) () =
  Scenario.spec ~id:"test" ~algorithm:(module Mac_routing.Pair_tdma) ~n:4 ~k:2
    ~rate ~burst:2.0 ~pattern:(Mac_adversary.Pattern.round_robin ~n:4)
    ~rounds:20_000 ()

let test_scenario_checks_pass () =
  let o =
    Scenario.run
      ~checks:
        [ Scenario.cap_at_most 2; Scenario.clean; Scenario.stable;
          Scenario.delivered_all; Scenario.latency_under 1.0e9 ]
      (simple_spec ())
  in
  check_bool "passed" true o.passed;
  check_int "all five checks ran" 5 (List.length o.checks)

let test_scenario_check_failure_detected () =
  let o = Scenario.run ~checks:[ Scenario.latency_under 1.0 ] (simple_spec ()) in
  check_bool "failed" false o.passed

let test_scenario_unstable_check () =
  (* pair-tdma drowns under a dedicated pair flood above its threshold *)
  let spec =
    Scenario.spec ~id:"drown" ~algorithm:(module Mac_routing.Pair_tdma) ~n:4
      ~k:2 ~rate:0.3 ~burst:2.0
      ~pattern:(Mac_adversary.Pattern.pair_flood ~src:1 ~dst:2)
      ~rounds:30_000 ~drain:0 ()
  in
  let o = Scenario.run ~checks:[ Scenario.unstable ] spec in
  check_bool "unstable detected" true o.passed

let test_schedule_of () =
  check_bool "oblivious exposes schedule" true
    (Scenario.schedule_of (module Mac_routing.Pair_tdma) ~n:4 ~k:2 <> None);
  check_bool "adaptive has none" true
    (Scenario.schedule_of (module Mac_routing.Orchestra) ~n:4 ~k:3 = None)

(* ---- catalog ---- *)

(* ---- quarantine markers ---- *)

let temp_dir prefix =
  let dir = Filename.temp_file prefix "" in
  Sys.remove dir;
  Sys.mkdir dir 0o755;
  dir

(* Regression: [quarantine_lookup] read its three lines as a tuple of
   [input_line]s, which OCaml evaluates in unspecified (in practice
   right-to-left) order — the file parsed backwards, the magic never
   matched, and every marker written by [note_quarantined] was dead
   weight. *)
let test_quarantine_marker_roundtrip () =
  let dir = temp_dir "eear_quar" in
  Scenario.note_quarantined ~resume_dir:dir ~id:"row/cell-1" ~failures:3
    ~error:"injected boom";
  Alcotest.(check (option int))
    "marker found with its failure count" (Some 3)
    (Scenario.quarantine_lookup ~resume_dir:dir "row/cell-1");
  Alcotest.(check (option int))
    "other ids unaffected" None
    (Scenario.quarantine_lookup ~resume_dir:dir "row/cell-2");
  (* A truncated or foreign file must read as "not quarantined". *)
  let oc = open_out (Scenario.quarantine_path ~resume_dir:dir "row/cell-3") in
  output_string oc "not a marker\n";
  close_out oc;
  Alcotest.(check (option int))
    "garbage marker ignored" None
    (Scenario.quarantine_lookup ~resume_dir:dir "row/cell-3")

(* The marker must actually short-circuit a later supervised resumable
   sweep: the quarantined job is reported [Quarantined] and never runs —
   exactly the wiring table1's [run_resumable_s] uses. *)
let test_resumable_sweep_honors_marker () =
  let dir = temp_dir "eear_quar_sweep" in
  Scenario.note_quarantined ~resume_dir:dir ~id:"bad" ~failures:2
    ~error:"earlier failure";
  let ran_bad = ref false in
  let outcomes =
    Scenario.run_batch_s
      ~policy:{ Mac_sim.Supervisor.default_policy with keep_going = true }
      ~quarantined:(fun cid -> Scenario.quarantine_lookup ~resume_dir:dir cid)
      [ ("good", fun ~heartbeat:_ -> 1);
        ( "bad",
          fun ~heartbeat:_ ->
            ran_bad := true;
            2 ) ]
  in
  (match outcomes with
   | [ ("good", Ok 1);
       ("bad", Error (Mac_sim.Supervisor.Quarantined { failures = 2 })) ] ->
     ()
   | _ -> Alcotest.fail "expected good=Ok and bad=Quarantined");
  check_bool "quarantined job never ran" false !ran_bad

let test_table1_catalog_complete () =
  check_int "nine rows" 9 (List.length Table1.all);
  List.iter
    (fun (t : Table1.t) ->
      check_bool "id prefixed" true (String.length t.id > 3 && String.sub t.id 0 3 = "T1."))
    Table1.all;
  check_bool "find works" true (Table1.find "T1.orchestra" == List.hd Table1.all)

let test_table1_quick_rows_pass () =
  (* the full sweep is the bench's job; spot-check two structurally
     different rows at quick scale *)
  List.iter
    (fun id ->
      let t = Table1.find id in
      List.iter
        (fun (o : Scenario.outcome) ->
          check_bool (Printf.sprintf "%s/%s passes" id o.spec.id) true o.passed)
        (t.run ~scale:`Quick ()))
    [ "T1.k-clique"; "T1.obl-impossible" ]

let test_figures_quick_produce_rows () =
  List.iter
    (fun (f : Figures.t) ->
      let report, outcomes = f.run ~scale:`Quick () in
      check_bool (f.id ^ " yields rows") true (String.length (Mac_sim.Report.to_string report) > 0);
      check_bool (f.id ^ " yields outcomes") true (outcomes <> []))
    [ Figures.energy ]

let () =
  Alcotest.run "experiments"
    [ ("bounds",
       [ Alcotest.test_case "orchestra" `Quick test_orchestra_bound;
         Alcotest.test_case "count-hop" `Quick test_count_hop_bounds;
         Alcotest.test_case "k-cycle" `Quick test_k_cycle_rate;
         Alcotest.test_case "k-cycle impl frontier" `Quick test_k_cycle_impl_rate;
         Alcotest.test_case "oblivious upper" `Quick test_oblivious_upper;
         Alcotest.test_case "k-clique" `Quick test_k_clique_bounds;
         Alcotest.test_case "k-subsets" `Quick test_k_subsets_bounds;
         Alcotest.test_case "adjust-window impl" `Quick
           test_adjust_window_impl_bound_grows_with_rho ]);
      ("scenario",
       [ Alcotest.test_case "checks pass" `Quick test_scenario_checks_pass;
         Alcotest.test_case "failure detected" `Quick test_scenario_check_failure_detected;
         Alcotest.test_case "unstable check" `Slow test_scenario_unstable_check;
         Alcotest.test_case "schedule_of" `Quick test_schedule_of ]);
      ("quarantine",
       [ Alcotest.test_case "marker round-trip" `Quick
           test_quarantine_marker_roundtrip;
         Alcotest.test_case "sweep honors marker" `Quick
           test_resumable_sweep_honors_marker ]);
      ("catalog",
       [ Alcotest.test_case "table1 complete" `Quick test_table1_catalog_complete;
         Alcotest.test_case "table1 quick rows" `Slow test_table1_quick_rows_pass;
         Alcotest.test_case "figures quick" `Slow test_figures_quick_produce_rows ]) ]
