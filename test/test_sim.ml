(* Tests for the analysis layer: the stability classifier, the metrics
   collector arithmetic, and the report renderer. *)

open Mac_sim.Stability

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let series f n = Array.init n (fun i -> (i * 100, f i))

let verdict s = (Mac_sim.Stability.classify s).verdict

(* ---- Stability ---- *)

let test_flat_series_is_stable () =
  Alcotest.(check bool) "flat" true (verdict (series (fun _ -> 40) 64) = Stable)

let test_linear_growth_is_unstable () =
  check_bool "linear" true (verdict (series (fun i -> 5 * i) 64) = Unstable)

let test_noisy_plateau_is_stable () =
  let s = series (fun i -> 50 + (13 * i mod 17)) 64 in
  check_bool "noisy plateau" true (verdict s = Stable)

let test_small_absolute_growth_is_stable () =
  (* backlog 1 -> 3: real systems jitter; the +8 slack must absorb it *)
  let s = series (fun i -> if i < 32 then 1 else 3) 64 in
  check_bool "tiny growth tolerated" true (verdict s = Stable)

let test_decay_is_stable () =
  let s = series (fun i -> max 0 (500 - (10 * i))) 64 in
  check_bool "draining" true (verdict s = Stable)

let test_short_series_inconclusive () =
  check_bool "short" true (verdict (series (fun i -> i) 4) = Inconclusive)

let test_slope_estimate () =
  let r = Mac_sim.Stability.classify (series (fun i -> 5 * i) 64) in
  (* 5 packets per sample, 100 rounds per sample -> 0.05/round *)
  Alcotest.(check (float 0.005)) "slope per round" 0.05 r.slope

let test_step_up_then_flat () =
  (* A one-off burst absorbed into a higher plateau is stable. *)
  let s = series (fun i -> if i < 8 then 10 else 200) 64 in
  check_bool "new plateau stable" true (verdict s = Stable)

(* ---- Metrics ---- *)

let collector () =
  Mac_sim.Metrics.create ~algorithm:"a" ~adversary:"b" ~n:4 ~k:2 ~cap:2
    ~sample_every:1

let test_metrics_delay_stats () =
  let m = collector () in
  List.iter (fun _ -> Mac_sim.Metrics.note_injection m) [ (); (); () ];
  Mac_sim.Metrics.note_delivery m ~delay:10 ~hops:1;
  Mac_sim.Metrics.note_delivery m ~delay:30 ~hops:2;
  Mac_sim.Metrics.end_round m ~round:0 ~draining:false;
  let s = Mac_sim.Metrics.finalize m ~final_round:1 ~max_queued_age:7 in
  check_int "max delay" 30 s.max_delay;
  Alcotest.(check (float 0.01)) "mean" 20.0 s.mean_delay;
  check_int "p99" 30 s.p99_delay;
  check_int "max hops" 2 s.max_hops;
  check_int "undelivered" 1 s.undelivered;
  check_int "queued age" 7 s.max_queued_age

let test_metrics_queue_tracking () =
  let m = collector () in
  for _ = 1 to 5 do Mac_sim.Metrics.note_injection m done;
  check_int "total queued" 5 (Mac_sim.Metrics.total_queued m);
  Mac_sim.Metrics.note_delivery m ~delay:1 ~hops:1;
  check_int "after delivery" 4 (Mac_sim.Metrics.total_queued m);
  let s = Mac_sim.Metrics.finalize m ~final_round:0 ~max_queued_age:0 in
  check_int "max total" 5 s.max_total_queue;
  check_int "final" 4 s.final_total_queue

let test_metrics_energy_and_violations () =
  let m = collector () in
  Mac_sim.Metrics.note_on_count m 3; (* over the cap of 2 *)
  Mac_sim.Metrics.note_on_count m 1;
  Mac_sim.Metrics.end_round m ~round:0 ~draining:false;
  Mac_sim.Metrics.end_round m ~round:1 ~draining:false;
  let s = Mac_sim.Metrics.finalize m ~final_round:2 ~max_queued_age:0 in
  check_int "cap exceeded" 1 s.violations.cap_exceeded;
  check_int "max on" 3 s.max_on;
  check_int "station rounds" 4 s.station_rounds;
  check_bool "violations flagged" false (Mac_sim.Metrics.no_violations s)

let test_metrics_energy_per_delivery () =
  let m = collector () in
  Mac_sim.Metrics.note_on_count m 2;
  Mac_sim.Metrics.note_injection m;
  Mac_sim.Metrics.note_delivery m ~delay:0 ~hops:1;
  Mac_sim.Metrics.end_round m ~round:0 ~draining:false;
  let s = Mac_sim.Metrics.finalize m ~final_round:1 ~max_queued_age:0 in
  Alcotest.(check (float 0.001)) "2 station-rounds per delivery" 2.0
    (Mac_sim.Metrics.energy_per_delivery s);
  let empty =
    Mac_sim.Metrics.finalize (collector ()) ~final_round:0 ~max_queued_age:0
  in
  check_bool "nan when nothing delivered" true
    (Float.is_nan (Mac_sim.Metrics.energy_per_delivery empty))

let test_metrics_drain_rounds_split () =
  let m = collector () in
  Mac_sim.Metrics.end_round m ~round:0 ~draining:false;
  Mac_sim.Metrics.end_round m ~round:1 ~draining:true;
  Mac_sim.Metrics.end_round m ~round:2 ~draining:true;
  let s = Mac_sim.Metrics.finalize m ~final_round:3 ~max_queued_age:0 in
  check_int "rounds" 1 s.rounds;
  check_int "drain" 2 s.drain_rounds

(* ---- Report ---- *)

let test_report_render () =
  let r = Mac_sim.Report.create ~header:[ "name"; "value" ] in
  Mac_sim.Report.add_row r [ "alpha"; "1" ];
  Mac_sim.Report.add_row r [ "b" ];
  let text = Mac_sim.Report.to_string r in
  let lines = String.split_on_char '\n' text in
  check_int "header + rule + 2 rows + trailing" 5 (List.length lines);
  check_bool "pads short rows" true
    (List.for_all
       (fun l -> l = "" || String.length l = String.length (List.hd lines))
       lines)

let test_report_too_wide_rejected () =
  let r = Mac_sim.Report.create ~header:[ "one" ] in
  Alcotest.check_raises "too wide"
    (Invalid_argument "Report.add_row: row wider than header") (fun () ->
      Mac_sim.Report.add_row r [ "a"; "b" ])

let test_fmt_float () =
  Alcotest.(check string) "nan" "-" (Mac_sim.Report.fmt_float Float.nan);
  Alcotest.(check string) "zero" "0" (Mac_sim.Report.fmt_float 0.0);
  Alcotest.(check string) "small" "12.3" (Mac_sim.Report.fmt_float 12.3);
  Alcotest.(check string) "large" "12345" (Mac_sim.Report.fmt_float 12345.0);
  check_bool "huge uses scientific" true
    (String.contains (Mac_sim.Report.fmt_float 4.2e9) 'e')

let test_fmt_ratio () =
  Alcotest.(check string) "percentage" "50.0%"
    (Mac_sim.Report.fmt_ratio ~measured:10.0 ~bound:20.0);
  Alcotest.(check string) "no bound" "-"
    (Mac_sim.Report.fmt_ratio ~measured:10.0 ~bound:Float.infinity)

let () =
  Alcotest.run "sim"
    [ ("stability",
       [ Alcotest.test_case "flat stable" `Quick test_flat_series_is_stable;
         Alcotest.test_case "linear unstable" `Quick test_linear_growth_is_unstable;
         Alcotest.test_case "noisy plateau" `Quick test_noisy_plateau_is_stable;
         Alcotest.test_case "tiny growth" `Quick test_small_absolute_growth_is_stable;
         Alcotest.test_case "decay stable" `Quick test_decay_is_stable;
         Alcotest.test_case "short inconclusive" `Quick test_short_series_inconclusive;
         Alcotest.test_case "slope estimate" `Quick test_slope_estimate;
         Alcotest.test_case "step then flat" `Quick test_step_up_then_flat ]);
      ("metrics",
       [ Alcotest.test_case "delay stats" `Quick test_metrics_delay_stats;
         Alcotest.test_case "queue tracking" `Quick test_metrics_queue_tracking;
         Alcotest.test_case "energy/violations" `Quick test_metrics_energy_and_violations;
         Alcotest.test_case "energy per delivery" `Quick test_metrics_energy_per_delivery;
         Alcotest.test_case "drain split" `Quick test_metrics_drain_rounds_split ]);
      ("report",
       [ Alcotest.test_case "render" `Quick test_report_render;
         Alcotest.test_case "too wide" `Quick test_report_too_wide_rejected;
         Alcotest.test_case "fmt_float" `Quick test_fmt_float;
         Alcotest.test_case "fmt_ratio" `Quick test_fmt_ratio ]) ]
