(* Tests for machine-readable export (CSV/JSON), the engine's event trace,
   and the bisection sweep. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let sample_summary () =
  (* comma-free adversary name so the naive column count below is valid *)
  let adversary =
    Mac_adversary.Adversary.create ~name:"uniform-test" ~rate:0.5 ~burst:2.0
      (Mac_adversary.Pattern.uniform ~n:4 ~seed:3)
  in
  Mac_sim.Engine.run ~algorithm:(module Mac_broadcast.Rrw) ~n:4 ~k:4 ~adversary
    ~rounds:2_000 ()

(* ---- CSV ---- *)

let test_csv_shape () =
  let s = sample_summary () in
  let csv = Mac_sim.Export.summaries_csv [ s; s ] in
  let lines = String.split_on_char '\n' (String.trim csv) in
  check_int "header + 2 rows" 3 (List.length lines);
  let width line = List.length (String.split_on_char ',' line) in
  List.iter
    (fun line -> check_int "same column count" (width (List.hd lines)) (width line))
    lines

let contains ~needle haystack =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  go 0

let test_csv_quoting () =
  let s = sample_summary () in
  let crafted = { s with Mac_sim.Metrics.adversary = "a,\"b\"" } in
  check_bool "quotes commas and doubles quotes" true
    (contains ~needle:"\"a,\"\"b\"\"\"" (Mac_sim.Export.summary_csv_row crafted))

let test_series_csv () =
  let s = sample_summary () in
  let rows = String.split_on_char '\n' (String.trim (Mac_sim.Export.series_csv s)) in
  check_int "header + samples"
    (Array.length s.queue_series + 1)
    (List.length rows);
  Alcotest.(check string) "header" "round,total_queued" (List.hd rows)

let test_json_parses_shape () =
  let s = sample_summary () in
  let json = Mac_sim.Export.summary_json s in
  check_bool "object" true
    (String.length json > 2 && json.[0] = '{' && json.[String.length json - 1] = '}');
  check_bool "has algorithm" true (contains ~needle:"\"algorithm\": \"rrw\"" json);
  check_bool "has violations object" true
    (contains ~needle:"\"violations\": {" json)

let test_json_escaping () =
  let s = sample_summary () in
  let crafted =
    { s with
      Mac_sim.Metrics.algorithm = "al\"go\\rhythm";
      adversary = "line1\nline2\ttab\x01ctl" }
  in
  let json = Mac_sim.Export.summary_json crafted in
  check_bool "one line" true (not (String.contains json '\n'));
  check_bool "no raw control chars" true
    (String.for_all (fun c -> Char.code c >= 0x20) json);
  check_bool "quote escaped" true (contains ~needle:{|al\"go\\rhythm|} json);
  check_bool "newline escaped" true (contains ~needle:{|line1\nline2|} json);
  check_bool "control char escaped" true (contains ~needle:{|\u0001ctl|} json);
  Alcotest.(check string) "json_escape itself" {|a\"b\\c\nd\u0000|}
    (Mac_sim.Export.json_escape "a\"b\\c\nd\x00")

(* Non-finite floats (a zero-delivery run's nan mean, an infinite ratio)
   must never leak into emitted JSON or CSV: "%.6g" alone would print the
   invalid JSON tokens [nan]/[inf]. *)
let test_non_finite_floats () =
  let s = sample_summary () in
  let crafted =
    { s with Mac_sim.Metrics.mean_delay = Float.nan; mean_on = Float.infinity }
  in
  let json = Mac_sim.Export.summary_json crafted in
  check_bool "no nan token" false (contains ~needle:"nan" json);
  check_bool "no inf token" false (contains ~needle:"inf" json);
  check_bool "nan field is null" true
    (contains ~needle:"\"mean_delay\": null" json);
  check_bool "inf field is null" true
    (contains ~needle:"\"mean_on\": null" json);
  let row = Mac_sim.Export.summary_csv_row crafted in
  check_bool "csv renders non-finite as dash" false
    (contains ~needle:"nan" row || contains ~needle:"inf" row);
  Alcotest.(check string) "json_float nan" "null"
    (Mac_sim.Export.json_float Float.nan);
  Alcotest.(check string) "json_float -inf" "null"
    (Mac_sim.Export.json_float Float.neg_infinity);
  Alcotest.(check string) "csv_float nan" "-"
    (Mac_sim.Export.csv_float Float.nan);
  Alcotest.(check string) "csv_float finite" "0.25"
    (Mac_sim.Export.csv_float 0.25);
  Alcotest.(check string) "fmt_float inf" "-"
    (Mac_sim.Report.fmt_float Float.infinity);
  Alcotest.(check string) "fmt_float nan" "-"
    (Mac_sim.Report.fmt_float Float.nan)

let test_json_histogram_field () =
  let s = sample_summary () in
  let json = Mac_sim.Export.summary_json s in
  check_bool "has delay_histogram" true
    (contains ~needle:"\"delay_histogram\": [" json);
  (* bucket counts in the export sum to the deliveries *)
  let total = Array.fold_left (fun acc (_, _, c) -> acc + c) 0 s.delay_histogram in
  check_int "histogram covers every delivery" s.delivered total

let test_jsonl_lines_valid () =
  let path = Filename.temp_file "eear_events" ".jsonl" in
  let sink = Mac_sim.Sink.jsonl_file path in
  let adversary =
    Mac_adversary.Adversary.create ~rate:0.6 ~burst:2.0
      (Mac_adversary.Pattern.uniform ~n:4 ~seed:9)
  in
  let config =
    { (Mac_sim.Engine.default_config ~rounds:200) with sink = Some sink }
  in
  ignore
    (Mac_sim.Engine.run ~config ~algorithm:(module Mac_broadcast.Rrw) ~n:4 ~k:4
       ~adversary ~rounds:200 ());
  Mac_sim.Sink.close sink;
  let ic = open_in path in
  let lines = ref 0 in
  (try
     while true do
       let line = input_line ic in
       incr lines;
       check_bool "object per line" true
         (String.length line > 2
          && line.[0] = '{'
          && line.[String.length line - 1] = '}');
       match Mac_channel.Event.of_json_line line with
       | Ok _ -> ()
       | Error msg -> Alcotest.failf "line %d unparseable: %s" !lines msg
     done
   with End_of_file -> ());
  close_in ic;
  Sys.remove path;
  check_bool "stream non-empty" true (!lines > 200)

let test_write_file () =
  let path = Filename.temp_file "eear" ".csv" in
  Mac_sim.Export.write_file ~path "hello\n";
  let ic = open_in path in
  let line = input_line ic in
  close_in ic;
  Sys.remove path;
  Alcotest.(check string) "roundtrip" "hello" line

(* ---- engine trace ---- *)

let test_engine_trace_records_events () =
  let trace = Mac_channel.Trace.create ~capacity:100 ~enabled:true () in
  let adversary =
    Mac_adversary.Adversary.create ~rate:0.5 ~burst:2.0
      (Mac_adversary.Pattern.uniform ~n:4 ~seed:5)
  in
  let config =
    { (Mac_sim.Engine.default_config ~rounds:50) with trace = Some trace }
  in
  let s =
    Mac_sim.Engine.run ~config ~algorithm:(module Mac_broadcast.Rrw) ~n:4 ~k:4
      ~adversary ~rounds:50 ()
  in
  let events = Mac_channel.Trace.dump trace in
  check_bool "events recorded" true (events <> []);
  let count prefix =
    List.length
      (List.filter
         (fun (_, e) -> String.length e >= String.length prefix
                        && String.sub e 0 (String.length prefix) = prefix)
         events)
  in
  check_bool "inject events" true (count "inject" > 0);
  check_bool "deliver events consistent" true (count "deliver" <= s.delivered)

let test_engine_no_trace_by_default () =
  (* merely documents that the default config carries no trace *)
  let cfg = Mac_sim.Engine.default_config ~rounds:10 in
  check_bool "no trace" true (cfg.trace = None)

(* ---- sweep ---- *)

let test_bisect_narrows () =
  (* synthetic probe: stable below 0.37 *)
  let probe ~rho = rho < 0.37 in
  let lo, hi = Mac_experiments.Sweep.bisect ~steps:10 ~lo:0.0 ~hi:1.0 probe in
  check_bool "brackets the frontier" true (lo < 0.37 && 0.37 <= hi);
  check_bool "tight" true (hi -. lo <= 1.0 /. 1024.0 +. 1e-9)

let test_bisect_validates_endpoints () =
  Alcotest.check_raises "lo must be stable"
    (Invalid_argument "Sweep.bisect: not stable at the lower rate") (fun () ->
      ignore (Mac_experiments.Sweep.bisect ~lo:0.5 ~hi:1.0 (fun ~rho -> rho > 0.7)));
  Alcotest.check_raises "hi must be unstable"
    (Invalid_argument "Sweep.bisect: not unstable at the upper rate") (fun () ->
      ignore (Mac_experiments.Sweep.bisect ~lo:0.1 ~hi:0.2 (fun ~rho:_ -> true)))

let test_probe_on_pair_tdma () =
  (* pair-tdma's frontier for a (1,2) flood is 1/(n(n-1)) = 1/12 at n=4 *)
  let probe =
    Mac_experiments.Sweep.stability_probe
      ~algorithm:(module Mac_routing.Pair_tdma) ~n:4 ~k:2
      ~pattern:(fun () -> Mac_adversary.Pattern.pair_flood ~src:1 ~dst:2)
      ~rounds:40_000 ()
  in
  let lo, hi = Mac_experiments.Sweep.bisect ~steps:5 ~lo:0.02 ~hi:0.3 probe in
  let frontier = 1.0 /. 12.0 in
  check_bool
    (Printf.sprintf "frontier %.4f in [%.4f, %.4f]" frontier lo hi)
    true
    (lo <= frontier +. 0.02 && hi >= frontier -. 0.02)

let () =
  Alcotest.run "export"
    [ ("csv",
       [ Alcotest.test_case "shape" `Quick test_csv_shape;
         Alcotest.test_case "quoting" `Quick test_csv_quoting;
         Alcotest.test_case "series" `Quick test_series_csv;
         Alcotest.test_case "write file" `Quick test_write_file ]);
      ("json",
       [ Alcotest.test_case "shape" `Quick test_json_parses_shape;
         Alcotest.test_case "escaping" `Quick test_json_escaping;
         Alcotest.test_case "histogram field" `Quick test_json_histogram_field;
         Alcotest.test_case "non-finite floats" `Quick test_non_finite_floats;
         Alcotest.test_case "jsonl lines valid" `Quick test_jsonl_lines_valid ]);
      ("trace",
       [ Alcotest.test_case "records events" `Quick test_engine_trace_records_events;
         Alcotest.test_case "off by default" `Quick test_engine_no_trace_by_default ]);
      ("sweep",
       [ Alcotest.test_case "bisect narrows" `Quick test_bisect_narrows;
         Alcotest.test_case "validates endpoints" `Quick test_bisect_validates_endpoints;
         Alcotest.test_case "pair-tdma frontier" `Slow test_probe_on_pair_tdma ]) ]
