(* Tests for the typed event stream: JSON round-trips, sink combinators,
   the replay guarantee (a recorded run re-aggregated offline reproduces
   the live metrics), per-station ledgers, the delay histogram, and the
   timeline renderer. *)

open Mac_channel

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ---- Event JSON round-trip ---- *)

let all_variants : Event.t list =
  [ Injected { id = 3; src = 0; dst = 2 };
    Switched_on { station = 5 };
    Switched_off { station = 0 };
    Transmit { station = 1; light = false };
    Transmit { station = 2; light = true };
    Silence;
    Collision { stations = [ 0; 3; 7 ] };
    Heard { station = 4; bits = 12; light = true };
    Heard { station = 4; bits = 0; light = false };
    Delivered { id = 9; from_ = 1; dst = 6; delay = 481; hops = 2 };
    Delivered { id = 0; from_ = 0; dst = 0; delay = 0; hops = 0 };
    Relayed { id = 7; from_ = 2; relay = 3; dst = 5 };
    Stranded { id = 11; station = 2 };
    Cap_exceeded { on_count = 5; cap = 3 };
    Adoption_conflict { stations = [ 1; 2 ] };
    Spurious_adoption { stations = [ 4 ] };
    Round_end { on_count = 2; draining = false };
    Round_end { on_count = 0; draining = true };
    Collision { stations = [] };
    Station_crashed { station = 3; lost = 0 };
    Station_crashed { station = 0; lost = 17 };
    Station_restarted { station = 3 };
    Round_jammed { transmitters = 0; noise = true };
    Round_jammed { transmitters = 1; noise = false };
    Round_jammed { transmitters = 4; noise = false };
    Telemetry { sample = [] };
    Telemetry
      { sample =
          [ ("eear_round", 12_000.0); ("eear_rounds_per_second", 123456.75);
            ("eear_backlog_packets", 0.0);
            ("eear_gc_minor_words_per_round", 0.1000000000000000055511151231257827);
            ("eear_phase_ns{phase=\"inject\"}", 481.0);
            ("odd \\ name", -3.5) ] } ]

let test_json_roundtrip () =
  List.iteri
    (fun i ev ->
      let round = 17 * (i + 1) in
      let line = Event.to_json ~round ev in
      match Event.of_json_line line with
      | Ok (round', ev') ->
        check_int (Printf.sprintf "round of %s" line) round round';
        check_bool (Printf.sprintf "event of %s" line) true (ev = ev')
      | Error msg -> Alcotest.failf "%s: %s" line msg)
    all_variants

let test_json_rejects_malformed () =
  let bad =
    [ "";
      "not json";
      "{\"round\":1}";
      "{\"type\":\"silence\"}";
      "{\"round\":1,\"type\":\"no-such-type\"}";
      "{\"round\":1,\"type\":\"injected\",\"id\":1,\"src\":0}";
      "{\"round\":1,\"type\":\"silence\"} trailing";
      "{\"round\":\"one\",\"type\":\"silence\"}" ]
  in
  List.iter
    (fun line ->
      match Event.of_json_line line with
      | Ok _ -> Alcotest.failf "accepted malformed input %S" line
      | Error _ -> ())
    bad

(* ---- \u escapes ---- *)

let test_unicode_escapes_decode () =
  (match Event.of_json_line {|{"round":1,"type":"\u0073ilence"}|} with
   | Ok (1, Event.Silence) -> ()
   | Ok _ -> Alcotest.fail "\\u0073 decoded to the wrong event"
   | Error msg -> Alcotest.failf "\\u0073ilence rejected: %s" msg);
  (match
     Event.of_json_line
       {|{"round":2,"type":"telemetry","sample":{"caf\u00e9":1.5}}|}
   with
   | Ok (2, Event.Telemetry { sample = [ (k, 1.5) ] }) ->
     Alcotest.(check string) "BMP escape decodes to UTF-8" "caf\xc3\xa9" k
   | Ok _ -> Alcotest.fail "telemetry sample mis-parsed"
   | Error msg -> Alcotest.failf "\\u00e9 rejected: %s" msg);
  match
    Event.of_json_line
      {|{"round":3,"type":"telemetry","sample":{"\ud83d\ude00":1}}|}
  with
  | Ok (3, Event.Telemetry { sample = [ (k, 1.0) ] }) ->
    Alcotest.(check string) "surrogate pair decodes to UTF-8"
      "\xf0\x9f\x98\x80" k
  | Ok _ -> Alcotest.fail "telemetry sample mis-parsed"
  | Error msg -> Alcotest.failf "surrogate pair rejected: %s" msg

(* Bad escapes must come back as [Error] — historically "\uZZZZ" escaped
   as an untyped [Failure] from int_of_string and "\u12_3" (underscores
   are digit separators to OCaml) was silently accepted. *)
let test_unicode_escape_errors_are_typed () =
  List.iter
    (fun line ->
      match Event.of_json_line line with
      | Ok _ -> Alcotest.failf "accepted bad \\u escape %S" line
      | Error _ -> ()
      | exception e ->
        Alcotest.failf "%S leaked exception %s" line (Printexc.to_string e))
    [ {|{"round":1,"type":"\uZZZZ"}|};
      {|{"round":1,"type":"\u12_3"}|};
      {|{"round":1,"type":"\u00"}|};
      {|{"round":1,"type":"\ud800no"}|};
      {|{"round":1,"type":"\udc00"}|};
      {|{"round":1,"type":"\ud800A"}|} ]

(* ---- sink combinators ---- *)

let test_tee_and_close () =
  let seen_a = ref 0 and seen_b = ref 0 in
  let closed = ref [] in
  let sink name seen =
    Mac_sim.Sink.make
      ~close:(fun () -> closed := name :: !closed)
      (fun ~round:_ _ -> incr seen)
  in
  let t = Mac_sim.Sink.tee [ sink "a" seen_a; sink "b" seen_b ] in
  t.emit ~round:0 Event.Silence;
  t.emit ~round:1 (Event.Switched_on { station = 0 });
  Mac_sim.Sink.close t;
  check_int "a saw both" 2 !seen_a;
  check_int "b saw both" 2 !seen_b;
  Alcotest.(check (list string)) "both closed, in order" [ "b"; "a" ] !closed

let test_sample_by_round () =
  let rounds = ref [] in
  let inner = Mac_sim.Sink.make (fun ~round _ -> rounds := round :: !rounds) in
  let s = Mac_sim.Sink.sample ~every:3 inner in
  for r = 0 to 9 do
    s.emit ~round:r Event.Silence;
    s.emit ~round:r (Event.Round_end { on_count = 0; draining = false })
  done;
  Alcotest.(check (list int))
    "whole rounds kept or dropped" [ 0; 0; 3; 3; 6; 6; 9; 9 ]
    (List.rev !rounds)

(* ---- replay: recorded JSONL -> counting sink = live metrics ---- *)

let record_run ~algorithm ~n ~k ~rate ~seed ~rounds ~drain =
  let path = Filename.temp_file "eear_replay" ".jsonl" in
  let sink = Mac_sim.Sink.jsonl_file path in
  let adversary =
    Mac_adversary.Adversary.create ~rate ~burst:2.0
      (Mac_adversary.Pattern.uniform ~n ~seed)
  in
  let config =
    { (Mac_sim.Engine.default_config ~rounds) with
      drain_limit = drain; sink = Some sink }
  in
  let summary =
    Fun.protect
      ~finally:(fun () -> Mac_sim.Sink.close sink)
      (fun () ->
        Mac_sim.Engine.run ~config ~algorithm ~n ~k ~adversary ~rounds ())
  in
  let events = ref [] in
  let ic = open_in path in
  (try
     while true do
       match Event.of_json_line (input_line ic) with
       | Ok entry -> events := entry :: !events
       | Error msg -> Alcotest.failf "bad line in recording: %s" msg
     done
   with End_of_file -> ());
  close_in ic;
  Sys.remove path;
  (summary, List.rev !events)

let test_counting_replay_matches_summary () =
  let summary, events =
    record_run ~algorithm:(module Mac_routing.Count_hop) ~n:6 ~k:2 ~rate:0.7
      ~seed:23 ~rounds:2_000 ~drain:1_000
  in
  let sink, read = Mac_sim.Sink.counting () in
  List.iter (fun (round, ev) -> sink.Mac_sim.Sink.emit ~round ev) events;
  let c = read () in
  check_int "injected" summary.injected c.injected;
  check_int "delivered" summary.delivered c.delivered;
  check_int "collisions" summary.collision_rounds c.collisions;
  check_int "relays" summary.relay_rounds c.relays;
  check_int "silences" summary.silent_rounds c.silences;
  check_int "lights" summary.light_rounds c.lights;
  check_int "station_rounds" summary.station_rounds c.station_rounds;
  check_int "rounds" summary.rounds c.rounds;
  check_int "drain_rounds" summary.drain_rounds c.drain_rounds;
  check_bool "the run moved packets" true (c.delivered > 0)

let test_metrics_replay_reconstructs_summary () =
  let rounds = 2_000 and drain = 1_000 in
  let summary, events =
    record_run ~algorithm:(module Mac_routing.Orchestra) ~n:6 ~k:3 ~rate:0.9
      ~seed:31 ~rounds ~drain
  in
  let replay =
    Mac_sim.Metrics.create ~algorithm:summary.algorithm
      ~adversary:summary.adversary ~n:summary.n ~k:summary.k
      ~cap:summary.energy_cap
      ~sample_every:(max 1 ((rounds + drain) / 1024))
  in
  List.iter (fun (round, ev) -> Mac_sim.Metrics.observe replay ~round ev) events;
  let rebuilt =
    Mac_sim.Metrics.finalize replay
      ~final_round:(summary.rounds + summary.drain_rounds)
      ~max_queued_age:summary.max_queued_age
  in
  check_bool "whole summary reconstructed" true (rebuilt = summary)

(* ---- per-station ledgers ---- *)

let test_ledger_invariants () =
  let n = 6 in
  let ledger = Mac_sim.Ledger.create ~n in
  let adversary =
    Mac_adversary.Adversary.create ~rate:0.8 ~burst:2.0
      (Mac_adversary.Pattern.uniform ~n ~seed:47)
  in
  let config =
    { (Mac_sim.Engine.default_config ~rounds:2_000) with
      drain_limit = 1_000; sink = Some (Mac_sim.Ledger.sink ledger) }
  in
  let s =
    Mac_sim.Engine.run ~config ~algorithm:(module Mac_routing.Count_hop) ~n
      ~k:2 ~adversary ~rounds:2_000 ()
  in
  let sum f =
    let acc = ref 0 in
    for i = 0 to n - 1 do
      acc := !acc + f (Mac_sim.Ledger.station ledger i)
    done;
    !acc
  in
  check_int "ledger size" n (Mac_sim.Ledger.n ledger);
  check_int "on-rounds sum to station-rounds" s.station_rounds
    (sum (fun st -> st.Mac_sim.Ledger.on_rounds));
  check_int "injections booked per station" s.injected
    (sum (fun st -> st.Mac_sim.Ledger.injected));
  check_int "receipts sum to deliveries" s.delivered
    (sum (fun st -> st.Mac_sim.Ledger.received));
  check_int "adoptions sum to relay rounds" s.relay_rounds
    (sum (fun st -> st.Mac_sim.Ledger.relayed_in));
  check_int "reconstructed final backlog" s.final_total_queue
    (sum (fun st -> st.Mac_sim.Ledger.queue));
  for i = 0 to n - 1 do
    let st = Mac_sim.Ledger.station ledger i in
    check_bool "queue peak within global max" true
      (st.Mac_sim.Ledger.queue_peak <= s.max_station_queue);
    check_bool "collisions within transmits" true
      (st.Mac_sim.Ledger.collisions <= st.Mac_sim.Ledger.transmits)
  done;
  let report = Mac_sim.Ledger.report ledger in
  let rendered = Mac_sim.Report.to_string report in
  check_bool "report has a row per station" true
    (List.length (String.split_on_char '\n' (String.trim rendered)) >= n + 2)

(* ---- delay histogram ---- *)

let test_histogram_exact_below_16 () =
  let h = Mac_sim.Histogram.create () in
  List.iter (Mac_sim.Histogram.record h) [ 0; 1; 1; 5; 15 ];
  Alcotest.(check (list (pair (pair int int) int)))
    "width-1 buckets"
    [ ((0, 0), 1); ((1, 1), 2); ((5, 5), 1); ((15, 15), 1) ]
    (List.map (fun (lo, hi, c) -> ((lo, hi), c)) (Mac_sim.Histogram.buckets h))

let test_histogram_bounds_cover () =
  for v = 0 to 100_000 do
    let idx = Mac_sim.Histogram.bucket_of v in
    let lo, hi = Mac_sim.Histogram.bounds_of idx in
    if not (lo <= v && v <= hi) then
      Alcotest.failf "value %d outside bucket %d = [%d,%d]" v idx lo hi
  done

let test_histogram_percentile_known () =
  let h = Mac_sim.Histogram.create () in
  for v = 1 to 100 do
    Mac_sim.Histogram.record h v
  done;
  (* values 1..100: the rank-99 value is 99; buckets near 99 are ~6% wide *)
  let p99 = Mac_sim.Histogram.percentile h 0.99 in
  let lo, hi = Mac_sim.Histogram.bounds_of (Mac_sim.Histogram.bucket_of 99) in
  check_bool
    (Printf.sprintf "p99=%d within bucket [%d,%d]" p99 lo hi)
    true
    (lo <= p99 && p99 <= hi);
  let p50 = Mac_sim.Histogram.percentile h 0.5 in
  let lo50, hi50 = Mac_sim.Histogram.bounds_of (Mac_sim.Histogram.bucket_of 50) in
  check_bool "p50 within its bucket" true (lo50 <= p50 && p50 <= hi50)

(* The histogram percentile against the naive definition — sort, index at
   rank ceil(q*count): the reported value is the rank bucket's upper bound
   clamped to the recorded maximum, so it never undershoots the exact
   order statistic and never exceeds any recorded value. *)
let qcheck_percentile_vs_sorted =
  QCheck.Test.make ~name:"percentile_matches_naive_sort" ~count:300
    QCheck.(
      pair
        (list_of_size Gen.(int_range 1 200) (int_range 0 5000))
        (int_range 1 100))
    (fun (values, qi) ->
      let q = float_of_int qi /. 100.0 in
      let h = Mac_sim.Histogram.create () in
      List.iter (Mac_sim.Histogram.record h) values;
      let sorted = List.sort compare values in
      let count = List.length values in
      let rank = max 1 (int_of_float (Float.ceil (q *. float_of_int count))) in
      let exact = List.nth sorted (rank - 1) in
      let maxv = List.fold_left max 0 values in
      let hi = snd (Mac_sim.Histogram.bounds_of (Mac_sim.Histogram.bucket_of exact)) in
      let reported = Mac_sim.Histogram.percentile h q in
      exact <= reported && reported = min hi maxv)

(* The acceptance bound: the summary's histogram p99 is within one bucket
   of the exact order statistic, measured on a real run by collecting the
   exact delays through a custom sink. *)
let test_p99_within_one_bucket_of_exact () =
  let delays = ref [] in
  let collector =
    Mac_sim.Sink.make (fun ~round:_ (ev : Event.t) ->
        match ev with
        | Delivered { delay; _ } -> delays := delay :: !delays
        | _ -> ())
  in
  let adversary =
    Mac_adversary.Adversary.create ~rate:0.9 ~burst:2.0
      (Mac_adversary.Pattern.uniform ~n:6 ~seed:59)
  in
  let config =
    { (Mac_sim.Engine.default_config ~rounds:20_000) with
      drain_limit = 10_000; sink = Some collector }
  in
  let s =
    Mac_sim.Engine.run ~config ~algorithm:(module Mac_routing.Count_hop) ~n:6
      ~k:2 ~adversary ~rounds:20_000 ()
  in
  let sorted = List.sort compare !delays |> Array.of_list in
  let count = Array.length sorted in
  check_int "collector saw every delivery" s.delivered count;
  let rank = max 1 (min count (int_of_float (ceil (0.99 *. float_of_int count)))) in
  let exact = sorted.(rank - 1) in
  let b_exact = Mac_sim.Histogram.bucket_of exact in
  let b_reported = Mac_sim.Histogram.bucket_of s.p99_delay in
  check_bool
    (Printf.sprintf "p99 %d within one bucket of exact %d" s.p99_delay exact)
    true
    (abs (b_reported - b_exact) <= 1)

(* ---- observed runs do not disturb the simulation ---- *)

let test_observation_is_transparent () =
  let run sink =
    let adversary =
      Mac_adversary.Adversary.create ~rate:0.7 ~burst:2.0
        (Mac_adversary.Pattern.uniform ~n:6 ~seed:71)
    in
    let config =
      { (Mac_sim.Engine.default_config ~rounds:1_500) with
        drain_limit = 500; sink }
    in
    Mac_sim.Engine.run ~config ~algorithm:(module Mac_routing.Count_hop) ~n:6
      ~k:2 ~adversary ~rounds:1_500 ()
  in
  let bare = run None in
  let observed = run (Some Mac_sim.Sink.null) in
  check_bool "identical summaries" true (bare = observed)

(* Telemetry sampling reads but never writes engine state: the summary is
   identical with it on or off, and the recorded event stream differs only
   by the Telemetry events themselves — byte for byte. *)
let test_telemetry_is_transparent () =
  let run telemetry =
    let lines = ref [] in
    let sink =
      Mac_sim.Sink.make (fun ~round ev ->
          lines := Event.to_json ~round ev :: !lines)
    in
    let adversary =
      Mac_adversary.Adversary.create ~rate:0.8 ~burst:2.0
        (Mac_adversary.Pattern.uniform ~n:6 ~seed:83)
    in
    let config =
      { (Mac_sim.Engine.default_config ~rounds:2_000) with
        drain_limit = 500; sink = Some sink; telemetry }
    in
    let s =
      Mac_sim.Engine.run ~config ~algorithm:(module Mac_routing.Orchestra)
        ~n:6 ~k:3 ~adversary ~rounds:2_000 ()
    in
    (s, List.rev !lines)
  in
  let s_off, lines_off = run None in
  let probe = Mac_sim.Telemetry.probe ~every:500 (Mac_sim.Telemetry.create ()) in
  let s_on, lines_on = run (Some probe) in
  check_bool "identical summaries" true (s_off = s_on);
  let is_telemetry line =
    match Event.of_json_line line with
    | Ok (_, Event.Telemetry _) -> true
    | Ok _ -> false
    | Error msg -> Alcotest.failf "bad line %s: %s" line msg
  in
  let telemetry_lines = List.filter is_telemetry lines_on in
  check_bool "samples were emitted" true (telemetry_lines <> []);
  Alcotest.(check (list string))
    "stream identical after dropping telemetry events" lines_off
    (List.filter (fun l -> not (is_telemetry l)) lines_on)

(* ---- timeline ---- *)

let test_timeline_render () =
  let n = 5 in
  let tl = Mac_sim.Timeline.create ~rounds:64 ~n () in
  let adversary =
    Mac_adversary.Adversary.create ~rate:0.8 ~burst:2.0
      (Mac_adversary.Pattern.flood ~n ~victim:2)
  in
  let config =
    { (Mac_sim.Engine.default_config ~rounds:40) with
      sink = Some (Mac_sim.Timeline.sink tl) }
  in
  ignore
    (Mac_sim.Engine.run ~config ~algorithm:(module Mac_routing.Orchestra) ~n
       ~k:3 ~adversary ~rounds:40 ());
  let out = Mac_sim.Timeline.render ~width:40 tl in
  let lines = String.split_on_char '\n' out in
  check_bool "legend first" true
    (match lines with l :: _ -> l = Mac_sim.Timeline.legend | [] -> false);
  check_bool "has a block header" true
    (List.exists
       (fun l -> String.length l >= 6 && String.sub l 0 6 = "rounds")
       lines);
  List.iteri
    (fun i marker ->
      check_bool
        (Printf.sprintf "row for station %d" i)
        true
        (List.exists
           (fun l ->
             String.length l > String.length marker
             && String.sub (String.trim l) 0 (String.length marker) = marker)
           lines))
    (List.init n (fun i -> Printf.sprintf "s%d" i));
  check_bool "orchestra transmits appear" true (String.contains out 'T')

let test_timeline_window_keeps_tail () =
  let tl = Mac_sim.Timeline.create ~rounds:4 ~n:2 () in
  for r = 0 to 9 do
    Mac_sim.Timeline.feed tl ~round:r (Event.Transmit { station = 0; light = false });
    Mac_sim.Timeline.feed tl ~round:r (Event.Round_end { on_count = 1; draining = false })
  done;
  (* rounds 0..8 got flushed into a 4-slot ring (keeping 5..8); round 9 is
     the row still under assembly, so the window shown is 5..9 *)
  let out = Mac_sim.Timeline.render tl in
  check_bool "oldest rounds evicted, tail kept" true
    (List.exists (fun l -> l = "rounds 5..9")
       (String.split_on_char '\n' out))

let () =
  Alcotest.run "events"
    [ ("json",
       [ Alcotest.test_case "round-trip" `Quick test_json_roundtrip;
         Alcotest.test_case "rejects malformed" `Quick test_json_rejects_malformed;
         Alcotest.test_case "\\u escapes decode" `Quick
           test_unicode_escapes_decode;
         Alcotest.test_case "bad \\u escapes are typed errors" `Quick
           test_unicode_escape_errors_are_typed ]);
      ("sinks",
       [ Alcotest.test_case "tee and close" `Quick test_tee_and_close;
         Alcotest.test_case "sample by round" `Quick test_sample_by_round ]);
      ("replay",
       [ Alcotest.test_case "counting sink matches summary" `Quick
           test_counting_replay_matches_summary;
         Alcotest.test_case "metrics replay reconstructs summary" `Quick
           test_metrics_replay_reconstructs_summary;
         Alcotest.test_case "observation transparent" `Quick
           test_observation_is_transparent;
         Alcotest.test_case "telemetry transparent" `Quick
           test_telemetry_is_transparent ]);
      ("ledger", [ Alcotest.test_case "invariants" `Quick test_ledger_invariants ]);
      ("histogram",
       [ Alcotest.test_case "exact below 16" `Quick test_histogram_exact_below_16;
         Alcotest.test_case "bounds cover" `Quick test_histogram_bounds_cover;
         Alcotest.test_case "percentiles in bucket" `Quick
           test_histogram_percentile_known;
         Alcotest.test_case "p99 within one bucket" `Quick
           test_p99_within_one_bucket_of_exact;
         QCheck_alcotest.to_alcotest qcheck_percentile_vs_sorted ]);
      ("timeline",
       [ Alcotest.test_case "render" `Quick test_timeline_render;
         Alcotest.test_case "window keeps tail" `Quick
           test_timeline_window_keeps_tail ]) ]
