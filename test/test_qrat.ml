(* Exact rational arithmetic: normalisation, ordering, the floor used by
   the admission grant, float round-trips, and parsing. *)

open Mac_channel

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let q = Alcotest.testable Qrat.pp Qrat.equal

let test_normalisation () =
  Alcotest.check q "2/4 = 1/2" (Qrat.make 1 2) (Qrat.make 2 4);
  Alcotest.check q "sign moves up" (Qrat.make (-1) 2) (Qrat.make 1 (-2));
  Alcotest.check q "zero" Qrat.zero (Qrat.make 0 17);
  check_int "num" 3 (Qrat.num (Qrat.make 9 15));
  check_int "den" 5 (Qrat.den (Qrat.make 9 15));
  Alcotest.check_raises "zero denominator"
    (Invalid_argument "Qrat.make: zero denominator") (fun () ->
      ignore (Qrat.make 1 0))

let test_arithmetic () =
  Alcotest.check q "1/10 + 1/10" (Qrat.make 1 5)
    (Qrat.add (Qrat.make 1 10) (Qrat.make 1 10));
  Alcotest.check q "1/2 - 1/3" (Qrat.make 1 6)
    (Qrat.sub (Qrat.make 1 2) (Qrat.make 1 3));
  Alcotest.check q "2/3 * 3/4" (Qrat.make 1 2)
    (Qrat.mul (Qrat.make 2 3) (Qrat.make 3 4));
  Alcotest.check q "mul_int" (Qrat.make 3 2) (Qrat.mul_int (Qrat.make 1 2) 3);
  check_int "sign neg" (-1) (Qrat.sign (Qrat.make (-1) 7));
  check_bool "is_integer 4/2" true (Qrat.is_integer (Qrat.make 4 2));
  check_bool "is_integer 1/2" false (Qrat.is_integer (Qrat.make 1 2))

let test_floor () =
  check_int "floor 3/2" 1 (Qrat.floor (Qrat.make 3 2));
  check_int "floor 2" 2 (Qrat.floor (Qrat.of_int 2));
  check_int "floor -1/2" (-1) (Qrat.floor (Qrat.make (-1) 2));
  check_int "floor -3" (-3) (Qrat.floor (Qrat.of_int (-3)))

let test_compare () =
  check_bool "1/3 < 1/2" true (Qrat.compare (Qrat.make 1 3) (Qrat.make 1 2) < 0);
  check_bool "min" true (Qrat.equal (Qrat.make 1 3) (Qrat.min (Qrat.make 1 3) (Qrat.make 1 2)));
  check_bool "max" true (Qrat.equal (Qrat.make 1 2) (Qrat.max (Qrat.make 1 3) (Qrat.make 1 2)))

let test_of_float () =
  Alcotest.check q "0.1 is exactly 1/10" (Qrat.make 1 10) (Qrat.of_float 0.1);
  Alcotest.check q "0.5" (Qrat.make 1 2) (Qrat.of_float 0.5);
  Alcotest.check q "0.35" (Qrat.make 7 20) (Qrat.of_float 0.35);
  Alcotest.check q "1/3 round-trips" (Qrat.make 1 3)
    (Qrat.of_float (Qrat.to_float (Qrat.make 1 3)));
  Alcotest.check q "negative" (Qrat.make (-1) 10) (Qrat.of_float (-0.1));
  Alcotest.check q "integer" (Qrat.of_int 42) (Qrat.of_float 42.0);
  Alcotest.check_raises "nan rejected"
    (Invalid_argument "Qrat.of_float: not finite") (fun () ->
      ignore (Qrat.of_float Float.nan))

let test_overflow () =
  check_bool "overflow raises" true
    (try
       ignore (Qrat.add (Qrat.of_int max_int) Qrat.one);
       false
     with Qrat.Overflow _ -> true)

let test_strings () =
  let ok s expected =
    match Qrat.of_string s with
    | Ok v -> Alcotest.check q s expected v
    | Error e -> Alcotest.failf "%s: %s" s e
  in
  ok "1/10" (Qrat.make 1 10);
  ok "-2/4" (Qrat.make (-1) 2);
  ok " 3 " (Qrat.of_int 3);
  ok "0.35" (Qrat.make 7 20);
  check_bool "1/0 rejected" true (Result.is_error (Qrat.of_string "1/0"));
  check_bool "empty rejected" true (Result.is_error (Qrat.of_string ""));
  check_bool "garbage rejected" true (Result.is_error (Qrat.of_string "abc"));
  Alcotest.(check string) "to_string frac" "1/10" (Qrat.to_string (Qrat.make 1 10));
  Alcotest.(check string) "to_string int" "3" (Qrat.to_string (Qrat.of_int 3))

(* ---- properties over small rationals ---- *)

let small_rat =
  QCheck.(
    map
      (fun (n, d) -> Qrat.make (n - 32) d)
      (pair (int_range 0 64) (int_range 1 24)))

let prop_add_commutative =
  QCheck.Test.make ~name:"add_commutative" ~count:500
    (QCheck.pair small_rat small_rat)
    (fun (a, b) -> Qrat.equal (Qrat.add a b) (Qrat.add b a))

let prop_add_associative =
  QCheck.Test.make ~name:"add_associative" ~count:500
    (QCheck.triple small_rat small_rat small_rat)
    (fun (a, b, c) ->
      Qrat.equal (Qrat.add a (Qrat.add b c)) (Qrat.add (Qrat.add a b) c))

let prop_compare_antisymmetric =
  QCheck.Test.make ~name:"compare_antisymmetric" ~count:500
    (QCheck.pair small_rat small_rat)
    (fun (a, b) -> Stdlib.compare (Qrat.compare a b) 0 = - (Stdlib.compare (Qrat.compare b a) 0))

let prop_floor_bounds =
  QCheck.Test.make ~name:"floor_bounds" ~count:500 small_rat (fun a ->
      let f = Qrat.of_int (Qrat.floor a) in
      Qrat.compare f a <= 0 && Qrat.compare a (Qrat.add f Qrat.one) < 0)

let prop_float_round_trip =
  QCheck.Test.make ~name:"of_float_round_trips" ~count:500
    QCheck.(float_range 0.001 1000.0)
    (fun f -> Qrat.to_float (Qrat.of_float f) = f)

let prop_of_float_simplest =
  (* for a small rational's own float, of_float recovers it exactly *)
  QCheck.Test.make ~name:"of_float_recovers_small_rationals" ~count:500
    QCheck.(pair (int_range 1 64) (int_range 1 64))
    (fun (n, d) ->
      let r = Qrat.make n d in
      Qrat.equal r (Qrat.of_float (Qrat.to_float r)))

let () =
  Alcotest.run "qrat"
    [ ("units",
       [ Alcotest.test_case "normalisation" `Quick test_normalisation;
         Alcotest.test_case "arithmetic" `Quick test_arithmetic;
         Alcotest.test_case "floor" `Quick test_floor;
         Alcotest.test_case "compare" `Quick test_compare;
         Alcotest.test_case "of_float" `Quick test_of_float;
         Alcotest.test_case "overflow" `Quick test_overflow;
         Alcotest.test_case "strings" `Quick test_strings ]);
      ("properties",
       List.map QCheck_alcotest.to_alcotest
         [ prop_add_commutative; prop_add_associative;
           prop_compare_antisymmetric; prop_floor_bounds;
           prop_float_round_trip; prop_of_float_simplest ]) ]
