(* Adjust-Window (§4.2): window sizing formulas, plain-packet discipline
   under energy cap 2, universality, coded-transfer relaying, and window
   doubling under overload. *)

open Helpers

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let aw = (module Mac_routing.Adjust_window : Mac_channel.Algorithm.S)

let run_aw ?(n = 4) ?(rate = 0.4) ?(burst = 2.0) ?(rounds = 80_000)
    ?(drain = 40_000) pattern =
  run ~algorithm:aw ~check_schedule:false ~n ~k:2 ~rate ~burst ~pattern ~rounds
    ~drain ()

(* ---- window arithmetic ---- *)

let test_initial_window_fixpoint () =
  let main_at_least_half l n =
    let _, m, _ = Mac_routing.Adjust_window.window_layout ~n ~l in
    2 * m >= l
  in
  List.iter
    (fun n ->
      let l = Mac_routing.Adjust_window.initial_window ~n in
      check_bool (Printf.sprintf "main >= L/2 at n=%d" n) true
        (main_at_least_half l n);
      check_bool "smallest such L" true (not (main_at_least_half (l - 1) n)))
    [ 3; 4; 5; 6; 8 ]

let test_window_layout_sums () =
  List.iter
    (fun n ->
      let l = Mac_routing.Adjust_window.initial_window ~n in
      let g, m, a = Mac_routing.Adjust_window.window_layout ~n ~l in
      check_int "stages partition the window" l (g + m + a);
      check_bool "main is at least half" true (2 * m >= l);
      let lg_l = Mac_routing.Combi.lg l in
      check_int "gossip length" (n * n * (2 + (3 * lg_l))) g;
      check_int "auxiliary length" (8 * n * n * n * lg_l) a)
    [ 3; 4; 6 ]

(* ---- behaviour ---- *)

let test_plain_packets_only () =
  let s = run_aw (Mac_adversary.Pattern.uniform ~n:4 ~seed:3) in
  check_int "no control bits ever" 0 s.control_bits_total;
  assert_clean "plain" s

let test_cap_two () =
  let s = run_aw (Mac_adversary.Pattern.uniform ~n:4 ~seed:5) in
  assert_cap "cap 2" 2 s

let test_delivers_everything () =
  List.iter
    (fun (rate, seed) ->
      let s = run_aw ~rate (Mac_adversary.Pattern.uniform ~n:4 ~seed) in
      assert_delivered_all (Printf.sprintf "rate %.1f" rate) s;
      assert_clean "complete" s)
    [ (0.2, 7); (0.5, 8) ]

let test_flood_traffic () =
  let s = run_aw ~rate:0.6 ~rounds:120_000 ~drain:70_000
      (Mac_adversary.Pattern.flood ~n:4 ~victim:2)
  in
  assert_delivered_all "flood" s;
  check_bool "stable" true (is_stable s)

let test_relays_used_when_needed () =
  (* With single-destination floods the large station's coded transfer must
     sometimes spend packets addressed elsewhere: j adopts them. *)
  let s =
    run_aw ~rate:0.7 ~rounds:120_000 ~drain:80_000
      (Mac_adversary.Pattern.pair_flood ~src:1 ~dst:2)
  in
  assert_delivered_all "pair flood" s;
  check_bool "indirect routing exercised" true (s.relay_rounds > 0);
  check_bool "multi-hop packets exist" true (s.max_hops >= 2)

let test_dedicated_main_drains_overload () =
  (* A single burst larger than the window size L forces the over-L gossip
     bit and the dedicated Main stage (DESIGN.md interpretation 3); the
     window doubles and everything must still be delivered. *)
  let n = 4 in
  let l0 = Mac_routing.Adjust_window.initial_window ~n in
  let burst = float_of_int (l0 + 2_000) in
  let s =
    run ~algorithm:aw ~check_schedule:false ~n ~k:2 ~rate:0.01 ~burst
      ~pattern:(Mac_adversary.Pattern.flood ~n ~victim:1)
      ~rounds:(6 * l0) ~drain:(8 * l0) ()
  in
  check_bool "burst exceeded one window" true (s.max_station_queue > l0);
  assert_delivered_all "overload drained" s;
  assert_clean "overload" s;
  assert_cap "overload" 2 s

let test_unstable_at_rate_one () =
  let s =
    run_aw ~rate:1.0 ~rounds:150_000 ~drain:0
      (Mac_adversary.Pattern.flood ~n:4 ~victim:1)
  in
  check_bool "unstable at rate 1" true (is_unstable s)

let test_larger_system () =
  let s =
    run ~algorithm:aw ~check_schedule:false ~n:6 ~k:2 ~rate:0.4 ~burst:2.0
      ~pattern:(Mac_adversary.Pattern.uniform ~n:6 ~seed:11) ~rounds:200_000
      ~drain:140_000 ()
  in
  assert_delivered_all "n=6" s;
  assert_clean "n=6" s;
  assert_cap "n=6" 2 s

let test_latency_within_doubled_window () =
  let n = 4 and rate = 0.4 and burst = 2.0 in
  let s = run_aw ~rate ~burst (Mac_adversary.Pattern.uniform ~n ~seed:13) in
  let bound =
    Mac_experiments.Bounds.adjust_window_latency_impl ~n ~rho:rate ~beta:burst
  in
  check_bool
    (Printf.sprintf "worst delay %d within executable bound %.0f"
       (worst_delay s) bound)
    true
    (float_of_int (worst_delay s) <= bound)

let test_quiet_system_stays_dark () =
  (* With no packets at all every station is small, gossip is silent and the
     system spends no energy in Main; only listeners burn rounds. *)
  let adversary =
    Mac_adversary.Adversary.create ~rate:0.9 ~burst:1.0
      (Mac_adversary.Pattern.make ~name:"nothing" (fun ~round:_ ~budget:_ ~view:_ -> []))
  in
  let s =
    Mac_sim.Engine.run ~algorithm:aw ~n:4 ~k:2 ~adversary ~rounds:20_000 ()
  in
  check_int "nothing transmitted" 0 s.delivery_rounds;
  check_bool "mostly dark" true (s.mean_on <= 1.1)

let () =
  Alcotest.run "adjust-window"
    [ ("window-arithmetic",
       [ Alcotest.test_case "initial fixpoint" `Quick test_initial_window_fixpoint;
         Alcotest.test_case "layout" `Quick test_window_layout_sums ]);
      ("behaviour",
       [ Alcotest.test_case "plain packets" `Slow test_plain_packets_only;
         Alcotest.test_case "cap 2" `Slow test_cap_two;
         Alcotest.test_case "delivers all" `Slow test_delivers_everything;
         Alcotest.test_case "flood" `Slow test_flood_traffic;
         Alcotest.test_case "relays" `Slow test_relays_used_when_needed;
         Alcotest.test_case "dedicated main overload" `Slow
           test_dedicated_main_drains_overload;
         Alcotest.test_case "unstable at 1" `Slow test_unstable_at_rate_one;
         Alcotest.test_case "n=6" `Slow test_larger_system;
         Alcotest.test_case "latency bound" `Slow test_latency_within_doubled_window;
         Alcotest.test_case "quiet stays dark" `Quick test_quiet_system_stays_dark ]) ]
