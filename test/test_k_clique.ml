(* k-Clique (§6): direct oblivious routing over set pairs — latency bound,
   same-set traffic, the k adjustment, and instability above 1/m. *)

open Helpers

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let algo ~n ~k = Mac_routing.K_clique.algorithm ~n ~k

let run_kq ?(n = 12) ?(k = 4) ?(rate = 0.03) ?(burst = 2.0) ?(rounds = 60_000)
    ?(drain = 30_000) pattern =
  run ~algorithm:(algo ~n ~k) ~n ~k ~rate ~burst ~pattern ~rounds ~drain ()

let test_flags () =
  let module A = (val algo ~n:12 ~k:4) in
  check_bool "plain" true A.plain_packet;
  check_bool "oblivious" true A.oblivious;
  check_bool "direct" true A.direct;
  check_int "cap" 4 (A.required_cap ~n:12 ~k:4)

let test_direct_single_hop () =
  let s = run_kq (Mac_adversary.Pattern.uniform ~n:12 ~seed:1) in
  check_int "one hop" 1 s.max_hops;
  check_int "no relays" 0 s.relay_rounds;
  assert_delivered_all "uniform" s

let test_latency_bound () =
  let n = 12 and k = 4 and burst = 2.0 in
  let rate = Mac_experiments.Bounds.k_clique_latency_rate ~n ~k in
  let bound = Mac_experiments.Bounds.k_clique_latency ~n ~k ~beta:burst in
  List.iter
    (fun (name, pattern) ->
      let s = run_kq ~rate ~burst pattern in
      check_bool
        (Printf.sprintf "%s: delay %d <= %.0f" name (worst_delay s) bound)
        true
        (float_of_int (worst_delay s) <= bound);
      assert_delivered_all name s)
    [ ("uniform", Mac_adversary.Pattern.uniform ~n ~seed:2);
      ("pair", Mac_adversary.Pattern.pair_flood ~src:1 ~dst:2) ]

let test_same_set_traffic () =
  (* stations 0 and 1 are in the same set (n=12, k=4, sets of 2): packets
     0 -> 1 can ride any pair containing set 0 *)
  let s = run_kq (Mac_adversary.Pattern.pair_flood ~src:0 ~dst:1) in
  assert_delivered_all "same set" s;
  assert_clean "same set" s

let test_cross_set_traffic () =
  let s = run_kq (Mac_adversary.Pattern.pair_flood ~src:0 ~dst:11) in
  assert_delivered_all "cross set" s

let test_k_adjusted_to_divide_2n () =
  (* n=9: k=4 does not divide 18, falls to 2 *)
  let s = run_kq ~n:9 ~k:4 ~rate:0.01 (Mac_adversary.Pattern.uniform ~n:9 ~seed:3) in
  check_bool "cap fell to 2" true (s.max_on <= 2);
  assert_delivered_all "adjusted" s

let test_stable_below_one_over_m () =
  let n = 12 and k = 4 in
  let rate = 0.9 *. Mac_experiments.Bounds.k_clique_stable_rate ~n ~k in
  let s =
    run_kq ~rate ~rounds:100_000 ~drain:60_000
      (Mac_adversary.Pattern.pair_flood ~src:1 ~dst:2)
  in
  check_bool "stable at 0.9/m" true (is_stable s);
  assert_delivered_all "0.9/m" s

let test_unstable_above_one_over_m () =
  let n = 12 and k = 4 in
  let rate = 1.25 *. Mac_experiments.Bounds.k_clique_stable_rate ~n ~k in
  let s =
    run_kq ~rate ~rounds:100_000 ~drain:0
      (Mac_adversary.Pattern.pair_flood ~src:1 ~dst:2)
  in
  check_bool "pair flood above 1/m wins" true (is_unstable s)

let test_energy_profile () =
  let s = run_kq (Mac_adversary.Pattern.uniform ~n:12 ~seed:4) in
  check_int "k on per round" 4 s.max_on;
  Alcotest.(check (float 0.1)) "always exactly one pair" 4.0 s.mean_on

let () =
  Alcotest.run "k-clique"
    [ ("classification",
       [ Alcotest.test_case "flags" `Quick test_flags;
         Alcotest.test_case "energy profile" `Quick test_energy_profile ]);
      ("routing",
       [ Alcotest.test_case "single hop" `Quick test_direct_single_hop;
         Alcotest.test_case "same set" `Quick test_same_set_traffic;
         Alcotest.test_case "cross set" `Quick test_cross_set_traffic;
         Alcotest.test_case "k adjustment" `Quick test_k_adjusted_to_divide_2n ]);
      ("bounds",
       [ Alcotest.test_case "latency" `Slow test_latency_bound;
         Alcotest.test_case "stable below 1/m" `Slow test_stable_below_one_over_m;
         Alcotest.test_case "unstable above 1/m" `Slow test_unstable_above_one_over_m ]) ]
