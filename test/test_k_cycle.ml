(* k-Cycle (§5): oblivious schedule, group-hop relaying, the latency bound at
   moderate load, stability below (k-1)/(n-1), and Theorem-6 instability
   above k/n under the min-duty saboteur. *)

open Helpers

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let algo ~n ~k = Mac_routing.K_cycle.algorithm ~n ~k

let threshold ~n ~k = Mac_experiments.Bounds.k_cycle_rate ~n ~k

let run_kc ?(n = 12) ?(k = 4) ?(rate = 0.1) ?(burst = 2.0) ?(rounds = 60_000)
    ?(drain = 30_000) pattern =
  run ~algorithm:(algo ~n ~k) ~n ~k ~rate ~burst ~pattern ~rounds ~drain ()

let test_plain_packet_and_oblivious () =
  let module A = (val algo ~n:12 ~k:4) in
  check_bool "plain" true A.plain_packet;
  check_bool "oblivious" true A.oblivious;
  check_bool "indirect" true (not A.direct);
  check_int "cap is effective k" 4 (A.required_cap ~n:12 ~k:4)

let test_schedule_is_traffic_independent () =
  (* on/off sequences must be identical across different traffic: the engine
     cross-checks against the static schedule in every run (check_schedule),
     so two clean runs with different patterns prove obliviousness. *)
  let s1 = run_kc (Mac_adversary.Pattern.uniform ~n:12 ~seed:1) in
  let s2 = run_kc (Mac_adversary.Pattern.flood ~n:12 ~victim:7) in
  assert_clean "uniform" s1;
  assert_clean "flood" s2

let test_delivers_everything () =
  let s = run_kc ~rate:0.15 (Mac_adversary.Pattern.uniform ~n:12 ~seed:2) in
  assert_delivered_all "uniform 0.15" s;
  assert_cap "cap" 4 s

let test_latency_bound_at_half_rate () =
  let n = 12 and k = 4 and burst = 2.0 in
  let rate = 0.5 *. threshold ~n ~k in
  let s = run_kc ~rate ~burst (Mac_adversary.Pattern.uniform ~n ~seed:6) in
  let bound = (32.0 +. burst) *. float_of_int n in
  check_bool
    (Printf.sprintf "delay %d <= %.0f" (worst_delay s) bound)
    true
    (float_of_int (worst_delay s) <= bound);
  assert_delivered_all "half rate" s

let test_stable_near_threshold () =
  let n = 12 and k = 4 in
  let rate = 0.9 *. threshold ~n ~k in
  let s = run_kc ~rate ~rounds:100_000 ~drain:50_000
      (Mac_adversary.Pattern.flood ~n ~victim:5)
  in
  check_bool "stable at 0.9 threshold" true (is_stable s);
  assert_delivered_all "near threshold" s

let test_relaying_around_the_cycle () =
  (* a packet injected into the last group destined to the first group must
     hop through connectors *)
  let s = run_kc ~rate:0.05 (Mac_adversary.Pattern.pair_flood ~src:10 ~dst:1) in
  assert_delivered_all "around the cycle" s;
  check_bool "multi-hop" true (s.max_hops >= 2);
  check_bool "relays happened" true (s.relay_rounds > 0)

let test_unstable_above_k_over_n () =
  let n = 12 and k = 4 in
  let schedule =
    Option.get (Mac_experiments.Scenario.schedule_of (algo ~n ~k) ~n ~k)
  in
  let choice = Mac_adversary.Saboteur.min_duty ~n ~horizon:30_000 ~schedule in
  let s =
    run_kc ~rate:(1.2 *. float_of_int k /. float_of_int n) ~rounds:100_000
      ~drain:0 choice.Mac_adversary.Saboteur.pattern
  in
  check_bool "unstable above k/n" true (is_unstable s)

let test_k_adjustment_when_n_small () =
  (* n <= 2k forces k' = (n+1)/2 *)
  let s = run_kc ~n:7 ~k:6 ~rate:0.2 (Mac_adversary.Pattern.uniform ~n:7 ~seed:3) in
  check_bool "cap reduced to 4" true (s.max_on <= 4);
  assert_delivered_all "adjusted k" s

let test_uneven_last_group () =
  (* n=10, k=4: boundaries 0,3,6,9,10 -> last group is {9, 0} of size 2 *)
  let s = run_kc ~n:10 ~k:4 ~rate:0.1 (Mac_adversary.Pattern.uniform ~n:10 ~seed:4) in
  assert_clean "uneven groups" s;
  assert_delivered_all "uneven groups" s

let test_energy_profile () =
  let s = run_kc ~rate:0.1 (Mac_adversary.Pattern.uniform ~n:12 ~seed:5) in
  check_int "k on in every round" 4 s.max_on;
  Alcotest.(check (float 0.1)) "mean on = k" 4.0 s.mean_on

let () =
  Alcotest.run "k-cycle"
    [ ("classification",
       [ Alcotest.test_case "flags" `Quick test_plain_packet_and_oblivious;
         Alcotest.test_case "oblivious schedule" `Slow test_schedule_is_traffic_independent;
         Alcotest.test_case "energy profile" `Quick test_energy_profile ]);
      ("routing",
       [ Alcotest.test_case "delivers all" `Quick test_delivers_everything;
         Alcotest.test_case "cycle relaying" `Quick test_relaying_around_the_cycle;
         Alcotest.test_case "k adjustment" `Quick test_k_adjustment_when_n_small;
         Alcotest.test_case "uneven last group" `Quick test_uneven_last_group ]);
      ("bounds",
       [ Alcotest.test_case "latency at half rate" `Slow test_latency_bound_at_half_rate;
         Alcotest.test_case "stable near threshold" `Slow test_stable_near_threshold;
         Alcotest.test_case "unstable above k/n" `Slow test_unstable_above_k_over_n ]) ]
