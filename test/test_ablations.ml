(* Ablation tests: each removed mechanism must visibly fail (or visibly not
   matter) exactly as EXPERIMENTS.md claims. These run the quick-scale
   ablation catalog and assert the headline verdicts. *)

open Helpers

let check_bool = Alcotest.(check bool)

(* ---- A1: k-Cycle delta ---- *)

let test_delta_scale_changes_delta () =
  let base = Mac_routing.Cycle_groups.make ~n:12 ~k:4 () in
  let half = Mac_routing.Cycle_groups.make ~delta_scale:0.5 ~n:12 ~k:4 () in
  let double = Mac_routing.Cycle_groups.make ~delta_scale:2.0 ~n:12 ~k:4 () in
  Alcotest.(check int) "half" (base.Mac_routing.Cycle_groups.delta / 2)
    half.Mac_routing.Cycle_groups.delta;
  Alcotest.(check int) "double" (base.Mac_routing.Cycle_groups.delta * 2)
    double.Mac_routing.Cycle_groups.delta

let test_delta_minimum_one () =
  let tiny = Mac_routing.Cycle_groups.make ~delta_scale:0.0001 ~n:12 ~k:4 () in
  Alcotest.(check int) "at least one round" 1 tiny.Mac_routing.Cycle_groups.delta

let test_scaled_k_cycle_still_routes () =
  List.iter
    (fun delta_scale ->
      let s =
        run
          ~algorithm:(Mac_routing.K_cycle.algorithm_scaled ~delta_scale ~n:8 ~k:3)
          ~n:8 ~k:3 ~rate:0.1 ~burst:2.0
          ~pattern:(Mac_adversary.Pattern.uniform ~n:8 ~seed:61)
          ~rounds:30_000 ~drain:30_000 ()
      in
      assert_clean (Printf.sprintf "delta x%g" delta_scale) s;
      assert_delivered_all "scaled" s)
    [ 0.25; 4.0 ]

(* ---- A2: Orchestra big threshold ---- *)

let run_orchestra algorithm pattern =
  run ~algorithm ~check_schedule:false ~n:8 ~k:3 ~rate:1.0 ~burst:4.0 ~pattern
    ~rounds:60_000 ~drain:0 ()

let test_never_big_breaks_flood () =
  let algorithm =
    Mac_routing.Orchestra.with_big_threshold ~name:"orchestra-neverbig"
      (fun ~n:_ -> max_int)
  in
  let s = run_orchestra algorithm (Mac_adversary.Pattern.flood ~n:8 ~victim:3) in
  check_bool "flood breaks without move-big-to-front" true (is_unstable s);
  assert_clean "never big" s

let test_paper_threshold_survives_flood () =
  let s =
    run_orchestra (module Mac_routing.Orchestra)
      (Mac_adversary.Pattern.flood ~n:8 ~victim:3)
  in
  check_bool "paper threshold stable" true (is_stable s)

let test_eager_threshold_breaks_uniform () =
  let algorithm =
    Mac_routing.Orchestra.with_big_threshold ~name:"orchestra-eager"
      (fun ~n -> n)
  in
  let s = run_orchestra algorithm (Mac_adversary.Pattern.uniform ~n:8 ~seed:63) in
  check_bool "eager threshold thrashes under uniform traffic" true (is_unstable s)

(* ---- A3: k-Subsets allocation ---- *)

let run_subsets allocation =
  run
    ~algorithm:(Mac_routing.K_subsets.algorithm ~allocation ~n:6 ~k:3 ())
    ~n:6 ~k:3
    ~rate:(Mac_experiments.Bounds.k_subsets_rate ~n:6 ~k:3)
    ~burst:4.0
    ~pattern:(Mac_adversary.Pattern.pair_flood ~src:1 ~dst:2)
    ~rounds:80_000 ~drain:0 ()

let test_balanced_stable_at_threshold () =
  check_bool "balanced stable" true (is_stable (run_subsets `Balanced))

let test_first_fit_unstable_at_threshold () =
  check_bool "first-fit drowns" true (is_unstable (run_subsets `First_fit))

(* ---- catalog plumbing ---- *)

let test_catalog_runs_quick () =
  List.iter
    (fun (ab : Mac_experiments.Ablations.t) ->
      let report, outcomes = ab.run ~scale:`Quick () in
      check_bool (ab.id ^ " rows") true
        (String.length (Mac_sim.Report.to_string report) > 0);
      check_bool (ab.id ^ " outcomes") true (outcomes <> []))
    [ Mac_experiments.Ablations.allocation ]

let () =
  Alcotest.run "ablations"
    [ ("A1-delta",
       [ Alcotest.test_case "scale arithmetic" `Quick test_delta_scale_changes_delta;
         Alcotest.test_case "minimum 1" `Quick test_delta_minimum_one;
         Alcotest.test_case "scaled still routes" `Slow test_scaled_k_cycle_still_routes ]);
      ("A2-big-threshold",
       [ Alcotest.test_case "never-big breaks flood" `Slow test_never_big_breaks_flood;
         Alcotest.test_case "paper survives flood" `Slow test_paper_threshold_survives_flood;
         Alcotest.test_case "eager breaks uniform" `Slow test_eager_threshold_breaks_uniform ]);
      ("A3-allocation",
       [ Alcotest.test_case "balanced stable" `Slow test_balanced_stable_at_threshold;
         Alcotest.test_case "first-fit unstable" `Slow test_first_fit_unstable_at_threshold ]);
      ("catalog", [ Alcotest.test_case "quick scale" `Slow test_catalog_runs_quick ]) ]
