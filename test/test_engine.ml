(* Engine semantics tests. A configurable toy algorithm provokes each
   protocol violation the engine must catch (foreign packets, plain-packet
   breaches, relaying by direct algorithms, stranded packets, adoption
   conflicts, schedule lies, collisions), and lawful runs check conservation
   and delivery bookkeeping. *)

open Mac_channel

(* The toy: all stations on every round; station 0 follows a script. *)
type behaviour =
  | Quiet
  | Send_oldest          (* plain packet to whoever it is addressed *)
  | Send_foreign         (* a packet that is not in the queue *)
  | Send_light           (* control-only message *)
  | Collide              (* stations 0 and 1 transmit together *)

let behaviour = ref Quiet
let adopters : int list ref = ref []   (* stations adopting heard packets *)
let adopt_always : int list ref = ref [] (* stations adopting on any feedback *)
let off_stations : int list ref = ref []
let lie_about_schedule = ref false

module Toy = struct
  type state = { me : int }

  let name = "toy"
  let plain_packet = false
  let direct = false
  let oblivious = true
  let required_cap ~n ~k:_ = n

  let static_schedule =
    Some (fun ~n:_ ~k:_ ~me:_ ~round:_ -> true)

  let create ~n:_ ~k:_ ~me = { me }

  let on_duty s ~round:_ ~queue:_ =
    if !lie_about_schedule && s.me = 0 then false
    else not (List.mem s.me !off_stations)

  let act s ~round:_ ~queue =
    let send_oldest () =
      match Pqueue.oldest queue with
      | Some p -> Action.Transmit (Message.packet_only p)
      | None -> Action.Listen
    in
    match !behaviour with
    | Quiet -> Action.Listen
    | Send_oldest -> if s.me = 0 then send_oldest () else Action.Listen
    | Send_foreign ->
      if s.me = 0 then
        Action.Transmit
          (Message.packet_only (Packet.make ~id:999_999 ~src:0 ~dst:1 ~injected_at:0))
      else Action.Listen
    | Send_light ->
      if s.me = 0 then Action.Transmit (Message.light [ Message.Flag true ])
      else Action.Listen
    | Collide -> if s.me <= 1 then send_oldest () else Action.Listen

  let observe s ~round:_ ~queue:_ ~feedback =
    if List.mem s.me !adopt_always then Reaction.Adopt_heard_packet
    else begin
      match feedback with
      | Feedback.Heard { Message.packet = Some p; _ }
        when List.mem s.me !adopters && p.Packet.dst <> s.me ->
        Reaction.Adopt_heard_packet
      | _ -> Reaction.No_reaction
    end

  let offline_tick _ ~round:_ ~queue:_ = ()

  let sparse = None

  include Algorithm.Marshal_codec (struct
    type nonrec state = state
  end)
end

(* A wrapper changing the declared flags without rewriting the hooks. *)
module Toy_flagged = struct
  include Toy

  let plain_packet = true
  let name = "toy-plain"
end

module Toy_direct = struct
  include Toy

  let direct = true
  let name = "toy-direct"
end

let reset () =
  behaviour := Quiet;
  adopters := [];
  adopt_always := [];
  off_stations := [];
  lie_about_schedule := false

let run ?(algorithm = (module Toy : Algorithm.S)) ?(strict = true)
    ?(check_schedule = false) ?(rate = 0.5) ?(rounds = 100) ?(drain = 0)
    ?pattern () =
  let n = 4 in
  let pattern =
    match pattern with
    | Some p -> p
    | None -> Mac_adversary.Pattern.uniform ~n ~seed:1
  in
  let adversary = Mac_adversary.Adversary.create ~rate ~burst:2.0 pattern in
  let config =
    { (Mac_sim.Engine.default_config ~rounds) with
      strict; check_schedule; drain_limit = drain; sample_every = 1 }
  in
  Mac_sim.Engine.run ~config ~algorithm ~n ~k:n ~adversary ~rounds ()

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let expect_violation name f =
  reset ();
  match f () with
  | exception Mac_sim.Engine.Protocol_violation _ -> ()
  | _ -> Alcotest.failf "%s: expected Protocol_violation" name

(* ---- lawful runs ---- *)

let test_conservation () =
  reset ();
  behaviour := Send_oldest;
  let s = run ~rounds:2_000 () in
  check_int "injected = delivered + queued" s.injected
    (s.delivered + s.final_total_queue);
  check_bool "clean" true (Mac_sim.Metrics.no_violations s)

let test_delivery_requires_destination_on () =
  (* station 0 transmits; all on -> deliveries happen. Then destination 1
     off and 2 adopts -> relays, not deliveries. *)
  reset ();
  behaviour := Send_oldest;
  let s =
    run ~rounds:500 ~pattern:(Mac_adversary.Pattern.pair_flood ~src:0 ~dst:1) ()
  in
  check_bool "deliveries happen when dst on" true (s.delivered > 0);
  reset ();
  behaviour := Send_oldest;
  off_stations := [ 1 ];
  adopters := [ 2 ];
  let s =
    run ~rounds:500 ~pattern:(Mac_adversary.Pattern.pair_flood ~src:0 ~dst:1) ()
  in
  check_int "no deliveries with dst off" 0 s.delivered;
  check_bool "relays recorded" true (s.relay_rounds > 0)

let test_delay_measurement () =
  reset ();
  behaviour := Send_oldest;
  let s =
    run ~rounds:100 ~rate:0.1
      ~pattern:(Mac_adversary.Pattern.pair_flood ~src:0 ~dst:1) ()
  in
  check_bool "delays measured" true (s.delivered > 0 && s.max_delay >= 0);
  check_bool "mean <= max" true (s.mean_delay <= float_of_int (max 1 s.max_delay))

let test_silent_and_light_rounds () =
  reset ();
  let s = run ~rounds:50 () in
  check_int "all silent when quiet" 50 s.silent_rounds;
  reset ();
  behaviour := Send_light;
  let s = run ~rounds:50 () in
  check_int "light rounds counted" 50 s.light_rounds;
  check_bool "control bits counted" true (s.control_bits_total = 50)

let test_collisions_counted_and_packets_survive () =
  reset ();
  behaviour := Collide;
  let s =
    run ~rounds:200
      ~pattern:(Mac_adversary.Pattern.round_robin ~n:4) ()
  in
  check_bool "collisions happened" true (s.collision_rounds > 0);
  check_int "nothing delivered" 0 s.delivered;
  check_int "nothing lost" s.injected s.final_total_queue

let test_drain_stops_when_empty () =
  reset ();
  behaviour := Send_oldest;
  let s =
    run ~rounds:100 ~rate:0.1 ~drain:100_000
      ~pattern:(Mac_adversary.Pattern.pair_flood ~src:0 ~dst:1) ()
  in
  check_int "queues empty" 0 s.final_total_queue;
  check_bool "drain stopped early" true (s.drain_rounds < 1_000)

let test_energy_accounting_in_summary () =
  reset ();
  off_stations := [ 2; 3 ];
  let s = run ~rounds:100 () in
  check_int "max on" 2 s.max_on;
  check_int "station rounds" 200 s.station_rounds

let test_queue_series_sampling () =
  reset ();
  let s = run ~rounds:64 () in
  check_int "one sample per round at sample_every=1" 64
    (Array.length s.queue_series)

(* ---- violations ---- *)

let test_foreign_packet_rejected () =
  expect_violation "foreign" (fun () ->
      behaviour := Send_foreign;
      run ())

let test_plain_packet_breach () =
  expect_violation "plain breach" (fun () ->
      behaviour := Send_light;
      run ~algorithm:(module Toy_flagged) ())

let test_direct_algorithm_cannot_relay () =
  expect_violation "direct relay" (fun () ->
      behaviour := Send_oldest;
      off_stations := [ 1 ];
      adopters := [ 2 ];
      ignore
        (run ~algorithm:(module Toy_direct)
           ~pattern:(Mac_adversary.Pattern.pair_flood ~src:0 ~dst:1) ()))

let test_stranded_packet_strict () =
  expect_violation "stranded" (fun () ->
      behaviour := Send_oldest;
      off_stations := [ 1 ];
      ignore (run ~pattern:(Mac_adversary.Pattern.pair_flood ~src:0 ~dst:1) ()))

let test_stranded_packet_tolerant () =
  reset ();
  behaviour := Send_oldest;
  off_stations := [ 1 ];
  let s =
    run ~strict:false ~rounds:50
      ~pattern:(Mac_adversary.Pattern.pair_flood ~src:0 ~dst:1) ()
  in
  check_bool "stranded counted" true (s.violations.stranded > 0);
  check_int "packets returned to sender" s.injected s.final_total_queue

let test_adoption_conflict () =
  reset ();
  behaviour := Send_oldest;
  off_stations := [ 1 ];
  adopters := [ 2; 3 ];
  let s =
    run ~strict:false ~rounds:50
      ~pattern:(Mac_adversary.Pattern.pair_flood ~src:0 ~dst:1) ()
  in
  check_bool "conflicts counted" true (s.violations.adoption_conflicts > 0);
  check_int "packet kept exactly once" s.injected (s.delivered + s.final_total_queue)

let test_spurious_adoption () =
  reset ();
  adopt_always := [ 2 ];
  let s = run ~strict:false ~rounds:20 () in
  check_bool "spurious counted" true (s.violations.spurious_adoptions > 0)

let test_transmitter_cannot_adopt () =
  expect_violation "self adopt" (fun () ->
      behaviour := Send_oldest;
      off_stations := [ 1 ];
      adopters := [ 0 ];
      ignore (run ~pattern:(Mac_adversary.Pattern.pair_flood ~src:0 ~dst:1) ()))

let test_schedule_cross_check () =
  expect_violation "schedule lie" (fun () ->
      lie_about_schedule := true;
      run ~check_schedule:true ())

let test_schedule_cross_check_passes_honest () =
  reset ();
  let s = run ~check_schedule:true ~rounds:50 () in
  check_bool "honest schedule fine" true (Mac_sim.Metrics.no_violations s)

(* ---- determinism ---- *)

(* The whole simulator must be a pure function of its configuration: two
   runs of any algorithm under any seeded adversary produce identical
   summaries, field for field. *)
let determinism_property =
  let algorithms =
    [| ("orchestra", (module Mac_routing.Orchestra : Algorithm.S), 3);
       ("count-hop", (module Mac_routing.Count_hop), 2);
       ("k-cycle", Mac_routing.K_cycle.algorithm ~n:8 ~k:3, 3);
       ("k-subsets", Mac_routing.K_subsets.algorithm ~n:8 ~k:3 (), 3);
       ("mbtf", (module Mac_broadcast.Mbtf), 8) |]
  in
  QCheck.Test.make ~name:"engine_is_deterministic" ~count:20
    QCheck.(triple (int_range 0 4) (int_range 1 99) small_nat)
    (fun (pick, rate_pct, seed) ->
      let _, algorithm, k = algorithms.(pick) in
      let once () =
        let adversary =
          Mac_adversary.Adversary.create
            ~rate:(float_of_int rate_pct /. 100.0)
            ~burst:3.0
            (Mac_adversary.Pattern.uniform ~n:8 ~seed)
        in
        Mac_sim.Engine.run ~algorithm ~n:8 ~k ~adversary ~rounds:3_000 ()
      in
      let a = once () and b = once () in
      a.injected = b.injected && a.delivered = b.delivered
      && a.max_delay = b.max_delay
      && a.mean_delay = b.mean_delay
      && a.max_total_queue = b.max_total_queue
      && a.station_rounds = b.station_rounds
      && a.queue_series = b.queue_series)

(* ---- sparse mode ---- *)

(* One pair-TDMA run under an explicit engine mode; knobs cover the
   dimensions the skip-ahead logic must bound correctly: pacing shape,
   drain, fault plans, strictness and the telemetry cadence. *)
let run_sparse_case ~mode ?(pacing = Mac_adversary.Adversary.Greedy)
    ?(drain = 0) ?faults ?(strict = false) ?telemetry_every ~rate ~rounds
    ~seed () =
  let n = 6 in
  let samples = ref [] in
  let telemetry =
    Option.map
      (fun every ->
        let reg = Mac_sim.Telemetry.create () in
        Mac_sim.Telemetry.probe ~every
          ~on_sample:(fun ~round _ -> samples := round :: !samples)
          reg)
      telemetry_every
  in
  let adversary =
    Mac_adversary.Adversary.create_q ~rate:(Qrat.make 1 rate)
      ~burst:(Qrat.of_int 2) ~pacing
      (Mac_adversary.Pattern.uniform ~n ~seed)
  in
  let config =
    { (Mac_sim.Engine.default_config ~rounds) with
      mode; strict; drain_limit = drain; sample_every = 1; faults; telemetry }
  in
  let summary =
    Mac_sim.Engine.run ~config
      ~algorithm:(module Mac_routing.Pair_tdma : Algorithm.S)
      ~n ~k:2 ~adversary ~rounds ()
  in
  (summary, List.rev !samples)

(* Sparse and dense must agree bit-for-bit (Marshal bytes of the whole
   summary, telemetry sample rounds included) across the knob grid. *)
let test_sparse_matches_dense_grid () =
  let cases =
    [ ("greedy", None, 0, None, false, None);
      ("paced", Some (Mac_adversary.Adversary.Paced { burst_at = Some 7 }),
       0, None, false, None);
      ("drain", None, 400, None, false, None);
      ("faults", None, 0, Some 77, false, None);
      ("strict", None, 0, None, true, None);
      ("telemetry-7", None, 0, None, false, Some 7);
      ("telemetry-64", None, 300, None, false, Some 64) ]
  in
  List.iter
    (fun (id, pacing, drain, fault_seed, strict, telemetry_every) ->
      let faults =
        Option.map
          (fun seed ->
            Mac_faults.Fault_plan.random ~seed ~n:6 ~rounds:2_000
              ~crash_rate:0.002 ~jam_rate:0.001 ~restart_after:80
              ~queue:Mac_faults.Fault_plan.Retain ())
          fault_seed
      in
      let go mode =
        run_sparse_case ~mode ?pacing ~drain ?faults ~strict ?telemetry_every
          ~rate:40 ~rounds:2_000 ~seed:11 ()
      in
      let ds, dt = go Mac_sim.Engine.Dense in
      let ss, st = go Mac_sim.Engine.Sparse in
      Alcotest.(check bool)
        (id ^ ": summary bytes identical") true
        (Marshal.to_string ds [] = Marshal.to_string ss []);
      Alcotest.(check (list int)) (id ^ ": telemetry sample rounds") dt st)
    cases

(* The telemetry cadence bound: the round before each sample must execute
   concretely (it is phase-timed), so a skip may never jump over a sample
   boundary. every=7 never divides the pair-TDMA cycle (30), forcing
   skips to land mid-stretch. The grid above checks bit-identity; this
   checks the samples actually happened at the cadence. *)
let test_sparse_telemetry_cadence_boundary () =
  let _, samples =
    run_sparse_case ~mode:Mac_sim.Engine.Sparse ~telemetry_every:7 ~rate:100
      ~rounds:500 ~seed:3 ()
  in
  Alcotest.(check bool) "samples taken" true (List.length samples >= 500 / 7);
  List.iter
    (fun r ->
      if r < 500 && r mod 7 <> 0 then
        Alcotest.failf "sample at round %d not on the every=7 cadence" r)
    samples

let test_sparse_mode_requires_hook () =
  reset ();
  (match
     run ~rounds:10
       ~pattern:(Mac_adversary.Pattern.uniform ~n:4 ~seed:1) ()
   with
  | _ -> ()
  | exception _ -> Alcotest.fail "dense Toy run should succeed");
  let sparse_toy () =
    let adversary =
      Mac_adversary.Adversary.create ~rate:0.5 ~burst:2.0
        (Mac_adversary.Pattern.uniform ~n:4 ~seed:1)
    in
    let config =
      { (Mac_sim.Engine.default_config ~rounds:10) with
        mode = Mac_sim.Engine.Sparse }
    in
    Mac_sim.Engine.run ~config ~algorithm:(module Toy) ~n:4 ~k:4 ~adversary
      ~rounds:10 ()
  in
  (match sparse_toy () with
  | _ -> Alcotest.fail "Sparse mode with a sparse-less algorithm must raise"
  | exception Invalid_argument _ -> ())

(* Auto mode resolves per algorithm: dense for Toy (still runs), sparse
   for pair-TDMA (bit-identical to Dense). *)
let test_sparse_auto_resolution () =
  reset ();
  let toy_auto =
    let adversary =
      Mac_adversary.Adversary.create ~rate:0.5 ~burst:2.0
        (Mac_adversary.Pattern.uniform ~n:4 ~seed:1)
    in
    let config =
      { (Mac_sim.Engine.default_config ~rounds:50) with
        mode = Mac_sim.Engine.Auto; sample_every = 1 }
    in
    Mac_sim.Engine.run ~config ~algorithm:(module Toy) ~n:4 ~k:4 ~adversary
      ~rounds:50 ()
  in
  reset ();
  let toy_dense = run ~rounds:50 () in
  Alcotest.(check bool) "Auto = Dense for Toy" true
    (Marshal.to_string toy_auto [] = Marshal.to_string toy_dense []);
  let auto, _ =
    run_sparse_case ~mode:Mac_sim.Engine.Auto ~rate:30 ~rounds:1_000 ~seed:5 ()
  in
  let dense, _ =
    run_sparse_case ~mode:Mac_sim.Engine.Dense ~rate:30 ~rounds:1_000 ~seed:5 ()
  in
  Alcotest.(check bool) "Auto = Dense for pair-TDMA" true
    (Marshal.to_string auto [] = Marshal.to_string dense [])

(* A self-addressed packet is delivered the instant it is admitted: it
   must count as injected and delivered with zero delay, but never touch
   the queue gauges — live (note_self_injection) and through a stream
   replay (observe of Injected with src = dst). The pre-fix accounting
   bumped total_queued on admission and only drained it on delivery,
   skewing max_total_queue upward. *)
let test_self_injection_queue_gauges () =
  let finalize m = Mac_sim.Metrics.finalize m ~final_round:1 ~max_queued_age:0 in
  let live =
    Mac_sim.Metrics.create ~algorithm:"a" ~adversary:"b" ~n:3 ~k:2 ~cap:2
      ~sample_every:1
  in
  Mac_sim.Metrics.note_self_injection live;
  Mac_sim.Metrics.end_round live ~round:0 ~draining:false;
  let s = finalize live in
  Alcotest.(check int) "injected" 1 s.injected;
  Alcotest.(check int) "delivered" 1 s.delivered;
  Alcotest.(check int) "max_total_queue untouched" 0 s.max_total_queue;
  Alcotest.(check int) "final_total_queue untouched" 0 s.final_total_queue;
  Alcotest.(check int) "max delay 0" 0 s.max_delay;
  Alcotest.(check int) "max hops 0" 0 s.max_hops;
  let replayed =
    Mac_sim.Metrics.create ~algorithm:"a" ~adversary:"b" ~n:3 ~k:2 ~cap:2
      ~sample_every:1
  in
  Mac_sim.Metrics.observe replayed ~round:0
    (Event.Injected { id = 0; src = 1; dst = 1 });
  Mac_sim.Metrics.observe replayed ~round:0
    (Event.Delivered { id = 0; from_ = 1; dst = 1; delay = 0; hops = 0 });
  Mac_sim.Metrics.end_round replayed ~round:0 ~draining:false;
  let r = finalize replayed in
  Alcotest.(check bool) "replay agrees with the live path" true (r = s)

let () =
  Alcotest.run "engine"
    [ ("lawful",
       [ Alcotest.test_case "conservation" `Quick test_conservation;
         Alcotest.test_case "delivery needs dst on" `Quick
           test_delivery_requires_destination_on;
         Alcotest.test_case "delay measurement" `Quick test_delay_measurement;
         Alcotest.test_case "silent/light rounds" `Quick test_silent_and_light_rounds;
         Alcotest.test_case "collisions" `Quick
           test_collisions_counted_and_packets_survive;
         Alcotest.test_case "drain" `Quick test_drain_stops_when_empty;
         Alcotest.test_case "energy summary" `Quick test_energy_accounting_in_summary;
         Alcotest.test_case "series sampling" `Quick test_queue_series_sampling;
         Alcotest.test_case "self-injection gauges" `Quick
           test_self_injection_queue_gauges ]);
      ("violations",
       [ Alcotest.test_case "foreign packet" `Quick test_foreign_packet_rejected;
         Alcotest.test_case "plain breach" `Quick test_plain_packet_breach;
         Alcotest.test_case "direct relay" `Quick test_direct_algorithm_cannot_relay;
         Alcotest.test_case "stranded strict" `Quick test_stranded_packet_strict;
         Alcotest.test_case "stranded tolerant" `Quick test_stranded_packet_tolerant;
         Alcotest.test_case "adoption conflict" `Quick test_adoption_conflict;
         Alcotest.test_case "spurious adoption" `Quick test_spurious_adoption;
         Alcotest.test_case "self adoption" `Quick test_transmitter_cannot_adopt;
         Alcotest.test_case "schedule lie" `Quick test_schedule_cross_check;
         Alcotest.test_case "schedule honest" `Quick
           test_schedule_cross_check_passes_honest ]);
      ("sparse",
       [ Alcotest.test_case "sparse = dense grid" `Slow
           test_sparse_matches_dense_grid;
         Alcotest.test_case "telemetry cadence boundary" `Quick
           test_sparse_telemetry_cadence_boundary;
         Alcotest.test_case "Sparse requires the hook" `Quick
           test_sparse_mode_requires_hook;
         Alcotest.test_case "Auto resolution" `Quick
           test_sparse_auto_resolution ]);
      ("determinism", [ QCheck_alcotest.to_alcotest determinism_property ]) ]
