(* Orchestra (§3.1): stability at the maximum injection rate 1 under energy
   cap 3, the Theorem-1 queue bound, the big-conductor mechanism, and
   delivery correctness. *)

open Helpers

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let orchestra = (module Mac_routing.Orchestra : Mac_channel.Algorithm.S)

let run_orchestra ?(n = 8) ?(rate = 1.0) ?(burst = 4.0) ?(rounds = 40_000)
    ?(drain = 0) pattern =
  run ~algorithm:orchestra ~check_schedule:false ~n ~k:3 ~rate ~burst ~pattern
    ~rounds ~drain ()

let queue_bound ~n ~burst = (2 * n * n * n) + int_of_float burst

let test_stable_at_rate_one_flood () =
  let n = 8 in
  let s = run_orchestra (Mac_adversary.Pattern.flood ~n ~victim:3) in
  assert_clean "flood" s;
  assert_cap "flood" 3 s;
  check_bool "stable" true (is_stable s);
  check_bool "queue bound" true (s.max_total_queue <= queue_bound ~n ~burst:4.0)

let test_stable_at_rate_one_uniform () =
  let n = 8 in
  let s = run_orchestra (Mac_adversary.Pattern.uniform ~n ~seed:42) in
  assert_clean "uniform" s;
  assert_cap "uniform" 3 s;
  check_bool "queue bound" true (s.max_total_queue <= queue_bound ~n ~burst:4.0)

let test_stable_under_adaptive_adversary () =
  let n = 8 in
  let s = run_orchestra (Mac_adversary.Pattern.to_busiest ~n) in
  assert_clean "to-busiest" s;
  check_bool "queue bound" true (s.max_total_queue <= queue_bound ~n ~burst:4.0)

let test_small_system () =
  let n = 3 in
  let s = run_orchestra ~n (Mac_adversary.Pattern.flood ~n ~victim:1) in
  assert_clean "n=3" s;
  assert_cap "n=3" 3 s;
  check_bool "stable" true (is_stable s)

let test_rejects_tiny_n () =
  Alcotest.check_raises "n >= 3" (Invalid_argument "Orchestra: needs n >= 3")
    (fun () ->
      ignore (Mac_routing.Orchestra.create ~n:2 ~k:3 ~me:0))

let test_delivers_everything_at_low_rate () =
  let n = 8 in
  let s =
    run_orchestra ~rate:0.4 ~rounds:20_000 ~drain:20_000
      (Mac_adversary.Pattern.uniform ~n ~seed:7)
  in
  assert_delivered_all "low rate" s;
  assert_clean "low rate" s

let test_direct_routing () =
  let n = 8 in
  let s = run_orchestra ~rounds:20_000 (Mac_adversary.Pattern.uniform ~n ~seed:9) in
  check_int "single hop" 1 s.max_hops;
  check_int "no relays" 0 s.relay_rounds

let test_flood_keeps_big_conductor_dense () =
  (* Once the flooded station is big it conducts forever and wastes no
     rounds: light rounds must stop growing after the warm-up. In a run
     twice as long, light rounds stay (nearly) the same. *)
  let n = 8 in
  let short = run_orchestra ~rounds:30_000 (Mac_adversary.Pattern.flood ~n ~victim:3) in
  let long = run_orchestra ~rounds:60_000 (Mac_adversary.Pattern.flood ~n ~victim:3) in
  check_bool "light rounds saturate" true
    (long.light_rounds - short.light_rounds < short.light_rounds / 2 + 50)

let test_energy_cost_is_three_per_round_max () =
  let n = 8 in
  let s = run_orchestra ~rounds:20_000 (Mac_adversary.Pattern.uniform ~n ~seed:11) in
  check_bool "cap 3 reached but never exceeded" true (s.max_on <= 3);
  (* conductor always on; at least one other station on in teaching rounds *)
  check_bool "mean-on between 2 and 3" true (s.mean_on >= 1.9 && s.mean_on <= 3.0)

let test_queue_bound_with_large_burst () =
  let n = 6 in
  let s =
    run_orchestra ~n ~burst:100.0 ~rounds:30_000
      (Mac_adversary.Pattern.flood ~n ~victim:2)
  in
  assert_clean "burst" s;
  check_bool "queue bound with beta" true
    (s.max_total_queue <= queue_bound ~n ~burst:100.0)

let test_no_silent_rounds_in_steady_state () =
  (* A conductor transmits every round of its season: the only message-free
     rounds would be a protocol bug. *)
  let n = 6 in
  let s = run_orchestra ~n ~rounds:10_000 (Mac_adversary.Pattern.uniform ~n ~seed:3) in
  check_int "no silent rounds" 0 s.silent_rounds

let test_starvation_latency_unbounded () =
  (* Table 1 lists Orchestra's latency as infinite: a big conductor keeps
     the baton indefinitely, so one early packet at a musician can starve
     forever. Flood station 0 at (almost) full rate and probe with a single
     packet injected into station 5 — after 60k rounds it is still queued. *)
  let n = 8 in
  let pattern =
    Mac_adversary.Pattern.mix ~seed:9
      [ (1000, Mac_adversary.Pattern.flood ~n ~victim:0);
        (1, Mac_adversary.Pattern.one_shot ~at:500 ~src:5 ~dst:6) ]
  in
  let s = run_orchestra ~rounds:60_000 pattern in
  assert_clean "starvation" s;
  check_bool "big conductor holds the channel" true (is_stable s);
  check_bool "the probe packet is still waiting" true (s.undelivered >= 1);
  check_bool "and it is ancient" true (s.max_queued_age > 50_000)

let test_control_bits_accounted () =
  let n = 8 in
  let s = run_orchestra ~rounds:10_000 (Mac_adversary.Pattern.uniform ~n ~seed:5) in
  check_bool "teaching costs control bits" true (s.control_bits_total > 0)

let () =
  Alcotest.run "orchestra"
    [ ("throughput",
       [ Alcotest.test_case "rate 1 flood" `Slow test_stable_at_rate_one_flood;
         Alcotest.test_case "rate 1 uniform" `Slow test_stable_at_rate_one_uniform;
         Alcotest.test_case "adaptive adversary" `Slow test_stable_under_adaptive_adversary;
         Alcotest.test_case "n=3" `Quick test_small_system;
         Alcotest.test_case "big conductor saturates" `Slow
           test_flood_keeps_big_conductor_dense;
         Alcotest.test_case "burst absorbed" `Slow test_queue_bound_with_large_burst;
         Alcotest.test_case "latency unbounded (starvation)" `Slow
           test_starvation_latency_unbounded ]);
      ("correctness",
       [ Alcotest.test_case "rejects n<3" `Quick test_rejects_tiny_n;
         Alcotest.test_case "delivers all" `Quick test_delivers_everything_at_low_rate;
         Alcotest.test_case "direct" `Quick test_direct_routing;
         Alcotest.test_case "energy profile" `Quick test_energy_cost_is_three_per_round_max;
         Alcotest.test_case "never silent" `Quick test_no_silent_rounds_in_steady_state;
         Alcotest.test_case "control bits" `Quick test_control_bits_accounted ]) ]
