(* k-Subsets (§6): thread eligibility, balanced allocation, stability at the
   optimal oblivious-direct rate (Theorem 8), the RRW variant, and the
   Theorem-9 matching instability. *)

open Helpers

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let algo ?discipline ~n ~k () = Mac_routing.K_subsets.algorithm ?discipline ~n ~k ()

let rate_for ~n ~k = Mac_experiments.Bounds.k_subsets_rate ~n ~k

let run_ks ?discipline ?(n = 6) ?(k = 3) ?rate ?(burst = 4.0) ?(rounds = 60_000)
    ?(drain = 30_000) pattern =
  let rate = match rate with Some r -> r | None -> rate_for ~n ~k in
  run ~algorithm:(algo ?discipline ~n ~k ()) ~n ~k ~rate ~burst ~pattern ~rounds
    ~drain ()

(* ---- thread structure ---- *)

let test_threads_for_counts () =
  (* C(n-2, k-2) threads carry each ordered pair *)
  check_int "C(4,1)" 4
    (List.length (Mac_routing.K_subsets.threads_for ~n:6 ~k:3 ~src:0 ~dst:1));
  check_int "C(6,2)" 15
    (List.length (Mac_routing.K_subsets.threads_for ~n:8 ~k:4 ~src:2 ~dst:7))

let test_threads_for_contain_both () =
  let sets = Mac_routing.Combi.k_subsets ~n:6 ~k:3 in
  List.iter
    (fun i ->
      let s = sets.(i) in
      check_bool "contains src" true (Array.exists (( = ) 0) s);
      check_bool "contains dst" true (Array.exists (( = ) 4) s))
    (Mac_routing.K_subsets.threads_for ~n:6 ~k:3 ~src:0 ~dst:4)

let test_invalid_k_rejected () =
  Alcotest.check_raises "k too big" (Invalid_argument "K_subsets: need 2 <= k < n")
    (fun () -> ignore (algo ~n:4 ~k:4 ()))

(* ---- behaviour ---- *)

let test_flags () =
  let module M = (val algo ~n:6 ~k:3 ()) in
  check_bool "mbtf uses a control bit" false M.plain_packet;
  check_bool "direct" true M.direct;
  check_bool "oblivious" true M.oblivious;
  let module R = (val algo ~discipline:`Rrw ~n:6 ~k:3 ()) in
  check_bool "rrw variant is plain" true R.plain_packet

let test_stable_at_optimal_rate_pair_flood () =
  let s =
    run_ks ~rounds:100_000 ~drain:0 (Mac_adversary.Pattern.pair_flood ~src:1 ~dst:2)
  in
  check_bool "stable at k(k-1)/(n(n-1))" true (is_stable s);
  assert_clean "pair flood" s;
  assert_cap "cap 3" 3 s

let test_stable_at_optimal_rate_uniform () =
  let s =
    run_ks ~rounds:100_000 ~drain:0 (Mac_adversary.Pattern.uniform ~n:6 ~seed:2)
  in
  check_bool "stable" true (is_stable s);
  check_bool "queue bound" true
    (float_of_int s.max_total_queue
     <= Mac_experiments.Bounds.k_subsets_queue_bound ~n:6 ~k:3 ~beta:4.0)

let test_direct_single_hop () =
  let s = run_ks ~rate:0.1 (Mac_adversary.Pattern.uniform ~n:6 ~seed:3) in
  check_int "one hop" 1 s.max_hops;
  assert_delivered_all "uniform 0.1" s

let test_rrw_variant_delivers_with_bounded_latency () =
  let s =
    run_ks ~discipline:`Rrw ~rate:(0.8 *. rate_for ~n:6 ~k:3)
      (Mac_adversary.Pattern.uniform ~n:6 ~seed:4)
  in
  assert_delivered_all "rrw" s;
  check_int "plain" 0 s.control_bits_total;
  check_bool "stable" true (is_stable s)

let test_unstable_above_threshold_min_pair () =
  let n = 6 and k = 3 in
  let a = algo ~n ~k () in
  let schedule = Option.get (Mac_experiments.Scenario.schedule_of a ~n ~k) in
  let choice =
    Mac_adversary.Saboteur.min_pair ~n
      ~horizon:(20 * Mac_routing.Combi.binomial n k) ~schedule
  in
  let s =
    run_ks ~rate:(1.3 *. rate_for ~n ~k) ~rounds:120_000 ~drain:0
      choice.Mac_adversary.Saboteur.pattern
  in
  check_bool "unstable above threshold" true (is_unstable s)

let test_min_pair_coduty_matches_theory () =
  (* the least co-scheduled pair is co-on exactly k(k-1)/(n(n-1)) of rounds *)
  let n = 6 and k = 3 in
  let a = algo ~n ~k () in
  let schedule = Option.get (Mac_experiments.Scenario.schedule_of a ~n ~k) in
  let gamma = Mac_routing.Combi.binomial n k in
  let co = ref 0 in
  for round = 0 to gamma - 1 do
    if schedule ~me:0 ~round && schedule ~me:1 ~round then incr co
  done;
  check_int "co-duty = C(n-2,k-2) per gamma rounds"
    (Mac_routing.Combi.binomial (n - 2) (k - 2))
    !co

let test_energy_profile () =
  let s = run_ks ~rate:0.1 (Mac_adversary.Pattern.uniform ~n:6 ~seed:5) in
  check_int "exactly k on" 3 s.max_on;
  Alcotest.(check (float 0.01)) "every round one subset" 3.0 s.mean_on

let test_larger_instance () =
  let s =
    run_ks ~n:8 ~k:3 ~rounds:100_000 ~drain:0
      (Mac_adversary.Pattern.pair_flood ~src:1 ~dst:2)
  in
  check_bool "n=8 stable at threshold" true (is_stable s);
  assert_clean "n=8" s

let () =
  Alcotest.run "k-subsets"
    [ ("threads",
       [ Alcotest.test_case "counts" `Quick test_threads_for_counts;
         Alcotest.test_case "contain both" `Quick test_threads_for_contain_both;
         Alcotest.test_case "invalid k" `Quick test_invalid_k_rejected;
         Alcotest.test_case "co-duty theory" `Quick test_min_pair_coduty_matches_theory ]);
      ("behaviour",
       [ Alcotest.test_case "flags" `Quick test_flags;
         Alcotest.test_case "single hop" `Quick test_direct_single_hop;
         Alcotest.test_case "energy profile" `Quick test_energy_profile;
         Alcotest.test_case "rrw variant" `Slow test_rrw_variant_delivers_with_bounded_latency ]);
      ("bounds",
       [ Alcotest.test_case "stable at threshold (pair)" `Slow
           test_stable_at_optimal_rate_pair_flood;
         Alcotest.test_case "stable at threshold (uniform)" `Slow
           test_stable_at_optimal_rate_uniform;
         Alcotest.test_case "unstable above" `Slow test_unstable_above_threshold_min_pair;
         Alcotest.test_case "n=8" `Slow test_larger_instance ]) ]
