(* CLI-level tests: fault-plan loading failures must exit 2 with a
   one-line message, and the resilience smoke run must match the
   checked-in golden summary (the same file CI diffs against). *)

let exe = Filename.concat Filename.parent_dir_name "bin/routing_sim.exe"

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* Run the executable, capturing stdout/stderr; returns (code, out, err). *)
let run_cli args =
  let out = Filename.temp_file "eear_cli" ".out" in
  let err = Filename.temp_file "eear_cli" ".err" in
  let cmd = Filename.quote_command exe ~stdout:out ~stderr:err args in
  let code = Sys.command cmd in
  let stdout = read_file out and stderr = read_file err in
  Sys.remove out;
  Sys.remove err;
  (code, stdout, stderr)

let smoke_args =
  [ "resilience"; "count-hop"; "-n"; "6"; "-k"; "2"; "--rate"; "0.6";
    "--rounds"; "3000"; "--drain"; "500"; "--seed"; "42"; "--fault-seed"; "7";
    "--crash-rate"; "0.002"; "--jam-rate"; "0.001"; "--restart-after"; "150";
    "--json" ]

let one_line s =
  let t = String.trim s in
  String.length t > 0 && not (String.contains t '\n')

let contains s sub =
  let n = String.length sub in
  let rec go i = i + n <= String.length s && (String.sub s i n = sub || go (i + 1)) in
  go 0

let test_missing_plan_file_exits_2 () =
  let code, _, err =
    run_cli
      [ "resilience"; "count-hop"; "-n"; "6"; "-k"; "2"; "--rounds"; "10";
        "--fault-plan"; "/nonexistent/eear-plan" ]
  in
  Alcotest.(check int) "exit code" 2 code;
  Alcotest.(check bool) (Printf.sprintf "one-line stderr (got %S)" err) true
    (one_line err)

let test_malformed_plan_file_exits_2 () =
  let plan = Filename.temp_file "eear_plan" ".txt" in
  let oc = open_out plan in
  output_string oc "crash ten 1\n";
  close_out oc;
  let code, _, err =
    Fun.protect
      ~finally:(fun () -> Sys.remove plan)
      (fun () ->
        run_cli
          [ "resilience"; "count-hop"; "-n"; "6"; "-k"; "2"; "--rounds"; "10";
            "--fault-plan"; plan ])
  in
  Alcotest.(check int) "exit code" 2 code;
  Alcotest.(check bool) (Printf.sprintf "one-line stderr (got %S)" err) true
    (one_line err);
  Alcotest.(check bool) "names the offending line" true (contains err "line 1")

let test_plan_station_out_of_range_exits_2 () =
  let plan = Filename.temp_file "eear_plan" ".txt" in
  let oc = open_out plan in
  output_string oc "crash 5 9\n";
  close_out oc;
  let code, _, err =
    Fun.protect
      ~finally:(fun () -> Sys.remove plan)
      (fun () ->
        run_cli
          [ "resilience"; "count-hop"; "-n"; "6"; "-k"; "2"; "--rounds"; "10";
            "--fault-plan"; plan ])
  in
  Alcotest.(check int) "exit code" 2 code;
  Alcotest.(check bool) (Printf.sprintf "one-line stderr (got %S)" err) true
    (one_line err)

(* --progress must leave stdout byte-identical (stderr is its only
   channel), so piping the summary stays safe with a progress line on. *)
let progress_base_args =
  [ "run"; "-a"; "count-hop"; "-n"; "6"; "-k"; "2"; "--rate"; "0.6";
    "--rounds"; "2000"; "--seed"; "11" ]

let test_progress_keeps_stdout_pure () =
  let code_plain, out_plain, _ = run_cli progress_base_args in
  let code_prog, out_prog, err_prog =
    run_cli (progress_base_args @ [ "--progress"; "--telemetry-every"; "500" ])
  in
  Alcotest.(check int) "plain exit" 0 code_plain;
  Alcotest.(check int) "progress exit" 0 code_prog;
  Alcotest.(check string) "stdout byte-identical" out_plain out_prog;
  Alcotest.(check bool) "progress line went to stderr" true
    (contains err_prog "round" && contains err_prog "rounds/s")

let temp_dir prefix =
  let dir = Filename.temp_file prefix "" in
  Sys.remove dir;
  Sys.mkdir dir 0o755;
  dir

let test_top_check_on_live_file () =
  let dir = temp_dir "eear_top" in
  let prom = Filename.concat dir "run.prom" in
  let code_run, _, err_run =
    run_cli
      (progress_base_args @ [ "--telemetry-file"; prom; "--telemetry-every"; "500" ])
  in
  Alcotest.(check int) (Printf.sprintf "run exit (stderr %S)" err_run) 0 code_run;
  Alcotest.(check bool) "exposition written" true (Sys.file_exists prom);
  let code_top, out_top, err_top = run_cli [ "top"; prom; "--once"; "--check" ] in
  Alcotest.(check int) (Printf.sprintf "top exit (stderr %S)" err_top) 0 code_top;
  Alcotest.(check bool) "renders the scenario row" true (contains out_top "run");
  Alcotest.(check bool) "shows progress" true (contains out_top "rounds/s")

let test_top_check_fails_without_rows () =
  let dir = temp_dir "eear_top_empty" in
  let code, _, _ = run_cli [ "top"; dir; "--once"; "--check" ] in
  Alcotest.(check int) "no live rows is a check failure" 1 code

(* --keep-going with an injected always-failing scenario: the sweep
   completes, the surviving rows are byte-identical to a clean run, the
   failure is reported with its attempt count, and the exit code is the
   documented degraded-completion 3. *)
let table1_base = [ "table1"; "T1.orchestra"; "--quick"; "--jobs"; "1" ]

let lines s = String.split_on_char '\n' s

let test_keep_going_degraded_exit_3 () =
  let bad = "orchestra/uniform" in
  let code_clean, out_clean, _ = run_cli table1_base in
  Alcotest.(check int) "clean exit" 0 code_clean;
  let code, out, err =
    run_cli
      (table1_base
      @ [ "--keep-going"; "--retries"; "1"; "--inject-failure"; bad ])
  in
  Alcotest.(check int) "degraded completion exits 3" 3 code;
  let surviving s = List.filter (fun l -> not (contains l bad)) (lines s) in
  Alcotest.(check (list string)) "surviving rows byte-identical"
    (surviving out_clean) (surviving out);
  Alcotest.(check bool) "failed row is marked" true (contains out "FAILED");
  Alcotest.(check bool) "failure reported with attempt count" true
    (contains err "after 2 attempts");
  Alcotest.(check bool) "stderr names the scenario" true (contains err bad)

(* Regression for the quarantine marker: run A fails a cell and writes a
   marker into the resume dir; run B — a NEW process — must honor it and
   refuse to re-run the cell. Before the fix, [quarantine_lookup] read the
   marker's lines as a tuple of [input_line]s (evaluated right-to-left),
   never matched the magic line, and a restarted sweep would silently
   re-run the quarantined cell. *)
let test_quarantine_survives_process_restart () =
  let dir = temp_dir "eear_quar_cli" in
  let bad = "orchestra/uniform" in
  let base = table1_base @ [ "--resume-dir"; dir; "--keep-going" ] in
  let code_a, out_a, err_a =
    run_cli (base @ [ "--inject-failure"; bad ])
  in
  Alcotest.(check int)
    (Printf.sprintf "run A degraded exit (stderr %S)" err_a)
    3 code_a;
  Alcotest.(check bool) "run A marks the failure" true (contains out_a "FAILED");
  Alcotest.(check bool) "marker file written" true
    (Sys.file_exists (Filename.concat dir "orchestra_uniform.quarantined"));
  let code_b, out_b, err_b = run_cli base in
  Alcotest.(check int)
    (Printf.sprintf "run B still degraded (stderr %S)" err_b)
    3 code_b;
  Alcotest.(check bool) "run B honors the marker" true
    (contains out_b "quarantined after 1 failure");
  Alcotest.(check bool) "other cells resumed from cache" true
    (contains out_b "(resumed)");
  let bad_lines = List.filter (fun l -> contains l bad) (lines out_b) in
  Alcotest.(check bool) "quarantined cell never re-ran" true
    (bad_lines <> []
    && List.for_all (fun l -> not (contains l "PASS")) bad_lines)

(* Scraped files can vanish or be mid-creation between the directory
   scan and the read; top must skip them, not fail. *)
let test_top_tolerates_vanished_and_fresh_files () =
  let code, out, _ =
    run_cli [ "top"; "/nonexistent/eear.prom"; "--once" ]
  in
  Alcotest.(check int) "vanished file tolerated" 0 code;
  Alcotest.(check bool) "no error line for a vanished file" false
    (contains out "\n! ");
  (* a live exposition next to a zero-byte one a writer just created *)
  let dir = temp_dir "eear_top_mixed" in
  let prom = Filename.concat dir "run.prom" in
  let code_run, _, _ =
    run_cli
      (progress_base_args @ [ "--telemetry-file"; prom; "--telemetry-every"; "500" ])
  in
  Alcotest.(check int) "run exit" 0 code_run;
  let oc = open_out (Filename.concat dir "fresh.prom") in
  close_out oc;
  let code_top, out_top, _ = run_cli [ "top"; dir; "--once"; "--check" ] in
  Alcotest.(check int) "check passes despite the empty file" 0 code_top;
  Alcotest.(check bool) "live row still rendered" true
    (contains out_top "rounds/s")

let test_chaos_smoke () =
  let code, out, err = run_cli [ "chaos"; "--count"; "2"; "--seed"; "7" ] in
  Alcotest.(check int) (Printf.sprintf "chaos exit (stderr %S)" err) 0 code;
  Alcotest.(check bool) "reports the config count" true
    (contains out "2 configs");
  Alcotest.(check bool) "reports zero failures" true
    (contains out "0 failures")

let test_smoke_matches_golden () =
  let code, out, err = run_cli smoke_args in
  Alcotest.(check int) (Printf.sprintf "exit code (stderr %S)" err) 0 code;
  let golden = String.trim (read_file "golden/resilience_smoke.json") in
  Alcotest.(check string) "summary JSON matches golden" golden (String.trim out)

let () =
  Alcotest.run "cli"
    [ ("fault-plan errors",
       [ Alcotest.test_case "missing file" `Quick test_missing_plan_file_exits_2;
         Alcotest.test_case "malformed file" `Quick
           test_malformed_plan_file_exits_2;
         Alcotest.test_case "station out of range" `Quick
           test_plan_station_out_of_range_exits_2 ]);
      ("telemetry",
       [ Alcotest.test_case "progress keeps stdout pure" `Quick
           test_progress_keeps_stdout_pure;
         Alcotest.test_case "top --check on a live file" `Quick
           test_top_check_on_live_file;
         Alcotest.test_case "top --check without rows" `Quick
           test_top_check_fails_without_rows;
         Alcotest.test_case "top tolerates vanished/fresh files" `Quick
           test_top_tolerates_vanished_and_fresh_files ]);
      ("supervision",
       [ Alcotest.test_case "quarantine survives restart" `Quick
           test_quarantine_survives_process_restart;
         Alcotest.test_case "keep-going degraded exit 3" `Quick
           test_keep_going_degraded_exit_3;
         Alcotest.test_case "chaos smoke" `Quick test_chaos_smoke ]);
      ("golden",
       [ Alcotest.test_case "resilience smoke" `Quick test_smoke_matches_golden ]) ]
