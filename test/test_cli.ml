(* CLI-level tests: fault-plan loading failures must exit 2 with a
   one-line message, and the resilience smoke run must match the
   checked-in golden summary (the same file CI diffs against). *)

let exe = Filename.concat Filename.parent_dir_name "bin/routing_sim.exe"

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* Run the executable, capturing stdout/stderr; returns (code, out, err). *)
let run_cli args =
  let out = Filename.temp_file "eear_cli" ".out" in
  let err = Filename.temp_file "eear_cli" ".err" in
  let cmd = Filename.quote_command exe ~stdout:out ~stderr:err args in
  let code = Sys.command cmd in
  let stdout = read_file out and stderr = read_file err in
  Sys.remove out;
  Sys.remove err;
  (code, stdout, stderr)

let smoke_args =
  [ "resilience"; "count-hop"; "-n"; "6"; "-k"; "2"; "--rate"; "0.6";
    "--rounds"; "3000"; "--drain"; "500"; "--seed"; "42"; "--fault-seed"; "7";
    "--crash-rate"; "0.002"; "--jam-rate"; "0.001"; "--restart-after"; "150";
    "--json" ]

let one_line s =
  let t = String.trim s in
  String.length t > 0 && not (String.contains t '\n')

let contains s sub =
  let n = String.length sub in
  let rec go i = i + n <= String.length s && (String.sub s i n = sub || go (i + 1)) in
  go 0

let test_missing_plan_file_exits_2 () =
  let code, _, err =
    run_cli
      [ "resilience"; "count-hop"; "-n"; "6"; "-k"; "2"; "--rounds"; "10";
        "--fault-plan"; "/nonexistent/eear-plan" ]
  in
  Alcotest.(check int) "exit code" 2 code;
  Alcotest.(check bool) (Printf.sprintf "one-line stderr (got %S)" err) true
    (one_line err)

let test_malformed_plan_file_exits_2 () =
  let plan = Filename.temp_file "eear_plan" ".txt" in
  let oc = open_out plan in
  output_string oc "crash ten 1\n";
  close_out oc;
  let code, _, err =
    Fun.protect
      ~finally:(fun () -> Sys.remove plan)
      (fun () ->
        run_cli
          [ "resilience"; "count-hop"; "-n"; "6"; "-k"; "2"; "--rounds"; "10";
            "--fault-plan"; plan ])
  in
  Alcotest.(check int) "exit code" 2 code;
  Alcotest.(check bool) (Printf.sprintf "one-line stderr (got %S)" err) true
    (one_line err);
  Alcotest.(check bool) "names the offending line" true (contains err "line 1")

let test_plan_station_out_of_range_exits_2 () =
  let plan = Filename.temp_file "eear_plan" ".txt" in
  let oc = open_out plan in
  output_string oc "crash 5 9\n";
  close_out oc;
  let code, _, err =
    Fun.protect
      ~finally:(fun () -> Sys.remove plan)
      (fun () ->
        run_cli
          [ "resilience"; "count-hop"; "-n"; "6"; "-k"; "2"; "--rounds"; "10";
            "--fault-plan"; plan ])
  in
  Alcotest.(check int) "exit code" 2 code;
  Alcotest.(check bool) (Printf.sprintf "one-line stderr (got %S)" err) true
    (one_line err)

let test_smoke_matches_golden () =
  let code, out, err = run_cli smoke_args in
  Alcotest.(check int) (Printf.sprintf "exit code (stderr %S)" err) 0 code;
  let golden = String.trim (read_file "golden/resilience_smoke.json") in
  Alcotest.(check string) "summary JSON matches golden" golden (String.trim out)

let () =
  Alcotest.run "cli"
    [ ("fault-plan errors",
       [ Alcotest.test_case "missing file" `Quick test_missing_plan_file_exits_2;
         Alcotest.test_case "malformed file" `Quick
           test_malformed_plan_file_exits_2;
         Alcotest.test_case "station out of range" `Quick
           test_plan_station_out_of_range_exits_2 ]);
      ("golden",
       [ Alcotest.test_case "resilience smoke" `Quick test_smoke_matches_golden ]) ]
