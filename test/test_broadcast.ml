(* Tests for the broadcast substrate: the replicated token structures and
   the three cited algorithms (RRW, OF-RRW, MBTF) run end-to-end through the
   engine. MBTF's stability at injection rate 1 is the property k-Subsets'
   optimality rests on. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ---- Token_ring ---- *)

let test_ring_advances_on_silence () =
  let r = Mac_broadcast.Token_ring.create ~members:[| 3; 5; 9 |] in
  check_int "starts at first member" 3 (Mac_broadcast.Token_ring.holder r);
  Mac_broadcast.Token_ring.note_heard r;
  check_int "heard keeps holder" 3 (Mac_broadcast.Token_ring.holder r);
  Mac_broadcast.Token_ring.note_silence r;
  check_int "silence advances" 5 (Mac_broadcast.Token_ring.holder r)

let test_ring_phase_wraps () =
  let r = Mac_broadcast.Token_ring.create ~members:[| 1; 2 |] in
  check_int "phase 0" 0 (Mac_broadcast.Token_ring.phase r);
  Mac_broadcast.Token_ring.note_silence r;
  check_int "mid cycle" 0 (Mac_broadcast.Token_ring.phase r);
  Mac_broadcast.Token_ring.note_silence r;
  check_int "wrapped" 1 (Mac_broadcast.Token_ring.phase r);
  check_int "back to head" 1 (Mac_broadcast.Token_ring.holder r)

let test_ring_empty_rejected () =
  Alcotest.check_raises "empty" (Invalid_argument "Token_ring.create: empty")
    (fun () -> ignore (Mac_broadcast.Token_ring.create ~members:[||]))

(* ---- Mbtf_list ---- *)

let test_mbtf_list_move_to_front () =
  let l = Mac_broadcast.Mbtf_list.create ~members:[| 0; 1; 2; 3 |] in
  Mac_broadcast.Mbtf_list.note_silence l;
  Mac_broadcast.Mbtf_list.note_silence l;
  check_int "token at 2" 2 (Mac_broadcast.Mbtf_list.holder l);
  Mac_broadcast.Mbtf_list.note_heard_big l;
  Alcotest.(check (array int)) "2 moved to front" [| 2; 0; 1; 3 |]
    (Mac_broadcast.Mbtf_list.order l);
  check_int "keeps token" 2 (Mac_broadcast.Mbtf_list.holder l);
  Mac_broadcast.Mbtf_list.note_heard_small l;
  check_int "then passes to old front" 0 (Mac_broadcast.Mbtf_list.holder l)

let test_mbtf_list_front_big_is_noop_move () =
  let l = Mac_broadcast.Mbtf_list.create ~members:[| 0; 1 |] in
  Mac_broadcast.Mbtf_list.note_heard_big l;
  Alcotest.(check (array int)) "unchanged" [| 0; 1 |] (Mac_broadcast.Mbtf_list.order l);
  check_int "keeps token" 0 (Mac_broadcast.Mbtf_list.holder l)

(* ---- End-to-end broadcast runs ---- *)

let run ?(faults = None) ?(strict = true) ~algorithm ~n ~rate ~burst ~pattern
    ~rounds ~drain () =
  let adversary = Mac_adversary.Adversary.create ~rate ~burst pattern in
  let config =
    { (Mac_sim.Engine.default_config ~rounds) with
      drain_limit = drain; check_schedule = true; strict; faults }
  in
  Mac_sim.Engine.run ~config ~algorithm ~n ~k:n ~adversary ~rounds ()

let stable (s : Mac_sim.Metrics.summary) =
  (Mac_sim.Stability.classify s.queue_series).verdict = Mac_sim.Stability.Stable

let test_mbtf_stable_at_rate_one () =
  List.iter
    (fun (seed, pattern) ->
      let s =
        run ~algorithm:(module Mac_broadcast.Mbtf) ~n:8 ~rate:1.0 ~burst:4.0
          ~pattern ~rounds:40_000 ~drain:0 ()
      in
      check_bool (Printf.sprintf "stable (case %d)" seed) true (stable s);
      check_bool "queues bounded well below horizon" true (s.max_total_queue < 500);
      check_bool "clean" true (Mac_sim.Metrics.no_violations s))
    [ (0, Mac_adversary.Pattern.uniform ~n:8 ~seed:1);
      (1, Mac_adversary.Pattern.flood ~n:8 ~victim:2);
      (2, Mac_adversary.Pattern.round_robin ~n:8) ]

let test_mbtf_few_silent_rounds_under_load () =
  (* The move-big-to-front rule means a loaded system wastes almost no
     rounds: at rate 1 silence must stay a tiny fraction. *)
  let s =
    run ~algorithm:(module Mac_broadcast.Mbtf) ~n:8 ~rate:1.0 ~burst:4.0
      ~pattern:(Mac_adversary.Pattern.flood ~n:8 ~victim:2) ~rounds:40_000
      ~drain:0 ()
  in
  check_bool "silent rounds < 1%" true (s.silent_rounds * 100 < s.rounds)

let test_rrw_delivers_everything () =
  let s =
    run ~algorithm:(module Mac_broadcast.Rrw) ~n:6 ~rate:0.8 ~burst:2.0
      ~pattern:(Mac_adversary.Pattern.uniform ~n:6 ~seed:5) ~rounds:30_000
      ~drain:10_000 ()
  in
  check_int "all delivered" 0 s.undelivered;
  check_bool "plain packets only" true (s.control_bits_total = 0);
  check_bool "stable" true (stable s)

let test_of_rrw_delivers_everything () =
  let s =
    run ~algorithm:(module Mac_broadcast.Of_rrw) ~n:6 ~rate:0.8 ~burst:2.0
      ~pattern:(Mac_adversary.Pattern.uniform ~n:6 ~seed:6) ~rounds:30_000
      ~drain:10_000 ()
  in
  check_int "all delivered" 0 s.undelivered;
  check_bool "stable" true (stable s);
  check_bool "clean" true (Mac_sim.Metrics.no_violations s)

let test_of_rrw_beats_rate_one_unlike_rrw_withholding_cost () =
  (* Both handle rate 0.95; this checks the common machinery under stress
     and that delays stay linear-ish in n/(1-rho). *)
  List.iter
    (fun algorithm ->
      let s =
        run ~algorithm ~n:6 ~rate:0.95 ~burst:2.0
          ~pattern:(Mac_adversary.Pattern.uniform ~n:6 ~seed:7) ~rounds:40_000
          ~drain:20_000 ()
      in
      check_int "all delivered" 0 s.undelivered;
      check_bool "stable" true (stable s))
    [ (module Mac_broadcast.Rrw : Mac_channel.Algorithm.S);
      (module Mac_broadcast.Of_rrw) ]

let test_broadcast_always_on_energy () =
  let s =
    run ~algorithm:(module Mac_broadcast.Mbtf) ~n:5 ~rate:0.5 ~burst:2.0
      ~pattern:(Mac_adversary.Pattern.uniform ~n:5 ~seed:8) ~rounds:5_000
      ~drain:0 ()
  in
  check_int "all stations on" 5 s.max_on;
  Alcotest.(check (float 0.01)) "every round" 5.0 s.mean_on

let test_broadcast_direct_single_hop () =
  let s =
    run ~algorithm:(module Mac_broadcast.Rrw) ~n:5 ~rate:0.5 ~burst:2.0
      ~pattern:(Mac_adversary.Pattern.uniform ~n:5 ~seed:9) ~rounds:5_000
      ~drain:2_000 ()
  in
  check_int "single hop" 1 s.max_hops;
  check_int "no relays" 0 s.relay_rounds

(* ---- Token_ring / ring edge cases ---- *)

let test_ring_single_member_wraps () =
  (* The degenerate one-member ring: the holder never changes, but every
     silent round completes a phase — the signal Ring_broadcast's
     [`On_token] policy uses to re-arm its snapshot at n=1. *)
  let r = Mac_broadcast.Token_ring.create ~members:[| 7 |] in
  check_int "sole holder" 7 (Mac_broadcast.Token_ring.holder r);
  Mac_broadcast.Token_ring.note_silence r;
  check_int "holder unchanged" 7 (Mac_broadcast.Token_ring.holder r);
  check_int "every silence wraps" 1 (Mac_broadcast.Token_ring.phase r);
  Mac_broadcast.Token_ring.note_silence r;
  check_int "and wraps again" 2 (Mac_broadcast.Token_ring.phase r);
  Mac_broadcast.Token_ring.note_heard r;
  check_int "heard freezes the phase" 2 (Mac_broadcast.Token_ring.phase r)

(* Regression for the `On_token re-snapshot staleness: at n=1 the holder
   never changes hands, so before the wraparound fix [need_snapshot] was
   never re-armed after the first (empty) refill and a packet injected
   later stayed ineligible forever. Driven at the algorithm level: the
   engine special-cases n=1 (self-addressed packets are delivered at
   injection), which would mask the bug. *)
let test_rrw_single_station_late_injection () =
  let module A = Mac_broadcast.Rrw in
  let queue = Mac_channel.Pqueue.create ~n:1 in
  let st = A.create ~n:1 ~k:1 ~me:0 in
  for round = 0 to 9 do
    (match A.act st ~round ~queue with
    | Mac_channel.Action.Listen -> ()
    | Mac_channel.Action.Transmit _ ->
      Alcotest.fail "transmitted from an empty queue");
    ignore
      (A.observe st ~round ~queue ~feedback:Mac_channel.Feedback.Silence)
  done;
  Mac_channel.Pqueue.add queue
    (Mac_channel.Packet.make ~id:1 ~src:0 ~dst:0 ~injected_at:10);
  let transmitted = ref false in
  (try
     for round = 10 to 20 do
       match A.act st ~round ~queue with
       | Mac_channel.Action.Transmit m ->
         (match m.Mac_channel.Message.packet with
         | Some p -> check_int "the late packet" 1 p.Mac_channel.Packet.id
         | None -> Alcotest.fail "light message from a plain-packet ring");
         transmitted := true;
         raise Exit
       | Mac_channel.Action.Listen ->
         ignore
           (A.observe st ~round ~queue
              ~feedback:Mac_channel.Feedback.Silence)
     done
   with Exit -> ());
  check_bool "late-injected packet becomes eligible" true !transmitted

let test_rrw_ring_advances_past_crashed_station () =
  (* Station 2 crashes for good mid-run and a short jam burst hits the
     channel; traffic flows only 0 -> 1, so every injected packet must
     still deliver — the ring passes the dead station's turn by silence
     and the jams only delay it. *)
  let faults =
    Mac_faults.Fault_plan.scripted ~name:"crash2+jam"
      ([ (50, Mac_faults.Fault_plan.Crash
              { station = 2; queue = Mac_faults.Fault_plan.Drop }) ]
      @ List.init 5 (fun i ->
            (300 + i, Mac_faults.Fault_plan.Jam)))
  in
  let s =
    run ~faults:(Some faults) ~strict:false
      ~algorithm:(module Mac_broadcast.Rrw) ~n:4 ~rate:0.3 ~burst:2.0
      ~pattern:(Mac_adversary.Pattern.pair_flood ~src:0 ~dst:1)
      ~rounds:6_000 ~drain:3_000 ()
  in
  check_int "one crash" 1 s.faults.crashes;
  check_int "nothing was queued at the dead station" 0 s.faults.lost_to_crash;
  check_int "all delivered around the dead station" 0 s.undelivered;
  check_bool "progress continued" true (s.delivered > 0)

(* ---- Cross-paper broadcast families ---- *)

let test_fs_tree_delivers_everything () =
  let s =
    run ~algorithm:(module Mac_broadcast.Fs_tree) ~n:6 ~rate:0.5 ~burst:3.0
      ~pattern:(Mac_adversary.Pattern.uniform ~n:6 ~seed:11) ~rounds:30_000
      ~drain:10_000 ()
  in
  check_int "all delivered" 0 s.undelivered;
  check_bool "plain packets only" true (s.control_bits_total = 0);
  check_bool "stable" true (stable s);
  check_bool "clean" true (Mac_sim.Metrics.no_violations s)

let test_fs_tree_splits_resolve_collisions () =
  (* Bursty injection into many queues provokes collisions; the binary
     splits must resolve every one of them (fault-free channel, so no
     singleton-interval collisions exist) and still deliver everything. *)
  let s =
    run ~algorithm:(module Mac_broadcast.Fs_tree) ~n:8 ~rate:0.4 ~burst:8.0
      ~pattern:(Mac_adversary.Pattern.round_robin ~n:8) ~rounds:20_000
      ~drain:10_000 ()
  in
  check_bool "collisions happened" true (s.collision_rounds > 0);
  check_int "and were all resolved" 0 s.undelivered;
  check_bool "clean" true (Mac_sim.Metrics.no_violations s)

let test_ack_rr_collision_free_delivery () =
  let s =
    run ~algorithm:(module Mac_broadcast.Ack_rr) ~n:6 ~rate:0.6 ~burst:2.0
      ~pattern:(Mac_adversary.Pattern.uniform ~n:6 ~seed:13) ~rounds:30_000
      ~drain:10_000 ()
  in
  check_int "TDMA never collides on a fault-free channel" 0 s.collision_rounds;
  check_int "all delivered" 0 s.undelivered;
  check_bool "stable" true (stable s);
  check_bool "clean" true (Mac_sim.Metrics.no_violations s)

let test_ack_rr_single_queue_slowdown () =
  (* The factor-n price of TDMA: a single flooded queue is served once
     every n rounds, so rate 1/2 into one station is hopeless for n=6 —
     the backlog must grow without bound. *)
  let s =
    run ~algorithm:(module Mac_broadcast.Ack_rr) ~n:6 ~rate:0.5 ~burst:2.0
      ~pattern:(Mac_adversary.Pattern.pair_flood ~src:3 ~dst:4)
      ~rounds:30_000 ~drain:0 ()
  in
  check_bool "unstable above 1/n per queue" true (not (stable s))

let test_backoff_delivers_and_is_deterministic () =
  let go () =
    run
      ~algorithm:(Mac_broadcast.Backoff.algorithm ~seed:3 ())
      ~n:5 ~rate:0.2 ~burst:2.0
      ~pattern:(Mac_adversary.Pattern.uniform ~n:5 ~seed:12) ~rounds:20_000
      ~drain:20_000 ()
  in
  let s = go () in
  check_int "all delivered" 0 s.undelivered;
  check_bool "clean" true (Mac_sim.Metrics.no_violations s);
  check_bool "bit-identical rerun" true (s = go ())

let test_family_entry_points_run () =
  (* The former Unimplemented stubs: both entry points must now return
     working algorithms (the acceptance gate for ROADMAP item 4). *)
  let module FS = (val Mac_broadcast.Ring_broadcast.full_sensing ()) in
  let module AB = (val Mac_broadcast.Ring_broadcast.ack_based ()) in
  Alcotest.(check string) "full-sensing representative" "fs-tree" FS.name;
  Alcotest.(check string) "ack-based representative" "ack-rr" AB.name;
  List.iter
    (fun algorithm ->
      let s =
        run ~algorithm ~n:4 ~rate:0.25 ~burst:2.0
          ~pattern:(Mac_adversary.Pattern.round_robin ~n:4) ~rounds:4_000
          ~drain:4_000 ()
      in
      check_int "delivers" 0 s.undelivered;
      check_bool "clean" true (Mac_sim.Metrics.no_violations s))
    [ Mac_broadcast.Ring_broadcast.full_sensing ();
      Mac_broadcast.Ring_broadcast.ack_based () ]

(* ---- State codec round-trips (checkpoint fidelity) ---- *)

(* Drive an algorithm through a pseudo-random feedback script, snapshot
   it through its codec, and require (a) encode/decode/encode is a fixed
   point and (b) the decoded replica behaves bit-identically on a further
   script — the property resume correctness rests on. *)
let codec_roundtrip ~algorithm ~seed =
  let module A = (val (algorithm : Mac_channel.Algorithm.t)) in
  let n = 4 in
  let rng = Mac_channel.Rng.create ~seed in
  let queue = Mac_channel.Pqueue.create ~n in
  let next_id = ref 0 in
  let fresh_packet () =
    incr next_id;
    Mac_channel.Packet.make ~id:!next_id
      ~src:(Mac_channel.Rng.int rng n)
      ~dst:(Mac_channel.Rng.int rng n)
      ~injected_at:0
  in
  for _ = 1 to 3 do
    Mac_channel.Pqueue.add queue (fresh_packet ())
  done;
  let feedback () =
    match Mac_channel.Rng.int rng 4 with
    | 0 -> Mac_channel.Feedback.Silence
    | 1 -> Mac_channel.Feedback.Collision
    | 2 ->
      Mac_channel.Feedback.Heard
        (Mac_channel.Message.packet_only (fresh_packet ()))
    | _ ->
      Mac_channel.Feedback.Heard
        (Mac_channel.Message.make ~packet:(fresh_packet ())
           [ Mac_channel.Message.Flag true ])
  in
  let st = A.create ~n ~k:n ~me:1 in
  for round = 0 to 39 do
    ignore (A.act st ~round ~queue);
    ignore (A.observe st ~round ~queue ~feedback:(feedback ()))
  done;
  let enc = A.encode_state st in
  let st' = A.decode_state enc in
  let fixed_point = String.equal (A.encode_state st') enc in
  let agrees = ref true in
  for round = 40 to 59 do
    let fb = feedback () in
    let a = A.act st ~round ~queue in
    let a' = A.act st' ~round ~queue in
    if a <> a' then agrees := false;
    let r = A.observe st ~round ~queue ~feedback:fb in
    let r' = A.observe st' ~round ~queue ~feedback:fb in
    if r <> r' then agrees := false
  done;
  fixed_point && !agrees

let qcheck_new_codecs_roundtrip =
  QCheck.Test.make ~name:"broadcast state codecs round-trip mid-run"
    ~count:40
    QCheck.(int_range 0 1_000_000)
    (fun seed ->
      List.for_all
        (fun algorithm -> codec_roundtrip ~algorithm ~seed)
        [ (module Mac_broadcast.Rrw : Mac_channel.Algorithm.S);
          (module Mac_broadcast.Of_rrw);
          (module Mac_broadcast.Mbtf);
          (module Mac_broadcast.Fs_tree);
          (module Mac_broadcast.Ack_rr);
          Mac_broadcast.Backoff.algorithm ~seed:5 () ])

let () =
  Alcotest.run "broadcast"
    [ ("token-ring",
       [ Alcotest.test_case "advance on silence" `Quick test_ring_advances_on_silence;
         Alcotest.test_case "phase wrap" `Quick test_ring_phase_wraps;
         Alcotest.test_case "single-member wrap" `Quick test_ring_single_member_wraps;
         Alcotest.test_case "empty rejected" `Quick test_ring_empty_rejected ]);
      ("mbtf-list",
       [ Alcotest.test_case "move to front" `Quick test_mbtf_list_move_to_front;
         Alcotest.test_case "front big noop" `Quick test_mbtf_list_front_big_is_noop_move ]);
      ("mbtf",
       [ Alcotest.test_case "stable at rate 1" `Slow test_mbtf_stable_at_rate_one;
         Alcotest.test_case "few silent rounds" `Slow test_mbtf_few_silent_rounds_under_load ]);
      ("rrw",
       [ Alcotest.test_case "delivers everything" `Slow test_rrw_delivers_everything;
         Alcotest.test_case "high rate" `Slow test_of_rrw_beats_rate_one_unlike_rrw_withholding_cost ]);
      ("of-rrw",
       [ Alcotest.test_case "delivers everything" `Slow test_of_rrw_delivers_everything ]);
      ("model",
       [ Alcotest.test_case "always-on energy" `Quick test_broadcast_always_on_energy;
         Alcotest.test_case "direct single hop" `Quick test_broadcast_direct_single_hop ]);
      ("regressions",
       [ Alcotest.test_case "n=1 late injection still eligible" `Quick
           test_rrw_single_station_late_injection;
         Alcotest.test_case "ring advances past crashed station" `Slow
           test_rrw_ring_advances_past_crashed_station ]);
      ("fs-tree",
       [ Alcotest.test_case "delivers everything" `Slow test_fs_tree_delivers_everything;
         Alcotest.test_case "splits resolve collisions" `Slow
           test_fs_tree_splits_resolve_collisions ]);
      ("ack-rr",
       [ Alcotest.test_case "collision-free delivery" `Slow
           test_ack_rr_collision_free_delivery;
         Alcotest.test_case "single-queue slowdown" `Slow
           test_ack_rr_single_queue_slowdown ]);
      ("backoff",
       [ Alcotest.test_case "delivers deterministically" `Slow
           test_backoff_delivers_and_is_deterministic ]);
      ("families",
       [ Alcotest.test_case "entry points run" `Slow test_family_entry_points_run;
         QCheck_alcotest.to_alcotest qcheck_new_codecs_roundtrip ]) ]
