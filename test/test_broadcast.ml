(* Tests for the broadcast substrate: the replicated token structures and
   the three cited algorithms (RRW, OF-RRW, MBTF) run end-to-end through the
   engine. MBTF's stability at injection rate 1 is the property k-Subsets'
   optimality rests on. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ---- Token_ring ---- *)

let test_ring_advances_on_silence () =
  let r = Mac_broadcast.Token_ring.create ~members:[| 3; 5; 9 |] in
  check_int "starts at first member" 3 (Mac_broadcast.Token_ring.holder r);
  Mac_broadcast.Token_ring.note_heard r;
  check_int "heard keeps holder" 3 (Mac_broadcast.Token_ring.holder r);
  Mac_broadcast.Token_ring.note_silence r;
  check_int "silence advances" 5 (Mac_broadcast.Token_ring.holder r)

let test_ring_phase_wraps () =
  let r = Mac_broadcast.Token_ring.create ~members:[| 1; 2 |] in
  check_int "phase 0" 0 (Mac_broadcast.Token_ring.phase r);
  Mac_broadcast.Token_ring.note_silence r;
  check_int "mid cycle" 0 (Mac_broadcast.Token_ring.phase r);
  Mac_broadcast.Token_ring.note_silence r;
  check_int "wrapped" 1 (Mac_broadcast.Token_ring.phase r);
  check_int "back to head" 1 (Mac_broadcast.Token_ring.holder r)

let test_ring_empty_rejected () =
  Alcotest.check_raises "empty" (Invalid_argument "Token_ring.create: empty")
    (fun () -> ignore (Mac_broadcast.Token_ring.create ~members:[||]))

(* ---- Mbtf_list ---- *)

let test_mbtf_list_move_to_front () =
  let l = Mac_broadcast.Mbtf_list.create ~members:[| 0; 1; 2; 3 |] in
  Mac_broadcast.Mbtf_list.note_silence l;
  Mac_broadcast.Mbtf_list.note_silence l;
  check_int "token at 2" 2 (Mac_broadcast.Mbtf_list.holder l);
  Mac_broadcast.Mbtf_list.note_heard_big l;
  Alcotest.(check (array int)) "2 moved to front" [| 2; 0; 1; 3 |]
    (Mac_broadcast.Mbtf_list.order l);
  check_int "keeps token" 2 (Mac_broadcast.Mbtf_list.holder l);
  Mac_broadcast.Mbtf_list.note_heard_small l;
  check_int "then passes to old front" 0 (Mac_broadcast.Mbtf_list.holder l)

let test_mbtf_list_front_big_is_noop_move () =
  let l = Mac_broadcast.Mbtf_list.create ~members:[| 0; 1 |] in
  Mac_broadcast.Mbtf_list.note_heard_big l;
  Alcotest.(check (array int)) "unchanged" [| 0; 1 |] (Mac_broadcast.Mbtf_list.order l);
  check_int "keeps token" 0 (Mac_broadcast.Mbtf_list.holder l)

(* ---- End-to-end broadcast runs ---- *)

let run ~algorithm ~n ~rate ~burst ~pattern ~rounds ~drain =
  let adversary = Mac_adversary.Adversary.create ~rate ~burst pattern in
  let config =
    { (Mac_sim.Engine.default_config ~rounds) with
      drain_limit = drain; check_schedule = true }
  in
  Mac_sim.Engine.run ~config ~algorithm ~n ~k:n ~adversary ~rounds ()

let stable (s : Mac_sim.Metrics.summary) =
  (Mac_sim.Stability.classify s.queue_series).verdict = Mac_sim.Stability.Stable

let test_mbtf_stable_at_rate_one () =
  List.iter
    (fun (seed, pattern) ->
      let s =
        run ~algorithm:(module Mac_broadcast.Mbtf) ~n:8 ~rate:1.0 ~burst:4.0
          ~pattern ~rounds:40_000 ~drain:0
      in
      check_bool (Printf.sprintf "stable (case %d)" seed) true (stable s);
      check_bool "queues bounded well below horizon" true (s.max_total_queue < 500);
      check_bool "clean" true (Mac_sim.Metrics.no_violations s))
    [ (0, Mac_adversary.Pattern.uniform ~n:8 ~seed:1);
      (1, Mac_adversary.Pattern.flood ~n:8 ~victim:2);
      (2, Mac_adversary.Pattern.round_robin ~n:8) ]

let test_mbtf_few_silent_rounds_under_load () =
  (* The move-big-to-front rule means a loaded system wastes almost no
     rounds: at rate 1 silence must stay a tiny fraction. *)
  let s =
    run ~algorithm:(module Mac_broadcast.Mbtf) ~n:8 ~rate:1.0 ~burst:4.0
      ~pattern:(Mac_adversary.Pattern.flood ~n:8 ~victim:2) ~rounds:40_000
      ~drain:0
  in
  check_bool "silent rounds < 1%" true (s.silent_rounds * 100 < s.rounds)

let test_rrw_delivers_everything () =
  let s =
    run ~algorithm:(module Mac_broadcast.Rrw) ~n:6 ~rate:0.8 ~burst:2.0
      ~pattern:(Mac_adversary.Pattern.uniform ~n:6 ~seed:5) ~rounds:30_000
      ~drain:10_000
  in
  check_int "all delivered" 0 s.undelivered;
  check_bool "plain packets only" true (s.control_bits_total = 0);
  check_bool "stable" true (stable s)

let test_of_rrw_delivers_everything () =
  let s =
    run ~algorithm:(module Mac_broadcast.Of_rrw) ~n:6 ~rate:0.8 ~burst:2.0
      ~pattern:(Mac_adversary.Pattern.uniform ~n:6 ~seed:6) ~rounds:30_000
      ~drain:10_000
  in
  check_int "all delivered" 0 s.undelivered;
  check_bool "stable" true (stable s);
  check_bool "clean" true (Mac_sim.Metrics.no_violations s)

let test_of_rrw_beats_rate_one_unlike_rrw_withholding_cost () =
  (* Both handle rate 0.95; this checks the common machinery under stress
     and that delays stay linear-ish in n/(1-rho). *)
  List.iter
    (fun algorithm ->
      let s =
        run ~algorithm ~n:6 ~rate:0.95 ~burst:2.0
          ~pattern:(Mac_adversary.Pattern.uniform ~n:6 ~seed:7) ~rounds:40_000
          ~drain:20_000
      in
      check_int "all delivered" 0 s.undelivered;
      check_bool "stable" true (stable s))
    [ (module Mac_broadcast.Rrw : Mac_channel.Algorithm.S);
      (module Mac_broadcast.Of_rrw) ]

let test_broadcast_always_on_energy () =
  let s =
    run ~algorithm:(module Mac_broadcast.Mbtf) ~n:5 ~rate:0.5 ~burst:2.0
      ~pattern:(Mac_adversary.Pattern.uniform ~n:5 ~seed:8) ~rounds:5_000
      ~drain:0
  in
  check_int "all stations on" 5 s.max_on;
  Alcotest.(check (float 0.01)) "every round" 5.0 s.mean_on

let test_broadcast_direct_single_hop () =
  let s =
    run ~algorithm:(module Mac_broadcast.Rrw) ~n:5 ~rate:0.5 ~burst:2.0
      ~pattern:(Mac_adversary.Pattern.uniform ~n:5 ~seed:9) ~rounds:5_000
      ~drain:2_000
  in
  check_int "single hop" 1 s.max_hops;
  check_int "no relays" 0 s.relay_rounds

(* The unimplemented cross-paper variants (ROADMAP item 4) must fail
   loudly with a pointer, never silently run the wrong algorithm. *)
let test_unimplemented_variants_raise () =
  let expect name f =
    match f () with
    | (_ : Mac_channel.Algorithm.t) ->
      Alcotest.failf "%s: expected Ring_broadcast.Unimplemented" name
    | exception Mac_broadcast.Ring_broadcast.Unimplemented msg ->
      Alcotest.(check bool)
        (name ^ ": message points at ROADMAP") true
        (let needle = "ROADMAP" in
         let rec has i =
           i + String.length needle <= String.length msg
           && (String.sub msg i (String.length needle) = needle || has (i + 1))
         in
         has 0)
  in
  expect "full_sensing" Mac_broadcast.Ring_broadcast.full_sensing;
  expect "ack_based" Mac_broadcast.Ring_broadcast.ack_based

let () =
  Alcotest.run "broadcast"
    [ ("token-ring",
       [ Alcotest.test_case "advance on silence" `Quick test_ring_advances_on_silence;
         Alcotest.test_case "phase wrap" `Quick test_ring_phase_wraps;
         Alcotest.test_case "empty rejected" `Quick test_ring_empty_rejected ]);
      ("mbtf-list",
       [ Alcotest.test_case "move to front" `Quick test_mbtf_list_move_to_front;
         Alcotest.test_case "front big noop" `Quick test_mbtf_list_front_big_is_noop_move ]);
      ("mbtf",
       [ Alcotest.test_case "stable at rate 1" `Slow test_mbtf_stable_at_rate_one;
         Alcotest.test_case "few silent rounds" `Slow test_mbtf_few_silent_rounds_under_load ]);
      ("rrw",
       [ Alcotest.test_case "delivers everything" `Slow test_rrw_delivers_everything;
         Alcotest.test_case "high rate" `Slow test_of_rrw_beats_rate_one_unlike_rrw_withholding_cost ]);
      ("of-rrw",
       [ Alcotest.test_case "delivers everything" `Slow test_of_rrw_delivers_everything ]);
      ("model",
       [ Alcotest.test_case "always-on energy" `Quick test_broadcast_always_on_energy;
         Alcotest.test_case "direct single hop" `Quick test_broadcast_direct_single_hop ]);
      ("unimplemented",
       [ Alcotest.test_case "variants raise with pointer" `Quick
           test_unimplemented_variants_raise ]) ]
