(* Unit and property tests for the mac_channel substrate: deterministic RNG,
   packets, messages and control-bit accounting, packet queues, energy
   accounting, and the trace ring buffer. *)

open Mac_channel

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ---- Rng ---- *)

let test_rng_deterministic () =
  let a = Rng.create ~seed:7 and b = Rng.create ~seed:7 in
  for _ = 1 to 100 do
    check_int "same stream" (Rng.int a 1000) (Rng.int b 1000)
  done

let test_rng_seed_sensitivity () =
  let a = Rng.create ~seed:1 and b = Rng.create ~seed:2 in
  let same = ref 0 in
  for _ = 1 to 64 do
    if Rng.int a 1_000_000 = Rng.int b 1_000_000 then incr same
  done;
  check_bool "streams differ" true (!same < 8)

let test_rng_bounds () =
  let rng = Rng.create ~seed:3 in
  for _ = 1 to 10_000 do
    let v = Rng.int rng 17 in
    check_bool "in range" true (v >= 0 && v < 17)
  done

let test_rng_split_independent () =
  let parent = Rng.create ~seed:5 in
  let child = Rng.split parent in
  let vs = List.init 10 (fun _ -> Rng.int child 100) in
  let vs' = List.init 10 (fun _ -> Rng.int parent 100) in
  check_bool "split streams differ from parent" true (vs <> vs')

let test_rng_float_range () =
  let rng = Rng.create ~seed:11 in
  for _ = 1 to 1000 do
    let f = Rng.float rng 1.0 in
    check_bool "in [0,1)" true (f >= 0.0 && f < 1.0)
  done

let test_rng_shuffle_permutes () =
  let rng = Rng.create ~seed:13 in
  let arr = Array.init 20 (fun i -> i) in
  Rng.shuffle rng arr;
  let sorted = Array.copy arr in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "is a permutation" (Array.init 20 Fun.id) sorted

let rng_uniformity =
  QCheck.Test.make ~name:"rng_int_covers_all_residues" ~count:20
    QCheck.(int_range 2 12)
    (fun bound ->
      let rng = Rng.create ~seed:bound in
      let seen = Array.make bound false in
      for _ = 1 to 200 * bound do
        seen.(Rng.int rng bound) <- true
      done;
      Array.for_all Fun.id seen)

(* ---- Packet / Message ---- *)

let packet ~id ~dst = Packet.make ~id ~src:0 ~dst ~injected_at:0

let test_packet_order () =
  let a = packet ~id:1 ~dst:2 and b = packet ~id:2 ~dst:2 in
  check_bool "compare by id" true (Packet.compare a b < 0);
  check_bool "equal on same id" true
    (Packet.equal a (Packet.make ~id:1 ~src:9 ~dst:3 ~injected_at:5))

let test_message_classes () =
  let p = packet ~id:1 ~dst:2 in
  check_bool "plain" true (Message.is_plain (Message.packet_only p));
  check_bool "plain not light" false (Message.is_light (Message.packet_only p));
  check_bool "light" true (Message.is_light (Message.light [ Message.Flag true ]));
  check_bool "controlled packet not plain" false
    (Message.is_plain (Message.make ~packet:p [ Message.Flag true ]))

let test_control_bits () =
  check_int "flag is 1 bit" 1 (Message.control_bits (Message.light [ Message.Flag true ]));
  check_int "count 0 is 1 bit" 1 (Message.control_bits (Message.light [ Message.Count 0 ]));
  check_int "count 5 is 3 bits" 3 (Message.control_bits (Message.light [ Message.Count 5 ]));
  check_int "count 255 is 8 bits" 8
    (Message.control_bits (Message.light [ Message.Count 255 ]));
  check_int "empty schedule has a length header" 1
    (Message.control_bits (Message.light [ Message.Schedule [] ]));
  check_bool "schedule grows with entries" true
    (Message.control_bits (Message.light [ Message.Schedule [ 3; 5; 9 ] ])
     > Message.control_bits (Message.light [ Message.Schedule [ 3 ] ]))

(* ---- Pqueue ---- *)

let test_pqueue_fifo_order () =
  let q = Pqueue.create ~n:4 in
  List.iter (fun id -> Pqueue.add q (packet ~id ~dst:1)) [ 5; 3; 9 ];
  Alcotest.(check (list int))
    "arrival order, not id order" [ 5; 3; 9 ]
    (List.map (fun (p : Packet.t) -> p.id) (Pqueue.to_list q))

let test_pqueue_remove () =
  let q = Pqueue.create ~n:4 in
  let p1 = packet ~id:1 ~dst:2 and p2 = packet ~id:2 ~dst:3 in
  Pqueue.add q p1;
  Pqueue.add q p2;
  check_bool "removes present" true (Pqueue.remove q p1);
  check_bool "absent returns false" false (Pqueue.remove q p1);
  check_int "size tracks" 1 (Pqueue.size q);
  check_int "dest count tracks" 0 (Pqueue.count_to q 2);
  check_int "other dest untouched" 1 (Pqueue.count_to q 3)

let test_pqueue_duplicate_rejected () =
  let q = Pqueue.create ~n:4 in
  Pqueue.add q (packet ~id:1 ~dst:2);
  Alcotest.check_raises "duplicate id" (Invalid_argument "Pqueue.add: duplicate packet id")
    (fun () -> Pqueue.add q (packet ~id:1 ~dst:3))

let test_pqueue_oldest_queries () =
  let q = Pqueue.create ~n:4 in
  List.iter (fun (id, dst) -> Pqueue.add q (packet ~id ~dst))
    [ (1, 2); (2, 3); (3, 2); (4, 1) ];
  let id_of = function Some (p : Packet.t) -> p.id | None -> -1 in
  check_int "oldest" 1 (id_of (Pqueue.oldest q));
  check_int "oldest_to 3" 2 (id_of (Pqueue.oldest_to q 3));
  check_int "oldest_to 1" 4 (id_of (Pqueue.oldest_to q 1));
  check_int "oldest_to empty dest" (-1) (id_of (Pqueue.oldest_to q 0));
  check_int "oldest_such" 3
    (id_of (Pqueue.oldest_such q (fun p -> p.id > 2 && p.dst = 2)));
  check_int "oldest_to_such" 3
    (id_of (Pqueue.oldest_to_such q 2 (fun p -> p.id > 1)))

let test_pqueue_count_below () =
  let q = Pqueue.create ~n:5 in
  List.iter (fun (id, dst) -> Pqueue.add q (packet ~id ~dst))
    [ (1, 0); (2, 2); (3, 2); (4, 4) ];
  check_int "below 0" 0 (Pqueue.count_to_below q 0);
  check_int "below 3" 3 (Pqueue.count_to_below q 3);
  check_int "below 5" 4 (Pqueue.count_to_below q 5)

let test_pqueue_readdition_moves_to_tail () =
  let q = Pqueue.create ~n:4 in
  let p1 = packet ~id:1 ~dst:2 in
  Pqueue.add q p1;
  Pqueue.add q (packet ~id:2 ~dst:2);
  ignore (Pqueue.remove q p1);
  Pqueue.add q p1;
  Alcotest.(check (list int)) "adoption order" [ 2; 1 ]
    (List.map (fun (p : Packet.t) -> p.id) (Pqueue.to_list q))

let test_pqueue_drain () =
  let q = Pqueue.create ~n:4 in
  List.iter (fun (id, dst) -> Pqueue.add q (packet ~id ~dst))
    [ (1, 2); (2, 3); (3, 2); (4, 1) ];
  let drained = Pqueue.drain q in
  Alcotest.(check (list int))
    "arrival order" [ 1; 2; 3; 4 ]
    (List.map (fun (p : Packet.t) -> p.id) drained);
  check_int "empty after drain" 0 (Pqueue.size q);
  Alcotest.(check (list int)) "to_list empty" []
    (List.map (fun (p : Packet.t) -> p.id) (Pqueue.to_list q));
  List.iter (fun d -> check_int "dest count zero" 0 (Pqueue.count_to q d))
    [ 0; 1; 2; 3 ];
  check_bool "oldest is gone" true (Pqueue.oldest q = None);
  (* the queue is reusable: re-adding a drained packet is not a duplicate *)
  Pqueue.add q (packet ~id:1 ~dst:2);
  Pqueue.add q (packet ~id:9 ~dst:0);
  Alcotest.(check (list int)) "reusable" [ 1; 9 ]
    (List.map (fun (p : Packet.t) -> p.id) (Pqueue.to_list q))

(* Property: [drain] is exactly [to_list] followed by removing each listed
   packet — same returned packets, same final state, even when the queue is
   refilled and drained again afterwards. *)
let pqueue_drain_equiv =
  QCheck.Test.make ~name:"pqueue_drain_equals_to_list_then_removals" ~count:200
    QCheck.(pair (list (int_range 0 5)) (list (int_range 0 5)))
    (fun (dsts1, dsts2) ->
      let q_drain = Pqueue.create ~n:6 and q_model = Pqueue.create ~n:6 in
      let next = ref 0 in
      let fill dsts =
        List.iter
          (fun dst ->
            let id = !next in
            incr next;
            Pqueue.add q_drain (packet ~id ~dst);
            Pqueue.add q_model (packet ~id ~dst))
          dsts
      in
      let ids (l : Packet.t list) = List.map (fun (p : Packet.t) -> p.id) l in
      let drain_via_model q =
        let listed = Pqueue.to_list q in
        List.iter (fun p -> ignore (Pqueue.remove q p)) listed;
        listed
      in
      let same_state () =
        ids (Pqueue.to_list q_drain) = ids (Pqueue.to_list q_model)
        && Pqueue.size q_drain = Pqueue.size q_model
        && List.for_all
             (fun d -> Pqueue.count_to q_drain d = Pqueue.count_to q_model d)
             [ 0; 1; 2; 3; 4; 5 ]
      in
      fill dsts1;
      let first_ok =
        ids (Pqueue.drain q_drain) = ids (drain_via_model q_model)
        && same_state ()
      in
      (* refill and drain again: drained queues must stay interchangeable *)
      fill dsts2;
      first_ok
      && same_state ()
      && ids (Pqueue.drain q_drain) = ids (drain_via_model q_model)
      && same_state ())

(* Model-based property: a queue behaves like a list of (id, dst) pairs in
   insertion order under a random sequence of adds and removes. *)
let pqueue_model =
  QCheck.Test.make ~name:"pqueue_matches_list_model" ~count:200
    QCheck.(list (pair (int_range 0 50) (int_range 0 5)))
    (fun ops ->
      let q = Pqueue.create ~n:6 in
      let model = ref [] in
      let next = ref 0 in
      List.iter
        (fun (choice, dst) ->
          if choice < 40 || !model = [] then begin
            let p = Packet.make ~id:!next ~src:0 ~dst ~injected_at:0 in
            incr next;
            Pqueue.add q p;
            model := !model @ [ p ]
          end
          else begin
            (* remove the (choice mod length)-th model element *)
            let idx = choice mod List.length !model in
            let victim = List.nth !model idx in
            ignore (Pqueue.remove q victim);
            model := List.filter (fun p -> not (Packet.equal p victim)) !model
          end)
        ops;
      let ids (l : Packet.t list) = List.map (fun (p : Packet.t) -> p.id) l in
      ids (Pqueue.to_list q) = ids !model
      && Pqueue.size q = List.length !model
      && List.for_all
           (fun d ->
             Pqueue.count_to q d
             = List.length (List.filter (fun (p : Packet.t) -> p.dst = d) !model))
           [ 0; 1; 2; 3; 4; 5 ])

(* [dests] feeds the sparse engine's next_active queries: it must list
   exactly the destinations with at least one queued packet, ascending,
   through any add/remove interleaving. *)
let pqueue_dests =
  QCheck.Test.make ~name:"pqueue_dests_matches_list_model" ~count:200
    QCheck.(list (pair (int_range 0 50) (int_range 0 5)))
    (fun ops ->
      let q = Pqueue.create ~n:6 in
      let model = ref [] in
      let next = ref 0 in
      List.iter
        (fun (choice, dst) ->
          if choice < 40 || !model = [] then begin
            let p = Packet.make ~id:!next ~src:0 ~dst ~injected_at:0 in
            incr next;
            Pqueue.add q p;
            model := !model @ [ p ]
          end
          else begin
            let idx = choice mod List.length !model in
            let victim = List.nth !model idx in
            ignore (Pqueue.remove q victim);
            model := List.filter (fun p -> not (Packet.equal p victim)) !model
          end)
        ops;
      let expected =
        List.sort_uniq compare
          (List.map (fun (p : Packet.t) -> p.dst) !model)
      in
      Pqueue.dests q = expected)

(* ---- Energy ---- *)

let test_energy_accounting () =
  let e = Energy.create ~cap:3 in
  List.iter (fun c -> Energy.record_round e ~on_count:c) [ 0; 3; 2; 4; 1 ];
  check_int "rounds" 5 (Energy.rounds e);
  check_int "max" 4 (Energy.max_on e);
  check_int "total" 10 (Energy.total_station_rounds e);
  check_int "violations" 1 (Energy.violations e);
  Alcotest.(check (float 0.001)) "mean" 2.0 (Energy.mean_on e)

(* ---- Trace ---- *)

let test_trace_disabled_is_noop () =
  let t = Trace.create ~enabled:false () in
  Trace.event t ~round:1 "x";
  Trace.eventf t ~round:2 "%d" 42;
  Alcotest.(check (list (pair int string))) "empty" [] (Trace.dump t)

let test_trace_ring () =
  let t = Trace.create ~capacity:3 ~enabled:true () in
  List.iter (fun i -> Trace.event t ~round:i (string_of_int i)) [ 1; 2; 3; 4; 5 ];
  Alcotest.(check (list (pair int string)))
    "keeps last 3, oldest first"
    [ (3, "3"); (4, "4"); (5, "5") ]
    (Trace.dump t);
  Trace.clear t;
  Alcotest.(check (list (pair int string))) "cleared" [] (Trace.dump t)

let test_trace_eventf () =
  let t = Trace.create ~enabled:true () in
  Trace.eventf t ~round:9 "v=%d %s" 7 "ok";
  Alcotest.(check (list (pair int string))) "formats" [ (9, "v=7 ok") ] (Trace.dump t)

let test_trace_wraparound_ordering () =
  let t = Trace.create ~capacity:4 ~enabled:true () in
  (* exactly at capacity: nothing dropped *)
  List.iter (fun i -> Trace.event t ~round:i (string_of_int i)) [ 0; 1; 2; 3 ];
  Alcotest.(check (list (pair int string)))
    "full ring, oldest first"
    [ (0, "0"); (1, "1"); (2, "2"); (3, "3") ]
    (Trace.dump t);
  (* several wraps: only the tail survives, still oldest first *)
  List.iter (fun i -> Trace.event t ~round:i (string_of_int i))
    [ 4; 5; 6; 7; 8; 9; 10 ];
  Alcotest.(check (list (pair int string)))
    "after wraparound"
    [ (7, "7"); (8, "8"); (9, "9"); (10, "10") ]
    (Trace.dump t)

let test_trace_clear_then_reuse () =
  let t = Trace.create ~capacity:3 ~enabled:true () in
  List.iter (fun i -> Trace.event t ~round:i "x") [ 0; 1; 2; 3; 4 ];
  Trace.clear t;
  Alcotest.(check (list (pair int string))) "cleared" [] (Trace.dump t);
  (* refill below capacity: no stale slots resurface *)
  Trace.event t ~round:7 "a";
  Trace.event t ~round:8 "b";
  Alcotest.(check (list (pair int string)))
    "fresh entries only" [ (7, "a"); (8, "b") ] (Trace.dump t);
  (* and past capacity again: wraparound restarts cleanly *)
  List.iter (fun i -> Trace.event t ~round:i (string_of_int i)) [ 9; 10; 11 ];
  Alcotest.(check (list (pair int string)))
    "wraps again"
    [ (9, "9"); (10, "10"); (11, "11") ]
    (Trace.dump t)

let test_trace_disabled_eventf_leaves_str_formatter_alone () =
  (* the disabled path must not touch the shared Format.str_formatter *)
  ignore (Format.flush_str_formatter ());
  Format.fprintf Format.str_formatter "partial %d" 1;
  let t = Trace.create ~enabled:false () in
  Trace.eventf t ~round:0 "noise %d %s %f" 42 "str" 3.14;
  Alcotest.(check string)
    "str_formatter unpolluted" "partial 1"
    (Format.flush_str_formatter ())

(* ---- Algorithm describe ---- *)

let test_describe () =
  Alcotest.(check string) "table-1 notation" "orchestra [NObl-Gen-Dir]"
    (Algorithm.describe (module Mac_routing.Orchestra));
  Alcotest.(check string) "plain packet indirect" "adjust-window [NObl-PP-Ind]"
    (Algorithm.describe (module Mac_routing.Adjust_window))

let () =
  Alcotest.run "channel"
    [ ("rng",
       [ Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
         Alcotest.test_case "seed sensitivity" `Quick test_rng_seed_sensitivity;
         Alcotest.test_case "bounds" `Quick test_rng_bounds;
         Alcotest.test_case "split" `Quick test_rng_split_independent;
         Alcotest.test_case "float range" `Quick test_rng_float_range;
         Alcotest.test_case "shuffle" `Quick test_rng_shuffle_permutes;
         QCheck_alcotest.to_alcotest rng_uniformity ]);
      ("packet-message",
       [ Alcotest.test_case "packet order" `Quick test_packet_order;
         Alcotest.test_case "message classes" `Quick test_message_classes;
         Alcotest.test_case "control bits" `Quick test_control_bits ]);
      ("pqueue",
       [ Alcotest.test_case "fifo order" `Quick test_pqueue_fifo_order;
         Alcotest.test_case "remove" `Quick test_pqueue_remove;
         Alcotest.test_case "duplicate rejected" `Quick test_pqueue_duplicate_rejected;
         Alcotest.test_case "oldest queries" `Quick test_pqueue_oldest_queries;
         Alcotest.test_case "count below" `Quick test_pqueue_count_below;
         Alcotest.test_case "re-addition" `Quick test_pqueue_readdition_moves_to_tail;
         Alcotest.test_case "drain" `Quick test_pqueue_drain;
         QCheck_alcotest.to_alcotest pqueue_drain_equiv;
         QCheck_alcotest.to_alcotest pqueue_model;
         QCheck_alcotest.to_alcotest pqueue_dests ]);
      ("energy", [ Alcotest.test_case "accounting" `Quick test_energy_accounting ]);
      ("trace",
       [ Alcotest.test_case "disabled" `Quick test_trace_disabled_is_noop;
         Alcotest.test_case "ring" `Quick test_trace_ring;
         Alcotest.test_case "eventf" `Quick test_trace_eventf;
         Alcotest.test_case "wraparound ordering" `Quick test_trace_wraparound_ordering;
         Alcotest.test_case "clear then reuse" `Quick test_trace_clear_then_reuse;
         Alcotest.test_case "disabled eventf isolation" `Quick
           test_trace_disabled_eventf_leaves_str_formatter_alone ]);
      ("algorithm", [ Alcotest.test_case "describe" `Quick test_describe ]) ]
