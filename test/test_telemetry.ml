(* Tests for the telemetry subsystem: registry semantics, exact merges
   (including the histogram merge law), the Prometheus-style exposition
   and its parser, the golden exposition format, fleet aggregation, and
   the engine's sampling cadence. *)

module T = Mac_sim.Telemetry
module H = Mac_sim.Histogram

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

(* ---- registry semantics ---- *)

let test_registration_idempotent () =
  let r = T.create () in
  let c1 = T.counter r ~help:"a counter" "c_total" in
  T.add c1 3;
  let c2 = T.counter r "c_total" in
  T.inc c2;
  check_int "same counter behind the name" 4 (T.counter_value c1);
  let g1 = T.gauge r "g" in
  T.set_gauge g1 2.5;
  let g2 = T.gauge r "g" in
  check_bool "same gauge behind the name" true (T.gauge_value g2 = 2.5);
  (* distinct labels are distinct metrics *)
  let cl = T.counter r ~labels:[ ("phase", "x") ] "c_total" in
  T.inc cl;
  check_int "labelled counter is separate" 4 (T.counter_value c1);
  check_int "labelled counter counts alone" 1 (T.counter_value cl)

let test_kind_clash_rejected () =
  let r = T.create () in
  ignore (T.counter r "m");
  (match T.gauge r "m" with
   | _ -> Alcotest.fail "expected Invalid_argument on kind clash"
   | exception Invalid_argument _ -> ());
  match T.histogram r "m" with
  | _ -> Alcotest.fail "expected Invalid_argument on kind clash"
  | exception Invalid_argument _ -> ()

let test_sample_and_find () =
  let r = T.create () in
  let c = T.counter r "c_total" in
  T.add c 7;
  let g = T.gauge r ~labels:[ ("phase", "inject") ] "g" in
  T.set_gauge g 1.5;
  ignore (T.histogram r "h");
  let s = T.sample r in
  check_int "histograms not sampled" 2 (List.length s);
  check_bool "counter by name" true (T.find_sample s "c_total" = Some 7.0);
  check_bool "labelled gauge by rendered name" true
    (T.find_sample s "g{phase=\"inject\"}" = Some 1.5);
  check_bool "missing name" true (T.find_sample s "nope" = None)

(* ---- histogram merge (satellite law) ---- *)

let record_all xs =
  let h = H.create () in
  List.iter (H.record h) xs;
  h

let hist_repr h = (H.buckets h, H.count h, H.max_value h)

let qcheck_histogram_merge_law =
  QCheck.Test.make ~name:"merge (record xs) (record ys) = record (xs @ ys)"
    ~count:300
    QCheck.(
      pair
        (list_of_size Gen.(int_range 0 100) (int_range 0 100_000))
        (list_of_size Gen.(int_range 0 100) (int_range 0 100_000)))
    (fun (xs, ys) ->
      hist_repr (H.merge (record_all xs) (record_all ys))
      = hist_repr (record_all (xs @ ys)))

let test_merge_leaves_inputs_alone () =
  let a = record_all [ 1; 2; 3 ] and b = record_all [ 10; 20 ] in
  let m = H.merge a b in
  check_int "merged count" 5 (H.count m);
  check_int "left input untouched" 3 (H.count a);
  check_int "right input untouched" 2 (H.count b);
  check_int "max merged" 20 (H.max_value m)

(* ---- registry merge ---- *)

let test_merge_into_policies () =
  let a = T.create () in
  let b = T.create () in
  T.add (T.counter a "c_total") 3;
  T.add (T.counter b "c_total") 4;
  T.set_gauge (T.gauge a "sum_g") 1.0;
  T.set_gauge (T.gauge b "sum_g") 2.0;
  T.set_gauge (T.gauge a ~merge:T.Max "max_g") 9.0;
  T.set_gauge (T.gauge b ~merge:T.Max "max_g") 5.0;
  List.iter (H.record (T.histogram a "h")) [ 1; 2 ];
  List.iter (H.record (T.histogram b "h")) [ 3 ];
  (* a metric only the source has is created in the target *)
  T.add (T.counter b "only_b_total") 11;
  T.merge_into ~into:a b;
  check_int "counters add" 7 (T.counter_value (T.counter a "c_total"));
  check_bool "sum gauges add" true (T.gauge_value (T.gauge a "sum_g") = 3.0);
  check_bool "max gauges take the max" true
    (T.gauge_value (T.gauge a ~merge:T.Max "max_g") = 9.0);
  check_int "histograms merge bucket-wise" 3 (H.count (T.histogram a "h"));
  check_int "missing metrics created" 11
    (T.counter_value (T.counter a "only_b_total"));
  (* and the source is untouched *)
  check_int "source counter untouched" 4
    (T.counter_value (T.counter b "c_total"))

(* ---- exposition: render, parse, golden ---- *)

(* A registry with fixed contents, shared by the round-trip and golden
   tests. Base labels exercise label merging with per-metric labels. *)
let reference_registry () =
  let r = T.create ~labels:[ ("scenario", "t1/cell \"a\"") ] () in
  T.add (T.counter r ~help:"Packets delivered." "eear_delivered_total") 42;
  let g = T.gauge r ~help:"Current backlog." "eear_backlog_packets" in
  T.set_gauge g 17.0;
  let f = T.gauge r "fractional" in
  T.set_gauge f 0.125;
  let nf = T.gauge r "nonfinite" in
  T.set_gauge nf infinity;
  let h = T.histogram r ~help:"Delays." "eear_delay_rounds" in
  List.iter (H.record h) [ 1; 1; 2; 100; 1000 ];
  T.add
    (T.counter r ~labels:[ ("phase", "inject") ] "eear_phase_ns_total")
    100;
  T.add
    (T.counter r ~labels:[ ("phase", "resolve") ] "eear_phase_ns_total")
    200;
  r

let test_render_parse_roundtrip () =
  let r = reference_registry () in
  match T.parse_exposition (T.render r) with
  | Error msg -> Alcotest.fail msg
  | Ok triples ->
    let get name extra =
      List.find_map
        (fun (n, labels, v) ->
          if
            n = name
            && List.for_all
                 (fun (k, want) -> List.assoc_opt k labels = Some want)
                 extra
          then Some v
          else None)
        triples
    in
    check_bool "counter" true (get "eear_delivered_total" [] = Some 42.0);
    check_bool "gauge" true (get "eear_backlog_packets" [] = Some 17.0);
    check_bool "fractional" true (get "fractional" [] = Some 0.125);
    check_bool "+Inf" true (get "nonfinite" [] = Some infinity);
    check_bool "labelled counter" true
      (get "eear_phase_ns_total" [ ("phase", "resolve") ] = Some 200.0);
    check_bool "base label on every line" true
      (List.for_all
         (fun (_, labels, _) ->
           List.assoc_opt "scenario" labels = Some "t1/cell \"a\"")
         triples);
    check_bool "histogram count line" true
      (get "eear_delay_rounds_count" [] = Some 5.0);
    (match get "eear_delay_rounds" [ ("quantile", "0.5") ] with
     | Some v -> check_bool "p50 sane" true (v >= 1.0 && v <= 2.0)
     | None -> Alcotest.fail "no p50 line");
    match get "eear_delay_rounds" [ ("quantile", "0.99") ] with
    | Some v -> check_bool "p99 sane" true (v >= 100.0 && v <= 1000.0)
    | None -> Alcotest.fail "no p99 line"

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* The exposition format is an interface (scraped by CI and parsed by
   [routing_sim top]); pin it byte-for-byte. Regenerate with
   [dune exec test/gen_telemetry_golden.exe] after a deliberate change. *)
let test_golden_exposition () =
  check_string "golden exposition"
    (read_file "golden/telemetry.prom")
    (T.render (reference_registry ()))

let test_parse_rejects_malformed () =
  List.iter
    (fun body ->
      match T.parse_exposition body with
      | Ok _ -> Alcotest.failf "accepted malformed exposition %S" body
      | Error msg ->
        check_bool "error names a line" true
          (String.length msg > 0 && String.sub msg 0 5 = "line "))
    [ "no value"; "m{unclosed 1"; "m not-a-number"; "m 1 trailing" ]

let test_write_atomic () =
  let dir = Filename.temp_file "eear_tel" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o755;
  let path = Filename.concat dir "x.prom" in
  T.write_atomic ~path "a 1\n";
  T.write_atomic ~path "a 2\n";
  check_string "last write wins" "a 2\n" (read_file path);
  check_bool "no temp litter" true
    (Sys.readdir dir |> Array.to_list |> List.for_all (fun f -> f = "x.prom"))

(* ---- fleet aggregation ---- *)

let test_fleet_aggregate () =
  let dir = Filename.temp_file "eear_fleet" "" in
  Sys.remove dir;
  let fleet = T.Fleet.create ~dir ~every:10 () in
  let finish_scenario ~id ~delivered =
    let p = T.Fleet.probe fleet ~id in
    let c = T.counter p.T.registry "eear_delivered_total" in
    T.add c delivered;
    let g = T.gauge p.T.registry ~merge:T.Max "eear_backlog_peak_packets" in
    T.set_gauge g (float_of_int delivered);
    p.T.on_sample ~round:10 p.T.registry;
    T.Fleet.finish fleet p
  in
  finish_scenario ~id:"row/a" ~delivered:5;
  finish_scenario ~id:"row/b" ~delivered:7;
  T.Fleet.note_cached fleet ~id:"row/c";
  T.Fleet.add_counter fleet T.Names.bisect_probes;
  let agg = T.Fleet.aggregate fleet in
  check_int "delivered sums" 12
    (T.counter_value (T.counter agg "eear_delivered_total"));
  check_bool "max gauge takes the max" true
    (T.gauge_value (T.gauge agg ~merge:T.Max "eear_backlog_peak_packets")
     = 7.0);
  check_int "started" 2
    (T.counter_value (T.counter agg T.Names.scenarios_started));
  check_int "completed" 2
    (T.counter_value (T.counter agg T.Names.scenarios_completed));
  check_int "cached" 1
    (T.counter_value (T.counter agg T.Names.scenarios_cached));
  check_int "ad-hoc counter" 1
    (T.counter_value (T.counter agg T.Names.bisect_probes));
  (* the exposition files exist and parse *)
  let expect_file name =
    let path = Filename.concat dir name in
    check_bool (name ^ " exists") true (Sys.file_exists path);
    match T.parse_exposition (read_file path) with
    | Ok _ -> ()
    | Error msg -> Alcotest.failf "%s: %s" name msg
  in
  expect_file "fleet.prom";
  expect_file (T.Fleet.sanitize "row/a" ^ ".prom");
  expect_file (T.Fleet.sanitize "row/b" ^ ".prom")

(* Concurrent probes from pool workers keep exact totals. *)
let test_fleet_parallel () =
  let fleet = T.Fleet.create ~every:5 () in
  let ids = List.init 8 (fun i -> Printf.sprintf "par/%d" i) in
  ignore
    (Mac_sim.Pool.map ~jobs:4 ids (fun id ->
         let p = T.Fleet.probe fleet ~id in
         T.add (T.counter p.T.registry "eear_delivered_total") 3;
         T.Fleet.finish fleet p));
  let agg = T.Fleet.aggregate fleet in
  check_int "all scenarios merged" 24
    (T.counter_value (T.counter agg "eear_delivered_total"));
  check_int "all completed" 8
    (T.counter_value (T.counter agg T.Names.scenarios_completed))

(* ---- the engine's sampling cadence ---- *)

let run_with_probe ~rounds ~drain ~every =
  let samples = ref [] in
  let registry = T.create () in
  let probe =
    T.probe ~every
      ~on_sample:(fun ~round reg ->
        samples := (round, T.sample reg) :: !samples)
      registry
  in
  let adversary =
    Mac_adversary.Adversary.create ~rate:0.7 ~burst:2.0
      (Mac_adversary.Pattern.uniform ~n:6 ~seed:91)
  in
  let config =
    { (Mac_sim.Engine.default_config ~rounds) with
      drain_limit = drain; telemetry = Some probe }
  in
  let summary =
    Mac_sim.Engine.run ~config ~algorithm:(module Mac_routing.Count_hop) ~n:6
      ~k:2 ~adversary ~rounds ()
  in
  (summary, registry, List.rev !samples)

let test_engine_cadence () =
  let summary, registry, samples =
    run_with_probe ~rounds:2_000 ~drain:0 ~every:500
  in
  Alcotest.(check (list int))
    "sampled every 500 rounds" [ 500; 1000; 1500; 2000 ]
    (List.map fst samples);
  let s = T.sample registry in
  let get name =
    match T.find_sample s name with
    | Some v -> v
    | None -> Alcotest.failf "metric %s missing" name
  in
  check_bool "samples counted" true
    (get T.Names.samples_total = float_of_int (List.length samples));
  check_bool "round gauge at the end" true
    (get T.Names.round = float_of_int (summary.rounds + summary.drain_rounds));
  check_bool "target" true (get T.Names.rounds_target = 2_000.0);
  check_bool "delivered mirrors the summary" true
    (get T.Names.delivered_total = float_of_int summary.delivered);
  check_bool "injected mirrors the summary" true
    (get T.Names.injected_total = float_of_int summary.injected);
  check_bool "energy mirrors the summary" true
    (get T.Names.energy_total = float_of_int summary.station_rounds);
  (* the shared delay histogram is registered and live *)
  let h = T.histogram registry T.Names.delay in
  check_int "delay histogram shared with metrics" summary.delivered
    (H.count h);
  (* per-phase timing histograms recorded once per sampled round *)
  List.iter
    (fun phase ->
      let ph =
        T.histogram registry ~labels:[ ("phase", phase) ] T.Names.phase_ns
      in
      check_int
        (Printf.sprintf "one %s timing per sample" phase)
        (List.length samples) (H.count ph))
    [ "inject"; "faults"; "resolve"; "deliver"; "observe" ]

let test_engine_final_partial_sample () =
  (* 2000 rounds at cadence 1500: boundary sample at 1500, plus the final
     flush at 2000 even though it is off-cadence. *)
  let _, _, samples = run_with_probe ~rounds:2_000 ~drain:0 ~every:1_500 in
  Alcotest.(check (list int)) "boundary plus final" [ 1500; 2000 ]
    (List.map fst samples)

let test_event_stream_carries_samples () =
  let events = ref [] in
  let sink = Mac_sim.Sink.make (fun ~round ev -> events := (round, ev) :: !events) in
  let registry = T.create () in
  let adversary =
    Mac_adversary.Adversary.create ~rate:0.5 ~burst:2.0
      (Mac_adversary.Pattern.uniform ~n:6 ~seed:97)
  in
  let config =
    { (Mac_sim.Engine.default_config ~rounds:1_000) with
      sink = Some sink; telemetry = Some (T.probe ~every:250 registry) }
  in
  ignore
    (Mac_sim.Engine.run ~config ~algorithm:(module Mac_routing.Count_hop) ~n:6
       ~k:2 ~adversary ~rounds:1_000 ());
  let telemetry_rounds =
    List.filter_map
      (fun (round, ev) ->
        match (ev : Mac_channel.Event.t) with
        | Telemetry { sample } ->
          check_bool "sample non-empty" true (sample <> []);
          Some round
        | _ -> None)
      (List.rev !events)
  in
  Alcotest.(check (list int))
    "telemetry events at each cadence boundary" [ 250; 500; 750; 1000 ]
    telemetry_rounds

let () =
  Alcotest.run "telemetry"
    [ ("registry",
       [ Alcotest.test_case "registration idempotent" `Quick
           test_registration_idempotent;
         Alcotest.test_case "kind clash rejected" `Quick
           test_kind_clash_rejected;
         Alcotest.test_case "sample and find" `Quick test_sample_and_find ]);
      ("histogram-merge",
       [ QCheck_alcotest.to_alcotest qcheck_histogram_merge_law;
         Alcotest.test_case "merge leaves inputs alone" `Quick
           test_merge_leaves_inputs_alone ]);
      ("registry-merge",
       [ Alcotest.test_case "policies" `Quick test_merge_into_policies ]);
      ("exposition",
       [ Alcotest.test_case "render/parse round-trip" `Quick
           test_render_parse_roundtrip;
         Alcotest.test_case "golden format" `Quick test_golden_exposition;
         Alcotest.test_case "parser rejects malformed" `Quick
           test_parse_rejects_malformed;
         Alcotest.test_case "atomic writes" `Quick test_write_atomic ]);
      ("fleet",
       [ Alcotest.test_case "aggregate" `Quick test_fleet_aggregate;
         Alcotest.test_case "parallel probes" `Quick test_fleet_parallel ]);
      ("engine",
       [ Alcotest.test_case "cadence" `Quick test_engine_cadence;
         Alcotest.test_case "final partial sample" `Quick
           test_engine_final_partial_sample;
         Alcotest.test_case "event stream carries samples" `Quick
           test_event_stream_carries_samples ]) ]
