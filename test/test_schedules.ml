(* Generic properties of the oblivious algorithms' static schedules, checked
   over random system sizes: the per-round energy never exceeds the declared
   cap, the schedule is periodic with its structural period, and no station
   is starved of duty. These are the promises the engine's per-run schedule
   cross-check relies on. *)

let sample_horizon = 2_000

type subject = {
  sname : string;
  build : n:int -> k:int -> Mac_channel.Algorithm.t;
  min_n : int;
  period : n:int -> k:int -> int option; (* structural period if known *)
}

let subjects =
  [ { sname = "pair-tdma";
      build = (fun ~n:_ ~k:_ -> (module Mac_routing.Pair_tdma));
      min_n = 3;
      period = (fun ~n ~k:_ -> Some (n * (n - 1))) };
    { sname = "k-cycle";
      build = (fun ~n ~k -> Mac_routing.K_cycle.algorithm ~n ~k);
      min_n = 4;
      period =
        (fun ~n ~k ->
          let cg = Mac_routing.Cycle_groups.make ~n ~k () in
          Some (Mac_routing.Cycle_groups.group_count cg * cg.Mac_routing.Cycle_groups.delta)) };
    { sname = "k-clique";
      build = (fun ~n ~k -> Mac_routing.K_clique.algorithm ~n ~k);
      min_n = 4;
      period =
        (fun ~n ~k ->
          Some (Mac_routing.Clique_pairs.pair_count (Mac_routing.Clique_pairs.make ~n ~k))) };
    { sname = "k-subsets";
      build = (fun ~n ~k -> Mac_routing.K_subsets.algorithm ~n ~k ());
      min_n = 4;
      period = (fun ~n ~k -> Some (Mac_routing.Combi.binomial n k)) };
    { sname = "random-leader";
      build = (fun ~n ~k -> Mac_routing.Random_leader.algorithm ~n ~k ());
      min_n = 3;
      period = (fun ~n:_ ~k:_ -> None) } ]

let schedule_and_cap subject ~n ~k =
  let algorithm = subject.build ~n ~k in
  let module A = (val algorithm) in
  let schedule = Option.get A.static_schedule in
  ((fun ~me ~round -> schedule ~n ~k ~me ~round), A.required_cap ~n ~k)

let arb_size min_n =
  QCheck.(pair (int_range min_n 10) (int_range 2 9))
  |> QCheck.map ~rev:(fun (n, k) -> (n, k)) (fun (n, k) ->
         (n, max 2 (min (n - 1) k)))

let cap_property subject =
  QCheck.Test.make
    ~name:(subject.sname ^ "_schedule_respects_cap")
    ~count:25 (arb_size subject.min_n)
    (fun (n, k) ->
      let schedule, cap = schedule_and_cap subject ~n ~k in
      let ok = ref true in
      for round = 0 to sample_horizon - 1 do
        let on = ref 0 in
        for me = 0 to n - 1 do
          if schedule ~me ~round then incr on
        done;
        if !on > cap then ok := false
      done;
      !ok)

let period_property subject =
  QCheck.Test.make
    ~name:(subject.sname ^ "_schedule_is_periodic")
    ~count:15 (arb_size subject.min_n)
    (fun (n, k) ->
      match subject.period ~n ~k with
      | None -> true
      | Some period ->
        let schedule, _ = schedule_and_cap subject ~n ~k in
        let ok = ref true in
        for round = 0 to min period 4_000 - 1 do
          for me = 0 to n - 1 do
            if schedule ~me ~round <> schedule ~me ~round:(round + period) then
              ok := false
          done
        done;
        !ok)

let no_starvation_property subject =
  QCheck.Test.make
    ~name:(subject.sname ^ "_every_station_gets_duty")
    ~count:15 (arb_size subject.min_n)
    (fun (n, k) ->
      let schedule, _ = schedule_and_cap subject ~n ~k in
      let duty = Array.make n 0 in
      for round = 0 to sample_horizon - 1 do
        for me = 0 to n - 1 do
          if schedule ~me ~round then duty.(me) <- duty.(me) + 1
        done
      done;
      Array.for_all (fun d -> d > 0) duty)

let () =
  let to_alcotest = QCheck_alcotest.to_alcotest in
  Alcotest.run "schedules"
    (List.map
       (fun subject ->
         (subject.sname,
          [ to_alcotest (cap_property subject);
            to_alcotest (period_property subject);
            to_alcotest (no_starvation_property subject) ]))
       subjects)
