(* The compatibility grid: every algorithm against every injection pattern
   at half its own worst-case stable rate must deliver everything, respect
   its cap, and run protocol-clean. This is the broad integration sweep that
   catches cross-cutting regressions a focused suite misses. *)

open Helpers

type subject = {
  sname : string;
  algorithm : Mac_channel.Algorithm.t;
  n : int;
  k : int;
  rate : float;      (* half the worst-case stable rate *)
  rounds : int;
  drain : int;
}

let subjects =
  [ { sname = "orchestra"; algorithm = (module Mac_routing.Orchestra);
      n = 8; k = 3; rate = 0.45; rounds = 20_000; drain = 30_000 };
    { sname = "count-hop"; algorithm = (module Mac_routing.Count_hop);
      n = 8; k = 2; rate = 0.45; rounds = 20_000; drain = 20_000 };
    { sname = "adjust-window"; algorithm = (module Mac_routing.Adjust_window);
      n = 4; k = 2; rate = 0.3; rounds = 50_000; drain = 70_000 };
    { sname = "k-cycle";
      algorithm = Mac_routing.K_cycle.algorithm ~n:8 ~k:3;
      n = 8; k = 3; rate = 0.5 *. (2.0 /. 7.0); rounds = 30_000; drain = 30_000 };
    { sname = "k-clique";
      algorithm = Mac_routing.K_clique.algorithm ~n:8 ~k:4;
      n = 8; k = 4;
      rate = 0.5 *. (16.0 /. (8.0 *. 12.0)); rounds = 30_000; drain = 30_000 };
    { sname = "k-subsets";
      algorithm = Mac_routing.K_subsets.algorithm ~n:6 ~k:3 ();
      n = 6; k = 3; rate = 0.1; rounds = 30_000; drain = 30_000 };
    { sname = "k-subsets-rrw";
      algorithm = Mac_routing.K_subsets.algorithm ~discipline:`Rrw ~n:6 ~k:3 ();
      n = 6; k = 3; rate = 0.1; rounds = 30_000; drain = 30_000 };
    { sname = "pair-tdma"; algorithm = (module Mac_routing.Pair_tdma);
      n = 6; k = 2; rate = 0.015; rounds = 40_000; drain = 30_000 };
    { sname = "rrw-broadcast"; algorithm = (module Mac_broadcast.Rrw);
      n = 6; k = 6; rate = 0.45; rounds = 20_000; drain = 10_000 };
    { sname = "mbtf-broadcast"; algorithm = (module Mac_broadcast.Mbtf);
      n = 6; k = 6; rate = 0.45; rounds = 20_000; drain = 10_000 } ]

let patterns ~n =
  [ ("uniform", Mac_adversary.Pattern.uniform ~n ~seed:97);
    ("flood", Mac_adversary.Pattern.flood ~n ~victim:(n - 1));
    ("pair", Mac_adversary.Pattern.pair_flood ~src:1 ~dst:2);
    ("round-robin", Mac_adversary.Pattern.round_robin ~n);
    ("hotspot", Mac_adversary.Pattern.hotspot ~n ~seed:98 ~hot:0 ~bias:0.6) ]

let grid_case subject (pname, pattern) =
  let name = Printf.sprintf "%s x %s" subject.sname pname in
  Alcotest.test_case name `Slow (fun () ->
      let module A = (val subject.algorithm) in
      let s =
        run ~algorithm:subject.algorithm ~check_schedule:A.oblivious
          ~n:subject.n ~k:subject.k ~rate:subject.rate ~burst:2.0 ~pattern
          ~rounds:subject.rounds ~drain:subject.drain ()
      in
      assert_clean name s;
      assert_cap name (A.required_cap ~n:subject.n ~k:subject.k) s;
      assert_delivered_all name s)

let () =
  let suites =
    List.map
      (fun subject ->
        (subject.sname, List.map (grid_case subject) (patterns ~n:subject.n)))
      subjects
  in
  Alcotest.run "grid" suites
