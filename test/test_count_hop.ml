(* Count-Hop (§4.1): universality under energy cap 2, the latency bound
   shape, phase structure, and instability at rate 1 (Theorem 2). *)

open Helpers

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let count_hop = (module Mac_routing.Count_hop : Mac_channel.Algorithm.S)

let run_ch ?(n = 8) ?(rate = 0.8) ?(burst = 2.0) ?(rounds = 40_000) ?(drain = 20_000)
    pattern =
  run ~algorithm:count_hop ~check_schedule:false ~n ~k:2 ~rate ~burst ~pattern
    ~rounds ~drain ()

let impl_latency_bound ~n ~rate ~burst =
  2.0 *. (float_of_int (n * ((2 * n) - 3)) +. burst) /. (1.0 -. rate)

let test_stable_and_complete_below_one () =
  List.iter
    (fun rate ->
      let s = run_ch ~rate (Mac_adversary.Pattern.uniform ~n:8 ~seed:17) in
      assert_clean (Printf.sprintf "rate %.2f" rate) s;
      assert_cap "cap 2" 2 s;
      assert_delivered_all "complete" s;
      check_bool "stable" true (is_stable s))
    [ 0.3; 0.6; 0.9 ]

let test_latency_bound () =
  List.iter
    (fun (rate, burst) ->
      let s = run_ch ~rate ~burst (Mac_adversary.Pattern.flood ~n:8 ~victim:5) in
      let bound = impl_latency_bound ~n:8 ~rate ~burst in
      check_bool
        (Printf.sprintf "latency %d under %.0f at rate %.2f" (worst_delay s) bound rate)
        true
        (float_of_int (worst_delay s) <= bound))
    [ (0.5, 2.0); (0.8, 2.0); (0.9, 8.0) ]

let test_every_destination_served () =
  (* packets to every station, including the coordinator (station 0) *)
  let s = run_ch ~rate:0.5 (Mac_adversary.Pattern.round_robin ~n:8) in
  assert_delivered_all "round robin" s

let test_packets_to_coordinator () =
  let s =
    run_ch ~rate:0.3 (Mac_adversary.Pattern.pair_flood ~src:3 ~dst:0)
  in
  assert_delivered_all "to coordinator" s;
  assert_clean "to coordinator" s

let test_packets_from_coordinator () =
  (* The paper leaves coordinator-held packets unspecified; our schedule
     (DESIGN.md interpretation 2) must still deliver them. *)
  let s =
    run_ch ~rate:0.3 (Mac_adversary.Pattern.pair_flood ~src:0 ~dst:5)
  in
  assert_delivered_all "from coordinator" s;
  assert_clean "from coordinator" s

let test_direct_routing () =
  let s = run_ch ~rate:0.5 (Mac_adversary.Pattern.uniform ~n:8 ~seed:23) in
  check_int "one hop" 1 s.max_hops;
  check_int "no relays" 0 s.relay_rounds

let test_unstable_at_rate_one () =
  let s =
    run_ch ~rate:1.0 ~rounds:80_000 ~drain:0
      (Mac_adversary.Pattern.flood ~n:8 ~victim:3)
  in
  check_bool "unstable at 1" true (is_unstable s)

let test_unstable_under_lemma1_breaker () =
  let breaker = Mac_adversary.Saboteur.cap2_breaker ~n:8 in
  let s =
    run_ch ~rate:1.0 ~burst:1.0 ~rounds:80_000 ~drain:0
      breaker.Mac_adversary.Saboteur.pattern
  in
  check_bool "unstable under breaker" true (is_unstable s)

let test_first_phase_all_off () =
  (* The first phase is n silent all-off rounds; a 1-round run must show a
     silent round and zero energy. *)
  let s =
    run ~algorithm:count_hop ~check_schedule:false ~n:6 ~k:2 ~rate:0.5
      ~burst:2.0 ~pattern:(Mac_adversary.Pattern.uniform ~n:6 ~seed:1)
      ~rounds:6 ()
  in
  check_int "all silent" 6 s.silent_rounds;
  check_int "nobody on" 0 s.max_on

let test_small_n () =
  let s = run_ch ~n:3 ~rate:0.7 (Mac_adversary.Pattern.uniform ~n:3 ~seed:2) in
  assert_clean "n=3" s;
  assert_delivered_all "n=3" s

let test_control_bits_logarithmic_per_message () =
  let s = run_ch ~rate:0.5 (Mac_adversary.Pattern.uniform ~n:8 ~seed:29) in
  (* counts and offsets stay well under 2 * queue bits; with backlog ~ a few
     hundred packets, 32 bits/message is a generous ceiling. *)
  check_bool "bounded control payloads" true (s.control_bits_max <= 32)

let test_bursty_pacing_mid_run () =
  let s =
    run ~algorithm:count_hop ~check_schedule:false ~n:8 ~k:2 ~rate:0.7
      ~burst:50.0
      ~pacing:(Mac_adversary.Adversary.Paced { burst_at = Some 20_000 })
      ~pattern:(Mac_adversary.Pattern.uniform ~n:8 ~seed:31) ~rounds:40_000
      ~drain:20_000 ()
  in
  assert_delivered_all "mid-run burst absorbed" s;
  assert_clean "mid-run burst" s

let () =
  Alcotest.run "count-hop"
    [ ("universality",
       [ Alcotest.test_case "stable below 1" `Slow test_stable_and_complete_below_one;
         Alcotest.test_case "latency bound" `Slow test_latency_bound;
         Alcotest.test_case "unstable at 1" `Slow test_unstable_at_rate_one;
         Alcotest.test_case "lemma-1 breaker" `Slow test_unstable_under_lemma1_breaker;
         Alcotest.test_case "mid-run burst" `Slow test_bursty_pacing_mid_run ]);
      ("structure",
       [ Alcotest.test_case "every destination" `Quick test_every_destination_served;
         Alcotest.test_case "to coordinator" `Quick test_packets_to_coordinator;
         Alcotest.test_case "from coordinator" `Quick test_packets_from_coordinator;
         Alcotest.test_case "direct" `Quick test_direct_routing;
         Alcotest.test_case "first phase off" `Quick test_first_phase_all_off;
         Alcotest.test_case "n=3" `Quick test_small_n;
         Alcotest.test_case "control bits" `Quick test_control_bits_logarithmic_per_message ]) ]
