(* The cross-paper matrix driver: axis coverage, per-cell verdicts, batch
   parity (jobs=1 vs jobs=2), byte-identical resume replay, CSV export and
   the supervised threshold stage. Everything runs on a broadcast-only
   slice (row_for) to keep the suite fast; the full 15-algorithm matrix is
   exercised by the CLI smoke job. *)

module Matrix = Mac_experiments.Matrix
module Scenario = Mac_experiments.Scenario

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let broadcast_only id =
  List.mem id [ "rrw"; "mbtf"; "fs-tree"; "ack-rr"; "backoff" ]

let test_axes_cover_the_issue_floor () =
  (* The acceptance bar: every algorithm (incl. the full-sensing and
     ack-based families) x >= 3 adversaries x >= 2 fault plans. *)
  check_bool ">= 15 algorithms" true (List.length Matrix.algorithms >= 15);
  check_bool ">= 3 adversaries" true (List.length Matrix.adversaries >= 3);
  check_bool ">= 2 fault plans" true (List.length Matrix.faults >= 2);
  List.iter
    (fun id ->
      check_bool (id ^ " present") true (Matrix.is_algo_id id))
    [ "fs-tree"; "ack-rr"; "backoff"; "rrw"; "of-rrw"; "mbtf"; "orchestra" ];
  let cells = Matrix.row.cells ~scale:`Quick in
  check_int "full cross product"
    (List.length Matrix.algorithms * List.length Matrix.adversaries
   * List.length Matrix.faults)
    (List.length cells)

let test_cell_ids_parse_back () =
  List.iter
    (fun (c : Mac_experiments.Table1.cell) ->
      match String.split_on_char '/' c.spec.id with
      | [ "matrix"; a; adv; f ] ->
        check_bool "algo id" true (Matrix.is_algo_id a);
        check_bool "adversary id" true
          (List.exists
             (fun (x : Matrix.adversary_axis) -> x.adv_id = adv)
             Matrix.adversaries);
        check_bool "fault id" true
          (List.exists
             (fun (x : Matrix.fault_axis) -> x.fault_id = f)
             Matrix.faults)
      | _ -> Alcotest.failf "unparseable cell id %s" c.spec.id)
    (Matrix.row.cells ~scale:`Quick)

let test_slice_runs_with_verdicts_and_jobs_parity () =
  let e = Matrix.row_for ~only:broadcast_only in
  let seq = e.run ~jobs:1 ~scale:`Quick () in
  let par = e.run ~jobs:2 ~scale:`Quick () in
  check_int "slice size"
    (5 * List.length Matrix.adversaries * List.length Matrix.faults)
    (List.length seq);
  let rows run = List.map (Scenario.outcome_json ~experiment:e.id) run in
  check_bool "jobs=2 bit-identical to jobs=1" true (rows seq = rows par);
  List.iter
    (fun (o : Scenario.outcome) ->
      check_bool (o.spec.id ^ " has a verdict") true
        (match o.stability.verdict with
        | Mac_sim.Stability.Stable | Mac_sim.Stability.Unstable
        | Mac_sim.Stability.Inconclusive ->
          true);
      check_bool (o.spec.id ^ " completed clean") true o.passed)
    seq;
  (* The single-queue flood must separate the families: TDMA drowns
     (rate 1/2 >> 1/n) while MBTF shrugs it off. *)
  let verdict_of id =
    let o = List.find (fun (o : Scenario.outcome) -> o.spec.id = id) seq in
    o.stability.verdict
  in
  check_bool "ack-rr drowns under burst-flood" true
    (verdict_of "matrix/ack-rr/burst-flood/clean" = Mac_sim.Stability.Unstable);
  check_bool "mbtf absorbs burst-flood" true
    (verdict_of "matrix/mbtf/burst-flood/clean" = Mac_sim.Stability.Stable)

let with_temp_dir f =
  let dir = Filename.temp_file "eear_matrix" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o755;
  Fun.protect
    ~finally:(fun () ->
      Array.iter
        (fun f -> Sys.remove (Filename.concat dir f))
        (Sys.readdir dir);
      Sys.rmdir dir)
    (fun () -> f dir)

let test_resume_replays_byte_identically () =
  let only id = List.mem id [ "fs-tree"; "ack-rr" ] in
  let e = Matrix.row_for ~only in
  with_temp_dir (fun dir ->
      let first = e.run_resumable ~jobs:1 ~resume_dir:dir ~scale:`Quick () in
      check_bool "first pass all fresh" true
        (List.for_all
           (function Scenario.Fresh _ -> true | Scenario.Cached _ -> false)
           first);
      let second = e.run_resumable ~jobs:2 ~resume_dir:dir ~scale:`Quick () in
      check_bool "second pass all cached" true
        (List.for_all
           (function Scenario.Cached _ -> true | Scenario.Fresh _ -> false)
           second);
      let rows run =
        List.map (Scenario.resumed_json ~experiment:e.id) run
      in
      check_bool "JSON rows byte-identical" true (rows first = rows second);
      check_bool "CSV lines byte-identical" true
        (List.map Matrix.csv_line first = List.map Matrix.csv_line second))

let test_csv_lines_parse () =
  let e = Matrix.row_for ~only:(fun id -> id = "backoff") in
  List.iter
    (fun (o : Scenario.outcome) ->
      let line = Matrix.csv_line (Scenario.Fresh o) in
      match String.split_on_char ',' line with
      | [ algo; adv; fault; verdict; passed ] ->
        check_bool "algo column" true (Matrix.is_algo_id algo);
        check_bool "adversary column" true
          (List.exists
             (fun (x : Matrix.adversary_axis) -> x.adv_id = adv)
             Matrix.adversaries);
        check_bool "fault column" true
          (List.exists
             (fun (x : Matrix.fault_axis) -> x.fault_id = fault)
             Matrix.faults);
        check_bool "verdict column nonempty" true (verdict <> "");
        check_bool "passed column boolean" true
          (passed = "true" || passed = "false")
      | _ -> Alcotest.failf "bad csv line %s" line)
    (e.run ~jobs:1 ~scale:`Quick ())

let test_thresholds_classify_every_pair () =
  (* ack-rr (TDMA): stable at trickle rates against spread traffic, but
     its single-queue frontier sits near 1/n — the bisection must come
     back with a genuine bracket for the flood adversary. *)
  let results =
    Matrix.thresholds ~jobs:2 ~only:(fun id -> id = "ack-rr") ~scale:`Quick ()
  in
  check_int "one threshold per adversary" (List.length Matrix.adversaries)
    (List.length results);
  let flood_label =
    Printf.sprintf "matrix-th/ack-rr/%s"
      (List.nth Matrix.adversaries 1).Matrix.adv_id
  in
  List.iter
    (fun (label, outcome) ->
      match outcome with
      | Error _ -> Alcotest.failf "threshold %s failed" label
      | Ok f ->
        check_bool (label ^ " stringifies") true
          (String.length (Matrix.frontier_to_string f) > 0);
        check_bool (label ^ " exports json") true
          (String.length (Matrix.frontier_json ~label f) > 0);
        if label = flood_label then
          check_bool "flood frontier is a real bracket" true
            (match f with
            | Matrix.Bracket (lo, hi) ->
              Mac_channel.Qrat.(compare lo hi) < 0
            | _ -> false))
    results

let test_thresholds_deterministic () =
  let go () =
    List.map
      (fun (label, outcome) ->
        match outcome with
        | Ok f -> Matrix.frontier_json ~label f
        | Error err -> label ^ ": " ^ Mac_sim.Supervisor.error_to_string err)
      (Matrix.thresholds ~jobs:2 ~only:(fun id -> id = "mbtf") ~scale:`Quick ())
  in
  check_bool "two runs identical" true (go () = go ())

let () =
  Alcotest.run "matrix"
    [ ("axes",
       [ Alcotest.test_case "cover the issue floor" `Quick
           test_axes_cover_the_issue_floor;
         Alcotest.test_case "cell ids parse back" `Quick
           test_cell_ids_parse_back ]);
      ("cells",
       [ Alcotest.test_case "slice runs, verdicts, jobs parity" `Slow
           test_slice_runs_with_verdicts_and_jobs_parity;
         Alcotest.test_case "resume replays byte-identically" `Slow
           test_resume_replays_byte_identically;
         Alcotest.test_case "csv lines parse" `Slow test_csv_lines_parse ]);
      ("thresholds",
       [ Alcotest.test_case "classify every pair" `Slow
           test_thresholds_classify_every_pair;
         Alcotest.test_case "deterministic" `Slow
           test_thresholds_deterministic ]) ]
