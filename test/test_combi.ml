(* Tests for the combinatorial helpers and the two scheduling structures
   built on them (cycle groups, clique pairs). *)

open Mac_routing

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ---- basic helpers ---- *)

let test_ceil_div () =
  check_int "exact" 3 (Combi.ceil_div 9 3);
  check_int "round up" 4 (Combi.ceil_div 10 3);
  check_int "zero" 0 (Combi.ceil_div 0 5)

let test_lg () =
  (* lg x = ceil(log2(x+1)) = bit length of x *)
  check_int "lg 0" 0 (Combi.lg 0);
  check_int "lg 1" 1 (Combi.lg 1);
  check_int "lg 2" 2 (Combi.lg 2);
  check_int "lg 3" 2 (Combi.lg 3);
  check_int "lg 4" 3 (Combi.lg 4);
  check_int "lg 7" 3 (Combi.lg 7);
  check_int "lg 8" 4 (Combi.lg 8);
  check_int "lg 65535" 16 (Combi.lg 65535)

let test_binomial () =
  check_int "C(5,2)" 10 (Combi.binomial 5 2);
  check_int "C(8,3)" 56 (Combi.binomial 8 3);
  check_int "C(12,4)" 495 (Combi.binomial 12 4);
  check_int "C(n,0)" 1 (Combi.binomial 7 0);
  check_int "C(n,n)" 1 (Combi.binomial 7 7);
  check_int "out of range" 0 (Combi.binomial 5 9)

let binomial_symmetry =
  QCheck.Test.make ~name:"binomial_symmetry_and_pascal" ~count:100
    QCheck.(pair (int_range 1 16) (int_range 0 16))
    (fun (n, k) ->
      let k = k mod (n + 1) in
      Combi.binomial n k = Combi.binomial n (n - k)
      && (n < 2 || k = 0 || k > n - 1
          || Combi.binomial n k
             = Combi.binomial (n - 1) (k - 1) + Combi.binomial (n - 1) k))

let test_k_subsets_enumeration () =
  let sets = Combi.k_subsets ~n:4 ~k:2 in
  check_int "count" 6 (Array.length sets);
  Alcotest.(check (array (array int)))
    "lexicographic"
    [| [| 0; 1 |]; [| 0; 2 |]; [| 0; 3 |]; [| 1; 2 |]; [| 1; 3 |]; [| 2; 3 |] |]
    sets

let k_subsets_properties =
  QCheck.Test.make ~name:"k_subsets_count_sorted_distinct" ~count:50
    QCheck.(pair (int_range 1 9) (int_range 1 9))
    (fun (n, k) ->
      let k = 1 + (k mod n) in
      let sets = Combi.k_subsets ~n ~k in
      Array.length sets = Combi.binomial n k
      && Array.for_all
           (fun s ->
             Array.length s = k
             && Array.for_all (fun v -> v >= 0 && v < n) s
             &&
             let ok = ref true in
             for i = 0 to k - 2 do
               if s.(i) >= s.(i + 1) then ok := false
             done;
             !ok)
           sets)

let test_subset_pairs () =
  Alcotest.(check (array (pair int int)))
    "pairs of 4"
    [| (0, 1); (0, 2); (0, 3); (1, 2); (1, 3); (2, 3) |]
    (Combi.subset_pairs ~sets:4)

(* ---- Cycle_groups ---- *)

let test_effective_k_adjustment () =
  check_int "unchanged when 2k <= n+1" 4 (Cycle_groups.effective_k ~n:12 ~k:4);
  check_int "reduced to (n+1)/2" 5 (Cycle_groups.effective_k ~n:9 ~k:7);
  check_int "n=3 k=2" 2 (Cycle_groups.effective_k ~n:3 ~k:2)

let test_cycle_groups_structure () =
  let cg = Cycle_groups.make ~n:12 ~k:4 () in
  check_int "4 groups" 4 (Cycle_groups.group_count cg);
  Alcotest.(check (array int)) "G0" [| 0; 1; 2; 3 |] cg.Cycle_groups.groups.(0);
  Alcotest.(check (array int)) "G3 wraps through 0" [| 9; 10; 11; 0 |]
    cg.Cycle_groups.groups.(3);
  check_int "forward connector of G0" 3 (Cycle_groups.forward_connector cg 0);
  check_int "backward connector of G1" 3 (Cycle_groups.backward_connector cg 1);
  check_int "cycle closes at 0" 0 (Cycle_groups.forward_connector cg 3)

let test_cycle_groups_membership () =
  let cg = Cycle_groups.make ~n:12 ~k:4 () in
  Alcotest.(check (list int)) "connector in two groups" [ 0; 1 ]
    (Cycle_groups.member_groups cg 3);
  Alcotest.(check (list int)) "inner station in one group" [ 0 ]
    (Cycle_groups.member_groups cg 1);
  Alcotest.(check (list int)) "station 0 closes the cycle" [ 0; 3 ]
    (Cycle_groups.member_groups cg 0)

let test_cycle_groups_activity () =
  let cg = Cycle_groups.make ~n:12 ~k:4 () in
  let delta = cg.Cycle_groups.delta in
  check_int "delta = ceil(4(n-1)k/(n-k))" (Combi.ceil_div (4 * 11 * 4) 8) delta;
  check_int "first segment" 0 (Cycle_groups.active_group cg ~round:0);
  check_int "second segment" 1 (Cycle_groups.active_group cg ~round:delta);
  check_int "wraps around" 0 (Cycle_groups.active_group cg ~round:(4 * delta))

let cycle_groups_cover =
  QCheck.Test.make ~name:"cycle_groups_cover_and_cap" ~count:60
    QCheck.(pair (int_range 3 24) (int_range 2 23))
    (fun (n, k) ->
      let k = 2 + (k mod (n - 2)) in
      if k < 2 || k >= n then QCheck.assume_fail ()
      else begin
        let cg = Cycle_groups.make ~n ~k () in
        let eff = cg.Cycle_groups.k in
        (* every station in >= 1 group; group sizes in [2, eff]; consecutive
           groups share exactly the connector *)
        let covered = Array.make n 0 in
        Array.iter
          (fun g -> Array.iter (fun s -> covered.(s) <- covered.(s) + 1) g)
          cg.Cycle_groups.groups;
        let count = Cycle_groups.group_count cg in
        Array.for_all (fun c -> c >= 1 && c <= 2) covered
        && Array.for_all
             (fun g -> Array.length g >= 2 && Array.length g <= eff)
             cg.Cycle_groups.groups
        &&
        let ok = ref true in
        for i = 0 to count - 1 do
          let next = (i + 1) mod count in
          if Cycle_groups.forward_connector cg i
             <> Cycle_groups.backward_connector cg next
          then ok := false
        done;
        !ok
      end)

(* ---- Clique_pairs ---- *)

let test_clique_effective_k () =
  check_int "kept" 4 (Clique_pairs.effective_k ~n:12 ~k:4);
  check_int "k must divide 2n" 2 (Clique_pairs.effective_k ~n:9 ~k:4);
  check_int "capped at 2n/3" 8 (Clique_pairs.effective_k ~n:12 ~k:10);
  check_int "always at least 2" 2 (Clique_pairs.effective_k ~n:5 ~k:3)

let test_clique_structure () =
  let cp = Clique_pairs.make ~n:12 ~k:4 in
  check_int "set size" 2 cp.Clique_pairs.set_size;
  check_int "sets" 6 cp.Clique_pairs.sets;
  check_int "pairs" 15 (Clique_pairs.pair_count cp);
  Alcotest.(check (array int)) "members of pair (0,1)" [| 0; 1; 2; 3 |]
    cp.Clique_pairs.members.(0);
  check_int "station set" 2 (Clique_pairs.set_of_station cp 5);
  check_int "activity cycles" 1 (Clique_pairs.active_pair cp ~round:16)

let test_clique_membership () =
  let cp = Clique_pairs.make ~n:12 ~k:4 in
  let pairs = Clique_pairs.member_pairs cp 0 in
  check_int "each station in sets-1 pairs" 5 (List.length pairs);
  List.iter
    (fun p -> check_bool "member" true (Clique_pairs.in_pair cp ~pair:p 0))
    pairs

let clique_pairs_cover =
  QCheck.Test.make ~name:"clique_pairs_cover_all_station_pairs" ~count:40
    QCheck.(pair (int_range 3 18) (int_range 2 17))
    (fun (n, k) ->
      let k = 2 + (k mod (n - 2)) in
      if k < 2 || k >= n then QCheck.assume_fail ()
      else begin
        let cp = Clique_pairs.make ~n ~k in
        (* any two distinct stations appear together in some pair - the
           property that makes k-Clique a correct direct router *)
        let ok = ref true in
        for a = 0 to n - 1 do
          for b = a + 1 to n - 1 do
            let together = ref false in
            for p = 0 to Clique_pairs.pair_count cp - 1 do
              if Clique_pairs.in_pair cp ~pair:p a && Clique_pairs.in_pair cp ~pair:p b
              then together := true
            done;
            (* stations of the same set never form a pair alone but any pair
               containing the set contains both *)
            if not !together then ok := false
          done
        done;
        !ok
      end)

let () =
  Alcotest.run "combi"
    [ ("helpers",
       [ Alcotest.test_case "ceil_div" `Quick test_ceil_div;
         Alcotest.test_case "lg" `Quick test_lg;
         Alcotest.test_case "binomial" `Quick test_binomial;
         QCheck_alcotest.to_alcotest binomial_symmetry;
         Alcotest.test_case "k_subsets enum" `Quick test_k_subsets_enumeration;
         QCheck_alcotest.to_alcotest k_subsets_properties;
         Alcotest.test_case "subset pairs" `Quick test_subset_pairs ]);
      ("cycle-groups",
       [ Alcotest.test_case "effective k" `Quick test_effective_k_adjustment;
         Alcotest.test_case "structure" `Quick test_cycle_groups_structure;
         Alcotest.test_case "membership" `Quick test_cycle_groups_membership;
         Alcotest.test_case "activity" `Quick test_cycle_groups_activity;
         QCheck_alcotest.to_alcotest cycle_groups_cover ]);
      ("clique-pairs",
       [ Alcotest.test_case "effective k" `Quick test_clique_effective_k;
         Alcotest.test_case "structure" `Quick test_clique_structure;
         Alcotest.test_case "membership" `Quick test_clique_membership;
         QCheck_alcotest.to_alcotest clique_pairs_cover ]) ]
