(* Command-line driver for the simulator.

   routing_sim run --algorithm k-cycle -n 12 -k 4 --rate 0.2 --pattern flood:5
   routing_sim table1 [ID]       re-run Table-1 experiments
   routing_sim figures [ID]      re-run figure sweeps
   routing_sim resilience [ALGO] fault-injection suite, or one faulted run
   routing_sim inspect           render a station-by-round ASCII timeline
   routing_sim list              show algorithms, patterns, experiments *)

open Cmdliner

(* Rates parse as exact rationals: "1/10", "0.1" and "1" all mean exactly
   one tenth / one — never a float neighbour of it. *)
let qrat_conv =
  let parse s =
    match Mac_channel.Qrat.of_string s with
    | Ok q -> Ok q
    | Error msg -> Error (`Msg msg)
  in
  Arg.conv ~docv:"RATIONAL" (parse, Mac_channel.Qrat.pp)

(* Constructors are thunked: some validate (n, k) eagerly (k-subsets needs
   k < n) and a lookup of, say, fs-tree at k = n must not trip them. *)
let algorithms ~n ~k =
  [ ("orchestra",
     fun () -> (module Mac_routing.Orchestra : Mac_channel.Algorithm.S));
    ("count-hop", fun () -> (module Mac_routing.Count_hop));
    ("adjust-window", fun () -> (module Mac_routing.Adjust_window));
    ("k-cycle", fun () -> Mac_routing.K_cycle.algorithm ~n ~k);
    ("k-clique", fun () -> Mac_routing.K_clique.algorithm ~n ~k);
    ("k-subsets", fun () -> Mac_routing.K_subsets.algorithm ~n ~k ());
    ("k-subsets-rrw",
     fun () -> Mac_routing.K_subsets.algorithm ~discipline:`Rrw ~n ~k ());
    ("pair-tdma", fun () -> (module Mac_routing.Pair_tdma));
    ("random-leader", fun () -> Mac_routing.Random_leader.algorithm ~n ~k ());
    ("rrw", fun () -> (module Mac_broadcast.Rrw));
    ("of-rrw", fun () -> (module Mac_broadcast.Of_rrw));
    ("mbtf", fun () -> (module Mac_broadcast.Mbtf));
    ("fs-tree", fun () -> Mac_broadcast.Ring_broadcast.full_sensing ());
    ("ack-rr", fun () -> Mac_broadcast.Ring_broadcast.ack_based ());
    ("backoff", fun () -> Mac_broadcast.Backoff.algorithm ()) ]

let algorithm_names = List.map fst (algorithms ~n:6 ~k:3)

let resolve_algorithm name ~n ~k =
  match List.assoc_opt name (algorithms ~n ~k) with
  | Some a -> a ()
  | None ->
    Printf.eprintf "unknown algorithm %S; try: %s\n" name
      (String.concat ", " algorithm_names);
    exit 2

(* Pattern syntax: uniform | flood:V | pair:S:D | round-robin | to-busiest |
   hotspot:H:BIAS | alternating:S:D1:D2 | min-duty | min-pair | cap2. The
   saboteurs need the algorithm's schedule, so resolution happens after the
   algorithm is known. *)
let resolve_pattern spec ~algorithm ~n ~k ~seed =
  let fail msg =
    Printf.eprintf "bad pattern %S: %s\n" spec msg;
    exit 2
  in
  let parts = String.split_on_char ':' spec in
  let saboteur make =
    match Mac_experiments.Scenario.schedule_of algorithm ~n ~k with
    | None -> fail "this saboteur needs an oblivious algorithm"
    | Some schedule ->
      let choice = make ~schedule in
      Printf.printf "saboteur choice: %s\n" choice.Mac_adversary.Saboteur.description;
      choice.Mac_adversary.Saboteur.pattern
  in
  match parts with
  | [ "uniform" ] -> Mac_adversary.Pattern.uniform ~n ~seed
  | [ "flood"; v ] -> Mac_adversary.Pattern.flood ~n ~victim:(int_of_string v)
  | [ "pair"; s; d ] ->
    Mac_adversary.Pattern.pair_flood ~src:(int_of_string s) ~dst:(int_of_string d)
  | [ "round-robin" ] -> Mac_adversary.Pattern.round_robin ~n
  | [ "to-busiest" ] -> Mac_adversary.Pattern.to_busiest ~n
  | [ "hotspot"; h; b ] ->
    Mac_adversary.Pattern.hotspot ~n ~seed ~hot:(int_of_string h)
      ~bias:(float_of_string b)
  | [ "alternating"; s; d1; d2 ] ->
    Mac_adversary.Pattern.alternating ~src:(int_of_string s)
      ~dst_odd:(int_of_string d1) ~dst_even:(int_of_string d2)
  | [ "min-duty" ] ->
    saboteur (fun ~schedule -> Mac_adversary.Saboteur.min_duty ~n ~horizon:50_000 ~schedule)
  | [ "min-pair" ] ->
    saboteur (fun ~schedule -> Mac_adversary.Saboteur.min_pair ~n ~horizon:50_000 ~schedule)
  | [ "cap2" ] -> (Mac_adversary.Saboteur.cap2_breaker ~n).Mac_adversary.Saboteur.pattern
  | _ -> fail "unrecognised syntax"

(* Result-returning subset of [resolve_pattern] for the serve daemon: a
   bad spec in an [open] command must become a typed protocol error, not
   a process exit, and the saboteurs (which need the algorithm's schedule
   and print to stdout) stay batch-only. *)
let pattern_result spec ~n ~seed =
  let parts = String.split_on_char ':' spec in
  try
    match parts with
    | [ "uniform" ] -> Ok (Mac_adversary.Pattern.uniform ~n ~seed)
    | [ "flood"; v ] ->
      Ok (Mac_adversary.Pattern.flood ~n ~victim:(int_of_string v))
    | [ "pair"; s; d ] ->
      Ok
        (Mac_adversary.Pattern.pair_flood ~src:(int_of_string s)
           ~dst:(int_of_string d))
    | [ "round-robin" ] -> Ok (Mac_adversary.Pattern.round_robin ~n)
    | [ "to-busiest" ] -> Ok (Mac_adversary.Pattern.to_busiest ~n)
    | [ "hotspot"; h; b ] ->
      Ok
        (Mac_adversary.Pattern.hotspot ~n ~seed ~hot:(int_of_string h)
           ~bias:(float_of_string b))
    | [ "alternating"; s; d1; d2 ] ->
      Ok
        (Mac_adversary.Pattern.alternating ~src:(int_of_string s)
           ~dst_odd:(int_of_string d1) ~dst_even:(int_of_string d2))
    | [ ("min-duty" | "min-pair" | "cap2") ] ->
      Error
        (Printf.sprintf
           "pattern %S is a saboteur and only available in batch runs" spec)
    | _ -> Error (Printf.sprintf "unrecognised pattern syntax %S" spec)
  with Failure msg | Invalid_argument msg ->
    Error (Printf.sprintf "bad pattern %S: %s" spec msg)

(* ---- supervised execution (shared by run and the batch commands) ---- *)

(* First SIGTERM/SIGINT asks the supervisor to drain: in-flight work
   finishes (recording its completion markers / checkpoints), queued work
   is skipped, and the command exits 4. A second signal aborts on the
   spot. *)
let install_drain_handlers () =
  let fired = ref false in
  let handle name _signal =
    if !fired then exit 130
    else begin
      fired := true;
      Mac_sim.Supervisor.request_drain ();
      Printf.eprintf
        "\n%s: draining — in-flight work finishes, the rest is skipped \
         (repeat to abort)\n%!"
        name
    end
  in
  List.iter
    (fun (s, name) ->
      try Sys.set_signal s (Sys.Signal_handle (handle name))
      with Invalid_argument _ | Sys_error _ -> ())
    [ (Sys.sigterm, "SIGTERM"); (Sys.sigint, "SIGINT") ]

let policy_of ~retries ~job_timeout ~keep_going =
  if retries < 0 then begin
    Printf.eprintf "--retries must be >= 0 (got %d)\n" retries;
    exit 2
  end;
  if job_timeout < 0.0 then begin
    Printf.eprintf "--job-timeout must be >= 0 (got %g)\n" job_timeout;
    exit 2
  end;
  { Mac_sim.Supervisor.default_policy with retries; job_timeout; keep_going }

let print_supervisor_event ev =
  Format.eprintf "supervisor: %a@." Mac_sim.Supervisor.pp_event ev

(* Exit discipline of the supervised batch commands: a drain request wins
   (exit 4), otherwise persistent failures mean degraded completion
   (exit 3). Called after all reports and output files are written, so a
   degraded sweep still delivers every successful result. *)
let finish_supervised failures =
  let failed, skipped =
    List.partition
      (fun (_, e) ->
        match e with Mac_sim.Supervisor.Skipped -> false | _ -> true)
      failures
  in
  if skipped <> [] then
    Printf.eprintf "%d job(s) skipped by the drain request\n"
      (List.length skipped);
  if failed <> [] then begin
    Printf.eprintf "%d job(s) failed:\n" (List.length failed);
    List.iter
      (fun (label, err) ->
        Printf.eprintf "  %-28s %s\n" label
          (Mac_sim.Supervisor.error_to_string err))
      failed
  end;
  if Mac_sim.Supervisor.drain_requested () then exit 4
  else if failed <> [] then begin
    Printf.eprintf "completed with failures (exit 3)\n";
    exit 3
  end

(* ---- run command ---- *)

(* [Sink.jsonl_file] opens eagerly; turn an unwritable path into a CLI
   error instead of an uncaught exception. *)
let jsonl_sink path =
  try Mac_sim.Sink.jsonl_file path
  with Sys_error msg ->
    Printf.eprintf "%s\n" msg;
    exit 2

(* The progress line goes to stderr only — stdout stays machine-parseable
   (summary, --json, --series) whether or not progress is on. *)
let progress_line ~round registry =
  let module T = Mac_sim.Telemetry in
  let s = T.sample registry in
  let get name = Option.value ~default:0.0 (T.find_sample s name) in
  let target = get T.Names.rounds_target in
  let rps = get T.Names.rounds_per_second in
  let backlog = get T.Names.backlog in
  let pct =
    if target > 0.0 then 100.0 *. float_of_int round /. target else 0.0
  in
  let eta =
    if rps > 0.0 && target > float_of_int round then
      Printf.sprintf "%.0fs" ((target -. float_of_int round) /. rps)
    else "-"
  in
  Printf.eprintf
    "\rround %d/%.0f (%.1f%%)  %.0f rounds/s  backlog %.0f  ETA %s   %!"
    round target pct rps backlog eta

let run_cmd algorithm_name n k rate burst pattern_spec rounds drain seed paced
    inject series trace_n events stations csv json checkpoint checkpoint_every
    resume telemetry_file telemetry_jsonl telemetry_every progress engine =
  if telemetry_every < 1 then begin
    Printf.eprintf "--telemetry-every must be >= 1 (got %d)\n" telemetry_every;
    exit 2
  end;
  (match (checkpoint, checkpoint_every) with
   | Some _, e when e <= 0 ->
     Printf.eprintf "--checkpoint requires --checkpoint-every N with N >= 1\n";
     exit 2
   | None, e when e > 0 ->
     Printf.eprintf "--checkpoint-every requires --checkpoint FILE\n";
     exit 2
   | _ -> ());
  let resume_snap =
    match resume with
    | None -> None
    | Some path -> (
      match Mac_sim.Checkpoint.read_latest ~path with
      | Ok (snap, `Current) ->
        Printf.printf "resuming %s\n" (Mac_sim.Checkpoint.describe snap);
        Some snap
      | Ok (snap, `Salvaged reason) ->
        Printf.printf "resuming %s\n" (Mac_sim.Checkpoint.describe snap);
        Printf.printf "salvaged %s: %s\n"
          (Mac_sim.Checkpoint.prev_path path)
          reason;
        Some snap
      | Error msg ->
        Printf.eprintf "%s\n" msg;
        exit 2)
  in
  let algorithm = resolve_algorithm algorithm_name ~n ~k in
  let module A = (val algorithm) in
  let pattern =
    match inject with
    | None -> resolve_pattern pattern_spec ~algorithm ~n ~k ~seed
    | Some path -> (
      (* Replay a recorded injection trace through the same external-queue
         pattern the serve daemon uses — the serve/batch equivalence tests
         compare this run's event stream against the daemon's spool. *)
      match Mac_serve.Trace_file.load ~n ~path () with
      | Error msg ->
        Printf.eprintf "%s\n" msg;
        exit 2
      | Ok items ->
        let _feed, p = Mac_adversary.Pattern.external_queue ~initial:items () in
        p)
  in
  let pacing =
    if paced then Mac_adversary.Adversary.Paced { burst_at = None }
    else Mac_adversary.Adversary.Greedy
  in
  let adversary =
    Mac_adversary.Adversary.create_q ~rate ~burst ~pacing pattern
  in
  let trace =
    if trace_n > 0 then
      Some (Mac_channel.Trace.create ~capacity:trace_n ~enabled:true ())
    else None
  in
  let ledger = if stations then Some (Mac_sim.Ledger.create ~n) else None in
  let sinks =
    (match events with
     | Some path -> [ jsonl_sink path ]
     | None -> [])
    @ (match ledger with Some l -> [ Mac_sim.Ledger.sink l ] | None -> [])
  in
  let sink =
    match sinks with
    | [] -> None
    | [ s ] -> Some s
    | ss -> Some (Mac_sim.Sink.tee ss)
  in
  let telemetry_probe, telemetry_close =
    if telemetry_file = None && telemetry_jsonl = None && not progress then
      (None, fun () -> ())
    else begin
      let registry = Mac_sim.Telemetry.create () in
      let jsonl_oc =
        Option.map
          (fun path ->
            try open_out path
            with Sys_error msg ->
              Printf.eprintf "%s\n" msg;
              exit 2)
          telemetry_jsonl
      in
      let on_sample ~round reg =
        Option.iter
          (fun path ->
            Mac_sim.Telemetry.write_atomic ~path (Mac_sim.Telemetry.render reg))
          telemetry_file;
        Option.iter
          (fun oc ->
            let ev =
              Mac_channel.Event.Telemetry
                { sample = Mac_sim.Telemetry.sample reg }
            in
            output_string oc (Mac_channel.Event.to_json ~round ev);
            output_char oc '\n';
            flush oc)
          jsonl_oc;
        if progress then progress_line ~round reg
      in
      ( Some (Mac_sim.Telemetry.probe ~every:telemetry_every ~on_sample registry),
        fun () ->
          Option.iter close_out jsonl_oc;
          if progress then prerr_newline () )
    end
  in
  if checkpoint <> None then install_drain_handlers ();
  let config =
    { (Mac_sim.Engine.default_config ~rounds) with
      mode = engine;
      drain_limit = drain; check_schedule = A.oblivious; trace; sink;
      checkpoint_every;
      on_checkpoint =
        Option.map
          (fun path snap ->
            Mac_sim.Checkpoint.write_rotated ~path snap;
            if Mac_sim.Supervisor.drain_requested () then begin
              Printf.eprintf "drained: wrote %s (%s)\n" path
                (Mac_sim.Checkpoint.describe snap);
              raise Mac_sim.Supervisor.Drained
            end)
          checkpoint;
      telemetry = telemetry_probe }
  in
  let summary =
    Fun.protect
      ~finally:(fun () ->
        Option.iter Mac_sim.Sink.close sink;
        telemetry_close ())
      (fun () ->
        Mac_sim.Engine.run ~config ?resume:resume_snap ~algorithm ~n ~k
          ~adversary ~rounds ())
  in
  let stability = Mac_sim.Stability.classify summary.queue_series in
  Format.printf "%a@." Mac_sim.Metrics.pp_summary summary;
  Format.printf "stability: %a@." Mac_sim.Stability.pp_report stability;
  Option.iter
    (fun t ->
      Printf.printf "--- last %d channel events ---\n" trace_n;
      List.iter
        (fun (round, event) -> Printf.printf "r%-8d %s\n" round event)
        (Mac_channel.Trace.dump t))
    trace;
  Option.iter
    (fun l ->
      print_endline "--- per-station ledger ---";
      Mac_sim.Report.print (Mac_sim.Ledger.report l))
    ledger;
  Option.iter (fun path -> Printf.printf "wrote %s\n" path) events;
  Option.iter (fun path -> Printf.printf "wrote %s\n" path) telemetry_file;
  Option.iter (fun path -> Printf.printf "wrote %s\n" path) telemetry_jsonl;
  if series then print_string (Mac_sim.Export.series_csv summary);
  Option.iter
    (fun path ->
      Mac_sim.Export.write_file ~path (Mac_sim.Export.summaries_csv [ summary ]);
      Printf.printf "wrote %s\n" path)
    csv;
  if json then print_endline (Mac_sim.Export.summary_json summary);
  `Ok ()

let n_arg =
  Arg.(value & opt int 8 & info [ "n" ] ~docv:"N" ~doc:"Number of stations.")

let k_arg =
  Arg.(value & opt int 3 & info [ "k" ] ~docv:"K" ~doc:"Energy cap offered.")

let run_term =
  let algorithm =
    Arg.(
      value
      & opt string "orchestra"
      & info [ "a"; "algorithm" ] ~docv:"ALGO"
          ~doc:(Printf.sprintf "One of: %s." (String.concat ", " algorithm_names)))
  in
  let rate =
    Arg.(
      value
      & opt qrat_conv (Mac_channel.Qrat.make 1 2)
      & info [ "rate" ] ~docv:"RHO"
          ~doc:"Injection rate, exact: 1/10, 0.35 or 1.")
  in
  let burst =
    Arg.(
      value
      & opt qrat_conv (Mac_channel.Qrat.of_int 2)
      & info [ "burst" ] ~docv:"BETA" ~doc:"Burstiness (exact rational).")
  in
  let pattern =
    Arg.(
      value
      & opt string "uniform"
      & info [ "p"; "pattern" ] ~docv:"PATTERN"
          ~doc:
            "uniform | flood:V | pair:S:D | round-robin | to-busiest | \
             hotspot:H:BIAS | alternating:S:D1:D2 | min-duty | min-pair | cap2.")
  in
  let rounds =
    Arg.(value & opt int 100_000 & info [ "rounds" ] ~docv:"T" ~doc:"Injection rounds.")
  in
  let drain =
    Arg.(
      value & opt int 0
      & info [ "drain" ] ~docv:"T" ~doc:"Extra injection-free rounds to empty queues.")
  in
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"PRNG seed.") in
  let paced =
    Arg.(value & flag & info [ "paced" ] ~doc:"Spread injections instead of greedy bursts.")
  in
  let inject =
    Arg.(
      value
      & opt (some string) None
      & info [ "inject" ] ~docv:"FILE"
          ~doc:
            "Replay a recorded injection trace (one \"ROUND SRC DST\" per \
             line; # comments) instead of a generator --pattern. The leaky \
             bucket still gates admission, exactly as with live injection \
             into the serve daemon.")
  in
  let series =
    Arg.(value & flag & info [ "series" ] ~doc:"Print the queue-size series as CSV.")
  in
  let trace_n =
    Arg.(
      value & opt int 0
      & info [ "trace" ] ~docv:"N" ~doc:"Print the last N channel events.")
  in
  let csv =
    Arg.(
      value
      & opt (some string) None
      & info [ "csv" ] ~docv:"FILE" ~doc:"Write the summary as CSV to FILE.")
  in
  let json =
    Arg.(value & flag & info [ "json" ] ~doc:"Print the summary as JSON.")
  in
  let events =
    Arg.(
      value
      & opt (some string) None
      & info [ "events" ] ~docv:"FILE"
          ~doc:"Record the full typed event stream as JSON lines to FILE.")
  in
  let stations =
    Arg.(
      value & flag
      & info [ "stations" ]
          ~doc:"Print the per-station ledger (on-rounds, traffic, queue peaks).")
  in
  let checkpoint =
    Arg.(
      value
      & opt (some string) None
      & info [ "checkpoint" ] ~docv:"FILE"
          ~doc:
            "Write a crash-safe checkpoint of the run to FILE every \
             --checkpoint-every rounds (fsync + atomic rename; the \
             previous generation is kept as FILE.prev; resume with \
             --resume FILE). With a checkpoint configured, SIGTERM/SIGINT \
             drains: the next checkpoint is written, then the run exits 4.")
  in
  let checkpoint_every =
    Arg.(
      value & opt int 0
      & info [ "checkpoint-every" ] ~docv:"N"
          ~doc:"Checkpoint period in rounds (requires --checkpoint).")
  in
  let resume =
    Arg.(
      value
      & opt (some string) None
      & info [ "resume" ] ~docv:"FILE"
          ~doc:
            "Resume from a checkpoint written by --checkpoint. The other \
             flags must describe the same run (algorithm, n, k, rate, \
             pattern, rounds, drain); mismatches are rejected, and the \
             resumed run's output is bit-identical to an uninterrupted one. \
             A corrupt FILE falls back to the FILE.prev generation \
             (reported as salvaged).")
  in
  let telemetry_file =
    Arg.(
      value
      & opt (some string) None
      & info [ "telemetry-file" ] ~docv:"FILE"
          ~doc:
            "Rewrite a Prometheus-style text exposition of the live metrics \
             registry to FILE (atomic tmp + rename, so a concurrent scraper \
             never sees a partial file) every --telemetry-every rounds.")
  in
  let telemetry_jsonl =
    Arg.(
      value
      & opt (some string) None
      & info [ "telemetry-jsonl" ] ~docv:"FILE"
          ~doc:"Append each telemetry sample as one event JSON line to FILE.")
  in
  let telemetry_every =
    Arg.(
      value & opt int 1000
      & info [ "telemetry-every" ] ~docv:"N"
          ~doc:"Telemetry sampling cadence in rounds (default 1000).")
  in
  let progress =
    Arg.(
      value & flag
      & info [ "progress" ]
          ~doc:
            "Print a live progress line (round, throughput, backlog, ETA) to \
             stderr every --telemetry-every rounds; stdout is untouched.")
  in
  let engine =
    Arg.(
      value
      & opt
          (enum
             [ ("auto", Mac_sim.Engine.Auto);
               ("dense", Mac_sim.Engine.Dense);
               ("sparse", Mac_sim.Engine.Sparse) ])
          Mac_sim.Engine.Auto
      & info [ "engine" ] ~docv:"MODE"
          ~doc:
            "Execution mode: $(b,dense) visits every station every round; \
             $(b,sparse) uses the algorithm's closed-form schedule to touch \
             only scheduled stations and skip provably-idle stretches \
             analytically (bit-identical output; rejects algorithms without \
             the hook); $(b,auto) (default) picks sparse when available.")
  in
  Term.(
    ret
      (const run_cmd $ algorithm $ n_arg $ k_arg $ rate $ burst $ pattern
       $ rounds $ drain $ seed $ paced $ inject $ series $ trace_n $ events
       $ stations $ csv $ json $ checkpoint $ checkpoint_every $ resume
       $ telemetry_file $ telemetry_jsonl $ telemetry_every $ progress
       $ engine))

(* ---- table1 / figures commands ---- *)

(* Scenario ids contain '/'; flatten them for per-scenario file names. *)
let sanitize_id id =
  String.map
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '-' | '_' | '.' -> c
      | _ -> '_')
    id

let ensure_dir dir =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755
  else if not (Sys.is_directory dir) then begin
    Printf.eprintf "%s exists and is not a directory\n" dir;
    exit 2
  end

(* Per-scenario observer for experiment drivers: an optional JSONL file
   per scenario under [events_dir], and an optional notable-event ring
   whose tail is printed when the scenario finishes. *)
let scenario_observer ~trace_n ~events_dir :
    Mac_experiments.Scenario.observer option =
  if trace_n <= 0 && events_dir = None then None
  else begin
    Option.iter ensure_dir events_dir;
    Some
      (fun ~id ->
        let sinks =
          match events_dir with
          | None -> []
          | Some dir ->
            let path = Filename.concat dir (sanitize_id id ^ ".jsonl") in
            [ jsonl_sink path ]
        in
        let sinks =
          if trace_n <= 0 then sinks
          else begin
            let t =
              Mac_channel.Trace.create ~capacity:trace_n ~enabled:true ()
            in
            let ring = Mac_sim.Sink.ring t in
            Mac_sim.Sink.make
              ~close:(fun () ->
                Printf.printf "  last notable events of %s:\n" id;
                List.iter
                  (fun (round, event) ->
                    Printf.printf "    r%-8d %s\n" round event)
                  (Mac_channel.Trace.dump t))
              ring.Mac_sim.Sink.emit
            :: sinks
          end
        in
        match sinks with
        | [] -> None
        | [ s ] -> Some s
        | ss -> Some (Mac_sim.Sink.tee ss))
  end

let check_jobs jobs =
  if jobs < 1 then begin
    Printf.eprintf "--jobs must be >= 1 (got %d)\n" jobs;
    exit 2
  end;
  jobs

(* Batch drivers publish per-scenario expositions plus a fleet aggregate
   under --telemetry-dir; [routing_sim top DIR] watches those files. *)
let fleet_of ~telemetry_dir ~telemetry_every =
  if telemetry_every < 1 then begin
    Printf.eprintf "--telemetry-every must be >= 1 (got %d)\n" telemetry_every;
    exit 2
  end;
  Option.map
    (fun dir ->
      Mac_sim.Telemetry.Fleet.create ~dir ~every:telemetry_every ())
    telemetry_dir

let table1_cmd id quick jobs trace_n events_dir json resume_dir telemetry_dir
    telemetry_every retries job_timeout keep_going inject =
  let scale = if quick then `Quick else `Full in
  let jobs = check_jobs jobs in
  Option.iter ensure_dir resume_dir;
  let observe = scenario_observer ~trace_n ~events_dir in
  let telemetry = fleet_of ~telemetry_dir ~telemetry_every in
  install_drain_handlers ();
  let supervised =
    retries > 0 || job_timeout > 0.0 || keep_going || inject <> None
  in
  let policy = policy_of ~retries ~job_timeout ~keep_going in
  let inject =
    Option.map
      (fun bad cid ->
        if cid = bad then
          failwith (Printf.sprintf "injected failure in %s" cid))
      inject
  in
  let experiments =
    match id with
    | None -> Mac_experiments.Table1.all
    | Some id ->
      (try [ Mac_experiments.Table1.find id ]
       with Not_found ->
         Printf.eprintf "unknown experiment %S\n" id;
         exit 2)
  in
  let json_rows = ref [] in
  let failures = ref [] in
  List.iter
    (fun (e : Mac_experiments.Table1.t) ->
      Printf.printf "--- %s ---\n%s\n" e.id e.claim;
      let row ~scenario ~verdict ~passed ~json_row ~cached =
        if json <> None then json_rows := json_row () :: !json_rows;
        Printf.printf "%-28s %s %s%s\n" scenario verdict
          (if passed then "PASS" else "FAIL")
          (if cached then "  (resumed)" else "")
      in
      let ok_row (o : Mac_experiments.Scenario.outcome) =
        row ~scenario:o.spec.id
          ~verdict:(Mac_sim.Stability.verdict_to_string o.stability.verdict)
          ~passed:o.passed
          ~json_row:(fun () ->
            Mac_experiments.Scenario.outcome_json ~experiment:e.id o)
          ~cached:false
      in
      let resumed_row (r : Mac_experiments.Scenario.resumed) =
        row
          ~scenario:(Mac_experiments.Scenario.resumed_id r)
          ~verdict:(Mac_experiments.Scenario.resumed_verdict r)
          ~passed:(Mac_experiments.Scenario.resumed_passed r)
          ~json_row:(fun () ->
            Mac_experiments.Scenario.resumed_json ~experiment:e.id r)
          ~cached:
            (match r with
             | Mac_experiments.Scenario.Cached _ -> true
             | Mac_experiments.Scenario.Fresh _ -> false)
      in
      let failed_row cid err =
        failures := (cid, err) :: !failures;
        match err with
        | Mac_sim.Supervisor.Skipped ->
          Printf.printf "%-28s SKIPPED  (drain)\n" cid
        | err ->
          Printf.printf "%-28s FAILED   %s\n" cid
            (Mac_sim.Supervisor.error_to_string err)
      in
      match (resume_dir, supervised) with
      | None, false ->
        List.iter ok_row (e.run ?observe ?telemetry ~jobs ~scale ())
      | None, true ->
        List.iter
          (fun (cid, outcome) ->
            match outcome with
            | Ok o -> ok_row o
            | Error err -> failed_row cid err)
          (e.run_s ?observe ?telemetry ~jobs ~policy
             ~on_event:print_supervisor_event ?inject ~scale ())
      | Some dir, false ->
        List.iter resumed_row
          (e.run_resumable ?observe ?telemetry ~jobs ~resume_dir:dir ~scale ())
      | Some dir, true ->
        List.iter
          (fun (cid, outcome) ->
            match outcome with
            | Ok r -> resumed_row r
            | Error err -> failed_row cid err)
          (e.run_resumable_s ?observe ?telemetry ~jobs ~policy
             ~on_event:print_supervisor_event ?inject ~resume_dir:dir ~scale
             ()))
    experiments;
  Option.iter
    (fun path ->
      let body = "[\n" ^ String.concat ",\n" (List.rev !json_rows) ^ "\n]\n" in
      Mac_sim.Export.write_file ~path body;
      Printf.printf "wrote %s\n" path)
    json;
  Option.iter (fun dir -> Printf.printf "event streams under %s/\n" dir) events_dir;
  Option.iter (fun dir -> Printf.printf "telemetry under %s/\n" dir) telemetry_dir;
  finish_supervised (List.rev !failures);
  `Ok ()

(* The cross-paper matrix: one Table-1-shaped row crossing every
   algorithm with every adversary and fault plan, plus an optional
   bisected stability-frontier pass. Shares table1's 4-way dispatch on
   (resume-dir, supervised). *)
let matrix_cmd quick jobs trace_n events_dir json csv resume_dir telemetry_dir
    telemetry_every retries job_timeout keep_going inject thresholds only =
  let scale = if quick then `Quick else `Full in
  let jobs = check_jobs jobs in
  Option.iter ensure_dir resume_dir;
  let only =
    match only with
    | None -> fun _ -> true
    | Some id ->
      if not (Mac_experiments.Matrix.is_algo_id id) then begin
        Printf.eprintf "unknown matrix algorithm %S; available: %s\n" id
          (String.concat ", " (Mac_experiments.Matrix.algo_ids ()));
        exit 2
      end;
      fun a -> a = id
  in
  let e = Mac_experiments.Matrix.row_for ~only in
  let observe = scenario_observer ~trace_n ~events_dir in
  let telemetry = fleet_of ~telemetry_dir ~telemetry_every in
  install_drain_handlers ();
  let supervised =
    retries > 0 || job_timeout > 0.0 || keep_going || inject <> None
  in
  let policy = policy_of ~retries ~job_timeout ~keep_going in
  let inject =
    Option.map
      (fun bad cid ->
        if cid = bad then
          failwith (Printf.sprintf "injected failure in %s" cid))
      inject
  in
  let json_rows = ref [] in
  let csv_rows = ref [] in
  let failures = ref [] in
  let tally = Hashtbl.create 8 in
  let resumed_row (r : Mac_experiments.Scenario.resumed) =
    let verdict = Mac_experiments.Scenario.resumed_verdict r in
    Hashtbl.replace tally verdict
      (1 + Option.value ~default:0 (Hashtbl.find_opt tally verdict));
    if json <> None then
      json_rows :=
        Mac_experiments.Scenario.resumed_json ~experiment:e.id r :: !json_rows;
    if csv <> None then
      csv_rows := Mac_experiments.Matrix.csv_line r :: !csv_rows;
    Printf.printf "%-44s %-12s %s%s\n"
      (Mac_experiments.Scenario.resumed_id r)
      verdict
      (if Mac_experiments.Scenario.resumed_passed r then "ok" else "FAIL")
      (match r with
       | Mac_experiments.Scenario.Cached _ -> "  (resumed)"
       | Mac_experiments.Scenario.Fresh _ -> "")
  in
  let ok_row o = resumed_row (Mac_experiments.Scenario.Fresh o) in
  let failed_row cid err =
    failures := (cid, err) :: !failures;
    match err with
    | Mac_sim.Supervisor.Skipped ->
      Printf.printf "%-44s SKIPPED  (drain)\n" cid
    | err ->
      Printf.printf "%-44s FAILED   %s\n" cid
        (Mac_sim.Supervisor.error_to_string err)
  in
  Printf.printf "--- %s ---\n%s\n" e.id e.claim;
  (match (resume_dir, supervised) with
   | None, false ->
     List.iter ok_row (e.run ?observe ?telemetry ~jobs ~scale ())
   | None, true ->
     List.iter
       (fun (cid, outcome) ->
         match outcome with
         | Ok o -> ok_row o
         | Error err -> failed_row cid err)
       (e.run_s ?observe ?telemetry ~jobs ~policy
          ~on_event:print_supervisor_event ?inject ~scale ())
   | Some dir, false ->
     List.iter resumed_row
       (e.run_resumable ?observe ?telemetry ~jobs ~resume_dir:dir ~scale ())
   | Some dir, true ->
     List.iter
       (fun (cid, outcome) ->
         match outcome with
         | Ok r -> resumed_row r
         | Error err -> failed_row cid err)
       (e.run_resumable_s ?observe ?telemetry ~jobs ~policy
          ~on_event:print_supervisor_event ?inject ~resume_dir:dir ~scale ()));
  let cells = Hashtbl.fold (fun _ c acc -> acc + c) tally 0 in
  Printf.printf "%d cell(s): %s\n" cells
    (String.concat ", "
       (List.filter_map
          (fun v ->
            Option.map
              (fun c -> Printf.sprintf "%d %s" c v)
              (Hashtbl.find_opt tally v))
          [ "stable"; "UNSTABLE"; "inconclusive" ]));
  if thresholds then begin
    Printf.printf "--- stability frontiers (clean channel) ---\n";
    List.iter
      (fun (label, outcome) ->
        match outcome with
        | Ok f ->
          if json <> None then
            json_rows :=
              Mac_experiments.Matrix.frontier_json ~label f :: !json_rows;
          Printf.printf "%-44s %s\n" label
            (Mac_experiments.Matrix.frontier_to_string f)
        | Error err -> failed_row label err)
      (Mac_experiments.Matrix.thresholds ~jobs ~policy
         ~on_event:print_supervisor_event ~only ~scale ())
  end;
  Option.iter
    (fun path ->
      let body = "[\n" ^ String.concat ",\n" (List.rev !json_rows) ^ "\n]\n" in
      Mac_sim.Export.write_file ~path body;
      Printf.printf "wrote %s\n" path)
    json;
  Option.iter
    (fun path ->
      let body =
        Mac_experiments.Matrix.csv_header ^ "\n"
        ^ String.concat "\n" (List.rev !csv_rows)
        ^ "\n"
      in
      Mac_sim.Export.write_file ~path body;
      Printf.printf "wrote %s\n" path)
    csv;
  Option.iter (fun dir -> Printf.printf "event streams under %s/\n" dir) events_dir;
  Option.iter (fun dir -> Printf.printf "telemetry under %s/\n" dir) telemetry_dir;
  finish_supervised (List.rev !failures);
  `Ok ()

let figures_cmd id quick jobs trace_n events_dir telemetry_dir telemetry_every
    retries job_timeout keep_going =
  let scale = if quick then `Quick else `Full in
  let jobs = check_jobs jobs in
  let observe = scenario_observer ~trace_n ~events_dir in
  let telemetry = fleet_of ~telemetry_dir ~telemetry_every in
  install_drain_handlers ();
  let supervised = retries > 0 || job_timeout > 0.0 || keep_going in
  let policy = policy_of ~retries ~job_timeout ~keep_going in
  let figures =
    match id with
    | None -> Mac_experiments.Figures.all
    | Some id -> (
      match
        List.find_opt (fun (f : Mac_experiments.Figures.t) -> f.id = id)
          Mac_experiments.Figures.all
      with
      | Some f -> [ f ]
      | None ->
        Printf.eprintf "unknown figure %S\n" id;
        exit 2)
  in
  let failures = ref [] in
  List.iter
    (fun (f : Mac_experiments.Figures.t) ->
      Printf.printf "--- %s ---\n%s\n" f.id f.title;
      let report =
        if supervised then begin
          let (s : Mac_experiments.Figures.supervised) =
            f.run_s ?observe ?telemetry ~jobs ~policy
              ~on_event:print_supervisor_event ~scale ()
          in
          failures := !failures @ s.failures;
          s.report
        end
        else fst (f.run ?observe ?telemetry ~jobs ~scale ())
      in
      Mac_sim.Report.print report;
      print_newline ())
    figures;
  Option.iter (fun dir -> Printf.printf "event streams under %s/\n" dir) events_dir;
  Option.iter (fun dir -> Printf.printf "telemetry under %s/\n" dir) telemetry_dir;
  finish_supervised !failures;
  `Ok ()

(* ---- resilience command ---- *)

let load_fault_plan path =
  match Mac_faults.Fault_plan.of_file path with
  | Ok plan -> plan
  | Error msg ->
    Printf.eprintf "%s\n" msg;
    exit 2

let resilience_cmd algo n k rate burst pattern_spec rounds drain seed quick
    jobs trace_n events_dir telemetry_dir telemetry_every fault_plan fault_seed
    crash_rate jam_rate noise_rate restart_after crash_drop events json retries
    job_timeout keep_going =
  match algo with
  | None ->
    (* Suite mode: sweep every subject algorithm across the fault plans. *)
    let scale = if quick then `Quick else `Full in
    let jobs = check_jobs jobs in
    let observe = scenario_observer ~trace_n ~events_dir in
    let telemetry = fleet_of ~telemetry_dir ~telemetry_every in
    install_drain_handlers ();
    let supervised = retries > 0 || job_timeout > 0.0 || keep_going in
    if supervised then begin
      let policy = policy_of ~retries ~job_timeout ~keep_going in
      let report, outcomes =
        Mac_experiments.Resilience.suite_s ?observe ?telemetry ~jobs ~policy
          ~on_event:print_supervisor_event ~scale ()
      in
      Mac_sim.Report.print report;
      let failures =
        List.filter_map
          (fun (cid, o) ->
            match o with Ok _ -> None | Error e -> Some (cid, e))
          outcomes
      in
      Option.iter
        (fun dir -> Printf.printf "event streams under %s/\n" dir)
        events_dir;
      Option.iter
        (fun dir -> Printf.printf "telemetry under %s/\n" dir)
        telemetry_dir;
      finish_supervised failures
    end
    else begin
      let report, _ =
        Mac_experiments.Resilience.suite ?observe ?telemetry ~jobs ~scale ()
      in
      Mac_sim.Report.print report;
      Option.iter
        (fun dir -> Printf.printf "event streams under %s/\n" dir)
        events_dir;
      Option.iter
        (fun dir -> Printf.printf "telemetry under %s/\n" dir)
        telemetry_dir
    end;
    `Ok ()
  | Some algorithm_name ->
    (* Single-run mode: one algorithm under one fault plan. *)
    if retries > 0 || job_timeout > 0.0 || keep_going then
      Printf.eprintf
        "note: --retries/--job-timeout/--keep-going apply to suite mode only\n";
    let algorithm = resolve_algorithm algorithm_name ~n ~k in
    let module A = (val algorithm) in
    let plan =
      match fault_plan with
      | Some path -> load_fault_plan path
      | None -> (
        try
          Mac_faults.Fault_plan.random ~seed:fault_seed ~n ~rounds ~crash_rate
            ~jam_rate ~noise_rate ~restart_after
            ~queue:
              (if crash_drop then Mac_faults.Fault_plan.Drop
               else Mac_faults.Fault_plan.Retain)
            ()
        with Invalid_argument msg ->
          Printf.eprintf "%s\n" msg;
          exit 2)
    in
    if Mac_faults.Fault_plan.max_station plan >= n then begin
      Printf.eprintf "fault plan %s names station %d, but n = %d\n"
        (Mac_faults.Fault_plan.name plan)
        (Mac_faults.Fault_plan.max_station plan)
        n;
      exit 2
    end;
    let pattern = resolve_pattern pattern_spec ~algorithm ~n ~k ~seed in
    let adversary =
      Mac_adversary.Adversary.create_q ~rate ~burst
        ~pacing:Mac_adversary.Adversary.Greedy pattern
    in
    let sink = Option.map jsonl_sink events in
    let empty = Mac_faults.Fault_plan.is_empty plan in
    let config =
      { (Mac_sim.Engine.default_config ~rounds) with
        drain_limit = drain;
        check_schedule = A.oblivious;
        strict = empty;
        sink;
        faults = (if empty then None else Some plan) }
    in
    let summary =
      Fun.protect
        ~finally:(fun () -> Option.iter Mac_sim.Sink.close sink)
        (fun () ->
          Mac_sim.Engine.run ~config ~algorithm ~n ~k ~adversary ~rounds ())
    in
    if json then print_endline (Mac_sim.Export.summary_json summary)
    else begin
      Printf.printf "fault plan: %s (%d actions)\n"
        (Mac_faults.Fault_plan.name plan)
        (Mac_faults.Fault_plan.size plan);
      let stability = Mac_sim.Stability.classify summary.queue_series in
      Format.printf "%a@." Mac_sim.Metrics.pp_summary summary;
      Format.printf "stability: %a@." Mac_sim.Stability.pp_report stability;
      Option.iter (fun path -> Printf.printf "wrote %s\n" path) events
    end;
    `Ok ()

(* ---- inspect command ---- *)

let event_stations (ev : Mac_channel.Event.t) =
  match ev with
  | Injected { src; dst; _ } -> [ src; dst ]
  | Switched_on { station } | Switched_off { station } -> [ station ]
  | Transmit { station; _ } | Heard { station; _ } | Stranded { station; _ } ->
    [ station ]
  | Collision { stations }
  | Adoption_conflict { stations }
  | Spurious_adoption { stations } ->
    stations
  | Delivered { from_; dst; _ } -> [ from_; dst ]
  | Relayed { from_; relay; dst; _ } -> [ from_; relay; dst ]
  | Station_crashed { station; _ } | Station_restarted { station } -> [ station ]
  | Silence | Cap_exceeded _ | Round_end _ | Round_jammed _ | Telemetry _ -> []

let read_events path =
  let ic =
    try open_in path
    with Sys_error msg ->
      Printf.eprintf "%s\n" msg;
      exit 2
  in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let events = ref [] in
      let lineno = ref 0 in
      (try
         while true do
           let line = input_line ic in
           incr lineno;
           if String.trim line <> "" then
             match Mac_channel.Event.of_json_line line with
             | Ok entry -> events := entry :: !events
             | Error msg ->
               Printf.eprintf "%s:%d: %s\n" path !lineno msg;
               exit 2
         done
       with End_of_file -> ());
      List.rev !events)

let inspect_cmd file algorithm_name n k rate burst pattern_spec rounds seed last
    width =
  (match file with
   | Some path ->
     let events = read_events path in
     if events = [] then begin
       Printf.eprintf "%s: no events\n" path;
       exit 2
     end;
     let n =
       1
       + List.fold_left
           (fun acc (_, ev) -> List.fold_left max acc (event_stations ev))
           0 events
     in
     let tl = Mac_sim.Timeline.create ~rounds:last ~n () in
     List.iter (fun (round, ev) -> Mac_sim.Timeline.feed tl ~round ev) events;
     print_string (Mac_sim.Timeline.render ~width tl)
   | None ->
     let algorithm = resolve_algorithm algorithm_name ~n ~k in
     let module A = (val algorithm) in
     let pattern = resolve_pattern pattern_spec ~algorithm ~n ~k ~seed in
     let adversary =
       Mac_adversary.Adversary.create_q ~rate ~burst
         ~pacing:Mac_adversary.Adversary.Greedy pattern
     in
     let tl = Mac_sim.Timeline.create ~rounds:(max last rounds) ~n () in
     let config =
       { (Mac_sim.Engine.default_config ~rounds) with
         check_schedule = A.oblivious;
         sink = Some (Mac_sim.Timeline.sink tl) }
     in
     let summary =
       Mac_sim.Engine.run ~config ~algorithm ~n ~k ~adversary ~rounds ()
     in
     print_string (Mac_sim.Timeline.render ~width tl);
     Printf.printf
       "\n%s vs %s: %d injected, %d delivered, %d collision rounds in %d rounds\n"
       summary.algorithm summary.adversary summary.injected summary.delivered
       summary.collision_rounds summary.rounds);
  `Ok ()

let list_cmd () =
  print_endline "algorithms:";
  List.iter
    (fun name ->
      let a = resolve_algorithm name ~n:8 ~k:3 in
      Printf.printf "  %-14s %s\n" name (Mac_channel.Algorithm.describe a))
    algorithm_names;
  print_endline "table-1 experiments:";
  List.iter
    (fun (e : Mac_experiments.Table1.t) -> Printf.printf "  %-24s %s\n" e.id e.claim)
    Mac_experiments.Table1.all;
  print_endline "figures:";
  List.iter
    (fun (f : Mac_experiments.Figures.t) -> Printf.printf "  %-24s %s\n" f.id f.title)
    Mac_experiments.Figures.all;
  print_endline "matrix adversaries (routing_sim matrix):";
  List.iter
    (fun (a : Mac_experiments.Matrix.adversary_axis) ->
      Printf.printf "  %-14s rho=%s beta=%s\n" a.adv_id
        (Mac_channel.Qrat.to_string a.rate)
        (Mac_channel.Qrat.to_string a.burst))
    Mac_experiments.Matrix.adversaries;
  print_endline "matrix fault plans:";
  List.iter
    (fun (f : Mac_experiments.Matrix.fault_axis) ->
      Printf.printf "  %s\n" f.fault_id)
    Mac_experiments.Matrix.faults;
  `Ok ()

let id_arg =
  Arg.(value & pos 0 (some string) None & info [] ~docv:"ID" ~doc:"Experiment id.")

let quick_arg =
  Arg.(value & flag & info [ "quick" ] ~doc:"Smaller, faster configurations.")

let jobs_arg =
  Arg.(
    value
    & opt int (Mac_sim.Pool.default_jobs ())
    & info [ "jobs" ] ~docv:"N"
        ~doc:
          "Worker domains for the scenario pool (default: the machine's \
           recommended domain count). Results are bit-identical for every N.")

let exp_trace_arg =
  Arg.(
    value & opt int 0
    & info [ "trace" ] ~docv:"N"
        ~doc:"Print the last N notable channel events of every scenario.")

let exp_events_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "events" ] ~docv:"DIR"
        ~doc:"Record each scenario's event stream as DIR/<scenario>.jsonl.")

let telemetry_dir_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "telemetry-dir" ] ~docv:"DIR"
        ~doc:
          "Publish live Prometheus-style expositions: one \
           DIR/<scenario>.prom per running scenario plus the aggregate \
           DIR/fleet.prom, each rewritten atomically every \
           --telemetry-every rounds. Watch them with routing_sim top DIR.")

let telemetry_every_arg =
  Arg.(
    value & opt int 1000
    & info [ "telemetry-every" ] ~docv:"N"
        ~doc:"Telemetry sampling cadence in rounds (default 1000).")

let table1_json_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "json" ] ~docv:"FILE"
        ~doc:
          "Write every scenario's checks and summary as a JSON array to FILE \
           (the BENCH_table1.json format).")

let retries_arg =
  Arg.(
    value & opt int 0
    & info [ "retries" ] ~docv:"N"
        ~doc:
          "Retry a failed or timed-out scenario up to N more times with \
           exponential backoff. Retries rebuild the scenario from scratch, \
           so a retried success is bit-identical to a first-attempt one.")

let job_timeout_arg =
  Arg.(
    value & opt float 0.0
    & info [ "job-timeout" ] ~docv:"SECS"
        ~doc:
          "Watchdog deadline per scenario attempt: a scenario making no \
           round progress for SECS seconds is cancelled (and retried under \
           --retries). 0 disables the watchdog.")

let keep_going_arg =
  Arg.(
    value & flag
    & info [ "keep-going" ]
        ~doc:
          "Do not abort the sweep on the first scenario failure: run \
           everything, report every failure with its attempt count, and \
           exit 3 if any remain. Successful scenarios are unaffected and \
           bit-identical to an undisturbed sweep.")

let inject_failure_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "inject-failure" ] ~docv:"ID"
        ~doc:
          "Testing hook: raise inside scenario ID on every attempt, to \
           exercise the --retries/--keep-going failure handling.")

let table1_resume_dir_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "resume-dir" ] ~docv:"DIR"
        ~doc:
          "Record a completion marker per scenario under DIR and skip \
           scenarios already marked done: restarting a killed sweep with \
           the same DIR re-runs only the unfinished scenarios, and the \
           --json output is byte-identical to an uninterrupted sweep.")

let matrix_csv_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "csv" ] ~docv:"FILE"
        ~doc:
          "Write one CSV line per cell (algorithm, adversary, fault, \
           verdict, passed) to FILE. Byte-identical across --jobs values \
           and --resume-dir replays.")

let matrix_thresholds_arg =
  Arg.(
    value & flag
    & info [ "thresholds" ]
        ~doc:
          "Also bisect each (algorithm, adversary) stability frontier on a \
           clean channel with exact-rational rates and report the bracket \
           (or that the algorithm is stable/unstable across the whole probe \
           range).")

let matrix_only_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "only" ] ~docv:"ALGO"
        ~doc:
          "Restrict the matrix (cells and thresholds) to one algorithm id.")

let resilience_term =
  let algo =
    Arg.(
      value
      & pos 0 (some string) None
      & info [] ~docv:"ALGO"
          ~doc:
            "Run a single algorithm under one fault plan instead of the full \
             suite.")
  in
  let rate =
    Arg.(
      value
      & opt qrat_conv (Mac_channel.Qrat.make 1 2)
      & info [ "rate" ] ~docv:"RHO"
          ~doc:"Injection rate, exact: 1/10, 0.35 or 1.")
  in
  let burst =
    Arg.(
      value
      & opt qrat_conv (Mac_channel.Qrat.of_int 2)
      & info [ "burst" ] ~docv:"BETA" ~doc:"Burstiness (exact rational).")
  in
  let pattern =
    Arg.(
      value
      & opt string "uniform"
      & info [ "p"; "pattern" ] ~docv:"PATTERN"
          ~doc:"Same syntax as the run command.")
  in
  let rounds =
    Arg.(
      value & opt int 20_000
      & info [ "rounds" ] ~docv:"T" ~doc:"Injection rounds (single-run mode).")
  in
  let drain =
    Arg.(
      value & opt int 0
      & info [ "drain" ] ~docv:"T" ~doc:"Extra injection-free rounds to empty queues.")
  in
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Adversary PRNG seed.") in
  let events_dir =
    Arg.(
      value
      & opt (some string) None
      & info [ "events-dir" ] ~docv:"DIR"
          ~doc:"Suite mode: record each cell's event stream as DIR/<cell>.jsonl.")
  in
  let fault_plan =
    Arg.(
      value
      & opt (some string) None
      & info [ "fault-plan" ] ~docv:"FILE"
          ~doc:
            "Scripted fault plan: one directive per line (crash R S [keep|drop], \
             restart R S, jam R[..R], noise R[..R]); '#' comments.")
  in
  let fault_seed =
    Arg.(
      value & opt int 7
      & info [ "fault-seed" ] ~docv:"SEED"
          ~doc:"Seed of the generated random fault plan (ignored with --fault-plan).")
  in
  let crash_rate =
    Arg.(
      value & opt float 0.0
      & info [ "crash-rate" ] ~docv:"PHI"
          ~doc:"Per-round probability that some alive station crashes.")
  in
  let jam_rate =
    Arg.(
      value & opt float 0.0
      & info [ "jam-rate" ] ~docv:"PHI"
          ~doc:"Per-round probability of a jammed round.")
  in
  let noise_rate =
    Arg.(
      value & opt float 0.0
      & info [ "noise-rate" ] ~docv:"PHI"
          ~doc:"Per-round probability of a spurious-noise round.")
  in
  let restart_after =
    Arg.(
      value & opt int 0
      & info [ "restart-after" ] ~docv:"D"
          ~doc:"Restart crashed stations D rounds later (0 = crash-stop).")
  in
  let crash_drop =
    Arg.(
      value & flag
      & info [ "crash-drop" ]
          ~doc:"Crashed stations lose their queue (default: retain it).")
  in
  let events =
    Arg.(
      value
      & opt (some string) None
      & info [ "events" ] ~docv:"FILE"
          ~doc:"Single-run mode: record the event stream as JSON lines to FILE.")
  in
  let json =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:"Single-run mode: print only the JSON summary (for goldens).")
  in
  Term.(
    ret
      (const resilience_cmd $ algo $ n_arg $ k_arg $ rate $ burst $ pattern
       $ rounds $ drain $ seed $ quick_arg $ jobs_arg $ exp_trace_arg
       $ events_dir $ telemetry_dir_arg $ telemetry_every_arg $ fault_plan
       $ fault_seed $ crash_rate $ jam_rate $ noise_rate $ restart_after
       $ crash_drop $ events $ json $ retries_arg $ job_timeout_arg
       $ keep_going_arg))

let inspect_term =
  let file =
    Arg.(
      value
      & opt (some string) None
      & info [ "file" ] ~docv:"FILE"
          ~doc:
            "Render a recorded JSON-lines event stream (as written by run \
             --events) instead of simulating.")
  in
  let algorithm =
    Arg.(
      value
      & opt string "orchestra"
      & info [ "a"; "algorithm" ] ~docv:"ALGO"
          ~doc:(Printf.sprintf "One of: %s." (String.concat ", " algorithm_names)))
  in
  let rate =
    Arg.(
      value
      & opt qrat_conv (Mac_channel.Qrat.make 1 2)
      & info [ "rate" ] ~docv:"RHO"
          ~doc:"Injection rate, exact: 1/10, 0.35 or 1.")
  in
  let burst =
    Arg.(
      value
      & opt qrat_conv (Mac_channel.Qrat.of_int 2)
      & info [ "burst" ] ~docv:"BETA" ~doc:"Burstiness (exact rational).")
  in
  let pattern =
    Arg.(
      value
      & opt string "uniform"
      & info [ "p"; "pattern" ] ~docv:"PATTERN"
          ~doc:"Same syntax as the run command.")
  in
  let rounds =
    Arg.(value & opt int 120 & info [ "rounds" ] ~docv:"T" ~doc:"Rounds to simulate.")
  in
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"PRNG seed.") in
  let last =
    Arg.(
      value & opt int 512
      & info [ "last" ] ~docv:"N" ~doc:"Keep only the last N rounds.")
  in
  let width =
    Arg.(
      value & opt int 72
      & info [ "width" ] ~docv:"COLS" ~doc:"Round-columns per block.")
  in
  Term.(
    ret
      (const inspect_cmd $ file $ algorithm $ n_arg $ k_arg $ rate $ burst
       $ pattern $ rounds $ seed $ last $ width))

(* ---- top command ---- *)

(* A live dashboard over telemetry exposition files: one row per
   scenario file, a footer from the fleet aggregate. The writers rewrite
   atomically (tmp + rename), so each read sees a consistent snapshot. *)

type top_row = {
  top_label : string;
  top_round : float;
  top_target : float;
  top_rps : float;
  top_backlog : float;
  top_p99 : float option;
  top_energy : float;
}

(* Scraped runs come and go: a directory, a .prom file, or its content
   can vanish between the scan and the read (a finished sweep cleaning
   up, a writer that is not atomic). Everything transient is "not there
   this frame" — skipped, rescanned next frame — never an error. *)
let top_files paths =
  List.concat_map
    (fun p ->
      match Sys.is_directory p with
      | exception Sys_error _ -> [ p ]
      | false -> [ p ]
      | true -> (
        match Sys.readdir p with
        | exception Sys_error _ -> []
        | entries ->
          Array.to_list entries
          |> List.filter (fun f -> Filename.check_suffix f ".prom")
          |> List.map (Filename.concat p)
          |> List.sort compare))
    paths

let read_exposition path =
  match open_in_bin path with
  | exception Sys_error _ -> `Missing
  | ic -> (
    match
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    with
    | exception Sys_error _ -> `Missing
    | exception End_of_file -> `Missing (* shrank mid-read *)
    | content -> (
      match Mac_sim.Telemetry.parse_exposition content with
      | Ok triples -> `Rows triples
      | Error msg -> `Malformed (Printf.sprintf "%s: %s" path msg)))

let top_metric ?quantile triples name =
  List.find_map
    (fun (n, labels, v) ->
      if n <> name then None
      else
        match quantile with
        | None -> Some v
        | Some q ->
          if List.assoc_opt "quantile" labels = Some q then Some v else None)
    triples

let top_row_of triples path =
  let module N = Mac_sim.Telemetry.Names in
  let get name = Option.value ~default:0.0 (top_metric triples name) in
  let top_label =
    match
      List.find_map (fun (_, ls, _) -> List.assoc_opt "scenario" ls) triples
    with
    | Some id -> id
    | None -> Filename.remove_extension (Filename.basename path)
  in
  { top_label; top_round = get N.round; top_target = get N.rounds_target;
    top_rps = get N.rounds_per_second; top_backlog = get N.backlog;
    top_p99 = top_metric ~quantile:"0.99" triples N.delay;
    top_energy = get N.energy_total }

let top_fleet_line triples =
  let module N = Mac_sim.Telemetry.Names in
  let get name = Option.value ~default:0.0 (top_metric triples name) in
  let probes = get N.bisect_probes in
  Printf.sprintf "fleet: %.0f started, %.0f completed, %.0f cached%s"
    (get N.scenarios_started) (get N.scenarios_completed)
    (get N.scenarios_cached)
    (if probes > 0.0 then Printf.sprintf ", %.0f bisect probes" probes else "")

let top_render rows fleet errors =
  let b = Buffer.create 1024 in
  Buffer.add_string b
    (Printf.sprintf "%-34s %10s %6s %9s %9s %8s %11s %7s\n" "scenario" "round"
       "%" "rounds/s" "backlog" "p99" "energy" "ETA");
  List.iter
    (fun r ->
      let pct =
        if r.top_target > 0.0 then 100.0 *. r.top_round /. r.top_target
        else 0.0
      in
      let eta =
        if r.top_target > 0.0 && r.top_round >= r.top_target then "done"
        else if r.top_rps > 0.0 then
          Printf.sprintf "%.0fs" ((r.top_target -. r.top_round) /. r.top_rps)
        else "-"
      in
      let p99 =
        match r.top_p99 with Some v -> Printf.sprintf "%.0f" v | None -> "-"
      in
      Buffer.add_string b
        (Printf.sprintf "%-34s %10.0f %5.1f%% %9.0f %9.0f %8s %11.0f %7s\n"
           r.top_label r.top_round pct r.top_rps r.top_backlog p99
           r.top_energy eta))
    rows;
  Option.iter (fun line -> Buffer.add_string b (line ^ "\n")) fleet;
  List.iter (fun msg -> Buffer.add_string b ("! " ^ msg ^ "\n")) errors;
  Buffer.contents b

let top_gather paths =
  let files = top_files paths in
  let fleet_files, scenario_files =
    List.partition (fun p -> Filename.basename p = "fleet.prom") files
  in
  let errors = ref [] in
  let parse p =
    match read_exposition p with
    | `Rows triples when triples <> [] -> Some triples
    | `Rows _ | `Missing -> None
    | `Malformed msg ->
      errors := msg :: !errors;
      None
  in
  let rows =
    List.filter_map
      (fun p -> Option.map (fun t -> top_row_of t p) (parse p))
      scenario_files
  in
  let fleet =
    match fleet_files with
    | [] -> None
    | p :: _ -> Option.map top_fleet_line (parse p)
  in
  (rows, fleet, List.rev !errors)

let top_cmd paths watch once check =
  if paths = [] then begin
    Printf.eprintf
      "top: name at least one telemetry file or directory (as written by \
       --telemetry-file / --telemetry-dir)\n";
    exit 2
  end;
  if check || once then begin
    let rows, fleet, errors = top_gather paths in
    (* A half-rewritten exposition parses clean on the next frame; give
       non-atomic writers one rescan before --check calls it corrupt. *)
    let rows, fleet, errors =
      if check && errors <> [] then begin
        Unix.sleepf 0.05;
        top_gather paths
      end
      else (rows, fleet, errors)
    in
    print_string (top_render rows fleet errors);
    if check then begin
      if errors <> [] then begin
        Printf.eprintf "top --check: malformed exposition(s)\n";
        exit 1
      end;
      let live =
        List.filter (fun r -> r.top_round > 0.0 && r.top_target > 0.0) rows
      in
      if live = [] then begin
        Printf.eprintf "top --check: no live telemetry rows\n";
        exit 1
      end
    end;
    `Ok ()
  end
  else begin
    (* Watch mode: redraw until interrupted. *)
    while true do
      let rows, fleet, errors = top_gather paths in
      print_string "\027[H\027[2J";
      print_string (top_render rows fleet errors);
      flush stdout;
      Unix.sleepf watch
    done;
    `Ok ()
  end

let top_term =
  let paths =
    Arg.(
      value
      & pos_all string []
      & info [] ~docv:"PATH"
          ~doc:
            "Telemetry exposition files (*.prom) or directories of them, as \
             written by run --telemetry-file or the batch commands' \
             --telemetry-dir.")
  in
  let watch =
    Arg.(
      value & opt float 2.0
      & info [ "watch" ] ~docv:"SECS"
          ~doc:"Refresh period of the live dashboard (default 2 seconds).")
  in
  let once =
    Arg.(
      value & flag & info [ "once" ] ~doc:"Render one snapshot and exit.")
  in
  let check =
    Arg.(
      value & flag
      & info [ "check" ]
          ~doc:
            "Render once and exit non-zero unless every exposition parses \
             and at least one scenario row carries live telemetry — for \
             smoke tests.")
  in
  Term.(ret (const top_cmd $ paths $ watch $ once $ check))

(* ---- chaos command ---- *)

let chaos_cmd count seed dir verbose =
  if count < 1 then begin
    Printf.eprintf "--count must be >= 1 (got %d)\n" count;
    exit 2
  end;
  let log = if verbose then Some prerr_endline else None in
  let st = Mac_verify.Chaos.run ?log ?dir ~count ~seed () in
  Format.printf "%a@." Mac_verify.Chaos.pp_stats st;
  if not (Mac_verify.Chaos.passed st) then begin
    List.iter
      (fun msg -> Printf.eprintf "FAIL %s\n" msg)
      st.Mac_verify.Chaos.failures;
    exit 1
  end;
  `Ok ()

let chaos_term =
  let count =
    Arg.(
      value & opt int 50
      & info [ "count" ] ~docv:"N"
          ~doc:"Number of seeded chaos configurations to run.")
  in
  let seed =
    Arg.(
      value & opt int 0
      & info [ "seed" ] ~docv:"S"
          ~doc:"First seed; configurations use seeds S, S+1, ... S+N-1.")
  in
  let dir =
    Arg.(
      value
      & opt (some string) None
      & info [ "dir" ] ~docv:"DIR"
          ~doc:
            "Scratch directory for checkpoint and failpoint files (default: \
             a fresh directory under the system temp dir).")
  in
  let verbose =
    Arg.(
      value & flag
      & info [ "verbose" ] ~doc:"Log one line per configuration to stderr.")
  in
  Term.(ret (const chaos_cmd $ count $ seed $ dir $ verbose))

(* ---- verify command ---- *)

let verify_cmd count seed table1 quick rounds_cap sparse jobs =
  let cap x = match rounds_cap with None -> x | Some c -> min x c in
  let spec_to_run (s : Mac_experiments.Scenario.spec) : Mac_verify.Diff.run =
    { id = s.id; algorithm = s.algorithm; n = s.n; k = s.k; rate = s.rate;
      burst = s.burst; pacing = s.pacing; pattern = s.pattern;
      rounds = cap s.rounds; drain = cap s.drain; faults = s.faults }
  in
  if sparse then begin
    (* Sparse-vs-dense parity: the engine certified against itself
       (events, summary bytes, checkpoint bytes) rather than against the
       oracle — so huge configs are fine here. *)
    let makers =
      if table1 then begin
        let scale = if quick then `Quick else `Full in
        (* three catalog instances: certify_sparse runs each cell three
           times and each run needs fresh pattern state *)
        let a = Mac_experiments.Table1.catalog ~scale in
        let b = Mac_experiments.Table1.catalog ~scale in
        let c = Mac_experiments.Table1.catalog ~scale in
        let bc = List.map2 (fun y z -> (y, z)) b c in
        List.concat
          (List.map2
             (fun x (y, z) ->
               let module A =
                 (val x.Mac_experiments.Scenario.algorithm
                     : Mac_channel.Algorithm.S)
               in
               if Option.is_some A.sparse then begin
                 let copies =
                   ref [ spec_to_run x; spec_to_run y; spec_to_run z ]
                 in
                 [ (fun () ->
                     match !copies with
                     | r :: rest ->
                       copies := rest;
                       r
                     | [] ->
                       failwith
                         "certify_sparse consumed more than three instances")
                 ]
               end
               else [])
             a bc)
      end
      else List.init count (fun i -> Mac_verify.Diff.random_sparse ~seed:(seed + i))
    in
    let verdicts = Mac_verify.Diff.certify_sparse_batch ~jobs makers in
    let bad = List.filter (fun v -> not (Mac_verify.Diff.agrees v)) verdicts in
    List.iter (fun v -> Format.printf "%a@." Mac_verify.Diff.pp_verdict v) bad;
    Printf.printf "%d sparse certification(s), %d divergence(s)\n"
      (List.length verdicts) (List.length bad);
    if bad <> [] then exit 1;
    `Ok ()
  end
  else begin
  let pairs =
    if table1 then begin
      let scale = if quick then `Quick else `Full in
      (* the catalog is instantiated twice so each side owns fresh pattern
         state; the two lists are equal in every other respect *)
      let a = Mac_experiments.Table1.catalog ~scale in
      let b = Mac_experiments.Table1.catalog ~scale in
      List.map2 (fun x y -> (spec_to_run x, spec_to_run y)) a b
    end
    else List.init count (fun i -> Mac_verify.Diff.random_pair ~seed:(seed + i))
  in
  let verdicts = Mac_verify.Diff.run_pairs ~jobs pairs in
  let bad = List.filter (fun v -> not (Mac_verify.Diff.agrees v)) verdicts in
  List.iter (fun v -> Format.printf "%a@." Mac_verify.Diff.pp_verdict v) bad;
  let events =
    List.fold_left
      (fun acc (v : Mac_verify.Diff.verdict) -> acc + v.events)
      0 verdicts
  in
  Printf.printf "%d configuration(s), %d event(s) compared, %d divergence(s)\n"
    (List.length verdicts) events (List.length bad);
  if bad <> [] then exit 1;
  `Ok ()
  end

let verify_term =
  let count =
    Arg.(
      value & opt int 200
      & info [ "count" ] ~docv:"N"
          ~doc:"Number of random configurations to check (ignored with --table1).")
  in
  let seed =
    Arg.(
      value & opt int 0
      & info [ "seed" ] ~docv:"S"
          ~doc:"First seed; configurations use seeds S, S+1, ... S+N-1.")
  in
  let table1 =
    Arg.(
      value & flag
      & info [ "table1" ]
          ~doc:
            "Check the Table-1 catalog instead of random configurations \
             (use --quick for the reduced scale, --rounds-cap to bound \
             oracle time).")
  in
  let rounds_cap =
    Arg.(
      value
      & opt (some int) None
      & info [ "rounds-cap" ] ~docv:"T"
          ~doc:
            "Cap injection and drain rounds per configuration. The oracle \
             is deliberately quadratic per round; long catalog runs need \
             this to finish quickly.")
  in
  let sparse =
    Arg.(
      value & flag
      & info [ "sparse" ]
          ~doc:
            "Certify the sparse engine against the dense engine instead of \
             the engine against the oracle: every summary field, checkpoint \
             snapshot byte and event must be identical across modes. With \
             --table1, covers the sparse-capable cells of the catalog; \
             otherwise N random sparse-capable configurations.")
  in
  Term.(
    ret
      (const verify_cmd $ count $ seed $ table1 $ quick_arg $ rounds_cap
       $ sparse $ jobs_arg))

(* ---- serve / fleet commands ---- *)

let serve_cmd dir socket shards checkpoint_every telemetry_every =
  if shards < 1 then begin
    Printf.eprintf "--shards must be >= 1 (got %d)\n" shards;
    exit 2
  end;
  install_drain_handlers ();
  let socket =
    match socket with
    | Some s -> s
    | None -> Filename.concat dir "serve.sock"
  in
  let cfg =
    { Mac_serve.Server.dir;
      socket;
      shards;
      checkpoint_every;
      telemetry_every;
      algorithm_of =
        (fun ~name ~n ~k ->
          match List.assoc_opt name (algorithms ~n ~k) with
          | None ->
            Error
              (Printf.sprintf "unknown algorithm %S; try: %s" name
                 (String.concat ", " algorithm_names))
          | Some make -> (
            try Ok (make ())
            with Invalid_argument msg | Failure msg -> Error msg));
      pattern_of = (fun ~spec ~n ~seed -> pattern_result spec ~n ~seed);
      summary_json = Mac_sim.Export.summary_json;
      log = (fun msg -> Printf.eprintf "serve: %s\n%!" msg) }
  in
  match Mac_serve.Server.create cfg with
  | Error msg ->
    Printf.eprintf "%s\n" msg;
    exit 2
  | Ok sv ->
    Printf.eprintf "serve: listening on %s (%d shard(s), state in %s)\n%!"
      socket shards dir;
    let `Drained = Mac_serve.Server.run sv in
    (* Same exit discipline as the supervised batch commands: a drain is a
       clean, resumable stop. *)
    exit 4

let serve_term =
  let dir =
    Arg.(
      required
      & opt (some string) None
      & info [ "dir" ] ~docv:"DIR"
          ~doc:
            "State directory: per-channel meta/checkpoint/event-spool files \
             and telemetry expositions (point routing_sim top at it). A \
             directory left by a drained daemon is re-adopted: open \
             channels resume from their checkpoints.")
  in
  let socket =
    Arg.(
      value
      & opt (some string) None
      & info [ "socket" ] ~docv:"PATH"
          ~doc:"Unix-domain socket path (default: DIR/serve.sock).")
  in
  let shards =
    Arg.(
      value & opt int 2
      & info [ "shards" ] ~docv:"N"
          ~doc:"Worker domains hosting the channels (default 2).")
  in
  let checkpoint_every =
    Arg.(
      value & opt int 512
      & info [ "checkpoint-every" ] ~docv:"N"
          ~doc:
            "Default checkpoint cadence in rounds for channels that don't \
             specify one (default 512; 0 disables periodic checkpoints — \
             drain and snapshot still write one).")
  in
  let telemetry_every =
    Arg.(
      value & opt int 1000
      & info [ "telemetry-every" ] ~docv:"N"
          ~doc:"Telemetry sampling cadence in rounds (default 1000).")
  in
  Term.(
    ret
      (const serve_cmd $ dir $ socket $ shards $ checkpoint_every
       $ telemetry_every))

let fleet_connect socket =
  match Mac_serve.Client.connect ~socket with
  | Ok c -> c
  | Error msg ->
    Printf.eprintf "fleet: %s\n" msg;
    exit 1

let fleet_cmd socket args output =
  let module J = Mac_serve.Jsonv in
  match args with
  | [ "send"; line ] -> (
    let c = fleet_connect socket in
    Mac_serve.Client.send_line c line;
    match Mac_serve.Client.recv_line c with
    | None ->
      Printf.eprintf "fleet: server closed the connection\n";
      exit 1
    | Some reply ->
      print_endline reply;
      let ok =
        match J.parse reply with
        | Ok v -> Option.bind (J.member "ok" v) J.to_bool = Some true
        | Error _ -> false
      in
      Mac_serve.Client.close c;
      if not ok then exit 1;
      `Ok ())
  | [ "replay"; channel; path ] -> (
    match Mac_serve.Trace_file.load ~path () with
    | Error msg ->
      Printf.eprintf "fleet: %s\n" msg;
      exit 2
    | Ok items -> (
      let c = fleet_connect socket in
      let packets =
        J.List
          (List.map
             (fun (at, src, dst) -> J.List [ J.Int at; J.Int src; J.Int dst ])
             items)
      in
      match
        Mac_serve.Client.request c
          (J.Obj
             [ ("cmd", J.Str "inject");
               ("channel", J.Str channel);
               ("packets", packets) ])
      with
      | Ok reply ->
        print_endline (J.to_string reply);
        Mac_serve.Client.close c;
        `Ok ()
      | Error msg ->
        Printf.eprintf "fleet: %s\n" msg;
        exit 1))
  | [ "watch"; channel ] -> (
    let c = fleet_connect socket in
    match
      Mac_serve.Client.request c
        (J.Obj [ ("cmd", J.Str "subscribe"); ("channel", J.Str channel) ])
    with
    | Error msg ->
      Printf.eprintf "fleet: %s\n" msg;
      exit 1
    | Ok _ack ->
      let oc =
        match output with
        | None -> stdout
        | Some path -> (
          try open_out path
          with Sys_error msg ->
            Printf.eprintf "fleet: %s\n" msg;
            exit 2)
      in
      let rec pump () =
        match Mac_serve.Client.recv_line c with
        | None -> ()
        | Some line ->
          output_string oc line;
          output_char oc '\n';
          pump ()
      in
      pump ();
      if oc != stdout then close_out oc else flush oc;
      Mac_serve.Client.close c;
      `Ok ())
  | _ ->
    Printf.eprintf
      "fleet: usage:\n\
      \  fleet --socket PATH send JSON        one protocol command, print \
       the reply\n\
      \  fleet --socket PATH replay CHAN FILE inject a recorded trace\n\
      \  fleet --socket PATH watch CHAN       stream the channel's events \
       (JSONL) until it completes\n";
    exit 2

let fleet_term =
  let socket =
    Arg.(
      required
      & opt (some string) None
      & info [ "socket" ] ~docv:"PATH"
          ~doc:"The serve daemon's Unix-domain socket.")
  in
  let args =
    Arg.(
      value & pos_all string []
      & info [] ~docv:"ARGS"
          ~doc:"send JSON | replay CHANNEL FILE | watch CHANNEL.")
  in
  let output =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "output" ] ~docv:"FILE"
          ~doc:"For watch: write the event stream to FILE instead of stdout.")
  in
  Term.(ret (const fleet_cmd $ socket $ args $ output))

let cmds =
  [ Cmd.v (Cmd.info "run" ~doc:"Simulate one algorithm/adversary scenario") run_term;
    Cmd.v
      (Cmd.info "serve"
         ~doc:
           "Long-running daemon hosting a fleet of live channel instances, \
            sharded over worker domains: external packet injection, event \
            subscriptions, checkpoint/migrate, live telemetry and \
            crash-respawned shards, over a Unix-socket JSON protocol")
      serve_term;
    Cmd.v
      (Cmd.info "fleet"
         ~doc:
           "Client for the serve daemon: send protocol commands, replay \
            recorded injection traces, stream channel events")
      fleet_term;
    Cmd.v
      (Cmd.info "table1" ~doc:"Re-run Table-1 validation experiments")
      Term.(
        ret
          (const table1_cmd $ id_arg $ quick_arg $ jobs_arg $ exp_trace_arg
           $ exp_events_arg $ table1_json_arg $ table1_resume_dir_arg
           $ telemetry_dir_arg $ telemetry_every_arg $ retries_arg
           $ job_timeout_arg $ keep_going_arg $ inject_failure_arg));
    Cmd.v
      (Cmd.info "matrix"
         ~doc:
           "Cross-paper algorithm matrix: every algorithm (routing + \
            broadcast families) x every adversary x every fault plan, with \
            per-cell stability verdicts and optional bisected stability \
            frontiers")
      Term.(
        ret
          (const matrix_cmd $ quick_arg $ jobs_arg $ exp_trace_arg
           $ exp_events_arg $ table1_json_arg $ matrix_csv_arg
           $ table1_resume_dir_arg $ telemetry_dir_arg $ telemetry_every_arg
           $ retries_arg $ job_timeout_arg $ keep_going_arg
           $ inject_failure_arg $ matrix_thresholds_arg $ matrix_only_arg));
    Cmd.v
      (Cmd.info "figures" ~doc:"Re-run figure sweeps")
      Term.(
        ret
          (const figures_cmd $ id_arg $ quick_arg $ jobs_arg $ exp_trace_arg
           $ exp_events_arg $ telemetry_dir_arg $ telemetry_every_arg
           $ retries_arg $ job_timeout_arg $ keep_going_arg));
    Cmd.v
      (Cmd.info "resilience"
         ~doc:
           "Fault-injection runs: the per-algorithm degradation suite, or one \
            algorithm under a crash/jam fault plan")
      resilience_term;
    Cmd.v
      (Cmd.info "inspect"
         ~doc:"ASCII station-by-round timeline of a run or a recorded event stream")
      inspect_term;
    Cmd.v
      (Cmd.info "top"
         ~doc:
           "Live fleet dashboard over telemetry exposition files (one row \
            per scenario: round, throughput, backlog, p99 delay, energy, ETA)")
      top_term;
    Cmd.v
      (Cmd.info "verify"
         ~doc:
           "Differential check: the engine against a naive reference oracle, \
            over random configurations or the Table-1 catalog")
      verify_term;
    Cmd.v
      (Cmd.info "chaos"
         ~doc:
           "Seeded fault-injection of the supervision and durability layers: \
            scripted job failures, worker kills, watchdog stalls, checkpoint \
            corruption and rename failures, asserting completed work stays \
            bit-identical to an undisturbed run")
      chaos_term;
    Cmd.v
      (Cmd.info "list" ~doc:"List algorithms and experiments")
      Term.(ret (const list_cmd $ const ())) ]

let () =
  let exits =
    Cmd.Exit.info 3
      ~doc:
        "a supervised sweep (--keep-going) completed, but some scenarios \
         failed every attempt; the successful results were reported."
    :: Cmd.Exit.info 4
         ~doc:
           "the command drained cleanly after SIGTERM/SIGINT: in-flight \
            work was finished and saved, the rest was skipped."
    :: Cmd.Exit.defaults
  in
  let info =
    Cmd.info "routing_sim" ~version:"1.0.0" ~exits
      ~doc:"Energy-efficient adversarial routing on multiple access channels"
  in
  (* Domain validation lives in the libraries (bucket rate in (0, 1],
     burst >= 1, schedule arities, ...); surface it as the usual one-line
     exit-2 instead of an uncaught exception. Anything else keeps
     cmdliner's internal-error rendering and exit code. *)
  try exit (Cmd.eval ~catch:false (Cmd.group ~default:run_term info cmds))
  with
  | Mac_sim.Supervisor.Drained ->
    Printf.eprintf
      "routing_sim: drained after a termination request; completed work was \
       saved\n";
    exit 4
  | Invalid_argument msg ->
    Printf.eprintf "%s\n" msg;
    exit 2
  | e ->
    let bt = Printexc.get_raw_backtrace () in
    Printf.eprintf "routing_sim: internal error, uncaught exception:\n%s\n%s"
      (Printexc.to_string e)
      (Printexc.raw_backtrace_to_string bt);
    exit 125
