(* Command-line driver for the simulator.

   routing_sim run --algorithm k-cycle -n 12 -k 4 --rate 0.2 --pattern flood:5
   routing_sim table1 [ID]       re-run Table-1 experiments
   routing_sim figures [ID]      re-run figure sweeps
   routing_sim list              show algorithms, patterns, experiments *)

open Cmdliner

let algorithms ~n ~k =
  [ ("orchestra", (module Mac_routing.Orchestra : Mac_channel.Algorithm.S));
    ("count-hop", (module Mac_routing.Count_hop));
    ("adjust-window", (module Mac_routing.Adjust_window));
    ("k-cycle", Mac_routing.K_cycle.algorithm ~n ~k);
    ("k-clique", Mac_routing.K_clique.algorithm ~n ~k);
    ("k-subsets", Mac_routing.K_subsets.algorithm ~n ~k ());
    ("k-subsets-rrw", Mac_routing.K_subsets.algorithm ~discipline:`Rrw ~n ~k ());
    ("pair-tdma", (module Mac_routing.Pair_tdma));
    ("random-leader", Mac_routing.Random_leader.algorithm ~n ~k ());
    ("rrw", (module Mac_broadcast.Rrw));
    ("of-rrw", (module Mac_broadcast.Of_rrw));
    ("mbtf", (module Mac_broadcast.Mbtf)) ]

let algorithm_names = List.map fst (algorithms ~n:6 ~k:3)

let resolve_algorithm name ~n ~k =
  match List.assoc_opt name (algorithms ~n ~k) with
  | Some a -> a
  | None ->
    Printf.eprintf "unknown algorithm %S; try: %s\n" name
      (String.concat ", " algorithm_names);
    exit 2

(* Pattern syntax: uniform | flood:V | pair:S:D | round-robin | to-busiest |
   hotspot:H:BIAS | alternating:S:D1:D2 | min-duty | min-pair | cap2. The
   saboteurs need the algorithm's schedule, so resolution happens after the
   algorithm is known. *)
let resolve_pattern spec ~algorithm ~n ~k ~seed =
  let fail msg =
    Printf.eprintf "bad pattern %S: %s\n" spec msg;
    exit 2
  in
  let parts = String.split_on_char ':' spec in
  let saboteur make =
    match Mac_experiments.Scenario.schedule_of algorithm ~n ~k with
    | None -> fail "this saboteur needs an oblivious algorithm"
    | Some schedule ->
      let choice = make ~schedule in
      Printf.printf "saboteur choice: %s\n" choice.Mac_adversary.Saboteur.description;
      choice.Mac_adversary.Saboteur.pattern
  in
  match parts with
  | [ "uniform" ] -> Mac_adversary.Pattern.uniform ~n ~seed
  | [ "flood"; v ] -> Mac_adversary.Pattern.flood ~n ~victim:(int_of_string v)
  | [ "pair"; s; d ] ->
    Mac_adversary.Pattern.pair_flood ~src:(int_of_string s) ~dst:(int_of_string d)
  | [ "round-robin" ] -> Mac_adversary.Pattern.round_robin ~n
  | [ "to-busiest" ] -> Mac_adversary.Pattern.to_busiest ~n
  | [ "hotspot"; h; b ] ->
    Mac_adversary.Pattern.hotspot ~n ~seed ~hot:(int_of_string h)
      ~bias:(float_of_string b)
  | [ "alternating"; s; d1; d2 ] ->
    Mac_adversary.Pattern.alternating ~src:(int_of_string s)
      ~dst_odd:(int_of_string d1) ~dst_even:(int_of_string d2)
  | [ "min-duty" ] ->
    saboteur (fun ~schedule -> Mac_adversary.Saboteur.min_duty ~n ~horizon:50_000 ~schedule)
  | [ "min-pair" ] ->
    saboteur (fun ~schedule -> Mac_adversary.Saboteur.min_pair ~n ~horizon:50_000 ~schedule)
  | [ "cap2" ] -> (Mac_adversary.Saboteur.cap2_breaker ~n).Mac_adversary.Saboteur.pattern
  | _ -> fail "unrecognised syntax"

(* ---- run command ---- *)

let run_cmd algorithm_name n k rate burst pattern_spec rounds drain seed paced
    series trace_n csv json =
  let algorithm = resolve_algorithm algorithm_name ~n ~k in
  let module A = (val algorithm) in
  let pattern = resolve_pattern pattern_spec ~algorithm ~n ~k ~seed in
  let pacing =
    if paced then Mac_adversary.Adversary.Paced { burst_at = None }
    else Mac_adversary.Adversary.Greedy
  in
  let adversary = Mac_adversary.Adversary.create ~rate ~burst ~pacing pattern in
  let trace =
    if trace_n > 0 then
      Some (Mac_channel.Trace.create ~capacity:trace_n ~enabled:true ())
    else None
  in
  let config =
    { (Mac_sim.Engine.default_config ~rounds) with
      drain_limit = drain; check_schedule = A.oblivious; trace }
  in
  let summary =
    Mac_sim.Engine.run ~config ~algorithm ~n ~k ~adversary ~rounds ()
  in
  let stability = Mac_sim.Stability.classify summary.queue_series in
  Format.printf "%a@." Mac_sim.Metrics.pp_summary summary;
  Format.printf "stability: %a@." Mac_sim.Stability.pp_report stability;
  Option.iter
    (fun t ->
      Printf.printf "--- last %d channel events ---\n" trace_n;
      List.iter
        (fun (round, event) -> Printf.printf "r%-8d %s\n" round event)
        (Mac_channel.Trace.dump t))
    trace;
  if series then print_string (Mac_sim.Export.series_csv summary);
  Option.iter
    (fun path ->
      Mac_sim.Export.write_file ~path (Mac_sim.Export.summaries_csv [ summary ]);
      Printf.printf "wrote %s\n" path)
    csv;
  if json then print_endline (Mac_sim.Export.summary_json summary);
  `Ok ()

let n_arg =
  Arg.(value & opt int 8 & info [ "n" ] ~docv:"N" ~doc:"Number of stations.")

let k_arg =
  Arg.(value & opt int 3 & info [ "k" ] ~docv:"K" ~doc:"Energy cap offered.")

let run_term =
  let algorithm =
    Arg.(
      value
      & opt string "orchestra"
      & info [ "a"; "algorithm" ] ~docv:"ALGO"
          ~doc:(Printf.sprintf "One of: %s." (String.concat ", " algorithm_names)))
  in
  let rate =
    Arg.(value & opt float 0.5 & info [ "rate" ] ~docv:"RHO" ~doc:"Injection rate.")
  in
  let burst =
    Arg.(value & opt float 2.0 & info [ "burst" ] ~docv:"BETA" ~doc:"Burstiness.")
  in
  let pattern =
    Arg.(
      value
      & opt string "uniform"
      & info [ "p"; "pattern" ] ~docv:"PATTERN"
          ~doc:
            "uniform | flood:V | pair:S:D | round-robin | to-busiest | \
             hotspot:H:BIAS | alternating:S:D1:D2 | min-duty | min-pair | cap2.")
  in
  let rounds =
    Arg.(value & opt int 100_000 & info [ "rounds" ] ~docv:"T" ~doc:"Injection rounds.")
  in
  let drain =
    Arg.(
      value & opt int 0
      & info [ "drain" ] ~docv:"T" ~doc:"Extra injection-free rounds to empty queues.")
  in
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"PRNG seed.") in
  let paced =
    Arg.(value & flag & info [ "paced" ] ~doc:"Spread injections instead of greedy bursts.")
  in
  let series =
    Arg.(value & flag & info [ "series" ] ~doc:"Print the queue-size series as CSV.")
  in
  let trace_n =
    Arg.(
      value & opt int 0
      & info [ "trace" ] ~docv:"N" ~doc:"Print the last N channel events.")
  in
  let csv =
    Arg.(
      value
      & opt (some string) None
      & info [ "csv" ] ~docv:"FILE" ~doc:"Write the summary as CSV to FILE.")
  in
  let json =
    Arg.(value & flag & info [ "json" ] ~doc:"Print the summary as JSON.")
  in
  Term.(
    ret
      (const run_cmd $ algorithm $ n_arg $ k_arg $ rate $ burst $ pattern
       $ rounds $ drain $ seed $ paced $ series $ trace_n $ csv $ json))

(* ---- table1 / figures commands ---- *)

let table1_cmd id quick =
  let scale = if quick then `Quick else `Full in
  let experiments =
    match id with
    | None -> Mac_experiments.Table1.all
    | Some id ->
      (try [ Mac_experiments.Table1.find id ]
       with Not_found ->
         Printf.eprintf "unknown experiment %S\n" id;
         exit 2)
  in
  List.iter
    (fun (e : Mac_experiments.Table1.t) ->
      Printf.printf "--- %s ---\n%s\n" e.id e.claim;
      List.iter
        (fun (o : Mac_experiments.Scenario.outcome) ->
          Printf.printf "%-28s %s %s\n" o.spec.id
            (Mac_sim.Stability.verdict_to_string o.stability.verdict)
            (if o.passed then "PASS" else "FAIL"))
        (e.run ~scale))
    experiments;
  `Ok ()

let figures_cmd id quick =
  let scale = if quick then `Quick else `Full in
  let figures =
    match id with
    | None -> Mac_experiments.Figures.all
    | Some id -> (
      match
        List.find_opt (fun (f : Mac_experiments.Figures.t) -> f.id = id)
          Mac_experiments.Figures.all
      with
      | Some f -> [ f ]
      | None ->
        Printf.eprintf "unknown figure %S\n" id;
        exit 2)
  in
  List.iter
    (fun (f : Mac_experiments.Figures.t) ->
      Printf.printf "--- %s ---\n%s\n" f.id f.title;
      let report, _ = f.run ~scale in
      Mac_sim.Report.print report;
      print_newline ())
    figures;
  `Ok ()

let list_cmd () =
  print_endline "algorithms:";
  List.iter
    (fun name ->
      let a = resolve_algorithm name ~n:8 ~k:3 in
      Printf.printf "  %-14s %s\n" name (Mac_channel.Algorithm.describe a))
    algorithm_names;
  print_endline "table-1 experiments:";
  List.iter
    (fun (e : Mac_experiments.Table1.t) -> Printf.printf "  %-24s %s\n" e.id e.claim)
    Mac_experiments.Table1.all;
  print_endline "figures:";
  List.iter
    (fun (f : Mac_experiments.Figures.t) -> Printf.printf "  %-24s %s\n" f.id f.title)
    Mac_experiments.Figures.all;
  `Ok ()

let id_arg =
  Arg.(value & pos 0 (some string) None & info [] ~docv:"ID" ~doc:"Experiment id.")

let quick_arg =
  Arg.(value & flag & info [ "quick" ] ~doc:"Smaller, faster configurations.")

let cmds =
  [ Cmd.v (Cmd.info "run" ~doc:"Simulate one algorithm/adversary scenario") run_term;
    Cmd.v
      (Cmd.info "table1" ~doc:"Re-run Table-1 validation experiments")
      Term.(ret (const table1_cmd $ id_arg $ quick_arg));
    Cmd.v
      (Cmd.info "figures" ~doc:"Re-run figure sweeps")
      Term.(ret (const figures_cmd $ id_arg $ quick_arg));
    Cmd.v
      (Cmd.info "list" ~doc:"List algorithms and experiments")
      Term.(ret (const list_cmd $ const ())) ]

let () =
  let info =
    Cmd.info "routing_sim" ~version:"1.0.0"
      ~doc:"Energy-efficient adversarial routing on multiple access channels"
  in
  exit (Cmd.eval (Cmd.group ~default:run_term info cmds))
