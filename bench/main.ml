(* The benchmark harness: regenerates every row of the paper's Table 1 and
   the derived figure sweeps (F1-F4), printing measured values against the
   instantiated bounds, then times the simulator itself with Bechamel (one
   Test.make per table row / figure).

   Usage: main.exe [--quick] [table1] [figures] [ablations] [micro]
   With no section arguments, all four run. *)

let fmt = Mac_sim.Report.fmt_float

let check_cell (c : Mac_experiments.Scenario.check) =
  let body =
    if Float.is_finite c.bound then
      Printf.sprintf "%s %s/%s" c.label (fmt c.measured) (fmt c.bound)
    else c.label
  in
  Printf.sprintf "%s[%s]" body (if c.ok then "ok" else "FAIL")

let outcome_row (o : Mac_experiments.Scenario.outcome) =
  let s = o.summary and sp = o.spec in
  [ sp.id;
    string_of_int sp.n;
    string_of_int sp.k;
    fmt sp.rate;
    fmt sp.burst;
    Mac_sim.Stability.verdict_to_string o.stability.verdict;
    string_of_int s.max_total_queue;
    string_of_int (max s.max_delay s.max_queued_age);
    string_of_int s.max_on;
    String.concat " " (List.map check_cell o.checks);
    (if o.passed then "PASS" else "FAIL") ]

(* Machine-readable dump of the Table-1 validation next to the printed
   tables: one JSON object per scenario with its checks and full summary. *)
let check_json (c : Mac_experiments.Scenario.check) =
  Printf.sprintf
    "{\"label\": \"%s\", \"bound\": %s, \"measured\": %s, \"ok\": %b}"
    (Mac_sim.Export.json_escape c.label)
    (if Float.is_finite c.bound then Printf.sprintf "%.6g" c.bound else "null")
    (if Float.is_finite c.measured then Printf.sprintf "%.6g" c.measured
     else "null")
    c.ok

let outcome_json ~experiment (o : Mac_experiments.Scenario.outcome) =
  Printf.sprintf
    "{\"experiment\": \"%s\", \"scenario\": \"%s\", \"verdict\": \"%s\", \
     \"passed\": %b, \"checks\": [%s], \"summary\": %s}"
    (Mac_sim.Export.json_escape experiment)
    (Mac_sim.Export.json_escape o.spec.id)
    (Mac_sim.Stability.verdict_to_string o.stability.verdict)
    o.passed
    (String.concat ", " (List.map check_json o.checks))
    (Mac_sim.Export.summary_json o.summary)

let write_table1_json rows =
  let path = "BENCH_table1.json" in
  let body = "[\n" ^ String.concat ",\n" rows ^ "\n]\n" in
  Mac_sim.Export.write_file ~path body;
  Printf.printf "wrote %s (%d scenarios)\n\n" path (List.length rows)

let print_table1 ~scale =
  print_endline "=== Table 1: per-row empirical validation ===";
  print_newline ();
  let failures = ref 0 in
  let json_rows = ref [] in
  List.iter
    (fun (exp : Mac_experiments.Table1.t) ->
      Printf.printf "--- %s ---\n%s\n" exp.id exp.claim;
      let outcomes = exp.run ~scale () in
      let report =
        Mac_sim.Report.create
          ~header:
            [ "scenario"; "n"; "k"; "rho"; "beta"; "verdict"; "max-q";
              "worst-delay"; "max-on"; "checks"; "status" ]
      in
      List.iter
        (fun o ->
          if not o.Mac_experiments.Scenario.passed then incr failures;
          json_rows := outcome_json ~experiment:exp.id o :: !json_rows;
          Mac_sim.Report.add_row report (outcome_row o))
        outcomes;
      Mac_sim.Report.print report;
      print_newline ())
    Mac_experiments.Table1.all;
  Printf.printf "Table 1 scenarios failing their checks: %d\n" !failures;
  write_table1_json (List.rev !json_rows)

let print_figures ~scale =
  print_endline "=== Figures: sweep series ===";
  print_newline ();
  List.iter
    (fun (fig : Mac_experiments.Figures.t) ->
      Printf.printf "--- %s ---\n%s\n" fig.id fig.title;
      let report, _ = fig.run ~scale () in
      Mac_sim.Report.print report;
      print_newline ())
    Mac_experiments.Figures.all

let print_ablations ~scale =
  print_endline "=== Ablations: the design choices, removed one at a time ===";
  print_newline ();
  List.iter
    (fun (ab : Mac_experiments.Ablations.t) ->
      Printf.printf "--- %s ---\n%s\n" ab.id ab.title;
      let report, _ = ab.run ~scale in
      Mac_sim.Report.print report;
      print_newline ())
    Mac_experiments.Ablations.all

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks: wall-clock cost of simulating each
   configuration for a fixed number of rounds. *)

let sim_test ~name ~algorithm ~n ~k ~rate ~burst ~pattern ~rounds =
  Bechamel.Test.make ~name
    (Bechamel.Staged.stage (fun () ->
         let adversary =
           Mac_adversary.Adversary.create ~rate ~burst (pattern ())
         in
         ignore
           (Mac_sim.Engine.run ~algorithm:(algorithm ()) ~n ~k ~adversary
              ~rounds ())))

let micro_tests () =
  let n = 8 in
  [ sim_test ~name:"T1.orchestra" ~algorithm:(fun () -> (module Mac_routing.Orchestra : Mac_channel.Algorithm.S))
      ~n ~k:3 ~rate:1.0 ~burst:2.0
      ~pattern:(fun () -> Mac_adversary.Pattern.flood ~n ~victim:2)
      ~rounds:4_000;
    sim_test ~name:"T1.count-hop" ~algorithm:(fun () -> (module Mac_routing.Count_hop))
      ~n ~k:2 ~rate:0.8 ~burst:2.0
      ~pattern:(fun () -> Mac_adversary.Pattern.uniform ~n ~seed:1)
      ~rounds:4_000;
    sim_test ~name:"T1.adjust-window"
      ~algorithm:(fun () -> (module Mac_routing.Adjust_window)) ~n:4 ~k:2
      ~rate:0.5 ~burst:2.0
      ~pattern:(fun () -> Mac_adversary.Pattern.uniform ~n:4 ~seed:2)
      ~rounds:4_000;
    sim_test ~name:"T1.k-cycle"
      ~algorithm:(fun () -> Mac_routing.K_cycle.algorithm ~n:12 ~k:4) ~n:12 ~k:4
      ~rate:0.13 ~burst:2.0
      ~pattern:(fun () -> Mac_adversary.Pattern.uniform ~n:12 ~seed:3)
      ~rounds:4_000;
    sim_test ~name:"T1.k-clique"
      ~algorithm:(fun () -> Mac_routing.K_clique.algorithm ~n:12 ~k:4) ~n:12
      ~k:4 ~rate:0.03 ~burst:2.0
      ~pattern:(fun () -> Mac_adversary.Pattern.uniform ~n:12 ~seed:4)
      ~rounds:4_000;
    sim_test ~name:"T1.k-subsets"
      ~algorithm:(fun () -> Mac_routing.K_subsets.algorithm ~n:8 ~k:3 ()) ~n:8
      ~k:3 ~rate:0.1 ~burst:2.0
      ~pattern:(fun () -> Mac_adversary.Pattern.pair_flood ~src:1 ~dst:2)
      ~rounds:4_000;
    sim_test ~name:"F.baseline-pair-tdma"
      ~algorithm:(fun () -> (module Mac_routing.Pair_tdma)) ~n ~k:2 ~rate:0.03
      ~burst:2.0
      ~pattern:(fun () -> Mac_adversary.Pattern.uniform ~n ~seed:5)
      ~rounds:4_000;
    sim_test ~name:"F.substrate-mbtf"
      ~algorithm:(fun () -> (module Mac_broadcast.Mbtf)) ~n ~k:n ~rate:1.0
      ~burst:2.0
      ~pattern:(fun () -> Mac_adversary.Pattern.uniform ~n ~seed:6)
      ~rounds:4_000 ]

let print_micro () =
  print_endline "=== Bechamel micro-benchmarks (4000 simulated rounds each) ===";
  print_newline ();
  let open Bechamel in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instances = Toolkit.Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:50 ~quota:(Time.second 1.0) ~kde:None ~stabilize:true
      ()
  in
  let raw =
    Benchmark.all cfg instances
      (Test.make_grouped ~name:"sim" ~fmt:"%s/%s" (micro_tests ()))
  in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  let report =
    Mac_sim.Report.create
      ~header:[ "benchmark"; "time/4k rounds"; "rounds/s"; "r^2" ]
  in
  let rows = ref [] in
  Hashtbl.iter
    (fun name ols_result ->
      match Analyze.OLS.estimates ols_result with
      | Some (t :: _) ->
        let r2 =
          match Analyze.OLS.r_square ols_result with
          | Some r -> Printf.sprintf "%.3f" r
          | None -> "-"
        in
        rows :=
          ( name,
            [ name; Printf.sprintf "%.2f ms" (t /. 1e6);
              Printf.sprintf "%.0f" (4_000.0 /. (t /. 1e9)); r2 ] )
          :: !rows
      | Some [] | None -> ())
    results;
  List.iter
    (fun (_, row) -> Mac_sim.Report.add_row report row)
    (List.sort compare !rows);
  Mac_sim.Report.print report;
  print_newline ()

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  let quick = List.mem "--quick" args in
  let scale = if quick then `Quick else `Full in
  let sections = List.filter (fun a -> a <> "--quick") args in
  let want s = sections = [] || List.mem s sections in
  Printf.printf
    "Energy Efficient Adversarial Routing in Shared Channels — reproduction \
     harness (%s scale)\n\n"
    (if quick then "quick" else "full");
  if want "table1" then print_table1 ~scale;
  if want "figures" then print_figures ~scale;
  if want "ablations" then print_ablations ~scale;
  if want "micro" then print_micro ()
