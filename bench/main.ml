(* The benchmark harness: regenerates every row of the paper's Table 1 and
   the derived figure sweeps (F1-F4), printing measured values against the
   instantiated bounds, then times the simulator itself with Bechamel (one
   Test.make per table row / figure).

   Usage: main.exe [--quick] [--jobs N] [table1] [matrix] [figures]
          [ablations] [micro] [speed]
   With no section arguments, every section runs. [--jobs N] (default: the
   machine's recommended domain count) fans the experiment suites out over
   a worker pool; results are bit-identical to a sequential run. *)

let fmt = Mac_sim.Report.fmt_float

(* BENCH_*.json always land at the repository root (the directory holding
   dune-project), wherever the harness was launched from — CI archives
   them by that fixed path. Falls back to the cwd outside a checkout. *)
let repo_root =
  lazy
    (let rec up dir =
       if Sys.file_exists (Filename.concat dir "dune-project") then Some dir
       else
         let parent = Filename.dirname dir in
         if parent = dir then None else up parent
     in
     match up (Sys.getcwd ()) with Some d -> d | None -> Sys.getcwd ())

let output_path name = Filename.concat (Lazy.force repo_root) name

let check_cell (c : Mac_experiments.Scenario.check) =
  let body =
    if Float.is_finite c.bound then
      Printf.sprintf "%s %s/%s" c.label (fmt c.measured) (fmt c.bound)
    else c.label
  in
  Printf.sprintf "%s[%s]" body (if c.ok then "ok" else "FAIL")

let outcome_row (o : Mac_experiments.Scenario.outcome) =
  let s = o.summary and sp = o.spec in
  [ sp.id;
    string_of_int sp.n;
    string_of_int sp.k;
    Mac_channel.Qrat.to_string sp.rate;
    Mac_channel.Qrat.to_string sp.burst;
    Mac_sim.Stability.verdict_to_string o.stability.verdict;
    string_of_int s.max_total_queue;
    string_of_int (max s.max_delay s.max_queued_age);
    string_of_int s.max_on;
    String.concat " " (List.map check_cell o.checks);
    (if o.passed then "PASS" else "FAIL") ]

let write_table1_json rows =
  let path = output_path "BENCH_table1.json" in
  let body = "[\n" ^ String.concat ",\n" rows ^ "\n]\n" in
  Mac_sim.Export.write_file ~path body;
  Printf.printf "wrote %s (%d scenarios)\n\n" path (List.length rows)

let print_table1 ~scale ~jobs =
  print_endline "=== Table 1: per-row empirical validation ===";
  print_newline ();
  let failures = ref 0 in
  let json_rows = ref [] in
  List.iter
    (fun (exp : Mac_experiments.Table1.t) ->
      Printf.printf "--- %s ---\n%s\n" exp.id exp.claim;
      let outcomes = exp.run ~jobs ~scale () in
      let report =
        Mac_sim.Report.create
          ~header:
            [ "scenario"; "n"; "k"; "rho"; "beta"; "verdict"; "max-q";
              "worst-delay"; "max-on"; "checks"; "status" ]
      in
      List.iter
        (fun o ->
          if not o.Mac_experiments.Scenario.passed then incr failures;
          json_rows :=
            Mac_experiments.Scenario.outcome_json ~experiment:exp.id o
            :: !json_rows;
          Mac_sim.Report.add_row report (outcome_row o))
        outcomes;
      Mac_sim.Report.print report;
      print_newline ())
    Mac_experiments.Table1.all;
  Printf.printf "Table 1 scenarios failing their checks: %d\n" !failures;
  write_table1_json (List.rev !json_rows)

let write_matrix_json rows =
  let path = output_path "BENCH_matrix.json" in
  let body = "[\n" ^ String.concat ",\n" rows ^ "\n]\n" in
  Mac_sim.Export.write_file ~path body;
  Printf.printf "wrote %s (%d rows)\n\n" path (List.length rows)

let print_matrix ~scale ~jobs =
  print_endline
    "=== Cross-paper matrix: algorithm x adversary x fault plan ===";
  print_newline ();
  let e = Mac_experiments.Matrix.row in
  Printf.printf "--- %s ---\n%s\n" e.id e.claim;
  let json_rows = ref [] in
  let report =
    Mac_sim.Report.create
      ~header:
        [ "cell"; "n"; "k"; "rho"; "beta"; "verdict"; "max-q"; "worst-delay";
          "delivered"; "status" ]
  in
  List.iter
    (fun (o : Mac_experiments.Scenario.outcome) ->
      let s = o.summary and sp = o.spec in
      json_rows :=
        Mac_experiments.Scenario.outcome_json ~experiment:e.id o :: !json_rows;
      Mac_sim.Report.add_row report
        [ sp.id;
          string_of_int sp.n;
          string_of_int sp.k;
          Mac_channel.Qrat.to_string sp.rate;
          Mac_channel.Qrat.to_string sp.burst;
          Mac_sim.Stability.verdict_to_string o.stability.verdict;
          string_of_int s.max_total_queue;
          string_of_int (max s.max_delay s.max_queued_age);
          Printf.sprintf "%d/%d" s.delivered s.injected;
          (if o.passed then "PASS" else "FAIL") ])
    (e.run ~jobs ~scale ());
  Mac_sim.Report.print report;
  print_newline ();
  print_endline "--- stability frontiers (clean channel) ---";
  List.iter
    (fun (label, outcome) ->
      match outcome with
      | Ok f ->
        json_rows :=
          Mac_experiments.Matrix.frontier_json ~label f :: !json_rows;
        Printf.printf "  %-40s %s\n" label
          (Mac_experiments.Matrix.frontier_to_string f)
      | Error err ->
        Printf.printf "  %-40s FAILED %s\n" label
          (Mac_sim.Supervisor.error_to_string err))
    (Mac_experiments.Matrix.thresholds ~jobs ~scale ());
  print_newline ();
  write_matrix_json (List.rev !json_rows)

let print_figures ~scale ~jobs =
  print_endline "=== Figures: sweep series ===";
  print_newline ();
  List.iter
    (fun (fig : Mac_experiments.Figures.t) ->
      Printf.printf "--- %s ---\n%s\n" fig.id fig.title;
      let report, _ = fig.run ~jobs ~scale () in
      Mac_sim.Report.print report;
      print_newline ())
    Mac_experiments.Figures.all

let print_ablations ~scale ~jobs =
  print_endline "=== Ablations: the design choices, removed one at a time ===";
  print_newline ();
  List.iter
    (fun (ab : Mac_experiments.Ablations.t) ->
      Printf.printf "--- %s ---\n%s\n" ab.id ab.title;
      let report, _ = ab.run ~jobs ~scale () in
      Mac_sim.Report.print report;
      print_newline ())
    Mac_experiments.Ablations.all

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks: wall-clock cost of simulating each
   configuration for a fixed number of rounds. *)

type sim_config = {
  name : string;
  algorithm : unit -> Mac_channel.Algorithm.t;
  n : int;
  k : int;
  rate : float;
  burst : float;
  pattern : unit -> Mac_adversary.Pattern.t;
}

let run_config c ~rounds =
  let adversary =
    Mac_adversary.Adversary.create ~rate:c.rate ~burst:c.burst (c.pattern ())
  in
  ignore
    (Mac_sim.Engine.run ~algorithm:(c.algorithm ()) ~n:c.n ~k:c.k ~adversary
       ~rounds ())

let sim_config ~name ~algorithm ~n ~k ~rate ~burst ~pattern =
  { name; algorithm; n; k; rate; burst; pattern }

let sim_configs =
  let n = 8 in
  [ sim_config ~name:"T1.orchestra" ~algorithm:(fun () -> (module Mac_routing.Orchestra : Mac_channel.Algorithm.S))
      ~n ~k:3 ~rate:1.0 ~burst:2.0
      ~pattern:(fun () -> Mac_adversary.Pattern.flood ~n ~victim:2);
    sim_config ~name:"T1.count-hop" ~algorithm:(fun () -> (module Mac_routing.Count_hop))
      ~n ~k:2 ~rate:0.8 ~burst:2.0
      ~pattern:(fun () -> Mac_adversary.Pattern.uniform ~n ~seed:1);
    sim_config ~name:"T1.adjust-window"
      ~algorithm:(fun () -> (module Mac_routing.Adjust_window)) ~n:4 ~k:2
      ~rate:0.5 ~burst:2.0
      ~pattern:(fun () -> Mac_adversary.Pattern.uniform ~n:4 ~seed:2);
    sim_config ~name:"T1.k-cycle"
      ~algorithm:(fun () -> Mac_routing.K_cycle.algorithm ~n:12 ~k:4) ~n:12 ~k:4
      ~rate:0.13 ~burst:2.0
      ~pattern:(fun () -> Mac_adversary.Pattern.uniform ~n:12 ~seed:3);
    sim_config ~name:"T1.k-clique"
      ~algorithm:(fun () -> Mac_routing.K_clique.algorithm ~n:12 ~k:4) ~n:12
      ~k:4 ~rate:0.03 ~burst:2.0
      ~pattern:(fun () -> Mac_adversary.Pattern.uniform ~n:12 ~seed:4);
    sim_config ~name:"T1.k-subsets"
      ~algorithm:(fun () -> Mac_routing.K_subsets.algorithm ~n:8 ~k:3 ()) ~n:8
      ~k:3 ~rate:0.1 ~burst:2.0
      ~pattern:(fun () -> Mac_adversary.Pattern.pair_flood ~src:1 ~dst:2);
    sim_config ~name:"F.baseline-pair-tdma"
      ~algorithm:(fun () -> (module Mac_routing.Pair_tdma)) ~n ~k:2 ~rate:0.03
      ~burst:2.0
      ~pattern:(fun () -> Mac_adversary.Pattern.uniform ~n ~seed:5);
    sim_config ~name:"F.substrate-mbtf"
      ~algorithm:(fun () -> (module Mac_broadcast.Mbtf)) ~n ~k:n ~rate:1.0
      ~burst:2.0
      ~pattern:(fun () -> Mac_adversary.Pattern.uniform ~n ~seed:6) ]

let micro_tests () =
  List.map
    (fun c ->
      Bechamel.Test.make ~name:c.name
        (Bechamel.Staged.stage (fun () -> run_config c ~rounds:4_000)))
    sim_configs

let print_micro () =
  print_endline "=== Bechamel micro-benchmarks (4000 simulated rounds each) ===";
  print_newline ();
  let open Bechamel in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instances = Toolkit.Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:50 ~quota:(Time.second 1.0) ~kde:None ~stabilize:true
      ()
  in
  let raw =
    Benchmark.all cfg instances
      (Test.make_grouped ~name:"sim" ~fmt:"%s/%s" (micro_tests ()))
  in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  let report =
    Mac_sim.Report.create
      ~header:[ "benchmark"; "time/4k rounds"; "rounds/s"; "r^2" ]
  in
  let rows = ref [] in
  Hashtbl.iter
    (fun name ols_result ->
      match Analyze.OLS.estimates ols_result with
      | Some (t :: _) ->
        let r2 =
          match Analyze.OLS.r_square ols_result with
          | Some r -> Printf.sprintf "%.3f" r
          | None -> "-"
        in
        rows :=
          ( name,
            [ name; Printf.sprintf "%.2f ms" (t /. 1e6);
              Printf.sprintf "%.0f" (4_000.0 /. (t /. 1e9)); r2 ] )
          :: !rows
      | Some [] | None -> ())
    results;
  List.iter
    (fun (_, row) -> Mac_sim.Report.add_row report row)
    (List.sort compare !rows);
  Mac_sim.Report.print report;
  print_newline ()


(* ------------------------------------------------------------------ *)
(* Perf-regression section: wall-clock and allocation rate of the raw
   round loop per algorithm, plus the sequential-vs-parallel wall clock
   of a whole Table-1 regeneration. Written to BENCH_perf.json so CI can
   archive the numbers run over run. *)

type loop_sample = {
  sname : string;
  srounds : int;
  seconds : float;
  minor_words_per_round : float;
}

(* Wall-clock timings are noisy (scheduler neighbours, GC phase, turbo
   states): a single sample once reported telemetry overhead at -8.1%.
   Every timing below therefore runs three times and reports the median
   — robust to one outlier in either direction. *)
let median3 f =
  let samples = [| f (); f (); f () |] in
  Array.sort compare samples;
  samples.(1)

let time_config c ~rounds =
  (* Warm-up pass so the first measured run pays no one-time costs. *)
  run_config c ~rounds:(min rounds 1_000);
  let once () =
    let w0 = Gc.minor_words () in
    let t0 = Unix.gettimeofday () in
    run_config c ~rounds;
    let t1 = Unix.gettimeofday () in
    let w1 = Gc.minor_words () in
    (t1 -. t0, (w1 -. w0) /. float_of_int rounds)
  in
  let seconds, minor = median3 once in
  { sname = c.name; srounds = rounds; seconds;
    minor_words_per_round = minor }

let time_table1 ?telemetry ~scale ~jobs () =
  median3 (fun () ->
      let t0 = Unix.gettimeofday () in
      List.iter
        (fun (exp : Mac_experiments.Table1.t) ->
          ignore (exp.run ?telemetry ~jobs ~scale ()))
        Mac_experiments.Table1.all;
      Unix.gettimeofday () -. t0)

let loop_sample_json s =
  Printf.sprintf
    "{\"name\": \"%s\", \"rounds\": %d, \"seconds\": %.6f, \
     \"rounds_per_sec\": %.0f, \"minor_words_per_round\": %.1f}"
    (Mac_sim.Export.json_escape s.sname)
    s.srounds s.seconds
    (float_of_int s.srounds /. s.seconds)
    s.minor_words_per_round

(* ------------------------------------------------------------------ *)
(* Sparse engine: dense vs sparse wall clock on the stable pair-TDMA
   scenario (bit-identical summaries asserted), plus a huge-n
   feasibility row the dense engine cannot reach in reasonable time. *)

let sparse_run ~mode ~n ~rounds =
  let adversary =
    Mac_adversary.Adversary.create_q
      ~rate:(Mac_channel.Qrat.make 3 100)
      ~burst:(Mac_channel.Qrat.of_int 2)
      (Mac_adversary.Pattern.uniform ~n ~seed:5)
  in
  let config = { (Mac_sim.Engine.default_config ~rounds) with mode } in
  Mac_sim.Engine.run ~config
    ~algorithm:(module Mac_routing.Pair_tdma : Mac_channel.Algorithm.S)
    ~n ~k:2 ~adversary ~rounds ()

let time_sparse_run ~mode ~n ~rounds =
  median3 (fun () ->
      let t0 = Unix.gettimeofday () in
      ignore (sparse_run ~mode ~n ~rounds);
      Unix.gettimeofday () -. t0)

type sparse_row = {
  rn : int;
  rrounds : int;
  dense_seconds : float option; (* None: dense not attempted (huge n) *)
  sparse_seconds : float;
  identical : bool option;      (* None when dense was not run *)
}

let sparse_rows ~scale =
  (* The feasibility row is sparse-only and cheap at any scale: n=10^5
     stations, infeasible densely, is ~0.15s sparse. *)
  let pairs, feas_n, feas_rounds =
    match scale with
    | `Quick -> ([ (16, 60_000) ], 100_000, 50_000)
    | `Full -> ([ (16, 400_000); (64, 400_000) ], 100_000, 50_000)
  in
  let compared =
    List.map
      (fun (n, rounds) ->
        let d = sparse_run ~mode:Mac_sim.Engine.Dense ~n ~rounds in
        let s = sparse_run ~mode:Mac_sim.Engine.Sparse ~n ~rounds in
        let identical = Marshal.to_string d [] = Marshal.to_string s [] in
        { rn = n; rrounds = rounds;
          dense_seconds =
            Some (time_sparse_run ~mode:Mac_sim.Engine.Dense ~n ~rounds);
          sparse_seconds = time_sparse_run ~mode:Mac_sim.Engine.Sparse ~n ~rounds;
          identical = Some identical })
      pairs
  in
  compared
  @ [ { rn = feas_n; rrounds = feas_rounds; dense_seconds = None;
        sparse_seconds =
          time_sparse_run ~mode:Mac_sim.Engine.Sparse ~n:feas_n
            ~rounds:feas_rounds;
        identical = None } ]

let sparse_row_json r =
  let dense, speedup =
    match r.dense_seconds with
    | Some d ->
      ( Printf.sprintf "%.6f" d,
        Printf.sprintf "%.2f" (d /. r.sparse_seconds) )
    | None -> ("null", "null")
  in
  Printf.sprintf
    "{\"name\": \"pair-tdma\", \"n\": %d, \"rounds\": %d, \
     \"dense_seconds\": %s, \"sparse_seconds\": %.6f, \
     \"sparse_rounds_per_sec\": %.0f, \"speedup\": %s, \"identical\": %s}"
    r.rn r.rrounds dense r.sparse_seconds
    (float_of_int r.rrounds /. r.sparse_seconds)
    speedup
    (match r.identical with
     | Some true -> "true"
     | Some false -> "false"
     | None -> "null")

let print_sparse_rows rows =
  print_endline "--- sparse engine vs dense (pair-TDMA, stable) ---";
  let report =
    Mac_sim.Report.create
      ~header:
        [ "n"; "rounds"; "dense s"; "sparse s"; "sparse rounds/s"; "speedup";
          "identical" ]
  in
  List.iter
    (fun r ->
      Mac_sim.Report.add_row report
        [ string_of_int r.rn; string_of_int r.rrounds;
          (match r.dense_seconds with
           | Some d -> Printf.sprintf "%.3f" d
           | None -> "-");
          Printf.sprintf "%.3f" r.sparse_seconds;
          Printf.sprintf "%.0f" (float_of_int r.rrounds /. r.sparse_seconds);
          (match r.dense_seconds with
           | Some d -> Printf.sprintf "%.1fx" (d /. r.sparse_seconds)
           | None -> "-");
          (match r.identical with
           | Some b -> string_of_bool b
           | None -> "-") ])
    rows;
  Mac_sim.Report.print report;
  List.iter
    (fun r ->
      match r.identical with
      | Some false ->
        failwith
          (Printf.sprintf
             "sparse/dense summaries differ at n=%d — certification bug" r.rn)
      | _ -> ())
    rows;
  print_newline ()

let print_speed ~scale ~jobs =
  Printf.printf "=== Speed: round-loop and pool throughput (jobs=%d) ===\n\n"
    jobs;
  let rounds = match scale with `Quick -> 50_000 | `Full -> 400_000 in
  let samples = List.map (time_config ~rounds) sim_configs in
  let report =
    Mac_sim.Report.create
      ~header:[ "algorithm"; "rounds"; "seconds"; "rounds/s"; "minor w/round" ]
  in
  List.iter
    (fun s ->
      Mac_sim.Report.add_row report
        [ s.sname; string_of_int s.srounds; Printf.sprintf "%.3f" s.seconds;
          Printf.sprintf "%.0f" (float_of_int s.srounds /. s.seconds);
          Printf.sprintf "%.1f" s.minor_words_per_round ])
    samples;
  Mac_sim.Report.print report;
  print_newline ();
  let sequential = time_table1 ~scale ~jobs:1 () in
  let parallel = time_table1 ~scale ~jobs () in
  let speedup = sequential /. parallel in
  Printf.printf
    "Table 1 wall clock: sequential %.2fs, parallel (jobs=%d) %.2fs, speedup \
     %.2fx\n"
    sequential jobs parallel speedup;
  (* Telemetry cost over the same catalog: probes at the default cadence,
     no exposition files, so this isolates the sampling overhead the
     engine adds (the acceptance bar is <= 5%). *)
  let telemetry_every = 1000 in
  let fleet = Mac_sim.Telemetry.Fleet.create ~every:telemetry_every () in
  let telemetry_seconds = time_table1 ~telemetry:fleet ~scale ~jobs:1 () in
  let overhead_pct =
    if sequential > 0.0 then
      100.0 *. (telemetry_seconds -. sequential) /. sequential
    else 0.0
  in
  Printf.printf
    "Table 1 with telemetry (cadence %d): %.2fs sequential, overhead %+.1f%%\n\n"
    telemetry_every telemetry_seconds overhead_pct;
  let sparse = sparse_rows ~scale in
  print_sparse_rows sparse;
  let body =
    Printf.sprintf
      "{\n  \"scale\": \"%s\",\n  \"jobs\": %d,\n  \"round_loop\": [\n    \
       %s\n  ],\n  \"table1\": {\"jobs\": %d, \"sequential_seconds\": %.3f, \
       \"parallel_seconds\": %.3f, \"speedup\": %.3f},\n  \
       \"telemetry\": {\"every\": %d, \"sequential_seconds\": %.3f, \
       \"overhead_pct\": %.1f},\n  \"sparse\": [\n    %s\n  ]\n}\n"
      (match scale with `Quick -> "quick" | `Full -> "full")
      jobs
      (String.concat ",\n    " (List.map loop_sample_json samples))
      jobs sequential parallel speedup telemetry_every telemetry_seconds
      overhead_pct
      (String.concat ",\n    " (List.map sparse_row_json sparse))
  in
  let path = output_path "BENCH_perf.json" in
  Mac_sim.Export.write_file ~path body;
  Printf.printf "wrote %s\n\n" path

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  let quick = List.mem "--quick" args in
  let scale = if quick then `Quick else `Full in
  let jobs = ref (Mac_sim.Pool.default_jobs ()) in
  let rec strip = function
    | [] -> []
    | "--quick" :: rest -> strip rest
    | "--jobs" :: v :: rest ->
      (match int_of_string_opt v with
       | Some j when j >= 1 -> jobs := j
       | _ -> failwith "bench: --jobs expects a positive integer");
      strip rest
    | "--jobs" :: [] -> failwith "bench: --jobs expects a positive integer"
    | a :: rest -> a :: strip rest
  in
  let sections = strip args in
  let jobs = !jobs in
  let want s = sections = [] || List.mem s sections in
  Printf.printf
    "Energy Efficient Adversarial Routing in Shared Channels — reproduction \
     harness (%s scale, jobs=%d)\n\n"
    (if quick then "quick" else "full")
    jobs;
  if want "table1" then print_table1 ~scale ~jobs;
  if want "matrix" then print_matrix ~scale ~jobs;
  if want "figures" then print_figures ~scale ~jobs;
  if want "ablations" then print_ablations ~scale ~jobs;
  if want "micro" then print_micro ();
  if want "speed" then print_speed ~scale ~jobs
