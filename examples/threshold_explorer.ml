(* Threshold explorer: locate an algorithm's empirical stability frontier by
   bisection and compare it with the theory.

     dune exec examples/threshold_explorer.exe -- [k-cycle|k-clique|k-subsets|pair-tdma]

   For the chosen oblivious algorithm the explorer bisects on the injection
   rate: below the frontier the worst flood stays bounded, above it the
   matching saboteur forces linear queue growth. Eight bisection steps pin
   the frontier to within a percent or two of the Table-1 prediction. *)

let n = 12
let k = 4
let rounds = 120_000

type subject = {
  name : string;
  algorithm : Mac_channel.Algorithm.t;
  lower_bound : float; (* stability guaranteed below (Table 1) *)
  upper_bound : float; (* instability guaranteed above (Table 1) *)
  sk : int;            (* the k the algorithm itself uses *)
}

let subjects =
  [ { name = "k-cycle";
      algorithm = Mac_routing.K_cycle.algorithm ~n ~k;
      (* the implementable frontier (k-1)/n, not the paper's (k-1)/(n-1):
         see EXPERIMENTS.md, T1.k-cycle finding (b) *)
      lower_bound = Mac_experiments.Bounds.k_cycle_rate_impl ~n ~k;
      upper_bound = Mac_experiments.Bounds.oblivious_rate_upper ~n ~k;
      sk = k };
    { name = "k-clique";
      algorithm = Mac_routing.K_clique.algorithm ~n ~k;
      lower_bound = Mac_experiments.Bounds.k_clique_stable_rate ~n ~k;
      upper_bound = Mac_experiments.Bounds.k_subsets_rate ~n ~k;
      sk = k };
    { name = "k-subsets";
      algorithm = Mac_routing.K_subsets.algorithm ~n ~k ();
      lower_bound = Mac_experiments.Bounds.k_subsets_rate ~n ~k;
      upper_bound = Mac_experiments.Bounds.k_subsets_rate ~n ~k;
      sk = k };
    { name = "pair-tdma";
      algorithm = (module Mac_routing.Pair_tdma);
      (* a one-directional flood only uses the pair's own slot: 1/(n(n-1)),
         half of the optimal k = 2 rate *)
      lower_bound = 1.0 /. float_of_int (n * (n - 1));
      upper_bound = 1.0 /. float_of_int (n * (n - 1));
      sk = 2 } ]

let () =
  let name = if Array.length Sys.argv > 1 then Sys.argv.(1) else "k-subsets" in
  let subject =
    match List.find_opt (fun s -> s.name = name) subjects with
    | Some s -> s
    | None ->
      Printf.eprintf "unknown subject %S; one of: %s\n" name
        (String.concat ", " (List.map (fun s -> s.name) subjects));
      exit 2
  in
  Printf.printf "Bisecting the stability frontier of %s (n=%d, k=%d)\n"
    subject.name n subject.sk;
  Printf.printf "Theory: stable below %.4f, unstable above %.4f\n\n%!"
    subject.lower_bound subject.upper_bound;
  (* The hardest legal adversary we know for a rate: the min-co-duty pair
     flood (the Theorem-9 construction, which also stresses indirect
     algorithms hard). *)
  let schedule =
    Option.get
      (Mac_experiments.Scenario.schedule_of subject.algorithm ~n ~k:subject.sk)
  in
  let pattern () =
    (Mac_adversary.Saboteur.min_pair ~n ~horizon:30_000 ~schedule)
      .Mac_adversary.Saboteur.pattern
  in
  let probe =
    Mac_experiments.Sweep.stability_probe ~algorithm:subject.algorithm ~n
      ~k:subject.sk ~pattern ~rounds ()
  in
  let lo, hi =
    Mac_experiments.Sweep.bisect ~steps:8
      ~lo:(0.25 *. subject.lower_bound)
      ~hi:(min 1.0 (3.0 *. subject.upper_bound))
      probe
  in
  Printf.printf
    "Empirical frontier in [%.4f, %.4f]; Table 1 predicts [%.4f, %.4f].\n" lo
    hi subject.lower_bound subject.upper_bound
