(* Sensor fleet: energy-oblivious routing for battery devices.

   Twelve battery-powered sensors share one channel and must survive on a
   supply that can power at most 4 radios at a time. Because radios are
   cheapest when wake-ups are burned into firmware, the dispatch schedule
   must be fixed in advance — exactly the paper's k-energy-oblivious class.

   The fleet compares the three oblivious disciplines at the same offered
   load: pair-TDMA (the naive baseline), k-Clique (direct) and k-Cycle
   (indirect, higher throughput ceiling). It also shows the ceiling itself:
   the same load that k-Cycle absorbs drowns pair-TDMA.

     dune exec examples/sensor_fleet.exe *)

let n = 12
let k = 4
let rounds = 150_000

let run ~algorithm ~rate ~pattern =
  let adversary = Mac_adversary.Adversary.create ~rate ~burst:4.0 pattern in
  Mac_sim.Engine.run ~algorithm ~n ~k ~adversary ~rounds ()

let row name (s : Mac_sim.Metrics.summary) verdict =
  [ name;
    Printf.sprintf "%d/%d" s.delivered s.injected;
    Printf.sprintf "%.0f" s.mean_delay;
    string_of_int (max s.max_delay s.max_queued_age);
    string_of_int s.final_total_queue;
    Printf.sprintf "%.2f" s.mean_on;
    Printf.sprintf "%.1f" (Mac_sim.Metrics.energy_per_delivery s);
    verdict ]

let () =
  (* Telemetry converges on a gateway (station 0): hotspot traffic at 60% of
     k-Cycle's threshold — above what the baselines can take. *)
  let rate = 0.6 *. (float_of_int (k - 1) /. float_of_int (n - 1)) in
  let pattern seed = Mac_adversary.Pattern.hotspot ~n ~seed ~hot:0 ~bias:0.8 in
  let report =
    Mac_sim.Report.create
      ~header:
        [ "discipline"; "delivered"; "mean-delay"; "worst-delay"; "backlog";
          "radios on"; "energy/reading"; "verdict" ]
  in
  let eval name algorithm =
    let s = run ~algorithm ~rate ~pattern:(pattern 13) in
    let v = Mac_sim.Stability.classify s.queue_series in
    Mac_sim.Report.add_row report
      (row name s (Mac_sim.Stability.verdict_to_string v.verdict))
  in
  Printf.printf
    "Sensor fleet: %d sensors, supply for %d radios, gateway-bound telemetry \
     at rate %.3f\n\n" n k rate;
  eval "pair-tdma (baseline)" (module Mac_routing.Pair_tdma);
  eval "k-clique (direct)" (Mac_routing.K_clique.algorithm ~n ~k);
  eval "k-cycle (indirect)" (Mac_routing.K_cycle.algorithm ~n ~k);
  eval "k-subsets (direct, optimal rate)" (Mac_routing.K_subsets.algorithm ~n ~k ());
  Mac_sim.Report.print report;
  Printf.printf
    "\nThresholds at n=%d, k=%d: pair-tdma %.4f | k-clique %.4f | k-subsets \
     %.4f | k-cycle %.4f\n"
    n k
    (2.0 /. float_of_int (n * (n - 1)))
    (Mac_experiments.Bounds.k_clique_stable_rate ~n ~k)
    (Mac_experiments.Bounds.k_subsets_rate ~n ~k)
    (Mac_experiments.Bounds.k_cycle_rate ~n ~k);
  print_endline
    "k-Cycle relays hop readings from group to group, so its stable region\n\
     is an order of magnitude wider than any direct oblivious schedule."
