(* Office LAN: the energy-efficient-Ethernet motivation of the paper's
   introduction.

   A ten-machine office LAN is mostly idle but sees a sharp morning burst
   (everyone syncs at 9am) and a steady trickle of background traffic. The
   legacy deployment keeps every NIC awake (RRW broadcast, energy n per
   round). The paper's cap-2 universal algorithms — Count-Hop and
   Adjust-Window — deliver the same traffic with at most two interfaces
   powered, trading latency for a 5x energy cut.

     dune exec examples/office_lan.exe *)

let n = 10

(* Adjust-Window's first window at n = 10 alone spans ~324k rounds (its
   latency constant is Θ(n³lg²n)); a working day is several windows. *)
let rounds = 700_000

let scenario algorithm ~k ~seed =
  (* Daytime traffic towards the file server (station 0) in busy stretches
     separated by idle gaps; each stretch starts with the leaky bucket's
     accumulated burst, plus one big "9am sync" spike at the start of the
     stretch beginning at round 31.5k. *)
  let pattern =
    Mac_adversary.Pattern.duty_cycle ~busy:3_000 ~idle:1_500
      (Mac_adversary.Pattern.hotspot ~n ~seed ~hot:0 ~bias:0.3)
  in
  let adversary =
    Mac_adversary.Adversary.create ~rate:0.35 ~burst:400.0
      ~pacing:(Mac_adversary.Adversary.Paced { burst_at = Some 31_500 })
      pattern
  in
  let config =
    { (Mac_sim.Engine.default_config ~rounds) with drain_limit = 450_000 }
  in
  Mac_sim.Engine.run ~config ~algorithm ~n ~k ~adversary ~rounds ()

let () =
  let runs =
    [ ("always-on broadcast (RRW)", scenario (module Mac_broadcast.Rrw) ~k:n ~seed:7);
      ("count-hop (cap 2)", scenario (module Mac_routing.Count_hop) ~k:2 ~seed:7);
      ("adjust-window (cap 2, plain packets)",
       scenario (module Mac_routing.Adjust_window) ~k:2 ~seed:7) ]
  in
  let report =
    Mac_sim.Report.create
      ~header:
        [ "deployment"; "delivered"; "mean-delay"; "p99-delay"; "max-delay";
          "mean NICs on"; "energy/packet"; "burst backlog" ]
  in
  List.iter
    (fun (name, (s : Mac_sim.Metrics.summary)) ->
      Mac_sim.Report.add_row report
        [ name;
          Printf.sprintf "%d/%d" s.delivered s.injected;
          Printf.sprintf "%.0f" s.mean_delay;
          string_of_int s.p99_delay;
          string_of_int s.max_delay;
          Printf.sprintf "%.2f" s.mean_on;
          Printf.sprintf "%.1f" (Mac_sim.Metrics.energy_per_delivery s);
          string_of_int s.max_total_queue ])
    runs;
  print_endline
    "Office LAN, 10 machines, background traffic + one morning sync burst:";
  Mac_sim.Report.print report;
  print_endline
    "\nThe cap-2 algorithms carry the same traffic at a fifth of the energy.\n\
     Count-Hop keeps delays in the hundreds of rounds; Adjust-Window is the\n\
     most frugal of all (its idle stages leave even the two allowed NICs\n\
     dark) and uses plain packets only, but pays with window-sized delays —\n\
     the latency-energy tradeoff of the paper's Section 7 in one table."
