(* Quickstart: simulate the paper's headline result.

   Ten stations share an Ethernet-like channel. The adversary injects one
   packet every round — the channel's absolute capacity — and dumps them all
   into a single unlucky station. Orchestra keeps at most three stations
   powered at any instant and still never lets queues grow.

     dune exec examples/quickstart.exe *)

let () =
  let n = 10 in
  let adversary =
    Mac_adversary.Adversary.create ~rate:1.0 ~burst:4.0
      (Mac_adversary.Pattern.flood ~n ~victim:3)
  in
  let summary =
    Mac_sim.Engine.run
      ~algorithm:(module Mac_routing.Orchestra)
      ~n ~k:3 ~adversary ~rounds:100_000 ()
  in
  Format.printf "%a@.@." Mac_sim.Metrics.pp_summary summary;
  let verdict = Mac_sim.Stability.classify summary.queue_series in
  Format.printf "stability: %a@." Mac_sim.Stability.pp_report verdict;
  Format.printf
    "Theorem 1 queue bound 2n^3+beta = %.0f, measured max backlog = %d@."
    (2.0 *. float_of_int (n * n * n) +. 4.0)
    summary.max_total_queue;
  Format.printf "Energy: never more than %d of %d stations on (cap 3).@."
    summary.max_on n
