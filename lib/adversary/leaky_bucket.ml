open Mac_channel

type t = {
  rate : Qrat.t;
  burst : Qrat.t;
  cap : Qrat.t; (* rate + burst, the clamp *)
  mutable tokens : Qrat.t;
}

let create_q ~rate ~burst =
  if not (Qrat.sign rate > 0 && Qrat.compare rate Qrat.one <= 0) then
    invalid_arg "Leaky_bucket: rate must be in (0, 1]";
  if Qrat.compare burst Qrat.one < 0 then
    invalid_arg "Leaky_bucket: burst must be >= 1";
  let cap = Qrat.add rate burst in
  { rate; burst; cap; tokens = cap }

let create ~rate ~burst =
  (* Snap the floats to the simplest rationals denoting them; validation
     happens on the exact values so the error messages stay identical. *)
  if not (Float.is_finite rate) then invalid_arg "Leaky_bucket: rate must be in (0, 1]";
  if not (Float.is_finite burst) then invalid_arg "Leaky_bucket: burst must be >= 1";
  create_q ~rate:(Qrat.of_float rate) ~burst:(Qrat.of_float burst)

let rate_q t = t.rate
let burst_q t = t.burst
let rate t = Qrat.to_float t.rate
let burst t = Qrat.to_float t.burst

let tokens t = t.tokens

let set_tokens t v =
  if Qrat.sign v < 0 || Qrat.compare v t.cap > 0 then
    invalid_arg "Leaky_bucket.set_tokens: out of [0, rate+burst]";
  t.tokens <- v

let grant t = Qrat.floor t.tokens

let consume t count =
  if count < 0 || count > grant t then invalid_arg "Leaky_bucket.consume";
  t.tokens <- Qrat.sub t.tokens (Qrat.of_int count)

let advance t = t.tokens <- Qrat.min t.cap (Qrat.add t.tokens t.rate)

(* min cap (tokens + m*rate) equals m chained [advance]s with no spending in
   between: once the level clamps at cap it stays there (rate > 0), and
   below the clamp the additions telescope. Qrat keeps every value in
   canonical form, so the closed form is bit-identical to the iteration. *)
let skip t ~rounds =
  if rounds < 0 then invalid_arg "Leaky_bucket.skip: negative rounds";
  if rounds > 0 then
    t.tokens <- Qrat.min t.cap (Qrat.add t.tokens (Qrat.mul_int t.rate rounds))
