type t = {
  rate : float;
  burst : float;
  mutable tokens : float;
}

let create ~rate ~burst =
  if not (rate > 0.0 && rate <= 1.0) then invalid_arg "Leaky_bucket: rate must be in (0, 1]";
  if not (burst >= 1.0) then invalid_arg "Leaky_bucket: burst must be >= 1";
  { rate; burst; tokens = rate +. burst }

let rate t = t.rate

let burst t = t.burst

let grant t = int_of_float (floor t.tokens)

let consume t count =
  if count < 0 || count > grant t then invalid_arg "Leaky_bucket.consume";
  t.tokens <- t.tokens -. float_of_int count

let advance t = t.tokens <- Float.min (t.rate +. t.burst) (t.tokens +. t.rate)
