type choice = {
  pattern : Pattern.t;
  description : string;
}

let duty_counts ~n ~horizon ~schedule =
  let duty = Array.make n 0 in
  for t = 0 to horizon - 1 do
    for i = 0 to n - 1 do
      if schedule ~me:i ~round:t then duty.(i) <- duty.(i) + 1
    done
  done;
  duty

let min_duty ~n ~horizon ~schedule =
  let duty = duty_counts ~n ~horizon ~schedule in
  let victim = ref 0 in
  for i = 1 to n - 1 do
    if duty.(i) < duty.(!victim) then victim := i
  done;
  { pattern = Pattern.flood ~n ~victim:!victim;
    description =
      Printf.sprintf "min-duty victim %d (on %d/%d rounds)" !victim duty.(!victim) horizon }

let min_pair ~n ~horizon ~schedule =
  (* Count co-on rounds for unordered pairs, then flood the minimum. *)
  let co = Array.make_matrix n n 0 in
  let on = Array.make n false in
  for t = 0 to horizon - 1 do
    for i = 0 to n - 1 do
      on.(i) <- schedule ~me:i ~round:t
    done;
    for i = 0 to n - 1 do
      if on.(i) then
        for j = i + 1 to n - 1 do
          if on.(j) then co.(i).(j) <- co.(i).(j) + 1
        done
    done
  done;
  let best = ref (0, 1) in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      let bi, bj = !best in
      if co.(i).(j) < co.(bi).(bj) then best := (i, j)
    done
  done;
  let w, z = !best in
  { pattern = Pattern.pair_flood ~src:w ~dst:z;
    description =
      Printf.sprintf "min-co-duty pair (%d,%d) (co-on %d/%d rounds)" w z co.(w).(z) horizon }

let cap2_breaker ~n =
  if n < 3 then invalid_arg "Saboteur.cap2_breaker: needs n >= 3";
  (* Witness station s: currently clean (empty queue, nothing addressed to
     it) and believed off. Helpers s1 (injection target) and s2 (packet
     destination) are the two smallest stations different from s. *)
  let s = ref (n - 1) in
  let helpers exclude =
    let rec pick acc candidate count =
      if count = 2 then List.rev acc
      else if candidate = exclude then pick acc (candidate + 1) count
      else pick (candidate :: acc) (candidate + 1) (count + 1)
    in
    match pick [] 0 0 with
    | [ a; b ] -> (a, b)
    | _ -> assert false
  in
  let gen ~round:_ ~budget ~view:(view : View.t) =
    (* If the witness woke up, re-choose a clean off station as witness. *)
    if view.was_on !s then begin
      let candidate = ref (-1) in
      for i = n - 1 downto 0 do
        if view.queue_size i = 0 && view.queued_to i = 0 && not (view.was_on i)
        then candidate := i
      done;
      if !candidate >= 0 then s := !candidate
      (* else: every clean station was on; keep s, the round is already
         wasted for the algorithm. *)
    end;
    let s1, s2 = helpers !s in
    List.init budget (fun _ -> (s1, s2))
  in
  let save () = string_of_int !s in
  let load st =
    match int_of_string_opt st with
    | Some v when v >= 0 && v < n -> s := v
    | _ -> invalid_arg "Saboteur.cap2_breaker: bad witness state"
  in
  { pattern = Pattern.make ~save ~load ~name:"cap2-breaker" gen;
    description = "adaptive Lemma-1 witness strategy" }
