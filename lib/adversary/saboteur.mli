(** Executable versions of the paper's impossibility-proof adversaries.

    Each lower bound in the paper is proved by constructing an injection
    strategy a routing algorithm cannot absorb; these builders turn those
    constructions into runnable {!Pattern.t} values.

    - Theorem 6 (no k-energy-oblivious algorithm is stable for ρ > k/n):
      by double counting, some station is switched on for at most k·t/n of
      any t rounds. Because the schedule of an oblivious algorithm is known
      in advance, [min_duty] finds that station over a horizon and floods it.

    - Theorem 9 (no oblivious *direct* algorithm is stable for
      ρ > k(k−1)/(n(n−1))): some ordered pair (w, z) is simultaneously on
      for at most k(k−1)/(n(n−1)) of the rounds; [min_pair] finds it and
      injects packets into w destined to z only.

    - Theorem 2 / Lemma 1 (no cap-2 algorithm is stable at ρ = 1): the proof
      splits executions on whether a chosen switched-off clean station s ever
      wakes; [cap2_breaker] plays the adaptive strategy online: it keeps a
      clean witness station s, injects one packet per round into a helper
      station destined away from s, and re-chooses the witness whenever s
      switches on (each such wake-up forfeits a delivery opportunity). *)

type choice = {
  pattern : Pattern.t;
  description : string;  (** the concrete victim chosen, for reports *)
}

val min_duty :
  n:int -> horizon:int -> schedule:(me:int -> round:int -> bool) -> choice
(** Flood the station with the fewest on-rounds in [0, horizon). *)

val min_pair :
  n:int -> horizon:int -> schedule:(me:int -> round:int -> bool) -> choice
(** Pair-flood the ordered pair (w, z) with the fewest co-on rounds. *)

val cap2_breaker : n:int -> choice
(** The adaptive Lemma-1 strategy. Requires [n >= 3]. *)
