type t = {
  n : int;
  mutable round : int;
  queue_size : int -> int;
  queued_to : int -> int;
  total_queued : unit -> int;
  was_on : int -> bool;
}

let dummy ~n =
  { n; round = 0;
    queue_size = (fun _ -> 0);
    queued_to = (fun _ -> 0);
    total_queued = (fun () -> 0);
    was_on = (fun _ -> false) }
