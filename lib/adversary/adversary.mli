(** A leaky-bucket adversary: a (ρ, β) type, a pacing discipline, and an
    injection pattern.

    Rates and bursts are exact rationals ({!Mac_channel.Qrat}); pacing and
    admission arithmetic never round, so the injection schedule is the
    paper's recurrence for every ρ, dyadic or not.

    Pacing decides how eagerly the adversary spends its bucket:
    - [Greedy] injects the full grant every round — an initial burst of
      ⌊ρ + β⌋ packets, then a sustained ρ per round. This is the worst case
      for most bounds.
    - [Paced] injects ⌊ρ·(t+1)⌋ − ⌊ρ·t⌋ packets in round t, holding the β
      reserve, optionally dumping ⌊β⌋ extra packets in round [burst_at]
      (stress-testing burst absorption mid-execution).

    A [driver] is the stateful per-run instance; the same adversary value can
    drive many runs deterministically. *)

type pacing =
  | Greedy
  | Paced of { burst_at : int option }

type t = {
  name : string;
  rate : Mac_channel.Qrat.t;
  burst : Mac_channel.Qrat.t;
  pacing : pacing;
  pattern : Pattern.t;
}

val create_q :
  ?name:string ->
  rate:Mac_channel.Qrat.t ->
  burst:Mac_channel.Qrat.t ->
  ?pacing:pacing ->
  Pattern.t ->
  t
(** Default pacing is [Greedy]. The default name combines the pattern name
    and the type (formatted via floats, e.g. ["uniform@(0.5,2)"]). *)

val create :
  ?name:string -> rate:float -> burst:float -> ?pacing:pacing -> Pattern.t -> t
(** Deprecated float shim over {!create_q}: arguments are snapped to the
    simplest rationals denoting them ({!Mac_channel.Qrat.of_float}), so
    [~rate:0.1] means exactly 1/10. *)

type driver

val start : t -> driver

val spec : driver -> t

val tokens : driver -> Mac_channel.Qrat.t
(** Current bucket level — read-only, for telemetry gauges. *)

type driver_state = {
  tokens : Mac_channel.Qrat.t;
  injected_total : int;
  pattern_state : string;
}
(** A pure-data snapshot of a driver's mutable run state: exact bucket level,
    injection count, and the pattern's serialised cursor. *)

val save_driver : driver -> driver_state
(** Capture the driver's state at a round boundary. *)

val restore_driver : driver -> driver_state -> unit
(** Restore state captured by {!save_driver} onto a freshly started driver of
    the same spec. Raises [Invalid_argument] on a mismatched snapshot. *)

val next_admission : driver -> round:int -> int
(** [next_admission d ~round] is the earliest round [>= round] at which
    {!inject} could admit a packet, assuming one [inject] per round and no
    admissions in between (quiet rounds only refill the bucket). Exact for
    both pacing disciplines: the bucket's climb to one token and the paced
    discipline's next non-zero allowance (including a pending [burst_at])
    are solved in closed form. Never later than the true next admission, so
    the engine may safely skip every round strictly before it. *)

val skip_rounds : driver -> rounds:int -> unit
(** [skip_rounds d ~rounds] advances the driver past [rounds] quiet rounds
    in O(1), bit-identically to calling {!inject} that many times on rounds
    admitting nothing: the bucket refills, the pattern is never consulted,
    counters are untouched. Sound only for rounds strictly before
    {!next_admission}. *)

val inject : driver -> view:View.t -> (int * int) list
(** Injections for the round described by [view] (uses [view.round]); also
    advances the bucket. The returned pairs always satisfy the leaky-bucket
    constraint and [src <> dst]. Proposed pairs violating [src <> dst] are
    dropped (and the tokens not spent). *)
