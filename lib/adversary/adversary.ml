type pacing =
  | Greedy
  | Paced of { burst_at : int option }

type t = {
  name : string;
  rate : float;
  burst : float;
  pacing : pacing;
  pattern : Pattern.t;
}

let create ?name ~rate ~burst ?(pacing = Greedy) pattern =
  let name =
    match name with
    | Some s -> s
    | None -> Printf.sprintf "%s@(%.3g,%.3g)" pattern.Pattern.name rate burst
  in
  { name; rate; burst; pacing; pattern }

type driver = {
  spec : t;
  bucket : Leaky_bucket.t;
  mutable injected_total : int;
}

let start spec =
  { spec; bucket = Leaky_bucket.create ~rate:spec.rate ~burst:spec.burst;
    injected_total = 0 }

let spec d = d.spec

(* Number of packets the pacing discipline wants to inject this round,
   before bucket capping. *)
let desired d ~round =
  match d.spec.pacing with
  | Greedy -> max_int
  | Paced { burst_at } ->
    let r = d.spec.rate in
    let steady =
      int_of_float (floor (r *. float_of_int (round + 1)))
      - int_of_float (floor (r *. float_of_int round))
    in
    let extra =
      match burst_at with
      | Some b when b = round -> int_of_float (floor d.spec.burst)
      | _ -> 0
    in
    steady + extra

let inject d ~view =
  let round = view.View.round in
  let budget = min (Leaky_bucket.grant d.bucket) (desired d ~round) in
  let proposed =
    if budget <= 0 then []
    else d.spec.pattern.Pattern.generate ~round ~budget ~view
  in
  let injections =
    List.filteri (fun i (src, dst) -> i < budget && src <> dst) proposed
  in
  Leaky_bucket.consume d.bucket (List.length injections);
  Leaky_bucket.advance d.bucket;
  d.injected_total <- d.injected_total + List.length injections;
  injections
