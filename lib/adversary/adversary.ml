open Mac_channel

type pacing =
  | Greedy
  | Paced of { burst_at : int option }

type t = {
  name : string;
  rate : Qrat.t;
  burst : Qrat.t;
  pacing : pacing;
  pattern : Pattern.t;
}

let create_q ?name ~rate ~burst ?(pacing = Greedy) pattern =
  let name =
    match name with
    | Some s -> s
    | None ->
      Printf.sprintf "%s@(%.3g,%.3g)" pattern.Pattern.name (Qrat.to_float rate)
        (Qrat.to_float burst)
  in
  { name; rate; burst; pacing; pattern }

let create ?name ~rate ~burst ?pacing pattern =
  create_q ?name ~rate:(Qrat.of_float rate) ~burst:(Qrat.of_float burst) ?pacing
    pattern

type driver = {
  spec : t;
  bucket : Leaky_bucket.t;
  mutable injected_total : int;
}

let start spec =
  { spec; bucket = Leaky_bucket.create_q ~rate:spec.rate ~burst:spec.burst;
    injected_total = 0 }

let spec d = d.spec

let tokens d = Leaky_bucket.tokens d.bucket

type driver_state = {
  tokens : Qrat.t;
  injected_total : int;
  pattern_state : string;
}

let save_driver d =
  { tokens = Leaky_bucket.tokens d.bucket;
    injected_total = d.injected_total;
    pattern_state = d.spec.pattern.Pattern.save () }

let restore_driver d st =
  Leaky_bucket.set_tokens d.bucket st.tokens;
  d.injected_total <- st.injected_total;
  d.spec.pattern.Pattern.load st.pattern_state

(* Number of packets the pacing discipline wants to inject this round,
   before bucket capping. *)
let desired d ~round =
  match d.spec.pacing with
  | Greedy -> max_int
  | Paced { burst_at } ->
    let r = d.spec.rate in
    let steady =
      Qrat.floor (Qrat.mul_int r (round + 1)) - Qrat.floor (Qrat.mul_int r round)
    in
    let extra =
      match burst_at with
      | Some b when b = round -> Qrat.floor d.spec.burst
      | _ -> 0
    in
    steady + extra

let ceil_div a b = ((a + b) - 1) / b (* positive operands *)

(* Earliest round >= round at which [inject] could return a non-empty list,
   assuming one [inject] per round and no admissions in between (each quiet
   round only refills the bucket) — exactly the skip-ahead situation. The
   answer is exact for both pacing disciplines; the pattern may still
   decline its budget, which merely costs one concrete round. *)
let next_admission d ~round =
  let r = d.spec.rate in
  (* Rounds until the bucket grants a token: m = ceil((1 - tokens)/rate),
     0 if it already does. The cap (rate + burst >= rate + 1) never blocks
     the climb to 1. *)
  let tokens = Leaky_bucket.tokens d.bucket in
  let to_grant =
    if Qrat.compare tokens Qrat.one >= 0 then 0
    else
      let deficit = Qrat.sub Qrat.one tokens in
      ceil_div (Qrat.num deficit * Qrat.den r) (Qrat.den deficit * Qrat.num r)
  in
  let tg = round + to_grant in
  match d.spec.pacing with
  | Greedy -> tg
  | Paced { burst_at } ->
    (* First t >= tg with floor(r*(t+1)) - floor(r*t) >= 1. With
       v = floor(r*tg), that is the first t with r*(t+1) >= v + 1: the
       steady allowance stays 0 while r*(t+1) < v + 1 (both floors stuck
       at v) and reaches 1 the round the product crosses. *)
    let v = Qrat.floor (Qrat.mul_int r tg) in
    let t1 = ceil_div ((v + 1) * Qrat.den r) (Qrat.num r) - 1 in
    (match burst_at with
     | Some b when b >= tg && b < t1 && Qrat.floor d.spec.burst > 0 -> b
     | _ -> t1)

(* Bit-identical to [rounds] calls to [inject] on rounds where the budget is
   zero: the pattern is never consulted, nothing is consumed, the bucket
   advances. Callers must ensure the skipped rounds really admit nothing
   (see [next_admission]). *)
let skip_rounds d ~rounds = Leaky_bucket.skip d.bucket ~rounds

let inject d ~view =
  let round = view.View.round in
  let budget = min (Leaky_bucket.grant d.bucket) (desired d ~round) in
  let proposed =
    if budget <= 0 then []
    else d.spec.pattern.Pattern.generate ~round ~budget ~view
  in
  let injections =
    List.filteri (fun i (src, dst) -> i < budget && src <> dst) proposed
  in
  Leaky_bucket.consume d.bucket (List.length injections);
  Leaky_bucket.advance d.bucket;
  d.injected_total <- d.injected_total + List.length injections;
  injections
