(** The adversary's view of the system.

    The adversarial model is omniscient: the adversary sees queue contents
    and which stations were switched on. Accessors are closures supplied by
    the engine and computed lazily, so cheap adversaries pay nothing. The
    view describes the state at the *start* of the current round, before this
    round's injections. *)

type t = {
  n : int;
  mutable round : int;
      (** the current round. Mutable so the engine can allocate one view for
          the whole run and advance it in place each round; patterns must
          read it afresh on every [generate] call, never retain it. *)
  queue_size : int -> int;    (** current queue length of a station *)
  queued_to : int -> int;     (** packets queued anywhere destined to a station *)
  total_queued : unit -> int; (** packets queued in the whole system *)
  was_on : int -> bool;       (** whether a station was switched on last round *)
}

val dummy : n:int -> t
(** A view of an empty, all-off system (for unit-testing patterns). *)
