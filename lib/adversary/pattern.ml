type t = {
  name : string;
  generate : round:int -> budget:int -> view:View.t -> (int * int) list;
}

let make ~name generate = { name; generate }

(* Builds a list of [budget] pairs from an indexed generator. *)
let tabulate budget f = List.init budget f

let uniform ~n ~seed =
  let rng = Mac_channel.Rng.create ~seed in
  let gen ~round:_ ~budget ~view:_ =
    tabulate budget (fun _ ->
        let src = Mac_channel.Rng.int rng n in
        let d = Mac_channel.Rng.int rng (n - 1) in
        let dst = if d >= src then d + 1 else d in
        (src, dst))
  in
  make ~name:(Printf.sprintf "uniform(seed=%d)" seed) gen

let flood ~n ~victim =
  let counter = ref 0 in
  let gen ~round:_ ~budget ~view:_ =
    tabulate budget (fun _ ->
        let d = !counter mod (n - 1) in
        incr counter;
        let dst = if d >= victim then d + 1 else d in
        (victim, dst))
  in
  make ~name:(Printf.sprintf "flood(victim=%d)" victim) gen

let pair_flood ~src ~dst =
  if src = dst then invalid_arg "Pattern.pair_flood: src = dst";
  let gen ~round:_ ~budget ~view:_ = tabulate budget (fun _ -> (src, dst)) in
  make ~name:(Printf.sprintf "pair-flood(%d->%d)" src dst) gen

let round_robin ~n =
  let counter = ref 0 in
  let gen ~round:_ ~budget ~view:_ =
    tabulate budget (fun _ ->
        let src = !counter mod n in
        incr counter;
        (src, (src + 1) mod n))
  in
  make ~name:"round-robin" gen

let hotspot ~n ~seed ~hot ~bias =
  if not (bias >= 0.0 && bias <= 1.0) then invalid_arg "Pattern.hotspot: bias";
  let rng = Mac_channel.Rng.create ~seed in
  let gen ~round:_ ~budget ~view:_ =
    tabulate budget (fun _ ->
        let dst =
          if Mac_channel.Rng.float rng 1.0 < bias then hot
          else Mac_channel.Rng.int rng n
        in
        let s = Mac_channel.Rng.int rng (n - 1) in
        let src = if s >= dst then s + 1 else s in
        (src, dst))
  in
  make ~name:(Printf.sprintf "hotspot(hot=%d,bias=%.2f)" hot bias) gen

let alternating ~src ~dst_odd ~dst_even =
  if src = dst_odd || src = dst_even then invalid_arg "Pattern.alternating";
  let gen ~round ~budget ~view:_ =
    let dst = if round mod 2 = 1 then dst_odd else dst_even in
    tabulate budget (fun _ -> (src, dst))
  in
  make ~name:(Printf.sprintf "alternating(%d->%d|%d)" src dst_odd dst_even) gen

let mix ~seed weighted =
  if weighted = [] then invalid_arg "Pattern.mix: empty";
  List.iter (fun (w, _) -> if w <= 0 then invalid_arg "Pattern.mix: weight") weighted;
  let total = List.fold_left (fun acc (w, _) -> acc + w) 0 weighted in
  let rng = Mac_channel.Rng.create ~seed in
  let pick () =
    let roll = Mac_channel.Rng.int rng total in
    let rec go acc = function
      | [] -> assert false
      | (w, p) :: rest -> if roll < acc + w then p else go (acc + w) rest
    in
    go 0 weighted
  in
  let gen ~round ~budget ~view =
    List.concat_map
      (fun _ ->
        let p = pick () in
        match p.generate ~round ~budget:1 ~view with
        | pair :: _ -> [ pair ]
        | [] -> [])
      (List.init budget (fun i -> i))
  in
  make ~name:"mix" gen

let duty_cycle ~busy ~idle inner =
  if busy <= 0 || idle < 0 then invalid_arg "Pattern.duty_cycle";
  let period = busy + idle in
  let gen ~round ~budget ~view =
    if round mod period < busy then inner.generate ~round ~budget ~view else []
  in
  make ~name:(Printf.sprintf "duty(%d/%d,%s)" busy period inner.name) gen

let one_shot ~at ~src ~dst =
  if src = dst then invalid_arg "Pattern.one_shot: src = dst";
  let fired = ref false in
  let gen ~round ~budget ~view:_ =
    if round >= at && budget > 0 && not !fired then begin
      fired := true;
      [ (src, dst) ]
    end
    else []
  in
  make ~name:(Printf.sprintf "one-shot(%d->%d@%d)" src dst at) gen

let to_busiest ~n =
  let counter = ref 0 in
  let gen ~round:_ ~budget ~view:(view : View.t) =
    let busiest = ref 0 in
    for i = 1 to n - 1 do
      if view.queue_size i > view.queue_size !busiest then busiest := i
    done;
    tabulate budget (fun _ ->
        let d = !counter mod (n - 1) in
        incr counter;
        let dst = if d >= !busiest then d + 1 else d in
        (!busiest, dst))
  in
  make ~name:"to-busiest" gen
