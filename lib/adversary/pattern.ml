type t = {
  name : string;
  generate : round:int -> budget:int -> view:View.t -> (int * int) list;
  save : unit -> string;
  load : string -> unit;
}

let make ?save ?load ~name generate =
  let save = match save with Some f -> f | None -> fun () -> "" in
  let load =
    match load with
    | Some f -> f
    | None ->
      fun s ->
        if s <> "" then
          invalid_arg
            (Printf.sprintf
               "Pattern.load: %s is stateless but was given state %S" name s)
  in
  { name; generate; save; load }

(* Checkpoint encodings are length-prefixed concatenations so composite
   patterns (mix, duty_cycle) can nest inner states without escaping. *)
let cat parts =
  String.concat ""
    (List.map (fun s -> string_of_int (String.length s) ^ ":" ^ s) parts)

let uncat s =
  let n = String.length s in
  let rec go i acc =
    if i >= n then List.rev acc
    else
      match String.index_from_opt s i ':' with
      | None -> invalid_arg "Pattern.load: malformed state"
      | Some j ->
        let len =
          match int_of_string_opt (String.sub s i (j - i)) with
          | Some l when l >= 0 && j + 1 + l <= n -> l
          | _ -> invalid_arg "Pattern.load: malformed state"
        in
        go (j + 1 + len) (String.sub s (j + 1) len :: acc)
  in
  go 0 []

let rng_save rng () = Int64.to_string (Mac_channel.Rng.state rng)

let rng_load rng s =
  match Int64.of_string_opt s with
  | Some v -> Mac_channel.Rng.set_state rng v
  | None -> invalid_arg "Pattern.load: bad rng state"

let counter_save c () = string_of_int !c

let counter_load c s =
  match int_of_string_opt s with
  | Some v -> c := v
  | None -> invalid_arg "Pattern.load: bad counter state"

(* Builds a list of [budget] pairs from an indexed generator. *)
let tabulate budget f = List.init budget f

let uniform ~n ~seed =
  let rng = Mac_channel.Rng.create ~seed in
  let gen ~round:_ ~budget ~view:_ =
    tabulate budget (fun _ ->
        let src = Mac_channel.Rng.int rng n in
        let d = Mac_channel.Rng.int rng (n - 1) in
        let dst = if d >= src then d + 1 else d in
        (src, dst))
  in
  make ~save:(rng_save rng) ~load:(rng_load rng)
    ~name:(Printf.sprintf "uniform(seed=%d)" seed) gen

let flood ~n ~victim =
  let counter = ref 0 in
  let gen ~round:_ ~budget ~view:_ =
    tabulate budget (fun _ ->
        let d = !counter mod (n - 1) in
        incr counter;
        let dst = if d >= victim then d + 1 else d in
        (victim, dst))
  in
  make ~save:(counter_save counter) ~load:(counter_load counter)
    ~name:(Printf.sprintf "flood(victim=%d)" victim) gen

let pair_flood ~src ~dst =
  if src = dst then invalid_arg "Pattern.pair_flood: src = dst";
  let gen ~round:_ ~budget ~view:_ = tabulate budget (fun _ -> (src, dst)) in
  make ~name:(Printf.sprintf "pair-flood(%d->%d)" src dst) gen

let round_robin ~n =
  let counter = ref 0 in
  let gen ~round:_ ~budget ~view:_ =
    tabulate budget (fun _ ->
        let src = !counter mod n in
        incr counter;
        (src, (src + 1) mod n))
  in
  make ~save:(counter_save counter) ~load:(counter_load counter)
    ~name:"round-robin" gen

let hotspot ~n ~seed ~hot ~bias =
  if not (bias >= 0.0 && bias <= 1.0) then invalid_arg "Pattern.hotspot: bias";
  let rng = Mac_channel.Rng.create ~seed in
  let gen ~round:_ ~budget ~view:_ =
    tabulate budget (fun _ ->
        let dst =
          if Mac_channel.Rng.float rng 1.0 < bias then hot
          else Mac_channel.Rng.int rng n
        in
        let s = Mac_channel.Rng.int rng (n - 1) in
        let src = if s >= dst then s + 1 else s in
        (src, dst))
  in
  make ~save:(rng_save rng) ~load:(rng_load rng)
    ~name:(Printf.sprintf "hotspot(hot=%d,bias=%.2f)" hot bias) gen

let alternating ~src ~dst_odd ~dst_even =
  if src = dst_odd || src = dst_even then invalid_arg "Pattern.alternating";
  let gen ~round ~budget ~view:_ =
    let dst = if round mod 2 = 1 then dst_odd else dst_even in
    tabulate budget (fun _ -> (src, dst))
  in
  make ~name:(Printf.sprintf "alternating(%d->%d|%d)" src dst_odd dst_even) gen

let mix ~seed weighted =
  if weighted = [] then invalid_arg "Pattern.mix: empty";
  List.iter (fun (w, _) -> if w <= 0 then invalid_arg "Pattern.mix: weight") weighted;
  let total = List.fold_left (fun acc (w, _) -> acc + w) 0 weighted in
  let rng = Mac_channel.Rng.create ~seed in
  let pick () =
    let roll = Mac_channel.Rng.int rng total in
    let rec go acc = function
      | [] -> assert false
      | (w, p) :: rest -> if roll < acc + w then p else go (acc + w) rest
    in
    go 0 weighted
  in
  let gen ~round ~budget ~view =
    List.concat_map
      (fun _ ->
        let p = pick () in
        match p.generate ~round ~budget:1 ~view with
        | pair :: _ -> [ pair ]
        | [] -> [])
      (List.init budget (fun i -> i))
  in
  let save () =
    cat (rng_save rng () :: List.map (fun (_, p) -> p.save ()) weighted)
  in
  let load s =
    match uncat s with
    | own :: inner when List.length inner = List.length weighted ->
      rng_load rng own;
      List.iter2 (fun (_, p) st -> p.load st) weighted inner
    | _ -> invalid_arg "Pattern.load: mix arity mismatch"
  in
  make ~save ~load ~name:"mix" gen

let duty_cycle ~busy ~idle inner =
  if busy <= 0 || idle < 0 then invalid_arg "Pattern.duty_cycle";
  let period = busy + idle in
  let gen ~round ~budget ~view =
    if round mod period < busy then inner.generate ~round ~budget ~view else []
  in
  make ~save:inner.save ~load:inner.load
    ~name:(Printf.sprintf "duty(%d/%d,%s)" busy period inner.name) gen

let one_shot ~at ~src ~dst =
  if src = dst then invalid_arg "Pattern.one_shot: src = dst";
  let fired = ref false in
  let gen ~round ~budget ~view:_ =
    if round >= at && budget > 0 && not !fired then begin
      fired := true;
      [ (src, dst) ]
    end
    else []
  in
  make
    ~save:(fun () -> if !fired then "1" else "0")
    ~load:(fun s ->
      match s with
      | "0" -> fired := false
      | "1" -> fired := true
      | _ -> invalid_arg "Pattern.load: bad one-shot state")
    ~name:(Printf.sprintf "one-shot(%d->%d@%d)" src dst at)
    gen

(* --- External injection -------------------------------------------------

   The one pattern whose packets come from outside the process: a FIFO of
   scheduled (at, src, dst) injections, fed by the serve layer's [inject]
   commands or preloaded from a trace file. [generate] pops from the head
   while the head's scheduled round has been reached — head-blocking, so
   the file/push order is the injection order and a replay is
   deterministic. The queue is mutex-guarded: the serve daemon pushes from
   its protocol thread while a shard domain drains it inside the engine's
   injection phase. [save]/[load] carry the not-yet-injected remainder, so
   checkpoints taken mid-replay resume without losing pending packets. *)

type feed = {
  push : at:int -> src:int -> dst:int -> unit;
  pending : unit -> int;
}

let external_queue ?(name = "external") ?(initial = []) () =
  let m = Mutex.create () in
  let locked f =
    Mutex.lock m;
    Fun.protect ~finally:(fun () -> Mutex.unlock m) f
  in
  let validate (at, src, dst) =
    if src = dst then invalid_arg "Pattern.external_queue: src = dst";
    if at < 0 || src < 0 || dst < 0 then
      invalid_arg "Pattern.external_queue: negative round or station"
  in
  List.iter validate initial;
  (* Two-list FIFO: pop from [front], push onto [back] (reversed). *)
  let front = ref initial in
  let back = ref [] in
  let push ~at ~src ~dst =
    validate (at, src, dst);
    locked (fun () -> back := (at, src, dst) :: !back)
  in
  let pending () =
    locked (fun () -> List.length !front + List.length !back)
  in
  let gen ~round ~budget ~view:_ =
    locked (fun () ->
        let rec take budget acc =
          if budget = 0 then List.rev acc
          else begin
            if !front = [] then begin
              front := List.rev !back;
              back := []
            end;
            match !front with
            | (at, src, dst) :: rest when at <= round ->
              front := rest;
              take (budget - 1) ((src, dst) :: acc)
            | _ -> List.rev acc
          end
        in
        take budget [])
  in
  let save () =
    locked (fun () ->
        cat
          (List.map
             (fun (a, s, d) -> Printf.sprintf "%d,%d,%d" a s d)
             (!front @ List.rev !back)))
  in
  let load st =
    let parse part =
      match String.split_on_char ',' part with
      | [ a; s; d ] -> (
        match
          (int_of_string_opt a, int_of_string_opt s, int_of_string_opt d)
        with
        | Some a, Some s, Some d -> (a, s, d)
        | _ -> invalid_arg "Pattern.load: bad external-queue state")
      | _ -> invalid_arg "Pattern.load: bad external-queue state"
    in
    let items = List.map parse (uncat st) in
    List.iter validate items;
    locked (fun () ->
        front := items;
        back := [])
  in
  ({ push; pending }, make ~save ~load ~name gen)

let to_busiest ~n =
  let counter = ref 0 in
  let gen ~round:_ ~budget ~view:(view : View.t) =
    let busiest = ref 0 in
    for i = 1 to n - 1 do
      if view.queue_size i > view.queue_size !busiest then busiest := i
    done;
    tabulate budget (fun _ ->
        let d = !counter mod (n - 1) in
        incr counter;
        let dst = if d >= !busiest then d + 1 else d in
        (!busiest, dst))
  in
  make ~save:(counter_save counter) ~load:(counter_load counter)
    ~name:"to-busiest" gen
