(** Injection patterns: where the adversary places packets.

    A pattern proposes up to [budget] injections for the round as
    (source, destination) pairs with [src <> dst]; the leaky bucket in
    {!Adversary} has already capped [budget]. Patterns may be stateful
    (cycling counters, PRNGs, adaptive logic reading the view). *)

type t = {
  name : string;
  generate : round:int -> budget:int -> view:View.t -> (int * int) list;
  save : unit -> string;
      (** Serialise the pattern's mutable cursor (RNG state, counters, fired
          flags) for a checkpoint. Stateless patterns return [""]. *)
  load : string -> unit;
      (** Restore a cursor previously produced by {!save} on a freshly
          constructed pattern of the same shape. Raises [Invalid_argument]
          on a malformed or mismatched state string. *)
}

val make :
  ?save:(unit -> string) ->
  ?load:(string -> unit) ->
  name:string ->
  (round:int -> budget:int -> view:View.t -> (int * int) list) ->
  t
(** [make ~name gen] builds a pattern. Stateful patterns should provide
    [save]/[load] so checkpoint/resume reproduces their stream exactly; the
    defaults are the empty state (and [load] rejecting non-empty input). *)

val cat : string list -> string
(** Length-prefixed concatenation of state strings, for composite patterns
    that nest inner pattern states. Inverse of {!uncat}. *)

val uncat : string -> string list
(** Split a {!cat}-encoded string back into its parts. Raises
    [Invalid_argument] on malformed input. *)

val uniform : n:int -> seed:int -> t
(** Source and destination uniform at random (distinct). *)

val flood : n:int -> victim:int -> t
(** Every packet is injected into [victim]; destinations cycle over the other
    stations. The Orchestra worst case: one station receives all traffic. *)

val pair_flood : src:int -> dst:int -> t
(** Every packet goes from [src] to [dst] — the Theorem 9 shape. *)

val round_robin : n:int -> t
(** Source cycles over stations, destination is the cyclic successor. *)

val hotspot : n:int -> seed:int -> hot:int -> bias:float -> t
(** A fraction [bias] of packets is destined to station [hot]; the rest are
    uniform. Sources uniform. *)

val alternating : src:int -> dst_odd:int -> dst_even:int -> t
(** Packets are injected into [src]; destination alternates with round parity
    (Case I of Lemma 1). *)

val to_busiest : n:int -> t
(** Adaptive: injects into the station that currently has the longest queue
    (ties to the lowest name), destination cycles over other stations. Feeds
    Orchestra's big-conductor path. *)

val mix : seed:int -> (int * t) list -> t
(** [mix ~seed weighted] draws each packet's source pattern with probability
    proportional to its weight. Weights must be positive. *)

val duty_cycle : busy:int -> idle:int -> t -> t
(** Traffic with silence gaps: the inner pattern is used during [busy]-round
    stretches, alternating with [idle] silent rounds (the leaky bucket keeps
    refilling, so each busy stretch starts with a burst — a realistic
    office-LAN shape). *)

type feed = {
  push : at:int -> src:int -> dst:int -> unit;
      (** Enqueue an injection: eligible from round [at] on (use [at:0] for
          "as soon as admissible"). Raises [Invalid_argument] on [src = dst]
          or negative arguments. Safe to call from another domain while a
          run is in flight. *)
  pending : unit -> int;
      (** Injections queued but not yet handed to the engine. *)
}

val external_queue :
  ?name:string -> ?initial:(int * int * int) list -> unit -> feed * t
(** [external_queue ()] is the externally-fed pattern: a mutex-guarded FIFO
    of scheduled [(at, src, dst)] injections — pushed live through the
    {!feed} (serve mode) or preloaded via [initial] (trace replay). Each
    round, [generate] pops from the head while the head's [at] has been
    reached, up to the leaky bucket's budget; items beyond the budget stay
    queued and are offered again next round, so admission timing follows
    the bucket exactly as for generator patterns. Head-blocking FIFO: an
    item whose [at] lies in the future blocks everything behind it, making
    replay order deterministic. [save]/[load] carry the not-yet-injected
    remainder ([name], default ["external"], is part of checkpoint
    identity). *)

val one_shot : at:int -> src:int -> dst:int -> t
(** Injects a single packet (src, dst) at the first opportunity in round
    [at] or later, and nothing else — for probing the fate of one packet
    under background traffic (combine with [mix], which will offer it a
    slot eventually). *)
