(** Leaky-bucket admission control for adversarial packet injection.

    An adversary of type (ρ, β) may inject at most ρ·t + β packets in every
    contiguous interval of t rounds. The equivalent token-bucket recurrence
    is: tokens start at ρ + β (the burstiness ⌊β + ρ⌋ bounds a single round),
    injections consume tokens, and [advance] refills by ρ clamped at ρ + β.
    Property tests verify the windowed constraint holds on every trace. *)

type t

val create : rate:float -> burst:float -> t
(** Requires [0 < rate <= 1] and [burst >= 1] (the paper's adversary type). *)

val rate : t -> float

val burst : t -> float

val grant : t -> int
(** Packets that may still be injected in the current round. *)

val consume : t -> int -> unit
(** Spend tokens for actual injections. Raises [Invalid_argument] when
    exceeding [grant]. *)

val advance : t -> unit
(** Move to the next round: refill by [rate], clamped at [rate + burst]. *)
