(** Leaky-bucket admission control for adversarial packet injection.

    An adversary of type (ρ, β) may inject at most ρ·t + β packets in every
    contiguous interval of t rounds. The equivalent token-bucket recurrence
    is: tokens start at ρ + β (the burstiness ⌊β + ρ⌋ bounds a single round),
    injections consume tokens, and [advance] refills by ρ clamped at ρ + β.

    Token arithmetic is exact: ρ and β are {!Mac_channel.Qrat} rationals and
    the recurrence bₜ₊₁ = min(β + ρ, bₜ − iₜ + ρ) is evaluated without
    rounding, so [grant] equals the paper's recurrence at every round — for
    ρ = 1/10 or 1/3 as much as for dyadic rates, over any horizon. (The
    float accumulation this replaces drifted by a whole token after ~10⁵
    rounds at non-dyadic rates, breaking the window bound one packet at a
    time.) Property tests verify the windowed constraint on every trace. *)

type t

val create_q : rate:Mac_channel.Qrat.t -> burst:Mac_channel.Qrat.t -> t
(** Requires [0 < rate <= 1] and [burst >= 1] (the paper's adversary type),
    checked exactly. *)

val create : rate:float -> burst:float -> t
(** Deprecated float shim: snaps each argument to the simplest rational
    denoting it ({!Mac_channel.Qrat.of_float} — [0.1] becomes exactly
    1/10) and defers to {!create_q}. Prefer [create_q] in new code. *)

val rate_q : t -> Mac_channel.Qrat.t

val burst_q : t -> Mac_channel.Qrat.t

val rate : t -> float
(** Deprecated: [Qrat.to_float (rate_q t)]. *)

val burst : t -> float
(** Deprecated: [Qrat.to_float (burst_q t)]. *)

val tokens : t -> Mac_channel.Qrat.t
(** The exact current token level, for checkpointing. *)

val set_tokens : t -> Mac_channel.Qrat.t -> unit
(** Restore a token level previously read with {!tokens}. Raises
    [Invalid_argument] outside [0, rate+burst]. *)

val grant : t -> int
(** Packets that may still be injected in the current round. *)

val consume : t -> int -> unit
(** Spend tokens for actual injections. Raises [Invalid_argument] when
    exceeding [grant]. *)

val advance : t -> unit
(** Move to the next round: refill by [rate], clamped at [rate + burst] —
    exactly. *)

val skip : t -> rounds:int -> unit
(** [skip t ~rounds] is bit-identical to [rounds] consecutive [advance]s
    with nothing consumed in between, in O(1): the refills telescope and the
    clamp is absorbing. Used by the engine's analytic skip-ahead. Raises
    [Invalid_argument] on negative [rounds]. *)
