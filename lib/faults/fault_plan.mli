(** Deterministic fault plans: what goes wrong, and when.

    A plan is a fixed schedule of fault actions, resolved before the run
    starts — either scripted explicitly, parsed from a plan file, or
    generated pseudo-randomly from a seed via {!Mac_channel.Rng}. The
    engine consumes it round by round ({!actions}); an empty plan leaves
    the round loop bit-identical to the fault-free engine.

    The fault vocabulary matches the regimes studied by the adjacent
    literature (restrained/jammed channels, failing stations):

    - {b crash}: the station goes dark — forced off, algorithm state
      frozen, [offline_tick] suppressed. Its queue is either retained
      (packets wait, possibly forever) or dropped (packets are counted
      as lost-to-crash, never silently discarded). The adversary may
      keep injecting into a crashed station's queue; those packets are
      admitted and counted normally.
    - {b restart}: a crashed station reboots with a fresh algorithm
      state ([create ~n ~k ~me]) and rejoins from that round's mode
      decision. Restarting a live station is a no-op, as is crashing a
      station twice.
    - {b jam}: every transmission of the round reads as a collision to
      all listeners (a single transmitter included); with no
      transmitter the round stays silent, but the jam is still counted
      (the fault fired — [jammed_rounds] and the [Round_jammed] event
      record it either way).
    - {b noise}: the round reads as a collision even when nobody
      transmitted — spurious channel activity. *)

type queue_policy =
  | Retain  (** the crashed station's queue survives the crash *)
  | Drop    (** queued packets are lost (classified lost-to-crash) *)

type action =
  | Crash of { station : int; queue : queue_policy }
  | Restart of { station : int }
  | Jam
  | Noise

type t

val empty : t
(** The plan with no faults. [Engine.run] with this plan is bit-identical
    (summary and event stream) to a run with no plan at all. *)

val is_empty : t -> bool

val name : t -> string

val size : t -> int
(** Total number of scheduled actions. *)

val max_station : t -> int
(** Largest station index named by any crash/restart action; [-1] if the
    plan touches no station. Callers should reject plans with
    [max_station >= n] before running. *)

val actions : t -> round:int -> action list
(** The actions scheduled for [round], in application order; [] for
    rounds without faults (O(1)). *)

val next_action_round : t -> round:int -> int option
(** The first round [>= round] with at least one scheduled action, [None]
    if no action remains. O(log faults) — lets the engine's skip-ahead
    jump over fault-free stretches without probing each round. *)

val scripted : name:string -> (int * action) list -> t
(** [scripted ~name entries] schedules each [(round, action)] pair.
    Entries may be given in any order; actions within the same round are
    applied in list order. Raises [Invalid_argument] on a negative round
    or station. *)

val random :
  seed:int ->
  n:int ->
  rounds:int ->
  ?crash_rate:float ->
  ?jam_rate:float ->
  ?noise_rate:float ->
  ?restart_after:int ->
  ?queue:queue_policy ->
  unit ->
  t
(** A seeded pseudo-random plan over [rounds] rounds for [n] stations,
    generated with {!Mac_channel.Rng} (equal arguments give equal
    plans, bit for bit). Each round independently: with probability
    [crash_rate] a uniformly chosen currently-alive station crashes
    (with [queue] policy, default [Retain]); with probability
    [jam_rate] the round is jammed; with probability [noise_rate] the
    round carries spurious noise. [restart_after = d > 0] schedules a
    restart [d] rounds after each crash; [0] (the default) means
    crash-stop — stations never return. Raises [Invalid_argument] on
    rates outside [0, 1], [n <= 0], negative [rounds] or negative
    [restart_after]. *)

val of_string : ?name:string -> string -> (t, string) result
(** Parse a plan script: one directive per line, [#] starts a comment,
    blank lines are skipped.

    {v
    crash ROUND STATION [keep|drop]   # default keep
    restart ROUND STATION
    jam ROUND[..ROUND]
    noise ROUND[..ROUND]
    v}

    Errors are one-line ["line N: message"] descriptions. *)

val of_file : string -> (t, string) result
(** {!of_string} on the file's contents; unreadable files produce
    [Error] with the system message (one line). *)
