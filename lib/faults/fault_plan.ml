type queue_policy = Retain | Drop

type action =
  | Crash of { station : int; queue : queue_policy }
  | Restart of { station : int }
  | Jam
  | Noise

type t = {
  name : string;
  by_round : (int, action list) Hashtbl.t;
      (* round -> actions in application order *)
  rounds_sorted : int array; (* distinct fault rounds, ascending *)
  size : int;
  max_station : int;
}

let empty =
  { name = "none"; by_round = Hashtbl.create 1; rounds_sorted = [||];
    size = 0; max_station = -1 }

let is_empty t = t.size = 0
let name t = t.name
let size t = t.size
let max_station t = t.max_station

let actions t ~round =
  match Hashtbl.find_opt t.by_round round with Some l -> l | None -> []

(* Binary search for the first scheduled fault round >= round. *)
let next_action_round t ~round =
  let a = t.rounds_sorted in
  let len = Array.length a in
  if len = 0 || a.(len - 1) < round then None
  else begin
    let lo = ref 0 and hi = ref (len - 1) in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if a.(mid) < round then lo := mid + 1 else hi := mid
    done;
    Some a.(!lo)
  end

let station_of = function
  | Crash { station; _ } | Restart { station } -> station
  | Jam | Noise -> -1

let build ~name entries =
  let by_round = Hashtbl.create 64 in
  let max_station = ref (-1) in
  List.iter
    (fun (round, action) ->
      if round < 0 then invalid_arg "Fault_plan: negative round";
      let s = station_of action in
      if s > !max_station then max_station := s;
      let prev =
        match Hashtbl.find_opt by_round round with Some l -> l | None -> []
      in
      (* keep application order; lists are short *)
      Hashtbl.replace by_round round (prev @ [ action ]))
    entries;
  let rounds_sorted =
    let rs = Hashtbl.fold (fun r _ acc -> r :: acc) by_round [] in
    let a = Array.of_list rs in
    Array.sort compare a;
    a
  in
  { name; by_round; rounds_sorted; size = List.length entries;
    max_station = !max_station }

let scripted ~name entries =
  List.iter
    (fun (_, action) ->
      match action with
      | Crash { station; _ } | Restart { station } ->
          if station < 0 then invalid_arg "Fault_plan: negative station"
      | Jam | Noise -> ())
    entries;
  build ~name entries

let random ~seed ~n ~rounds ?(crash_rate = 0.) ?(jam_rate = 0.)
    ?(noise_rate = 0.) ?(restart_after = 0) ?(queue = Retain) () =
  let check_rate what r =
    if r < 0. || r > 1. then
      invalid_arg (Printf.sprintf "Fault_plan.random: %s outside [0, 1]" what)
  in
  check_rate "crash_rate" crash_rate;
  check_rate "jam_rate" jam_rate;
  check_rate "noise_rate" noise_rate;
  if n <= 0 then invalid_arg "Fault_plan.random: n must be positive";
  if rounds < 0 then invalid_arg "Fault_plan.random: negative rounds";
  if restart_after < 0 then invalid_arg "Fault_plan.random: negative restart_after";
  let rng = Mac_channel.Rng.create ~seed in
  let alive = Array.make n true in
  let restarts = Hashtbl.create 16 in
  (* restart round -> stations *)
  let entries = ref [] in
  let push round action = entries := (round, action) :: !entries in
  for round = 0 to rounds - 1 do
    (match Hashtbl.find_opt restarts round with
    | Some stations ->
        List.iter
          (fun s ->
            alive.(s) <- true;
            push round (Restart { station = s }))
          (List.rev stations)
    | None -> ());
    if crash_rate > 0. && Mac_channel.Rng.float rng 1.0 < crash_rate then begin
      let candidates = ref [] in
      for i = n - 1 downto 0 do
        if alive.(i) then candidates := i :: !candidates
      done;
      match !candidates with
      | [] -> ()
      | cs ->
          let victim = List.nth cs (Mac_channel.Rng.int rng (List.length cs)) in
          alive.(victim) <- false;
          push round (Crash { station = victim; queue });
          if restart_after > 0 then begin
            let back = round + restart_after in
            if back < rounds then
              let prev =
                match Hashtbl.find_opt restarts back with
                | Some l -> l
                | None -> []
              in
              Hashtbl.replace restarts back (victim :: prev)
          end
    end;
    if jam_rate > 0. && Mac_channel.Rng.float rng 1.0 < jam_rate then
      push round Jam;
    if noise_rate > 0. && Mac_channel.Rng.float rng 1.0 < noise_rate then
      push round Noise
  done;
  let name =
    Printf.sprintf "random(seed=%d,crash=%g,jam=%g,noise=%g,restart=%d)" seed
      crash_rate jam_rate noise_rate restart_after
  in
  build ~name (List.rev !entries)

(* --- plan-file parser ------------------------------------------------- *)

let strip_comment line =
  match String.index_opt line '#' with
  | Some i -> String.sub line 0 i
  | None -> line

let tokens line =
  String.split_on_char ' ' (String.map (fun c -> if c = '\t' then ' ' else c) line)
  |> List.filter (fun s -> s <> "")

let parse_int ~ln what s =
  match int_of_string_opt s with
  | Some v when v >= 0 -> Ok v
  | Some _ -> Error (Printf.sprintf "line %d: negative %s %S" ln what s)
  | None -> Error (Printf.sprintf "line %d: expected %s, got %S" ln what s)

let parse_range ~ln s =
  (* ROUND or ROUND..ROUND *)
  match
    let rec find i =
      if i + 1 >= String.length s then None
      else if s.[i] = '.' && s.[i + 1] = '.' then Some i
      else find (i + 1)
    in
    find 0
  with
  | None -> (
      match parse_int ~ln "round" s with Ok r -> Ok (r, r) | Error e -> Error e)
  | Some dot -> (
      let lo = String.sub s 0 dot in
      let hi = String.sub s (dot + 2) (String.length s - dot - 2) in
      match (parse_int ~ln "round" lo, parse_int ~ln "round" hi) with
      | Ok a, Ok b ->
          if b < a then
            Error (Printf.sprintf "line %d: empty range %S" ln s)
          else Ok (a, b)
      | Error e, _ | _, Error e -> Error e)

let of_string ?(name = "script") text =
  let exception Bad of string in
  try
    let entries = ref [] in
    let push round action = entries := (round, action) :: !entries in
    List.iteri
      (fun idx raw ->
        let ln = idx + 1 in
        let line = String.trim (strip_comment raw) in
        if line <> "" then
          let fail fmt = Printf.ksprintf (fun m -> raise (Bad m)) fmt in
          let int what s =
            match parse_int ~ln what s with
            | Ok v -> v
            | Error e -> raise (Bad e)
          in
          match tokens line with
          | [ "crash"; r; s ] ->
              push (int "round" r)
                (Crash { station = int "station" s; queue = Retain })
          | [ "crash"; r; s; policy ] ->
              let queue =
                match policy with
                | "keep" -> Retain
                | "drop" -> Drop
                | other ->
                    fail "line %d: expected keep or drop, got %S" ln other
              in
              push (int "round" r) (Crash { station = int "station" s; queue })
          | [ "restart"; r; s ] ->
              push (int "round" r) (Restart { station = int "station" s })
          | [ "jam"; range ] | [ "noise"; range ] as directive -> (
              let action =
                match directive with [ "jam"; _ ] -> Jam | _ -> Noise
              in
              match parse_range ~ln range with
              | Error e -> raise (Bad e)
              | Ok (lo, hi) ->
                  for r = lo to hi do
                    push r action
                  done)
          | verb :: _ ->
              fail "line %d: unknown or malformed directive %S" ln verb
          | [] -> ())
      (String.split_on_char '\n' text);
    Ok (build ~name (List.rev !entries))
  with Bad msg -> Error msg

let of_file path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | text -> (
      match of_string ~name:(Filename.basename path) text with
      | Ok plan -> Ok plan
      | Error msg -> Error (Printf.sprintf "%s: %s" path msg))
  | exception Sys_error msg -> Error msg
