(* A small self-contained JSON codec for the serve protocol.

   The channel-event layer has its own specialised flat-object parser
   (Mac_channel.Event); the protocol needs real nesting (inject batches
   are arrays of arrays) and null, so it gets a proper value type. No
   dependency on a JSON library — the toolchain image carries none. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

exception Parse_error of string

let escape buf s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s

let to_string v =
  let buf = Buffer.create 128 in
  let rec go = function
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (if b then "true" else "false")
    | Int i -> Buffer.add_string buf (string_of_int i)
    | Float f ->
      if Float.is_integer f && Float.abs f < 1e15 then
        Buffer.add_string buf (Printf.sprintf "%.0f" f)
      else Buffer.add_string buf (Printf.sprintf "%.17g" f)
    | Str s ->
      Buffer.add_char buf '"';
      escape buf s;
      Buffer.add_char buf '"'
    | List vs ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i v ->
          if i > 0 then Buffer.add_char buf ',';
          go v)
        vs;
      Buffer.add_char buf ']'
    | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          Buffer.add_char buf '"';
          escape buf k;
          Buffer.add_string buf "\":";
          go v)
        fields;
      Buffer.add_char buf '}'
  in
  go v;
  Buffer.contents buf

let parse line =
  let len = String.length line in
  let pos = ref 0 in
  let bad fmt = Printf.ksprintf (fun m -> raise (Parse_error m)) fmt in
  let peek () = if !pos < len then Some line.[!pos] else None in
  let skip_ws () =
    while
      !pos < len
      &&
      match line.[!pos] with ' ' | '\t' | '\r' | '\n' -> true | _ -> false
    do
      incr pos
    done
  in
  let expect c =
    skip_ws ();
    match peek () with
    | Some c' when c' = c -> incr pos
    | _ -> bad "expected %C at offset %d" c !pos
  in
  let literal word v =
    if
      !pos + String.length word <= len
      && String.sub line !pos (String.length word) = word
    then begin
      pos := !pos + String.length word;
      v
    end
    else bad "bad literal at offset %d" !pos
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let hex4 at =
      if at + 4 > len then bad "short \\u escape";
      let v = ref 0 in
      for i = at to at + 3 do
        let d =
          match line.[i] with
          | '0' .. '9' as c -> Char.code c - Char.code '0'
          | 'a' .. 'f' as c -> Char.code c - Char.code 'a' + 10
          | 'A' .. 'F' as c -> Char.code c - Char.code 'A' + 10
          | c -> bad "bad hex digit %C in \\u escape" c
        in
        v := (!v * 16) + d
      done;
      !v
    in
    let add_utf8 cp =
      if cp < 0x80 then Buffer.add_char buf (Char.chr cp)
      else if cp < 0x800 then begin
        Buffer.add_char buf (Char.chr (0xC0 lor (cp lsr 6)));
        Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
      end
      else if cp < 0x10000 then begin
        Buffer.add_char buf (Char.chr (0xE0 lor (cp lsr 12)));
        Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
        Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
      end
      else begin
        Buffer.add_char buf (Char.chr (0xF0 lor (cp lsr 18)));
        Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 12) land 0x3F)));
        Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
        Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
      end
    in
    let rec go () =
      if !pos >= len then bad "unterminated string";
      match line.[!pos] with
      | '"' -> incr pos
      | '\\' ->
        incr pos;
        if !pos >= len then bad "dangling escape";
        (match line.[!pos] with
         | '"' -> Buffer.add_char buf '"'
         | '\\' -> Buffer.add_char buf '\\'
         | '/' -> Buffer.add_char buf '/'
         | 'n' -> Buffer.add_char buf '\n'
         | 't' -> Buffer.add_char buf '\t'
         | 'r' -> Buffer.add_char buf '\r'
         | 'b' -> Buffer.add_char buf '\b'
         | 'f' -> Buffer.add_char buf '\012'
         | 'u' ->
           let code = hex4 (!pos + 1) in
           pos := !pos + 4;
           if code >= 0xD800 && code <= 0xDFFF then begin
             if code >= 0xDC00 then bad "unpaired low surrogate";
             if
               !pos + 2 >= len
               || line.[!pos + 1] <> '\\'
               || line.[!pos + 2] <> 'u'
             then bad "unpaired high surrogate";
             let low = hex4 (!pos + 3) in
             if not (low >= 0xDC00 && low <= 0xDFFF) then
               bad "invalid low surrogate";
             pos := !pos + 6;
             add_utf8 (0x10000 + ((code - 0xD800) lsl 10) + (low - 0xDC00))
           end
           else add_utf8 code
         | c -> bad "bad escape \\%c" c);
        incr pos;
        go ()
      | c ->
        Buffer.add_char buf c;
        incr pos;
        go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    if peek () = Some '-' then incr pos;
    let digits () =
      while
        !pos < len && match line.[!pos] with '0' .. '9' -> true | _ -> false
      do
        incr pos
      done
    in
    digits ();
    let is_float = ref false in
    if peek () = Some '.' then begin
      is_float := true;
      incr pos;
      digits ()
    end;
    (match peek () with
     | Some ('e' | 'E') ->
       is_float := true;
       incr pos;
       (match peek () with Some ('+' | '-') -> incr pos | _ -> ());
       digits ()
     | _ -> ());
    let s = String.sub line start (!pos - start) in
    if !is_float then
      match float_of_string_opt s with
      | Some f -> Float f
      | None -> bad "bad number %S" s
    else
      match int_of_string_opt s with
      | Some i -> Int i
      | None -> bad "bad number %S" s
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> bad "unexpected end of input"
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some '{' ->
      incr pos;
      skip_ws ();
      if peek () = Some '}' then begin
        incr pos;
        Obj []
      end
      else begin
        let fields = ref [] in
        let rec members () =
          skip_ws ();
          let key = parse_string () in
          expect ':';
          let v = parse_value () in
          fields := (key, v) :: !fields;
          skip_ws ();
          match peek () with
          | Some ',' ->
            incr pos;
            members ()
          | Some '}' -> incr pos
          | _ -> bad "expected ',' or '}' at offset %d" !pos
        in
        members ();
        Obj (List.rev !fields)
      end
    | Some '[' ->
      incr pos;
      skip_ws ();
      if peek () = Some ']' then begin
        incr pos;
        List []
      end
      else begin
        let items = ref [] in
        let rec elements () =
          let v = parse_value () in
          items := v :: !items;
          skip_ws ();
          match peek () with
          | Some ',' ->
            incr pos;
            elements ()
          | Some ']' -> incr pos
          | _ -> bad "expected ',' or ']' at offset %d" !pos
        in
        elements ();
        List (List.rev !items)
      end
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some c -> bad "unexpected %C at offset %d" c !pos
  in
  match parse_value () with
  | v ->
    skip_ws ();
    if !pos <> len then Error (Printf.sprintf "trailing input at offset %d" !pos)
    else Ok v
  | exception Parse_error msg -> Error msg

(* --- accessors --- *)

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let to_int = function
  | Int i -> Some i
  | Float f when Float.is_integer f -> Some (int_of_float f)
  | _ -> None

let to_str = function Str s -> Some s | _ -> None

let to_bool = function Bool b -> Some b | _ -> None

let to_list = function List vs -> Some vs | _ -> None
