(** Blocking client for the serve socket (one JSON object per line). *)

type t

val connect : socket:string -> (t, string) result

val request : t -> Jsonv.t -> (Jsonv.t, string) result
(** Send one command, read one reply. [Error] carries the server's typed
    ["error"] message when the reply has [ok = false]. *)

val send_line : t -> string -> unit
val recv_line : t -> string option
(** [None] at EOF — for subscriptions, EOF means "stream complete". *)

val close : t -> unit
