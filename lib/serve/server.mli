(** The serve daemon: a long-running fleet of live channel instances,
    sharded over a Domain pool, driven over a Unix-domain socket with a
    newline-delimited JSON protocol.

    Commands (one JSON object per line; replies are one JSON object per
    line with an ["ok"] field — errors are typed, never a dropped
    connection):

    - [{"cmd":"ping"}]
    - [{"cmd":"open","channel":ID,"algorithm":NAME,"n":N,"k":K, ...}] —
      create a channel. Optional: [rate]/[burst] (rational strings),
      [rounds], [drain], [pattern] (["external"], the default, accepts
      socket injection; any generator spec runs self-driven), [seed],
      [faults] (plan file path), [checkpoint_every].
    - [{"cmd":"inject","channel":ID,"at":R,"src":S,"dst":D}] or
      [{"cmd":"inject","channel":ID,"packets":[[at,src,dst],...]}] —
      queue packets from outside the process. The adversary's leaky
      bucket still gates admission round by round.
    - [{"cmd":"step","channel":ID,"rounds":N}] — advance N rounds; the
      reply arrives once they have executed.
    - [{"cmd":"run","channel":ID}] — run to completion; the reply carries
      the summary.
    - [{"cmd":"subscribe","channel":ID}] — stream the channel's typed
      event log (JSONL, from round 0) on this connection; the connection
      closes when the channel completes and the stream is fully sent.
    - [{"cmd":"snapshot","channel":ID}] — checkpoint now (PR-5 codec).
    - [{"cmd":"migrate","channel":ID,"shard":I}] — checkpoint, detach,
      and resume the channel on shard I.
    - [{"cmd":"stats"}], [{"cmd":"list"}] — fleet and per-channel state.
    - [{"cmd":"kill-shard","shard":I}] — chaos hook: make a shard domain
      die, exercising respawn + re-adoption.
    - [{"cmd":"drain"}] — same as SIGTERM: checkpoint everything and
      return from {!run}.

    Every channel persists [<id>.meta] (configuration), [<id>.ckpt]
    (rotating checkpoint), [<id>.events.jsonl] (spool: the full event
    stream minus telemetry frames — byte-identical to a batch run's
    [--events] file) and, when complete, [<id>.summary.json] (the exact
    [run --json] line). Telemetry lands in per-channel [.prom] files and
    [fleet.prom] via {!Mac_sim.Telemetry.Fleet}, so [routing_sim top]
    works on the state directory unchanged. *)

type config = {
  dir : string;  (** state directory: meta/ckpt/spool/prom files *)
  socket : string;  (** Unix-domain socket path *)
  shards : int;  (** worker domains; >= 1 *)
  checkpoint_every : int;  (** default cadence for channels *)
  telemetry_every : int;  (** probe sampling cadence *)
  algorithm_of :
    name:string -> n:int -> k:int -> (Mac_channel.Algorithm.t, string) result;
      (** resolver injected by the binary (keeps this library off the
          algorithm catalogue) *)
  pattern_of :
    spec:string ->
    n:int ->
    seed:int ->
    (Mac_adversary.Pattern.t, string) result;
      (** resolver for non-external (generator) pattern specs *)
  summary_json : Mac_sim.Metrics.summary -> string;
      (** must match [run --json] exactly — the serve/batch equivalence
          check compares these bytes *)
  log : string -> unit;
}

type t

val create : config -> (t, string) result
(** Bind the socket, start the shard domains, and re-adopt any channels
    left open in [dir] by a previous (drained or killed) daemon. *)

val run : t -> [ `Drained ]
(** Serve until a drain is requested — by the [drain] command or by a
    signal handler calling {!Mac_sim.Supervisor.request_drain} (the
    binary maps SIGTERM/SIGINT to it). Draining checkpoints every running
    channel at a round boundary, so a later daemon resumes the fleet
    bit-identically, then tears down shards, connections and the
    socket. *)
