(* Blocking line-oriented client for the serve socket. Used by the
   routing_sim fleet subcommands and the protocol tests; deliberately
   dumb — one request, one reply line, plus raw line streaming for
   subscriptions. *)

type t = {
  fd : Unix.file_descr;
  ic : in_channel;
  oc : out_channel;
}

let connect ~socket =
  match Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 with
  | exception Unix.Unix_error (e, _, _) -> Error (Unix.error_message e)
  | fd -> (
    match Unix.connect fd (Unix.ADDR_UNIX socket) with
    | exception Unix.Unix_error (e, _, _) ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      Error (Printf.sprintf "%s: %s" socket (Unix.error_message e))
    | () ->
      Ok
        { fd;
          ic = Unix.in_channel_of_descr fd;
          oc = Unix.out_channel_of_descr fd })

let send_line t line =
  output_string t.oc line;
  output_char t.oc '\n';
  flush t.oc

let recv_line t = try Some (input_line t.ic) with End_of_file -> None

let request t v =
  match send_line t (Jsonv.to_string v) with
  | exception Sys_error msg -> Error msg
  | () -> (
    match recv_line t with
    | None -> Error "server closed the connection"
    | Some line -> (
      match Jsonv.parse line with
      | Error msg -> Error ("bad reply: " ^ msg)
      | Ok reply -> (
        match Option.bind (Jsonv.member "ok" reply) Jsonv.to_bool with
        | Some true -> Ok reply
        | _ ->
          Error
            (Option.value ~default:("server error: " ^ line)
               (Option.bind (Jsonv.member "error" reply) Jsonv.to_str)))))

let close t = try Unix.close t.fd with Unix.Unix_error _ -> ()
