(* The serve daemon: a fleet of live channel instances behind a Unix-domain
   socket, speaking newline-delimited JSON.

   Architecture. The main domain owns all protocol I/O: it accepts
   connections, parses command lines, answers registry-level commands
   (inject / subscribe / stats / list) directly, and posts engine-touching
   commands (open / step / run / snapshot / migrate) as thunks into the
   owning shard's mailbox. Each shard is one Domain from the same pool
   budget the batch drivers use, looping { drain mailbox; advance each
   channel needing work by a bounded batch of rounds }. Shard replies
   travel back through a mutex-guarded outbox plus a self-pipe that wakes
   the main select loop.

   Durability. Every channel persists three files in the state directory:
   <id>.meta (its full configuration — enough to rebuild the run),
   <id>.ckpt (rotating PR-5 checkpoint, written on the engine's cadence
   and at drain), and <id>.events.jsonl (the spool: the channel's full
   typed event stream, telemetry frames excluded). On adoption — daemon
   restart after a drain, or shard respawn after a crash — the spool is
   truncated back to the checkpoint's round and the engine resumes from
   the snapshot, so the spool always reads as one uninterrupted stream:
   byte-identical to the equivalent batch run's --events file.

   Crash containment. A channel whose engine raises (protocol violation,
   bad fault plan) is marked failed; the shard survives. A shard whose
   loop dies (the kill-shard chaos hook, or a bug) is detected by the
   main loop, joined, respawned, and its running channels are re-adopted
   from their last checkpoints — the PR-7 supervision story applied to
   long-lived channels instead of batch jobs. *)

module E = Mac_sim.Engine
module J = Jsonv

let max_line = 1 lsl 20

(* --- configuration ------------------------------------------------------ *)

type config = {
  dir : string;
  socket : string;
  shards : int;
  checkpoint_every : int;  (** default for channels that don't specify *)
  telemetry_every : int;
  algorithm_of :
    name:string -> n:int -> k:int -> (Mac_channel.Algorithm.t, string) result;
  pattern_of :
    spec:string ->
    n:int ->
    seed:int ->
    (Mac_adversary.Pattern.t, string) result;
  summary_json : Mac_sim.Metrics.summary -> string;
  log : string -> unit;
}

(* --- channels ----------------------------------------------------------- *)

type chan_cfg = {
  cc_id : string;
  cc_algorithm : string;
  cc_n : int;
  cc_k : int;
  cc_rate : Mac_channel.Qrat.t;
  cc_burst : Mac_channel.Qrat.t;
  cc_rounds : int;
  cc_drain : int;
  cc_pattern : string;  (** "external" or a generator-pattern spec *)
  cc_seed : int;
  cc_faults : string option;  (** fault-plan file path *)
  cc_every : int;  (** checkpoint cadence *)
}

type status = Pending | Running | Complete | Failed of string

(* Spool writer: an explicit buffer over a raw fd. Deliberately not a
   buffered out_channel — an abandoned out_channel (shard crash) would
   flush its stale buffer at exit or GC time, corrupting the spool after
   the re-adoption truncated it. An abandoned [spool] just drops its
   buffered bytes, which is exactly right: those rounds get re-executed. *)
type spool = {
  sp_fd : Unix.file_descr;
  sp_buf : Buffer.t;
}

type waiter =
  | Step_waiter of { w_conn : int; w_target : int }
  | Run_waiter of { w_conn : int }

type channel = {
  ch_cfg : chan_cfg;
  ch_mutex : Mutex.t;
  (* under ch_mutex — read by main for list/stats/inject/subscribe: *)
  mutable ch_status : status;
  mutable ch_shard : int;
  mutable ch_round : int;
  mutable ch_backlog : int;
  mutable ch_feed : Mac_adversary.Pattern.feed option;
  mutable ch_summary : string option;  (** summary_json line when complete *)
  (* owned by the adopting shard: *)
  mutable ch_session : E.session option;
  mutable ch_spool : spool option;
  mutable ch_probe : Mac_sim.Telemetry.Fleet.probe option;
  mutable ch_steps_total : int;
  mutable ch_step_target : int;
  mutable ch_run_all : bool;
  mutable ch_waiters : waiter list;
}

(* --- shards ------------------------------------------------------------- *)

exception Shard_killed

type shard = {
  sh_index : int;
  sh_mutex : Mutex.t;
  sh_cond : Condition.t;
  sh_mailbox : (unit -> unit) Queue.t;
  mutable sh_channels : channel list;
  mutable sh_stop : bool;
  mutable sh_dead : bool;
}

(* --- connections -------------------------------------------------------- *)

type sub = {
  sub_chan : channel;
  mutable sub_fd : Unix.file_descr option;  (** spool fd, opened lazily *)
  mutable sub_pos : int;  (** next unforwarded spool byte *)
  sub_carry : Buffer.t;  (** partial trailing line *)
}

type conn = {
  co_id : int;
  co_fd : Unix.file_descr;
  co_in : Buffer.t;
  co_out : Buffer.t;
  mutable co_sub : sub option;
  mutable co_closing : bool;  (** close once co_out drains *)
}

type t = {
  cfg : config;
  fleet : Mac_sim.Telemetry.Fleet.t;
  shards : shard array;
  domains : unit Domain.t option array;
  channels : (string, channel) Hashtbl.t;
  mutable order : string list;  (** channel ids, open order *)
  conns : (int, conn) Hashtbl.t;
  mutable next_conn : int;
  mutable next_auto : int;  (** generated channel ids *)
  mutable next_shard : int;  (** round-robin cursor *)
  mutable respawns : int;
  listener : Unix.file_descr;
  wake_r : Unix.file_descr;
  wake_w : Unix.file_descr;
  out_mutex : Mutex.t;
  outbox : (int * string) Queue.t;
}

(* --- small helpers ------------------------------------------------------ *)

let meta_path sv id = Filename.concat sv.cfg.dir (id ^ ".meta")
let ckpt_path sv id = Filename.concat sv.cfg.dir (id ^ ".ckpt")
let spool_path sv id = Filename.concat sv.cfg.dir (id ^ ".events.jsonl")
let summary_path sv id = Filename.concat sv.cfg.dir (id ^ ".summary.json")

let valid_id id =
  id <> ""
  && String.length id <= 64
  && String.for_all
       (function
         | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '.' | '_' | '-' -> true
         | _ -> false)
       id

let locked m f =
  Mutex.lock m;
  Fun.protect ~finally:(fun () -> Mutex.unlock m) f

let status_str = function
  | Pending -> "pending"
  | Running -> "running"
  | Complete -> "complete"
  | Failed _ -> "failed"

(* --- spool -------------------------------------------------------------- *)

let spool_open path =
  let fd =
    Unix.openfile path [ Unix.O_WRONLY; Unix.O_APPEND; Unix.O_CREAT ] 0o644
  in
  { sp_fd = fd; sp_buf = Buffer.create 8192 }

let spool_flush sp =
  let s = Buffer.contents sp.sp_buf in
  Buffer.clear sp.sp_buf;
  let len = String.length s in
  let b = Bytes.unsafe_of_string s in
  let off = ref 0 in
  while !off < len do
    off := !off + Unix.write sp.sp_fd b !off (len - !off)
  done

let spool_close sp =
  spool_flush sp;
  Unix.close sp.sp_fd

let spool_sink sp =
  Mac_sim.Sink.make (fun ~round ev ->
      match ev with
      | Mac_channel.Event.Telemetry _ ->
        (* Telemetry frames go to the .prom files, not the spool: the spool
           must stay byte-identical to a batch --events file (which has no
           probe installed). *)
        ()
      | _ ->
        Buffer.add_string sp.sp_buf (Mac_channel.Event.to_json ~round ev);
        Buffer.add_char sp.sp_buf '\n')

(* Parse the round out of a spool line: every event line starts with
   {"round":N — anything else counts as corruption and truncates. *)
let line_round line =
  let prefix = "{\"round\":" in
  let pl = String.length prefix in
  if String.length line <= pl || String.sub line 0 pl <> prefix then None
  else begin
    let i = ref pl in
    let len = String.length line in
    while
      !i < len && match line.[!i] with '0' .. '9' -> true | _ -> false
    do
      incr i
    done;
    if !i = pl then None else int_of_string_opt (String.sub line pl (!i - pl))
  end

(* Cut the spool back to the first event at or past [from_round], so a
   resumed engine (which re-executes from that round) appends exactly the
   bytes the crashed run would have written. *)
let truncate_spool ~path ~from_round =
  if Sys.file_exists path then begin
    let ic = open_in_bin path in
    let keep =
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () ->
          let rec go keep =
            match input_line ic with
            | exception End_of_file -> keep
            | line -> (
              match line_round line with
              | Some r when r < from_round ->
                go (keep + String.length line + 1)
              | _ -> keep)
          in
          go 0)
    in
    if keep < (Unix.stat path).Unix.st_size then Unix.truncate path keep
  end

(* --- meta files --------------------------------------------------------- *)

let meta_json cc ~status ~error ~summary =
  let opt f = function None -> J.Null | Some v -> f v in
  J.Obj
    ([ ("id", J.Str cc.cc_id);
       ("algorithm", J.Str cc.cc_algorithm);
       ("n", J.Int cc.cc_n);
       ("k", J.Int cc.cc_k);
       ("rate", J.Str (Mac_channel.Qrat.to_string cc.cc_rate));
       ("burst", J.Str (Mac_channel.Qrat.to_string cc.cc_burst));
       ("rounds", J.Int cc.cc_rounds);
       ("drain", J.Int cc.cc_drain);
       ("pattern", J.Str cc.cc_pattern);
       ("seed", J.Int cc.cc_seed);
       ("faults", opt (fun p -> J.Str p) cc.cc_faults);
       ("checkpoint_every", J.Int cc.cc_every);
       ("status", J.Str status) ]
    @ (match error with None -> [] | Some e -> [ ("error", J.Str e) ])
    @ match summary with None -> [] | Some s -> [ ("summary", J.Str s) ])

let write_meta sv ch =
  let status, error, summary =
    locked ch.ch_mutex (fun () ->
        match ch.ch_status with
        | Failed msg -> ("failed", Some msg, None)
        | Complete -> ("complete", None, ch.ch_summary)
        | Pending | Running -> ("open", None, None))
  in
  Mac_sim.Durable.write_string
    ~path:(meta_path sv ch.ch_cfg.cc_id)
    (J.to_string (meta_json ch.ch_cfg ~status ~error ~summary) ^ "\n")

let parse_meta line =
  match J.parse (String.trim line) with
  | Error msg -> Error ("bad meta: " ^ msg)
  | Ok v -> (
    let str k = Option.bind (J.member k v) J.to_str in
    let int k = Option.bind (J.member k v) J.to_int in
    let qrat k =
      match str k with
      | None -> None
      | Some s -> (
        match Mac_channel.Qrat.of_string s with
        | Ok q -> Some q
        | Error _ -> None)
    in
    match
      (str "id", str "algorithm", int "n", int "k", qrat "rate", qrat "burst",
       int "rounds", str "status")
    with
    | ( Some id, Some algorithm, Some n, Some k, Some rate, Some burst,
        Some rounds, Some status ) ->
      Ok
        ( { cc_id = id;
            cc_algorithm = algorithm;
            cc_n = n;
            cc_k = k;
            cc_rate = rate;
            cc_burst = burst;
            cc_rounds = rounds;
            cc_drain = Option.value ~default:0 (int "drain");
            cc_pattern = Option.value ~default:"external" (str "pattern");
            cc_seed = Option.value ~default:42 (int "seed");
            cc_faults = str "faults";
            cc_every = Option.value ~default:0 (int "checkpoint_every") },
          status,
          str "summary" )
    | _ -> Error "bad meta: missing fields")

(* --- replies ------------------------------------------------------------ *)

let send_main sv conn_id line =
  match Hashtbl.find_opt sv.conns conn_id with
  | None -> ()
  | Some c ->
    Buffer.add_string c.co_out line;
    Buffer.add_char c.co_out '\n'

(* From a shard: queue the line and poke the self-pipe so the select loop
   wakes up to deliver it. *)
let send_from_shard sv conn_id line =
  locked sv.out_mutex (fun () -> Queue.push (conn_id, line) sv.outbox);
  try ignore (Unix.write sv.wake_w (Bytes.of_string "x") 0 1)
  with Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()

let ok_fields fields = J.to_string (J.Obj (("ok", J.Bool true) :: fields))

let err_line msg = J.to_string (J.Obj [ ("ok", J.Bool false); ("error", J.Str msg) ])

(* --- shard side --------------------------------------------------------- *)

let post_thunk shard thunk =
  locked shard.sh_mutex (fun () ->
      Queue.push thunk shard.sh_mailbox;
      Condition.signal shard.sh_cond)

let chan_has_work ch =
  ch.ch_session <> None
  && (match ch.ch_status with Running -> true | _ -> false)
  && (ch.ch_run_all || ch.ch_steps_total < ch.ch_step_target)

(* Rounds per shard-loop iteration per channel. Small enough that drain
   requests, migrations and fresh injections are honoured promptly; large
   enough that per-batch bookkeeping is noise. *)
let batch_rounds = 2048

let reply_waiters sv ch ~complete =
  let keep, fire =
    List.partition
      (fun w ->
        match w with
        | Step_waiter { w_target; _ } ->
          (not complete) && ch.ch_steps_total < w_target
        | Run_waiter _ -> not complete)
      ch.ch_waiters
  in
  ch.ch_waiters <- keep;
  List.iter
    (fun w ->
      let conn = match w with Step_waiter { w_conn; _ } -> w_conn | Run_waiter { w_conn } -> w_conn in
      let fields =
        [ ("channel", J.Str ch.ch_cfg.cc_id);
          ("round", J.Int ch.ch_round);
          ("complete", J.Bool complete) ]
        @
        match (w, ch.ch_summary) with
        | Run_waiter _, Some s -> (
          match J.parse s with
          | Ok v -> [ ("summary", v) ]
          | Error _ -> [ ("summary", J.Str s) ])
        | _ -> []
      in
      send_from_shard sv conn (ok_fields fields))
    fire

let fail_waiters sv ch msg =
  let ws = ch.ch_waiters in
  ch.ch_waiters <- [];
  List.iter
    (fun w ->
      let conn = match w with Step_waiter { w_conn; _ } -> w_conn | Run_waiter { w_conn } -> w_conn in
      send_from_shard sv conn (err_line msg))
    ws

let publish ch =
  match ch.ch_session with
  | None -> ()
  | Some s ->
    locked ch.ch_mutex (fun () ->
        ch.ch_round <- E.session_round s;
        ch.ch_backlog <- E.session_backlog s)

let mark_failed sv ch msg =
  locked ch.ch_mutex (fun () -> ch.ch_status <- Failed msg);
  ch.ch_session <- None;
  ch.ch_run_all <- false;
  (match ch.ch_spool with
   | Some sp -> (try spool_close sp with Unix.Unix_error _ | Sys_error _ -> ())
   | None -> ());
  ch.ch_spool <- None;
  fail_waiters sv ch msg;
  write_meta sv ch;
  sv.cfg.log (Printf.sprintf "channel %s failed: %s" ch.ch_cfg.cc_id msg)

let complete_channel sv ch session =
  let summary = E.finish session in
  let sj = sv.cfg.summary_json summary in
  (match ch.ch_spool with Some sp -> spool_close sp | None -> ());
  ch.ch_spool <- None;
  ch.ch_session <- None;
  ch.ch_run_all <- false;
  (match ch.ch_probe with
   | Some p -> Mac_sim.Telemetry.Fleet.finish sv.fleet p
   | None -> ());
  ch.ch_probe <- None;
  locked ch.ch_mutex (fun () ->
      ch.ch_status <- Complete;
      ch.ch_summary <- Some sj);
  Mac_sim.Durable.write_string
    ~path:(summary_path sv ch.ch_cfg.cc_id)
    (sj ^ "\n");
  write_meta sv ch;
  reply_waiters sv ch ~complete:true

let advance_channel sv ch =
  match ch.ch_session with
  | None -> ()
  | Some s -> (
    try
      let budget =
        if ch.ch_run_all then batch_rounds
        else min batch_rounds (ch.ch_step_target - ch.ch_steps_total)
      in
      if budget > 0 then begin
        let executed = E.advance s ~max_steps:budget in
        ch.ch_steps_total <- ch.ch_steps_total + executed
      end;
      (match ch.ch_spool with Some sp -> spool_flush sp | None -> ());
      publish ch;
      if E.session_complete s then complete_channel sv ch s
      else reply_waiters sv ch ~complete:false
    with e -> mark_failed sv ch (Printexc.to_string e))

(* Build the engine config + session for a channel and attach it to the
   shard. Runs on the shard (posted as a mailbox thunk) so file I/O and
   algorithm construction never stall the protocol loop. [reply] gets the
   open/migrate/adoption acknowledgement once the session exists. *)
let adopt_channel sv shard ch ~reply =
  try
    let cc = ch.ch_cfg in
    let algorithm =
      match sv.cfg.algorithm_of ~name:cc.cc_algorithm ~n:cc.cc_n ~k:cc.cc_k with
      | Ok a -> a
      | Error msg -> failwith msg
    in
    let module A = (val algorithm : Mac_channel.Algorithm.S) in
    let feed, pattern =
      if cc.cc_pattern = "external" then
        let feed, p = Mac_adversary.Pattern.external_queue () in
        (Some feed, p)
      else
        match sv.cfg.pattern_of ~spec:cc.cc_pattern ~n:cc.cc_n ~seed:cc.cc_seed with
        | Ok p -> (None, p)
        | Error msg -> failwith msg
    in
    let faults =
      match cc.cc_faults with
      | None -> None
      | Some path -> (
        match Mac_faults.Fault_plan.of_file path with
        | Ok p -> Some p
        | Error msg -> failwith msg)
    in
    let adversary =
      Mac_adversary.Adversary.create_q ~rate:cc.cc_rate ~burst:cc.cc_burst
        pattern
    in
    let resume =
      let path = ckpt_path sv cc.cc_id in
      if Sys.file_exists path || Sys.file_exists (Mac_sim.Checkpoint.prev_path path)
      then
        match Mac_sim.Checkpoint.read_latest ~path with
        | Ok (snap, `Current) -> Some snap
        | Ok (snap, `Salvaged reason) ->
          sv.cfg.log
            (Printf.sprintf "channel %s: salvaged checkpoint (%s)" cc.cc_id
               reason);
          Some snap
        | Error msg -> failwith ("checkpoint: " ^ msg)
      else None
    in
    let from_round =
      match resume with Some snap -> E.snapshot_round snap | None -> 0
    in
    truncate_spool ~path:(spool_path sv cc.cc_id) ~from_round;
    let sp = spool_open (spool_path sv cc.cc_id) in
    let probe = Mac_sim.Telemetry.Fleet.probe sv.fleet ~id:cc.cc_id in
    let ck = ckpt_path sv cc.cc_id in
    let config =
      { (E.default_config ~rounds:cc.cc_rounds) with
        drain_limit = cc.cc_drain;
        check_schedule = A.oblivious;
        sink = Some (spool_sink sp);
        faults;
        checkpoint_every = cc.cc_every;
        on_checkpoint =
          (if cc.cc_every > 0 then
             Some
               (fun snap ->
                 (* Flush first: resume truncates the spool back to the
                    checkpoint round, which must never cut into data that
                    only existed in the write buffer. *)
                 spool_flush sp;
                 Mac_sim.Checkpoint.write_rotated ~path:ck snap)
           else None);
        telemetry = Some probe }
    in
    let session =
      E.start ~config ?resume ~algorithm ~n:cc.cc_n ~k:cc.cc_k ~adversary
        ~rounds:cc.cc_rounds ()
    in
    ch.ch_session <- Some session;
    ch.ch_spool <- Some sp;
    ch.ch_probe <- Some probe;
    ch.ch_steps_total <- 0;
    ch.ch_step_target <- 0;
    locked ch.ch_mutex (fun () ->
        ch.ch_status <- Running;
        ch.ch_shard <- shard.sh_index;
        ch.ch_feed <- feed;
        ch.ch_round <- E.session_round session;
        ch.ch_backlog <- E.session_backlog session);
    shard.sh_channels <- ch :: shard.sh_channels;
    reply
      (ok_fields
         [ ("channel", J.Str cc.cc_id);
           ("shard", J.Int shard.sh_index);
           ("round", J.Int (E.session_round session)) ])
  with e ->
    let msg = Printexc.to_string e in
    locked ch.ch_mutex (fun () -> ch.ch_status <- Failed msg);
    write_meta sv ch;
    sv.cfg.log
      (Printf.sprintf "channel %s failed to start: %s" ch.ch_cfg.cc_id msg);
    reply (err_line msg)

(* Drain: checkpoint every running channel at its current round boundary
   so a restarted daemon resumes the fleet bit-identically. *)
let drain_shard sv shard =
  List.iter
    (fun ch ->
      match (ch.ch_status, ch.ch_session) with
      | Running, Some s ->
        (try
           (match ch.ch_spool with Some sp -> spool_flush sp | None -> ());
           Mac_sim.Checkpoint.write_rotated
             ~path:(ckpt_path sv ch.ch_cfg.cc_id)
             (E.session_snapshot s);
           match ch.ch_spool with
           | Some sp -> spool_close sp
           | None -> ()
         with e ->
           sv.cfg.log
             (Printf.sprintf "drain: channel %s checkpoint failed: %s"
                ch.ch_cfg.cc_id (Printexc.to_string e)))
      | _ -> ())
    shard.sh_channels

let shard_main sv shard =
  try
    let running = ref true in
    while !running do
      let thunks = ref [] in
      locked shard.sh_mutex (fun () ->
          while
            Queue.is_empty shard.sh_mailbox
            && (not shard.sh_stop)
            && not (List.exists chan_has_work shard.sh_channels)
          do
            Condition.wait shard.sh_cond shard.sh_mutex
          done;
          while not (Queue.is_empty shard.sh_mailbox) do
            thunks := Queue.pop shard.sh_mailbox :: !thunks
          done);
      List.iter (fun t -> t ()) (List.rev !thunks);
      if shard.sh_stop then begin
        drain_shard sv shard;
        running := false
      end
      else
        List.iter
          (fun ch -> if chan_has_work ch then advance_channel sv ch)
          shard.sh_channels
    done
  with e ->
    sv.cfg.log
      (Printf.sprintf "shard %d died: %s" shard.sh_index
         (Printexc.to_string e));
    shard.sh_dead <- true

let new_shard i =
  { sh_index = i;
    sh_mutex = Mutex.create ();
    sh_cond = Condition.create ();
    sh_mailbox = Queue.create ();
    sh_channels = [];
    sh_stop = false;
    sh_dead = false }

let spawn_shard sv i =
  let shard = new_shard i in
  sv.shards.(i) <- shard;
  sv.domains.(i) <- Some (Domain.spawn (fun () -> shard_main sv shard));
  shard

(* --- command handling (main domain) ------------------------------------- *)

let pick_shard sv =
  let i = sv.next_shard mod Array.length sv.shards in
  sv.next_shard <- sv.next_shard + 1;
  sv.shards.(i)

let find_channel sv v =
  match Option.bind (J.member "channel" v) J.to_str with
  | None -> Error "missing \"channel\""
  | Some id -> (
    match Hashtbl.find_opt sv.channels id with
    | None -> Error (Printf.sprintf "unknown channel %S" id)
    | Some ch -> Ok ch)

(* Post an engine-touching thunk to the channel's owning shard. The thunk
   re-checks ownership: a migration may have moved the channel after the
   lookup but before the shard ran the mailbox. *)
let post_channel_thunk sv ch ~conn_id f =
  let idx = locked ch.ch_mutex (fun () -> ch.ch_shard) in
  let shard = sv.shards.(idx) in
  post_thunk shard (fun () ->
      if List.memq ch shard.sh_channels then f shard
      else
        send_from_shard sv conn_id
          (err_line
             (Printf.sprintf "channel %s is migrating; retry" ch.ch_cfg.cc_id)))

let channel_row ch =
  locked ch.ch_mutex (fun () ->
      let pending =
        match ch.ch_feed with Some f -> f.Mac_adversary.Pattern.pending () | None -> 0
      in
      J.Obj
        ([ ("id", J.Str ch.ch_cfg.cc_id);
           ("algorithm", J.Str ch.ch_cfg.cc_algorithm);
           ("n", J.Int ch.ch_cfg.cc_n);
           ("status", J.Str (status_str ch.ch_status));
           ("shard", J.Int ch.ch_shard);
           ("round", J.Int ch.ch_round);
           ("rounds", J.Int ch.ch_cfg.cc_rounds);
           ("backlog", J.Int ch.ch_backlog);
           ("pending", J.Int pending) ]
        @ match ch.ch_status with
          | Failed msg -> [ ("error", J.Str msg) ]
          | _ -> []))

let cmd_open sv conn_id v =
  let str k = Option.bind (J.member k v) J.to_str in
  let int k = Option.bind (J.member k v) J.to_int in
  let id =
    match str "channel" with
    | Some id -> id
    | None ->
      let id = Printf.sprintf "ch%d" sv.next_auto in
      sv.next_auto <- sv.next_auto + 1;
      id
  in
  if not (valid_id id) then
    send_main sv conn_id
      (err_line "channel id must match [A-Za-z0-9._-]{1,64}")
  else if Hashtbl.mem sv.channels id then
    send_main sv conn_id (err_line (Printf.sprintf "channel %S already exists" id))
  else begin
    let qrat k default =
      match str k with
      | None -> Ok default
      | Some s -> Mac_channel.Qrat.of_string s
    in
    match
      ( str "algorithm",
        qrat "rate" (Mac_channel.Qrat.make 1 2),
        qrat "burst" (Mac_channel.Qrat.of_int 2) )
    with
    | None, _, _ -> send_main sv conn_id (err_line "missing \"algorithm\"")
    | _, Error msg, _ | _, _, Error msg ->
      send_main sv conn_id (err_line msg)
    | Some algorithm, Ok rate, Ok burst ->
      let n = Option.value ~default:8 (int "n") in
      let k = Option.value ~default:3 (int "k") in
      let rounds = Option.value ~default:100_000 (int "rounds") in
      let drain = Option.value ~default:0 (int "drain") in
      if n < 1 || k < 1 || rounds < 0 || drain < 0 then
        send_main sv conn_id (err_line "n, k must be >= 1; rounds, drain >= 0")
      else begin
        let cc =
          { cc_id = id;
            cc_algorithm = algorithm;
            cc_n = n;
            cc_k = k;
            cc_rate = rate;
            cc_burst = burst;
            cc_rounds = rounds;
            cc_drain = drain;
            cc_pattern = Option.value ~default:"external" (str "pattern");
            cc_seed = Option.value ~default:42 (int "seed");
            cc_faults = str "faults";
            cc_every =
              Option.value ~default:sv.cfg.checkpoint_every
                (int "checkpoint_every") }
        in
        let ch =
          { ch_cfg = cc;
            ch_mutex = Mutex.create ();
            ch_status = Pending;
            ch_shard = 0;
            ch_round = 0;
            ch_backlog = 0;
            ch_feed = None;
            ch_summary = None;
            ch_session = None;
            ch_spool = None;
            ch_probe = None;
            ch_steps_total = 0;
            ch_step_target = 0;
            ch_run_all = false;
            ch_waiters = [] }
        in
        Hashtbl.replace sv.channels id ch;
        sv.order <- sv.order @ [ id ];
        write_meta sv ch;
        let shard = pick_shard sv in
        locked ch.ch_mutex (fun () -> ch.ch_shard <- shard.sh_index);
        post_thunk shard (fun () ->
            adopt_channel sv shard ch ~reply:(send_from_shard sv conn_id))
      end
  end

let cmd_inject sv conn_id v =
  match find_channel sv v with
  | Error msg -> send_main sv conn_id (err_line msg)
  | Ok ch -> (
    let feed, status =
      locked ch.ch_mutex (fun () -> (ch.ch_feed, ch.ch_status))
    in
    match (status, feed) with
    | (Complete | Failed _), _ ->
      send_main sv conn_id
        (err_line
           (Printf.sprintf "channel %s is %s" ch.ch_cfg.cc_id
              (status_str status)))
    | _, None ->
      send_main sv conn_id
        (err_line
           (Printf.sprintf
              "channel %s uses generator pattern %S, not external injection"
              ch.ch_cfg.cc_id ch.ch_cfg.cc_pattern))
    | _, Some feed -> (
      let n = ch.ch_cfg.cc_n in
      let triple v =
        match J.to_list v with
        | Some [ a; s; d ] -> (
          match (J.to_int a, J.to_int s, J.to_int d) with
          | Some a, Some s, Some d -> Ok (a, s, d)
          | _ -> Error "packets entries must be [at, src, dst] integers")
        | _ -> Error "packets entries must be [at, src, dst] integers"
      in
      let packets =
        match J.member "packets" v with
        | Some (J.List items) ->
          List.fold_left
            (fun acc item ->
              match (acc, triple item) with
              | Error _, _ -> acc
              | _, (Error _ as e) -> e
              | Ok acc, Ok t -> Ok (t :: acc))
            (Ok []) items
          |> Result.map List.rev
        | Some _ -> Error "\"packets\" must be an array"
        | None -> (
          match
            ( Option.bind (J.member "src" v) J.to_int,
              Option.bind (J.member "dst" v) J.to_int )
          with
          | Some src, Some dst ->
            Ok [ (Option.value ~default:0 (Option.bind (J.member "at" v) J.to_int), src, dst) ]
          | _ -> Error "need \"src\" and \"dst\" (or \"packets\")")
      in
      match packets with
      | Error msg -> send_main sv conn_id (err_line msg)
      | Ok items -> (
        let bad =
          List.find_opt
            (fun (at, src, dst) ->
              at < 0 || src < 0 || dst < 0 || src >= n || dst >= n || src = dst)
            items
        in
        match bad with
        | Some (at, src, dst) ->
          send_main sv conn_id
            (err_line
               (Printf.sprintf
                  "bad injection (at=%d src=%d dst=%d): stations in [0,%d), \
                   src <> dst, at >= 0"
                  at src dst n))
        | None ->
          List.iter
            (fun (at, src, dst) ->
              feed.Mac_adversary.Pattern.push ~at ~src ~dst)
            items;
          send_main sv conn_id
            (ok_fields
               [ ("channel", J.Str ch.ch_cfg.cc_id);
                 ("accepted", J.Int (List.length items));
                 ("pending", J.Int (feed.Mac_adversary.Pattern.pending ())) ]))))

let cmd_step sv conn_id v ~run_all =
  match find_channel sv v with
  | Error msg -> send_main sv conn_id (err_line msg)
  | Ok ch ->
    let rounds = Option.bind (J.member "rounds" v) J.to_int in
    (match (run_all, rounds) with
     | false, (None | Some 0) when rounds = Some 0 ->
       send_main sv conn_id (err_line "\"rounds\" must be >= 1")
     | false, None -> send_main sv conn_id (err_line "missing \"rounds\"")
     | false, Some r when r < 1 ->
       send_main sv conn_id (err_line "\"rounds\" must be >= 1")
     | _ ->
       post_channel_thunk sv ch ~conn_id (fun _shard ->
           match (ch.ch_status, ch.ch_session) with
           | Running, Some _ ->
             if run_all then begin
               ch.ch_run_all <- true;
               ch.ch_waiters <- Run_waiter { w_conn = conn_id } :: ch.ch_waiters
             end
             else begin
               let r = Option.get rounds in
               let target = ch.ch_steps_total + r in
               ch.ch_step_target <- max ch.ch_step_target target;
               ch.ch_waiters <-
                 Step_waiter { w_conn = conn_id; w_target = target }
                 :: ch.ch_waiters
             end
           | Complete, _ ->
             send_from_shard sv conn_id
               (ok_fields
                  [ ("channel", J.Str ch.ch_cfg.cc_id);
                    ("round", J.Int ch.ch_round);
                    ("complete", J.Bool true) ])
           | Failed msg, _ ->
             send_from_shard sv conn_id (err_line ("channel failed: " ^ msg))
           | _ ->
             send_from_shard sv conn_id
               (err_line
                  (Printf.sprintf "channel %s is not running" ch.ch_cfg.cc_id))))

let cmd_snapshot sv conn_id v =
  match find_channel sv v with
  | Error msg -> send_main sv conn_id (err_line msg)
  | Ok ch ->
    post_channel_thunk sv ch ~conn_id (fun _shard ->
        match ch.ch_session with
        | Some s ->
          (try
             (match ch.ch_spool with Some sp -> spool_flush sp | None -> ());
             let snap = E.session_snapshot s in
             let path = ckpt_path sv ch.ch_cfg.cc_id in
             Mac_sim.Checkpoint.write_rotated ~path snap;
             send_from_shard sv conn_id
               (ok_fields
                  [ ("channel", J.Str ch.ch_cfg.cc_id);
                    ("round", J.Int (E.snapshot_round snap));
                    ("path", J.Str path) ])
           with e -> send_from_shard sv conn_id (err_line (Printexc.to_string e)))
        | None ->
          send_from_shard sv conn_id
            (err_line
               (Printf.sprintf "channel %s has no live session" ch.ch_cfg.cc_id)))

let cmd_migrate sv conn_id v =
  match find_channel sv v with
  | Error msg -> send_main sv conn_id (err_line msg)
  | Ok ch -> (
    match Option.bind (J.member "shard" v) J.to_int with
    | None -> send_main sv conn_id (err_line "missing \"shard\"")
    | Some target when target < 0 || target >= Array.length sv.shards ->
      send_main sv conn_id
        (err_line
           (Printf.sprintf "shard %d out of range [0,%d)" target
              (Array.length sv.shards)))
    | Some target ->
      post_channel_thunk sv ch ~conn_id (fun shard ->
          match ch.ch_session with
          | None ->
            send_from_shard sv conn_id
              (err_line
                 (Printf.sprintf "channel %s has no live session"
                    ch.ch_cfg.cc_id))
          | Some s ->
            (try
               (* Checkpoint through the PR-5 codec, detach, and hand the
                  channel to the target shard, which resumes it from the
                  file just written — the same path cold adoption takes. *)
               (match ch.ch_spool with Some sp -> spool_close sp | None -> ());
               ch.ch_spool <- None;
               Mac_sim.Checkpoint.write_rotated
                 ~path:(ckpt_path sv ch.ch_cfg.cc_id)
                 (E.session_snapshot s);
               ch.ch_session <- None;
               ch.ch_run_all <- false;
               ch.ch_step_target <- ch.ch_steps_total;
               fail_waiters sv ch "channel migrated; re-issue the command";
               shard.sh_channels <-
                 List.filter (fun c -> not (c == ch)) shard.sh_channels;
               locked ch.ch_mutex (fun () ->
                   ch.ch_status <- Pending;
                   ch.ch_feed <- None;
                   ch.ch_shard <- target);
               let tshard = sv.shards.(target) in
               post_thunk tshard (fun () ->
                   adopt_channel sv tshard ch
                     ~reply:(send_from_shard sv conn_id))
             with e ->
               send_from_shard sv conn_id (err_line (Printexc.to_string e)))))

let cmd_subscribe sv conn v =
  match find_channel sv v with
  | Error msg -> send_main sv conn.co_id (err_line msg)
  | Ok ch ->
    if conn.co_sub <> None then
      send_main sv conn.co_id (err_line "connection already subscribed")
    else begin
      send_main sv conn.co_id
        (ok_fields [ ("channel", J.Str ch.ch_cfg.cc_id) ]);
      conn.co_sub <-
        Some
          { sub_chan = ch;
            sub_fd = None;
            sub_pos = 0;
            sub_carry = Buffer.create 256 }
    end

let cmd_stats sv conn_id =
  let total_backlog = ref 0 in
  let by_status = Hashtbl.create 4 in
  Hashtbl.iter
    (fun _ ch ->
      locked ch.ch_mutex (fun () ->
          total_backlog := !total_backlog + ch.ch_backlog;
          let k = status_str ch.ch_status in
          Hashtbl.replace by_status k
            (1 + Option.value ~default:0 (Hashtbl.find_opt by_status k))))
    sv.channels;
  let statuses =
    Hashtbl.fold (fun k v acc -> (k, J.Int v) :: acc) by_status []
  in
  send_main sv conn_id
    (ok_fields
       [ ("channels", J.Int (Hashtbl.length sv.channels));
         ("shards", J.Int (Array.length sv.shards));
         ("respawns", J.Int sv.respawns);
         ("backlog", J.Int !total_backlog);
         ("status", J.Obj (List.sort compare statuses)) ])

let cmd_list sv conn_id =
  let rows =
    List.filter_map
      (fun id -> Option.map channel_row (Hashtbl.find_opt sv.channels id))
      sv.order
  in
  send_main sv conn_id (ok_fields [ ("channels", J.List rows) ])

let cmd_kill_shard sv conn_id v =
  match Option.bind (J.member "shard" v) J.to_int with
  | None -> send_main sv conn_id (err_line "missing \"shard\"")
  | Some i when i < 0 || i >= Array.length sv.shards ->
    send_main sv conn_id
      (err_line
         (Printf.sprintf "shard %d out of range [0,%d)" i
            (Array.length sv.shards)))
  | Some i ->
    send_main sv conn_id (ok_fields [ ("shard", J.Int i) ]);
    post_thunk sv.shards.(i) (fun () -> raise Shard_killed)

let handle_command sv conn line =
  match J.parse line with
  | Error msg -> send_main sv conn.co_id (err_line ("bad json: " ^ msg))
  | Ok v -> (
    match Option.bind (J.member "cmd" v) J.to_str with
    | None -> send_main sv conn.co_id (err_line "missing \"cmd\"")
    | Some cmd -> (
      match cmd with
      | "ping" -> send_main sv conn.co_id (ok_fields [ ("pong", J.Bool true) ])
      | "open" -> cmd_open sv conn.co_id v
      | "inject" -> cmd_inject sv conn.co_id v
      | "step" -> cmd_step sv conn.co_id v ~run_all:false
      | "run" -> cmd_step sv conn.co_id v ~run_all:true
      | "snapshot" -> cmd_snapshot sv conn.co_id v
      | "migrate" -> cmd_migrate sv conn.co_id v
      | "subscribe" -> cmd_subscribe sv conn v
      | "stats" -> cmd_stats sv conn.co_id
      | "list" -> cmd_list sv conn.co_id
      | "kill-shard" -> cmd_kill_shard sv conn.co_id v
      | "drain" ->
        send_main sv conn.co_id (ok_fields [ ("draining", J.Bool true) ]);
        Mac_sim.Supervisor.request_drain ()
      | other ->
        send_main sv conn.co_id
          (err_line (Printf.sprintf "unknown command %S" other))))

(* --- subscriptions ------------------------------------------------------ *)

(* Forward new spool bytes (complete lines only) into the connection's
   output buffer. Closes the connection once the channel has finished and
   the spool is fully streamed — the client's EOF doubles as "stream
   complete". *)
let pump_subscription sv conn =
  match conn.co_sub with
  | None -> ()
  | Some sub ->
    if Buffer.length conn.co_out < 1 lsl 16 then begin
      let ch = sub.sub_chan in
      let path = spool_path sv ch.ch_cfg.cc_id in
      (match sub.sub_fd with
       | None ->
         if Sys.file_exists path then
           sub.sub_fd <- Some (Unix.openfile path [ Unix.O_RDONLY ] 0)
       | Some _ -> ());
      match sub.sub_fd with
      | None -> ()
      | Some fd ->
        let chunk = Bytes.create 65536 in
        ignore (Unix.lseek fd sub.sub_pos Unix.SEEK_SET);
        let got = Unix.read fd chunk 0 (Bytes.length chunk) in
        if got > 0 then begin
          sub.sub_pos <- sub.sub_pos + got;
          Buffer.add_subbytes sub.sub_carry chunk 0 got;
          let data = Buffer.contents sub.sub_carry in
          match String.rindex_opt data '\n' with
          | None -> ()
          | Some last ->
            Buffer.add_string conn.co_out (String.sub data 0 (last + 1));
            Buffer.clear sub.sub_carry;
            Buffer.add_string sub.sub_carry
              (String.sub data (last + 1) (String.length data - last - 1))
        end
        else begin
          let finished =
            locked ch.ch_mutex (fun () ->
                match ch.ch_status with
                | Complete | Failed _ -> true
                | Pending | Running -> false)
          in
          if finished && Buffer.length sub.sub_carry = 0 then
            conn.co_closing <- true
        end
    end

(* --- connection I/O ----------------------------------------------------- *)

let drop_conn sv conn =
  (try Unix.close conn.co_fd with Unix.Unix_error _ -> ());
  (match conn.co_sub with
   | Some { sub_fd = Some fd; _ } ->
     (try Unix.close fd with Unix.Unix_error _ -> ())
   | _ -> ());
  Hashtbl.remove sv.conns conn.co_id

let read_conn sv conn =
  let chunk = Bytes.create 65536 in
  match Unix.read conn.co_fd chunk 0 (Bytes.length chunk) with
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
  | exception Unix.Unix_error _ -> drop_conn sv conn
  | 0 ->
    (* Client went away. A subscriber disconnecting mid-stream only tears
       down this connection — the channel and its shard never notice. *)
    drop_conn sv conn
  | got ->
    Buffer.add_subbytes conn.co_in chunk 0 got;
    if Buffer.length conn.co_in > max_line then begin
      Buffer.add_string conn.co_out (err_line "line too long");
      conn.co_closing <- true
    end
    else begin
      let data = Buffer.contents conn.co_in in
      let rec split from =
        match String.index_from_opt data from '\n' with
        | None ->
          Buffer.clear conn.co_in;
          Buffer.add_string conn.co_in
            (String.sub data from (String.length data - from))
        | Some nl ->
          let line = String.trim (String.sub data from (nl - from)) in
          if line <> "" then handle_command sv conn line;
          split (nl + 1)
      in
      split 0
    end

let flush_conn sv conn =
  let data = Buffer.contents conn.co_out in
  if data <> "" then begin
    match
      Unix.write conn.co_fd (Bytes.unsafe_of_string data) 0
        (String.length data)
    with
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
    | exception Unix.Unix_error _ -> drop_conn sv conn
    | written ->
      Buffer.clear conn.co_out;
      if written < String.length data then
        Buffer.add_string conn.co_out
          (String.sub data written (String.length data - written))
  end;
  if conn.co_closing && Buffer.length conn.co_out = 0 && conn.co_sub = None
  then drop_conn sv conn
  else if
    conn.co_closing && Buffer.length conn.co_out = 0 && conn.co_sub <> None
  then begin
    (* Subscription complete: half-close so the client sees EOF. *)
    (match conn.co_sub with
     | Some { sub_fd = Some fd; _ } ->
       (try Unix.close fd with Unix.Unix_error _ -> ())
     | _ -> ());
    conn.co_sub <- None;
    drop_conn sv conn
  end

(* --- shard respawn ------------------------------------------------------ *)

let check_shards sv =
  Array.iteri
    (fun i shard ->
      if shard.sh_dead then begin
        (match sv.domains.(i) with
         | Some d -> Domain.join d
         | None -> ());
        sv.domains.(i) <- None;
        let orphans = shard.sh_channels in
        let fresh = spawn_shard sv i in
        sv.respawns <- sv.respawns + 1;
        let adopted = ref 0 in
        List.iter
          (fun ch ->
            let running =
              locked ch.ch_mutex (fun () ->
                  match ch.ch_status with
                  | Running | Pending -> true
                  | Complete | Failed _ -> false)
            in
            if running then begin
              incr adopted;
              (* The dead shard may have crashed mid-round: the in-memory
                 session is unusable. Rebuild from the last checkpoint;
                 the spool is truncated back to it during adoption. *)
              ch.ch_session <- None;
              ch.ch_spool <- None;
              ch.ch_probe <- None;
              ch.ch_run_all <- false;
              ch.ch_step_target <- 0;
              ch.ch_steps_total <- 0;
              fail_waiters sv ch "shard died; channel re-adopted, re-issue";
              locked ch.ch_mutex (fun () ->
                  ch.ch_status <- Pending;
                  ch.ch_feed <- None;
                  ch.ch_shard <- i);
              post_thunk fresh (fun () ->
                  adopt_channel sv fresh ch ~reply:(fun _ -> ()))
            end)
          orphans;
        (* Commands posted between the crash and this respawn sit in the
           dead shard's mailbox; replay them on the fresh shard (after the
           adoptions) so no client waits forever on a lost thunk. *)
        let leftovers =
          locked shard.sh_mutex (fun () ->
              let acc = ref [] in
              while not (Queue.is_empty shard.sh_mailbox) do
                acc := Queue.pop shard.sh_mailbox :: !acc
              done;
              List.rev !acc)
        in
        List.iter (post_thunk fresh) leftovers;
        sv.cfg.log
          (Printf.sprintf "shard %d respawned; re-adopted %d channel(s)" i
             !adopted)
      end)
    sv.shards

(* --- lifecycle ---------------------------------------------------------- *)

let load_existing sv =
  if Sys.file_exists sv.cfg.dir then
    Array.iter
      (fun file ->
        if Filename.check_suffix file ".meta" then begin
          let path = Filename.concat sv.cfg.dir file in
          match
            let ic = open_in path in
            Fun.protect
              ~finally:(fun () -> close_in_noerr ic)
              (fun () -> input_line ic)
          with
          | exception (Sys_error _ | End_of_file) -> ()
          | line -> (
            match parse_meta line with
            | Error msg -> sv.cfg.log (Printf.sprintf "%s: %s" path msg)
            | Ok (cc, status, summary) ->
              let ch =
                { ch_cfg = cc;
                  ch_mutex = Mutex.create ();
                  ch_status =
                    (match status with
                     | "complete" -> Complete
                     | "failed" -> Failed "failed in a previous run"
                     | _ -> Pending);
                  ch_shard = 0;
                  ch_round = (if status = "complete" then cc.cc_rounds else 0);
                  ch_backlog = 0;
                  ch_feed = None;
                  ch_summary = summary;
                  ch_session = None;
                  ch_spool = None;
                  ch_probe = None;
                  ch_steps_total = 0;
                  ch_step_target = 0;
                  ch_run_all = false;
                  ch_waiters = [] }
              in
              Hashtbl.replace sv.channels cc.cc_id ch;
              sv.order <- sv.order @ [ cc.cc_id ];
              if status = "open" then begin
                let shard = pick_shard sv in
                locked ch.ch_mutex (fun () -> ch.ch_shard <- shard.sh_index);
                post_thunk shard (fun () ->
                    adopt_channel sv shard ch ~reply:(fun _ -> ()));
                sv.cfg.log
                  (Printf.sprintf "re-adopting channel %s on shard %d"
                     cc.cc_id shard.sh_index)
              end)
        end)
      (Sys.readdir sv.cfg.dir)

let create (cfg : config) =
  if cfg.shards < 1 then Error "serve: need at least one shard"
  else begin
    (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
     with Invalid_argument _ -> ());
    if not (Sys.file_exists cfg.dir) then Unix.mkdir cfg.dir 0o755;
    if Sys.file_exists cfg.socket then Sys.remove cfg.socket;
    match Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 with
    | exception Unix.Unix_error (e, _, _) ->
      Error ("serve: socket: " ^ Unix.error_message e)
    | listener -> (
      match Unix.bind listener (Unix.ADDR_UNIX cfg.socket) with
      | exception Unix.Unix_error (e, _, _) ->
        Unix.close listener;
        Error
          (Printf.sprintf "serve: cannot bind %s: %s" cfg.socket
             (Unix.error_message e))
      | () ->
        Unix.listen listener 64;
        Unix.set_nonblock listener;
        let wake_r, wake_w = Unix.pipe () in
        Unix.set_nonblock wake_r;
        Unix.set_nonblock wake_w;
        let fleet =
          Mac_sim.Telemetry.Fleet.create ~dir:cfg.dir
            ~every:cfg.telemetry_every ()
        in
        let sv =
          { cfg;
            fleet;
            shards = Array.init cfg.shards new_shard;
            domains = Array.make cfg.shards None;
            channels = Hashtbl.create 64;
            order = [];
            conns = Hashtbl.create 16;
            next_conn = 0;
            next_auto = 0;
            next_shard = 0;
            respawns = 0;
            listener;
            wake_r;
            wake_w;
            out_mutex = Mutex.create ();
            outbox = Queue.create () }
        in
        (* The fleet file exists from the first breath, so a dashboard (or
           top --check) pointed at the directory never races channel
           creation. *)
        Mac_sim.Telemetry.Fleet.add_counter sv.fleet
          ~help:"Serve-daemon boots." "serve_boots_total";
        for i = 0 to cfg.shards - 1 do
          ignore (spawn_shard sv i)
        done;
        load_existing sv;
        Ok sv)
  end

let drain sv =
  sv.cfg.log "drain: checkpointing all running channels";
  Array.iter
    (fun shard ->
      locked shard.sh_mutex (fun () ->
          shard.sh_stop <- true;
          Condition.signal shard.sh_cond))
    sv.shards;
  Array.iteri
    (fun i d ->
      match d with
      | Some dom ->
        Domain.join dom;
        sv.domains.(i) <- None
      | None -> ())
    sv.domains;
  Hashtbl.iter (fun _ conn -> try Unix.close conn.co_fd with Unix.Unix_error _ -> ()) sv.conns;
  Hashtbl.reset sv.conns;
  (try Unix.close sv.listener with Unix.Unix_error _ -> ());
  (try Sys.remove sv.cfg.socket with Sys_error _ -> ());
  sv.cfg.log "drained";
  `Drained

let accept_conns sv =
  let rec go () =
    match Unix.accept sv.listener with
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | fd, _ ->
      Unix.set_nonblock fd;
      let id = sv.next_conn in
      sv.next_conn <- sv.next_conn + 1;
      Hashtbl.replace sv.conns id
        { co_id = id;
          co_fd = fd;
          co_in = Buffer.create 256;
          co_out = Buffer.create 256;
          co_sub = None;
          co_closing = false };
      go ()
  in
  go ()

let drain_outbox sv =
  let items =
    locked sv.out_mutex (fun () ->
        let acc = ref [] in
        while not (Queue.is_empty sv.outbox) do
          acc := Queue.pop sv.outbox :: !acc
        done;
        List.rev !acc)
  in
  List.iter (fun (conn_id, line) -> send_main sv conn_id line) items

let run sv =
  let rec loop () =
    if Mac_sim.Supervisor.drain_requested () then drain sv
    else begin
      check_shards sv;
      drain_outbox sv;
      let conns = Hashtbl.fold (fun _ c acc -> c :: acc) sv.conns [] in
      List.iter (fun c -> pump_subscription sv c) conns;
      let reads =
        sv.listener :: sv.wake_r
        :: List.filter_map
             (fun c -> if c.co_closing then None else Some c.co_fd)
             conns
      in
      let writes =
        List.filter_map
          (fun c -> if Buffer.length c.co_out > 0 then Some c.co_fd else None)
          conns
      in
      let timeout =
        if List.exists (fun c -> c.co_sub <> None || c.co_closing) conns then
          0.02
        else 0.25
      in
      (match Unix.select reads writes [] timeout with
       | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
       | exception Unix.Unix_error (Unix.EBADF, _, _) -> ()
       | readable, writable, _ ->
         if List.mem sv.wake_r readable then begin
           let b = Bytes.create 256 in
           try ignore (Unix.read sv.wake_r b 0 256)
           with Unix.Unix_error _ -> ()
         end;
         if List.mem sv.listener readable then accept_conns sv;
         List.iter
           (fun c ->
             if Hashtbl.mem sv.conns c.co_id && List.mem c.co_fd readable then
               read_conn sv c)
           conns;
         drain_outbox sv;
         List.iter
           (fun c ->
             if Hashtbl.mem sv.conns c.co_id then begin
               pump_subscription sv c;
               if
                 Buffer.length c.co_out > 0
                 || c.co_closing
                 || List.mem c.co_fd writable
               then flush_conn sv c
             end)
           conns);
      loop ()
    end
  in
  loop ()
