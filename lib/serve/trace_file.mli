(** Recorded injection traces: text files with one ["AT SRC DST"] triple
    per line ([#] comments and blank lines allowed). The same file feeds
    batch replay ([run --inject]) and socket replay ([fleet replay]). *)

val load :
  ?n:int -> path:string -> unit -> ((int * int * int) list, string) result
(** Parse a trace file in order. With [n], stations are range-checked
    against it. [src = dst] and negative values are rejected. *)

val save : path:string -> (int * int * int) list -> unit
(** Write a trace atomically (via {!Mac_sim.Durable}). *)
