(* Recorded injection traces: one "AT SRC DST" triple per line.

   The same file drives both transports — batch replay (routing_sim run
   --inject FILE preloads Pattern.external_queue) and the live daemon
   (routing_sim fleet replay pushes the triples over the socket) — which
   is what makes the serve-mode equivalence check meaningful: one trace,
   two code paths, byte-identical event streams. *)

let parse_line ~lineno s =
  let s =
    match String.index_opt s '#' with
    | Some i -> String.sub s 0 i
    | None -> s
  in
  let parts =
    List.filter (fun p -> p <> "") (String.split_on_char ' ' (String.trim s))
  in
  match parts with
  | [] -> Ok None
  | [ a; src; dst ] -> (
    match
      (int_of_string_opt a, int_of_string_opt src, int_of_string_opt dst)
    with
    | Some a, Some src, Some dst ->
      if a < 0 || src < 0 || dst < 0 then
        Error (Printf.sprintf "line %d: negative value" lineno)
      else if src = dst then
        Error (Printf.sprintf "line %d: src = dst (%d)" lineno src)
      else Ok (Some (a, src, dst))
    | _ -> Error (Printf.sprintf "line %d: expected three integers" lineno))
  | _ ->
    Error
      (Printf.sprintf "line %d: expected \"ROUND SRC DST\", got %S" lineno s)

let load ?n ~path () =
  match open_in path with
  | exception Sys_error msg -> Error msg
  | ic ->
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        let rec go lineno acc =
          match input_line ic with
          | exception End_of_file -> Ok (List.rev acc)
          | line -> (
            match parse_line ~lineno line with
            | Error _ as e -> e
            | Ok None -> go (lineno + 1) acc
            | Ok (Some ((_, src, dst) as item)) -> (
              match n with
              | Some n when src >= n || dst >= n ->
                Error
                  (Printf.sprintf "%s, line %d: station out of range (n = %d)"
                     path lineno n)
              | _ -> go (lineno + 1) (item :: acc)))
        in
        match go 1 [] with
        | Error msg -> Error (path ^ ": " ^ msg)
        | ok -> ok)

let save ~path items =
  let buf = Buffer.create 256 in
  List.iter
    (fun (at, src, dst) ->
      Buffer.add_string buf (Printf.sprintf "%d %d %d\n" at src dst))
    items;
  Mac_sim.Durable.write_string ~path (Buffer.contents buf)
