(** Minimal JSON codec for the serve protocol (values with real nesting,
    unlike the flat-object parser in [Mac_channel.Event]). *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

exception Parse_error of string

val parse : string -> (t, string) result
(** Parse one complete JSON value; trailing garbage is an error. *)

val to_string : t -> string
(** Single-line rendering (no newlines; strings escaped). *)

val member : string -> t -> t option
(** Field lookup on an [Obj]; [None] on anything else. *)

val to_int : t -> int option
val to_str : t -> string option
val to_bool : t -> bool option
val to_list : t -> t list option
