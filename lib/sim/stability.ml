type verdict =
  | Stable
  | Unstable
  | Inconclusive

type report = {
  verdict : verdict;
  slope : float;
  early_mean : float;
  late_mean : float;
}

let mean_of slice =
  if Array.length slice = 0 then 0.0
  else
    Array.fold_left (fun acc (_, q) -> acc +. float_of_int q) 0.0 slice
    /. float_of_int (Array.length slice)

let least_squares_slope slice =
  let len = Array.length slice in
  if len < 2 then 0.0
  else begin
    let sx = ref 0.0 and sy = ref 0.0 and sxx = ref 0.0 and sxy = ref 0.0 in
    Array.iter
      (fun (r, q) ->
        let x = float_of_int r and y = float_of_int q in
        sx := !sx +. x;
        sy := !sy +. y;
        sxx := !sxx +. (x *. x);
        sxy := !sxy +. (x *. y))
      slice;
    let nf = float_of_int len in
    let denom = (nf *. !sxx) -. (!sx *. !sx) in
    if Float.abs denom < 1e-9 then 0.0
    else ((nf *. !sxy) -. (!sx *. !sy)) /. denom
  end

let classify series =
  let len = Array.length series in
  if len < 8 then
    { verdict = Inconclusive; slope = 0.0; early_mean = 0.0; late_mean = 0.0 }
  else begin
    let quarter = len / 4 in
    let early = Array.sub series quarter quarter in
    let late = Array.sub series (len - quarter) quarter in
    let second_half = Array.sub series (len / 2) (len - (len / 2)) in
    let early_mean = mean_of early in
    let late_mean = mean_of late in
    let slope = least_squares_slope second_half in
    (* A genuinely unstable run keeps a positive trend *and* ends
       substantially above its early backlog. The +8 absolute slack keeps
       tiny stable backlogs (late 3 vs early 1) from misclassifying. *)
    let growing =
      slope > 1e-4 && late_mean > (1.5 *. early_mean) +. 8.0
    in
    let verdict = if growing then Unstable else Stable in
    { verdict; slope; early_mean; late_mean }
  end

let verdict_to_string = function
  | Stable -> "stable"
  | Unstable -> "UNSTABLE"
  | Inconclusive -> "inconclusive"

let pp_report ppf r =
  Format.fprintf ppf "%s (slope=%.4f pkt/round, backlog %.0f -> %.0f)"
    (verdict_to_string r.verdict) r.slope r.early_mean r.late_mean
