(** Machine-readable export of run results (CSV and JSON).

    The simulator is often driven from notebooks or scripts; these writers
    serialise {!Metrics.summary} values without any external dependency.
    [summaries_csv] emits one row per run with a fixed column set (header
    included); [series_csv] emits the sampled queue trajectory;
    [summary_json] a single JSON object (flat, no nesting beyond the
    [violations] and [faults] sub-objects). *)

val csv_header : string

val summary_csv_row : Metrics.summary -> string

val summaries_csv : Metrics.summary list -> string
(** Header plus one row per summary, newline-terminated. *)

val series_csv : Metrics.summary -> string
(** "round,total_queued" rows for the sampled series. *)

val summary_json : Metrics.summary -> string
(** One JSON object on one line; the [delay_histogram] field is an array of
    [[lo, hi, count]] bucket triples (see {!Histogram.buckets}). *)

val csv_float : float -> string
(** ["%.6g"], except non-finite values render as ["-"]. *)

val json_float : float -> string
(** ["%.6g"], except non-finite values render as ["null"] — ["%.6g"] alone
    would emit [nan]/[inf], which are invalid JSON tokens. *)

val json_escape : string -> string
(** Escape a string for inclusion inside JSON double quotes: quote,
    backslash, newlines and all other control characters below 0x20. *)

val write_file : path:string -> string -> unit
