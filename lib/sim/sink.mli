(** Pluggable consumers for the engine's typed event stream.

    A sink is a pair of closures: [emit] receives every
    {!Mac_channel.Event.t} the engine produces (in round order, with the
    round number alongside), and [close] flushes or finalises whatever
    the sink owns. The engine never closes sinks — whoever created one
    does, normally after [Engine.run] returns.

    Disabled observation costs the engine a single branch per event;
    sinks only pay when installed. *)

type t = {
  emit : round:int -> Mac_channel.Event.t -> unit;
  close : unit -> unit;
}

val make : ?close:(unit -> unit) -> (round:int -> Mac_channel.Event.t -> unit) -> t
(** Wrap an emit function; [close] defaults to a no-op. *)

val null : t
(** Swallows everything. *)

val close : t -> unit

val ring : ?all:bool -> Mac_channel.Trace.t -> t
(** Record events into the bounded in-memory {!Mac_channel.Trace} ring,
    formatted with [Event.to_string]. By default only
    {!Mac_channel.Event.notable} events are kept — the historical trace
    behaviour; [~all:true] records every event. *)

val jsonl : out_channel -> t
(** Stream one JSON object per line to the channel. [close] flushes but
    does not close the channel (the caller owns it). *)

val jsonl_file : string -> t
(** [jsonl] over a fresh file at [path]; [close] closes the file. *)

val tee : t list -> t
(** Fan every event out to each sink in order; [close] closes them all. *)

val sample : every:int -> t -> t
(** Forward only events of rounds divisible by [every] (so complete
    rounds are kept or dropped together). [every <= 1] forwards all. *)

(** The replay aggregate: what a counting pass over a recorded stream
    can reconstruct without any engine state. *)
type counts = {
  injected : int;
  delivered : int;
  relays : int;
  collisions : int;
  silences : int;
  lights : int;
  strandeds : int;
  station_rounds : int;  (** sum of switched-on stations over all rounds *)
  rounds : int;          (** injection rounds seen *)
  drain_rounds : int;
  crashes : int;
  restarts : int;
  jammed : int;          (** rounds a jam/noise fault forced *)
  lost : int;            (** packets lost to crash-with-drop faults *)
}

val counting : unit -> t * (unit -> counts)
(** A counting aggregator and its read-out. Feeding it the JSONL replay
    of a run reproduces the engine's [Metrics.summary] counts exactly. *)
