(* The one true atomic file writer.

   Every "atomic" file in the harness (checkpoints, telemetry
   expositions, sweep completion markers) goes through [write_atomic]:
   write a dot-tmp sibling, fsync it, then rename over the target.
   The fsync closes the hole the tmp+rename idiom leaves on its own —
   after a power cut the rename can be durable while the data is not,
   leaving an empty or truncated "atomic" file in place of the old one.

   [failpoint] exists for the chaos harness: it injects failures into
   the writer itself (a failed fsync, a failed rename) to prove callers
   survive them with the previous file contents intact. It is [None] in
   production and costs one ref read per write. *)

exception Injected_failure of string

(* Called (when set) at each stage of a write with the stage name
   ("open" | "fsync" | "rename") and the destination path; raising
   aborts the write at that stage, leaving the destination untouched. *)
let failpoint : (stage:string -> path:string -> unit) option ref = ref None

let trip ~stage ~path =
  match !failpoint with None -> () | Some f -> f ~stage ~path

let fsync_out_channel oc =
  flush oc;
  Unix.fsync (Unix.descr_of_out_channel oc)

let tmp_sibling path =
  Filename.concat (Filename.dirname path)
    ("." ^ Filename.basename path ^ ".tmp")

(* [fill oc] writes the contents; the channel is binary. On any failure
   (including injected ones) the tmp file is removed and the destination
   keeps its previous contents. *)
let write_atomic ~path fill =
  let tmp = tmp_sibling path in
  trip ~stage:"open" ~path;
  let oc = open_out_bin tmp in
  (try
     fill oc;
     trip ~stage:"fsync" ~path;
     fsync_out_channel oc;
     close_out oc
   with e ->
     close_out_noerr oc;
     (try Sys.remove tmp with Sys_error _ -> ());
     raise e);
  (try trip ~stage:"rename" ~path
   with e ->
     (try Sys.remove tmp with Sys_error _ -> ());
     raise e);
  Sys.rename tmp path

let write_string ~path s = write_atomic ~path (fun oc -> output_string oc s)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))
