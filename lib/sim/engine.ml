open Mac_channel

exception Protocol_violation of string

let snapshot_version = 1

(* A pure-data photograph of a run at a round boundary. Everything mutable
   the round loop reads is here: queues (in arrival order, with per-packet
   hop counts), encoded algorithm states, the adversary driver (exact
   bucket level + pattern cursor), mode memory, crash flags, and a deep
   copy of the metrics collector. The identity fields up front let resume
   reject a snapshot taken under a different configuration instead of
   silently diverging. *)
type snapshot = {
  snap_version : int;
  algorithm : string;
  state_version : int;
  snap_n : int;
  snap_k : int;
  adversary_name : string;
  rate : Qrat.t;
  burst : Qrat.t;
  pacing : Mac_adversary.Adversary.pacing;
  pattern_name : string;
  plan_name : string option;
  cfg_rounds : int;
  drain_limit : int;
  sample_every : int;
  round : int;
  drained : int;
  next_id : int;
  queues : Packet.t array array;
  hops : int array array;
  states : string array;
  prev_on : bool array;
  crashed : bool array;
  adversary_state : Mac_adversary.Adversary.driver_state;
  metrics : Metrics.t;
}

let snapshot_round s = s.round
let snapshot_drained s = s.drained
let snapshot_algorithm s = s.algorithm
let snapshot_n s = s.snap_n
let snapshot_k s = s.snap_k
let snapshot_rounds s = s.cfg_rounds

(* Execution mode. [Dense] is the classical engine: every station visited
   every round. [Sparse] demands the algorithm's closed-form schedule
   ([Algorithm.S.sparse]) and fails if absent: concrete rounds touch only
   scheduled or previously-on stations, and provably-silent stretches are
   skipped analytically in O(1). [Auto] uses sparse when the algorithm
   supports it and falls back to dense otherwise. Sparse and dense runs of
   the same configuration are bit-identical (events, summaries, snapshot
   bytes) — the verify layer certifies this differentially. *)
type mode = Dense | Sparse | Auto

type config = {
  rounds : int;
  drain_limit : int;
  sample_every : int;
  check_schedule : bool;
  strict : bool;
  trace : Trace.t option;
  sink : Sink.t option;
  faults : Mac_faults.Fault_plan.t option;
  checkpoint_every : int;
  on_checkpoint : (snapshot -> unit) option;
  telemetry : Telemetry.probe option;
  (* Called once per simulated round. The Supervisor's watchdog uses it
     as a liveness signal and cancellation point; [None] (the default)
     keeps the round loop on its allocation-free fast path. In sparse
     mode an analytic skip beats once per skipped stretch, not once per
     round. *)
  heartbeat : (unit -> unit) option;
  mode : mode;
}

let default_config ~rounds =
  { rounds; drain_limit = 0; sample_every = 0; check_schedule = false;
    strict = true; trace = None; sink = None; faults = None;
    checkpoint_every = 0; on_checkpoint = None; telemetry = None;
    heartbeat = None; mode = Dense }

type tracked = {
  packet : Packet.t;
  mutable delivered : bool;
  mutable hops : int;
}

(* Live-telemetry state for one run: the registry handles, resolved once
   at run start, plus the previous-sample cursors (time, round, energy,
   GC) that turn running totals into window rates. Engine-private. *)
let phase_names = [| "inject"; "faults"; "resolve"; "deliver"; "observe" |]

type live_telemetry = {
  lt_probe : Telemetry.probe;
  lt_round : Telemetry.gauge;
  lt_target : Telemetry.gauge;
  lt_rps : Telemetry.gauge;
  lt_backlog : Telemetry.gauge;
  lt_backlog_peak : Telemetry.gauge;
  lt_queue_peak : Telemetry.gauge;
  lt_tokens : Telemetry.gauge;
  lt_crashed : Telemetry.gauge;
  lt_energy_window : Telemetry.gauge;
  lt_energy_total : Telemetry.counter;
  lt_injected : Telemetry.counter;
  lt_delivered : Telemetry.counter;
  lt_collisions : Telemetry.counter;
  lt_jams : Telemetry.counter;
  lt_lost : Telemetry.counter;
  lt_checkpoints : Telemetry.counter;
  lt_samples : Telemetry.counter;
  lt_gc_minor_rate : Telemetry.gauge;
  lt_gc_heap : Telemetry.gauge;
  lt_gc_majors : Telemetry.counter;
  lt_phase : Histogram.t array; (* indexed like [phase_names] *)
  mutable lt_last_time : float;
  mutable lt_last_round : int;
  mutable lt_last_energy : int;
  mutable lt_last_minor : float;
}

let attach_telemetry (p : Telemetry.probe) ~target ~(metrics : Metrics.t) =
  let reg = p.Telemetry.registry in
  let g ?merge ~help name = Telemetry.gauge reg ~help ?merge name in
  let c ~help name = Telemetry.counter reg ~help name in
  let lt =
    { lt_probe = p;
      lt_round =
        g ~merge:Telemetry.Max ~help:"Rounds executed so far."
          Telemetry.Names.round;
      lt_target =
        g ~help:"Configured rounds plus drain limit."
          Telemetry.Names.rounds_target;
      lt_rps =
        g ~help:"Rounds per second since the previous sample."
          Telemetry.Names.rounds_per_second;
      lt_backlog = g ~help:"Packets queued now." Telemetry.Names.backlog;
      lt_backlog_peak =
        g ~merge:Telemetry.Max ~help:"Peak total backlog."
          Telemetry.Names.backlog_peak;
      lt_queue_peak =
        g ~merge:Telemetry.Max ~help:"Peak single-station queue."
          Telemetry.Names.station_queue_peak;
      lt_tokens =
        g ~help:"Adversary leaky-bucket level." Telemetry.Names.bucket_tokens;
      lt_crashed =
        g ~help:"Stations currently crashed." Telemetry.Names.crashed_stations;
      lt_energy_window =
        g ~help:"Station-rounds spent since the previous sample."
          Telemetry.Names.energy_window;
      lt_energy_total =
        c ~help:"Station-rounds spent so far." Telemetry.Names.energy_total;
      lt_injected = c ~help:"Packets injected." Telemetry.Names.injected_total;
      lt_delivered =
        c ~help:"Packets delivered." Telemetry.Names.delivered_total;
      lt_collisions =
        c ~help:"Collision rounds." Telemetry.Names.collisions_total;
      lt_jams = c ~help:"Jammed rounds." Telemetry.Names.jams_total;
      lt_lost = c ~help:"Packets lost to crashes." Telemetry.Names.lost_total;
      lt_checkpoints =
        c ~help:"Checkpoints written." Telemetry.Names.checkpoints_total;
      lt_samples =
        c ~help:"Telemetry samples taken." Telemetry.Names.samples_total;
      lt_gc_minor_rate =
        g ~help:"Minor-heap words allocated per round since the previous sample."
          Telemetry.Names.gc_minor_words_per_round;
      lt_gc_heap =
        g ~merge:Telemetry.Max ~help:"Major-heap words."
          Telemetry.Names.gc_heap_words;
      lt_gc_majors =
        c ~help:"Major collections." Telemetry.Names.gc_major_collections_total;
      lt_phase =
        Array.map
          (fun ph ->
            Telemetry.histogram reg
              ~help:
                "Wall-clock nanoseconds per engine phase of sampled rounds."
              ~labels:[ ("phase", ph) ] Telemetry.Names.phase_ns)
          phase_names;
      lt_last_time = Unix.gettimeofday ();
      lt_last_round = 0;
      lt_last_energy = (Metrics.live_stats metrics).Metrics.live_station_rounds;
      lt_last_minor = Gc.minor_words () }
  in
  ignore
    (Telemetry.register_histogram reg ~help:"Delivery delay in rounds."
       Telemetry.Names.delay
       (Metrics.live_delay_histogram metrics));
  Telemetry.set_gauge lt.lt_target (float_of_int target);
  lt

let violation ~strict metrics note msg =
  note metrics;
  if strict then raise (Protocol_violation msg)

(* An in-flight run, stopped at a round boundary. [run] drives one to
   completion in a single call; the serve layer drives one incrementally
   (a bounded batch of rounds at a time, with external injections arriving
   between batches). All fields are the closures the classical [run] loop
   used internally — the driver loops in [advance] are verbatim the old
   ones, so a session advanced with an unbounded budget is bit-identical
   to the closed-loop run. *)
type session = {
  ses_cfg : config;
  ses_round : int ref;
  ses_drained : int ref;
  ses_metrics : Metrics.t;
  ses_step : round:int -> draining:bool -> unit;
  ses_try_skip : draining:bool -> bool;
  ses_snapshot : unit -> snapshot;
  ses_checkpoint : unit -> unit;
  ses_sample : unit -> unit;
  ses_beat : unit -> unit;
  ses_finalize : unit -> Metrics.summary;
  mutable ses_done : bool;
}

let start ?config ?resume ~algorithm:(module A : Algorithm.S) ~n ~k ~adversary
    ~rounds () =
  let cfg =
    match config with
    | None -> default_config ~rounds
    | Some c ->
      (* One source of truth: a config whose [rounds] disagrees with the
         [~rounds] argument used to win silently — now it is an error. *)
      if c.rounds <> rounds then
        invalid_arg
          (Printf.sprintf
             "Engine.run: ~rounds:%d disagrees with config.rounds = %d" rounds
             c.rounds);
      c
  in
  let cap = A.required_cap ~n ~k in
  let sample_every =
    if cfg.sample_every > 0 then cfg.sample_every
    else max 1 ((cfg.rounds + cfg.drain_limit) / 1024)
  in
  let metrics =
    match resume with
    | Some s -> Metrics.copy s.metrics
    | None ->
      Metrics.create ~algorithm:A.name
        ~adversary:adversary.Mac_adversary.Adversary.name ~n ~k ~cap
        ~sample_every
  in
  let plan =
    match cfg.faults with
    | Some p when not (Mac_faults.Fault_plan.is_empty p) -> Some p
    | _ -> None
  in
  (* Resume, part 1: validate that the snapshot was taken under this exact
     configuration (a mismatch would not crash — it would silently produce
     a different run). Checked before any per-station state is built, so a
     wrong [n] is reported as a resume error, not as whatever the
     algorithm's constructor does with it. *)
  (match resume with
   | None -> ()
   | Some s ->
     let fail fmt =
       Printf.ksprintf
         (fun msg -> invalid_arg ("Engine.run: cannot resume: " ^ msg))
         fmt
     in
     if s.snap_version <> snapshot_version then
       fail "snapshot format version %d (this engine writes %d)"
         s.snap_version snapshot_version;
     if s.algorithm <> A.name then
       fail "snapshot is of algorithm %s, not %s" s.algorithm A.name;
     if s.state_version <> A.state_version then
       fail "%s state version %d (current %d)" A.name s.state_version
         A.state_version;
     if s.snap_n <> n || s.snap_k <> k then
       fail "snapshot has n=%d k=%d, run has n=%d k=%d" s.snap_n s.snap_k n k;
     if s.cfg_rounds <> cfg.rounds then
       fail "snapshot ran %d rounds, config says %d" s.cfg_rounds cfg.rounds;
     if s.drain_limit <> cfg.drain_limit then
       fail "snapshot drain limit %d, config says %d" s.drain_limit
         cfg.drain_limit;
     if s.sample_every <> sample_every then
       fail "snapshot sampled every %d rounds, this run samples every %d"
         s.sample_every sample_every;
     if s.adversary_name <> adversary.Mac_adversary.Adversary.name then
       fail "snapshot adversary %s, run adversary %s" s.adversary_name
         adversary.Mac_adversary.Adversary.name;
     if
       not
         (Qrat.equal s.rate adversary.Mac_adversary.Adversary.rate
         && Qrat.equal s.burst adversary.Mac_adversary.Adversary.burst)
     then
       fail "snapshot adversary type (%s,%s), run type (%s,%s)"
         (Qrat.to_string s.rate) (Qrat.to_string s.burst)
         (Qrat.to_string adversary.Mac_adversary.Adversary.rate)
         (Qrat.to_string adversary.Mac_adversary.Adversary.burst);
     if s.pacing <> adversary.Mac_adversary.Adversary.pacing then
       fail "snapshot and run disagree on pacing";
     if
       s.pattern_name
       <> adversary.Mac_adversary.Adversary.pattern.Mac_adversary.Pattern.name
     then
       fail "snapshot pattern %s, run pattern %s" s.pattern_name
         adversary.Mac_adversary.Adversary.pattern.Mac_adversary.Pattern.name;
     if s.plan_name <> Option.map Mac_faults.Fault_plan.name plan then
       fail "snapshot fault plan %s, run fault plan %s"
         (Option.value s.plan_name ~default:"<none>")
         (Option.value
            (Option.map Mac_faults.Fault_plan.name plan)
            ~default:"<none>"));
  let queues = Array.init n (fun _ -> Pqueue.create ~n) in
  let states = Array.init n (fun me -> A.create ~n ~k ~me) in
  let registry : (int, tracked) Hashtbl.t = Hashtbl.create 4096 in
  let driver = Mac_adversary.Adversary.start adversary in
  let next_id = ref 0 in
  let prev_on = Array.make n false in
  let on = Array.make n false in
  let strict = cfg.strict in
  (* Scratch space for the round loop: at most n transmissions per round,
     recorded into preallocated arrays instead of a consed-up list. The
     message slots hold stale messages between rounds; [tx_count] is the
     only truth about what is live. *)
  let tx_station = Array.make n 0 in
  let tx_message = Array.make n (Message.light []) in
  let tx_count = ref 0 in

  (* Fault injection. An absent or empty plan keeps every code path below
     identical to the fault-free engine: [crashed] stays all-false, the
     jam flags stay unset, and [apply_faults] is never called — so a run
     with [faults = None] is bit-identical (metrics and event stream) to
     one predating the fault layer. *)
  let crashed = Array.make n false in
  let crashed_count = ref 0 in
  let jam_now = ref false in
  let noise_now = ref false in

  (* Sparse execution. [sparse_impl = Some _] switches the round loop to
     touching only stations that are scheduled on this round or were on
     last round, and arms the analytic skip-ahead. Supporting state:
     - [nonempty]: the stations currently holding packets (maintained at
       every queue mutation), handed to the algorithm's [next_active];
     - [na_cache]: memoised next-possible-transmission round. -1 =
       unknown, [max_int] = never, else an under-estimate that is exact
       until a queue changes: packet arrivals relax it in place, removals
       invalidate it (a removal can only push the true round later, so
       the stale value would merely cost a concrete round — but it is
       cheap to recompute and keeps reasoning simple);
     - [prev_list]: ascending stations with [prev_on] set — the engine
       invariant in sparse mode is that [on]/[prev_on] are false outside
       it, so a round only needs the union of [prev_list] and the current
       on-set. *)
  let sparse_impl =
    match cfg.mode with
    | Dense -> None
    | Sparse ->
      (match A.sparse with
       | Some make -> Some (make ~n ~k)
       | None ->
         invalid_arg
           (Printf.sprintf
              "Engine.run: mode Sparse but algorithm %s provides no sparse \
               schedule (use Auto or Dense)"
              A.name))
    | Auto ->
      (match A.sparse with Some make -> Some (make ~n ~k) | None -> None)
  in
  let nonempty : (int, unit) Hashtbl.t = Hashtbl.create 64 in
  let na_cache = ref (-1) in
  (* Memoised [Adversary.next_admission]. The prediction is deterministic
     through quiet rounds (the bucket refills on schedule), so it stays
     exact until packets are actually admitted; [inject] clears it then.
     A stale value (< current round: the pattern declined its budget)
     falls through the [>= round] validity check and is recomputed. *)
  let adm_cache = ref (-1) in
  let prev_list = ref [||] in
  let cur_set = ref [||] in
  let note_queue_add ~round i =
    match sparse_impl with
    | None -> ()
    | Some sp ->
      Hashtbl.replace nonempty i ();
      if !na_cache >= round then
        (match
           sp.Algorithm.next_active ~round ~nonempty:[ (i, queues.(i)) ]
         with
         | Some v when v < !na_cache -> na_cache := v
         | _ -> ())
  in
  let note_queue_removed i =
    match sparse_impl with
    | None -> ()
    | Some _ ->
      if Pqueue.is_empty queues.(i) then Hashtbl.remove nonempty i;
      na_cache := -1
  in

  (* Resume, part 2: the snapshot is known to match; rebuild every piece
     of mutable state from it. *)
  (match resume with
   | None -> ()
   | Some s ->
     next_id := s.next_id;
     for i = 0 to n - 1 do
       states.(i) <- A.decode_state s.states.(i);
       Array.iteri
         (fun j (p : Packet.t) ->
           Pqueue.add queues.(i) p;
           Hashtbl.replace registry p.Packet.id
             { packet = p; delivered = false; hops = s.hops.(i).(j) })
         s.queues.(i)
     done;
     Array.blit s.prev_on 0 prev_on 0 n;
     Array.blit s.crashed 0 crashed 0 n;
     Array.iter (fun c -> if c then incr crashed_count) crashed;
     Mac_adversary.Adversary.restore_driver driver s.adversary_state);

  (* Sparse state is derived, not checkpointed: snapshots are mode-agnostic
     (a dense-written snapshot resumes sparsely and vice versa — the runs
     are bit-identical either way), so rebuild [prev_list] and [nonempty]
     from the restored arrays and queues. *)
  (match sparse_impl with
   | None -> ()
   | Some _ ->
     let pl = ref [] in
     for i = n - 1 downto 0 do
       if prev_on.(i) then pl := i :: !pl;
       if not (Pqueue.is_empty queues.(i)) then Hashtbl.replace nonempty i ()
     done;
     prev_list := Array.of_list !pl);

  (* Event emission. Every observable step of the round loop produces a
     typed Event.t, fanned out to the configured sinks (the legacy trace
     ring rides along as one of them). With no sink installed, the whole
     apparatus is a single [observing] branch per event — no allocation,
     no formatting — so un-observed runs keep their Table-1 numbers. *)
  let sinks =
    (match cfg.trace with Some t -> [ Sink.ring t ] | None -> [])
    @ (match cfg.sink with Some s -> [ s ] | None -> [])
  in
  let observing = sinks <> [] in
  let emit =
    match sinks with
    | [ s ] -> s.Sink.emit
    | _ -> fun ~round ev -> List.iter (fun (s : Sink.t) -> s.emit ~round ev) sinks
  in

  (* Live telemetry. With [cfg.telemetry = None] every hook below
     degenerates to a false branch on a pre-existing ref — no closures,
     no allocation, no clock reads — so an uninstrumented run keeps the
     zero-allocation fast path and stays bit-identical. When a probe is
     installed, engine phases are timed only on cadence-boundary rounds
     (the round preceding each sample), keeping the overhead bounded by
     the cadence rather than the round count. *)
  let lt =
    Option.map
      (fun p ->
        let l =
          attach_telemetry p ~target:(cfg.rounds + cfg.drain_limit) ~metrics
        in
        (match resume with Some s -> l.lt_last_round <- s.round | None -> ());
        l)
      cfg.telemetry
  in
  let tel_every =
    match cfg.telemetry with Some p -> p.Telemetry.every | None -> 0
  in
  let timing = ref false in
  let obs_acc = ref 0.0 in
  let emit =
    match lt with
    | None -> emit
    | Some _ ->
      let base = emit in
      fun ~round ev ->
        if !timing then begin
          let t0 = Unix.gettimeofday () in
          base ~round ev;
          obs_acc := !obs_acc +. (Unix.gettimeofday () -. t0)
        end
        else base ~round ev
  in

  (* Applied at the top of the round, after injection and before mode
     decisions: a crash this round already silences the station's mode
     decision; a restart rejoins from this round's decision on. Jam and
     noise only raise flags here — they act at channel resolution. *)
  let apply_faults round =
    match plan with
    | None -> ()
    | Some p ->
      jam_now := false;
      noise_now := false;
      List.iter
        (fun (a : Mac_faults.Fault_plan.action) ->
          match a with
          | Crash { station = i; queue = policy } ->
            if i < 0 || i >= n then
              raise
                (Protocol_violation
                   (Printf.sprintf "fault plan crashes station %d (n = %d)" i n));
            if not crashed.(i) then begin
              crashed.(i) <- true;
              incr crashed_count;
              let lost =
                match policy with
                | Mac_faults.Fault_plan.Retain -> 0
                | Mac_faults.Fault_plan.Drop ->
                  let lost =
                    List.fold_left
                      (fun lost (p : Packet.t) ->
                        Hashtbl.remove registry p.Packet.id;
                        lost + 1)
                      0
                      (Pqueue.drain queues.(i))
                  in
                  note_queue_removed i;
                  lost
              in
              Metrics.note_crash metrics ~round ~lost;
              if observing then
                emit ~round (Event.Station_crashed { station = i; lost })
            end
          | Restart { station = i } ->
            if i < 0 || i >= n then
              raise
                (Protocol_violation
                   (Printf.sprintf "fault plan restarts station %d (n = %d)" i n));
            if crashed.(i) then begin
              crashed.(i) <- false;
              decr crashed_count;
              states.(i) <- A.create ~n ~k ~me:i;
              Metrics.note_restart metrics ~round;
              if observing then
                emit ~round (Event.Station_restarted { station = i })
            end
          | Jam -> jam_now := true
          | Noise -> noise_now := true)
        (Mac_faults.Fault_plan.actions p ~round)
  in

  (* One view for the whole run: the closure record is allocated here,
     outside the round loop, and only the mutable [round] field advances.
     The closures read live engine state, so the view is always current. *)
  let view : Mac_adversary.View.t =
    { n; round = 0;
      queue_size = (fun i -> Pqueue.size queues.(i));
      queued_to =
        (fun d ->
          let total = ref 0 in
          for i = 0 to n - 1 do
            total := !total + Pqueue.count_to queues.(i) d
          done;
          !total);
      total_queued = (fun () -> Metrics.total_queued metrics);
      was_on = (fun i -> prev_on.(i)) }
  in

  let inject round =
    view.Mac_adversary.View.round <- round;
    let pairs = Mac_adversary.Adversary.inject driver ~view in
    if pairs <> [] then adm_cache := -1;
    List.iter
      (fun (src, dst) ->
        if src < 0 || src >= n || dst < 0 || dst >= n then
          raise (Protocol_violation "adversary injected out-of-range station");
        let id = !next_id in
        incr next_id;
        let p = Packet.make ~id ~src ~dst ~injected_at:round in
        if src = dst then begin
          (* Self-addressed packets need no channel use; delivered at
             injection (see DESIGN.md interpretation 5). Patterns never
             produce these; kept for external users of the engine. They
             never enter a queue, so they must not touch the queue peaks. *)
          Metrics.note_self_injection metrics;
          if observing then begin
            emit ~round (Event.Injected { id; src; dst });
            emit ~round
              (Event.Delivered { id; from_ = src; dst; delay = 0; hops = 0 })
          end
        end
        else begin
          Pqueue.add queues.(src) p;
          note_queue_add ~round src;
          Hashtbl.replace registry id { packet = p; delivered = false; hops = 0 };
          Metrics.note_injection metrics;
          Metrics.note_station_queue metrics (Pqueue.size queues.(src));
          if observing then emit ~round (Event.Injected { id; src; dst })
        end)
      pairs
  in

  (* One telemetry sample: refresh every gauge/counter from the live
     collector and engine state, then hand the registry to the sinks (as
     a typed event) and the probe's [on_sample] hook. Reads only. *)
  let tel_sample (l : live_telemetry) ~round =
    let now = Unix.gettimeofday () in
    let live = Metrics.live_stats metrics in
    Telemetry.set_gauge l.lt_round (float_of_int round);
    let dr = round - l.lt_last_round in
    let dt = now -. l.lt_last_time in
    if dr > 0 && dt > 0.0 then
      Telemetry.set_gauge l.lt_rps (float_of_int dr /. dt);
    Telemetry.set_gauge l.lt_backlog
      (float_of_int live.Metrics.live_total_queued);
    Telemetry.set_gauge l.lt_backlog_peak
      (float_of_int live.Metrics.live_max_total_queue);
    Telemetry.set_gauge l.lt_queue_peak
      (float_of_int live.Metrics.live_max_station_queue);
    Telemetry.set_gauge l.lt_tokens
      (Qrat.to_float (Mac_adversary.Adversary.tokens driver));
    let crashed_count = ref 0 in
    Array.iter (fun c -> if c then incr crashed_count) crashed;
    Telemetry.set_gauge l.lt_crashed (float_of_int !crashed_count);
    Telemetry.set_gauge l.lt_energy_window
      (float_of_int (live.Metrics.live_station_rounds - l.lt_last_energy));
    Telemetry.set_counter l.lt_energy_total live.Metrics.live_station_rounds;
    Telemetry.set_counter l.lt_injected live.Metrics.live_injected;
    Telemetry.set_counter l.lt_delivered live.Metrics.live_delivered;
    Telemetry.set_counter l.lt_collisions live.Metrics.live_collision_rounds;
    Telemetry.set_counter l.lt_jams live.Metrics.live_jammed_rounds;
    Telemetry.set_counter l.lt_lost live.Metrics.live_lost;
    Telemetry.inc l.lt_samples;
    let st = Gc.quick_stat () in
    let minor = st.Gc.minor_words in
    if dr > 0 then
      Telemetry.set_gauge l.lt_gc_minor_rate
        ((minor -. l.lt_last_minor) /. float_of_int dr);
    Telemetry.set_gauge l.lt_gc_heap (float_of_int st.Gc.heap_words);
    Telemetry.set_counter l.lt_gc_majors st.Gc.major_collections;
    l.lt_last_time <- now;
    l.lt_last_round <- round;
    l.lt_last_energy <- live.Metrics.live_station_rounds;
    l.lt_last_minor <- minor;
    if observing then
      emit ~round
        (Event.Telemetry
           { sample = Telemetry.sample l.lt_probe.Telemetry.registry });
    l.lt_probe.Telemetry.on_sample ~round l.lt_probe.Telemetry.registry
  in

  let step ~round ~draining =
    if tel_every > 0 then begin
      (* Time this round's phases iff it ends on a sample boundary. *)
      timing := (round + 1) mod tel_every = 0;
      if !timing then obs_acc := 0.0
    end;
    let t0 = if !timing then Unix.gettimeofday () else 0.0 in
    if not draining then inject round;
    let t1 = if !timing then Unix.gettimeofday () else 0.0 in
    apply_faults round;
    let t2 = if !timing then Unix.gettimeofday () else 0.0 in
    (* Mode decisions. Crashed stations are inert: forced off, their
       on_duty never called (state frozen for a later restart), and the
       static-schedule check waived — the schedule says on, the fault
       says otherwise. *)
    let on_count = ref 0 in
    (match sparse_impl with
     | None ->
       for i = 0 to n - 1 do
         on.(i) <-
           (not crashed.(i)) && A.on_duty states.(i) ~round ~queue:queues.(i);
         if on.(i) then incr on_count;
         if observing && on.(i) <> prev_on.(i) then
           emit ~round
             (if on.(i) then Event.Switched_on { station = i }
              else Event.Switched_off { station = i });
         if cfg.check_schedule && not crashed.(i) then
           Option.iter
             (fun schedule ->
               if on.(i) <> schedule ~n ~k ~me:i ~round then
                 raise
                   (Protocol_violation
                      (Printf.sprintf
                         "station %d round %d: on_duty disagrees with static schedule"
                         i round)))
             A.static_schedule
       done
     | Some sp ->
       (* Ascending merge over prev_list ∪ on_set(round). Every station
          outside the union has [on] and [prev_on] false (engine
          invariant), emits no Switched event, and — by the sparse
          contract — neither acts, observes, nor ticks, so visiting only
          the union reproduces the dense round exactly. Station order
          (and hence event order) stays ascending. *)
       let cur = sp.Algorithm.on_set ~round in
       cur_set := cur;
       let pl = !prev_list in
       let np = Array.length pl and nc = Array.length cur in
       let ia = ref 0 and ib = ref 0 in
       while !ia < np || !ib < nc do
         let i =
           if !ia >= np then cur.(!ib)
           else if !ib >= nc then pl.(!ia)
           else min pl.(!ia) cur.(!ib)
         in
         let in_cur = !ib < nc && cur.(!ib) = i in
         if !ia < np && pl.(!ia) = i then incr ia;
         if in_cur then incr ib;
         on.(i) <- in_cur && not crashed.(i);
         if on.(i) then incr on_count;
         if observing && on.(i) <> prev_on.(i) then
           emit ~round
             (if on.(i) then Event.Switched_on { station = i }
              else Event.Switched_off { station = i });
         if cfg.check_schedule && not crashed.(i) then begin
           (* In sparse mode only union members are checked (rounds the
              skip-ahead removes are silent by construction). Verify
              both promises: on_duty matches the sparse on-set, and the
              on-set matches the declared static schedule. *)
           if A.on_duty states.(i) ~round ~queue:queues.(i) <> in_cur then
             raise
               (Protocol_violation
                  (Printf.sprintf
                     "station %d round %d: on_duty disagrees with sparse on_set"
                     i round));
           Option.iter
             (fun schedule ->
               if in_cur <> schedule ~n ~k ~me:i ~round then
                 raise
                   (Protocol_violation
                      (Printf.sprintf
                         "station %d round %d: sparse on_set disagrees with \
                          static schedule"
                         i round)))
             A.static_schedule
         end
       done);
    Metrics.note_on_count metrics !on_count;
    if observing && !on_count > cap then
      emit ~round (Event.Cap_exceeded { on_count = !on_count; cap });
    (* Actions of switched-on stations, recorded into the scratch arrays in
       station order — the same order the old list-based path produced. *)
    tx_count := 0;
    let act_station i =
      if on.(i) then
        match A.act states.(i) ~round ~queue:queues.(i) with
        | Action.Listen -> ()
        | Action.Transmit m ->
          (match m.Message.packet with
           | Some p ->
             if not (Pqueue.mem queues.(i) p) then
               raise
                 (Protocol_violation
                    (Printf.sprintf "station %d transmitted a packet not in its queue" i))
           | None -> ());
          if A.plain_packet && not (Message.is_plain m) then
            raise
              (Protocol_violation
                 (Printf.sprintf "plain-packet algorithm %s sent a non-plain message" A.name));
          tx_station.(!tx_count) <- i;
          tx_message.(!tx_count) <- m;
          incr tx_count
    in
    (match sparse_impl with
     | None ->
       for i = 0 to n - 1 do
         act_station i
       done
     | Some _ ->
       (* Only current on-set members can be on; off stations' act is
          Listen by the sparse contract. *)
       Array.iter act_station !cur_set);
    if observing then
      for j = 0 to !tx_count - 1 do
        emit ~round
          (Event.Transmit
             { station = tx_station.(j);
               light = tx_message.(j).Message.packet = None })
      done;
    (* Channel resolution. A jam forces any round with at least one
       transmitter to read as a collision; noise forces a collision even
       on an empty channel. The Round_jammed event (and its metrics note)
       lands immediately before the resolution it affects, so replaying a
       recorded stream books both at the same point the live run did. A
       jam of a zero-transmitter round leaves the channel silent but is
       still counted — the fault fired, whether or not anyone was
       talking. Colliding-station lists exist only in events, so they are
       built only when a sink is observing. *)
    let jammed = !jam_now || !noise_now in
    let feedback, heard =
      if !tx_count = 0 then
        if !noise_now then begin
          Metrics.note_jammed metrics ~round ~noise:true;
          Metrics.note_collision metrics;
          if observing then begin
            emit ~round (Event.Round_jammed { transmitters = 0; noise = true });
            emit ~round (Event.Collision { stations = [] })
          end;
          (Feedback.Collision, None)
        end
        else begin
          if !jam_now then begin
            Metrics.note_jammed metrics ~round ~noise:false;
            if observing then
              emit ~round (Event.Round_jammed { transmitters = 0; noise = false })
          end;
          Metrics.note_silence metrics;
          if observing then emit ~round Event.Silence;
          (Feedback.Silence, None)
        end
      else if !tx_count = 1 && not jammed then
        (Feedback.Heard tx_message.(0), Some (tx_station.(0), tx_message.(0)))
      else begin
        if jammed then begin
          Metrics.note_jammed metrics ~round ~noise:!noise_now;
          if observing then
            emit ~round
              (Event.Round_jammed
                 { transmitters = !tx_count; noise = !noise_now })
        end;
        Metrics.note_collision metrics;
        if observing then
          emit ~round
            (Event.Collision
               { stations = List.init !tx_count (fun j -> tx_station.(j)) });
        (Feedback.Collision, None)
      end
    in
    let t3 = if !timing then Unix.gettimeofday () else 0.0 in
    (* A heard packet leaves the transmitter; it is delivered if its
       destination is on, otherwise it awaits adoption. *)
    let pending = ref None in
    (match heard with
     | None -> ()
     | Some (s, m) ->
       let bits = Message.control_bits m in
       Metrics.note_control_bits metrics bits;
       if observing then
         emit ~round
           (Event.Heard { station = s; bits; light = m.Message.packet = None });
       (match m.Message.packet with
        | None -> Metrics.note_light metrics
        | Some p ->
          let removed = Pqueue.remove queues.(s) p in
          assert removed;
          note_queue_removed s;
          let tracked = Hashtbl.find registry p.Packet.id in
          tracked.hops <- tracked.hops + 1;
          if on.(p.Packet.dst) then begin
            if tracked.delivered then
              raise (Protocol_violation "duplicate delivery");
            tracked.delivered <- true;
            Hashtbl.remove registry p.Packet.id;
            Metrics.note_delivery metrics
              ~delay:(round - p.Packet.injected_at) ~hops:tracked.hops;
            if observing then
              emit ~round
                (Event.Delivered
                   { id = p.Packet.id; from_ = s; dst = p.Packet.dst;
                     delay = round - p.Packet.injected_at;
                     hops = tracked.hops })
          end
          else pending := Some (s, p)));
    (* Feedback and reactions. *)
    let adopters = ref [] in
    let observe_station i =
      if on.(i) then
        match A.observe states.(i) ~round ~queue:queues.(i) ~feedback with
        | Reaction.No_reaction -> ()
        | Reaction.Adopt_heard_packet -> adopters := i :: !adopters
    in
    (match sparse_impl with
     | None ->
       for i = 0 to n - 1 do
         observe_station i
       done
     | Some _ -> Array.iter observe_station !cur_set);
    let adopters = List.rev !adopters in
    (match !pending, adopters with
     | None, [] -> ()
     | None, _ :: _ ->
       if observing then
         emit ~round (Event.Spurious_adoption { stations = adopters });
       violation ~strict metrics Metrics.note_spurious_adoption
         "adoption reaction with no packet pending"
     | Some (s, p), [] ->
       (* Nobody took the packet: return it to the transmitter. *)
       Pqueue.add queues.(s) p;
       note_queue_add ~round s;
       if observing then
         emit ~round (Event.Stranded { id = p.Packet.id; station = s });
       violation ~strict metrics Metrics.note_stranded
         (Printf.sprintf "packet %d stranded at round %d" p.Packet.id round)
     | Some (s, p), adopter :: rest ->
       if rest <> [] then begin
         if observing then
           emit ~round (Event.Adoption_conflict { stations = adopters });
         violation ~strict metrics Metrics.note_adoption_conflict
           "multiple stations adopted the same packet"
       end;
       if adopter = s then
         raise (Protocol_violation "transmitter adopted its own packet");
       if A.direct then
         raise
           (Protocol_violation
              (Printf.sprintf "direct algorithm %s used a relay" A.name));
       Pqueue.add queues.(adopter) p;
       note_queue_add ~round adopter;
       Metrics.note_relay metrics;
       Metrics.note_station_queue metrics (Pqueue.size queues.(adopter));
       if observing then
         emit ~round
           (Event.Relayed
              { id = p.Packet.id; from_ = s; relay = adopter;
                dst = p.Packet.dst }));
    (* Switched-off stations tick; crashed stations are frozen, not off.
       Sparse-contract algorithms declare offline_tick an unconditional
       no-op, so the sparse path skips the whole loop. *)
    (match sparse_impl with
     | None ->
       for i = 0 to n - 1 do
         if (not on.(i)) && not crashed.(i) then
           A.offline_tick states.(i) ~round ~queue:queues.(i)
       done;
       Array.blit on 0 prev_on 0 n
     | Some _ ->
       (* prev_on/prev_list: clear last round's on-set, record this one;
          outside both, the arrays are already false (invariant). *)
       Array.iter (fun i -> prev_on.(i) <- false) !prev_list;
       let cur = !cur_set in
       let cnt = ref 0 in
       Array.iter
         (fun i ->
           if on.(i) then begin
             prev_on.(i) <- true;
             incr cnt
           end)
         cur;
       let np = Array.make !cnt 0 in
       let j = ref 0 in
       Array.iter
         (fun i ->
           if on.(i) then begin
             np.(!j) <- i;
             incr j
           end)
         cur;
       prev_list := np);
    Metrics.end_round metrics ~round ~draining;
    if observing then
      emit ~round (Event.Round_end { on_count = !on_count; draining });
    if !timing then begin
      match lt with
      | Some l ->
        let t4 = Unix.gettimeofday () in
        let ns a b = int_of_float ((b -. a) *. 1e9) in
        Histogram.record l.lt_phase.(0) (ns t0 t1);
        Histogram.record l.lt_phase.(1) (ns t1 t2);
        Histogram.record l.lt_phase.(2) (ns t2 t3);
        Histogram.record l.lt_phase.(3) (ns t3 t4);
        Histogram.record l.lt_phase.(4) (int_of_float (!obs_acc *. 1e9))
      | None -> ()
    end
  in

  let round = ref 0 in
  let drained = ref 0 in
  (match resume with
   | Some s ->
     round := s.round;
     drained := s.drained
   | None -> ());
  (* Snapshots are taken between rounds: round [!round] is the next one to
     execute and everything per-round (scratch arrays, jam flags, the view)
     is recomputed at the top of [step], so nothing transient escapes.
     Building a snapshot reads but never writes engine state — a checkpointed
     run is bit-identical to an unobserved one. *)
  let make_snapshot () =
    { snap_version = snapshot_version;
      algorithm = A.name;
      state_version = A.state_version;
      snap_n = n;
      snap_k = k;
      adversary_name = adversary.Mac_adversary.Adversary.name;
      rate = adversary.Mac_adversary.Adversary.rate;
      burst = adversary.Mac_adversary.Adversary.burst;
      pacing = adversary.Mac_adversary.Adversary.pacing;
      pattern_name =
        adversary.Mac_adversary.Adversary.pattern.Mac_adversary.Pattern.name;
      plan_name = Option.map Mac_faults.Fault_plan.name plan;
      cfg_rounds = cfg.rounds;
      drain_limit = cfg.drain_limit;
      sample_every;
      round = !round;
      drained = !drained;
      next_id = !next_id;
      queues = Array.map (fun q -> Array.of_list (Pqueue.to_list q)) queues;
      hops =
        Array.map
          (fun q ->
            let hs = Array.make (Pqueue.size q) 0 in
            let j = ref 0 in
            Pqueue.iter q ~f:(fun p ->
                hs.(!j) <- (Hashtbl.find registry p.Packet.id).hops;
                incr j);
            hs)
          queues;
      states = Array.map A.encode_state states;
      prev_on = Array.copy prev_on;
      crashed = Array.copy crashed;
      adversary_state = Mac_adversary.Adversary.save_driver driver;
      metrics = Metrics.copy metrics }
  in
  let maybe_checkpoint () =
    match cfg.on_checkpoint with
    | Some f when cfg.checkpoint_every > 0 && !round mod cfg.checkpoint_every = 0
      ->
      f (make_snapshot ());
      (match lt with Some l -> Telemetry.inc l.lt_checkpoints | None -> ())
    | _ -> ()
  in
  (* Telemetry samples land at round boundaries divisible by the cadence
     (mirroring checkpoints), plus one final sample so the exposition
     always reflects the finished run. *)
  let last_sample = ref min_int in
  let maybe_sample () =
    match lt with
    | Some l when !round mod tel_every = 0 ->
      last_sample := !round;
      tel_sample l ~round:!round
    | _ -> ()
  in
  let beat =
    match cfg.heartbeat with Some h -> h | None -> fun () -> ()
  in
  (* Analytic skip-ahead: advance [round] past a stretch of rounds that
     provably does nothing, in O(1) plus closed-form metric updates, and
     return true; return false when the current round must run concretely.
     A round is skippable when nothing can happen in it:
     - the adversary admits nothing (before [next_admission]; during the
       drain phase it never injects at all);
     - no fault action fires (before the plan's [next_action_round]);
     - no scheduled station can transmit (before [next_active] over the
       non-empty queues) — silent rounds mutate no station state by the
       sparse contract;
     - no station is crashed (a crashed station could make the concrete
       on-count differ from the closed-form [on_count_in]);
     - no sink is observing (observed runs need their per-round events —
       sparse iteration still applies, the skip does not).
     The skip also stops at the next checkpoint boundary and at the round
     preceding each telemetry sample (that round is phase-timed), so
     cadenced side effects fire exactly as in a dense run. Landing state
     is reconstructed in closed form: bucket via [skip_rounds], metrics
     via [skip_quiet], and [prev_on]/[prev_list] as the on-set of the
     last skipped round. *)
  let try_skip ~draining =
    match sparse_impl with
    | None -> false
    | Some sp ->
      if observing || !crashed_count > 0 then false
      else begin
        let r = !round in
        let bound =
          ref (if draining then r + (cfg.drain_limit - !drained) else cfg.rounds)
        in
        let cap_bound v = if v < !bound then bound := v in
        if not draining then begin
          let ta =
            if !adm_cache >= r then !adm_cache
            else begin
              let v = Mac_adversary.Adversary.next_admission driver ~round:r in
              adm_cache := v;
              v
            end
          in
          cap_bound ta
        end;
        (match plan with
         | None -> ()
         | Some p ->
           (match Mac_faults.Fault_plan.next_action_round p ~round:r with
            | Some fr -> cap_bound fr
            | None -> ()));
        let na =
          if !na_cache < 0 || !na_cache < r then begin
            let ne =
              Hashtbl.fold (fun i () acc -> (i, queues.(i)) :: acc) nonempty []
            in
            let v =
              match sp.Algorithm.next_active ~round:r ~nonempty:ne with
              | Some v -> v
              | None -> max_int
            in
            na_cache := v;
            v
          end
          else !na_cache
        in
        cap_bound na;
        if cfg.checkpoint_every > 0 && Option.is_some cfg.on_checkpoint then
          cap_bound (((r / cfg.checkpoint_every) + 1) * cfg.checkpoint_every);
        if tel_every > 0 then
          cap_bound (((r + tel_every) / tel_every * tel_every) - 1);
        let count = !bound - r in
        if count <= 0 then false
        else begin
          let on_sum, on_max, exceeding =
            sp.Algorithm.on_count_in ~from:r ~until:!bound ~cap
          in
          Metrics.skip_quiet metrics ~from_round:r ~count ~on_sum ~on_max
            ~cap_exceeded_rounds:exceeding ~draining;
          if not draining then
            Mac_adversary.Adversary.skip_rounds driver ~rounds:count;
          Array.iter
            (fun i ->
              on.(i) <- false;
              prev_on.(i) <- false)
            !prev_list;
          let np = sp.Algorithm.on_set ~round:(!bound - 1) in
          Array.iter
            (fun i ->
              on.(i) <- true;
              prev_on.(i) <- true)
            np;
          prev_list := np;
          round := !bound;
          if draining then drained := !drained + count;
          true
        end
      end
  in
  let finalize () =
    (match lt with
     | Some l when !last_sample <> !round -> tel_sample l ~round:!round
     | _ -> ());
    let final_round = !round in
    (* Conservation and duplicate checks. Every injected packet is
       classified: delivered, still queued, or lost-to-crash — lost packets
       left both the queues and [Metrics.total_queued], so the equality
       below holds for faulted runs too. *)
    let queued_total = ref 0 in
    let seen = Hashtbl.create 4096 in
    let max_age = ref 0 in
    Array.iter
      (fun q ->
        queued_total := !queued_total + Pqueue.size q;
        Pqueue.iter q ~f:(fun p ->
            if Hashtbl.mem seen p.Packet.id then
              raise (Protocol_violation "packet present in two queues");
            Hashtbl.replace seen p.Packet.id ();
            let tracked = Hashtbl.find registry p.Packet.id in
            if tracked.delivered then
              raise (Protocol_violation "delivered packet still queued");
            let age = final_round - p.Packet.injected_at in
            if age > !max_age then max_age := age))
      queues;
    if !queued_total <> Metrics.total_queued metrics then
      raise (Protocol_violation "packet conservation failed");
    Metrics.finalize metrics ~final_round ~max_queued_age:!max_age
  in
  { ses_cfg = cfg; ses_round = round; ses_drained = drained;
    ses_metrics = metrics; ses_step = step; ses_try_skip = try_skip;
    ses_snapshot = make_snapshot; ses_checkpoint = maybe_checkpoint;
    ses_sample = maybe_sample; ses_beat = beat; ses_finalize = finalize;
    ses_done = false }

let session_round s = !(s.ses_round)
let session_drained s = !(s.ses_drained)
let session_backlog s = Metrics.total_queued s.ses_metrics

let session_complete s =
  !(s.ses_round) >= s.ses_cfg.rounds
  && (!(s.ses_drained) >= s.ses_cfg.drain_limit
     || Metrics.total_queued s.ses_metrics = 0)

let session_snapshot s = s.ses_snapshot ()

(* The two loops below are the classical [run] driver, with a step budget
   added. One "step" is one loop iteration: a concrete round, or one
   analytic skip (which may cover many rounds). A budget of [max_int]
   reproduces the closed-loop run exactly — the budget tests are the only
   difference, and they never bind. *)
let advance s ~max_steps =
  if s.ses_done then invalid_arg "Engine.advance: session already finished";
  let cfg = s.ses_cfg in
  let round = s.ses_round and drained = s.ses_drained in
  let steps = ref 0 in
  while !steps < max_steps && !round < cfg.rounds do
    if not (s.ses_try_skip ~draining:false) then begin
      s.ses_step ~round:!round ~draining:false;
      incr round
    end;
    s.ses_checkpoint ();
    s.ses_sample ();
    s.ses_beat ();
    incr steps
  done;
  while
    !steps < max_steps
    && !round >= cfg.rounds
    && !drained < cfg.drain_limit
    && Metrics.total_queued s.ses_metrics > 0
  do
    if not (s.ses_try_skip ~draining:true) then begin
      s.ses_step ~round:!round ~draining:true;
      incr round;
      incr drained
    end;
    s.ses_checkpoint ();
    s.ses_sample ();
    s.ses_beat ();
    incr steps
  done;
  !steps

let finish s =
  if s.ses_done then invalid_arg "Engine.finish: session already finished";
  if not (session_complete s) then
    invalid_arg "Engine.finish: the run has not completed";
  s.ses_done <- true;
  s.ses_finalize ()

let run ?config ?resume ~algorithm ~n ~k ~adversary ~rounds () =
  let s = start ?config ?resume ~algorithm ~n ~k ~adversary ~rounds () in
  ignore (advance s ~max_steps:max_int : int);
  finish s
