open Mac_channel

exception Protocol_violation of string

let snapshot_version = 1

(* A pure-data photograph of a run at a round boundary. Everything mutable
   the round loop reads is here: queues (in arrival order, with per-packet
   hop counts), encoded algorithm states, the adversary driver (exact
   bucket level + pattern cursor), mode memory, crash flags, and a deep
   copy of the metrics collector. The identity fields up front let resume
   reject a snapshot taken under a different configuration instead of
   silently diverging. *)
type snapshot = {
  snap_version : int;
  algorithm : string;
  state_version : int;
  snap_n : int;
  snap_k : int;
  adversary_name : string;
  rate : Qrat.t;
  burst : Qrat.t;
  pacing : Mac_adversary.Adversary.pacing;
  pattern_name : string;
  plan_name : string option;
  cfg_rounds : int;
  drain_limit : int;
  sample_every : int;
  round : int;
  drained : int;
  next_id : int;
  queues : Packet.t array array;
  hops : int array array;
  states : string array;
  prev_on : bool array;
  crashed : bool array;
  adversary_state : Mac_adversary.Adversary.driver_state;
  metrics : Metrics.t;
}

let snapshot_round s = s.round
let snapshot_drained s = s.drained
let snapshot_algorithm s = s.algorithm
let snapshot_n s = s.snap_n
let snapshot_k s = s.snap_k
let snapshot_rounds s = s.cfg_rounds

type config = {
  rounds : int;
  drain_limit : int;
  sample_every : int;
  check_schedule : bool;
  strict : bool;
  trace : Trace.t option;
  sink : Sink.t option;
  faults : Mac_faults.Fault_plan.t option;
  checkpoint_every : int;
  on_checkpoint : (snapshot -> unit) option;
}

let default_config ~rounds =
  { rounds; drain_limit = 0; sample_every = 0; check_schedule = false;
    strict = true; trace = None; sink = None; faults = None;
    checkpoint_every = 0; on_checkpoint = None }

type tracked = {
  packet : Packet.t;
  mutable delivered : bool;
  mutable hops : int;
}

let violation ~strict metrics note msg =
  note metrics;
  if strict then raise (Protocol_violation msg)

let run ?config ?resume ~algorithm:(module A : Algorithm.S) ~n ~k ~adversary
    ~rounds () =
  let cfg =
    match config with
    | None -> default_config ~rounds
    | Some c ->
      (* One source of truth: a config whose [rounds] disagrees with the
         [~rounds] argument used to win silently — now it is an error. *)
      if c.rounds <> rounds then
        invalid_arg
          (Printf.sprintf
             "Engine.run: ~rounds:%d disagrees with config.rounds = %d" rounds
             c.rounds);
      c
  in
  let cap = A.required_cap ~n ~k in
  let sample_every =
    if cfg.sample_every > 0 then cfg.sample_every
    else max 1 ((cfg.rounds + cfg.drain_limit) / 1024)
  in
  let metrics =
    match resume with
    | Some s -> Metrics.copy s.metrics
    | None ->
      Metrics.create ~algorithm:A.name
        ~adversary:adversary.Mac_adversary.Adversary.name ~n ~k ~cap
        ~sample_every
  in
  let plan =
    match cfg.faults with
    | Some p when not (Mac_faults.Fault_plan.is_empty p) -> Some p
    | _ -> None
  in
  (* Resume, part 1: validate that the snapshot was taken under this exact
     configuration (a mismatch would not crash — it would silently produce
     a different run). Checked before any per-station state is built, so a
     wrong [n] is reported as a resume error, not as whatever the
     algorithm's constructor does with it. *)
  (match resume with
   | None -> ()
   | Some s ->
     let fail fmt =
       Printf.ksprintf
         (fun msg -> invalid_arg ("Engine.run: cannot resume: " ^ msg))
         fmt
     in
     if s.snap_version <> snapshot_version then
       fail "snapshot format version %d (this engine writes %d)"
         s.snap_version snapshot_version;
     if s.algorithm <> A.name then
       fail "snapshot is of algorithm %s, not %s" s.algorithm A.name;
     if s.state_version <> A.state_version then
       fail "%s state version %d (current %d)" A.name s.state_version
         A.state_version;
     if s.snap_n <> n || s.snap_k <> k then
       fail "snapshot has n=%d k=%d, run has n=%d k=%d" s.snap_n s.snap_k n k;
     if s.cfg_rounds <> cfg.rounds then
       fail "snapshot ran %d rounds, config says %d" s.cfg_rounds cfg.rounds;
     if s.drain_limit <> cfg.drain_limit then
       fail "snapshot drain limit %d, config says %d" s.drain_limit
         cfg.drain_limit;
     if s.sample_every <> sample_every then
       fail "snapshot sampled every %d rounds, this run samples every %d"
         s.sample_every sample_every;
     if s.adversary_name <> adversary.Mac_adversary.Adversary.name then
       fail "snapshot adversary %s, run adversary %s" s.adversary_name
         adversary.Mac_adversary.Adversary.name;
     if
       not
         (Qrat.equal s.rate adversary.Mac_adversary.Adversary.rate
         && Qrat.equal s.burst adversary.Mac_adversary.Adversary.burst)
     then
       fail "snapshot adversary type (%s,%s), run type (%s,%s)"
         (Qrat.to_string s.rate) (Qrat.to_string s.burst)
         (Qrat.to_string adversary.Mac_adversary.Adversary.rate)
         (Qrat.to_string adversary.Mac_adversary.Adversary.burst);
     if s.pacing <> adversary.Mac_adversary.Adversary.pacing then
       fail "snapshot and run disagree on pacing";
     if
       s.pattern_name
       <> adversary.Mac_adversary.Adversary.pattern.Mac_adversary.Pattern.name
     then
       fail "snapshot pattern %s, run pattern %s" s.pattern_name
         adversary.Mac_adversary.Adversary.pattern.Mac_adversary.Pattern.name;
     if s.plan_name <> Option.map Mac_faults.Fault_plan.name plan then
       fail "snapshot fault plan %s, run fault plan %s"
         (Option.value s.plan_name ~default:"<none>")
         (Option.value
            (Option.map Mac_faults.Fault_plan.name plan)
            ~default:"<none>"));
  let queues = Array.init n (fun _ -> Pqueue.create ~n) in
  let states = Array.init n (fun me -> A.create ~n ~k ~me) in
  let registry : (int, tracked) Hashtbl.t = Hashtbl.create 4096 in
  let driver = Mac_adversary.Adversary.start adversary in
  let next_id = ref 0 in
  let prev_on = Array.make n false in
  let on = Array.make n false in
  let strict = cfg.strict in
  (* Scratch space for the round loop: at most n transmissions per round,
     recorded into preallocated arrays instead of a consed-up list. The
     message slots hold stale messages between rounds; [tx_count] is the
     only truth about what is live. *)
  let tx_station = Array.make n 0 in
  let tx_message = Array.make n (Message.light []) in
  let tx_count = ref 0 in

  (* Fault injection. An absent or empty plan keeps every code path below
     identical to the fault-free engine: [crashed] stays all-false, the
     jam flags stay unset, and [apply_faults] is never called — so a run
     with [faults = None] is bit-identical (metrics and event stream) to
     one predating the fault layer. *)
  let crashed = Array.make n false in
  let jam_now = ref false in
  let noise_now = ref false in

  (* Resume, part 2: the snapshot is known to match; rebuild every piece
     of mutable state from it. *)
  (match resume with
   | None -> ()
   | Some s ->
     next_id := s.next_id;
     for i = 0 to n - 1 do
       states.(i) <- A.decode_state s.states.(i);
       Array.iteri
         (fun j (p : Packet.t) ->
           Pqueue.add queues.(i) p;
           Hashtbl.replace registry p.Packet.id
             { packet = p; delivered = false; hops = s.hops.(i).(j) })
         s.queues.(i)
     done;
     Array.blit s.prev_on 0 prev_on 0 n;
     Array.blit s.crashed 0 crashed 0 n;
     Mac_adversary.Adversary.restore_driver driver s.adversary_state);

  (* Event emission. Every observable step of the round loop produces a
     typed Event.t, fanned out to the configured sinks (the legacy trace
     ring rides along as one of them). With no sink installed, the whole
     apparatus is a single [observing] branch per event — no allocation,
     no formatting — so un-observed runs keep their Table-1 numbers. *)
  let sinks =
    (match cfg.trace with Some t -> [ Sink.ring t ] | None -> [])
    @ (match cfg.sink with Some s -> [ s ] | None -> [])
  in
  let observing = sinks <> [] in
  let emit =
    match sinks with
    | [ s ] -> s.Sink.emit
    | _ -> fun ~round ev -> List.iter (fun (s : Sink.t) -> s.emit ~round ev) sinks
  in

  (* Applied at the top of the round, after injection and before mode
     decisions: a crash this round already silences the station's mode
     decision; a restart rejoins from this round's decision on. Jam and
     noise only raise flags here — they act at channel resolution. *)
  let apply_faults round =
    match plan with
    | None -> ()
    | Some p ->
      jam_now := false;
      noise_now := false;
      List.iter
        (fun (a : Mac_faults.Fault_plan.action) ->
          match a with
          | Crash { station = i; queue = policy } ->
            if i < 0 || i >= n then
              raise
                (Protocol_violation
                   (Printf.sprintf "fault plan crashes station %d (n = %d)" i n));
            if not crashed.(i) then begin
              crashed.(i) <- true;
              let lost =
                match policy with
                | Mac_faults.Fault_plan.Retain -> 0
                | Mac_faults.Fault_plan.Drop ->
                  List.fold_left
                    (fun lost (p : Packet.t) ->
                      Hashtbl.remove registry p.Packet.id;
                      lost + 1)
                    0
                    (Pqueue.drain queues.(i))
              in
              Metrics.note_crash metrics ~round ~lost;
              if observing then
                emit ~round (Event.Station_crashed { station = i; lost })
            end
          | Restart { station = i } ->
            if i < 0 || i >= n then
              raise
                (Protocol_violation
                   (Printf.sprintf "fault plan restarts station %d (n = %d)" i n));
            if crashed.(i) then begin
              crashed.(i) <- false;
              states.(i) <- A.create ~n ~k ~me:i;
              Metrics.note_restart metrics ~round;
              if observing then
                emit ~round (Event.Station_restarted { station = i })
            end
          | Jam -> jam_now := true
          | Noise -> noise_now := true)
        (Mac_faults.Fault_plan.actions p ~round)
  in

  (* One view for the whole run: the closure record is allocated here,
     outside the round loop, and only the mutable [round] field advances.
     The closures read live engine state, so the view is always current. *)
  let view : Mac_adversary.View.t =
    { n; round = 0;
      queue_size = (fun i -> Pqueue.size queues.(i));
      queued_to =
        (fun d ->
          let total = ref 0 in
          for i = 0 to n - 1 do
            total := !total + Pqueue.count_to queues.(i) d
          done;
          !total);
      total_queued = (fun () -> Metrics.total_queued metrics);
      was_on = (fun i -> prev_on.(i)) }
  in

  let inject round =
    view.Mac_adversary.View.round <- round;
    let pairs = Mac_adversary.Adversary.inject driver ~view in
    List.iter
      (fun (src, dst) ->
        if src < 0 || src >= n || dst < 0 || dst >= n then
          raise (Protocol_violation "adversary injected out-of-range station");
        let id = !next_id in
        incr next_id;
        let p = Packet.make ~id ~src ~dst ~injected_at:round in
        if src = dst then begin
          (* Self-addressed packets need no channel use; delivered at
             injection (see DESIGN.md interpretation 5). Patterns never
             produce these; kept for external users of the engine. They
             never enter a queue, so they must not touch the queue peaks. *)
          Metrics.note_self_injection metrics;
          if observing then begin
            emit ~round (Event.Injected { id; src; dst });
            emit ~round
              (Event.Delivered { id; from_ = src; dst; delay = 0; hops = 0 })
          end
        end
        else begin
          Pqueue.add queues.(src) p;
          Hashtbl.replace registry id { packet = p; delivered = false; hops = 0 };
          Metrics.note_injection metrics;
          Metrics.note_station_queue metrics (Pqueue.size queues.(src));
          if observing then emit ~round (Event.Injected { id; src; dst })
        end)
      pairs
  in

  let step ~round ~draining =
    if not draining then inject round;
    apply_faults round;
    (* Mode decisions. Crashed stations are inert: forced off, their
       on_duty never called (state frozen for a later restart), and the
       static-schedule check waived — the schedule says on, the fault
       says otherwise. *)
    let on_count = ref 0 in
    for i = 0 to n - 1 do
      on.(i) <- (not crashed.(i)) && A.on_duty states.(i) ~round ~queue:queues.(i);
      if on.(i) then incr on_count;
      if observing && on.(i) <> prev_on.(i) then
        emit ~round
          (if on.(i) then Event.Switched_on { station = i }
           else Event.Switched_off { station = i });
      if cfg.check_schedule && not crashed.(i) then
        Option.iter
          (fun schedule ->
            if on.(i) <> schedule ~n ~k ~me:i ~round then
              raise
                (Protocol_violation
                   (Printf.sprintf
                      "station %d round %d: on_duty disagrees with static schedule"
                      i round)))
          A.static_schedule
    done;
    Metrics.note_on_count metrics !on_count;
    if observing && !on_count > cap then
      emit ~round (Event.Cap_exceeded { on_count = !on_count; cap });
    (* Actions of switched-on stations, recorded into the scratch arrays in
       station order — the same order the old list-based path produced. *)
    tx_count := 0;
    for i = 0 to n - 1 do
      if on.(i) then
        match A.act states.(i) ~round ~queue:queues.(i) with
        | Action.Listen -> ()
        | Action.Transmit m ->
          (match m.Message.packet with
           | Some p ->
             if not (Pqueue.mem queues.(i) p) then
               raise
                 (Protocol_violation
                    (Printf.sprintf "station %d transmitted a packet not in its queue" i))
           | None -> ());
          if A.plain_packet && not (Message.is_plain m) then
            raise
              (Protocol_violation
                 (Printf.sprintf "plain-packet algorithm %s sent a non-plain message" A.name));
          tx_station.(!tx_count) <- i;
          tx_message.(!tx_count) <- m;
          incr tx_count
    done;
    if observing then
      for j = 0 to !tx_count - 1 do
        emit ~round
          (Event.Transmit
             { station = tx_station.(j);
               light = tx_message.(j).Message.packet = None })
      done;
    (* Channel resolution. A jam forces any round with at least one
       transmitter to read as a collision; noise forces a collision even
       on an empty channel. The Round_jammed event (and its metrics note)
       lands immediately before the resolution it affects, so replaying a
       recorded stream books both at the same point the live run did. A
       jam of a zero-transmitter round leaves the channel silent but is
       still counted — the fault fired, whether or not anyone was
       talking. Colliding-station lists exist only in events, so they are
       built only when a sink is observing. *)
    let jammed = !jam_now || !noise_now in
    let feedback, heard =
      if !tx_count = 0 then
        if !noise_now then begin
          Metrics.note_jammed metrics ~round ~noise:true;
          Metrics.note_collision metrics;
          if observing then begin
            emit ~round (Event.Round_jammed { transmitters = 0; noise = true });
            emit ~round (Event.Collision { stations = [] })
          end;
          (Feedback.Collision, None)
        end
        else begin
          if !jam_now then begin
            Metrics.note_jammed metrics ~round ~noise:false;
            if observing then
              emit ~round (Event.Round_jammed { transmitters = 0; noise = false })
          end;
          Metrics.note_silence metrics;
          if observing then emit ~round Event.Silence;
          (Feedback.Silence, None)
        end
      else if !tx_count = 1 && not jammed then
        (Feedback.Heard tx_message.(0), Some (tx_station.(0), tx_message.(0)))
      else begin
        if jammed then begin
          Metrics.note_jammed metrics ~round ~noise:!noise_now;
          if observing then
            emit ~round
              (Event.Round_jammed
                 { transmitters = !tx_count; noise = !noise_now })
        end;
        Metrics.note_collision metrics;
        if observing then
          emit ~round
            (Event.Collision
               { stations = List.init !tx_count (fun j -> tx_station.(j)) });
        (Feedback.Collision, None)
      end
    in
    (* A heard packet leaves the transmitter; it is delivered if its
       destination is on, otherwise it awaits adoption. *)
    let pending = ref None in
    (match heard with
     | None -> ()
     | Some (s, m) ->
       let bits = Message.control_bits m in
       Metrics.note_control_bits metrics bits;
       if observing then
         emit ~round
           (Event.Heard { station = s; bits; light = m.Message.packet = None });
       (match m.Message.packet with
        | None -> Metrics.note_light metrics
        | Some p ->
          let removed = Pqueue.remove queues.(s) p in
          assert removed;
          let tracked = Hashtbl.find registry p.Packet.id in
          tracked.hops <- tracked.hops + 1;
          if on.(p.Packet.dst) then begin
            if tracked.delivered then
              raise (Protocol_violation "duplicate delivery");
            tracked.delivered <- true;
            Hashtbl.remove registry p.Packet.id;
            Metrics.note_delivery metrics
              ~delay:(round - p.Packet.injected_at) ~hops:tracked.hops;
            if observing then
              emit ~round
                (Event.Delivered
                   { id = p.Packet.id; from_ = s; dst = p.Packet.dst;
                     delay = round - p.Packet.injected_at;
                     hops = tracked.hops })
          end
          else pending := Some (s, p)));
    (* Feedback and reactions. *)
    let adopters = ref [] in
    for i = 0 to n - 1 do
      if on.(i) then
        match A.observe states.(i) ~round ~queue:queues.(i) ~feedback with
        | Reaction.No_reaction -> ()
        | Reaction.Adopt_heard_packet -> adopters := i :: !adopters
    done;
    let adopters = List.rev !adopters in
    (match !pending, adopters with
     | None, [] -> ()
     | None, _ :: _ ->
       if observing then
         emit ~round (Event.Spurious_adoption { stations = adopters });
       violation ~strict metrics Metrics.note_spurious_adoption
         "adoption reaction with no packet pending"
     | Some (s, p), [] ->
       (* Nobody took the packet: return it to the transmitter. *)
       Pqueue.add queues.(s) p;
       if observing then
         emit ~round (Event.Stranded { id = p.Packet.id; station = s });
       violation ~strict metrics Metrics.note_stranded
         (Printf.sprintf "packet %d stranded at round %d" p.Packet.id round)
     | Some (s, p), adopter :: rest ->
       if rest <> [] then begin
         if observing then
           emit ~round (Event.Adoption_conflict { stations = adopters });
         violation ~strict metrics Metrics.note_adoption_conflict
           "multiple stations adopted the same packet"
       end;
       if adopter = s then
         raise (Protocol_violation "transmitter adopted its own packet");
       if A.direct then
         raise
           (Protocol_violation
              (Printf.sprintf "direct algorithm %s used a relay" A.name));
       Pqueue.add queues.(adopter) p;
       Metrics.note_relay metrics;
       Metrics.note_station_queue metrics (Pqueue.size queues.(adopter));
       if observing then
         emit ~round
           (Event.Relayed
              { id = p.Packet.id; from_ = s; relay = adopter;
                dst = p.Packet.dst }));
    (* Switched-off stations tick; crashed stations are frozen, not off. *)
    for i = 0 to n - 1 do
      if (not on.(i)) && not crashed.(i) then
        A.offline_tick states.(i) ~round ~queue:queues.(i)
    done;
    Array.blit on 0 prev_on 0 n;
    Metrics.end_round metrics ~round ~draining;
    if observing then
      emit ~round (Event.Round_end { on_count = !on_count; draining })
  in

  let round = ref 0 in
  let drained = ref 0 in
  (match resume with
   | Some s ->
     round := s.round;
     drained := s.drained
   | None -> ());
  (* Snapshots are taken between rounds: round [!round] is the next one to
     execute and everything per-round (scratch arrays, jam flags, the view)
     is recomputed at the top of [step], so nothing transient escapes.
     Building a snapshot reads but never writes engine state — a checkpointed
     run is bit-identical to an unobserved one. *)
  let make_snapshot () =
    { snap_version = snapshot_version;
      algorithm = A.name;
      state_version = A.state_version;
      snap_n = n;
      snap_k = k;
      adversary_name = adversary.Mac_adversary.Adversary.name;
      rate = adversary.Mac_adversary.Adversary.rate;
      burst = adversary.Mac_adversary.Adversary.burst;
      pacing = adversary.Mac_adversary.Adversary.pacing;
      pattern_name =
        adversary.Mac_adversary.Adversary.pattern.Mac_adversary.Pattern.name;
      plan_name = Option.map Mac_faults.Fault_plan.name plan;
      cfg_rounds = cfg.rounds;
      drain_limit = cfg.drain_limit;
      sample_every;
      round = !round;
      drained = !drained;
      next_id = !next_id;
      queues = Array.map (fun q -> Array.of_list (Pqueue.to_list q)) queues;
      hops =
        Array.map
          (fun q ->
            let hs = Array.make (Pqueue.size q) 0 in
            let j = ref 0 in
            Pqueue.iter q ~f:(fun p ->
                hs.(!j) <- (Hashtbl.find registry p.Packet.id).hops;
                incr j);
            hs)
          queues;
      states = Array.map A.encode_state states;
      prev_on = Array.copy prev_on;
      crashed = Array.copy crashed;
      adversary_state = Mac_adversary.Adversary.save_driver driver;
      metrics = Metrics.copy metrics }
  in
  let maybe_checkpoint () =
    match cfg.on_checkpoint with
    | Some f when cfg.checkpoint_every > 0 && !round mod cfg.checkpoint_every = 0
      ->
      f (make_snapshot ())
    | _ -> ()
  in
  while !round < cfg.rounds do
    step ~round:!round ~draining:false;
    incr round;
    maybe_checkpoint ()
  done;
  while !drained < cfg.drain_limit && Metrics.total_queued metrics > 0 do
    step ~round:!round ~draining:true;
    incr round;
    incr drained;
    maybe_checkpoint ()
  done;
  let final_round = !round in
  (* Conservation and duplicate checks. Every injected packet is
     classified: delivered, still queued, or lost-to-crash — lost packets
     left both the queues and [Metrics.total_queued], so the equality
     below holds for faulted runs too. *)
  let queued_total = ref 0 in
  let seen = Hashtbl.create 4096 in
  let max_age = ref 0 in
  Array.iter
    (fun q ->
      queued_total := !queued_total + Pqueue.size q;
      Pqueue.iter q ~f:(fun p ->
          if Hashtbl.mem seen p.Packet.id then
            raise (Protocol_violation "packet present in two queues");
          Hashtbl.replace seen p.Packet.id ();
          let tracked = Hashtbl.find registry p.Packet.id in
          if tracked.delivered then
            raise (Protocol_violation "delivered packet still queued");
          let age = final_round - p.Packet.injected_at in
          if age > !max_age then max_age := age))
    queues;
  if !queued_total <> Metrics.total_queued metrics then
    raise (Protocol_violation "packet conservation failed");
  Metrics.finalize metrics ~final_round ~max_queued_age:!max_age
