type violations = {
  cap_exceeded : int;
  stranded : int;
  adoption_conflicts : int;
  spurious_adoptions : int;
}

type fault_stats = {
  crashes : int;
  restarts : int;
  jammed_rounds : int;
  noise_rounds : int;
  lost_to_crash : int;
  last_fault_round : int;
  pre_fault_queue : int;
  post_fault_peak_queue : int;
  recovery_rounds : int;
}

type summary = {
  algorithm : string;
  adversary : string;
  n : int;
  k : int;
  rounds : int;
  drain_rounds : int;
  injected : int;
  delivered : int;
  undelivered : int;
  max_delay : int;
  mean_delay : float;
  p99_delay : int;
  delay_histogram : (int * int * int) array;
  max_queued_age : int;
  max_total_queue : int;
  final_total_queue : int;
  max_station_queue : int;
  queue_series : (int * int) array;
  energy_cap : int;
  max_on : int;
  mean_on : float;
  station_rounds : int;
  silent_rounds : int;
  light_rounds : int;
  delivery_rounds : int;
  relay_rounds : int;
  collision_rounds : int;
  max_hops : int;
  control_bits_total : int;
  control_bits_max : int;
  violations : violations;
  faults : fault_stats;
}

let energy_per_delivery s =
  if s.delivered = 0 then Float.nan
  else float_of_int s.station_rounds /. float_of_int s.delivered

let no_violations s =
  s.violations.cap_exceeded = 0
  && s.violations.stranded = 0
  && s.violations.adoption_conflicts = 0
  && s.violations.spurious_adoptions = 0

let no_faults s = s.faults.last_fault_round < 0

let pp_summary ppf s =
  Format.fprintf ppf
    "@[<v>%s vs %s (n=%d k=%d cap=%d)@,\
     rounds=%d(+%d drain) injected=%d delivered=%d undelivered=%d@,\
     delay: max=%d mean=%.1f p99=%d; oldest queued age=%d@,\
     queues: max-total=%d final=%d max-station=%d@,\
     energy: max-on=%d mean-on=%.2f station-rounds=%d (%.2f/delivery)@,\
     rounds: silent=%d light=%d delivery=%d relay=%d collision=%d@,\
     hops<=%d control-bits: total=%d max/msg=%d@,\
     violations: cap=%d stranded=%d adopt-conflict=%d spurious-adopt=%d"
    s.algorithm s.adversary s.n s.k s.energy_cap s.rounds s.drain_rounds
    s.injected s.delivered s.undelivered s.max_delay s.mean_delay s.p99_delay
    s.max_queued_age s.max_total_queue s.final_total_queue s.max_station_queue
    s.max_on s.mean_on s.station_rounds (energy_per_delivery s) s.silent_rounds
    s.light_rounds s.delivery_rounds s.relay_rounds s.collision_rounds
    s.max_hops s.control_bits_total s.control_bits_max
    s.violations.cap_exceeded s.violations.stranded
    s.violations.adoption_conflicts s.violations.spurious_adoptions;
  if not (no_faults s) then begin
    let f = s.faults in
    Format.fprintf ppf
      "@,faults: crashes=%d restarts=%d jammed=%d (noise %d) lost=%d \
       last@@%d queue %d->%d recovery=%s"
      f.crashes f.restarts f.jammed_rounds f.noise_rounds f.lost_to_crash
      f.last_fault_round f.pre_fault_queue f.post_fault_peak_queue
      (if f.recovery_rounds < 0 then "never"
       else string_of_int f.recovery_rounds)
  end;
  Format.fprintf ppf "@]"

type t = {
  algorithm : string;
  adversary : string;
  n : int;
  k : int;
  cap : int;
  sample_every : int;
  mutable injected : int;
  mutable delivered : int;
  mutable rounds : int;
  mutable drain_rounds : int;
  mutable max_delay : int;
  mutable delay_sum : float;
  delay_hist : Histogram.t;
  mutable max_total_queue : int;
  mutable max_station_queue : int;
  mutable series_rev : (int * int) list;
  mutable max_on : int;
  mutable on_total : int;
  mutable silent_rounds : int;
  mutable light_rounds : int;
  mutable delivery_rounds : int;
  mutable relay_rounds : int;
  mutable collision_rounds : int;
  mutable max_hops : int;
  mutable control_bits_total : int;
  mutable control_bits_max : int;
  mutable cap_exceeded : int;
  mutable stranded : int;
  mutable adoption_conflicts : int;
  mutable spurious_adoptions : int;
  mutable crashes : int;
  mutable restarts : int;
  mutable jammed_rounds : int;
  mutable noise_rounds : int;
  mutable lost : int;
  mutable first_fault_round : int;
  mutable last_fault_round : int;
  mutable pre_fault_queue : int;
  mutable post_fault_peak : int;
  mutable last_exceed : int;
      (* last round end with backlog above the pre-fault baseline *)
  qsizes : int array; (* queue sizes reconstructed when replaying events *)
}

let create ~algorithm ~adversary ~n ~k ~cap ~sample_every =
  { algorithm; adversary; n; k; cap; sample_every = max 1 sample_every;
    injected = 0; delivered = 0; rounds = 0; drain_rounds = 0;
    max_delay = 0; delay_sum = 0.0; delay_hist = Histogram.create ();
    max_total_queue = 0; max_station_queue = 0; series_rev = [];
    max_on = 0; on_total = 0;
    silent_rounds = 0; light_rounds = 0; delivery_rounds = 0; relay_rounds = 0;
    collision_rounds = 0; max_hops = 0;
    control_bits_total = 0; control_bits_max = 0;
    cap_exceeded = 0; stranded = 0; adoption_conflicts = 0;
    spurious_adoptions = 0;
    crashes = 0; restarts = 0; jammed_rounds = 0; noise_rounds = 0;
    lost = 0; first_fault_round = -1; last_fault_round = -1;
    pre_fault_queue = 0; post_fault_peak = 0; last_exceed = -1;
    qsizes = Array.make (max n 1) 0 }

let total_queued t = t.injected - t.delivered - t.lost

let note_injection t =
  t.injected <- t.injected + 1;
  if total_queued t > t.max_total_queue then t.max_total_queue <- total_queued t

let note_delivery t ~delay ~hops =
  t.delivered <- t.delivered + 1;
  t.delivery_rounds <- t.delivery_rounds + 1;
  t.delay_sum <- t.delay_sum +. float_of_int delay;
  if delay > t.max_delay then t.max_delay <- delay;
  if hops > t.max_hops then t.max_hops <- hops;
  Histogram.record t.delay_hist delay

(* A self-addressed packet is delivered at injection and never queued:
   injection and delivery are booked atomically, so [total_queued] never
   transiently includes it and the queue peaks stay untouched. *)
let note_self_injection t =
  t.injected <- t.injected + 1;
  note_delivery t ~delay:0 ~hops:0

let note_on_count t on =
  t.on_total <- t.on_total + on;
  if on > t.max_on then t.max_on <- on;
  if on > t.cap then t.cap_exceeded <- t.cap_exceeded + 1

let note_station_queue t size =
  if size > t.max_station_queue then t.max_station_queue <- size

let note_silence t = t.silent_rounds <- t.silent_rounds + 1
let note_collision t = t.collision_rounds <- t.collision_rounds + 1
let note_light t = t.light_rounds <- t.light_rounds + 1

let note_relay t = t.relay_rounds <- t.relay_rounds + 1

let note_control_bits t bits =
  t.control_bits_total <- t.control_bits_total + bits;
  if bits > t.control_bits_max then t.control_bits_max <- bits

let note_cap_exceeded t = t.cap_exceeded <- t.cap_exceeded + 1
let note_stranded t = t.stranded <- t.stranded + 1
let note_adoption_conflict t = t.adoption_conflicts <- t.adoption_conflicts + 1
let note_spurious_adoption t = t.spurious_adoptions <- t.spurious_adoptions + 1

(* Recovery is measured against the backlog just before the *first*
   fault: the run has recovered once the backlog is back at (or below)
   that baseline for good — a dip that is later exceeded again does not
   count, and a run ending above the baseline never recovered. *)
let note_fault t ~round =
  if t.first_fault_round < 0 then begin
    t.first_fault_round <- round;
    t.pre_fault_queue <- total_queued t;
    t.post_fault_peak <- t.pre_fault_queue
  end;
  t.last_fault_round <- round;
  let q = total_queued t in
  if q > t.post_fault_peak then t.post_fault_peak <- q

let note_crash t ~round ~lost =
  note_fault t ~round;
  t.crashes <- t.crashes + 1;
  t.lost <- t.lost + lost

let note_restart t ~round =
  note_fault t ~round;
  t.restarts <- t.restarts + 1

let note_jammed t ~round ~noise =
  note_fault t ~round;
  t.jammed_rounds <- t.jammed_rounds + 1;
  if noise then t.noise_rounds <- t.noise_rounds + 1

(* Closed-form account of [count] consecutive provably-silent rounds
   starting at [from_round], equivalent to per-round note_on_count +
   note_silence + end_round: nothing is injected, delivered or lost in the
   span, so [total_queued] is constant and one recovery check stands for
   every round (the last exceeding round is the span's last). The on-set
   aggregates come from the algorithm's closed-form [on_count_in]. *)
let skip_quiet t ~from_round ~count ~on_sum ~on_max ~cap_exceeded_rounds
    ~draining =
  if count > 0 then begin
    t.on_total <- t.on_total + on_sum;
    if on_max > t.max_on then t.max_on <- on_max;
    t.cap_exceeded <- t.cap_exceeded + cap_exceeded_rounds;
    t.silent_rounds <- t.silent_rounds + count;
    if draining then t.drain_rounds <- t.drain_rounds + count
    else t.rounds <- t.rounds + count;
    let q = total_queued t in
    if t.first_fault_round >= 0 then begin
      if q > t.post_fault_peak then t.post_fault_peak <- q;
      if q > t.pre_fault_queue then t.last_exceed <- from_round + count - 1
    end;
    let se = t.sample_every in
    let r = ref ((from_round + se - 1) / se * se) in
    while !r <= from_round + count - 1 do
      t.series_rev <- (!r, q) :: t.series_rev;
      r := !r + se
    done
  end

let end_round t ~round ~draining =
  if draining then t.drain_rounds <- t.drain_rounds + 1
  else t.rounds <- t.rounds + 1;
  if t.first_fault_round >= 0 then begin
    let q = total_queued t in
    if q > t.post_fault_peak then t.post_fault_peak <- q;
    if q > t.pre_fault_queue then t.last_exceed <- round
  end;
  if round mod t.sample_every = 0 then
    t.series_rev <- (round, total_queued t) :: t.series_rev

(* Replaying a recorded event stream drives the same collector the engine
   drives directly. Queue sizes are reconstructed from the packet-movement
   events: a packet enters its source's queue on injection, leaves the
   transmitter's on delivery or relay, and enters the relay's on adoption
   (a stranded packet returns whence it came — no net change). *)
let observe t ~round (ev : Mac_channel.Event.t) =
  match ev with
  | Injected { src; dst; _ } ->
    if src = dst then
      (* Delivered-at-injection: the Delivered event that follows books
         the delivery, so only the injection count moves here — exactly
         what [note_self_injection] does live. *)
      t.injected <- t.injected + 1
    else begin
      note_injection t;
      t.qsizes.(src) <- t.qsizes.(src) + 1;
      note_station_queue t t.qsizes.(src)
    end
  | Delivered { from_; delay; hops; _ } ->
    if hops > 0 then t.qsizes.(from_) <- t.qsizes.(from_) - 1;
    note_delivery t ~delay ~hops
  | Relayed { from_; relay; _ } ->
    t.qsizes.(from_) <- t.qsizes.(from_) - 1;
    t.qsizes.(relay) <- t.qsizes.(relay) + 1;
    note_relay t;
    note_station_queue t t.qsizes.(relay)
  | Silence -> note_silence t
  | Collision _ -> note_collision t
  | Heard { bits; light; _ } ->
    note_control_bits t bits;
    if light then note_light t
  | Stranded _ -> note_stranded t
  | Cap_exceeded _ -> note_cap_exceeded t
  | Adoption_conflict _ -> note_adoption_conflict t
  | Spurious_adoption _ -> note_spurious_adoption t
  | Round_end { on_count; draining } ->
    (* note_on_count minus the cap check: cap violations replay through
       the explicit Cap_exceeded events. *)
    t.on_total <- t.on_total + on_count;
    if on_count > t.max_on then t.max_on <- on_count;
    end_round t ~round ~draining
  | Station_crashed { station; lost } ->
    t.qsizes.(station) <- t.qsizes.(station) - lost;
    note_crash t ~round ~lost
  | Station_restarted _ -> note_restart t ~round
  | Round_jammed { noise; _ } -> note_jammed t ~round ~noise
  | Switched_on _ | Switched_off _ | Transmit _ | Telemetry _ -> ()

let sink t = Sink.make (fun ~round ev -> observe t ~round ev)

type live = {
  live_injected : int;
  live_delivered : int;
  live_total_queued : int;
  live_max_total_queue : int;
  live_max_station_queue : int;
  live_collision_rounds : int;
  live_jammed_rounds : int;
  live_crashes : int;
  live_station_rounds : int;
  live_lost : int;
}

let live_stats t =
  { live_injected = t.injected; live_delivered = t.delivered;
    live_total_queued = total_queued t;
    live_max_total_queue = t.max_total_queue;
    live_max_station_queue = t.max_station_queue;
    live_collision_rounds = t.collision_rounds;
    live_jammed_rounds = t.jammed_rounds; live_crashes = t.crashes;
    live_station_rounds = t.on_total; live_lost = t.lost }

let live_delay_histogram t = t.delay_hist

(* The collector is pure data (scalars, arrays, lists — no closures), so a
   Marshal round-trip is an exact deep copy; checkpoints rely on this. *)
let copy (t : t) : t = Marshal.from_string (Marshal.to_string t []) 0

let finalize t ~final_round ~max_queued_age =
  let total_rounds = t.rounds + t.drain_rounds in
  (* Always sample the final backlog: with sample_every > 1 the series could
     otherwise end up to sample_every-1 rounds short, cutting off the
     drained tail from plots. [final_round] is the count of executed rounds,
     so the last executed round is [final_round - 1]; idempotent if that
     round was already sampled. *)
  (match t.series_rev with
  | (r, _) :: _ when r >= final_round - 1 -> ()
  | _ ->
    if final_round > 0 then
      t.series_rev <- (final_round - 1, total_queued t) :: t.series_rev);
  { algorithm = t.algorithm;
    adversary = t.adversary;
    n = t.n;
    k = t.k;
    rounds = t.rounds;
    drain_rounds = t.drain_rounds;
    injected = t.injected;
    delivered = t.delivered;
    undelivered = t.injected - t.delivered;
    max_delay = t.max_delay;
    mean_delay =
      (if t.delivered = 0 then 0.0 else t.delay_sum /. float_of_int t.delivered);
    p99_delay = Histogram.percentile t.delay_hist 0.99;
    delay_histogram = Array.of_list (Histogram.buckets t.delay_hist);
    max_queued_age;
    max_total_queue = t.max_total_queue;
    final_total_queue = total_queued t;
    max_station_queue = t.max_station_queue;
    queue_series = Array.of_list (List.rev t.series_rev);
    energy_cap = t.cap;
    max_on = t.max_on;
    mean_on =
      (if total_rounds = 0 then 0.0
       else float_of_int t.on_total /. float_of_int total_rounds);
    station_rounds = t.on_total;
    silent_rounds = t.silent_rounds;
    light_rounds = t.light_rounds;
    delivery_rounds = t.delivery_rounds;
    relay_rounds = t.relay_rounds;
    collision_rounds = t.collision_rounds;
    max_hops = t.max_hops;
    control_bits_total = t.control_bits_total;
    control_bits_max = t.control_bits_max;
    violations =
      { cap_exceeded = t.cap_exceeded;
        stranded = t.stranded;
        adoption_conflicts = t.adoption_conflicts;
        spurious_adoptions = t.spurious_adoptions };
    faults =
      { crashes = t.crashes;
        restarts = t.restarts;
        jammed_rounds = t.jammed_rounds;
        noise_rounds = t.noise_rounds;
        lost_to_crash = t.lost;
        last_fault_round = t.last_fault_round;
        pre_fault_queue = (if t.first_fault_round < 0 then 0 else t.pre_fault_queue);
        post_fault_peak_queue = t.post_fault_peak;
        recovery_rounds =
          (if t.last_fault_round >= 0 && total_queued t <= t.pre_fault_queue
           then
             let back =
               if t.last_exceed >= t.last_fault_round then t.last_exceed + 1
               else t.last_fault_round
             in
             back - t.last_fault_round
           else -1) } }
