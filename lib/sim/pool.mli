(** A fixed-size, Domain-based worker pool for embarrassingly parallel
    batches of simulator runs.

    Every experiment suite in this repo is a list of independent
    [Engine.run] calls: each run owns its queues, metrics, RNG state and
    sinks, and the engine allocates nothing shared. [map] exploits that by
    fanning the list out over OCaml 5 domains while keeping the contract
    strict enough for golden-file tests: results come back in input order,
    every job runs exactly once, and a batch at [jobs = 4] is bit-identical
    to the same batch at [jobs = 1]. *)

val default_jobs : unit -> int
(** [Domain.recommended_domain_count ()], floored at 1 — the default the
    CLI and bench harness use for their [--jobs] flags. *)

val map : jobs:int -> 'a list -> ('a -> 'b) -> 'b list
(** [map ~jobs xs f] applies [f] to every element of [xs] on a pool of
    [min jobs (List.length xs)] worker domains and returns the results in
    input order. At [jobs = 1] no domain is spawned and the call degenerates
    to [List.map f xs] (left to right).

    Jobs are claimed from a shared queue, so each runs exactly once. If some
    [f x] raises, the pool stops handing out further jobs, lets in-flight
    jobs finish, joins every worker, and re-raises the first exception (with
    its backtrace) in the calling domain. Jobs that never started are simply
    dropped.

    Raises [Invalid_argument] if [jobs < 1]. [f] must not assume it runs in
    the calling domain; it must not rely on shared mutable state. *)
