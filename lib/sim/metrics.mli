(** Per-run measurements.

    The engine owns a mutable collector while the simulation runs and
    [finalize]s it into the immutable {!summary} consumed by tests, benches
    and reports. All delays are in rounds; a packet's delay is the round it
    was delivered minus the round it was injected. Undelivered packets
    contribute to [undelivered] and [max_queued_age] (a lower bound on what
    their delay would be), never to the delay statistics. *)

type violations = {
  cap_exceeded : int;      (** rounds with more switched-on stations than the cap *)
  stranded : int;          (** heard packets nobody consumed or adopted *)
  adoption_conflicts : int;(** two stations tried to adopt the same packet *)
  spurious_adoptions : int;(** adoption reaction with no packet pending *)
}

(** Degradation bookkeeping for fault-injected runs (all zero / sentinel
    [-1] when the fault plan was empty). Conservation becomes
    [injected = delivered + final_total_queue + lost_to_crash]. *)
type fault_stats = {
  crashes : int;
  restarts : int;
  jammed_rounds : int;     (** rounds whose resolution a jam or noise forced *)
  noise_rounds : int;      (** the subset of [jammed_rounds] forced by noise *)
  lost_to_crash : int;     (** packets dropped by crash-with-drop faults *)
  last_fault_round : int;  (** [-1] when no fault fired *)
  pre_fault_queue : int;   (** backlog just before the first fault *)
  post_fault_peak_queue : int;
      (** largest backlog observed at or after the first fault *)
  recovery_rounds : int;
      (** rounds from the last fault until the backlog returned to the
          pre-fault level for good (it never exceeded [pre_fault_queue]
          at a later round end); [-1] = the run ended with the backlog
          still above the pre-fault level, or no faults *)
}

type summary = {
  algorithm : string;
  adversary : string;
  n : int;
  k : int;
  rounds : int;            (** injection rounds *)
  drain_rounds : int;      (** extra no-injection rounds actually run *)
  injected : int;
  delivered : int;
  undelivered : int;       (** [injected - delivered]: still queued plus
                               lost-to-crash *)
  max_delay : int;         (** 0 when nothing was delivered *)
  mean_delay : float;
  p99_delay : int;         (** from the log-bucketed histogram: an upper
                               estimate within one bucket (~6%) of the
                               exact order statistic, clamped (inside
                               {!Histogram.percentile}) to [max_delay] *)
  delay_histogram : (int * int * int) array;
  (** non-empty delay buckets as [(lo, hi, count)], ascending — the full
      delay distribution at fixed memory (see {!Histogram}) *)
  max_queued_age : int;    (** age of the oldest packet still queued at the end *)
  max_total_queue : int;
  final_total_queue : int;
  max_station_queue : int;
  queue_series : (int * int) array; (** (round, total queued) samples *)
  energy_cap : int;
  max_on : int;
  mean_on : float;
  station_rounds : int;    (** total energy spent *)
  silent_rounds : int;
  light_rounds : int;      (** heard messages carrying no packet *)
  delivery_rounds : int;
  relay_rounds : int;      (** heard packets adopted by a relay *)
  collision_rounds : int;
  max_hops : int;          (** successful transmissions of a single packet *)
  control_bits_total : int;
  control_bits_max : int;  (** largest control payload in one message *)
  violations : violations;
  faults : fault_stats;
}

val energy_per_delivery : summary -> float
(** Station-rounds spent per delivered packet; [nan] when nothing delivered. *)

val no_violations : summary -> bool

val no_faults : summary -> bool
(** [true] iff no fault ever fired (empty plan, or nothing scheduled
    within the rounds actually run). *)

val pp_summary : Format.formatter -> summary -> unit
(** Appends a [faults:] line only when faults fired, so fault-free output
    is byte-identical to the pre-fault-layer format. *)

(** The engine-facing collector. *)
type t

val create :
  algorithm:string -> adversary:string -> n:int -> k:int -> cap:int ->
  sample_every:int -> t

val note_injection : t -> unit

val note_self_injection : t -> unit
(** A self-addressed packet: injected and delivered in the same breath
    ([delay = 0], [hops = 0]), never queued — so unlike a
    [note_injection]/[note_delivery] pair it cannot transiently inflate
    [max_total_queue]. *)

val note_on_count : t -> int -> unit
val note_station_queue : t -> int -> unit
(** Observed size of some station's queue (for the max). *)

val note_silence : t -> unit
val note_collision : t -> unit
val note_light : t -> unit
val note_delivery : t -> delay:int -> hops:int -> unit
val note_relay : t -> unit
val note_control_bits : t -> int -> unit
val note_cap_exceeded : t -> unit
val note_stranded : t -> unit
val note_adoption_conflict : t -> unit
val note_spurious_adoption : t -> unit

val note_crash : t -> round:int -> lost:int -> unit
(** A station crashed, dropping [lost] packets from its queue (0 when
    the queue is retained). Lost packets leave [total_queued]. *)

val note_restart : t -> round:int -> unit
val note_jammed : t -> round:int -> noise:bool -> unit
(** A jam/noise fault forced this round's resolution. Called at
    channel-resolution time, alongside the corresponding [note_collision]
    — the same position the [Round_jammed] event occupies in a recorded
    stream, so replay stays exact. *)

val end_round : t -> round:int -> draining:bool -> unit
(** Book-keeping at the end of each simulated round (queue sampling,
    fault-recovery tracking). *)

val skip_quiet :
  t ->
  from_round:int ->
  count:int ->
  on_sum:int ->
  on_max:int ->
  cap_exceeded_rounds:int ->
  draining:bool ->
  unit
(** Account for [count] consecutive provably-silent rounds starting at
    [from_round] in O(1 + samples): bit-identical to calling, for each
    round in the span, [note_on_count] (with the per-round on-set size,
    summarised by [on_sum]/[on_max]/[cap_exceeded_rounds] — the
    algorithm's closed-form [on_count_in] triple), [note_silence] and
    [end_round]. Sound only when the span injects, delivers and loses
    nothing, so the backlog is constant across it. *)

val observe : t -> round:int -> Mac_channel.Event.t -> unit
(** Drive the collector from a typed event instead of a [note_*] call.
    Replaying a recorded run's complete event stream through [observe]
    (then [finalize]) reconstructs the same summary the engine produced
    live — queue sizes are rebuilt from the packet-movement events. *)

val sink : t -> Sink.t
(** The collector as an event sink: [observe] wrapped for [tee]-ing. *)

val total_queued : t -> int
(** [injected - delivered - lost_to_crash]: packets still sitting in some
    queue. *)

(** Mid-run snapshot of the counters telemetry streams (see
    [Mac_sim.Telemetry]); reading it never perturbs the collector. *)
type live = {
  live_injected : int;
  live_delivered : int;
  live_total_queued : int;
  live_max_total_queue : int;
  live_max_station_queue : int;
  live_collision_rounds : int;
  live_jammed_rounds : int;
  live_crashes : int;
  live_station_rounds : int;  (** total energy spent so far *)
  live_lost : int;
}

val live_stats : t -> live

val live_delay_histogram : t -> Histogram.t
(** The collector's delay histogram, shared (not copied): telemetry
    registers it so quantile lines track the live distribution. Callers
    must treat it as read-only. *)

val copy : t -> t
(** Exact deep copy of the collector (it is pure data), for checkpoints:
    the copy and the original evolve independently. *)

val finalize : t -> final_round:int -> max_queued_age:int -> summary
(** Freeze the collector into a summary. Always appends a final
    [queue_series] sample at [final_round] (when one is not already
    present), so the drained tail is never cut off between [sample_every]
    marks. *)
