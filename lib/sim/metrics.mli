(** Per-run measurements.

    The engine owns a mutable collector while the simulation runs and
    [finalize]s it into the immutable {!summary} consumed by tests, benches
    and reports. All delays are in rounds; a packet's delay is the round it
    was delivered minus the round it was injected. Undelivered packets
    contribute to [undelivered] and [max_queued_age] (a lower bound on what
    their delay would be), never to the delay statistics. *)

type violations = {
  cap_exceeded : int;      (** rounds with more switched-on stations than the cap *)
  stranded : int;          (** heard packets nobody consumed or adopted *)
  adoption_conflicts : int;(** two stations tried to adopt the same packet *)
  spurious_adoptions : int;(** adoption reaction with no packet pending *)
}

type summary = {
  algorithm : string;
  adversary : string;
  n : int;
  k : int;
  rounds : int;            (** injection rounds *)
  drain_rounds : int;      (** extra no-injection rounds actually run *)
  injected : int;
  delivered : int;
  undelivered : int;
  max_delay : int;         (** 0 when nothing was delivered *)
  mean_delay : float;
  p99_delay : int;         (** from the log-bucketed histogram: an upper
                               estimate within one bucket (~6%) of the
                               exact order statistic, clamped to
                               [max_delay] *)
  delay_histogram : (int * int * int) array;
  (** non-empty delay buckets as [(lo, hi, count)], ascending — the full
      delay distribution at fixed memory (see {!Histogram}) *)
  max_queued_age : int;    (** age of the oldest packet still queued at the end *)
  max_total_queue : int;
  final_total_queue : int;
  max_station_queue : int;
  queue_series : (int * int) array; (** (round, total queued) samples *)
  energy_cap : int;
  max_on : int;
  mean_on : float;
  station_rounds : int;    (** total energy spent *)
  silent_rounds : int;
  light_rounds : int;      (** heard messages carrying no packet *)
  delivery_rounds : int;
  relay_rounds : int;      (** heard packets adopted by a relay *)
  collision_rounds : int;
  max_hops : int;          (** successful transmissions of a single packet *)
  control_bits_total : int;
  control_bits_max : int;  (** largest control payload in one message *)
  violations : violations;
}

val energy_per_delivery : summary -> float
(** Station-rounds spent per delivered packet; [nan] when nothing delivered. *)

val no_violations : summary -> bool

val pp_summary : Format.formatter -> summary -> unit

(** The engine-facing collector. *)
type t

val create :
  algorithm:string -> adversary:string -> n:int -> k:int -> cap:int ->
  sample_every:int -> t

val note_injection : t -> unit
val note_on_count : t -> int -> unit
val note_station_queue : t -> int -> unit
(** Observed size of some station's queue (for the max). *)

val note_silence : t -> unit
val note_collision : t -> unit
val note_light : t -> unit
val note_delivery : t -> delay:int -> hops:int -> unit
val note_relay : t -> unit
val note_control_bits : t -> int -> unit
val note_cap_exceeded : t -> unit
val note_stranded : t -> unit
val note_adoption_conflict : t -> unit
val note_spurious_adoption : t -> unit

val end_round : t -> round:int -> draining:bool -> unit
(** Book-keeping at the end of each simulated round (queue sampling). *)

val observe : t -> round:int -> Mac_channel.Event.t -> unit
(** Drive the collector from a typed event instead of a [note_*] call.
    Replaying a recorded run's complete event stream through [observe]
    (then [finalize]) reconstructs the same summary the engine produced
    live — queue sizes are rebuilt from the packet-movement events. *)

val sink : t -> Sink.t
(** The collector as an event sink: [observe] wrapped for [tee]-ing. *)

val total_queued : t -> int

val finalize : t -> final_round:int -> max_queued_age:int -> summary
