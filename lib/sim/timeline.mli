(** ASCII station×round timeline built from the event stream.

    One column per round, one row per station:

    {v
    .  switched off          o  on, listening
    T  transmitted           X  transmitted into a collision
    D  received a delivery   R  adopted the packet as a relay
    v}

    A bounded window keeps the last [rounds] rounds; feed it live as an
    engine sink or from a recorded JSONL file (see [Event.of_json_line]).
    Rounds missing from a sampled stream simply leave gaps. *)

type t

val create : ?rounds:int -> n:int -> unit -> t
(** Window of the last [rounds] rounds (default 512). *)

val sink : t -> Sink.t

val feed : t -> round:int -> Mac_channel.Event.t -> unit

val render : ?width:int -> t -> string
(** The timeline as text, chunked into blocks of [width] round-columns
    (default 72), newest rounds last, with a legend on top. Empty string
    when nothing was recorded. *)

val legend : string
