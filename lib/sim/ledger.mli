(** Per-station ledgers rebuilt from the event stream.

    The paper's Table-1 claims are statements about individual stations —
    who pays energy, whose queue grows — but [Metrics.summary] only keeps
    channel-wide aggregates. A ledger is a sink that books every event to
    the stations involved: on-rounds (energy actually spent), transmission
    and collision counts, traffic in and out, and the queue high-water
    mark, with queue sizes reconstructed from packet movements exactly as
    in [Metrics.observe]. *)

type station = {
  mutable on_rounds : int;     (** rounds switched on — this station's energy *)
  mutable transmits : int;
  mutable collisions : int;    (** transmissions lost to a collision *)
  mutable injected : int;      (** packets the adversary injected here *)
  mutable received : int;      (** packets delivered to this station *)
  mutable relayed_in : int;    (** packets adopted as a relay *)
  mutable queue : int;         (** reconstructed current queue size *)
  mutable queue_peak : int;
  mutable crashes : int;       (** crash faults injected at this station *)
  mutable lost : int;          (** packets lost when its queue was dropped *)
}

type t

val create : n:int -> t

val sink : t -> Sink.t

val n : t -> int

val station : t -> int -> station

val report : t -> Report.t
(** One row per station, ready to print. *)
