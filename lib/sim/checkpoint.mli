(** Persistent, self-describing checkpoint files for {!Engine} snapshots.

    A checkpoint file is a text header — a magic line ["MACCKPT <version>"]
    and one line of JSON metadata (algorithm, n, k, round; inspectable with
    [head -2]) — followed by the binary snapshot blob. Writes are atomic
    (tmp file + rename), so a crash mid-write leaves the previous checkpoint
    intact; [read] validates the header and version before touching the
    blob, and {!Engine.run} re-validates the snapshot's identity fields
    against the resuming run's configuration. Checkpoint files are
    build-specific (the blob is OCaml [Marshal] output): a file written by a
    different binary is rejected by the header version or the snapshot
    version, not misread.

    Format v2 adds the blob's byte count and CRC-32 to the metadata line, so
    [read] detects truncation, padding and bit-rot {e before} handing the
    blob to [Marshal]; v1 files (no checksum) remain readable. For crash
    resilience beyond a single file, {!write_rotated} keeps the previous
    good checkpoint as [<path>.prev] and {!read_latest} falls back to it
    when the newest file is corrupt. *)

val format_version : int

val write : path:string -> Engine.snapshot -> unit
(** Atomically persist a snapshot: written to a hidden sibling tmp file,
    fsynced, then renamed over [path]. *)

val read : path:string -> (Engine.snapshot, string) result
(** Load a checkpoint. [Error] carries a one-line human-readable reason
    (missing file, bad magic, version mismatch, truncated blob, CRC
    mismatch). *)

val prev_path : string -> string
(** [prev_path path] is the rotation sibling [path ^ ".prev"]. *)

val write_rotated : path:string -> Engine.snapshot -> unit
(** Like {!write}, but first rotates an existing [path] to
    [prev_path path], so the last-known-good checkpoint survives even if
    this write (or a later corruption of [path]) destroys the newest one. *)

val read_latest :
  path:string ->
  (Engine.snapshot * [ `Current | `Salvaged of string ], string) result
(** Read [path], falling back to [prev_path path] when the primary is
    missing or corrupt. [`Salvaged reason] reports why the primary was
    rejected; [Error] combines both failure reasons. *)

val describe : Engine.snapshot -> string
(** One line: algorithm, n, k and the snapshot's round position. *)
