(** Persistent, self-describing checkpoint files for {!Engine} snapshots.

    A checkpoint file is a text header — a magic line ["MACCKPT <version>"]
    and one line of JSON metadata (algorithm, n, k, round; inspectable with
    [head -2]) — followed by the binary snapshot blob. Writes are atomic
    (tmp file + rename), so a crash mid-write leaves the previous checkpoint
    intact; [read] validates the header and version before touching the
    blob, and {!Engine.run} re-validates the snapshot's identity fields
    against the resuming run's configuration. Checkpoint files are
    build-specific (the blob is OCaml [Marshal] output): a file written by a
    different binary is rejected by the header version or the snapshot
    version, not misread. *)

val format_version : int

val write : path:string -> Engine.snapshot -> unit
(** Atomically persist a snapshot: written to a hidden sibling tmp file,
    then renamed over [path]. *)

val read : path:string -> (Engine.snapshot, string) result
(** Load a checkpoint. [Error] carries a one-line human-readable reason
    (missing file, bad magic, version mismatch, truncated blob). *)

val describe : Engine.snapshot -> string
(** One line: algorithm, n, k and the snapshot's round position. *)
