(** Log-bucketed histogram of non-negative integers (delays in rounds).

    Values below 16 get exact width-1 buckets; above that, each octave
    [2^m, 2^(m+1)) splits into 16 sub-buckets, so any recorded value is
    within one bucket — at most ~6% relative error — of its true rank
    statistic. This replaces retaining every delay: memory is a fixed
    ~1000-slot array no matter how many values are recorded. *)

type t

val create : unit -> t

val record : t -> int -> unit
(** Negative values are clamped to 0. *)

val count : t -> int
(** Total values recorded. *)

val percentile : t -> float -> int
(** [percentile t q] for [q] in (0, 1]: the upper bound of the bucket
    containing the value of rank [ceil (q * count)], clamped to the
    largest value actually recorded — an upper estimate within one
    bucket of the exact order statistic. 0 when empty. *)

val max_value : t -> int
(** Largest value recorded; 0 when empty. *)

val copy : t -> t
(** Independent deep copy. *)

val merge : t -> t -> t
(** Exact bucket-wise sum as a fresh histogram: recording [xs] and [ys]
    separately then merging is indistinguishable from recording
    [xs @ ys] into one histogram. Neither argument is modified. *)

val merge_into : into:t -> t -> unit
(** In-place variant of [merge]: accumulate the second histogram's
    buckets into [into]. *)

val buckets : t -> (int * int * int) list
(** Non-empty buckets as [(lo, hi, count)], ascending. *)

val bucket_of : int -> int
(** The bucket index a value falls into (exposed for tests). *)

val bounds_of : int -> int * int
(** Inclusive [(lo, hi)] value range of a bucket index. *)
