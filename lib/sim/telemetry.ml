(* A small metrics registry in the Prometheus mold: named, labelled
   counters, gauges and log-bucketed histograms, populated live by the
   engine and rendered to a text exposition. Registries from concurrent
   scenario runs merge exactly (counter sums, gauge sum/max policies,
   bucket-wise histogram sums), which is what the fleet aggregation in
   [Fleet] builds on. No external dependencies: rendering is a Buffer,
   atomicity is tmp-file + rename. *)

type merge = Sum | Max

type counter = int ref

type gauge = { mutable g : float; g_merge : merge }

type data =
  | Counter of counter
  | Gauge of gauge
  | Hist of Histogram.t

type metric = {
  name : string;
  help : string;
  mlabels : (string * string) list;
  data : data;
}

type t = {
  base_labels : (string * string) list;
  mutable metrics : metric list; (* reverse registration order *)
}

let create ?(labels = []) () = { base_labels = labels; metrics = [] }

let base_labels t = t.base_labels

let find t name mlabels =
  List.find_opt (fun m -> m.name = name && m.mlabels = mlabels) t.metrics

let kind_error name =
  invalid_arg
    (Printf.sprintf "Telemetry: %s already registered with a different kind"
       name)

let counter t ?(help = "") ?(labels = []) name =
  match find t name labels with
  | Some { data = Counter c; _ } -> c
  | Some _ -> kind_error name
  | None ->
    let c = ref 0 in
    t.metrics <- { name; help; mlabels = labels; data = Counter c } :: t.metrics;
    c

let inc c = incr c
let add c n = c := !c + n
let set_counter c v = c := v
let counter_value c = !c

let gauge t ?(help = "") ?(labels = []) ?(merge = Sum) name =
  match find t name labels with
  | Some { data = Gauge g; _ } -> g
  | Some _ -> kind_error name
  | None ->
    let g = { g = 0.0; g_merge = merge } in
    t.metrics <- { name; help; mlabels = labels; data = Gauge g } :: t.metrics;
    g

let set_gauge g v = g.g <- v
let gauge_value g = g.g

let register_histogram t ?(help = "") ?(labels = []) name h =
  match find t name labels with
  | Some { data = Hist h'; _ } -> h'
  | Some _ -> kind_error name
  | None ->
    t.metrics <- { name; help; mlabels = labels; data = Hist h } :: t.metrics;
    h

let histogram t ?help ?labels name =
  register_histogram t ?help ?labels name (Histogram.create ())

(* ---- snapshots ---- *)

let sample_name m =
  if m.mlabels = [] then m.name
  else
    m.name ^ "{"
    ^ String.concat ","
        (List.map (fun (k, v) -> k ^ "=\"" ^ v ^ "\"") m.mlabels)
    ^ "}"

let sample t =
  List.filter_map
    (fun m ->
      match m.data with
      | Counter c -> Some (sample_name m, float_of_int !c)
      | Gauge g -> Some (sample_name m, g.g)
      | Hist _ -> None)
    (List.rev t.metrics)

let find_sample sample name = List.assoc_opt name sample

(* ---- exact merge ---- *)

let merge_into ~into src =
  List.iter
    (fun m ->
      match find into m.name m.mlabels with
      | Some m' ->
        (match (m.data, m'.data) with
         | Counter c, Counter c' -> c' := !c' + !c
         | Gauge g, Gauge g' ->
           (match g'.g_merge with
            | Sum -> g'.g <- g'.g +. g.g
            | Max -> if g.g > g'.g then g'.g <- g.g)
         | Hist h, Hist h' -> Histogram.merge_into ~into:h' h
         | _ -> kind_error m.name)
      | None ->
        let data =
          match m.data with
          | Counter c -> Counter (ref !c)
          | Gauge g -> Gauge { g = g.g; g_merge = g.g_merge }
          | Hist h -> Hist (Histogram.copy h)
        in
        into.metrics <- { m with data } :: into.metrics)
    (List.rev src.metrics)

(* ---- Prometheus-style text exposition ---- *)

let escape_label v =
  let buf = Buffer.create (String.length v) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string buf "\\\\"
      | '"' -> Buffer.add_string buf "\\\""
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    v;
  Buffer.contents buf

let format_value f =
  if f <> f then "NaN"
  else if f = infinity then "+Inf"
  else if f = neg_infinity then "-Inf"
  else if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.0f" f
  else Printf.sprintf "%g" f

let quantiles = [ ("0.5", 0.5); ("0.9", 0.9); ("0.99", 0.99) ]

let render t =
  let buf = Buffer.create 1024 in
  let seen = Hashtbl.create 16 in
  let header name help typ =
    if not (Hashtbl.mem seen name) then begin
      Hashtbl.add seen name ();
      if help <> "" then begin
        Buffer.add_string buf "# HELP ";
        Buffer.add_string buf name;
        Buffer.add_char buf ' ';
        Buffer.add_string buf help;
        Buffer.add_char buf '\n'
      end;
      Buffer.add_string buf "# TYPE ";
      Buffer.add_string buf name;
      Buffer.add_char buf ' ';
      Buffer.add_string buf typ;
      Buffer.add_char buf '\n'
    end
  in
  let labels ?(extra = []) m =
    let all = t.base_labels @ m.mlabels @ extra in
    if all <> [] then begin
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          Buffer.add_string buf k;
          Buffer.add_string buf "=\"";
          Buffer.add_string buf (escape_label v);
          Buffer.add_char buf '"')
        all;
      Buffer.add_char buf '}'
    end
  in
  let line ?extra ?(suffix = "") m value =
    Buffer.add_string buf m.name;
    Buffer.add_string buf suffix;
    labels ?extra m;
    Buffer.add_char buf ' ';
    Buffer.add_string buf value;
    Buffer.add_char buf '\n'
  in
  List.iter
    (fun m ->
      match m.data with
      | Counter c ->
        header m.name m.help "counter";
        line m (format_value (float_of_int !c))
      | Gauge g ->
        header m.name m.help "gauge";
        line m (format_value g.g)
      | Hist h ->
        header m.name m.help "summary";
        List.iter
          (fun (qs, q) ->
            line ~extra:[ ("quantile", qs) ] m
              (string_of_int (Histogram.percentile h q)))
          quantiles;
        line ~suffix:"_count" m (string_of_int (Histogram.count h)))
    (List.rev t.metrics);
  Buffer.contents buf

(* Atomic and durable (tmp + fsync + rename): a crash right after the
   rename must not leave an empty exposition where a full one stood. *)
let write_atomic ~path content = Durable.write_string ~path content

(* ---- exposition parsing (for [routing_sim top] and CI validation) ---- *)

exception Parse of string

let parse_line line =
  let len = String.length line in
  let pos = ref 0 in
  let name_char c =
    match c with
    | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> true
    | _ -> false
  in
  while !pos < len && name_char line.[!pos] do
    incr pos
  done;
  if !pos = 0 then raise (Parse "expected metric name");
  let name = String.sub line 0 !pos in
  let labels = ref [] in
  if !pos < len && line.[!pos] = '{' then begin
    incr pos;
    let parse_label () =
      let start = !pos in
      while !pos < len && line.[!pos] <> '=' do
        incr pos
      done;
      if !pos >= len then raise (Parse "label without '='");
      let key = String.trim (String.sub line start (!pos - start)) in
      incr pos;
      if !pos >= len || line.[!pos] <> '"' then
        raise (Parse "label value not quoted");
      incr pos;
      let buf = Buffer.create 16 in
      let rec go () =
        if !pos >= len then raise (Parse "unterminated label value");
        match line.[!pos] with
        | '"' -> incr pos
        | '\\' ->
          incr pos;
          if !pos >= len then raise (Parse "dangling escape");
          (match line.[!pos] with
           | 'n' -> Buffer.add_char buf '\n'
           | c -> Buffer.add_char buf c);
          incr pos;
          go ()
        | c ->
          Buffer.add_char buf c;
          incr pos;
          go ()
      in
      go ();
      labels := (key, Buffer.contents buf) :: !labels
    in
    if !pos < len && line.[!pos] = '}' then incr pos
    else begin
      parse_label ();
      while !pos < len && line.[!pos] = ',' do
        incr pos;
        parse_label ()
      done;
      if !pos >= len || line.[!pos] <> '}' then
        raise (Parse "expected '}' after labels");
      incr pos
    end
  end;
  while !pos < len && (line.[!pos] = ' ' || line.[!pos] = '\t') do
    incr pos
  done;
  let v = String.trim (String.sub line !pos (len - !pos)) in
  match float_of_string_opt v with
  | Some f -> (name, List.rev !labels, f)
  | None -> raise (Parse (Printf.sprintf "bad value %S" v))

let parse_exposition text =
  let lines = String.split_on_char '\n' text in
  let rec go acc lineno = function
    | [] -> Ok (List.rev acc)
    | line :: rest ->
      let trimmed = String.trim line in
      if trimmed = "" || trimmed.[0] = '#' then go acc (lineno + 1) rest
      else begin
        match parse_line trimmed with
        | entry -> go (entry :: acc) (lineno + 1) rest
        | exception Parse msg ->
          Error (Printf.sprintf "line %d: %s" lineno msg)
      end
  in
  go [] 1 lines

(* ---- metric-name vocabulary ----

   One place for every name the engine publishes, so the CLI progress
   line, [routing_sim top] and tests agree with the engine without
   stringly-typed drift. *)

module Names = struct
  let round = "eear_round"
  let rounds_target = "eear_rounds_target"
  let rounds_per_second = "eear_rounds_per_second"
  let backlog = "eear_backlog_packets"
  let backlog_peak = "eear_backlog_peak_packets"
  let station_queue_peak = "eear_station_queue_peak_packets"
  let bucket_tokens = "eear_bucket_tokens"
  let crashed_stations = "eear_crashed_stations"
  let energy_window = "eear_energy_window_station_rounds"
  let energy_total = "eear_energy_station_rounds_total"
  let injected_total = "eear_injected_total"
  let delivered_total = "eear_delivered_total"
  let collisions_total = "eear_collision_rounds_total"
  let jams_total = "eear_jammed_rounds_total"
  let lost_total = "eear_lost_packets_total"
  let checkpoints_total = "eear_checkpoints_total"
  let samples_total = "eear_telemetry_samples_total"
  let gc_minor_words_per_round = "eear_gc_minor_words_per_round"
  let gc_heap_words = "eear_gc_heap_words"
  let gc_major_collections_total = "eear_gc_major_collections_total"
  let delay = "eear_delay_rounds"
  let phase_ns = "eear_phase_ns"
  let scenarios_started = "eear_scenarios_started_total"
  let scenarios_completed = "eear_scenarios_completed_total"
  let scenarios_cached = "eear_scenarios_cached_total"
  let bisect_probes = "eear_bisect_probes_total"
end

(* ---- engine attachment ---- *)

type probe = {
  registry : t;
  every : int;
  on_sample : round:int -> t -> unit;
}

let probe ?(every = 1000) ?(on_sample = fun ~round:_ _ -> ()) registry =
  { registry; every = max 1 every; on_sample }

(* ---- fleet aggregation ---- *)

type registry = t

let new_registry = create

module Fleet = struct
  type nonrec probe = probe

  type fleet = {
    dir : string option;
    fleet_every : int;
    lock : Mutex.t;
    agg : registry;
    started : counter;
    completed : counter;
    cached : counter;
  }

  type t = fleet

  let sanitize id =
    String.map
      (fun c ->
        match c with
        | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '.' | '-' | '_' -> c
        | _ -> '_')
      id

  let rec mkdirs d =
    if d <> "" && d <> "/" && d <> "." && not (Sys.file_exists d) then begin
      mkdirs (Filename.dirname d);
      try Sys.mkdir d 0o755 with Sys_error _ -> ()
    end

  let create ?dir ?(every = 1000) () =
    Option.iter mkdirs dir;
    let agg = new_registry () in
    { dir; fleet_every = max 1 every; lock = Mutex.create (); agg;
      started =
        counter agg ~help:"Scenario runs started." Names.scenarios_started;
      completed =
        counter agg ~help:"Scenario runs completed." Names.scenarios_completed;
      cached =
        counter agg ~help:"Scenario runs served from the result cache."
          Names.scenarios_cached }

  let aggregate fleet = fleet.agg
  let dir fleet = fleet.dir

  let scenario_path fleet id =
    Option.map (fun d -> Filename.concat d (sanitize id ^ ".prom")) fleet.dir

  let fleet_path fleet =
    Option.map (fun d -> Filename.concat d "fleet.prom") fleet.dir

  let write_scenario fleet ~id reg =
    match scenario_path fleet id with
    | Some path -> write_atomic ~path (render reg)
    | None -> ()

  (* Callers hold [lock]. *)
  let write_fleet fleet =
    match fleet_path fleet with
    | Some path -> write_atomic ~path (render fleet.agg)
    | None -> ()

  let locked fleet f =
    Mutex.lock fleet.lock;
    Fun.protect ~finally:(fun () -> Mutex.unlock fleet.lock) f

  let probe fleet ~id =
    locked fleet (fun () -> incr fleet.started);
    let reg = new_registry ~labels:[ ("scenario", id) ] () in
    probe ~every:fleet.fleet_every
      ~on_sample:(fun ~round:_ reg -> write_scenario fleet ~id reg)
      reg

  let finish fleet (p : probe) =
    let id =
      Option.value
        (List.assoc_opt "scenario" (base_labels p.registry))
        ~default:"unknown"
    in
    write_scenario fleet ~id p.registry;
    locked fleet (fun () ->
        merge_into ~into:fleet.agg p.registry;
        incr fleet.completed;
        write_fleet fleet)

  let note_cached fleet ~id:_ =
    locked fleet (fun () ->
        incr fleet.cached;
        write_fleet fleet)

  let add_counter fleet ?(help = "") ?(by = 1) name =
    locked fleet (fun () ->
        let c = counter fleet.agg ~help name in
        c := !c + by;
        write_fleet fleet)
end
