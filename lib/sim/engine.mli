(** The synchronous multiple-access-channel simulator.

    Each round proceeds exactly as in the paper's model:

    + the adversary injects packets into stations (on or off — injection
      only touches a station's private queue);
    + every station decides its mode; the switched-on count is charged
      against the energy cap;
    + switched-on stations transmit or listen; one transmitter means the
      message is heard by every switched-on station (including the
      transmitter), two or more mean a collision, none means silence;
    + a heard packet whose destination is switched on is delivered and
      disappears; otherwise exactly one switched-on station may adopt it and
      become its relay; a heard packet that is neither delivered nor adopted
      is a protocol violation ("stranded") — it is returned to the
      transmitter and counted;
    + switched-off stations observe nothing.

    The engine verifies the algorithm's declared contract while running:
    transmitting a packet not in one's queue, a non-plain message from a
    plain-packet algorithm, adoption by a direct-routing algorithm, adoption
    by the transmitter itself, and (when [check_schedule] is set) an
    oblivious algorithm whose [on_duty] disagrees with its declared static
    schedule all raise [Protocol_violation] when [strict] (the default).
    Conservation — injected = delivered + queued + lost-to-crash, no
    duplicates — is checked at the end of every run.

    {b Faults.} When [config.faults] carries a non-empty
    {!Mac_faults.Fault_plan}, its actions are applied at the top of each
    round, between injection and the mode decisions: a crashed station is
    forced off with its algorithm state frozen (queue retained or dropped
    per the plan; dropped packets are classified lost-to-crash), a
    restarted station rejoins with fresh algorithm state, and jam/noise
    actions force that round's channel resolution to a collision. With an
    absent or empty plan every path is untouched — output is bit-identical
    to the fault-free engine. *)

exception Protocol_violation of string

type mode =
  | Dense  (** visit every station every round (the classical engine) *)
  | Sparse
      (** require the algorithm's closed-form schedule
          ({!Mac_channel.Algorithm.S.sparse}; [Invalid_argument] if absent):
          concrete rounds touch only the stations scheduled on this round or
          on last round, and stretches in which provably nothing happens (no
          admission, no fault, no possible transmission, no crashed station,
          no sink observing) are skipped analytically — the clock, the
          leaky bucket, the metrics and the cadenced side effects (checkpoints,
          telemetry samples) all advance in closed form. Output (events,
          summary, snapshot bytes) is bit-identical to [Dense]; with
          [check_schedule], only concretely-executed rounds are checked. *)
  | Auto  (** [Sparse] when the algorithm supports it, else [Dense] *)

val snapshot_version : int
(** Format version of {!snapshot}; bumped when the snapshot layout changes. *)

type snapshot
(** A pure-data photograph of a run at a round boundary: per-station queues
    (arrival order, with hop counts), encoded algorithm states (via each
    algorithm's {!Mac_channel.Algorithm.S.encode_state}), the adversary
    driver (exact leaky-bucket level and pattern cursor), mode memory, crash
    flags, and a deep copy of the metrics collector — plus identity fields
    (algorithm, n, k, adversary type, fault-plan name, config) that [resume]
    validates. Snapshots are self-contained: holding one and resuming from
    it twice gives two identical runs. Serialise with {!Checkpoint}. *)

val snapshot_round : snapshot -> int
(** The next round the resumed run will execute. *)

val snapshot_drained : snapshot -> int
(** Drain rounds already executed (0 while in the injection phase). *)

val snapshot_algorithm : snapshot -> string

val snapshot_n : snapshot -> int

val snapshot_k : snapshot -> int

val snapshot_rounds : snapshot -> int
(** The run's configured injection-round count. *)

type config = {
  rounds : int;          (** rounds with injection *)
  drain_limit : int;     (** additional injection-free rounds, stopping early
                             once all queues are empty (0 = no drain) *)
  sample_every : int;    (** queue-size sampling period; [0] = auto *)
  check_schedule : bool; (** cross-check [on_duty] against [static_schedule] *)
  strict : bool;         (** raise on protocol violations instead of counting *)
  trace : Mac_channel.Trace.t option;
  (** when set, notable channel events (injections, deliveries, relays,
      light messages, collisions) are recorded into the caller's trace *)
  sink : Sink.t option;
  (** when set, receives the full typed event stream of the run — every
      mode edge, transmission, channel outcome and round boundary. Combine
      sinks with {!Sink.tee}; the sink is {b not} closed by the engine. *)
  faults : Mac_faults.Fault_plan.t option;
  (** when set (and non-empty), fault actions are injected into the round
      loop — see the module docs. A plan naming a station [>= n] raises
      [Protocol_violation]. Crash-heavy plans usually want
      [strict = false]: a packet heard while its only consumers are
      crashed strands, which strict mode treats as a protocol bug. *)
  checkpoint_every : int;
  (** when positive (and [on_checkpoint] is set), a snapshot is taken at
      every round boundary divisible by this period — injection and drain
      rounds both count. [0] disables checkpointing. *)
  on_checkpoint : (snapshot -> unit) option;
  (** receives each periodic snapshot (typically to persist it via
      {!Checkpoint.write}). Taking a snapshot reads but never writes engine
      state, so a checkpointed run is bit-identical to an unobserved one. *)
  telemetry : Telemetry.probe option;
  (** when set, the engine refreshes the probe's registry (backlog,
      energy, throughput, GC and phase-timing metrics — see
      {!Telemetry.Names}) at every round boundary divisible by
      [probe.every], plus once at the end of the run. Each sample emits an
      [Event.Telemetry] through the sinks (when any are installed) and
      then calls [probe.on_sample]. Sampling reads but never writes
      engine state: a run with telemetry on produces the same summary,
      checkpoints, and (telemetry events aside) event stream as one with
      it off. [None] leaves the round loop untouched. *)
  heartbeat : (unit -> unit) option;
  (** when set, called once at every round boundary (injection and drain
      rounds alike). Used by {!Supervisor} watchdogs as a liveness signal
      and as a cooperative cancellation point — the callback may raise to
      abandon the run. [None] (the default) leaves the round loop
      untouched. In sparse mode an analytic skip beats once per skipped
      stretch rather than once per round; stretches are bounded by the
      checkpoint and telemetry cadences when either is configured. *)
  mode : mode;
  (** execution mode; see {!mode}. Snapshots are mode-agnostic: a
      checkpoint written under one mode resumes under another and the runs
      stay bit-identical. *)
}

val default_config : rounds:int -> config
(** No drain, auto sampling, no schedule check, strict, no trace, no sink,
    no faults, no checkpointing, no telemetry, [Dense] mode. *)

type session
(** An in-flight run stopped at a round boundary: the same engine state
    {!run} drives internally, exposed for incremental (step-wise) driving.
    The serve layer advances many sessions concurrently, feeding external
    injections between batches; a session advanced with an unbounded
    budget and then {!finish}ed is bit-identical (events, summary,
    snapshots) to the closed-loop {!run}. *)

val start :
  ?config:config ->
  ?resume:snapshot ->
  algorithm:Mac_channel.Algorithm.t ->
  n:int ->
  k:int ->
  adversary:Mac_adversary.Adversary.t ->
  rounds:int ->
  unit ->
  session
(** Validate the configuration (and snapshot, when resuming), build all
    engine state, and stop before executing any round. Argument contract
    is exactly {!run}'s. *)

val advance : session -> max_steps:int -> int
(** Execute up to [max_steps] driver iterations (a concrete round, or one
    analytic skip covering many rounds, per iteration) and return the
    number executed. Injection rounds run first, then drain rounds; the
    return value is less than [max_steps] only when the run is complete.
    Always returns at a round boundary, so {!session_snapshot} is valid
    after every call. Raises [Invalid_argument] after {!finish}. *)

val session_round : session -> int
(** The next round to execute (mirrors {!snapshot_round}). *)

val session_drained : session -> int
(** Drain rounds executed so far. *)

val session_backlog : session -> int
(** Packets currently queued across all stations. *)

val session_complete : session -> bool
(** True once {!advance} can do no more work: the injection phase ran to
    [config.rounds] and the drain phase hit its limit or emptied the
    queues. *)

val session_snapshot : session -> snapshot
(** Snapshot the session at its current round boundary — same contract as
    the [on_checkpoint] snapshots. *)

val finish : session -> Metrics.summary
(** Final telemetry sample, conservation/duplicate checks, and the
    summary — what {!run} does after its driver loop. Raises
    [Invalid_argument] unless {!session_complete}, or if called twice. *)

val run :
  ?config:config ->
  ?resume:snapshot ->
  algorithm:Mac_channel.Algorithm.t ->
  n:int ->
  k:int ->
  adversary:Mac_adversary.Adversary.t ->
  rounds:int ->
  unit ->
  Metrics.summary
(** [run ~algorithm ~n ~k ~adversary ~rounds ()] simulates [rounds] rounds.
    When a config is given its [rounds] field must equal the [~rounds]
    argument — a mismatch raises [Invalid_argument] (historically
    [config.rounds] silently won). [k] is the offered energy cap; the energy
    accountant checks against the algorithm's [required_cap ~n ~k].

    When [resume] is given, the run continues from that snapshot instead of
    round 0 and produces the exact suffix of the uninterrupted run: the event
    stream emitted to [config.sink] from the snapshot round on, and the final
    summary, are bit-identical to what the straight-through run produces.
    The snapshot must have been taken by a run with the same algorithm
    (name and [state_version]), n, k, adversary (name, exact type, pacing,
    pattern), fault plan and config ([rounds], [drain_limit], resolved
    [sample_every]) — any mismatch raises [Invalid_argument]. *)
