(** The synchronous multiple-access-channel simulator.

    Each round proceeds exactly as in the paper's model:

    + the adversary injects packets into stations (on or off — injection
      only touches a station's private queue);
    + every station decides its mode; the switched-on count is charged
      against the energy cap;
    + switched-on stations transmit or listen; one transmitter means the
      message is heard by every switched-on station (including the
      transmitter), two or more mean a collision, none means silence;
    + a heard packet whose destination is switched on is delivered and
      disappears; otherwise exactly one switched-on station may adopt it and
      become its relay; a heard packet that is neither delivered nor adopted
      is a protocol violation ("stranded") — it is returned to the
      transmitter and counted;
    + switched-off stations observe nothing.

    The engine verifies the algorithm's declared contract while running:
    transmitting a packet not in one's queue, a non-plain message from a
    plain-packet algorithm, adoption by a direct-routing algorithm, adoption
    by the transmitter itself, and (when [check_schedule] is set) an
    oblivious algorithm whose [on_duty] disagrees with its declared static
    schedule all raise [Protocol_violation] when [strict] (the default).
    Conservation — injected = delivered + queued, no duplicates — is checked
    at the end of every run. *)

exception Protocol_violation of string

type config = {
  rounds : int;          (** rounds with injection *)
  drain_limit : int;     (** additional injection-free rounds, stopping early
                             once all queues are empty (0 = no drain) *)
  sample_every : int;    (** queue-size sampling period; [0] = auto *)
  check_schedule : bool; (** cross-check [on_duty] against [static_schedule] *)
  strict : bool;         (** raise on protocol violations instead of counting *)
  trace : Mac_channel.Trace.t option;
  (** when set, notable channel events (injections, deliveries, relays,
      light messages, collisions) are recorded into the caller's trace *)
  sink : Sink.t option;
  (** when set, receives the full typed event stream of the run — every
      mode edge, transmission, channel outcome and round boundary. Combine
      sinks with {!Sink.tee}; the sink is {b not} closed by the engine. *)
}

val default_config : rounds:int -> config
(** No drain, auto sampling, no schedule check, strict, no trace, no sink. *)

val run :
  ?config:config ->
  algorithm:Mac_channel.Algorithm.t ->
  n:int ->
  k:int ->
  adversary:Mac_adversary.Adversary.t ->
  rounds:int ->
  unit ->
  Metrics.summary
(** [run ~algorithm ~n ~k ~adversary ~rounds ()] simulates [rounds] rounds
    (or [config.rounds] if a config is given — the [rounds] argument is then
    ignored). [k] is the offered energy cap; the energy accountant checks
    against the algorithm's [required_cap ~n ~k]. *)
