let columns =
  [ "algorithm"; "adversary"; "n"; "k"; "rounds"; "drain_rounds"; "injected";
    "delivered"; "undelivered"; "max_delay"; "mean_delay"; "p99_delay";
    "max_queued_age"; "max_total_queue"; "final_total_queue";
    "max_station_queue"; "energy_cap"; "max_on"; "mean_on"; "station_rounds";
    "silent_rounds"; "light_rounds"; "delivery_rounds"; "relay_rounds";
    "collision_rounds"; "max_hops"; "control_bits_total"; "control_bits_max";
    "cap_exceeded"; "stranded"; "adoption_conflicts"; "spurious_adoptions";
    "crashes"; "restarts"; "jammed_rounds"; "noise_rounds"; "lost_to_crash";
    "last_fault_round"; "pre_fault_queue"; "post_fault_peak_queue";
    "recovery_rounds" ]

let csv_header = String.concat "," columns

(* Non-finite floats have no JSON representation ("%.6g" would emit the
   invalid tokens [nan] or [inf]) and no meaningful table cell; JSON gets
   [null], CSV/table cells get "-". Mean delay is nan-free today (finalize
   maps zero deliveries to 0.0) but energy-per-delivery is genuinely nan on
   zero-delivery runs, and both emitters must stay safe under refactors. *)
let finite_or float_repr fallback v =
  if Float.is_finite v then float_repr v else fallback

let csv_float v = finite_or (Printf.sprintf "%.6g") "-" v
let json_float v = finite_or (Printf.sprintf "%.6g") "null" v

(* CSV-quote a field only when necessary. *)
let quote field =
  if String.exists (fun c -> c = ',' || c = '"' || c = '\n') field then
    "\"" ^ String.concat "\"\"" (String.split_on_char '"' field) ^ "\""
  else field

let cells (s : Metrics.summary) =
  [ quote s.algorithm; quote s.adversary; string_of_int s.n; string_of_int s.k;
    string_of_int s.rounds; string_of_int s.drain_rounds;
    string_of_int s.injected; string_of_int s.delivered;
    string_of_int s.undelivered; string_of_int s.max_delay;
    csv_float s.mean_delay; string_of_int s.p99_delay;
    string_of_int s.max_queued_age; string_of_int s.max_total_queue;
    string_of_int s.final_total_queue; string_of_int s.max_station_queue;
    string_of_int s.energy_cap; string_of_int s.max_on;
    csv_float s.mean_on; string_of_int s.station_rounds;
    string_of_int s.silent_rounds; string_of_int s.light_rounds;
    string_of_int s.delivery_rounds; string_of_int s.relay_rounds;
    string_of_int s.collision_rounds; string_of_int s.max_hops;
    string_of_int s.control_bits_total; string_of_int s.control_bits_max;
    string_of_int s.violations.cap_exceeded; string_of_int s.violations.stranded;
    string_of_int s.violations.adoption_conflicts;
    string_of_int s.violations.spurious_adoptions;
    string_of_int s.faults.crashes; string_of_int s.faults.restarts;
    string_of_int s.faults.jammed_rounds; string_of_int s.faults.noise_rounds;
    string_of_int s.faults.lost_to_crash;
    string_of_int s.faults.last_fault_round;
    string_of_int s.faults.pre_fault_queue;
    string_of_int s.faults.post_fault_peak_queue;
    string_of_int s.faults.recovery_rounds ]

let summary_csv_row s = String.concat "," (cells s)

let summaries_csv summaries =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf csv_header;
  Buffer.add_char buf '\n';
  List.iter
    (fun s ->
      Buffer.add_string buf (summary_csv_row s);
      Buffer.add_char buf '\n')
    summaries;
  Buffer.contents buf

let series_csv (s : Metrics.summary) =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "round,total_queued\n";
  Array.iter
    (fun (r, q) -> Buffer.add_string buf (Printf.sprintf "%d,%d\n" r q))
    s.queue_series;
  Buffer.contents buf

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let summary_json (s : Metrics.summary) =
  let field name value = Printf.sprintf "%S: %s" name value in
  let str name value = field name (Printf.sprintf "\"%s\"" (json_escape value)) in
  let int name value = field name (string_of_int value) in
  let float name value = field name (json_float value) in
  let fields =
    [ str "algorithm" s.algorithm; str "adversary" s.adversary; int "n" s.n;
      int "k" s.k; int "rounds" s.rounds; int "drain_rounds" s.drain_rounds;
      int "injected" s.injected; int "delivered" s.delivered;
      int "undelivered" s.undelivered; int "max_delay" s.max_delay;
      float "mean_delay" s.mean_delay; int "p99_delay" s.p99_delay;
      int "max_queued_age" s.max_queued_age;
      int "max_total_queue" s.max_total_queue;
      int "final_total_queue" s.final_total_queue;
      int "max_station_queue" s.max_station_queue;
      int "energy_cap" s.energy_cap; int "max_on" s.max_on;
      float "mean_on" s.mean_on; int "station_rounds" s.station_rounds;
      int "silent_rounds" s.silent_rounds; int "light_rounds" s.light_rounds;
      int "delivery_rounds" s.delivery_rounds; int "relay_rounds" s.relay_rounds;
      int "collision_rounds" s.collision_rounds; int "max_hops" s.max_hops;
      int "control_bits_total" s.control_bits_total;
      int "control_bits_max" s.control_bits_max;
      field "delay_histogram"
        ("["
        ^ String.concat ", "
            (Array.to_list
               (Array.map
                  (fun (lo, hi, count) -> Printf.sprintf "[%d, %d, %d]" lo hi count)
                  s.delay_histogram))
        ^ "]");
      Printf.sprintf
        "\"violations\": {%s, %s, %s, %s}"
        (int "cap_exceeded" s.violations.cap_exceeded)
        (int "stranded" s.violations.stranded)
        (int "adoption_conflicts" s.violations.adoption_conflicts)
        (int "spurious_adoptions" s.violations.spurious_adoptions);
      Printf.sprintf
        "\"faults\": {%s, %s, %s, %s, %s, %s, %s, %s, %s}"
        (int "crashes" s.faults.crashes)
        (int "restarts" s.faults.restarts)
        (int "jammed_rounds" s.faults.jammed_rounds)
        (int "noise_rounds" s.faults.noise_rounds)
        (int "lost_to_crash" s.faults.lost_to_crash)
        (int "last_fault_round" s.faults.last_fault_round)
        (int "pre_fault_queue" s.faults.pre_fault_queue)
        (int "post_fault_peak_queue" s.faults.post_fault_peak_queue)
        (int "recovery_rounds" s.faults.recovery_rounds) ]
  in
  "{" ^ String.concat ", " fields ^ "}"

let write_file ~path content =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc content)
