open Mac_channel

type t = {
  n : int;
  capacity : int;
  rows : Bytes.t array;        (* ring of finished per-round rows *)
  row_round : int array;       (* round number of each slot; -1 = empty *)
  mutable count : int;         (* finished rows ever flushed *)
  on : bool array;             (* current on-set, tracked from mode edges *)
  mutable cur_round : int;     (* round being assembled; -1 before any *)
  mutable cur : Bytes.t;
}

let legend =
  ". off   o listening   T transmit   X collision   D delivery   R relay   \
   # crash   r restart"

let create ?(rounds = 512) ~n () =
  let capacity = max rounds 1 in
  { n; capacity;
    rows = Array.init capacity (fun _ -> Bytes.make (max n 1) ' ');
    row_round = Array.make capacity (-1);
    count = 0;
    on = Array.make (max n 1) false;
    cur_round = -1;
    cur = Bytes.make (max n 1) '.' }

let flush t =
  if t.cur_round >= 0 then begin
    let slot = t.count mod t.capacity in
    Bytes.blit t.cur 0 t.rows.(slot) 0 t.n;
    t.row_round.(slot) <- t.cur_round;
    t.count <- t.count + 1
  end

let start_row t round =
  flush t;
  t.cur_round <- round;
  for i = 0 to t.n - 1 do
    Bytes.set t.cur i (if t.on.(i) then 'o' else '.')
  done

let feed t ~round (ev : Event.t) =
  if round <> t.cur_round then start_row t round;
  let set i c = if i >= 0 && i < t.n then Bytes.set t.cur i c in
  match ev with
  | Switched_on { station } ->
    if station >= 0 && station < t.n then t.on.(station) <- true;
    set station 'o'
  | Switched_off { station } ->
    if station >= 0 && station < t.n then t.on.(station) <- false;
    (* keep a crash mark visible through the forced-off edge that follows *)
    if not (station >= 0 && station < t.n && Bytes.get t.cur station = '#')
    then set station '.'
  | Transmit { station; _ } -> set station 'T'
  | Collision { stations } -> List.iter (fun i -> set i 'X') stations
  | Delivered { dst; hops; _ } -> if hops > 0 then set dst 'D'
  | Relayed { relay; _ } -> set relay 'R'
  | Station_crashed { station; _ } ->
    if station >= 0 && station < t.n then t.on.(station) <- false;
    set station '#'
  | Station_restarted { station } -> set station 'r'
  | Injected _ | Silence | Heard _ | Stranded _ | Cap_exceeded _
  | Adoption_conflict _ | Spurious_adoption _ | Round_end _ | Round_jammed _
  | Telemetry _ ->
    ()

let sink t = Sink.make (fun ~round ev -> feed t ~round ev)

(* Finished rows oldest-first, plus the row under assembly. *)
let snapshot t =
  let finished = min t.count t.capacity in
  let start = t.count - finished in
  let stored =
    List.init finished (fun i ->
        let slot = (start + i) mod t.capacity in
        (t.row_round.(slot), Bytes.to_string t.rows.(slot)))
  in
  if t.cur_round >= 0 then stored @ [ (t.cur_round, Bytes.to_string t.cur) ]
  else stored

let render ?(width = 72) t =
  let rows = snapshot t in
  (* The pending row duplicates the last ring slot if it was already
     flushed by a later round; snapshot never double-books because flush
     happens before cur_round advances, so rows are strictly increasing. *)
  match rows with
  | [] -> ""
  | _ ->
    let width = max width 1 in
    let buf = Buffer.create 1024 in
    Buffer.add_string buf legend;
    Buffer.add_char buf '\n';
    let rec chunks = function
      | [] -> ()
      | rows ->
        let block = List.filteri (fun i _ -> i < width) rows in
        let rest = List.filteri (fun i _ -> i >= width) rows in
        let first = fst (List.hd block) in
        let last = fst (List.nth block (List.length block - 1)) in
        Buffer.add_string buf (Printf.sprintf "\nrounds %d..%d\n" first last);
        for i = 0 to t.n - 1 do
          Buffer.add_string buf (Printf.sprintf "  s%-3d |" i);
          List.iter (fun (_, row) -> Buffer.add_char buf row.[i]) block;
          Buffer.add_string buf "|\n"
        done;
        chunks rest
    in
    chunks rows;
    Buffer.contents buf
