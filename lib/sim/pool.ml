let default_jobs () = max 1 (Domain.recommended_domain_count ())

(* The job queue is an atomic cursor over the input array: workers claim
   indices with [fetch_and_add], so each index is handed out exactly once
   and no locking is needed. Results land in a per-index slot; joining the
   workers establishes the happens-before edge that lets the caller read
   the slots without synchronisation. *)
let map ~jobs xs f =
  if jobs < 1 then invalid_arg "Pool.map: jobs must be >= 1";
  match xs with
  | [] -> []
  | _ when jobs = 1 -> List.map f xs
  | _ ->
    let items = Array.of_list xs in
    let m = Array.length items in
    let results = Array.make m None in
    let next = Atomic.make 0 in
    let failure = Atomic.make None in
    let worker () =
      let running = ref true in
      while !running do
        let i = Atomic.fetch_and_add next 1 in
        if i >= m || Atomic.get failure <> None then running := false
        else
          match f items.(i) with
          | r -> results.(i) <- Some r
          | exception e ->
            let bt = Printexc.get_raw_backtrace () in
            (* Only the first failure wins; later ones are dropped, like
               the results of jobs that complete after it. *)
            ignore (Atomic.compare_and_set failure None (Some (e, bt)));
            running := false
      done
    in
    let domains = List.init (min jobs m) (fun _ -> Domain.spawn worker) in
    List.iter Domain.join domains;
    (match Atomic.get failure with
     | Some (e, bt) -> Printexc.raise_with_backtrace e bt
     | None -> ());
    Array.to_list
      (Array.map (function Some r -> r | None -> assert false) results)
