open Mac_channel

type station = {
  mutable on_rounds : int;
  mutable transmits : int;
  mutable collisions : int;
  mutable injected : int;
  mutable received : int;
  mutable relayed_in : int;
  mutable queue : int;
  mutable queue_peak : int;
  mutable crashes : int;
  mutable lost : int;
}

type t = {
  stations : station array;
  on : bool array;
}

let create ~n =
  { stations =
      Array.init n (fun _ ->
          { on_rounds = 0; transmits = 0; collisions = 0; injected = 0;
            received = 0; relayed_in = 0; queue = 0; queue_peak = 0;
            crashes = 0; lost = 0 });
    on = Array.make n false }

let n t = Array.length t.stations

let station t i = t.stations.(i)

let enqueue s =
  s.queue <- s.queue + 1;
  if s.queue > s.queue_peak then s.queue_peak <- s.queue

let observe t (ev : Event.t) =
  match ev with
  | Injected { src; dst; _ } ->
    t.stations.(src).injected <- t.stations.(src).injected + 1;
    if src <> dst then enqueue t.stations.(src)
  | Switched_on { station } -> t.on.(station) <- true
  | Switched_off { station } -> t.on.(station) <- false
  | Transmit { station; _ } ->
    t.stations.(station).transmits <- t.stations.(station).transmits + 1
  | Collision { stations } ->
    List.iter
      (fun i -> t.stations.(i).collisions <- t.stations.(i).collisions + 1)
      stations
  | Delivered { from_; dst; hops; _ } ->
    t.stations.(dst).received <- t.stations.(dst).received + 1;
    if hops > 0 then t.stations.(from_).queue <- t.stations.(from_).queue - 1
  | Relayed { from_; relay; _ } ->
    t.stations.(from_).queue <- t.stations.(from_).queue - 1;
    t.stations.(relay).relayed_in <- t.stations.(relay).relayed_in + 1;
    enqueue t.stations.(relay)
  | Round_end _ ->
    Array.iteri
      (fun i on -> if on then t.stations.(i).on_rounds <- t.stations.(i).on_rounds + 1)
      t.on
  | Station_crashed { station; lost } ->
    let s = t.stations.(station) in
    s.crashes <- s.crashes + 1;
    s.lost <- s.lost + lost;
    s.queue <- s.queue - lost
  | Silence | Heard _ | Stranded _ | Cap_exceeded _ | Adoption_conflict _
  | Spurious_adoption _ | Station_restarted _ | Round_jammed _ | Telemetry _ ->
    ()

let sink t = Sink.make (fun ~round:_ ev -> observe t ev)

let report t =
  let r =
    Report.create
      ~header:
        [ "station"; "on-rounds"; "transmits"; "collisions"; "injected";
          "received"; "relayed-in"; "queue-peak"; "queue-final"; "crashes";
          "lost" ]
  in
  Array.iteri
    (fun i s ->
      Report.add_row r
        [ string_of_int i; string_of_int s.on_rounds;
          string_of_int s.transmits; string_of_int s.collisions;
          string_of_int s.injected; string_of_int s.received;
          string_of_int s.relayed_in; string_of_int s.queue_peak;
          string_of_int s.queue; string_of_int s.crashes;
          string_of_int s.lost ])
    t.stations;
  r
