(** Empirical stability classification.

    An execution is judged from its sampled total-queue-size series. A
    stable algorithm's backlog plateaus (bounded queues); an unstable one
    grows without bound — the impossibility constructions all force linear
    growth. The classifier fits a least-squares slope over the second half
    of the series and compares the mean backlog of the final quarter with the
    second quarter. The two signals must agree for an [Unstable] verdict;
    short series are [Inconclusive]. *)

type verdict =
  | Stable
  | Unstable
  | Inconclusive

type report = {
  verdict : verdict;
  slope : float;        (** packets per round, least squares, second half *)
  early_mean : float;   (** mean backlog over the second quarter *)
  late_mean : float;    (** mean backlog over the final quarter *)
}

val classify : (int * int) array -> report
(** Input: (round, total queued) samples in round order. *)

val verdict_to_string : verdict -> string

val pp_report : Format.formatter -> report -> unit
