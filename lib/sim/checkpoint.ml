(* Self-describing checkpoint files.

   Layout (see DESIGN.md "Checkpoint files"):

     line 1: "MACCKPT <format-version>"
     line 2: one JSON object of human-readable metadata
     rest:   Marshal blob of the Engine.snapshot

   Format version 2 adds two fields to the metadata line — the blob's
   byte length and its CRC-32 — so a truncated or bit-flipped file is
   rejected with a precise [Error] instead of being fed to [Marshal]
   (which would crash, or worse, decode junk). Version-1 files (no
   checksum) are still readable.

   The magic line guards against feeding an arbitrary file to Marshal;
   the JSON line lets humans and scripts inspect a checkpoint
   (`head -2 file`) without decoding the blob. The snapshot's own
   identity fields are validated again by [Engine.run ~resume], so a
   checkpoint from a different configuration fails with a precise error
   instead of silently diverging.

   [write_rotated]/[read_latest] add keep-last-good rotation: the
   previous checkpoint is kept as "<path>.prev", and a corrupt or torn
   "<path>" salvages it on resume. *)

let magic = "MACCKPT"
let format_version = 2

(* The metadata line carries its own CRC as the last field, computed
   over every byte of the line except the CRC digits themselves (which
   are checked by value). Together with the blob CRC that makes every
   byte after the magic line checksummed — a single flipped bit anywhere
   is rejected instead of surviving in a field nothing validates. *)
let metadata_json ~blob snap =
  let core =
    Printf.sprintf
      "{\"algorithm\": \"%s\", \"n\": %d, \"k\": %d, \"round\": %d, \
       \"drained\": %d, \"rounds\": %d, \"snapshot_version\": %d, \
       \"blob_bytes\": %d, \"blob_crc32\": %s, \"meta_crc32\": "
      (Export.json_escape (Engine.snapshot_algorithm snap))
      (Engine.snapshot_n snap) (Engine.snapshot_k snap)
      (Engine.snapshot_round snap)
      (Engine.snapshot_drained snap)
      (Engine.snapshot_rounds snap)
      Engine.snapshot_version (String.length blob)
      (Crc32.to_string (Crc32.string blob))
  in
  let crc = Crc32.update (Crc32.string core) "}" ~pos:0 ~len:1 in
  core ^ Crc32.to_string crc ^ "}"

let describe snap =
  Printf.sprintf "%s n=%d k=%d at round %d/%d%s"
    (Engine.snapshot_algorithm snap)
    (Engine.snapshot_n snap) (Engine.snapshot_k snap)
    (Engine.snapshot_round snap)
    (Engine.snapshot_rounds snap)
    (if Engine.snapshot_drained snap > 0 then
       Printf.sprintf " (draining, %d done)" (Engine.snapshot_drained snap)
     else "")

(* Atomic and durable: write to a dot-tmp sibling, fsync, then rename
   over the target (Durable.write_atomic). A crash mid-write leaves the
   previous checkpoint intact — the whole point of checkpointing is
   surviving exactly such crashes. *)
let write ~path snap =
  let blob = Marshal.to_string (snap : Engine.snapshot) [] in
  Durable.write_atomic ~path (fun oc ->
      Printf.fprintf oc "%s %d\n%s\n" magic format_version
        (metadata_json ~blob snap);
      output_string oc blob)

(* Pull "field": N out of the one-line metadata JSON, with the digit
   span, so the metadata CRC can mask its own digits. The writer above
   is the only producer, so a targeted scan beats a JSON parser. *)
let metadata_field_span line name =
  let key = "\"" ^ name ^ "\": " in
  match String.index_opt line '{' with
  | None -> None
  | Some _ ->
    let klen = String.length key in
    let len = String.length line in
    let rec find i =
      if i + klen > len then None
      else if String.sub line i klen = key then begin
        let j = ref (i + klen) in
        let start = !j in
        while
          !j < len && (match line.[!j] with '0' .. '9' | '-' -> true | _ -> false)
        do
          incr j
        done;
        if !j > start then
          Option.map
            (fun v -> (v, start, !j))
            (Int64.of_string_opt (String.sub line start (!j - start)))
        else None
      end
      else find (i + 1)
    in
    find 0

let metadata_int_field line name =
  Option.map (fun (v, _, _) -> v) (metadata_field_span line name)

let read_blob_exact ic ~bytes =
  match really_input_string ic bytes with
  | exception End_of_file -> None
  | blob ->
    (* Exact length: trailing garbage is as suspect as truncation. *)
    (match input_char ic with
    | exception End_of_file -> Some blob
    | _ -> None)

let decode_snapshot ~path blob =
  match (Marshal.from_string blob 0 : Engine.snapshot) with
  | exception (Failure _ | Invalid_argument _ | End_of_file) ->
    Error (path ^ ": truncated or corrupt checkpoint blob")
  | snap -> Ok snap

let check_metadata_crc ~path metadata =
  match metadata_field_span metadata "meta_crc32" with
  | None -> Error (path ^ ": checkpoint metadata missing meta_crc32")
  | Some (stored, s, e) ->
    let len = String.length metadata in
    let actual =
      Crc32.to_unsigned
        (Crc32.update
           (Crc32.update 0l metadata ~pos:0 ~len:s)
           metadata ~pos:e ~len:(len - e))
    in
    let stored = Int64.logand stored 0xFFFFFFFFL in
    if actual <> stored then
      Error
        (Printf.sprintf
           "%s: checkpoint metadata CRC mismatch (stored %Ld, computed %Ld)"
           path stored actual)
    else Ok ()

let read_v2 ~path ic metadata =
  match check_metadata_crc ~path metadata with
  | Error msg -> Error msg
  | Ok () -> (
    match
      ( metadata_int_field metadata "blob_bytes",
        metadata_int_field metadata "blob_crc32" )
    with
    | None, _ | _, None ->
      Error (path ^ ": checkpoint metadata missing blob_bytes/blob_crc32")
    | Some bytes, Some crc ->
    let bytes = Int64.to_int bytes in
      if bytes < 0 then
        Error (path ^ ": checkpoint metadata corrupt (negative blob size)")
      else (
        match read_blob_exact ic ~bytes with
        | None ->
          Error
            (Printf.sprintf
               "%s: checkpoint blob truncated or padded (expected %d bytes)"
               path bytes)
        | Some blob ->
          let actual = Crc32.to_unsigned (Crc32.string blob) in
          if actual <> Int64.logand crc 0xFFFFFFFFL then
            Error
              (Printf.sprintf
                 "%s: checkpoint blob CRC mismatch (stored %Ld, computed %Ld)"
                 path (Int64.logand crc 0xFFFFFFFFL) actual)
          else decode_snapshot ~path blob))

(* v1 files carry no checksum; all we can do is guard the decoder. *)
let read_v1 ~path ic =
  let remaining = in_channel_length ic - pos_in ic in
  if remaining < 0 then Error (path ^ ": truncated or corrupt checkpoint blob")
  else
    match really_input_string ic remaining with
    | exception End_of_file ->
      Error (path ^ ": truncated or corrupt checkpoint blob")
    | blob -> decode_snapshot ~path blob

let read ~path =
  match open_in_bin path with
  | exception Sys_error msg -> Error msg
  | ic ->
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        match input_line ic with
        | exception End_of_file -> Error (path ^ ": not a checkpoint file (empty)")
        | header ->
          (match String.split_on_char ' ' header with
           | [ m; v ] when m = magic ->
             (match int_of_string_opt v with
              | Some 2 ->
                (match input_line ic with
                 | exception End_of_file ->
                   Error (path ^ ": truncated checkpoint (no metadata)")
                 | metadata -> read_v2 ~path ic metadata)
              | Some 1 ->
                (match input_line ic with
                 | exception End_of_file ->
                   Error (path ^ ": truncated checkpoint (no metadata)")
                 | _metadata -> read_v1 ~path ic)
              | Some v ->
                Error
                  (Printf.sprintf
                     "%s: checkpoint format version %d (this build reads <= %d)"
                     path v format_version)
              | None -> Error (path ^ ": malformed checkpoint header"))
           | _ -> Error (path ^ ": not a checkpoint file (bad magic)")))

(* ---- keep-last-good rotation ------------------------------------------ *)

let prev_path path = path ^ ".prev"

(* Before the new checkpoint lands on [path], the current one is rotated
   to [path ^ ".prev"]. Both renames are atomic, so at every instant at
   least one on-disk checkpoint is intact — a torn or corrupted newest
   file salvages the previous one via [read_latest]. *)
let write_rotated ~path snap =
  if Sys.file_exists path then Sys.rename path (prev_path path);
  write ~path snap

(* Read [path], falling back to the rotated previous checkpoint when the
   newest is missing/torn/corrupt. Reports what was salvaged so callers
   can tell the user. *)
let read_latest ~path =
  match read ~path with
  | Ok snap -> Ok (snap, `Current)
  | Error primary ->
    let prev = prev_path path in
    if Sys.file_exists prev then (
      match read ~path:prev with
      | Ok snap -> Ok (snap, `Salvaged primary)
      | Error fallback ->
        Error (primary ^ "; salvage failed too: " ^ fallback))
    else Error primary
