(* Self-describing checkpoint files.

   Layout (see DESIGN.md "Checkpoint files"):

     line 1: "MACCKPT <format-version>"
     line 2: one JSON object of human-readable metadata
     rest:   Marshal blob of the Engine.snapshot

   The magic line guards against feeding an arbitrary file to Marshal
   (which would crash or worse); the JSON line lets humans and scripts
   inspect a checkpoint (`head -2 file`) without decoding the blob. The
   snapshot's own identity fields are validated again by [Engine.run
   ~resume], so a checkpoint from a different configuration fails with a
   precise error instead of silently diverging. *)

let magic = "MACCKPT"
let format_version = 1

let metadata_json snap =
  Printf.sprintf
    "{\"algorithm\": \"%s\", \"n\": %d, \"k\": %d, \"round\": %d, \
     \"drained\": %d, \"rounds\": %d, \"snapshot_version\": %d}"
    (Export.json_escape (Engine.snapshot_algorithm snap))
    (Engine.snapshot_n snap) (Engine.snapshot_k snap)
    (Engine.snapshot_round snap)
    (Engine.snapshot_drained snap)
    (Engine.snapshot_rounds snap)
    Engine.snapshot_version

let describe snap =
  Printf.sprintf "%s n=%d k=%d at round %d/%d%s"
    (Engine.snapshot_algorithm snap)
    (Engine.snapshot_n snap) (Engine.snapshot_k snap)
    (Engine.snapshot_round snap)
    (Engine.snapshot_rounds snap)
    (if Engine.snapshot_drained snap > 0 then
       Printf.sprintf " (draining, %d done)" (Engine.snapshot_drained snap)
     else "")

(* Atomic: write to a dot-tmp sibling, then rename over the target. A crash
   mid-write leaves the previous checkpoint intact — the whole point of
   checkpointing is surviving exactly such crashes. *)
let write ~path snap =
  let tmp =
    Filename.concat (Filename.dirname path) ("." ^ Filename.basename path ^ ".tmp")
  in
  let oc = open_out_bin tmp in
  (try
     Printf.fprintf oc "%s %d\n%s\n" magic format_version (metadata_json snap);
     Marshal.to_channel oc (snap : Engine.snapshot) [];
     close_out oc
   with e ->
     close_out_noerr oc;
     (try Sys.remove tmp with Sys_error _ -> ());
     raise e);
  Sys.rename tmp path

let read ~path =
  match open_in_bin path with
  | exception Sys_error msg -> Error msg
  | ic ->
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        match input_line ic with
        | exception End_of_file -> Error (path ^ ": not a checkpoint file (empty)")
        | header ->
          (match String.split_on_char ' ' header with
           | [ m; v ] when m = magic ->
             (match int_of_string_opt v with
              | Some v when v = format_version ->
                (match input_line ic with
                 | exception End_of_file ->
                   Error (path ^ ": truncated checkpoint (no metadata)")
                 | _metadata ->
                   (match (Marshal.from_channel ic : Engine.snapshot) with
                    | exception (End_of_file | Failure _) ->
                      Error (path ^ ": truncated or corrupt checkpoint blob")
                    | snap -> Ok snap))
              | Some v ->
                Error
                  (Printf.sprintf
                     "%s: checkpoint format version %d (this build reads %d)"
                     path v format_version)
              | None -> Error (path ^ ": malformed checkpoint header"))
           | _ -> Error (path ^ ": not a checkpoint file (bad magic)")))
