(* Fault-tolerant job supervision on top of the Pool's claim-by-cursor
   idea: instead of the first exception aborting the whole batch, every
   job gets its own outcome — success, failure after N attempts, timeout
   (no heartbeat progress within the deadline), or quarantine. Failed
   attempts are retried with deterministic exponential backoff; a worker
   domain that dies mid-job (the chaos harness injects [Kill_worker])
   requeues its job without charging an attempt and respawns itself; a
   watchdog domain cancels jobs whose heartbeat stalls.

   Domains cannot be killed from outside in OCaml, so cancellation is
   cooperative: the job function receives a [heartbeat] thunk, cheap
   enough to call once per simulated round ([Atomic.incr] plus a flag
   check), which both proves liveness to the watchdog and raises
   [Cancelled] once the watchdog has given up on the attempt.

   With [default_policy] (no retries, no timeout, [keep_going = false])
   the observable semantics match [Pool.map]: first exception wins and
   is re-raised with its backtrace, results are order-preserving, jobs
   run exactly once, and [jobs = 1] runs inline on the calling domain. *)

type error =
  | Failed of { attempts : int; error : exn }
  | Timed_out of { attempts : int; timeout : float }
  | Quarantined of { failures : int }
  | Skipped  (** never started: batch drained or aborted first *)

type 'a outcome = ('a, error) result

type policy = {
  retries : int;  (** extra attempts after the first failure/timeout *)
  job_timeout : float;  (** seconds without heartbeat progress; 0 = off *)
  backoff : float;  (** delay before retry 1; doubles per failed attempt *)
  backoff_cap : float;  (** upper bound on any single backoff delay *)
  quarantine_after : int;  (** failures before quarantine; 0 = off *)
  keep_going : bool;  (** false = first error aborts, like Pool.map *)
}

let default_policy =
  { retries = 0; job_timeout = 0.0; backoff = 0.05; backoff_cap = 2.0;
    quarantine_after = 0; keep_going = false }

exception Cancelled
exception Kill_worker

(* Raised by legacy (non-outcome) batch entry points when a requested
   drain skipped some of their jobs; the CLI maps it to exit code 4. *)
exception Drained

exception
  Job_gave_up of { label : string; attempts : int; reason : string }

type event =
  | Attempt_failed of
      { label : string; attempt : int; error : exn; retry_in : float }
  | Attempt_timed_out of
      { label : string; attempt : int; timeout : float; retry_in : float }
  | Job_failed of { label : string; attempts : int; error : exn }
  | Job_timed_out of { label : string; attempts : int; timeout : float }
  | Job_quarantined of { label : string; failures : int }
  | Worker_killed of { worker : int; label : string }
  | Jobs_skipped of { count : int }

let pp_event ppf = function
  | Attempt_failed { label; attempt; error; retry_in } ->
    Format.fprintf ppf "%s: attempt %d failed (%s), retry in %.3fs" label
      attempt (Printexc.to_string error) retry_in
  | Attempt_timed_out { label; attempt; timeout; retry_in } ->
    Format.fprintf ppf
      "%s: attempt %d timed out (no progress for %.3fs), retry in %.3fs"
      label attempt timeout retry_in
  | Job_failed { label; attempts; error } ->
    Format.fprintf ppf "%s: FAILED after %d attempt%s (%s)" label attempts
      (if attempts = 1 then "" else "s")
      (Printexc.to_string error)
  | Job_timed_out { label; attempts; timeout } ->
    Format.fprintf ppf "%s: TIMED OUT after %d attempt%s (%.3fs deadline)"
      label attempts
      (if attempts = 1 then "" else "s")
      timeout
  | Job_quarantined { label; failures } ->
    Format.fprintf ppf "%s: QUARANTINED after %d failure%s" label failures
      (if failures = 1 then "" else "s")
  | Worker_killed { worker; label } ->
    Format.fprintf ppf "worker %d died running %s; respawned, job requeued"
      worker label
  | Jobs_skipped { count } ->
    Format.fprintf ppf "drain requested: %d unstarted job%s skipped" count
      (if count = 1 then "" else "s")

let pp_error ppf = function
  | Failed { attempts; error } ->
    Format.fprintf ppf "failed after %d attempt%s: %s" attempts
      (if attempts = 1 then "" else "s")
      (Printexc.to_string error)
  | Timed_out { attempts; timeout } ->
    Format.fprintf ppf "timed out after %d attempt%s (%.3fs deadline)"
      attempts
      (if attempts = 1 then "" else "s")
      timeout
  | Quarantined { failures } ->
    Format.fprintf ppf "quarantined after %d failure%s" failures
      (if failures = 1 then "" else "s")
  | Skipped -> Format.fprintf ppf "skipped (drained before starting)"

let error_to_string e = Format.asprintf "%a" pp_error e

(* ---- cooperative drain (SIGTERM/SIGINT) -------------------------------

   A process-wide flag: signal handlers set it, every running batch
   observes it at the next claim point — in-flight jobs finish, nothing
   new starts, unstarted jobs resolve as [Error Skipped]. *)

let drain_flag = Atomic.make false
let request_drain () = Atomic.set drain_flag true
let drain_requested () = Atomic.get drain_flag
let reset_drain () = Atomic.set drain_flag false

(* ---- the scheduler ---------------------------------------------------- *)

let backoff_delay policy ~attempt =
  (* Deterministic: 2^(attempt-1) * base, capped. *)
  let d = policy.backoff *. (2.0 ** float_of_int (attempt - 1)) in
  Float.min d policy.backoff_cap

type claim = Job of int * int | Wait of float | Done

let map ?(policy = default_policy) ?label ?quarantined ?on_event ~jobs xs f =
  if jobs < 1 then invalid_arg "Supervisor.map: jobs must be >= 1";
  if policy.retries < 0 then invalid_arg "Supervisor.map: retries must be >= 0";
  if policy.job_timeout < 0.0 then
    invalid_arg "Supervisor.map: job_timeout must be >= 0";
  if policy.backoff < 0.0 || policy.backoff_cap < 0.0 then
    invalid_arg "Supervisor.map: backoff must be >= 0";
  match xs with
  | [] -> []
  | _ ->
    let items = Array.of_list xs in
    let m = Array.length items in
    let label = match label with Some l -> l | None -> string_of_int in
    let emit =
      match on_event with Some h -> h | None -> fun (_ : event) -> ()
    in
    let nworkers = min jobs m in
    let inline = nworkers = 1 in
    (* Scheduling state, all under [mu]. Contention is negligible: jobs
       are whole scenario runs, claims are rare. *)
    let mu = Mutex.create () in
    let results : 'b outcome option array = Array.make m None in
    let next_idx = ref 0 in
    let unresolved = ref m in
    let failures = Array.make m 0 in
    let timeouts = Array.make m 0 in
    (* (not_before, index) — small, scanned linearly. *)
    let retry_q : (float * int) list ref = ref [] in
    let drained = ref false in
    let abort = ref false in
    let first_error : (exn * Printexc.raw_backtrace) option ref = ref None in
    let locked g =
      Mutex.lock mu;
      Fun.protect ~finally:(fun () -> Mutex.unlock mu) g
    in
    (* Per-worker watchdog slots: job index (-1 = idle), heartbeat
       counter, cancel flag. All atomics — the watchdog domain reads
       them without the mutex. *)
    let slots =
      Array.init nworkers (fun _ ->
          (Atomic.make (-1), Atomic.make 0, Atomic.make false))
    in
    (* Worker-death budget: beyond it [Kill_worker] degrades to an
       ordinary failure so a job that always kills its worker cannot
       respawn forever. *)
    let kills = Atomic.make 0 in
    let kill_cap = max 16 (4 * m) in
    let resolve_locked ?bt i outcome =
      if results.(i) = None then begin
        results.(i) <- Some outcome;
        decr unresolved;
        match outcome with
        | Error Skipped | Ok _ -> ()
        | Error err ->
          if not policy.keep_going then begin
            abort := true;
            if !first_error = None then begin
              let e =
                match err with
                | Failed { error; _ } -> error
                | Timed_out { attempts; timeout } ->
                  Job_gave_up
                    { label = label i; attempts;
                      reason =
                        Printf.sprintf "no heartbeat progress for %gs" timeout }
                | Quarantined { failures } ->
                  Job_gave_up
                    { label = label i; attempts = failures;
                      reason = "quarantined" }
                | Skipped -> assert false
              in
              let bt =
                match bt with
                | Some bt -> bt
                | None -> Printexc.get_callstack 0
              in
              first_error := Some (e, bt)
            end
          end
      end
    in
    let total_attempts i = failures.(i) + timeouts.(i) in
    (* A failed or timed-out attempt: requeue with backoff if attempts
       remain, otherwise resolve the job's final outcome. Returns the
       events to emit once the lock is released. *)
    let note_attempt i ~now kind =
      locked (fun () ->
          (match kind with
          | `Failure _ -> failures.(i) <- failures.(i) + 1
          | `Timeout -> timeouts.(i) <- timeouts.(i) + 1);
          let attempts = total_attempts i in
          let quarantine =
            policy.quarantine_after > 0
            && failures.(i) >= policy.quarantine_after
          in
          if quarantine then begin
            resolve_locked i (Error (Quarantined { failures = failures.(i) }));
            [ Job_quarantined { label = label i; failures = failures.(i) } ]
          end
          else if attempts <= policy.retries && not !abort && not !drained
          then begin
            let retry_in = backoff_delay policy ~attempt:attempts in
            retry_q := (now +. retry_in, i) :: !retry_q;
            match kind with
            | `Failure (e, _) ->
              [ Attempt_failed
                  { label = label i; attempt = attempts; error = e; retry_in } ]
            | `Timeout ->
              [ Attempt_timed_out
                  { label = label i; attempt = attempts;
                    timeout = policy.job_timeout; retry_in } ]
          end
          else
            match kind with
            | `Failure (e, bt) ->
              resolve_locked ~bt i (Error (Failed { attempts; error = e }));
              [ Job_failed { label = label i; attempts; error = e } ]
            | `Timeout ->
              resolve_locked i
                (Error (Timed_out { attempts; timeout = policy.job_timeout }));
              [ Job_timed_out
                  { label = label i; attempts; timeout = policy.job_timeout } ])
    in
    (* Claim the next runnable attempt. Quarantined-on-arrival jobs are
       resolved inside the loop without ever running. *)
    let claim () =
      let events = ref [] in
      let c =
        locked (fun () ->
            let rec go () =
              if !abort || !unresolved = 0 then Done
              else begin
                if drain_requested () && not !drained then begin
                  drained := true;
                  let skipped = ref 0 in
                  for i = !next_idx to m - 1 do
                    if results.(i) = None then begin
                      resolve_locked i (Error Skipped);
                      incr skipped
                    end
                  done;
                  List.iter
                    (fun (_, i) ->
                      if results.(i) = None then begin
                        resolve_locked i (Error Skipped);
                        incr skipped
                      end)
                    !retry_q;
                  retry_q := [];
                  next_idx := m;
                  if !skipped > 0 then
                    events := Jobs_skipped { count = !skipped } :: !events
                end;
                if !abort || !unresolved = 0 then Done
                else begin
                  let now = Unix.gettimeofday () in
                  let due, pending =
                    List.partition (fun (t, _) -> t <= now) !retry_q
                  in
                  match due with
                  | (_, i) :: rest ->
                    retry_q := rest @ pending;
                    Job (i, total_attempts i + 1)
                  | [] ->
                    if !next_idx < m then begin
                      let i = !next_idx in
                      incr next_idx;
                      match
                        match quarantined with
                        | None -> None
                        | Some q -> q (label i)
                      with
                      | Some failures ->
                        resolve_locked i (Error (Quarantined { failures }));
                        events :=
                          Job_quarantined { label = label i; failures }
                          :: !events;
                        go ()
                      | None -> Job (i, 1)
                    end
                    else begin
                      (* Nothing claimable now: back off briefly, then
                         look again — a retry may come due, or an
                         in-flight job on another worker may die and
                         requeue. *)
                      let soonest =
                        List.fold_left
                          (fun acc (t, _) -> Float.min acc t)
                          infinity pending
                      in
                      let d =
                        if soonest = infinity then 0.002
                        else Float.max 0.0005 (Float.min 0.002 (soonest -. now))
                      in
                      Wait d
                    end
                end
              end
            in
            go ())
      in
      List.iter emit (List.rev !events);
      c
    in
    let requeue_after_death i =
      locked (fun () ->
          if results.(i) = None then
            retry_q := (Unix.gettimeofday (), i) :: !retry_q)
    in
    (* Run one attempt of job [i] on worker [w]. [`Died] means the
       worker domain itself must be treated as dead and respawned. *)
    let run_attempt w i attempt =
      let job_a, progress, cancel = slots.(w) in
      Atomic.set progress 0;
      Atomic.set cancel false;
      Atomic.set job_a i;
      let heartbeat () =
        Atomic.incr progress;
        if Atomic.get cancel then raise Cancelled
      in
      let finish () = Atomic.set job_a (-1) in
      match f ~heartbeat ~attempt items.(i) with
      | r ->
        finish ();
        locked (fun () -> resolve_locked i (Ok r));
        `Continue
      | exception Cancelled ->
        finish ();
        List.iter emit (note_attempt i ~now:(Unix.gettimeofday ()) `Timeout);
        `Continue
      | exception Kill_worker when Atomic.fetch_and_add kills 1 < kill_cap ->
        finish ();
        requeue_after_death i;
        emit (Worker_killed { worker = w; label = label i });
        `Died
      | exception e ->
        let bt = Printexc.get_raw_backtrace () in
        finish ();
        List.iter
          emit
          (note_attempt i ~now:(Unix.gettimeofday ()) (`Failure (e, bt)));
        `Continue
    in
    let rec worker_loop w =
      match claim () with
      | Done -> `Finished
      | Wait d ->
        Unix.sleepf d;
        worker_loop w
      | Job (i, attempt) -> (
        match run_attempt w i attempt with
        | `Continue -> worker_loop w
        | `Died -> `Died)
    in
    let spawn_mu = Mutex.create () in
    let domains = ref [] in
    let rec worker w () =
      match worker_loop w with
      | `Finished -> ()
      | `Died ->
        (* The dying worker spawns its own replacement (same slot), so
           worker count — and watchdog coverage — is preserved. Inline
           mode just keeps going on the calling domain. *)
        if inline then (worker [@tailcall]) w ()
        else begin
          let d = Domain.spawn (worker w) in
          Mutex.lock spawn_mu;
          domains := d :: !domains;
          Mutex.unlock spawn_mu
        end
    in
    (* Watchdog: cancels a worker's attempt when its heartbeat counter
       stops moving for [job_timeout] seconds. Runs on its own domain so
       it works even in inline mode. *)
    let watchdog_stop = Atomic.make false in
    let watchdog () =
      let prev_job = Array.make nworkers (-1) in
      let prev_progress = Array.make nworkers (-1) in
      let since = Array.make nworkers 0.0 in
      while not (Atomic.get watchdog_stop) do
        Unix.sleepf 0.02;
        let now = Unix.gettimeofday () in
        Array.iteri
          (fun w (job_a, progress, cancel) ->
            let j = Atomic.get job_a in
            if j < 0 then prev_job.(w) <- -1
            else begin
              let p = Atomic.get progress in
              if j <> prev_job.(w) || p <> prev_progress.(w) then begin
                prev_job.(w) <- j;
                prev_progress.(w) <- p;
                since.(w) <- now
              end
              else if now -. since.(w) >= policy.job_timeout then
                Atomic.set cancel true
            end)
          slots
      done
    in
    let watchdog_domain =
      if policy.job_timeout > 0.0 then Some (Domain.spawn watchdog) else None
    in
    let join_watchdog () =
      Atomic.set watchdog_stop true;
      Option.iter Domain.join watchdog_domain
    in
    Fun.protect ~finally:join_watchdog (fun () ->
        if inline then worker 0 ()
        else begin
          Mutex.lock spawn_mu;
          domains := List.init nworkers (fun w -> Domain.spawn (worker w));
          Mutex.unlock spawn_mu;
          (* Join until quiescent: a dying worker registers its
             replacement before its own domain terminates, so the
             replacement is visible here by the time the dead domain's
             join returns. *)
          let rec drain_joins () =
            Mutex.lock spawn_mu;
            let d =
              match !domains with
              | [] -> None
              | d :: rest ->
                domains := rest;
                Some d
            in
            Mutex.unlock spawn_mu;
            match d with
            | None -> ()
            | Some d ->
              Domain.join d;
              drain_joins ()
          in
          drain_joins ()
        end);
    (match (!first_error, policy.keep_going) with
    | Some (e, bt), false -> Printexc.raise_with_backtrace e bt
    | _ -> ());
    Array.to_list
      (Array.map
         (function Some r -> r | None -> Error Skipped)
         results)
