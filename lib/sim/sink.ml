open Mac_channel

type t = {
  emit : round:int -> Event.t -> unit;
  close : unit -> unit;
}

let make ?(close = fun () -> ()) emit = { emit; close }

let null = make (fun ~round:_ _ -> ())

let close t = t.close ()

let ring ?(all = false) trace =
  make (fun ~round ev ->
      if all || Event.notable ev then
        Trace.event trace ~round (Event.to_string ev))

let jsonl oc =
  make
    ~close:(fun () -> flush oc)
    (fun ~round ev ->
      output_string oc (Event.to_json ~round ev);
      output_char oc '\n')

let jsonl_file path =
  let oc = open_out path in
  make
    ~close:(fun () -> close_out oc)
    (fun ~round ev ->
      output_string oc (Event.to_json ~round ev);
      output_char oc '\n')

let tee sinks =
  make
    ~close:(fun () -> List.iter close sinks)
    (fun ~round ev -> List.iter (fun s -> s.emit ~round ev) sinks)

let sample ~every inner =
  if every <= 1 then inner
  else
    make ~close:inner.close (fun ~round ev ->
        if round mod every = 0 then inner.emit ~round ev)

type counts = {
  injected : int;
  delivered : int;
  relays : int;
  collisions : int;
  silences : int;
  lights : int;
  strandeds : int;
  station_rounds : int;
  rounds : int;
  drain_rounds : int;
  crashes : int;
  restarts : int;
  jammed : int;
  lost : int;
}

let counting () =
  let injected = ref 0 and delivered = ref 0 and relays = ref 0 in
  let collisions = ref 0 and silences = ref 0 and lights = ref 0 in
  let strandeds = ref 0 and station_rounds = ref 0 in
  let rounds = ref 0 and drain_rounds = ref 0 in
  let crashes = ref 0 and restarts = ref 0 and jammed = ref 0 in
  let lost = ref 0 in
  let emit ~round:_ (ev : Event.t) =
    match ev with
    | Injected _ -> incr injected
    | Delivered _ -> incr delivered
    | Relayed _ -> incr relays
    | Collision _ -> incr collisions
    | Silence -> incr silences
    | Heard { light = true; _ } -> incr lights
    | Stranded _ -> incr strandeds
    | Round_end { on_count; draining } ->
      station_rounds := !station_rounds + on_count;
      if draining then incr drain_rounds else incr rounds
    | Station_crashed { lost = l; _ } ->
      incr crashes;
      lost := !lost + l
    | Station_restarted _ -> incr restarts
    | Round_jammed _ -> incr jammed
    | Heard _ | Switched_on _ | Switched_off _ | Transmit _ | Cap_exceeded _
    | Adoption_conflict _ | Spurious_adoption _ | Telemetry _ ->
      ()
  in
  ( make emit,
    fun () ->
      { injected = !injected; delivered = !delivered; relays = !relays;
        collisions = !collisions; silences = !silences; lights = !lights;
        strandeds = !strandeds; station_rounds = !station_rounds;
        rounds = !rounds; drain_rounds = !drain_rounds;
        crashes = !crashes; restarts = !restarts; jammed = !jammed;
        lost = !lost } )
