(** Live metrics: a registry of labelled counters, gauges and
    log-bucketed histograms, a Prometheus-style text exposition, and
    exact cross-registry merging for fleet aggregation.

    The engine populates one registry per run on a configurable round
    cadence (see [Engine.config.telemetry]); batch drivers collect the
    per-scenario registries into a fleet aggregate via {!Fleet}. A
    registry is plain mutable data with no locking of its own — one
    writer (the owning run) plus renders from the same domain. Cross-
    domain aggregation goes through {!Fleet}, which locks. *)

(** How a gauge combines across registries in {!merge_into}: [Sum] for
    extensive quantities (backlog, rounds/s), [Max] for high-water
    marks. *)
type merge = Sum | Max

type counter
(** A monotonically non-decreasing integer. *)

type gauge
(** A point-in-time float. *)

type t
(** A metrics registry. *)

val create : ?labels:(string * string) list -> unit -> t
(** [create ~labels ()] makes an empty registry whose exposition attaches
    [labels] (e.g. [("scenario", id)]) to every line. *)

val base_labels : t -> (string * string) list

val counter :
  t -> ?help:string -> ?labels:(string * string) list -> string -> counter
(** Register (or look up — registration is idempotent per
    [(name, labels)]) a counter. Raises [Invalid_argument] if the name is
    already registered with a different metric kind. *)

val inc : counter -> unit

val add : counter -> int -> unit

val set_counter : counter -> int -> unit
(** Set the absolute value — for counters mirrored from an existing
    monotonic source (e.g. [Metrics] totals). *)

val counter_value : counter -> int

val gauge :
  t ->
  ?help:string ->
  ?labels:(string * string) list ->
  ?merge:merge ->
  string ->
  gauge
(** Default merge policy is [Sum]. *)

val set_gauge : gauge -> float -> unit

val gauge_value : gauge -> float

val histogram :
  t -> ?help:string -> ?labels:(string * string) list -> string -> Histogram.t
(** Register a fresh histogram. *)

val register_histogram :
  t ->
  ?help:string ->
  ?labels:(string * string) list ->
  string ->
  Histogram.t ->
  Histogram.t
(** Register an existing histogram by reference — the exposition tracks
    the live distribution (the engine shares [Metrics]' delay histogram
    this way). Returns the registered histogram (the existing one when
    the name was already taken by a histogram). *)

val sample : t -> (string * float) list
(** Counters and gauges in registration order, as
    [(name or name{k="v"}, value)] pairs — the payload of the
    [Event.Telemetry] event. Histograms are not sampled (they appear in
    the exposition). *)

val find_sample : (string * float) list -> string -> float option
(** Look a metric up in a {!sample} by its rendered name. *)

val merge_into : into:t -> t -> unit
(** Exact merge: counters add, gauges combine per their {!merge} policy,
    histograms merge bucket-wise ({!Histogram.merge_into}). Metrics are
    matched by [(name, labels)] ignoring base labels; metrics missing
    from [into] are created. Raises [Invalid_argument] on a metric
    registered with different kinds in the two registries. *)

val render : t -> string
(** Prometheus-style text exposition: [# HELP]/[# TYPE] headers, one
    sample line per counter/gauge, and for each histogram a summary-type
    family with [quantile="0.5"|"0.9"|"0.99"] lines plus a [_count]
    line. Values: integers without a fractional part, [NaN]/[+Inf]/
    [-Inf] spelled the Prometheus way. *)

val write_atomic : path:string -> string -> unit
(** Write via a temp file in the same directory plus [rename], so a
    concurrent reader (scraper, [routing_sim top]) never observes a
    partial file. *)

val parse_exposition :
  string -> ((string * (string * string) list * float) list, string) result
(** Parse a text exposition back into [(name, labels, value)] triples,
    in file order. [# ...] comments and blank lines are skipped.
    [Error] carries a one-line message with the offending line number. *)

(** The metric names the engine publishes — shared by the CLI progress
    line, [routing_sim top] and the tests. *)
module Names : sig
  val round : string  (** gauge: rounds executed so far *)

  val rounds_target : string
  (** gauge: configured rounds + drain limit — an upper bound on
      {!round}, for ETA *)

  val rounds_per_second : string  (** gauge: throughput since last sample *)

  val backlog : string  (** gauge: packets queued now *)

  val backlog_peak : string  (** gauge (max-merge): peak total backlog *)

  val station_queue_peak : string  (** gauge (max-merge) *)

  val bucket_tokens : string  (** gauge: adversary bucket level *)

  val crashed_stations : string  (** gauge *)

  val energy_window : string
  (** gauge: station-rounds spent since the previous sample *)

  val energy_total : string  (** counter: station-rounds spent so far *)

  val injected_total : string

  val delivered_total : string

  val collisions_total : string

  val jams_total : string

  val lost_total : string

  val checkpoints_total : string

  val samples_total : string

  val gc_minor_words_per_round : string
  (** gauge: minor-heap allocation rate since the previous sample *)

  val gc_heap_words : string  (** gauge (max-merge) *)

  val gc_major_collections_total : string

  val delay : string
  (** histogram: delivery delays in rounds (shared with [Metrics]) *)

  val phase_ns : string
  (** histogram, labelled [phase="inject"|"faults"|"resolve"|"deliver"|
      "observe"]: wall-clock nanoseconds per phase of sampled rounds *)

  val scenarios_started : string

  val scenarios_completed : string

  val scenarios_cached : string

  val bisect_probes : string
end

(** What the engine takes: a registry, the sampling cadence, and a hook
    run after each sample (the CLI uses it for progress lines and
    exposition files). *)
type probe = {
  registry : t;
  every : int;  (** sample at every round divisible by this; >= 1 *)
  on_sample : round:int -> t -> unit;
}

val probe :
  ?every:int -> ?on_sample:(round:int -> t -> unit) -> t -> probe
(** [every] defaults to 1000 and is clamped to >= 1. *)

type registry = t
(** Alias so {!Fleet} can name the registry type alongside its own. *)

(** Aggregation across a batch of scenario runs (Table-1 sweeps,
    figures, resilience suites, bisections), safe to drive from [Pool]
    worker domains. When a directory is given, each scenario's registry
    is rendered to [<dir>/<sanitized-id>.prom] on every sample and the
    fleet aggregate to [<dir>/fleet.prom] — the files [routing_sim top]
    watches. *)
module Fleet : sig
  type nonrec probe = probe

  type t

  val create : ?dir:string -> ?every:int -> unit -> t
  (** Creates [dir] (and parents) when given. [every] is the sampling
      cadence handed to each scenario probe; default 1000. *)

  val probe : t -> id:string -> probe
  (** A probe for one scenario run: its registry carries a
      [scenario=<id>] base label, and sampling rewrites the scenario's
      exposition file. Also bumps the started-counter. *)

  val finish : t -> probe -> unit
  (** Merge a finished scenario's registry into the aggregate (exactly:
      counter sums, gauge policies, histogram bucket sums), bump the
      completed-counter, and rewrite the scenario and fleet files. *)

  val note_cached : t -> id:string -> unit
  (** A scenario was served from the on-disk result cache without
      running. *)

  val add_counter : t -> ?help:string -> ?by:int -> string -> unit
  (** Bump an ad-hoc aggregate counter (e.g. bisection probes) under the
      fleet lock and rewrite the fleet file. *)

  val aggregate : t -> registry
  (** The aggregate registry — treat as read-only outside the fleet's
      own operations. *)

  val dir : t -> string option

  val sanitize : string -> string
  (** The id-to-filename mapping used for scenario exposition files. *)
end
