(** Fixed-width ASCII tables for the benchmark harness output. *)

type t

val create : header:string list -> t

val add_row : t -> string list -> unit
(** Rows shorter than the header are right-padded with empty cells; longer
    rows raise [Invalid_argument]. *)

val to_string : t -> string

val print : t -> unit
(** [to_string] on stdout, followed by a newline. *)

val fmt_float : float -> string
(** Compact float formatting for table cells ("12.3", "0.0012", "4.1e+06");
    non-finite values (nan, ±inf) render as "-". *)

val fmt_ratio : measured:float -> bound:float -> string
(** "measured/bound" percentage cell, or "-" when the bound is not finite. *)
