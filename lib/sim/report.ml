type t = {
  header : string list;
  width : int;
  mutable rows_rev : string list list;
}

let create ~header =
  { header; width = List.length header; rows_rev = [] }

let add_row t row =
  let len = List.length row in
  if len > t.width then invalid_arg "Report.add_row: row wider than header";
  let padded = row @ List.init (t.width - len) (fun _ -> "") in
  t.rows_rev <- padded :: t.rows_rev

let to_string t =
  let rows = List.rev t.rows_rev in
  let all = t.header :: rows in
  let widths = Array.make t.width 0 in
  List.iter
    (List.iteri (fun i cell ->
         if String.length cell > widths.(i) then widths.(i) <- String.length cell))
    all;
  let buf = Buffer.create 1024 in
  let pad cell w =
    Buffer.add_string buf cell;
    Buffer.add_string buf (String.make (w - String.length cell) ' ')
  in
  let line row =
    List.iteri
      (fun i cell ->
        if i > 0 then Buffer.add_string buf "  ";
        pad cell widths.(i))
      row;
    Buffer.add_char buf '\n'
  in
  line t.header;
  line (List.init t.width (fun i -> String.make widths.(i) '-'));
  List.iter line rows;
  Buffer.contents buf

let print t = print_string (to_string t)

let fmt_float f =
  if not (Float.is_finite f) then "-"
  else if f = 0.0 then "0"
  else if Float.abs f >= 1e6 || Float.abs f < 1e-3 then Printf.sprintf "%.2e" f
  else if Float.abs f >= 100.0 then Printf.sprintf "%.0f" f
  else Printf.sprintf "%.3g" f

let fmt_ratio ~measured ~bound =
  if Float.is_nan bound || Float.is_nan measured || bound <= 0.0
     || not (Float.is_finite bound)
  then "-"
  else Printf.sprintf "%.1f%%" (100.0 *. measured /. bound)
