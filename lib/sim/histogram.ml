let sub_bits = 4
let sub = 1 lsl sub_bits (* 16 sub-buckets per octave *)

(* Largest possible index: msb <= 62 on 63-bit ints gives
   (62 - 4) * 16 + 31 = 959. *)
let max_buckets = 960

type t = {
  counts : int array;
  mutable total : int;
  mutable max_value : int; (* largest value recorded; clamps [percentile] *)
}

let create () = { counts = Array.make max_buckets 0; total = 0; max_value = 0 }

let msb v =
  let r = ref 0 and x = ref v in
  while !x > 1 do
    incr r;
    x := !x lsr 1
  done;
  !r

let bucket_of v =
  let v = max 0 v in
  if v < sub then v
  else
    let m = msb v in
    let shift = m - sub_bits in
    ((m - sub_bits) * sub) + (v lsr shift)

let bounds_of idx =
  if idx < sub then (idx, idx)
  else begin
    let o = (idx / sub) - 1 in
    let top = idx - (o * sub) in
    (top lsl o, ((top + 1) lsl o) - 1)
  end

let record t v =
  t.counts.(bucket_of v) <- t.counts.(bucket_of v) + 1;
  t.total <- t.total + 1;
  if v > t.max_value then t.max_value <- v

let count t = t.total

let percentile t q =
  if t.total = 0 then 0
  else begin
    let rank =
      max 1 (min t.total (int_of_float (ceil (q *. float_of_int t.total))))
    in
    let seen = ref 0 and idx = ref 0 in
    while !seen < rank && !idx < max_buckets do
      seen := !seen + t.counts.(!idx);
      incr idx
    done;
    (* The top bucket's upper bound can overshoot the data (nothing that
       large was ever recorded): clamp to the recorded maximum. *)
    min (snd (bounds_of (!idx - 1))) t.max_value
  end

let max_value t = t.max_value

let copy t =
  { counts = Array.copy t.counts; total = t.total; max_value = t.max_value }

let merge_into ~into src =
  for idx = 0 to max_buckets - 1 do
    into.counts.(idx) <- into.counts.(idx) + src.counts.(idx)
  done;
  into.total <- into.total + src.total;
  if src.max_value > into.max_value then into.max_value <- src.max_value

let merge a b =
  let t = copy a in
  merge_into ~into:t b;
  t

let buckets t =
  let acc = ref [] in
  for idx = max_buckets - 1 downto 0 do
    if t.counts.(idx) > 0 then begin
      let lo, hi = bounds_of idx in
      acc := (lo, hi, t.counts.(idx)) :: !acc
    end
  done;
  !acc
