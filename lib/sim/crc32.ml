(* CRC-32 (the zlib/IEEE 802.3 polynomial, reflected, 0xEDB88320) in
   pure OCaml. Checkpoint blobs carry this checksum in their metadata
   line so a torn or bit-flipped file is rejected with a precise error
   instead of being fed to [Marshal]. Table-driven, one table built at
   module init; digesting is a tight loop over bytes. *)

let table =
  let t = Array.make 256 0l in
  for n = 0 to 255 do
    let c = ref (Int32.of_int n) in
    for _ = 0 to 7 do
      if Int32.logand !c 1l <> 0l then
        c := Int32.logxor 0xEDB88320l (Int32.shift_right_logical !c 1)
      else c := Int32.shift_right_logical !c 1
    done;
    t.(n) <- !c
  done;
  t

let update crc s ~pos ~len =
  if pos < 0 || len < 0 || pos + len > String.length s then
    invalid_arg "Crc32.update";
  let crc = ref (Int32.logxor crc 0xFFFFFFFFl) in
  for i = pos to pos + len - 1 do
    let idx =
      Int32.to_int (Int32.logand (Int32.logxor !crc (Int32.of_int (Char.code s.[i]))) 0xFFl)
    in
    crc := Int32.logxor table.(idx) (Int32.shift_right_logical !crc 8)
  done;
  Int32.logxor !crc 0xFFFFFFFFl

let string s = update 0l s ~pos:0 ~len:(String.length s)

(* CRCs travel through JSON metadata as unsigned decimal integers. *)
let to_unsigned (c : int32) : int64 =
  Int64.logand (Int64.of_int32 c) 0xFFFFFFFFL

let of_unsigned (u : int64) : int32 = Int64.to_int32 u
let to_string c = Int64.to_string (to_unsigned c)
let of_string_opt s = Option.map of_unsigned (Int64.of_string_opt s)
