open Mac_adversary
module Fault_plan = Mac_faults.Fault_plan

let scaled ~scale ~quick ~full = match scale with `Quick -> quick | `Full -> full

(* One algorithm under test: its Table-1 operating point, kept safely
   inside the stability region so degradation measured under faults is
   attributable to the faults, not to the adversary. *)
type subject = {
  label : string;
  algorithm : Mac_channel.Algorithm.t;
  n : int;
  k : int;
  rate : float;
  burst : float;
  pattern : Pattern.t;
}

let subjects ~scale =
  let n = scaled ~scale ~quick:6 ~full:10 in
  let nc = 12 in
  [ { label = "orchestra";
      algorithm = (module Mac_routing.Orchestra);
      n; k = 3; rate = 0.9; burst = 8.0;
      pattern = Pattern.uniform ~n ~seed:301 };
    { label = "count-hop";
      algorithm = (module Mac_routing.Count_hop);
      n; k = 2; rate = 0.6; burst = 2.0;
      pattern = Pattern.uniform ~n ~seed:302 };
    { label = "k-cycle";
      algorithm = Mac_routing.K_cycle.algorithm ~n:nc ~k:4;
      n = nc; k = 4; rate = 0.5 *. Bounds.k_cycle_rate ~n:nc ~k:4; burst = 2.0;
      pattern = Pattern.uniform ~n:nc ~seed:303 };
    { label = "k-clique";
      algorithm = Mac_routing.K_clique.algorithm ~n:nc ~k:4;
      n = nc; k = 4; rate = Bounds.k_clique_latency_rate ~n:nc ~k:4; burst = 2.0;
      pattern = Pattern.uniform ~n:nc ~seed:304 } ]

(* The fault plans swept per subject: a fault-free baseline, crash-restart
   at two rates phi, crash-with-drop, a scripted crash-stop, a scripted
   jam window, and random jamming. Plans depend on (n, rounds), so they
   are built per subject. *)
let plans ~scale ~n ~rounds =
  let restart_after = max 50 (rounds / 100) in
  let phi_lo, phi_hi =
    scaled ~scale ~quick:(2e-4, 1e-3) ~full:(1e-4, 5e-4)
  in
  let jam_len = max 10 (rounds / 50) in
  let q = rounds / 4 in
  [ ("none", Fault_plan.empty);
    ( "crash-lo",
      Fault_plan.random ~seed:401 ~n ~rounds ~crash_rate:phi_lo ~restart_after
        () );
    ( "crash-hi",
      Fault_plan.random ~seed:402 ~n ~rounds ~crash_rate:phi_hi ~restart_after
        () );
    ( "crash-drop",
      Fault_plan.random ~seed:403 ~n ~rounds ~crash_rate:phi_lo ~restart_after
        ~queue:Fault_plan.Drop () );
    ( "crash-stop",
      Fault_plan.scripted ~name:"crash-stop"
        [ (q, Fault_plan.Crash { station = 1; queue = Fault_plan.Retain }) ] );
    ( "jam-window",
      Fault_plan.scripted ~name:"jam-window"
        (List.init jam_len (fun i -> (q + i, Fault_plan.Jam))) );
    ( "jam-random",
      Fault_plan.random ~seed:404 ~n ~rounds ~jam_rate:0.01 () ) ]

let run_cell ?observe ?telemetry ?heartbeat ~rounds subject (plan_label, plan) =
  let id = Printf.sprintf "resilience/%s/%s" subject.label plan_label in
  let faults = if Fault_plan.is_empty plan then None else Some plan in
  Scenario.run ?observe ?telemetry ?heartbeat
    (Scenario.spec ~id ~algorithm:subject.algorithm ~n:subject.n ~k:subject.k
       ~rate:subject.rate ~burst:subject.burst ~pattern:subject.pattern
       ~rounds ?faults ())

let header =
  [ "algorithm"; "plan"; "injected"; "delivered"; "del%"; "lost"; "crashes";
    "restarts"; "jammed"; "peak-q"; "growth"; "recovery"; "max-delay" ]

let row (outcome : Scenario.outcome) =
  let s = outcome.summary in
  let f = s.faults in
  let id = outcome.spec.id in
  let plan_label =
    match String.rindex_opt id '/' with
    | Some i -> String.sub id (i + 1) (String.length id - i - 1)
    | None -> id
  in
  let algo =
    match String.index_opt id '/' with
    | Some i ->
      let rest = String.sub id (i + 1) (String.length id - i - 1) in
      (match String.index_opt rest '/' with
       | Some j -> String.sub rest 0 j
       | None -> rest)
    | None -> id
  in
  let del_pct =
    if s.injected = 0 then "-"
    else
      Printf.sprintf "%.1f"
        (100.0 *. float_of_int s.delivered /. float_of_int s.injected)
  in
  let recovery =
    if f.last_fault_round < 0 then "-"
    else if f.recovery_rounds < 0 then "never"
    else string_of_int f.recovery_rounds
  in
  [ algo; plan_label; string_of_int s.injected; string_of_int s.delivered;
    del_pct; string_of_int f.lost_to_crash; string_of_int f.crashes;
    string_of_int f.restarts; string_of_int f.jammed_rounds;
    string_of_int f.post_fault_peak_queue;
    string_of_int (f.post_fault_peak_queue - f.pre_fault_queue);
    recovery;
    string_of_int (int_of_float (Scenario.worst_delay s)) ]

let suite ?observe ?telemetry ?jobs ~scale () =
  let rounds = scaled ~scale ~quick:15_000 ~full:80_000 in
  let cells =
    List.concat_map
      (fun subject ->
        List.map (fun plan -> (subject, plan)) (plans ~scale ~n:subject.n ~rounds))
      (subjects ~scale)
  in
  let outcomes =
    Scenario.run_batch ?jobs
      (List.map
         (fun (subject, plan) () ->
           run_cell ?observe ?telemetry ~rounds subject plan)
         cells)
  in
  let report = Mac_sim.Report.create ~header in
  List.iter (fun o -> Mac_sim.Report.add_row report (row o)) outcomes;
  (report, outcomes)

(* Supervised variant: each cell resolves to its own outcome, and retried
   cells rebuild subject and plan (and with them every mutable pattern
   cursor and fault schedule) from scratch, so a retry replays the exact
   simulation a first attempt would have run. *)
let suite_s ?observe ?telemetry ?jobs ?policy ?on_event ~scale () =
  let rounds = scaled ~scale ~quick:15_000 ~full:80_000 in
  let cells () =
    List.concat_map
      (fun subject ->
        List.map (fun plan -> (subject, plan)) (plans ~scale ~n:subject.n ~rounds))
      (subjects ~scale)
  in
  let labels =
    List.map
      (fun (subject, (plan_label, _)) ->
        Printf.sprintf "resilience/%s/%s" subject.label plan_label)
      (cells ())
  in
  let labelled =
    List.mapi
      (fun i label ->
        ( label,
          fun ~heartbeat ->
            let subject, plan = List.nth (cells ()) i in
            run_cell ?observe ?telemetry ~heartbeat ~rounds subject plan ))
      labels
  in
  let results = Scenario.run_batch_s ?jobs ?policy ?on_event labelled in
  let report = Mac_sim.Report.create ~header in
  List.iter
    (function _, Ok o -> Mac_sim.Report.add_row report (row o) | _, Error _ -> ())
    results;
  (report, results)
