open Mac_channel

let cube n = float_of_int (n * n * n)

let orchestra_queue_bound ~n ~beta = (2.0 *. cube n) +. beta

let orchestra_big_threshold ~n = (n * n) - 1

let count_hop_latency ~n ~rho ~beta =
  2.0 *. (float_of_int (n * n) +. beta) /. (1.0 -. rho)

let count_hop_latency_impl ~n ~rho ~beta =
  2.0 *. (float_of_int (n * ((2 * n) - 3)) +. beta) /. (1.0 -. rho)

let adjust_window_latency ~n ~rho ~beta =
  let lgn = float_of_int (Mac_routing.Combi.lg n) in
  ((18.0 *. cube n *. lgn *. lgn) +. (2.0 *. beta)) /. (1.0 -. rho)

let adjust_window_latency_impl ~n ~rho ~beta =
  (* A window of size l absorbs the adversary when its Main stage covers the
     injections: l_m >= rho * l + beta. *)
  let rec grow l =
    let _, l_m, _ = Mac_routing.Adjust_window.window_layout ~n ~l in
    if float_of_int l_m >= (rho *. float_of_int l) +. beta then l
    else grow (2 * l)
  in
  2.0 *. float_of_int (grow (Mac_routing.Adjust_window.initial_window ~n))

let k_cycle_rate_q ~n ~k =
  let k = Mac_routing.Cycle_groups.effective_k ~n ~k in
  Qrat.make (k - 1) (n - 1)

let k_cycle_rate ~n ~k = Qrat.to_float (k_cycle_rate_q ~n ~k)

let k_cycle_rate_impl_q ~n ~k =
  let cg = Mac_routing.Cycle_groups.make ~n ~k () in
  Qrat.make 1 (Mac_routing.Cycle_groups.group_count cg)

let k_cycle_rate_impl ~n ~k = Qrat.to_float (k_cycle_rate_impl_q ~n ~k)

let k_cycle_latency ~n ~beta = (32.0 +. beta) *. float_of_int n

let oblivious_rate_upper_q ~n ~k = Qrat.make k n

let oblivious_rate_upper ~n ~k = Qrat.to_float (oblivious_rate_upper_q ~n ~k)

let k_clique_latency_rate_q ~n ~k =
  let k = Mac_routing.Clique_pairs.effective_k ~n ~k in
  Qrat.make (k * k) (2 * n * ((2 * n) - k))

let k_clique_latency_rate ~n ~k = Qrat.to_float (k_clique_latency_rate_q ~n ~k)

let k_clique_stable_rate_q ~n ~k =
  let k = Mac_routing.Clique_pairs.effective_k ~n ~k in
  Qrat.make (k * k) (n * ((2 * n) - k))

let k_clique_stable_rate ~n ~k = Qrat.to_float (k_clique_stable_rate_q ~n ~k)

let k_clique_latency ~n ~k ~beta =
  let k = Mac_routing.Clique_pairs.effective_k ~n ~k in
  8.0 *. float_of_int (n * n) /. float_of_int k
  *. (1.0 +. (beta /. float_of_int (2 * k)))

let k_subsets_rate_q ~n ~k = Qrat.make (k * (k - 1)) (n * (n - 1))

let k_subsets_rate ~n ~k = Qrat.to_float (k_subsets_rate_q ~n ~k)

let k_subsets_queue_bound ~n ~k ~beta =
  2.0 *. float_of_int (Mac_routing.Combi.binomial n k)
  *. (float_of_int (n * n) +. beta)
