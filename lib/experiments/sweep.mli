(** Empirical stability-frontier location by bisection.

    Table 1 predicts a sharp rate threshold for every algorithm; [bisect]
    pins the empirical frontier between a known-stable and a known-unstable
    rate by repeated simulation. Used by the threshold-explorer example and
    the frontier tests. *)

val stability_probe :
  algorithm:Mac_channel.Algorithm.t ->
  n:int ->
  k:int ->
  pattern:(unit -> Mac_adversary.Pattern.t) ->
  ?burst:float ->
  rounds:int ->
  unit ->
  rho:float ->
  bool
(** [stability_probe ... () ~rho] simulates [rounds] injection rounds of the
    algorithm against a fresh copy of the pattern at rate [rho] and reports
    whether the backlog stayed bounded. Deterministic. *)

val bisect :
  ?steps:int ->
  lo:float ->
  hi:float ->
  (rho:float -> bool) ->
  float * float
(** [bisect ~lo ~hi probe] narrows the frontier bracket: requires
    [probe ~rho:lo = true] and [probe ~rho:hi = false] (checked — raises
    [Invalid_argument] otherwise) and returns [(lo', hi')] with
    [hi' - lo' = (hi - lo) / 2^steps] (default 8 steps) such that the
    probe is stable at [lo'] and unstable at [hi']. *)

val bisect_many :
  ?jobs:int ->
  ?steps:int ->
  (float * float * (rho:float -> bool)) list ->
  (float * float) list
(** [bisect_many brackets] runs one {!bisect} per [(lo, hi, probe)]
    bracket and returns the located frontiers in input order. Each
    bisection is inherently sequential, but independent brackets run in
    parallel on a {!Mac_sim.Pool} of [jobs] workers (default 1). *)
