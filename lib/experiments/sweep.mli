(** Empirical stability-frontier location by bisection.

    Table 1 predicts a sharp rate threshold for every algorithm; [bisect_q]
    pins the empirical frontier between a known-stable and a known-unstable
    rate by repeated simulation. Brackets and midpoints are exact rationals
    ({!Mac_channel.Qrat}), so the located thresholds are properties of the
    rates themselves, not IEEE-754 artifacts. Used by the threshold-explorer
    example and the frontier tests. *)

val stability_probe_q :
  algorithm:Mac_channel.Algorithm.t ->
  n:int ->
  k:int ->
  pattern:(unit -> Mac_adversary.Pattern.t) ->
  ?burst:Mac_channel.Qrat.t ->
  rounds:int ->
  unit ->
  rho:Mac_channel.Qrat.t ->
  bool
(** [stability_probe_q ... () ~rho] simulates [rounds] injection rounds of
    the algorithm against a fresh copy of the pattern at exact rate [rho]
    (default burst 4) and reports whether the backlog stayed bounded.
    Deterministic. *)

val stability_probe :
  algorithm:Mac_channel.Algorithm.t ->
  n:int ->
  k:int ->
  pattern:(unit -> Mac_adversary.Pattern.t) ->
  ?burst:float ->
  rounds:int ->
  unit ->
  rho:float ->
  bool
(** Deprecated float shim over {!stability_probe_q} (arguments snapped via
    {!Mac_channel.Qrat.of_float}). *)

val bisect_q :
  ?steps:int ->
  lo:Mac_channel.Qrat.t ->
  hi:Mac_channel.Qrat.t ->
  (rho:Mac_channel.Qrat.t -> bool) ->
  Mac_channel.Qrat.t * Mac_channel.Qrat.t
(** [bisect_q ~lo ~hi probe] narrows the frontier bracket with exact
    midpoints: requires [probe ~rho:lo = true] and [probe ~rho:hi = false]
    (checked — raises [Invalid_argument] otherwise) and returns [(lo', hi')]
    with [hi' − lo' = (hi − lo) / 2^steps] (default 8 steps) such that the
    probe is stable at [lo'] and unstable at [hi']. *)

val bisect :
  ?steps:int ->
  lo:float ->
  hi:float ->
  (rho:float -> bool) ->
  float * float
(** Deprecated float shim over {!bisect_q}; probe rates round-trip through
    {!Mac_channel.Qrat.to_float}. *)

val bisect_many_q :
  ?jobs:int ->
  ?telemetry:Mac_sim.Telemetry.Fleet.t ->
  ?steps:int ->
  (Mac_channel.Qrat.t * Mac_channel.Qrat.t * (rho:Mac_channel.Qrat.t -> bool))
  list ->
  (Mac_channel.Qrat.t * Mac_channel.Qrat.t) list
(** [bisect_many_q brackets] runs one {!bisect_q} per [(lo, hi, probe)]
    bracket and returns the located frontiers in input order. Each
    bisection is inherently sequential, but independent brackets run in
    parallel on a {!Mac_sim.Pool} of [jobs] workers (default 1). Probe
    runs are throwaway simulations that never publish per-scenario
    registries; [telemetry], when given, at least counts each probe on
    the fleet's {!Mac_sim.Telemetry.Names.bisect_probes} counter so a
    dashboard can see bisection progress. *)

val bisect_many :
  ?jobs:int ->
  ?steps:int ->
  (float * float * (rho:float -> bool)) list ->
  (float * float) list
(** Deprecated float shim over {!bisect_many_q}. *)

val bisect_many_sq :
  ?jobs:int ->
  ?policy:Mac_sim.Supervisor.policy ->
  ?on_event:(Mac_sim.Supervisor.event -> unit) ->
  ?telemetry:Mac_sim.Telemetry.Fleet.t ->
  ?steps:int ->
  (string
  * Mac_channel.Qrat.t
  * Mac_channel.Qrat.t
  * (rho:Mac_channel.Qrat.t -> bool))
  list ->
  (string * (Mac_channel.Qrat.t * Mac_channel.Qrat.t) Mac_sim.Supervisor.outcome)
  list
(** Supervised {!bisect_many_q}: brackets carry a label, and each resolves
    to its own {!Mac_sim.Supervisor.outcome} under [policy] instead of the
    first failure aborting the sweep. The supervisor's watchdog heartbeat
    ticks after every probe run, so a bracket counts as live while its
    simulations keep finishing. Results are in input order. *)
