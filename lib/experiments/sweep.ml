open Mac_channel

let stability_probe_q ~algorithm ~n ~k ~pattern ?(burst = Qrat.of_int 4) ~rounds
    () ~rho =
  let adversary =
    Mac_adversary.Adversary.create_q ~rate:rho ~burst (pattern ())
  in
  let summary = Mac_sim.Engine.run ~algorithm ~n ~k ~adversary ~rounds () in
  (Mac_sim.Stability.classify summary.queue_series).verdict
  = Mac_sim.Stability.Stable

let stability_probe ~algorithm ~n ~k ~pattern ?(burst = 4.0) ~rounds () ~rho =
  stability_probe_q ~algorithm ~n ~k ~pattern ~burst:(Qrat.of_float burst)
    ~rounds () ~rho:(Qrat.of_float rho)

let half = Qrat.make 1 2

let bisect_q ?(steps = 8) ~lo ~hi probe =
  if not (probe ~rho:lo) then
    invalid_arg "Sweep.bisect: not stable at the lower rate";
  if probe ~rho:hi then
    invalid_arg "Sweep.bisect: not unstable at the upper rate";
  let lo = ref lo and hi = ref hi in
  for _ = 1 to steps do
    (* Exact midpoint: the bracket endpoints stay rationals, so the located
       frontier is a property of the rate, not of IEEE-754 rounding. *)
    let mid = Qrat.mul (Qrat.add !lo !hi) half in
    if probe ~rho:mid then lo := mid else hi := mid
  done;
  (!lo, !hi)

let bisect ?steps ~lo ~hi probe =
  let lo, hi =
    bisect_q ?steps ~lo:(Qrat.of_float lo) ~hi:(Qrat.of_float hi)
      (fun ~rho -> probe ~rho:(Qrat.to_float rho))
  in
  (Qrat.to_float lo, Qrat.to_float hi)

(* Each bisection is a sequential chain of runs, but independent brackets
   (one per algorithm under the same adversary, say) can bisect side by
   side on the pool. *)
let bisect_many_q ?(jobs = 1) ?telemetry ?steps brackets =
  let count_probe probe =
    match telemetry with
    | None -> probe
    | Some fleet ->
      fun ~rho ->
        Mac_sim.Telemetry.Fleet.add_counter fleet
          ~help:"Throwaway bisection probe runs executed"
          Mac_sim.Telemetry.Names.bisect_probes;
        probe ~rho
  in
  Mac_sim.Pool.map ~jobs brackets (fun (lo, hi, probe) ->
      bisect_q ?steps ~lo ~hi (count_probe probe))

let bisect_many ?(jobs = 1) ?steps brackets =
  Mac_sim.Pool.map ~jobs brackets (fun (lo, hi, probe) ->
      bisect ?steps ~lo ~hi probe)

(* Supervised variant: brackets carry a label, and each bracket resolves to
   a per-job outcome instead of the first failure aborting the sweep.  The
   watchdog heartbeat ticks after every probe run, so a bracket counts as
   live as long as individual simulations keep finishing. *)
let bisect_many_sq ?(jobs = 1) ?(policy = Mac_sim.Supervisor.default_policy)
    ?on_event ?telemetry ?steps brackets =
  let count_probe probe =
    match telemetry with
    | None -> probe
    | Some fleet ->
      fun ~rho ->
        Mac_sim.Telemetry.Fleet.add_counter fleet
          ~help:"Throwaway bisection probe runs executed"
          Mac_sim.Telemetry.Names.bisect_probes;
        probe ~rho
  in
  let labels = Array.of_list (List.map (fun (l, _, _, _) -> l) brackets) in
  let outcomes =
    Mac_sim.Supervisor.map ~policy ?on_event
      ~label:(fun i -> labels.(i))
      ~jobs brackets
      (fun ~heartbeat ~attempt:_ (_, lo, hi, probe) ->
        let probe = count_probe probe in
        bisect_q ?steps ~lo ~hi (fun ~rho ->
            let verdict = probe ~rho in
            heartbeat ();
            verdict))
  in
  List.map2 (fun l o -> (l, o)) (Array.to_list labels) outcomes
