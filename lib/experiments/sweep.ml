let stability_probe ~algorithm ~n ~k ~pattern ?(burst = 4.0) ~rounds () ~rho =
  let adversary =
    Mac_adversary.Adversary.create ~rate:rho ~burst (pattern ())
  in
  let summary =
    Mac_sim.Engine.run ~algorithm ~n ~k ~adversary ~rounds ()
  in
  (Mac_sim.Stability.classify summary.queue_series).verdict
  = Mac_sim.Stability.Stable

let bisect ?(steps = 8) ~lo ~hi probe =
  if not (probe ~rho:lo) then
    invalid_arg "Sweep.bisect: not stable at the lower rate";
  if probe ~rho:hi then
    invalid_arg "Sweep.bisect: not unstable at the upper rate";
  let lo = ref lo and hi = ref hi in
  for _ = 1 to steps do
    let mid = 0.5 *. (!lo +. !hi) in
    if probe ~rho:mid then lo := mid else hi := mid
  done;
  (!lo, !hi)

(* Each bisection is a sequential chain of runs, but independent brackets
   (one per algorithm under the same adversary, say) can bisect side by
   side on the pool. *)
let bisect_many ?(jobs = 1) ?steps brackets =
  Mac_sim.Pool.map ~jobs brackets (fun (lo, hi, probe) ->
      bisect ?steps ~lo ~hi probe)
