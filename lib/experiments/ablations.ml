open Mac_adversary
open Mac_channel

type t = {
  id : string;
  title : string;
  run :
    ?jobs:int ->
    scale:[ `Quick | `Full ] ->
    unit ->
    Mac_sim.Report.t * Scenario.outcome list;
}

let scaled ~scale ~quick ~full = match scale with `Quick -> quick | `Full -> full

let fmt = Mac_sim.Report.fmt_float

let point ~id ~algorithm ~n ~k ~rho ~beta ~pattern ~rounds ~drain =
  Scenario.run
    (Scenario.spec_q ~id ~algorithm ~n ~k ~rate:rho ~burst:beta ~pattern ~rounds
       ~drain ())

let outcome_cells (o : Scenario.outcome) =
  let s = o.summary and st = o.stability in
  [ Mac_sim.Stability.verdict_to_string st.Mac_sim.Stability.verdict;
    string_of_int s.Mac_sim.Metrics.max_total_queue;
    string_of_int (max s.Mac_sim.Metrics.max_delay s.Mac_sim.Metrics.max_queued_age);
    fmt s.Mac_sim.Metrics.mean_delay ]

(* ------------------------------------------------------------------ *)
(* A1: the activity-segment length of k-Cycle. *)

let delta_rows ?jobs ~scale () =
  let n = 12 and k = 4 in
  let rounds = scaled ~scale ~quick:60_000 ~full:150_000 in
  let cells =
    List.concat_map
      (fun (frac, label) ->
        let rho = Qrat.mul frac (Bounds.k_cycle_rate_q ~n ~k) in
        List.map (fun delta_scale -> (frac, label, rho, delta_scale))
          [ 0.125; 0.25; 1.0; 4.0 ])
      [ (Qrat.make 1 2, "half-rate"); (Qrat.make 9 10, "near-threshold") ]
  in
  let outcomes =
    Scenario.run_batch ?jobs
      (List.map
         (fun (_, label, rho, delta_scale) () ->
           point
             ~id:(Printf.sprintf "delta/%s/x%g" label delta_scale)
             ~algorithm:(Mac_routing.K_cycle.algorithm_scaled ~delta_scale ~n ~k)
             ~n ~k ~rho ~beta:(Qrat.of_int 2)
             ~pattern:(Pattern.flood ~n ~victim:5)
             ~rounds ~drain:(rounds / 2))
         cells)
  in
  let rows =
    List.map2
      (fun (_, label, rho, delta_scale) o ->
        [ Printf.sprintf "%g x delta" delta_scale; label;
          fmt (Qrat.to_float rho) ]
        @ outcome_cells o)
      cells outcomes
  in
  (rows, outcomes)

let delta =
  { id = "A1.delta";
    title = "k-Cycle activity segment: scaling the paper's delta (flood, n=12, k=4)";
    run =
      (fun ?jobs ~scale () ->
        let rows, outcomes = delta_rows ?jobs ~scale () in
        let report =
          Mac_sim.Report.create
            ~header:
              [ "delta"; "load"; "rho"; "verdict"; "max-q"; "worst-delay";
                "mean-delay" ]
        in
        List.iter (Mac_sim.Report.add_row report) rows;
        (report, outcomes)) }

(* ------------------------------------------------------------------ *)
(* A2: Orchestra's big threshold at injection rate 1. *)

let big_threshold_rows ?jobs ~scale () =
  let n = 8 in
  let rounds = scaled ~scale ~quick:60_000 ~full:200_000 in
  let variants =
    [ ("eager (n)", Mac_routing.Orchestra.with_big_threshold ~name:"orchestra-eager"
                      (fun ~n -> n));
      ("paper (n^2-1)", (module Mac_routing.Orchestra : Mac_channel.Algorithm.S));
      ("never big", Mac_routing.Orchestra.with_big_threshold ~name:"orchestra-neverbig"
                      (fun ~n:_ -> max_int)) ]
  in
  let cells =
    List.concat_map
      (fun (label, algorithm) ->
        List.map (fun (pname, pattern) -> (label, algorithm, pname, pattern))
          [ ("flood", Pattern.flood ~n ~victim:3);
            ("uniform", Pattern.uniform ~n ~seed:71) ])
      variants
  in
  let outcomes =
    Scenario.run_batch ?jobs
      (List.map
         (fun (label, algorithm, pname, pattern) () ->
           point ~id:(Printf.sprintf "bigthr/%s/%s" label pname) ~algorithm ~n
             ~k:3 ~rho:Qrat.one ~beta:(Qrat.of_int 4) ~pattern ~rounds ~drain:0)
         cells)
  in
  let rows =
    List.map2
      (fun (label, _, pname, _) o -> [ label; pname ] @ outcome_cells o)
      cells outcomes
  in
  (rows, outcomes)

let big_threshold =
  { id = "A2.big-threshold";
    title = "Orchestra big-conductor threshold at rate 1 (n=8)";
    run =
      (fun ?jobs ~scale () ->
        let rows, outcomes = big_threshold_rows ?jobs ~scale () in
        let report =
          Mac_sim.Report.create
            ~header:
              [ "threshold"; "pattern"; "verdict"; "max-q"; "worst-delay";
                "mean-delay" ]
        in
        List.iter (Mac_sim.Report.add_row report) rows;
        (report, outcomes)) }

(* ------------------------------------------------------------------ *)
(* A3: k-Subsets thread allocation at the optimal rate. *)

let allocation_rows ?jobs ~scale () =
  let n = scaled ~scale ~quick:6 ~full:8 in
  let k = 3 in
  let rounds = scaled ~scale ~quick:80_000 ~full:250_000 in
  let rho = Bounds.k_subsets_rate_q ~n ~k in
  let cells = [ ("balanced (paper)", `Balanced); ("first-fit", `First_fit) ] in
  let outcomes =
    Scenario.run_batch ?jobs
      (List.map
         (fun (label, allocation) () ->
           point ~id:(Printf.sprintf "alloc/%s" label)
             ~algorithm:(Mac_routing.K_subsets.algorithm ~allocation ~n ~k ())
             ~n ~k ~rho ~beta:(Qrat.of_int 4)
             ~pattern:(Pattern.pair_flood ~src:1 ~dst:2)
             ~rounds ~drain:0)
         cells)
  in
  let rows =
    List.map2
      (fun (label, _) o -> [ label; fmt (Qrat.to_float rho) ] @ outcome_cells o)
      cells outcomes
  in
  (rows, outcomes)

let allocation =
  { id = "A3.allocation";
    title =
      "k-Subsets thread allocation at the optimal rate (pair flood, k=3)";
    run =
      (fun ?jobs ~scale () ->
        let rows, outcomes = allocation_rows ?jobs ~scale () in
        let report =
          Mac_sim.Report.create
            ~header:
              [ "allocation"; "rho"; "verdict"; "max-q"; "worst-delay";
                "mean-delay" ]
        in
        List.iter (Mac_sim.Report.add_row report) rows;
        (report, outcomes)) }

let all = [ delta; big_threshold; allocation ]
