open Mac_adversary
open Mac_channel

(* Result of a supervised figure run: the rendered table (successful
   points only), the successful outcomes in declaration order, and the
   per-point failures (label, error) that a [--keep-going] run reports
   instead of aborting. *)
type supervised = {
  report : Mac_sim.Report.t;
  outcomes : Scenario.outcome list;
  failures : (string * Mac_sim.Supervisor.error) list;
}

type t = {
  id : string;
  title : string;
  run :
    ?observe:Scenario.observer ->
    ?telemetry:Mac_sim.Telemetry.Fleet.t ->
    ?jobs:int ->
    scale:[ `Quick | `Full ] ->
    unit ->
    Mac_sim.Report.t * Scenario.outcome list;
  run_s :
    ?observe:Scenario.observer ->
    ?telemetry:Mac_sim.Telemetry.Fleet.t ->
    ?jobs:int ->
    ?policy:Mac_sim.Supervisor.policy ->
    ?on_event:(Mac_sim.Supervisor.event -> unit) ->
    scale:[ `Quick | `Full ] ->
    unit ->
    supervised;
}

let scaled ~scale ~quick ~full = match scale with `Quick -> quick | `Full -> full

let fmt = Mac_sim.Report.fmt_float

(* Figure operating points are exact rationals; decimal literals go
   through [Qrat.of_float] (so [q 0.8] is exactly 4/5) and
   threshold-derived points multiply the exact [Bounds._q] thresholds. *)
let q = Qrat.of_float

let fmt_q r = fmt (Qrat.to_float r)

let run_point ?heartbeat ~observe ~telemetry ~id ~algorithm ~n ~k ~rho ~beta
    ~pattern ~rounds ~drain () =
  Scenario.run ?observe ?telemetry ?heartbeat
    (Scenario.spec_q ~id ~algorithm ~n ~k ~rate:rho ~burst:beta ~pattern ~rounds
       ~drain ())

(* Each figure declares its plot points as (id, run-thunk, row-of-outcome)
   triples; the thunks fan out over the supervisor, and rows are rendered
   from the outcomes afterwards, so the table keeps its declaration order
   whatever the parallel completion order was. *)
let run_points ?jobs points =
  let outcomes =
    Scenario.run_batch ?jobs
      (List.map (fun (_, thunk, _) () -> thunk ?heartbeat:None ()) points)
  in
  let rows = List.map2 (fun (_, _, row) o -> row o) points outcomes in
  (rows, outcomes)

(* Supervised: [build ()] must re-create the points — and with them any
   mutable pattern cursors — afresh, so each retry of point [i] replays
   bit-identically to a first run. *)
let run_points_s ?jobs ?policy ?on_event build =
  let template = build () in
  let labelled =
    List.mapi
      (fun i (id, _, _) ->
        ( id,
          fun ~heartbeat ->
            let _, thunk, _ = List.nth (build ()) i in
            thunk ?heartbeat:(Some heartbeat) () ))
      template
  in
  let results = Scenario.run_batch_s ?jobs ?policy ?on_event labelled in
  let rows =
    List.concat
      (List.map2
         (fun (_, _, row) (_, o) ->
           match o with Ok oc -> [ row oc ] | Error _ -> [])
         template results)
  in
  let outcomes =
    List.filter_map (function _, Ok o -> Some o | _ -> None) results
  in
  let failures =
    List.filter_map
      (function lbl, Error e -> Some (lbl, e) | _, Ok _ -> None)
      results
  in
  (rows, outcomes, failures)

let figure ~id ~title ~header points =
  let run ?observe ?telemetry ?jobs ~scale () =
    let rows, outcomes =
      run_points ?jobs (points ?observe ?telemetry ~scale ())
    in
    let report = Mac_sim.Report.create ~header in
    List.iter (Mac_sim.Report.add_row report) rows;
    (report, outcomes)
  in
  let run_s ?observe ?telemetry ?jobs ?policy ?on_event ~scale () =
    let rows, outcomes, failures =
      run_points_s ?jobs ?policy ?on_event (fun () ->
          points ?observe ?telemetry ~scale ())
    in
    let report = Mac_sim.Report.create ~header in
    List.iter (Mac_sim.Report.add_row report) rows;
    { report; outcomes; failures }
  in
  { id; title; run; run_s }

(* ------------------------------------------------------------------ *)
(* F1: stability frontier. *)

let frontier_points ?observe ?telemetry ~scale () =
  let rounds = scaled ~scale ~quick:60_000 ~full:150_000 in
  let aw_rounds = scaled ~scale ~quick:80_000 ~full:250_000 in
  let points = ref [] in
  let point ~row_algo ~algorithm ~n ~k ~threshold ~rho ~pattern ~rounds =
    let id =
      Printf.sprintf "frontier/%s@%.4f" row_algo (Qrat.to_float rho)
    in
    let thunk ?heartbeat () =
      run_point ?heartbeat ~observe ~telemetry ~id ~algorithm ~n ~k ~rho
        ~beta:(Qrat.of_int 2) ~pattern ~rounds ~drain:0 ()
    in
    let row (o : Scenario.outcome) =
      let s = o.Scenario.summary and st = o.Scenario.stability in
      [ row_algo; string_of_int n; string_of_int k;
        fmt_q threshold; fmt_q rho;
        fmt (Qrat.to_float rho /. Qrat.to_float threshold);
        Mac_sim.Stability.verdict_to_string st.Mac_sim.Stability.verdict;
        fmt st.Mac_sim.Stability.slope;
        string_of_int s.Mac_sim.Metrics.max_total_queue ]
    in
    points := (id, thunk, row) :: !points
  in
  let add (() : unit) = () in
  (* Orchestra: stable all the way to rate 1. *)
  let n = 8 in
  add (point ~row_algo:"orchestra" ~algorithm:(module Mac_routing.Orchestra)
         ~n ~k:3 ~threshold:Qrat.one ~rho:(q 0.9)
         ~pattern:(Pattern.flood ~n ~victim:2) ~rounds);
  add (point ~row_algo:"orchestra" ~algorithm:(module Mac_routing.Orchestra)
         ~n ~k:3 ~threshold:Qrat.one ~rho:Qrat.one
         ~pattern:(Pattern.flood ~n ~victim:2) ~rounds);
  (* Count-Hop: universal below 1, breaks at 1. *)
  List.iter
    (fun rho ->
      add (point ~row_algo:"count-hop" ~algorithm:(module Mac_routing.Count_hop)
             ~n ~k:2 ~threshold:Qrat.one ~rho:(q rho)
             ~pattern:(Pattern.flood ~n ~victim:2) ~rounds))
    [ 0.8; 0.95; 1.0 ];
  (* Adjust-Window: same frontier with plain packets. *)
  List.iter
    (fun rho ->
      add (point ~row_algo:"adjust-window" ~algorithm:(module Mac_routing.Adjust_window)
             ~n:4 ~k:2 ~threshold:Qrat.one ~rho:(q rho)
             ~pattern:(Pattern.flood ~n:4 ~victim:2) ~rounds:aw_rounds))
    [ 0.5; 1.0 ];
  (* k-Cycle: guaranteed below (k-1)/(n-1); impossible above k/n; the strip
     between the two is the open territory the paper leaves. *)
  let n = 12 and k = 4 in
  let algorithm = Mac_routing.K_cycle.algorithm ~n ~k in
  let thr = Bounds.k_cycle_rate_q ~n ~k in
  List.iter
    (fun frac ->
      add (point ~row_algo:"k-cycle" ~algorithm ~n ~k ~threshold:thr
             ~rho:(Qrat.mul (q frac) thr)
             ~pattern:(Pattern.flood ~n ~victim:5) ~rounds))
    [ 0.6; 0.95; 1.05 ];
  let schedule = Option.get (Scenario.schedule_of algorithm ~n ~k) in
  let duty = Saboteur.min_duty ~n ~horizon:30_000 ~schedule in
  add (point ~row_algo:"k-cycle" ~algorithm ~n ~k ~threshold:thr
         ~rho:(Qrat.mul (Qrat.make 6 5) (Bounds.oblivious_rate_upper_q ~n ~k))
         ~pattern:duty.Saboteur.pattern ~rounds);
  (* k-Clique: bounded below 1/m, drowned by a pair flood above. *)
  let algorithm = Mac_routing.K_clique.algorithm ~n ~k in
  let thr = Bounds.k_clique_stable_rate_q ~n ~k in
  List.iter
    (fun frac ->
      add (point ~row_algo:"k-clique" ~algorithm ~n ~k ~threshold:thr
             ~rho:(Qrat.mul (q frac) thr)
             ~pattern:(Pattern.pair_flood ~src:1 ~dst:2) ~rounds))
    [ 0.6; 0.9; 1.25 ];
  (* k-Subsets: the optimal oblivious-direct frontier. *)
  let n = 8 and k = 3 in
  let algorithm = Mac_routing.K_subsets.algorithm ~n ~k () in
  let thr = Bounds.k_subsets_rate_q ~n ~k in
  List.iter
    (fun frac ->
      add (point ~row_algo:"k-subsets" ~algorithm ~n ~k ~threshold:thr
             ~rho:(Qrat.mul (q frac) thr)
             ~pattern:(Pattern.pair_flood ~src:1 ~dst:2) ~rounds))
    [ 0.9; 1.0 ];
  let schedule = Option.get (Scenario.schedule_of algorithm ~n ~k) in
  let pair = Saboteur.min_pair ~n ~horizon:(20 * Mac_routing.Combi.binomial n k) ~schedule in
  add (point ~row_algo:"k-subsets" ~algorithm ~n ~k ~threshold:thr
         ~rho:(Qrat.mul (Qrat.make 5 4) thr) ~pattern:pair.Saboteur.pattern
         ~rounds);
  (* Pair-TDMA baseline: a one-directional flood sees only the pair's own
     slot, 1/(n(n-1)) of rounds — half the optimal k = 2 rate that
     k-Subsets extracts by letting both directions share threads. *)
  let thr = Qrat.make 1 (n * (n - 1)) in
  List.iter
    (fun frac ->
      add (point ~row_algo:"pair-tdma" ~algorithm:(module Mac_routing.Pair_tdma)
             ~n ~k:2 ~threshold:thr ~rho:(Qrat.mul (q frac) thr)
             ~pattern:(Pattern.pair_flood ~src:1 ~dst:2) ~rounds))
    [ 0.9; 1.3 ];
  List.rev !points

let frontier =
  figure ~id:"F1.frontier"
    ~title:"Stability frontier: verdict around each algorithm's threshold"
    ~header:
      [ "algorithm"; "n"; "k"; "threshold"; "rho"; "rho/thr";
        "verdict"; "slope"; "max-queue" ]
    frontier_points

(* ------------------------------------------------------------------ *)
(* F2: latency scaling with n. *)

let scaling_points ?observe ?telemetry ~scale () =
  let points = ref [] in
  let point ~row_algo ~algorithm ~n ~k ~rho ~bound ~pattern ~rounds =
    let id = Printf.sprintf "scaling/%s/n=%d" row_algo n in
    let thunk ?heartbeat () =
      run_point ?heartbeat ~observe ~telemetry ~id ~algorithm ~n ~k ~rho
        ~beta:(Qrat.of_int 2) ~pattern ~rounds ~drain:(rounds / 2) ()
    in
    let row (o : Scenario.outcome) =
      let measured = Scenario.worst_delay o.Scenario.summary in
      [ row_algo; string_of_int n; string_of_int k; fmt_q rho;
        fmt measured; fmt bound; Mac_sim.Report.fmt_ratio ~measured ~bound ]
    in
    points := (id, thunk, row) :: !points
  in
  let ns = scaled ~scale ~quick:[ 4; 6 ] ~full:[ 4; 6; 8; 10; 12 ] in
  List.iter
    (fun n ->
      point ~row_algo:"count-hop" ~algorithm:(module Mac_routing.Count_hop) ~n
        ~k:2 ~rho:(q 0.5)
        ~bound:(Bounds.count_hop_latency_impl ~n ~rho:0.5 ~beta:2.0)
        ~pattern:(Pattern.uniform ~n ~seed:(200 + n))
        ~rounds:(scaled ~scale ~quick:40_000 ~full:120_000))
    ns;
  let ns = scaled ~scale ~quick:[ 7 ] ~full:[ 7; 9; 11; 13 ] in
  List.iter
    (fun n ->
      let rho = Qrat.mul (Qrat.make 1 2) (Bounds.k_cycle_rate_q ~n ~k:4) in
      point ~row_algo:"k-cycle" ~algorithm:(Mac_routing.K_cycle.algorithm ~n ~k:4)
        ~n ~k:4 ~rho ~bound:(Bounds.k_cycle_latency ~n ~beta:2.0)
        ~pattern:(Pattern.uniform ~n ~seed:(300 + n))
        ~rounds:(scaled ~scale ~quick:40_000 ~full:120_000))
    ns;
  let ns = scaled ~scale ~quick:[ 6 ] ~full:[ 6; 8; 12 ] in
  List.iter
    (fun n ->
      let rho = Bounds.k_clique_latency_rate_q ~n ~k:4 in
      point ~row_algo:"k-clique" ~algorithm:(Mac_routing.K_clique.algorithm ~n ~k:4)
        ~n ~k:4 ~rho ~bound:(Bounds.k_clique_latency ~n ~k:4 ~beta:2.0)
        ~pattern:(Pattern.uniform ~n ~seed:(400 + n))
        ~rounds:(scaled ~scale ~quick:60_000 ~full:150_000))
    ns;
  (match scale with
   | `Quick -> ()
   | `Full ->
     List.iter
       (fun n ->
         point ~row_algo:"adjust-window" ~algorithm:(module Mac_routing.Adjust_window)
           ~n ~k:2 ~rho:(q 0.3)
           ~bound:(Bounds.adjust_window_latency_impl ~n ~rho:0.3 ~beta:2.0)
           ~pattern:(Pattern.uniform ~n ~seed:(500 + n))
           ~rounds:(10 * Mac_routing.Adjust_window.initial_window ~n))
       [ 3; 4; 5 ]);
  List.rev !points

let scaling =
  figure ~id:"F2.scaling"
    ~title:"Latency scaling with n (measured worst delay vs instantiated bound)"
    ~header:[ "algorithm"; "n"; "k"; "rho"; "worst-delay"; "bound"; "ratio" ]
    scaling_points

(* ------------------------------------------------------------------ *)
(* F3: the latency-energy tradeoff across caps. *)

let energy_points ?observe ?telemetry ~scale () =
  let n = 12 in
  let rounds = scaled ~scale ~quick:60_000 ~full:200_000 in
  let points = ref [] in
  let point ~row_algo ~algorithm ~k ~threshold =
    let rho = Qrat.mul (Qrat.make 1 2) threshold in
    let id = Printf.sprintf "energy/%s/k=%d" row_algo k in
    let thunk ?heartbeat () =
      run_point ?heartbeat ~observe ~telemetry ~id ~algorithm ~n ~k ~rho
        ~beta:(Qrat.of_int 2)
        ~pattern:(Pattern.uniform ~n ~seed:(600 + k)) ~rounds
        ~drain:(rounds / 2) ()
    in
    let row (o : Scenario.outcome) =
      let s = o.Scenario.summary in
      [ row_algo; string_of_int k; fmt_q threshold; fmt_q rho;
        fmt s.Mac_sim.Metrics.mean_on;
        fmt (Mac_sim.Metrics.energy_per_delivery s);
        fmt s.Mac_sim.Metrics.mean_delay;
        string_of_int s.Mac_sim.Metrics.max_delay ]
    in
    points := (id, thunk, row) :: !points
  in
  (* Non-oblivious references at the same relative load: Orchestra needs
     only cap 3 for the throughput the always-on MBTF (cap n) achieves. *)
  point ~row_algo:"mbtf (always on)" ~algorithm:(module Mac_broadcast.Mbtf)
    ~k:n ~threshold:Qrat.one;
  point ~row_algo:"orchestra" ~algorithm:(module Mac_routing.Orchestra) ~k:3
    ~threshold:Qrat.one;
  point ~row_algo:"pair-tdma" ~algorithm:(module Mac_routing.Pair_tdma) ~k:2
    ~threshold:(Bounds.k_subsets_rate_q ~n ~k:2);
  let ks = scaled ~scale ~quick:[ 4 ] ~full:[ 3; 4; 6; 8 ] in
  List.iter
    (fun k ->
      point ~row_algo:"k-cycle" ~algorithm:(Mac_routing.K_cycle.algorithm ~n ~k) ~k
        ~threshold:(Bounds.k_cycle_rate_q ~n ~k))
    ks;
  let ks = scaled ~scale ~quick:[ 4 ] ~full:[ 2; 4; 6; 8 ] in
  List.iter
    (fun k ->
      point ~row_algo:"k-clique" ~algorithm:(Mac_routing.K_clique.algorithm ~n ~k)
        ~k ~threshold:(Bounds.k_clique_stable_rate_q ~n ~k))
    ks;
  List.rev !points

let energy =
  figure ~id:"F3.energy"
    ~title:"Latency-energy tradeoff at half the threshold rate (n=12)"
    ~header:
      [ "algorithm"; "k"; "threshold"; "rho"; "mean-on";
        "energy/delivery"; "mean-delay"; "max-delay" ]
    energy_points

(* ------------------------------------------------------------------ *)
(* F4: burstiness sensitivity. *)

let burst_points ?observe ?telemetry ~scale () =
  let points = ref [] in
  let point ~row_algo ~algorithm ~n ~k ~rho ~beta ~bound ~pattern ~rounds ~drain
      ~metric =
    let id = Printf.sprintf "burst/%s/b=%g" row_algo (Qrat.to_float beta) in
    let thunk ?heartbeat () =
      run_point ?heartbeat ~observe ~telemetry ~id ~algorithm ~n ~k ~rho ~beta
        ~pattern ~rounds ~drain ()
    in
    let row (o : Scenario.outcome) =
      let measured = metric o.Scenario.summary in
      [ row_algo; string_of_int n; fmt_q rho; fmt_q beta; fmt measured;
        fmt bound; Mac_sim.Report.fmt_ratio ~measured ~bound ]
    in
    points := (id, thunk, row) :: !points
  in
  let betas = scaled ~scale ~quick:[ 1.0; 32.0 ] ~full:[ 1.0; 8.0; 32.0; 128.0 ] in
  let n = 8 in
  List.iter
    (fun beta ->
      point ~row_algo:"count-hop" ~algorithm:(module Mac_routing.Count_hop) ~n
        ~k:2 ~rho:(q 0.8) ~beta:(q beta)
        ~bound:(Bounds.count_hop_latency_impl ~n ~rho:0.8 ~beta)
        ~pattern:(Pattern.flood ~n ~victim:2)
        ~rounds:(scaled ~scale ~quick:50_000 ~full:120_000)
        ~drain:60_000 ~metric:Scenario.worst_delay)
    betas;
  let n = 12 and k = 4 in
  let rho = Qrat.mul (Qrat.make 1 2) (Bounds.k_cycle_rate_q ~n ~k) in
  List.iter
    (fun beta ->
      point ~row_algo:"k-cycle" ~algorithm:(Mac_routing.K_cycle.algorithm ~n ~k)
        ~n ~k ~rho ~beta:(q beta) ~bound:(Bounds.k_cycle_latency ~n ~beta)
        ~pattern:(Pattern.flood ~n ~victim:5)
        ~rounds:(scaled ~scale ~quick:50_000 ~full:120_000)
        ~drain:60_000 ~metric:Scenario.worst_delay)
    betas;
  let n = 8 in
  List.iter
    (fun beta ->
      point ~row_algo:"orchestra(queues)" ~algorithm:(module Mac_routing.Orchestra)
        ~n ~k:3 ~rho:Qrat.one ~beta:(q beta)
        ~bound:(Bounds.orchestra_queue_bound ~n ~beta)
        ~pattern:(Pattern.flood ~n ~victim:2)
        ~rounds:(scaled ~scale ~quick:50_000 ~full:120_000)
        ~drain:0
        ~metric:(fun s -> float_of_int s.Mac_sim.Metrics.max_total_queue))
    betas;
  List.rev !points

let burst =
  figure ~id:"F4.burst"
    ~title:"Burstiness sensitivity (worst delay, or backlog for Orchestra)"
    ~header:[ "algorithm"; "n"; "rho"; "beta"; "measured"; "bound"; "ratio" ]
    burst_points

(* ------------------------------------------------------------------ *)
(* F5: what the paper's schedules buy — empirical frontiers of every
   oblivious discipline against the same dedicated pair flood, located by
   bisection, next to the random-schedule strawman. *)

let baselines_header =
  [ "discipline"; "theory stable <="; "theory unstable >";
    "empirical stable"; "empirical unstable" ]

let baselines_subjects ~n ~k =
  (* [theory_lo = None] marks the strawman with no guaranteed frontier. *)
  [ ("pair-tdma", (module Mac_routing.Pair_tdma : Mac_channel.Algorithm.S),
     Some (Qrat.make 1 (n * (n - 1))), Some (Qrat.make 1 (n * (n - 1))));
    ("random-leader", Mac_routing.Random_leader.algorithm ~n ~k (),
     None, Some (Bounds.k_subsets_rate_q ~n ~k));
    ("k-clique", Mac_routing.K_clique.algorithm ~n ~k,
     Some (Bounds.k_clique_stable_rate_q ~n ~k),
     Some (Bounds.k_subsets_rate_q ~n ~k));
    ("k-subsets", Mac_routing.K_subsets.algorithm ~n ~k (),
     Some (Bounds.k_subsets_rate_q ~n ~k),
     Some (Bounds.k_subsets_rate_q ~n ~k));
    ("k-cycle (indirect)", Mac_routing.K_cycle.algorithm ~n ~k,
     Some (Bounds.k_cycle_rate_q ~n ~k),
     Some (Bounds.oblivious_rate_upper_q ~n ~k)) ]

let baselines_brackets ~subjects ~n ~k ~rounds =
  ignore (n, k);
  List.map
    (fun (label, algorithm, _, theory_hi) ->
      let probe =
        Sweep.stability_probe_q ~algorithm ~n ~k
          ~pattern:(fun () -> Pattern.pair_flood ~src:1 ~dst:2)
          ~rounds ()
      in
      let hi0 =
        match theory_hi with
        | None -> Qrat.make 1 2
        | Some hi -> Qrat.min Qrat.one (Qrat.mul_int hi 2)
      in
      (label, Qrat.make 1 250, hi0, probe))
    subjects

let baselines_row (label, _, theory_lo, theory_hi) (lo, hi) =
  let opt = function None -> "?" | Some r -> fmt_q r in
  [ label; opt theory_lo; opt theory_hi; fmt_q lo; fmt_q hi ]

let baselines_rows ?observe ?telemetry ?jobs ~scale () =
  (* Bisection probes run thousands of throwaway points; observing them
     would swamp any sink, so F5 deliberately ignores the observer, and
     telemetry only counts probes on the fleet (no per-scenario files). *)
  ignore (observe : Scenario.observer option);
  let n = 8 and k = 3 in
  let rounds = scaled ~scale ~quick:30_000 ~full:60_000 in
  let steps = scaled ~scale ~quick:4 ~full:7 in
  let subjects = baselines_subjects ~n ~k in
  let brackets =
    List.map
      (fun (_, lo, hi, probe) -> (lo, hi, probe))
      (baselines_brackets ~subjects ~n ~k ~rounds)
  in
  let located = Sweep.bisect_many_q ?jobs ?telemetry ~steps brackets in
  let rows = List.map2 baselines_row subjects located in
  (rows, [])

let baselines_run_s ?observe ?telemetry ?jobs ?policy ?on_event ~scale () =
  ignore (observe : Scenario.observer option);
  let n = 8 and k = 3 in
  let rounds = scaled ~scale ~quick:30_000 ~full:60_000 in
  let steps = scaled ~scale ~quick:4 ~full:7 in
  let subjects = baselines_subjects ~n ~k in
  let located =
    Sweep.bisect_many_sq ?jobs ?policy ?on_event ?telemetry ~steps
      (baselines_brackets ~subjects ~n ~k ~rounds)
  in
  let report = Mac_sim.Report.create ~header:baselines_header in
  List.iter2
    (fun subject (_, outcome) ->
      match outcome with
      | Ok bracket -> Mac_sim.Report.add_row report (baselines_row subject bracket)
      | Error _ -> ())
    subjects located;
  let failures =
    List.filter_map
      (function lbl, Error e -> Some (lbl, e) | _, Ok _ -> None)
      located
  in
  { report; outcomes = []; failures }

let baselines =
  { id = "F5.baselines";
    title =
      "Empirical stability frontiers under a dedicated pair flood (n=8, k=3, bisection)";
    run =
      (fun ?observe ?telemetry ?jobs ~scale () ->
        let rows, outcomes = baselines_rows ?observe ?telemetry ?jobs ~scale () in
        let report = Mac_sim.Report.create ~header:baselines_header in
        List.iter (Mac_sim.Report.add_row report) rows;
        (report, outcomes));
    run_s = baselines_run_s }

let all = [ frontier; scaling; energy; burst; baselines ]
