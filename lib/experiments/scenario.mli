(** One simulated scenario: an algorithm against an adversary, with the
    claims it is expected to witness.

    A scenario bundles the run parameters with a list of checks evaluated on
    the finished run (latency under a Table-1 bound, queue bound, energy cap,
    stability verdict, protocol cleanliness). The benchmark harness renders
    the outcomes as table rows; the test suite asserts [passed]. *)

type spec = {
  id : string;
  algorithm : Mac_channel.Algorithm.t;
  n : int;
  k : int;
  rate : Mac_channel.Qrat.t;
  burst : Mac_channel.Qrat.t;
  pattern : Mac_adversary.Pattern.t;
  pacing : Mac_adversary.Adversary.pacing;
  rounds : int;
  drain : int;
  faults : Mac_faults.Fault_plan.t option;
}

val spec_q :
  id:string ->
  algorithm:Mac_channel.Algorithm.t ->
  n:int -> k:int ->
  rate:Mac_channel.Qrat.t -> burst:Mac_channel.Qrat.t ->
  pattern:Mac_adversary.Pattern.t ->
  ?pacing:Mac_adversary.Adversary.pacing ->
  rounds:int -> ?drain:int ->
  ?faults:Mac_faults.Fault_plan.t -> unit -> spec
(** Defaults: greedy pacing, drain = rounds/2, no faults. A non-empty
    fault plan turns off strict mode for the run (stranding is expected
    when consumers crash) — violations are counted, not raised. Rates are
    exact: a scenario built from a [Bounds._q] threshold sits precisely on
    the paper's frontier. *)

val spec :
  id:string ->
  algorithm:Mac_channel.Algorithm.t ->
  n:int -> k:int -> rate:float -> burst:float ->
  pattern:Mac_adversary.Pattern.t ->
  ?pacing:Mac_adversary.Adversary.pacing ->
  rounds:int -> ?drain:int ->
  ?faults:Mac_faults.Fault_plan.t -> unit -> spec
(** Deprecated float shim over {!spec_q}; rates are snapped to the
    simplest rationals denoting them ({!Mac_channel.Qrat.of_float}). *)

type check = {
  label : string;
  bound : float;     (** [infinity] when the check has no numeric bound *)
  measured : float;
  ok : bool;
}

type outcome = {
  spec : spec;
  summary : Mac_sim.Metrics.summary;
  stability : Mac_sim.Stability.report;
  checks : check list;
  passed : bool;
}

(** Check builders, evaluated against the run's summary and verdict. *)
type checker = Mac_sim.Metrics.summary -> Mac_sim.Stability.report -> check

val latency_under : float -> checker
(** Worst packet delay — counting packets still queued at the end by their
    age — is at most the bound. *)

val queues_under : float -> checker

val cap_at_most : int -> checker

val clean : checker
(** No protocol violations, no collisions, and nothing left undelivered
    after the drain. *)

val stable : checker

val unstable : checker

val delivered_all : checker

type observer = id:string -> Mac_sim.Sink.t option
(** Experiment drivers call the observer once per scenario with the
    scenario's id; returning a sink attaches it to that run's event stream.
    The sink is closed when the run finishes, even on an exception. *)

val run :
  ?checks:checker list ->
  ?observe:observer ->
  ?telemetry:Mac_sim.Telemetry.Fleet.t ->
  ?heartbeat:(unit -> unit) ->
  spec ->
  outcome
(** Simulates the scenario (schedule cross-checking enabled for oblivious
    algorithms) and evaluates the checks. [observe] may attach an event
    sink to the run; see {!observer}. [telemetry] attaches a
    {!Mac_sim.Telemetry.Fleet} probe: the run publishes a live
    [scenario=<id>] registry on the fleet's cadence and merges it into
    the fleet aggregate when the run finishes. [heartbeat] is forwarded to
    the engine's per-round liveness callback (see
    {!Mac_sim.Engine.config}). *)

val run_batch : ?jobs:int -> (unit -> outcome) list -> outcome list
(** Run a batch of independent scenario thunks across [jobs] worker domains
    (default 1 = sequential), returning the outcomes in input order.
    Scenario runs are shared-nothing, so the outcomes are bit-identical to
    running the thunks sequentially. Pool-compatible semantics: the first
    raising thunk aborts the batch and its exception is re-raised (with its
    original backtrace); a supervisor drain request surfaces as
    {!Mac_sim.Supervisor.Drained}. *)

val run_batch_s :
  ?jobs:int ->
  ?policy:Mac_sim.Supervisor.policy ->
  ?quarantined:(string -> int option) ->
  ?on_event:(Mac_sim.Supervisor.event -> unit) ->
  (string * (heartbeat:(unit -> unit) -> 'a)) list ->
  (string * 'a Mac_sim.Supervisor.outcome) list
(** Supervised batch: each labelled job resolves to its own
    {!Mac_sim.Supervisor.outcome} under [policy] (retries, watchdog
    timeouts, quarantine, keep-going) instead of the first exception
    aborting the sweep. Jobs must call [heartbeat] from their inner loops
    (thread it into {!run}) for watchdog liveness. Results are in input
    order. *)

val check_json : check -> string
(** One check as a JSON object. *)

val outcome_json : experiment:string -> outcome -> string
(** One outcome as the JSON row format of [BENCH_table1.json] (experiment
    id, scenario id, verdict, checks, full summary). *)

(** {2 Resumable batches}

    A killed sweep can be resumed by re-running it with the same
    [resume_dir]: scenarios whose marker file is present are skipped and
    their recorded outcome row is replayed byte-for-byte, so the JSON
    output of an interrupted-and-resumed sweep is identical to an
    uninterrupted one. Markers are written atomically (tmp + rename) after
    a scenario completes, never mid-run. *)

type cached = {
  scenario : string;  (** scenario id, recorded verbatim *)
  verdict : string;   (** stability verdict string *)
  succeeded : bool;   (** the recorded [passed] flag *)
  row : string;       (** the exact [outcome_json] line of the original run *)
}

type resumed = Fresh of outcome | Cached of cached

val resumed_id : resumed -> string
val resumed_passed : resumed -> bool
val resumed_verdict : resumed -> string

val resumed_json : experiment:string -> resumed -> string
(** The BENCH_table1.json row: computed via {!outcome_json} for [Fresh],
    replayed verbatim from the marker for [Cached] (whose stored row
    already embeds the experiment id it was run under). *)

val marker_path : resume_dir:string -> string -> string
(** Where [run_resumable] records a scenario id's completion. Filenames
    sanitize the id to [[A-Za-z0-9._-]]; the marker also stores the id
    verbatim, so colliding sanitizations cannot satisfy each other. *)

val run_resumable :
  ?checks:checker list ->
  ?observe:observer ->
  ?telemetry:Mac_sim.Telemetry.Fleet.t ->
  ?heartbeat:(unit -> unit) ->
  resume_dir:string ->
  experiment:string ->
  spec ->
  resumed
(** Like {!run}, but checks [resume_dir] (created if missing) for a
    completion marker first. On a hit, returns [Cached] without simulating
    (noting the cache hit on [telemetry] when given); on a miss, runs the
    scenario, writes the marker, and returns [Fresh]. A corrupt or
    mismatched marker is treated as a miss and rewritten. *)

(** {2 Quarantine markers}

    A resumable sweep records scenarios that kept failing as
    [<id>.quarantined] files next to the completion markers, so a re-run
    skips them (outcome {!Mac_sim.Supervisor.error.Quarantined}) instead of
    burning their retry budget again. Deleting the file re-admits the
    scenario. *)

val quarantine_path : resume_dir:string -> string -> string

val quarantine_lookup : resume_dir:string -> string -> int option
(** [Some failures] when a valid quarantine marker for the id exists.
    Corrupt or mismatched markers read as [None]. *)

val note_quarantined :
  resume_dir:string -> id:string -> failures:int -> error:string -> unit
(** Atomically record a quarantine marker (creates [resume_dir] if
    missing). *)

val schedule_of :
  Mac_channel.Algorithm.t -> n:int -> k:int ->
  (me:int -> round:int -> bool) option
(** The static schedule of an oblivious algorithm, pre-applied to (n, k) —
    what a saboteur inspects. *)

val worst_delay : Mac_sim.Metrics.summary -> float
(** max of delivered max-delay and the age of the oldest packet left. *)
