(** Sweep experiments ("figures" the theory implies).

    The paper has no plots; these sweeps chart the claims of Table 1 the way
    an evaluation section would: where each algorithm's stability frontier
    falls (F1), how latency scales with n (F2), the latency–energy tradeoff
    across caps the conclusion (§7) raises as an open question (F3), and the
    linear burstiness sensitivity (F4).

    Each figure yields a rendered table plus the raw outcomes (the test
    suite asserts selected points). *)

type supervised = {
  report : Mac_sim.Report.t;
  (** Rows for the successful points only, in declaration order. *)
  outcomes : Scenario.outcome list;
  (** The successful outcomes, in declaration order (empty for F5, whose
      points are bisection brackets, not single scenarios). *)
  failures : (string * Mac_sim.Supervisor.error) list;
  (** Points that kept failing under the policy: (point id, error). *)
}

type t = {
  id : string;
  title : string;
  run :
    ?observe:Scenario.observer ->
    ?telemetry:Mac_sim.Telemetry.Fleet.t ->
    ?jobs:int ->
    scale:[ `Quick | `Full ] ->
    unit ->
    Mac_sim.Report.t * Scenario.outcome list;
  (** [observe] is forwarded to each plotted point's {!Scenario.run}, keyed
      by scenario id. F5 ignores it (bisection probes are throwaway runs).
      [telemetry] attaches a fleet probe to every plotted point; F5 only
      counts its probe runs on the fleet's bisect-probes counter.
      [jobs] (default 1) fans the figure's points — for F5, its bisection
      brackets — out over that many worker domains; rows and outcomes keep
      their declaration order and match a sequential run bit for bit. *)
  run_s :
    ?observe:Scenario.observer ->
    ?telemetry:Mac_sim.Telemetry.Fleet.t ->
    ?jobs:int ->
    ?policy:Mac_sim.Supervisor.policy ->
    ?on_event:(Mac_sim.Supervisor.event -> unit) ->
    scale:[ `Quick | `Full ] ->
    unit ->
    supervised;
  (** Supervised [run]: each point resolves to its own outcome under
      [policy] instead of the first exception aborting the figure. Retried
      points rebuild their spec (and pattern cursors) from scratch, so a
      retry replays bit-identically to a first run. *)
}

val frontier : t
(** F1: verdict and queue-growth slope around each algorithm's threshold;
    below it adversaries are floods, above it the matching saboteur. *)

val scaling : t
(** F2: worst-case packet delay against the instantiated bound as n grows. *)

val energy : t
(** F3: delivered throughput, energy per delivery and latency as the energy
    cap k varies (k-Cycle, k-Clique, pair-TDMA at half their threshold). *)

val burst : t
(** F4: latency (or backlog for Orchestra) as burstiness grows. *)

val baselines : t
(** F5: empirical stability frontiers (located by {!Sweep.bisect}) of all
    oblivious disciplines — including the random-schedule strawman — under
    the same dedicated pair flood. *)

val all : t list
