type spec = {
  id : string;
  algorithm : Mac_channel.Algorithm.t;
  n : int;
  k : int;
  rate : Mac_channel.Qrat.t;
  burst : Mac_channel.Qrat.t;
  pattern : Mac_adversary.Pattern.t;
  pacing : Mac_adversary.Adversary.pacing;
  rounds : int;
  drain : int;
  faults : Mac_faults.Fault_plan.t option;
}

let spec_q ~id ~algorithm ~n ~k ~rate ~burst ~pattern
    ?(pacing = Mac_adversary.Adversary.Greedy) ~rounds ?drain ?faults () =
  let drain = match drain with Some d -> d | None -> rounds / 2 in
  { id; algorithm; n; k; rate; burst; pattern; pacing; rounds; drain; faults }

let spec ~id ~algorithm ~n ~k ~rate ~burst ~pattern ?pacing ~rounds ?drain
    ?faults () =
  spec_q ~id ~algorithm ~n ~k ~rate:(Mac_channel.Qrat.of_float rate)
    ~burst:(Mac_channel.Qrat.of_float burst) ~pattern ?pacing ~rounds ?drain
    ?faults ()

type check = {
  label : string;
  bound : float;
  measured : float;
  ok : bool;
}

type outcome = {
  spec : spec;
  summary : Mac_sim.Metrics.summary;
  stability : Mac_sim.Stability.report;
  checks : check list;
  passed : bool;
}

type checker = Mac_sim.Metrics.summary -> Mac_sim.Stability.report -> check

let worst_delay (s : Mac_sim.Metrics.summary) =
  float_of_int (max s.max_delay s.max_queued_age)

let latency_under bound : checker =
 fun s _ ->
  let measured = worst_delay s in
  { label = "latency"; bound; measured; ok = measured <= bound }

let queues_under bound : checker =
 fun s _ ->
  let measured = float_of_int s.max_total_queue in
  { label = "queues"; bound; measured; ok = measured <= bound }

let cap_at_most cap : checker =
 fun s _ ->
  { label = "energy-cap"; bound = float_of_int cap;
    measured = float_of_int s.max_on; ok = s.max_on <= cap }

let clean : checker =
 fun s _ ->
  let bad =
    (if Mac_sim.Metrics.no_violations s then 0 else 1) + s.collision_rounds
  in
  { label = "clean"; bound = 0.0; measured = float_of_int bad; ok = bad = 0 }

let stable : checker =
 fun _ r ->
  { label = "stable"; bound = Float.infinity; measured = r.Mac_sim.Stability.slope;
    ok = r.Mac_sim.Stability.verdict = Mac_sim.Stability.Stable }

let unstable : checker =
 fun _ r ->
  { label = "unstable"; bound = Float.infinity; measured = r.Mac_sim.Stability.slope;
    ok = r.Mac_sim.Stability.verdict = Mac_sim.Stability.Unstable }

let delivered_all : checker =
 fun s _ ->
  { label = "delivered-all"; bound = float_of_int s.injected;
    measured = float_of_int s.delivered; ok = s.undelivered = 0 }

let schedule_of (module A : Mac_channel.Algorithm.S) ~n ~k =
  Option.map (fun f ~me ~round -> f ~n ~k ~me ~round) A.static_schedule

type observer = id:string -> Mac_sim.Sink.t option

let run ?(checks = []) ?observe ?telemetry ?heartbeat spec =
  let module A = (val spec.algorithm) in
  let adversary =
    Mac_adversary.Adversary.create_q ~rate:spec.rate ~burst:spec.burst
      ~pacing:spec.pacing spec.pattern
  in
  let sink =
    match observe with None -> None | Some f -> f ~id:spec.id
  in
  let faulted =
    match spec.faults with
    | Some p -> not (Mac_faults.Fault_plan.is_empty p)
    | None -> false
  in
  let probe =
    Option.map
      (fun fleet -> Mac_sim.Telemetry.Fleet.probe fleet ~id:spec.id)
      telemetry
  in
  let config =
    { (Mac_sim.Engine.default_config ~rounds:spec.rounds) with
      drain_limit = spec.drain;
      check_schedule = A.oblivious;
      (* Faults break protocol assumptions by design (a packet heard
         while its consumers are crashed strands); count violations
         instead of raising. *)
      strict = not faulted;
      sink;
      faults = spec.faults;
      telemetry = probe;
      heartbeat }
  in
  let summary =
    Fun.protect
      ~finally:(fun () -> Option.iter Mac_sim.Sink.close sink)
      (fun () ->
        Mac_sim.Engine.run ~config ~algorithm:spec.algorithm ~n:spec.n
          ~k:spec.k ~adversary ~rounds:spec.rounds ())
  in
  (match (telemetry, probe) with
   | Some fleet, Some p -> Mac_sim.Telemetry.Fleet.finish fleet p
   | _ -> ());
  let stability = Mac_sim.Stability.classify summary.queue_series in
  let checks = List.map (fun c -> c summary stability) checks in
  { spec; summary; stability; checks;
    passed = List.for_all (fun c -> c.ok) checks }

(* Legacy batch entry point, now running on the Supervisor with the
   default policy — observably identical to the old [Pool.map] (first
   exception aborts and re-raises, order-preserving, exactly-once) —
   except that a requested drain (SIGTERM/SIGINT) surfaces as
   [Supervisor.Drained] instead of hanging or crashing. *)
let run_batch ?(jobs = 1) thunks =
  List.map
    (function
      | Ok r -> r
      | Error Mac_sim.Supervisor.Skipped -> raise Mac_sim.Supervisor.Drained
      | Error e -> failwith (Mac_sim.Supervisor.error_to_string e))
    (Mac_sim.Supervisor.map ~jobs thunks
       (fun ~heartbeat:_ ~attempt:_ t -> t ()))

(* Supervised batch: jobs are labelled builders that must construct any
   per-run mutable state (pattern cursors!) afresh on every call, so a
   retried attempt replays bit-identically to a first attempt. Returns
   one outcome per job, in order — failures don't abort the batch unless
   [policy.keep_going] is false. *)
let run_batch_s ?(jobs = 1) ?(policy = Mac_sim.Supervisor.default_policy)
    ?quarantined ?on_event labelled =
  let labels = Array.of_list (List.map fst labelled) in
  let outcomes =
    Mac_sim.Supervisor.map ~policy
      ~label:(fun i -> labels.(i))
      ?quarantined ?on_event ~jobs (List.map snd labelled)
      (fun ~heartbeat ~attempt:_ build -> build ~heartbeat)
  in
  List.combine (Array.to_list labels) outcomes

(* Machine-readable form of an outcome, shared by the bench harness and the
   CLI so both write the same BENCH_table1.json rows. *)
let check_json (c : check) =
  Printf.sprintf
    "{\"label\": \"%s\", \"bound\": %s, \"measured\": %s, \"ok\": %b}"
    (Mac_sim.Export.json_escape c.label)
    (if Float.is_finite c.bound then Printf.sprintf "%.6g" c.bound else "null")
    (if Float.is_finite c.measured then Printf.sprintf "%.6g" c.measured
     else "null")
    c.ok

let verdict_string (o : outcome) =
  Mac_sim.Stability.verdict_to_string o.stability.verdict

let outcome_json ~experiment (o : outcome) =
  Printf.sprintf
    "{\"experiment\": \"%s\", \"scenario\": \"%s\", \"verdict\": \"%s\", \
     \"passed\": %b, \"checks\": [%s], \"summary\": %s}"
    (Mac_sim.Export.json_escape experiment)
    (Mac_sim.Export.json_escape o.spec.id)
    (Mac_sim.Stability.verdict_to_string o.stability.verdict)
    o.passed
    (String.concat ", " (List.map check_json o.checks))
    (Mac_sim.Export.summary_json o.summary)

(* --- Resumable batches ------------------------------------------------- *)

type cached = {
  scenario : string;
  verdict : string;
  succeeded : bool;
  row : string;
}

type resumed = Fresh of outcome | Cached of cached

let resumed_id = function
  | Fresh o -> o.spec.id
  | Cached c -> c.scenario

let resumed_passed = function
  | Fresh o -> o.passed
  | Cached c -> c.succeeded

let resumed_verdict = function
  | Fresh o -> verdict_string o
  | Cached c -> c.verdict

let resumed_json ~experiment = function
  | Fresh o -> outcome_json ~experiment o
  | Cached c -> c.row

(* Marker filenames are derived from the scenario id, but the id is also
   recorded verbatim inside the marker: two ids that sanitize to the same
   filename cannot silently satisfy each other. *)
let sanitize_id id =
  String.map
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '.' | '_' | '-' -> c
      | _ -> '_')
    id

let marker_magic = "MACDONE 1"

let marker_path ~resume_dir id =
  Filename.concat resume_dir (sanitize_id id ^ ".done")

let load_cached ~id path =
  if not (Sys.file_exists path) then None
  else
    let lines =
      let ic = open_in_bin path in
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () ->
          let rec go acc =
            match input_line ic with
            | line -> go (line :: acc)
            | exception End_of_file -> List.rev acc
          in
          go [])
    in
    let strip ~prefix line =
      let n = String.length prefix in
      if String.length line > n && String.sub line 0 n = prefix then
        Some (String.sub line n (String.length line - n))
      else None
    in
    match lines with
    | [ magic; id_line; verdict_line; passed_line; row ]
      when magic = marker_magic -> (
      match
        ( strip ~prefix:"scenario " id_line,
          strip ~prefix:"verdict " verdict_line,
          strip ~prefix:"passed " passed_line )
      with
      | Some scenario, Some verdict, Some passed_s
        when scenario = id && (passed_s = "true" || passed_s = "false") ->
        Some { scenario; verdict; succeeded = passed_s = "true"; row }
      | _ -> None)
    | _ -> None

let store_cached ~experiment path (o : outcome) =
  let content =
    String.concat "\n"
      [ marker_magic;
        "scenario " ^ o.spec.id;
        "verdict " ^ verdict_string o;
        Printf.sprintf "passed %b" o.passed;
        outcome_json ~experiment o ]
  in
  (* Atomic and durable: a completion marker that survives the rename
     but not the data would replay an empty row forever. *)
  Mac_sim.Durable.write_string ~path content

let run_resumable ?checks ?observe ?telemetry ?heartbeat ~resume_dir
    ~experiment spec =
  if not (Sys.file_exists resume_dir) then Sys.mkdir resume_dir 0o755;
  let path = marker_path ~resume_dir spec.id in
  match load_cached ~id:spec.id path with
  | Some c ->
    Option.iter
      (fun fleet -> Mac_sim.Telemetry.Fleet.note_cached fleet ~id:spec.id)
      telemetry;
    Cached c
  | None ->
    let o = run ?checks ?observe ?telemetry ?heartbeat spec in
    store_cached ~experiment path o;
    Fresh o

(* --- Quarantine markers -------------------------------------------------

   A scenario that exhausted its retries in a resumable sweep is recorded
   as "<id>.quarantined" next to its (absent) completion marker. A later
   run of the same sweep skips it up front — reported as [Quarantined] —
   instead of burning its full attempt budget again. Delete the file to
   give the scenario another chance. *)

let quarantine_magic = "MACQUAR 1"

let quarantine_path ~resume_dir id =
  Filename.concat resume_dir (sanitize_id id ^ ".quarantined")

let quarantine_lookup ~resume_dir id =
  let path = quarantine_path ~resume_dir id in
  if not (Sys.file_exists path) then None
  else
    match open_in_bin path with
    | exception Sys_error _ -> None
    | ic ->
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () ->
          match
            (* Sequenced reads: a tuple of [input_line]s would be evaluated
               in unspecified (in practice right-to-left) order, reading the
               file backwards. *)
            let magic = input_line ic in
            let id_line = input_line ic in
            let failures_line = input_line ic in
            (magic, id_line, failures_line)
          with
          | magic, id_line, failures_line
            when magic = quarantine_magic && id_line = "scenario " ^ id -> (
            match
              String.length failures_line > 9
              && String.sub failures_line 0 9 = "failures "
            with
            | true ->
              int_of_string_opt
                (String.sub failures_line 9 (String.length failures_line - 9))
            | false -> None)
          | _ -> None
          | exception End_of_file -> None)

let note_quarantined ~resume_dir ~id ~failures ~error =
  if not (Sys.file_exists resume_dir) then Sys.mkdir resume_dir 0o755;
  let content =
    String.concat "\n"
      [ quarantine_magic;
        "scenario " ^ id;
        Printf.sprintf "failures %d" failures;
        "error " ^ error ]
  in
  Mac_sim.Durable.write_string ~path:(quarantine_path ~resume_dir id) content
