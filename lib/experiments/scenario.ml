type spec = {
  id : string;
  algorithm : Mac_channel.Algorithm.t;
  n : int;
  k : int;
  rate : Mac_channel.Qrat.t;
  burst : Mac_channel.Qrat.t;
  pattern : Mac_adversary.Pattern.t;
  pacing : Mac_adversary.Adversary.pacing;
  rounds : int;
  drain : int;
  faults : Mac_faults.Fault_plan.t option;
}

let spec_q ~id ~algorithm ~n ~k ~rate ~burst ~pattern
    ?(pacing = Mac_adversary.Adversary.Greedy) ~rounds ?drain ?faults () =
  let drain = match drain with Some d -> d | None -> rounds / 2 in
  { id; algorithm; n; k; rate; burst; pattern; pacing; rounds; drain; faults }

let spec ~id ~algorithm ~n ~k ~rate ~burst ~pattern ?pacing ~rounds ?drain
    ?faults () =
  spec_q ~id ~algorithm ~n ~k ~rate:(Mac_channel.Qrat.of_float rate)
    ~burst:(Mac_channel.Qrat.of_float burst) ~pattern ?pacing ~rounds ?drain
    ?faults ()

type check = {
  label : string;
  bound : float;
  measured : float;
  ok : bool;
}

type outcome = {
  spec : spec;
  summary : Mac_sim.Metrics.summary;
  stability : Mac_sim.Stability.report;
  checks : check list;
  passed : bool;
}

type checker = Mac_sim.Metrics.summary -> Mac_sim.Stability.report -> check

let worst_delay (s : Mac_sim.Metrics.summary) =
  float_of_int (max s.max_delay s.max_queued_age)

let latency_under bound : checker =
 fun s _ ->
  let measured = worst_delay s in
  { label = "latency"; bound; measured; ok = measured <= bound }

let queues_under bound : checker =
 fun s _ ->
  let measured = float_of_int s.max_total_queue in
  { label = "queues"; bound; measured; ok = measured <= bound }

let cap_at_most cap : checker =
 fun s _ ->
  { label = "energy-cap"; bound = float_of_int cap;
    measured = float_of_int s.max_on; ok = s.max_on <= cap }

let clean : checker =
 fun s _ ->
  let bad =
    (if Mac_sim.Metrics.no_violations s then 0 else 1) + s.collision_rounds
  in
  { label = "clean"; bound = 0.0; measured = float_of_int bad; ok = bad = 0 }

let stable : checker =
 fun _ r ->
  { label = "stable"; bound = Float.infinity; measured = r.Mac_sim.Stability.slope;
    ok = r.Mac_sim.Stability.verdict = Mac_sim.Stability.Stable }

let unstable : checker =
 fun _ r ->
  { label = "unstable"; bound = Float.infinity; measured = r.Mac_sim.Stability.slope;
    ok = r.Mac_sim.Stability.verdict = Mac_sim.Stability.Unstable }

let delivered_all : checker =
 fun s _ ->
  { label = "delivered-all"; bound = float_of_int s.injected;
    measured = float_of_int s.delivered; ok = s.undelivered = 0 }

let schedule_of (module A : Mac_channel.Algorithm.S) ~n ~k =
  Option.map (fun f ~me ~round -> f ~n ~k ~me ~round) A.static_schedule

type observer = id:string -> Mac_sim.Sink.t option

let run ?(checks = []) ?observe spec =
  let module A = (val spec.algorithm) in
  let adversary =
    Mac_adversary.Adversary.create_q ~rate:spec.rate ~burst:spec.burst
      ~pacing:spec.pacing spec.pattern
  in
  let sink =
    match observe with None -> None | Some f -> f ~id:spec.id
  in
  let faulted =
    match spec.faults with
    | Some p -> not (Mac_faults.Fault_plan.is_empty p)
    | None -> false
  in
  let config =
    { (Mac_sim.Engine.default_config ~rounds:spec.rounds) with
      drain_limit = spec.drain;
      check_schedule = A.oblivious;
      (* Faults break protocol assumptions by design (a packet heard
         while its consumers are crashed strands); count violations
         instead of raising. *)
      strict = not faulted;
      sink;
      faults = spec.faults }
  in
  let summary =
    Fun.protect
      ~finally:(fun () -> Option.iter Mac_sim.Sink.close sink)
      (fun () ->
        Mac_sim.Engine.run ~config ~algorithm:spec.algorithm ~n:spec.n
          ~k:spec.k ~adversary ~rounds:spec.rounds ())
  in
  let stability = Mac_sim.Stability.classify summary.queue_series in
  let checks = List.map (fun c -> c summary stability) checks in
  { spec; summary; stability; checks;
    passed = List.for_all (fun c -> c.ok) checks }

let run_batch ?(jobs = 1) thunks = Mac_sim.Pool.map ~jobs thunks (fun t -> t ())

(* Machine-readable form of an outcome, shared by the bench harness and the
   CLI so both write the same BENCH_table1.json rows. *)
let check_json (c : check) =
  Printf.sprintf
    "{\"label\": \"%s\", \"bound\": %s, \"measured\": %s, \"ok\": %b}"
    (Mac_sim.Export.json_escape c.label)
    (if Float.is_finite c.bound then Printf.sprintf "%.6g" c.bound else "null")
    (if Float.is_finite c.measured then Printf.sprintf "%.6g" c.measured
     else "null")
    c.ok

let outcome_json ~experiment (o : outcome) =
  Printf.sprintf
    "{\"experiment\": \"%s\", \"scenario\": \"%s\", \"verdict\": \"%s\", \
     \"passed\": %b, \"checks\": [%s], \"summary\": %s}"
    (Mac_sim.Export.json_escape experiment)
    (Mac_sim.Export.json_escape o.spec.id)
    (Mac_sim.Stability.verdict_to_string o.stability.verdict)
    o.passed
    (String.concat ", " (List.map check_json o.checks))
    (Mac_sim.Export.summary_json o.summary)
