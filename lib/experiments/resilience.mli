(** The resilience suite: Table-1 algorithms outside the clean model.

    The paper's model has no station failures and no channel noise; this
    suite measures, empirically, what each algorithm does when that
    assumption breaks. Every subject runs at an operating point safely
    inside its proven stability region, then the same run is repeated
    under a sweep of deterministic fault plans — seeded random
    crash-restart at two rates, crash-with-queue-drop, a scripted
    crash-stop, a scripted jam window, and random jamming — and the
    degradation columns of {!Mac_sim.Metrics.summary} (packets lost,
    post-fault queue growth, recovery time after the last fault) land in
    one report row per (algorithm, plan) cell.

    No outcome carries pass/fail checks: the suite reports degradation,
    it does not assert bounds the paper never claimed. *)

val suite :
  ?observe:Scenario.observer ->
  ?telemetry:Mac_sim.Telemetry.Fleet.t ->
  ?jobs:int ->
  scale:[ `Quick | `Full ] ->
  unit ->
  Mac_sim.Report.t * Scenario.outcome list
(** Run the full sweep (4 algorithms x 7 plans). Outcome ids are
    ["resilience/<algorithm>/<plan>"]; the observer, if given, is called
    once per cell with that id, and [telemetry] attaches a fleet probe to
    every cell. [jobs] (default 1) fans the cells out over that many
    worker domains; rows and outcomes keep declaration order and match a
    sequential run bit for bit. *)

val suite_s :
  ?observe:Scenario.observer ->
  ?telemetry:Mac_sim.Telemetry.Fleet.t ->
  ?jobs:int ->
  ?policy:Mac_sim.Supervisor.policy ->
  ?on_event:(Mac_sim.Supervisor.event -> unit) ->
  scale:[ `Quick | `Full ] ->
  unit ->
  Mac_sim.Report.t * (string * Scenario.outcome Mac_sim.Supervisor.outcome) list
(** Supervised {!suite}: each cell resolves to its own
    {!Mac_sim.Supervisor.outcome} under [policy] instead of the first
    exception aborting the sweep; the report contains rows for successful
    cells only (in declaration order). Retried cells rebuild their subject
    and fault plan from scratch, so retries replay bit-identically. *)
