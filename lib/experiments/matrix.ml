open Mac_channel

type algo_axis = {
  algo_id : string;
  n : int;
  k : int;
  algorithm : Algorithm.t;
}

type adversary_axis = {
  adv_id : string;
  rate : Qrat.t;
  burst : Qrat.t;
  pacing : Mac_adversary.Adversary.pacing;
  pattern : n:int -> Mac_adversary.Pattern.t;
}

type fault_axis = {
  fault_id : string;
  plan : n:int -> rounds:int -> Mac_faults.Fault_plan.t option;
}

(* Fixed (n, k) per algorithm: the matrix compares behaviours, not
   scalings, so each algorithm runs at a representative system size (the
   same sizes the Table-1 rows use). The broadcast family predates the
   energy cap and runs all stations on, hence k = n there. *)
let algorithms =
  [ { algo_id = "orchestra"; n = 6; k = 3;
      algorithm = (module Mac_routing.Orchestra : Algorithm.S) };
    { algo_id = "count-hop"; n = 6; k = 2;
      algorithm = (module Mac_routing.Count_hop) };
    { algo_id = "adjust-window"; n = 6; k = 2;
      algorithm = (module Mac_routing.Adjust_window) };
    { algo_id = "k-cycle"; n = 8; k = 4;
      algorithm = Mac_routing.K_cycle.algorithm ~n:8 ~k:4 };
    { algo_id = "k-clique"; n = 8; k = 4;
      algorithm = Mac_routing.K_clique.algorithm ~n:8 ~k:4 };
    { algo_id = "k-subsets"; n = 6; k = 3;
      algorithm = Mac_routing.K_subsets.algorithm ~n:6 ~k:3 () };
    { algo_id = "k-subsets-rrw"; n = 6; k = 3;
      algorithm = Mac_routing.K_subsets.algorithm ~discipline:`Rrw ~n:6 ~k:3 () };
    { algo_id = "pair-tdma"; n = 6; k = 2;
      algorithm = (module Mac_routing.Pair_tdma) };
    { algo_id = "random-leader"; n = 6; k = 3;
      algorithm = Mac_routing.Random_leader.algorithm ~seed:7 ~n:6 ~k:3 () };
    { algo_id = "rrw"; n = 6; k = 6;
      algorithm = (module Mac_broadcast.Rrw) };
    { algo_id = "of-rrw"; n = 6; k = 6;
      algorithm = (module Mac_broadcast.Of_rrw) };
    { algo_id = "mbtf"; n = 6; k = 6;
      algorithm = (module Mac_broadcast.Mbtf) };
    { algo_id = "fs-tree"; n = 6; k = 6;
      algorithm = Mac_broadcast.Ring_broadcast.full_sensing () };
    { algo_id = "ack-rr"; n = 6; k = 6;
      algorithm = Mac_broadcast.Ring_broadcast.ack_based () };
    { algo_id = "backoff"; n = 6; k = 6;
      algorithm = Mac_broadcast.Backoff.algorithm ~seed:11 () } ]

let adversaries =
  [ { adv_id = "trickle";
      rate = Qrat.make 1 8; burst = Qrat.of_int 2;
      pacing = Mac_adversary.Adversary.Greedy;
      pattern = (fun ~n -> Mac_adversary.Pattern.uniform ~n ~seed:901) };
    { adv_id = "burst-flood";
      rate = Qrat.make 1 2; burst = Qrat.of_int 12;
      pacing = Mac_adversary.Adversary.Greedy;
      pattern = (fun ~n -> Mac_adversary.Pattern.flood ~n ~victim:(n / 2)) };
    { adv_id = "paced-rr";
      rate = Qrat.make 1 4; burst = Qrat.of_int 6;
      pacing = Mac_adversary.Adversary.Paced { burst_at = Some 97 };
      pattern = (fun ~n -> Mac_adversary.Pattern.round_robin ~n) } ]

let faults =
  [ { fault_id = "clean"; plan = (fun ~n:_ ~rounds:_ -> None) };
    { fault_id = "jam-noise";
      plan =
        (fun ~n ~rounds ->
          Some
            (Mac_faults.Fault_plan.random ~seed:4242 ~n ~rounds
               ~jam_rate:0.01 ~noise_rate:0.002 ())) };
    { fault_id = "crash-restart";
      plan =
        (fun ~n ~rounds ->
          Some
            (Mac_faults.Fault_plan.random ~seed:2424 ~n ~rounds
               ~crash_rate:0.0015 ~jam_rate:0.002 ~restart_after:60
               ~queue:Mac_faults.Fault_plan.Retain ())) } ]

let cell_id a adv f =
  Printf.sprintf "matrix/%s/%s/%s" a.algo_id adv.adv_id f.fault_id

let scaled ~scale ~quick ~full =
  match scale with `Quick -> quick | `Full -> full

let cells_for ~only ~scale =
  let rounds = scaled ~scale ~quick:4_000 ~full:60_000 in
  let drain = scaled ~scale ~quick:1_500 ~full:12_000 in
  List.concat_map
    (fun a ->
      if not (only a.algo_id) then []
      else
        List.concat_map
          (fun adv ->
            List.map
              (fun f ->
                { Table1.checks = [];
                  spec =
                    Scenario.spec_q ~id:(cell_id a adv f)
                      ~algorithm:a.algorithm ~n:a.n ~k:a.k ~rate:adv.rate
                      ~burst:adv.burst ~pattern:(adv.pattern ~n:a.n)
                      ~pacing:adv.pacing ~rounds ~drain
                      ?faults:(f.plan ~n:a.n ~rounds) () })
              faults)
          adversaries)
    algorithms

let claim =
  "Cross-paper matrix: every algorithm (routing + broadcast families) x \
   every adversary x every fault plan, per-cell stability verdicts"

let row_for ~only = Table1.row ~id:"matrix" ~claim (cells_for ~only)
let row = row_for ~only:(fun _ -> true)

(* ---- Stability-frontier thresholds ---- *)

type frontier =
  | Bracket of Qrat.t * Qrat.t
  | Stable_to_ceiling of Qrat.t
  | Unstable_at_floor of Qrat.t

let threshold_id a adv = Printf.sprintf "matrix-th/%s/%s" a.algo_id adv.adv_id

let thresholds ?jobs ?policy ?on_event ?(only = fun _ -> true) ~scale () =
  let rounds = scaled ~scale ~quick:3_000 ~full:20_000 in
  let steps = scaled ~scale ~quick:5 ~full:8 in
  let lo = Qrat.make 1 64 and hi = Qrat.of_int 1 in
  let jobs_list =
    List.concat_map
      (fun a ->
        if not (only a.algo_id) then []
        else
          List.map
            (fun adv ->
              ( threshold_id a adv,
                fun ~heartbeat ->
                  let probe =
                    Sweep.stability_probe_q ~algorithm:a.algorithm ~n:a.n
                      ~k:a.k
                      ~pattern:(fun () -> adv.pattern ~n:a.n)
                      ~burst:adv.burst ~rounds ()
                  in
                  let probe ~rho =
                    let r = probe ~rho in
                    heartbeat ();
                    r
                  in
                  (* bisect_q insists on a (stable lo, unstable hi)
                     bracket; probe the endpoints first and classify the
                     degenerate frontiers instead of raising. *)
                  if not (probe ~rho:lo) then Unstable_at_floor lo
                  else if probe ~rho:hi then Stable_to_ceiling hi
                  else
                    let lo', hi' = Sweep.bisect_q ~steps ~lo ~hi probe in
                    Bracket (lo', hi') ))
            adversaries)
      algorithms
  in
  Scenario.run_batch_s ?jobs ?policy ?on_event jobs_list

let frontier_to_string = function
  | Bracket (lo, hi) ->
    Printf.sprintf "frontier in (%s, %s]" (Qrat.to_string lo)
      (Qrat.to_string hi)
  | Stable_to_ceiling hi -> Printf.sprintf "stable up to %s" (Qrat.to_string hi)
  | Unstable_at_floor lo ->
    Printf.sprintf "unstable already at %s" (Qrat.to_string lo)

let frontier_json ~label f =
  let kind, lo, hi =
    match f with
    | Bracket (lo, hi) ->
      ("bracket", Qrat.to_string lo, Qrat.to_string hi)
    | Stable_to_ceiling hi -> ("stable-to-ceiling", "", Qrat.to_string hi)
    | Unstable_at_floor lo -> ("unstable-at-floor", Qrat.to_string lo, "")
  in
  Printf.sprintf
    {|{"threshold": "%s", "kind": "%s", "stable_at": "%s", "unstable_at": "%s"}|}
    label kind lo hi

(* ---- Cell export ---- *)

let csv_header = "algorithm,adversary,fault,verdict,passed"

(* Every column is recoverable from a [Cached] replay as well as a
   [Fresh] outcome (id, verdict, passed), so a resumed sweep's CSV stays
   byte-identical to an uninterrupted one. *)
let csv_line r =
  let id = Scenario.resumed_id r in
  let algo, adv, fault =
    match String.split_on_char '/' id with
    | [ _; a; b; c ] -> (a, b, c)
    | _ -> (id, "", "")
  in
  Printf.sprintf "%s,%s,%s,%s,%b" algo adv fault (Scenario.resumed_verdict r)
    (Scenario.resumed_passed r)

let is_algo_id id = List.exists (fun a -> a.algo_id = id) algorithms
let algo_ids () = List.map (fun a -> a.algo_id) algorithms
