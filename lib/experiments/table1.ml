open Mac_adversary
open Mac_channel

type cell = {
  spec : Scenario.spec;
  checks : Scenario.checker list;
}

type t = {
  id : string;
  claim : string;
  cells : scale:[ `Quick | `Full ] -> cell list;
  run :
    ?observe:Scenario.observer ->
    ?telemetry:Mac_sim.Telemetry.Fleet.t ->
    ?jobs:int ->
    scale:[ `Quick | `Full ] ->
    unit ->
    Scenario.outcome list;
  run_resumable :
    ?observe:Scenario.observer ->
    ?telemetry:Mac_sim.Telemetry.Fleet.t ->
    ?jobs:int ->
    resume_dir:string ->
    scale:[ `Quick | `Full ] ->
    unit ->
    Scenario.resumed list;
  run_s :
    ?observe:Scenario.observer ->
    ?telemetry:Mac_sim.Telemetry.Fleet.t ->
    ?jobs:int ->
    ?policy:Mac_sim.Supervisor.policy ->
    ?on_event:(Mac_sim.Supervisor.event -> unit) ->
    ?inject:(string -> unit) ->
    scale:[ `Quick | `Full ] ->
    unit ->
    (string * Scenario.outcome Mac_sim.Supervisor.outcome) list;
  run_resumable_s :
    ?observe:Scenario.observer ->
    ?telemetry:Mac_sim.Telemetry.Fleet.t ->
    ?jobs:int ->
    ?policy:Mac_sim.Supervisor.policy ->
    ?on_event:(Mac_sim.Supervisor.event -> unit) ->
    ?inject:(string -> unit) ->
    resume_dir:string ->
    scale:[ `Quick | `Full ] ->
    unit ->
    (string * Scenario.resumed Mac_sim.Supervisor.outcome) list;
}

(* [run] is derived: evaluate the row's cells (fresh pattern state every
   call) and fan the runs out over the pool. [run_resumable] is the same
   shape, with each cell consulting the resume directory first.

   The supervised variants ([run_s]/[run_resumable_s]) return per-cell
   outcomes instead of aborting on the first exception. Each attempt of
   a cell re-evaluates [cells ~scale] from scratch — pattern cursors are
   mutable, so a retry that reused the spec from a previous partial
   attempt would not replay bit-identically. [?inject] is a fault hook
   (used by tests and `--inject-failure`): it is called with the cell id
   before each attempt and may raise. *)
let row ~id ~claim cells =
  let run ?observe ?telemetry ?jobs ~scale () =
    Scenario.run_batch ?jobs
      (List.map
         (fun c () -> Scenario.run ~checks:c.checks ?observe ?telemetry c.spec)
         (cells ~scale))
  in
  let run_resumable ?observe ?telemetry ?(jobs = 1) ~resume_dir ~scale () =
    Mac_sim.Pool.map ~jobs
      (List.map
         (fun c () ->
           Scenario.run_resumable ~checks:c.checks ?observe ?telemetry
             ~resume_dir ~experiment:id c.spec)
         (cells ~scale))
      (fun t -> t ())
  in
  let cell_ids ~scale = List.map (fun c -> c.spec.id) (cells ~scale) in
  let fresh_cell ~scale i = List.nth (cells ~scale) i in
  let run_s ?observe ?telemetry ?jobs ?policy ?on_event ?inject ~scale () =
    Scenario.run_batch_s ?jobs ?policy ?on_event
      (List.mapi
         (fun i cid ->
           ( cid,
             fun ~heartbeat ->
               (match inject with Some f -> f cid | None -> ());
               let c = fresh_cell ~scale i in
               Scenario.run ~checks:c.checks ?observe ?telemetry ~heartbeat
                 c.spec ))
         (cell_ids ~scale))
  in
  let run_resumable_s ?observe ?telemetry ?jobs ?policy ?on_event ?inject
      ~resume_dir ~scale () =
    let outcomes =
      Scenario.run_batch_s ?jobs ?policy ?on_event
        ~quarantined:(fun cid -> Scenario.quarantine_lookup ~resume_dir cid)
        (List.mapi
           (fun i cid ->
             ( cid,
               fun ~heartbeat ->
                 (match inject with Some f -> f cid | None -> ());
                 let c = fresh_cell ~scale i in
                 Scenario.run_resumable ~checks:c.checks ?observe ?telemetry
                   ~heartbeat ~resume_dir ~experiment:id c.spec ))
           (cell_ids ~scale))
    in
    (* A cell that exhausted its attempts is quarantined on disk: the
       next run of this sweep skips it up front instead of burning the
       whole retry budget again. *)
    List.iter
      (fun (cid, r) ->
        match r with
        | Error (Mac_sim.Supervisor.Failed { attempts; error }) ->
          Scenario.note_quarantined ~resume_dir ~id:cid ~failures:attempts
            ~error:(Printexc.to_string error)
        | Error (Mac_sim.Supervisor.Timed_out { attempts; timeout }) ->
          Scenario.note_quarantined ~resume_dir ~id:cid ~failures:attempts
            ~error:(Printf.sprintf "no heartbeat progress for %gs" timeout)
        | _ -> ())
      outcomes;
    outcomes
  in
  { id; claim; cells; run; run_resumable; run_s; run_resumable_s }

let scaled ~scale ~quick ~full = match scale with `Quick -> quick | `Full -> full

(* Saboteurs need the oblivious schedule over a horizon covering several
   periods of the duty pattern. *)
let required_schedule algorithm ~n ~k =
  match Scenario.schedule_of algorithm ~n ~k with
  | Some f -> f
  | None -> invalid_arg "saboteur needs an oblivious algorithm"

(* ------------------------------------------------------------------ *)
(* Row 1: Orchestra — stable at rate 1 with energy cap 3, queues
   bounded by 2n^3 + beta. *)

let orchestra_cells ~scale =
  let n = scaled ~scale ~quick:6 ~full:10 in
  let rounds = scaled ~scale ~quick:60_000 ~full:300_000 in
  let beta = 20.0 in
  let checks =
    [ Scenario.queues_under (Bounds.orchestra_queue_bound ~n ~beta);
      Scenario.cap_at_most 3;
      Scenario.stable;
      Scenario.clean ]
  in
  let cell id pattern =
    { checks;
      spec =
        Scenario.spec ~id ~algorithm:(module Mac_routing.Orchestra) ~n ~k:3
          ~rate:1.0 ~burst:beta ~pattern ~rounds ~drain:0 () }
  in
  [ cell "orchestra/flood" (Pattern.flood ~n ~victim:(n / 2));
    cell "orchestra/uniform" (Pattern.uniform ~n ~seed:101);
    cell "orchestra/to-busiest" (Pattern.to_busiest ~n);
    cell "orchestra/alternating"
      (Pattern.alternating ~src:1 ~dst_odd:2 ~dst_even:3) ]

(* ------------------------------------------------------------------ *)
(* Row 2: Theorem 2 — with energy cap 2 no algorithm sustains rate 1.
   Both cap-2 algorithms grow without bound at rate 1, under the
   adaptive Lemma-1 strategy and under a plain flood. *)

let cap2_impossible_cells ~scale =
  let n = scaled ~scale ~quick:6 ~full:10 in
  let rounds = scaled ~scale ~quick:80_000 ~full:250_000 in
  let checks = [ Scenario.cap_at_most 2; Scenario.unstable; Scenario.clean ] in
  let cell id algorithm pattern burst =
    { checks;
      spec =
        Scenario.spec ~id ~algorithm ~n ~k:2 ~rate:1.0 ~burst ~pattern ~rounds
          ~drain:0 () }
  in
  [ cell "cap2/count-hop-breaker" (module Mac_routing.Count_hop)
      (Saboteur.cap2_breaker ~n).Saboteur.pattern 1.0;
    cell "cap2/count-hop-flood" (module Mac_routing.Count_hop)
      (Pattern.flood ~n ~victim:1) 2.0;
    cell "cap2/adjust-window-flood" (module Mac_routing.Adjust_window)
      (Pattern.flood ~n ~victim:1) 2.0 ]

(* ------------------------------------------------------------------ *)
(* Row 3: Count-Hop — universal with energy cap 2; latency at most
   2(n^2+beta)/(1-rho) (paper constant; the implementable constant is
   2(n(2n-3)+beta)/(1-rho), see DESIGN.md). *)

let count_hop_cells ~scale =
  let rounds = scaled ~scale ~quick:60_000 ~full:250_000 in
  let n = scaled ~scale ~quick:6 ~full:10 in
  let cell ~rho ~beta id pattern =
    { checks =
        [ Scenario.latency_under (Bounds.count_hop_latency_impl ~n ~rho ~beta);
          Scenario.cap_at_most 2;
          Scenario.stable;
          Scenario.delivered_all;
          Scenario.clean ];
      spec =
        Scenario.spec ~id ~algorithm:(module Mac_routing.Count_hop) ~n ~k:2
          ~rate:rho ~burst:beta ~pattern ~rounds () }
  in
  [ cell ~rho:0.5 ~beta:2.0 "count-hop/uniform-0.5" (Pattern.uniform ~n ~seed:111);
    cell ~rho:0.9 ~beta:2.0 "count-hop/uniform-0.9" (Pattern.uniform ~n ~seed:112);
    cell ~rho:0.9 ~beta:10.0 "count-hop/flood-0.9" (Pattern.flood ~n ~victim:2);
    cell ~rho:0.8 ~beta:2.0 "count-hop/hotspot-0.8"
      (Pattern.hotspot ~n ~seed:113 ~hot:1 ~bias:0.7) ]

(* ------------------------------------------------------------------ *)
(* Row 4: Adjust-Window — plain-packet universal with energy cap 2;
   latency (18n^3 lg^2 n + 2beta)/(1-rho) asymptotically; executable
   bound: twice the first window size absorbing the adversary. *)

let adjust_window_cells ~scale =
  let cell ~n ~rho ~beta ~rounds id pattern =
    { checks =
        [ Scenario.latency_under (Bounds.adjust_window_latency_impl ~n ~rho ~beta);
          Scenario.cap_at_most 2;
          Scenario.stable;
          Scenario.delivered_all;
          Scenario.clean ];
      spec =
        Scenario.spec ~id ~algorithm:(module Mac_routing.Adjust_window) ~n ~k:2
          ~rate:rho ~burst:beta ~pattern ~rounds
          ~drain:(Bounds.adjust_window_latency_impl ~n ~rho ~beta |> int_of_float)
          () }
  in
  match scale with
  | `Quick ->
    [ cell ~n:4 ~rho:0.3 ~beta:2.0 ~rounds:80_000 "adjust-window/uniform-0.3"
        (Pattern.uniform ~n:4 ~seed:121) ]
  | `Full ->
    [ cell ~n:4 ~rho:0.3 ~beta:2.0 ~rounds:200_000 "adjust-window/uniform-0.3"
        (Pattern.uniform ~n:4 ~seed:121);
      cell ~n:4 ~rho:0.6 ~beta:2.0 ~rounds:300_000 "adjust-window/flood-0.6"
        (Pattern.flood ~n:4 ~victim:2);
      cell ~n:6 ~rho:0.5 ~beta:2.0 ~rounds:400_000 "adjust-window/uniform-0.5"
        (Pattern.uniform ~n:6 ~seed:122) ]

(* ------------------------------------------------------------------ *)
(* Row 5: k-Cycle — latency (32+beta)n below rate (k-1)/(n-1), cap k.
   Operating points are exact fractions of the exact threshold: frac
   9/10 of rate 3/11 is 27/110, not a float neighbour of it. *)

let k_cycle_cells ~scale =
  let n = 12 in
  let rounds = scaled ~scale ~quick:60_000 ~full:200_000 in
  let cell ~k ~frac ~beta id pattern =
    let rho = Qrat.mul frac (Bounds.k_cycle_rate_q ~n ~k) in
    { checks =
        (* The paper's flat (32+beta)n holds away from the threshold; near it
           the constant degrades (EXPERIMENTS.md) — at half rate it must hold. *)
        (if Qrat.compare frac (Qrat.make 1 2) <= 0 then
           [ Scenario.latency_under
               (Bounds.k_cycle_latency ~n ~beta:(Qrat.to_float beta)) ]
         else [])
        @ [ Scenario.cap_at_most k;
            Scenario.stable;
            Scenario.delivered_all;
            Scenario.clean ];
      spec =
        Scenario.spec_q ~id ~algorithm:(Mac_routing.K_cycle.algorithm ~n ~k) ~n
          ~k ~rate:rho ~burst:beta ~pattern ~rounds () }
  in
  let half = Qrat.make 1 2 and near = Qrat.make 9 10 in
  [ cell ~k:4 ~frac:half ~beta:(Qrat.of_int 2) "k-cycle/k4-half"
      (Pattern.uniform ~n ~seed:131);
    cell ~k:4 ~frac:near ~beta:(Qrat.of_int 2) "k-cycle/k4-near"
      (Pattern.flood ~n ~victim:5);
    cell ~k:6 ~frac:half ~beta:(Qrat.of_int 2) "k-cycle/k6-half"
      (Pattern.uniform ~n ~seed:132);
    cell ~k:6 ~frac:near ~beta:(Qrat.of_int 8) "k-cycle/k6-near"
      (Pattern.round_robin ~n) ]

(* ------------------------------------------------------------------ *)
(* Row 6: Theorem 6 — no k-energy-oblivious algorithm is stable above
   k/n: the min-duty station cannot keep up. *)

let oblivious_impossible_cells ~scale =
  let n = 12 in
  let rounds = scaled ~scale ~quick:80_000 ~full:200_000 in
  let horizon = scaled ~scale ~quick:30_000 ~full:60_000 in
  let checks = [ Scenario.unstable; Scenario.clean ] in
  let cell id algorithm ~k =
    (* 6/5 of the exact upper bound k/n: unambiguously above it. *)
    let rho = Qrat.mul (Qrat.make 6 5) (Bounds.oblivious_rate_upper_q ~n ~k) in
    let schedule = required_schedule algorithm ~n ~k in
    let choice = Saboteur.min_duty ~n ~horizon ~schedule in
    { checks;
      spec =
        Scenario.spec_q ~id ~algorithm ~n ~k ~rate:rho ~burst:(Qrat.of_int 2)
          ~pattern:choice.Saboteur.pattern ~rounds ~drain:0 () }
  in
  [ cell "obl/k-cycle-k4" (Mac_routing.K_cycle.algorithm ~n ~k:4) ~k:4;
    cell "obl/k-clique-k4" (Mac_routing.K_clique.algorithm ~n ~k:4) ~k:4 ]

(* ------------------------------------------------------------------ *)
(* Row 7: k-Clique — direct, latency 8(n^2/k)(1+beta/2k) up to rate
   k^2/(2n(2n-k)). *)

let k_clique_cells ~scale =
  let n = 12 in
  let rounds = scaled ~scale ~quick:80_000 ~full:250_000 in
  let cell ~k ~beta id pattern =
    let rho = Bounds.k_clique_latency_rate_q ~n ~k in
    { checks =
        [ Scenario.latency_under (Bounds.k_clique_latency ~n ~k ~beta);
          Scenario.cap_at_most k;
          Scenario.stable;
          Scenario.delivered_all;
          Scenario.clean ];
      spec =
        Scenario.spec_q ~id ~algorithm:(Mac_routing.K_clique.algorithm ~n ~k)
          ~n ~k ~rate:rho ~burst:(Qrat.of_float beta) ~pattern ~rounds () }
  in
  [ cell ~k:4 ~beta:2.0 "k-clique/k4-uniform" (Pattern.uniform ~n ~seed:141);
    cell ~k:4 ~beta:2.0 "k-clique/k4-pair" (Pattern.pair_flood ~src:1 ~dst:2);
    cell ~k:6 ~beta:6.0 "k-clique/k6-uniform" (Pattern.uniform ~n ~seed:142) ]

(* ------------------------------------------------------------------ *)
(* Row 8: k-Subsets — stable at exactly k(k-1)/(n(n-1)) with queues
   under 2 C(n,k)(n^2+beta). The operating rate IS the threshold — the
   strongest case for exact admission, since one extra granted packet
   per window tips the row unstable. *)

let k_subsets_cells ~scale =
  let n = scaled ~scale ~quick:6 ~full:8 in
  let k = 3 in
  let rounds = scaled ~scale ~quick:80_000 ~full:300_000 in
  let rho = Bounds.k_subsets_rate_q ~n ~k in
  let cell ?(discipline = `Mbtf) id pattern ~beta =
    { checks =
        [ Scenario.queues_under (Bounds.k_subsets_queue_bound ~n ~k ~beta);
          Scenario.cap_at_most k;
          Scenario.stable;
          Scenario.clean ];
      spec =
        Scenario.spec_q ~id
          ~algorithm:(Mac_routing.K_subsets.algorithm ~discipline ~n ~k ())
          ~n ~k ~rate:rho ~burst:(Qrat.of_float beta) ~pattern ~rounds ~drain:0
          () }
  in
  [ cell "k-subsets/pair" (Pattern.pair_flood ~src:1 ~dst:2) ~beta:4.0;
    cell "k-subsets/uniform" (Pattern.uniform ~n ~seed:151) ~beta:4.0;
    cell ~discipline:`Rrw "k-subsets/rrw-uniform" (Pattern.uniform ~n ~seed:152)
      ~beta:4.0 ]

(* ------------------------------------------------------------------ *)
(* Row 9: Theorem 9 — no oblivious direct algorithm is stable above
   k(k-1)/(n(n-1)): the least co-scheduled pair drowns. *)

let oblivious_direct_impossible_cells ~scale =
  let n = scaled ~scale ~quick:6 ~full:8 in
  let k = 3 in
  let rounds = scaled ~scale ~quick:100_000 ~full:300_000 in
  let checks = [ Scenario.unstable; Scenario.clean ] in
  let gamma = Mac_routing.Combi.binomial n k in
  let cap = Bounds.k_subsets_rate_q ~n ~k in
  let rho = Qrat.mul (Qrat.make 5 4) cap in
  let cell id algorithm ~horizon =
    let schedule = required_schedule algorithm ~n ~k in
    let choice = Saboteur.min_pair ~n ~horizon ~schedule in
    { checks;
      spec =
        Scenario.spec_q ~id ~algorithm ~n ~k ~rate:rho ~burst:(Qrat.of_int 4)
          ~pattern:choice.Saboteur.pattern ~rounds ~drain:0 () }
  in
  [ cell "obl-dir/k-subsets"
      (Mac_routing.K_subsets.algorithm ~n ~k ())
      ~horizon:(20 * gamma);
    cell "obl-dir/pair-tdma" (module Mac_routing.Pair_tdma)
      ~horizon:(4 * n * (n - 1)) ]

let all =
  [ row ~id:"T1.orchestra"
      ~claim:"Orchestra: rate 1, cap 3, queues <= 2n^3+beta (Thm 1)"
      orchestra_cells;
    row ~id:"T1.cap2-impossible"
      ~claim:"No cap-2 algorithm is stable at rate 1 (Thm 2)"
      cap2_impossible_cells;
    row ~id:"T1.count-hop"
      ~claim:"Count-Hop: cap 2, universal, latency <= 2(n^2+b)/(1-r) (Thm 3)"
      count_hop_cells;
    row ~id:"T1.adjust-window"
      ~claim:"Adjust-Window: plain packets, cap 2, universal (Thm 4)"
      adjust_window_cells;
    row ~id:"T1.k-cycle"
      ~claim:"k-Cycle: latency (32+b)n below rate (k-1)/(n-1) (Thm 5)"
      k_cycle_cells;
    row ~id:"T1.obl-impossible"
      ~claim:"No k-oblivious algorithm is stable above k/n (Thm 6)"
      oblivious_impossible_cells;
    row ~id:"T1.k-clique"
      ~claim:"k-Clique: direct, latency 8(n^2/k)(1+b/2k) (Thm 7)"
      k_clique_cells;
    row ~id:"T1.k-subsets"
      ~claim:"k-Subsets: stable at k(k-1)/(n(n-1)), queues <= 2C(n,k)(n^2+b) (Thm 8)"
      k_subsets_cells;
    row ~id:"T1.obl-dir-impossible"
      ~claim:"No oblivious direct algorithm beats k(k-1)/(n(n-1)) (Thm 9)"
      oblivious_direct_impossible_cells ]

let find id = List.find (fun t -> t.id = id) all

let catalog ~scale =
  List.concat_map (fun t -> List.map (fun c -> c.spec) (t.cells ~scale)) all
