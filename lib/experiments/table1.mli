(** The paper's Table 1, experiment by experiment.

    Each entry reproduces one row (an algorithm's performance claims, or an
    impossibility) as a set of simulated scenarios whose checks encode the
    claim: measured latency/queues under the instantiated bound, the energy
    cap respected exactly, stability or forced instability as stated, and a
    protocol-clean run. [`Quick] scale is used by the test suite, [`Full] by
    the benchmark harness. *)

type t = {
  id : string;     (** e.g. "T1.orchestra" *)
  claim : string;  (** the paper's claim, humanly readable *)
  run :
    ?observe:Scenario.observer ->
    ?jobs:int ->
    scale:[ `Quick | `Full ] ->
    unit ->
    Scenario.outcome list;
  (** [observe] is forwarded to every {!Scenario.run} of the row, keyed by
      scenario id — attach tracing or event recording per scenario.
      [jobs] (default 1) fans the row's scenarios out over that many worker
      domains via {!Scenario.run_batch}; outcomes keep their listed order
      and are bit-identical to a sequential run. *)
}

val all : t list

val find : string -> t
(** Lookup by [id]; raises [Not_found]. *)
