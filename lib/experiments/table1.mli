(** The paper's Table 1, experiment by experiment.

    Each entry reproduces one row (an algorithm's performance claims, or an
    impossibility) as a set of simulated scenarios whose checks encode the
    claim: measured latency/queues under the instantiated bound, the energy
    cap respected exactly, stability or forced instability as stated, and a
    protocol-clean run. [`Quick] scale is used by the test suite, [`Full] by
    the benchmark harness.

    A row is a {e catalog of cells} — (scenario spec, checks) pairs — and
    [run] simply executes them. Exposing the cells lets other harnesses
    (the differential verifier, notably) re-run the exact Table-1
    configurations through independent machinery. *)

type cell = {
  spec : Scenario.spec;
  checks : Scenario.checker list;
}

type t = {
  id : string;     (** e.g. "T1.orchestra" *)
  claim : string;  (** the paper's claim, humanly readable *)
  cells : scale:[ `Quick | `Full ] -> cell list;
  (** The row's scenarios at the given scale. Every call builds fresh
      pattern state, so each returned spec can drive exactly one run;
      call again for another (identical) batch. *)
  run :
    ?observe:Scenario.observer ->
    ?telemetry:Mac_sim.Telemetry.Fleet.t ->
    ?jobs:int ->
    scale:[ `Quick | `Full ] ->
    unit ->
    Scenario.outcome list;
  (** Runs the row's cells. [observe] is forwarded to every
      {!Scenario.run} of the row, keyed by scenario id — attach tracing or
      event recording per scenario. [telemetry] is likewise forwarded, so
      every scenario of the row publishes live progress into the fleet.
      [jobs] (default 1) fans the row's scenarios out over that many
      worker domains via {!Scenario.run_batch}; outcomes keep their
      listed order and are bit-identical to a sequential run. *)
  run_resumable :
    ?observe:Scenario.observer ->
    ?telemetry:Mac_sim.Telemetry.Fleet.t ->
    ?jobs:int ->
    resume_dir:string ->
    scale:[ `Quick | `Full ] ->
    unit ->
    Scenario.resumed list;
  (** Like [run], but each cell goes through {!Scenario.run_resumable}
      keyed by the row id: cells already recorded in [resume_dir] are
      replayed as [Cached] without simulating, so a killed sweep restarted
      with the same directory re-runs only its unfinished scenarios and
      reproduces the original JSON rows byte-for-byte. *)
  run_s :
    ?observe:Scenario.observer ->
    ?telemetry:Mac_sim.Telemetry.Fleet.t ->
    ?jobs:int ->
    ?policy:Mac_sim.Supervisor.policy ->
    ?on_event:(Mac_sim.Supervisor.event -> unit) ->
    ?inject:(string -> unit) ->
    scale:[ `Quick | `Full ] ->
    unit ->
    (string * Scenario.outcome Mac_sim.Supervisor.outcome) list;
  (** Supervised [run]: each cell resolves to its own
      {!Mac_sim.Supervisor.outcome} under [policy] instead of the first
      exception aborting the row. Every attempt of a cell re-evaluates the
      row's cell list from scratch, so retried cells replay bit-identically
      to a first run. [inject] is a fault hook (tests, [--inject-failure]):
      called with the cell id before each attempt, and may raise. *)
  run_resumable_s :
    ?observe:Scenario.observer ->
    ?telemetry:Mac_sim.Telemetry.Fleet.t ->
    ?jobs:int ->
    ?policy:Mac_sim.Supervisor.policy ->
    ?on_event:(Mac_sim.Supervisor.event -> unit) ->
    ?inject:(string -> unit) ->
    resume_dir:string ->
    scale:[ `Quick | `Full ] ->
    unit ->
    (string * Scenario.resumed Mac_sim.Supervisor.outcome) list;
  (** Supervised [run_resumable]. Additionally: cells quarantined in
      [resume_dir] (see {!Scenario.quarantine_lookup}) resolve as
      [Error Quarantined] without running, and cells that exhaust their
      attempts here are recorded as quarantined for the next resume. *)
}

val row :
  id:string ->
  claim:string ->
  (scale:[ `Quick | `Full ] -> cell list) ->
  t
(** Assemble a row from a cell catalog: the returned [t] carries the full
    run/run_resumable/run_s/run_resumable_s machinery (parallel batches,
    byte-identical resume, supervision with quarantine) over those cells.
    Other experiment drivers (the cross-paper {!Matrix}, notably) build
    their sweeps with this instead of reimplementing batch plumbing. *)

val all : t list

val find : string -> t
(** Lookup by [id]; raises [Not_found]. *)

val catalog : scale:[ `Quick | `Full ] -> Scenario.spec list
(** Every scenario spec of every row, in row order — fresh pattern state
    per call (call twice to drive two independent runs of the same
    configurations, e.g. engine vs oracle). *)
