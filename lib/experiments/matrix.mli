(** The cross-paper algorithm matrix (ROADMAP item 4).

    Table 1 reproduces the source paper's rows one algorithm at a time;
    this driver crosses {e every} algorithm in the repository — the
    routing algorithms of the source paper plus the broadcast families of
    the sibling papers (withholding rings, MBTF, full-sensing tree
    search, acknowledgment-based TDMA, randomised backoff) — with a small
    set of named adversaries (rate/burst/pacing/pattern) and fault plans
    (clean channel, jam+noise, crash+restart), and reports a stability
    verdict per cell.

    The matrix is a {!Table1.t} assembled with {!Table1.row}, so it
    inherits the whole batch toolchain: parallel jobs with bit-identical
    output, byte-identical resume from a marker directory, and supervised
    execution with retries/watchdog/quarantine. Cells carry no pass/fail
    checks — the verdicts are the data — so [passed] only reflects clean
    completion.

    An optional second stage measures each (algorithm, adversary)
    stability frontier with {!Sweep.bisect_q} on a clean channel. *)

type algo_axis = {
  algo_id : string;
  n : int;
  k : int;
  algorithm : Mac_channel.Algorithm.t;
}

type adversary_axis = {
  adv_id : string;
  rate : Mac_channel.Qrat.t;
  burst : Mac_channel.Qrat.t;
  pacing : Mac_adversary.Adversary.pacing;
  pattern : n:int -> Mac_adversary.Pattern.t;
      (** Fresh pattern state per call — one call per run. *)
}

type fault_axis = {
  fault_id : string;
  plan : n:int -> rounds:int -> Mac_faults.Fault_plan.t option;
}

val algorithms : algo_axis list
val adversaries : adversary_axis list
val faults : fault_axis list

val cell_id : algo_axis -> adversary_axis -> fault_axis -> string
(** ["matrix/<algo>/<adversary>/<fault>"] — also the resume-marker key. *)

val row : Table1.t
(** The full matrix as a Table-1 row (id ["matrix"]). *)

val row_for : only:(string -> bool) -> Table1.t
(** The matrix restricted to the algorithms whose [algo_id] satisfies
    [only] — smoke jobs and tests slice the matrix with this. *)

(** Where an (algorithm, adversary) stability frontier was located. *)
type frontier =
  | Bracket of Mac_channel.Qrat.t * Mac_channel.Qrat.t
      (** stable at the first rate, unstable at the second *)
  | Stable_to_ceiling of Mac_channel.Qrat.t
      (** stable even at the probe ceiling (rate 1) *)
  | Unstable_at_floor of Mac_channel.Qrat.t
      (** unstable already at the probe floor (rate 1/64) *)

val threshold_id : algo_axis -> adversary_axis -> string
(** ["matrix-th/<algo>/<adversary>"]. *)

val thresholds :
  ?jobs:int ->
  ?policy:Mac_sim.Supervisor.policy ->
  ?on_event:(Mac_sim.Supervisor.event -> unit) ->
  ?only:(string -> bool) ->
  scale:[ `Quick | `Full ] ->
  unit ->
  (string * frontier Mac_sim.Supervisor.outcome) list
(** Bisect each (algorithm, adversary) frontier on a clean channel,
    supervised (each bisection is one labelled job; probes heartbeat the
    watchdog). Endpoints are probed first, so degenerate frontiers come
    back as [Stable_to_ceiling]/[Unstable_at_floor] instead of
    [Invalid_argument] from {!Sweep.bisect_q}. Deterministic: results
    depend only on the axes and [scale]. *)

val frontier_to_string : frontier -> string
val frontier_json : label:string -> frontier -> string

val csv_header : string

val csv_line : Scenario.resumed -> string
(** One cell as a CSV line (algorithm, adversary, fault, verdict,
    passed); derivable from both [Fresh] and [Cached] cells, so resumed
    sweeps export byte-identical CSV. *)

val is_algo_id : string -> bool
val algo_ids : unit -> string list
