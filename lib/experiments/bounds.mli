(** The quantitative claims of the paper's Table 1, as executable formulas.

    Each function instantiates a bound at concrete (n, k, ρ, β); the
    benchmark harness prints measured values against them. Where our
    faithful implementation necessarily differs from the paper's idealised
    accounting (see DESIGN.md), an [_impl] variant gives the bound with the
    implementable constant, and EXPERIMENTS.md discusses the gap. *)

(** {1 Maximum throughput (§3)} *)

val orchestra_queue_bound : n:int -> beta:float -> float
(** Theorem 1: at most 2n³ + β packets queued, at injection rate 1. *)

val orchestra_big_threshold : n:int -> int
(** A station is big with at least n² − 1 old packets. *)

(** {1 Universal routing (§4)} *)

val count_hop_latency : n:int -> rho:float -> beta:float -> float
(** Theorem 3: 2(n² + β)/(1 − ρ). *)

val count_hop_latency_impl : n:int -> rho:float -> beta:float -> float
(** Same shape with the implementable per-phase overhead: the paper counts
    (n−1)² coordination rounds per phase, but tracking stage totals under
    energy cap 2 needs n(2n−3) of them (DESIGN.md interpretation 2), giving
    2(n(2n−3) + β)/(1 − ρ). *)

val adjust_window_latency : n:int -> rho:float -> beta:float -> float
(** Theorem 4: (18n³·lg²n + 2β)/(1 − ρ), for n sufficiently large. *)

val adjust_window_latency_impl : n:int -> rho:float -> beta:float -> float
(** Twice the first window size large enough to absorb the adversary:
    2·L where L is the smallest doubling of the initial window with
    (1 − ρ)L − 9n³·lgL ≥ β. The executable latency bound for small n. *)

(** {1 Oblivious indirect (§5)} *)

val k_cycle_rate_q : n:int -> k:int -> Mac_channel.Qrat.t
(** Theorem 5 applies below (k−1)/(n−1) (with the effective k), as the
    exact rational. The threshold rates in this section are all ratios of
    small integers; the [_q] variants return them exactly so scenarios and
    sweeps can sit precisely on (or ε away from) a frontier. *)

val k_cycle_rate : n:int -> k:int -> float
(** [Qrat.to_float] of {!k_cycle_rate_q}. *)

val k_cycle_rate_impl_q : n:int -> k:int -> Mac_channel.Qrat.t
(** Exact form of {!k_cycle_rate_impl}: 1/ℓ for ℓ groups. *)

val k_cycle_rate_impl : n:int -> k:int -> float
(** The frontier k-Cycle's construction actually sustains: a group serving
    a flood gets 1/ℓ of the rounds, ℓ = ⌈n/(k−1)⌉ groups, so the
    implementable threshold is 1/ℓ = (k−1)/n in the divisible case —
    strictly below the paper's (k−1)/(n−1) (its ±1 is unachievable by its
    own group count; measured exactly in figures F1/F5). *)

val k_cycle_latency : n:int -> beta:float -> float
(** Theorem 5: (32 + β)·n. *)

val oblivious_rate_upper_q : n:int -> k:int -> Mac_channel.Qrat.t
(** Theorem 6: no k-energy-oblivious algorithm is stable above k/n,
    exactly. *)

val oblivious_rate_upper : n:int -> k:int -> float
(** [Qrat.to_float] of {!oblivious_rate_upper_q}. *)

(** {1 Oblivious direct (§6)} *)

val k_clique_latency_rate_q : n:int -> k:int -> Mac_channel.Qrat.t
(** Theorem 7's latency bound applies up to k²/(2n(2n−k)) (effective k),
    exactly. *)

val k_clique_latency_rate : n:int -> k:int -> float
(** [Qrat.to_float] of {!k_clique_latency_rate_q}. *)

val k_clique_stable_rate_q : n:int -> k:int -> Mac_channel.Qrat.t
(** Theorem 7: bounded latency below k²/(n(2n−k)) = 1/m (effective k),
    exactly. *)

val k_clique_stable_rate : n:int -> k:int -> float
(** [Qrat.to_float] of {!k_clique_stable_rate_q}. *)

val k_clique_latency : n:int -> k:int -> beta:float -> float
(** Theorem 7: 8(n²/k)(1 + β/2k) (effective k). *)

val k_subsets_rate_q : n:int -> k:int -> Mac_channel.Qrat.t
(** Theorems 8 and 9: the optimal oblivious-direct rate k(k−1)/(n(n−1)),
    exactly. *)

val k_subsets_rate : n:int -> k:int -> float
(** [Qrat.to_float] of {!k_subsets_rate_q}. *)

val k_subsets_queue_bound : n:int -> k:int -> beta:float -> float
(** Theorem 8: at most 2·C(n,k)(n² + β) queued packets. *)
