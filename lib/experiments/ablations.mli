(** Ablation studies for the design choices DESIGN.md calls out.

    Each ablation swaps one mechanism of an algorithm for a naive variant
    and reruns the row's worst adversary, showing the mechanism is
    load-bearing (or quantifying how much slack the paper's constant has):

    - A1: k-Cycle's activity-segment length δ = ⌈4(n−1)k/(n−k)⌉, scaled
      from 1/8× to 4×.
    - A2: Orchestra's big-conductor threshold n²−1, against "never big"
      (move-big-to-front disabled — Theorem 1's mechanism removed) and an
      eager threshold of n.
    - A3: k-Subsets' balanced thread allocation against first-fit, at the
      optimal rate the balance is supposed to buy. *)

type t = {
  id : string;
  title : string;
  run :
    ?jobs:int ->
    scale:[ `Quick | `Full ] ->
    unit ->
    Mac_sim.Report.t * Scenario.outcome list;
  (** [jobs] (default 1) fans the ablation's grid cells out over that many
      worker domains; rows and outcomes keep declaration order and match a
      sequential run bit for bit. *)
}

val delta : t
val big_threshold : t
val allocation : t

val all : t list
