(** The Count-Hop algorithm (paper §4.1): direct routing with control bits,
    energy cap 2, universally stable with latency at most 2(n²+β)/(1−ρ) for
    every injection rate ρ < 1.

    Station 0 is the coordinator. Execution is structured into phases; the
    packets present when a phase starts are the phase's old packets and are
    the only ones transmitted during it. A phase has one stage per receiving
    station v, made of three substages:

    + every station other than v and the coordinator transmits, one round
      each, the number of its old packets destined to v (coordinator
      listening);
    + the coordinator tells every station, one round each, its transmission
      offset and the stage total (the recipient listening) — the total lets
      every station track the schedule without hearing anything else;
    + the owners transmit their old packets for v back-to-back in offset
      order while v listens; the coordinator's own packets for v go first
      (the paper leaves coordinator-held packets unspecified; see DESIGN.md
      interpretation 2).

    The first phase is n silent rounds with every station off. At most two
    stations are ever on: (transmitter, coordinator), (coordinator,
    recipient) or (transmitter, v). *)

include Mac_channel.Algorithm.S
