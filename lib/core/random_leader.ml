open Mac_channel

(* A seeded stateless mix (SplitMix64 finaliser) shared by all stations:
   the round's awake subset is the k smallest stations under the keyed
   ranking, recomputable by anyone from (seed, round). *)
let mix ~seed ~round ~station =
  let z = Int64.of_int (((seed * 0x3C6EF372) + (round * 0x9E3779B9)) lxor (station * 0x85EBCA6B)) in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.to_int (Int64.shift_right_logical (Int64.logxor z (Int64.shift_right_logical z 31)) 1)

(* Rank of a station in the round's keyed order; awake iff among the k
   smallest. Ties are broken by the station name mixed into the key. *)
let awake ~seed ~n ~k ~round station =
  let my_key = mix ~seed ~round ~station in
  let smaller = ref 0 in
  for other = 0 to n - 1 do
    if other <> station && mix ~seed ~round ~station:other < my_key then
      incr smaller
  done;
  !smaller < k

(* Leadership rotates through the awake set by round parity, so every
   station leads on 1/k of its awake rounds (a fixed choice such as "the
   smallest awake name" would starve high names entirely: the minimum of a
   random k-subset is never a large name). *)
let leader ~seed ~n ~k ~round =
  let want = round mod k in
  let seen = ref 0 in
  let found = ref (-1) in
  for station = 0 to n - 1 do
    if !found < 0 && awake ~seed ~n ~k ~round station then begin
      if !seen = want then found := station;
      incr seen
    end
  done;
  !found

type state = { me : int; n : int; k : int; seed : int }

let algorithm ?(seed = 0) ~n ~k () =
  if k < 2 || k > n then invalid_arg "Random_leader: need 2 <= k <= n";
  let module M = struct
    type nonrec state = state

    let name = Printf.sprintf "random-leader(k=%d)" k
    let plain_packet = true
    let direct = true
    let oblivious = true
    let required_cap ~n:_ ~k:_ = k

    let static_schedule =
      Some (fun ~n:_ ~k:_ ~me ~round -> awake ~seed ~n ~k ~round me)

    let create ~n:n' ~k:_ ~me =
      assert (n' = n);
      { me; n; k; seed }

    let on_duty s ~round ~queue:_ = awake ~seed ~n:s.n ~k:s.k ~round s.me

    let act s ~round ~queue =
      if leader ~seed ~n:s.n ~k:s.k ~round <> s.me then Action.Listen
      else begin
        let deliverable (p : Packet.t) =
          p.dst <> s.me && awake ~seed ~n:s.n ~k:s.k ~round p.dst
        in
        match Pqueue.oldest_such queue deliverable with
        | Some p -> Action.Transmit (Message.packet_only p)
        | None -> Action.Listen
      end

    let observe _ ~round:_ ~queue:_ ~feedback:_ = Reaction.No_reaction

    let offline_tick _ ~round:_ ~queue:_ = ()

    let sparse = None

    include Algorithm.Marshal_codec (struct
      type nonrec state = state
    end)
  end in
  (module M : Algorithm.S)
