(** Combinatorial helpers shared by the routing algorithms. *)

val ceil_div : int -> int -> int
(** [ceil_div a b] = ⌈a/b⌉ for positive [b]. *)

val lg : int -> int
(** The paper's lg x = ⌈log₂(x+1)⌉, for x >= 0. *)

val binomial : int -> int -> int
(** [binomial n k] = C(n,k); 0 outside the valid range. Overflow-unchecked —
    intended for the small n of simulations. *)

val k_subsets : n:int -> k:int -> int array array
(** All k-element subsets of [{0..n-1}] in lexicographic order, each sorted
    ascending. The enumeration fixed by k-Subsets. *)

val subset_pairs : sets:int -> (int * int) array
(** All unordered pairs (a, b), a < b, of [{0..sets-1}] in lexicographic
    order. The pair enumeration fixed by k-Clique. *)
