(** The set-pair structure of the k-Clique algorithm (paper §6).

    Stations are partitioned into 2n/k disjoint sets of k/2 consecutive
    stations; every unordered pair of sets forms a clique of k stations.
    Pairs are active round-robin, one round each. The paper assumes k even,
    k | 2n and k ≤ 2n/3; [effective_k] finds the largest such k' ≤ k
    (decreasing k only ever switches fewer stations on). *)

type t = private {
  n : int;
  k : int;                   (** effective clique size (even, divides 2n) *)
  set_size : int;            (** k/2 *)
  sets : int;                (** 2n/k *)
  pairs : (int * int) array; (** lexicographic pairs of set indices *)
  members : int array array; (** per pair, its k stations ascending *)
}

val effective_k : n:int -> k:int -> int
(** Requires [n >= 3] and [2 <= k < n]. Always succeeds (k' = 2 divides 2n). *)

val make : n:int -> k:int -> t

val pair_count : t -> int

val active_pair : t -> round:int -> int

val set_of_station : t -> int -> int

val member_pairs : t -> int -> int list
(** Indices of pairs containing a station (those pairing its set). *)

val in_pair : t -> pair:int -> int -> bool
