let ceil_div a b =
  assert (b > 0);
  (a + b - 1) / b

let lg x =
  assert (x >= 0);
  let rec go acc v = if v = 0 then acc else go (acc + 1) (v lsr 1) in
  go 0 x
(* ⌈log₂(x+1)⌉ equals the bit length of x. *)

let binomial n k =
  if k < 0 || k > n then 0
  else begin
    let k = min k (n - k) in
    let num = ref 1 in
    for i = 0 to k - 1 do
      num := !num * (n - i) / (i + 1)
    done;
    !num
  end

let k_subsets ~n ~k =
  if k < 0 || k > n then invalid_arg "Combi.k_subsets";
  let result = ref [] in
  let current = Array.make k 0 in
  let rec fill pos from =
    if pos = k then result := Array.copy current :: !result
    else
      for v = from to n - (k - pos) do
        current.(pos) <- v;
        fill (pos + 1) (v + 1)
      done
  in
  if k = 0 then [| [||] |]
  else begin
    fill 0 0;
    Array.of_list (List.rev !result)
  end

let subset_pairs ~sets =
  let result = ref [] in
  for a = 0 to sets - 1 do
    for b = a + 1 to sets - 1 do
      result := (a, b) :: !result
    done
  done;
  Array.of_list (List.rev !result)
