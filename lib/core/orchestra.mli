(** The Orchestra algorithm (paper §3.1): direct routing with control bits,
    stable for the maximum injection rate 1 under energy cap 3 (which is
    optimal: cap 2 cannot sustain rate 1, Theorem 2). Queues stay below
    2n³ + β (Theorem 1). Latency may be unbounded.

    Time is split into seasons of n−1 rounds. A baton list (initially the
    stations by name) designates the conductor of each season; the conductor
    transmits every round. At a season's start the conductor schedules up to
    n−1 of its old, not-yet-scheduled packets — in injection order — for its
    *next* conducting season, and during the current season teaches each
    musician (one learning round each, by name order) the rounds it must
    wake to receive; it simultaneously sends the packets scheduled one
    season earlier. A message therefore carries a toggle bit (the big
    announcement), the learner's receive schedule, and at most one packet —
    the receiving musician scheduled for the round is awake, so at most
    three stations are ever on: conductor, learner, receiver.

    A conductor with at least n²−1 old packets is big: every musician learns
    this via the toggle bit, moves the conductor to the front of its copy of
    the baton list, and the conductor keeps the baton while it stays big —
    the mechanism that sustains rate 1 even when the adversary floods a
    single station.

    Requires n >= 3. *)

include Mac_channel.Algorithm.S

val with_big_threshold : name:string -> (n:int -> int) -> Mac_channel.Algorithm.t
(** Orchestra with a different big-conductor threshold (the paper uses
    n²−1), for the ablation study: a huge threshold disables the
    move-big-to-front mechanism entirely and loses rate-1 stability; a tiny
    one makes every conductor hog the baton. *)
