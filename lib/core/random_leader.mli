(** Random-Leader: a randomised-schedule strawman baseline (not from the
    paper).

    Every round, a pseudo-random k-subset of stations wakes up (all stations
    derive the same subset from a shared seeded hash of the round number, so
    the schedule is oblivious and collision-free to coordinate); one awake
    station — leadership rotates through the subset — transmits its oldest
    packet destined to another awake station, everyone else listens.

    This is "k-Subsets with a random enumeration and no token": a pair
    (v, w) is co-awake with the same k(k−1)/(n(n−1)) frequency as in the
    paper's schedule, but v can use a round only when it also holds the
    rotating leadership — which costs a factor ≈ k of throughput and shows
    why the exhaustive enumeration plus per-thread feedback-driven tokens
    matter. The benchmark's baselines figure locates both frontiers by
    bisection. *)

val algorithm : ?seed:int -> n:int -> k:int -> unit -> Mac_channel.Algorithm.t
(** Oblivious, plain-packet, direct; [required_cap] is k. Default seed 0. *)
