open Mac_channel

let coordinator = 0

type substage =
  | Idle (* the first, all-off phase *)
  | Counts
  | Offsets
  | Delivery

type state = {
  me : int;
  n : int;
  old : (int, unit) Hashtbl.t;   (* ids of this phase's old packets *)
  counts : int array;            (* coordinator only: per-station declared counts *)
  mutable stage : int;           (* receiving station v *)
  mutable sub : substage;
  mutable sub_start : int;
  mutable total : int;           (* substage-3 length for the current stage *)
  mutable my_offset : int;
  mutable my_count : int;        (* my declared old-packet count for v *)
  mutable coord_count : int;     (* coordinator's own packets for v *)
}

let name = "count-hop"
let plain_packet = false
let direct = true
let oblivious = false
let required_cap ~n:_ ~k:_ = 2
let static_schedule = None

let create ~n ~k:_ ~me =
  { me; n; old = Hashtbl.create 64; counts = Array.make n 0;
    stage = 0; sub = Idle; sub_start = 0; total = 0;
    my_offset = 0; my_count = 0; coord_count = 0 }

(* Participants of a counts substage: stations other than v and the
   coordinator, ascending. *)
let participant_count s = if s.stage = coordinator then s.n - 1 else s.n - 2

let participant_at s idx =
  (* idx-th station of {0..n-1} \ {coordinator, v}, ascending. Relies on
     coordinator = 0. *)
  let station = idx + 1 in
  if s.stage <> coordinator && station >= s.stage then station + 1 else station

(* Recipients of an offsets substage: stations other than the coordinator. *)
let recipient_at idx = idx + 1

let sub_length s = function
  | Idle -> s.n
  | Counts -> participant_count s
  | Offsets -> s.n - 1
  | Delivery -> s.total

let snapshot s ~queue =
  Hashtbl.reset s.old;
  Pqueue.iter queue ~f:(fun p -> Hashtbl.replace s.old p.Packet.id ())

let is_old_for s v (p : Packet.t) = p.dst = v && Hashtbl.mem s.old p.id

let count_old_for s ~queue v =
  Pqueue.fold queue ~init:0 ~f:(fun acc p ->
      if is_old_for s v p then acc + 1 else acc)

(* Entering stage v: transmitters fix the count they will declare; the
   coordinator also fixes its own contribution. The counts stay valid
   through the stage because old packets for v leave a queue only during
   this very stage, through their owner's scheduled slots. *)
let enter_stage s ~queue =
  s.total <- 0;
  s.my_offset <- 0;
  s.my_count <- (if s.me = s.stage then 0 else count_old_for s ~queue s.stage);
  s.coord_count <- (if s.me = coordinator then s.my_count else 0);
  if s.me = coordinator then Array.fill s.counts 0 s.n 0

let rec advance s ~round ~queue =
  if round = s.sub_start + sub_length s s.sub then begin
    (match s.sub with
     | Idle ->
       snapshot s ~queue;
       s.stage <- 0;
       s.sub <- Counts;
       enter_stage s ~queue
     | Counts -> s.sub <- Offsets
     | Offsets -> s.sub <- Delivery
     | Delivery ->
       if s.stage = s.n - 1 then begin
         (* Phase over: everything now queued becomes old. *)
         snapshot s ~queue;
         s.stage <- 0
       end
       else s.stage <- s.stage + 1;
       s.sub <- Counts;
       enter_stage s ~queue);
    s.sub_start <- round;
    (* Empty substages (no participants, zero total) pass through. *)
    advance s ~round ~queue
  end

let on_duty s ~round ~queue =
  advance s ~round ~queue;
  let slot = round - s.sub_start in
  match s.sub with
  | Idle -> false
  | Counts -> s.me = coordinator || s.me = participant_at s slot
  | Offsets -> s.me = coordinator || s.me = recipient_at slot
  | Delivery ->
    s.me = s.stage
    || (s.me = coordinator && slot < s.coord_count)
    || (s.me <> coordinator && s.me <> s.stage
        && slot >= s.my_offset
        && slot < s.my_offset + s.my_count)

let act s ~round ~queue =
  let slot = round - s.sub_start in
  match s.sub with
  | Idle -> Action.Listen
  | Counts ->
    if s.me <> coordinator && s.me = participant_at s slot then
      Action.Transmit (Message.light [ Message.Count s.my_count ])
    else Action.Listen
  | Offsets ->
    if s.me = coordinator then begin
      let w = recipient_at slot in
      (* Offset of w: coordinator's packets first, then participants in
         ascending order. The stage total rides along so that every station
         can track the schedule. *)
      let offset = ref s.coord_count in
      for u = 1 to w - 1 do
        if u <> s.stage then offset := !offset + s.counts.(u)
      done;
      let total = ref s.coord_count in
      for u = 1 to s.n - 1 do
        if u <> s.stage then total := !total + s.counts.(u)
      done;
      Action.Transmit
        (Message.light [ Message.Count !offset; Message.Count !total ])
    end
    else Action.Listen
  | Delivery ->
    let mine =
      if s.me = coordinator then slot < s.coord_count
      else
        s.me <> s.stage && slot >= s.my_offset && slot < s.my_offset + s.my_count
    in
    if not mine then Action.Listen
    else begin
      match Pqueue.oldest_such queue (is_old_for s s.stage) with
      | Some p -> Action.Transmit (Message.packet_only p)
      | None -> Action.Listen (* unreachable in lawful runs *)
    end

let observe s ~round ~queue:_ ~feedback =
  let slot = round - s.sub_start in
  (match s.sub, feedback with
   | Counts, Feedback.Heard m when s.me = coordinator ->
     (match m.Message.control with
      | [ Message.Count c ] -> s.counts.(participant_at s slot) <- c
      | _ -> ())
   | Offsets, Feedback.Heard m when s.me = recipient_at slot ->
     (match m.Message.control with
      | [ Message.Count offset; Message.Count total ] ->
        s.my_offset <- offset;
        s.total <- total
      | _ -> ())
   | Offsets, Feedback.Heard m when s.me = coordinator ->
     (* The coordinator hears its own message; it fixes the stage total when
        transmitting the first offset. *)
     (match m.Message.control with
      | [ Message.Count _; Message.Count total ] -> s.total <- total
      | _ -> ())
   | _ -> ());
  Reaction.No_reaction

let offline_tick _ ~round:_ ~queue:_ = ()

let sparse = None

include Algorithm.Marshal_codec (struct
  type nonrec state = state
end)
