type t = {
  n : int;
  k : int;
  groups : int array array;
  delta : int;
}

let effective_k ~n ~k =
  if n < 3 then invalid_arg "Cycle_groups: n must be >= 3";
  if k < 2 || k >= n then invalid_arg "Cycle_groups: need 2 <= k < n";
  if n <= 2 * k then (n + 1) / 2 else k

let make ?(delta_scale = 1.0) ~n ~k () =
  let k = effective_k ~n ~k in
  (* The chain of group boundaries is 0, k-1, 2(k-1), ..., closing at n ≡ 0:
     group i spans stations i(k-1) .. min((i+1)(k-1), n), inclusive, mod n.
     When (k-1) | n every group has exactly k members; otherwise the last
     group is shorter (the paper pads with dummies instead). *)
  let count = (n + k - 2) / (k - 1) in
  let groups =
    Array.init count (fun i ->
        let start = i * (k - 1) in
        let stop = min ((i + 1) * (k - 1)) n in
        Array.init (stop - start + 1) (fun j -> (start + j) mod n))
  in
  let delta = (4 * (n - 1) * k + (n - k - 1)) / (n - k) in
  let delta = max 1 (int_of_float (Float.round (delta_scale *. float_of_int delta))) in
  { n; k; groups; delta }

let group_count t = Array.length t.groups

let active_group t ~round = round / t.delta mod group_count t

let member_groups t station =
  let result = ref [] in
  for i = group_count t - 1 downto 0 do
    if Array.exists (fun m -> m = station) t.groups.(i) then
      result := i :: !result
  done;
  !result

let forward_connector t i =
  let g = t.groups.(i) in
  g.(Array.length g - 1)

let backward_connector t i = t.groups.(i).(0)

let in_group t ~group station =
  Array.exists (fun m -> m = station) t.groups.(group)
