open Mac_channel

module Impl (P : sig
  val name : string

  val big_threshold : n:int -> int
  (* old-packet count at which a conductor considers itself big *)
end) : Mac_channel.Algorithm.S = struct
  type state = {
    me : int;
    n : int;
    baton : int array;           (* baton list, front first *)
    mutable baton_pos : int;     (* list position of the current conductor *)
    mutable season_start : int;
    mutable synced_season : int;
    mutable conductor : int;
    mutable big_flag : bool;     (* current conductor's announcement *)
    (* Conductor bookkeeping. *)
    sched_cur : Packet.t option array;  (* per round offset of this season *)
    sched_next : Packet.t option array; (* for my next conducting season *)
    scheduled : (int, unit) Hashtbl.t;  (* ids in either schedule *)
    (* Musician bookkeeping. *)
    recv_cur : bool array;              (* my wake offsets this season *)
    next_recv : int list array;         (* taught offsets, per conductor *)
  }

  let name = P.name
  let plain_packet = false
  let direct = true
  let oblivious = false
  let required_cap ~n:_ ~k:_ = 3
  let static_schedule = None

  let season_length n = n - 1

  let create ~n ~k:_ ~me =
    if n < 3 then invalid_arg "Orchestra: needs n >= 3";
    { me; n;
      baton = Array.init n (fun i -> i);
      baton_pos = 0;
      season_start = 0;
      synced_season = -1;
      conductor = 0;
      big_flag = false;
      sched_cur = Array.make (n - 1) None;
      sched_next = Array.make (n - 1) None;
      scheduled = Hashtbl.create 64;
      recv_cur = Array.make (n - 1) false;
      next_recv = Array.make n [] }

  (* The learner of round offset [o] is the o-th musician by name. *)
  let learner_at s o = if o >= s.conductor then o + 1 else o

  let move_conductor_to_front s =
    let c = s.baton.(s.baton_pos) in
    for i = s.baton_pos downto 1 do
      s.baton.(i) <- s.baton.(i - 1)
    done;
    s.baton.(0) <- c;
    s.baton_pos <- 0

  (* Season boundary, executed identically by every station: settle the baton
     using the big announcement everyone heard, then set up the new season. *)
  let enter_season s ~round ~queue =
    let season = round / season_length s.n in
    if s.synced_season >= 0 then begin
      if s.big_flag then move_conductor_to_front s
      else s.baton_pos <- (s.baton_pos + 1) mod s.n
    end;
    s.synced_season <- season;
    s.season_start <- round;
    s.conductor <- s.baton.(s.baton_pos);
    s.big_flag <- false;
    if s.me = s.conductor then begin
      (* Old packets are exactly those injected before this round. *)
      let old_count =
        Pqueue.fold queue ~init:0 ~f:(fun acc p ->
            if p.Packet.injected_at < round then acc + 1 else acc)
      in
      s.big_flag <- old_count >= P.big_threshold ~n:s.n;
      (* The packets scheduled a season ago go out now; pick the next batch. *)
      Array.blit s.sched_next 0 s.sched_cur 0 (s.n - 1);
      Array.fill s.sched_next 0 (s.n - 1) None;
      let slot = ref 0 in
      Pqueue.iter queue ~f:(fun p ->
          if !slot < s.n - 1
             && p.Packet.injected_at < round
             && not (Hashtbl.mem s.scheduled p.Packet.id)
          then begin
            s.sched_next.(!slot) <- Some p;
            Hashtbl.replace s.scheduled p.Packet.id ();
            incr slot
          end)
    end
    else begin
      Array.fill s.recv_cur 0 (s.n - 1) false;
      List.iter (fun o -> s.recv_cur.(o) <- true) s.next_recv.(s.conductor);
      s.next_recv.(s.conductor) <- []
    end

  let sync s ~round ~queue =
    if round / season_length s.n > s.synced_season then
      enter_season s ~round ~queue

  let on_duty s ~round ~queue =
    sync s ~round ~queue;
    let o = round - s.season_start in
    s.me = s.conductor || learner_at s o = s.me || s.recv_cur.(o)

  let act s ~round ~queue =
    let o = round - s.season_start in
    if s.me <> s.conductor then Action.Listen
    else begin
      let learner = learner_at s o in
      (* Teach the learner its wake offsets in my next conducting season. *)
      let offsets = ref [] in
      for slot = s.n - 2 downto 0 do
        match s.sched_next.(slot) with
        | Some p when p.Packet.dst = learner -> offsets := slot :: !offsets
        | Some _ | None -> ()
      done;
      let control = [ Message.Flag s.big_flag; Message.Schedule !offsets ] in
      match s.sched_cur.(o) with
      | Some p when Pqueue.mem queue p ->
        Action.Transmit (Message.make ~packet:p control)
      | Some _ | None -> Action.Transmit (Message.light control)
    end

  let observe s ~round ~queue:_ ~feedback =
    let o = round - s.season_start in
    (match feedback with
     | Feedback.Heard m ->
       if s.me = s.conductor then begin
         (* Scheduled packet went out; free its id. *)
         match s.sched_cur.(o) with
         | Some p ->
           Hashtbl.remove s.scheduled p.Packet.id;
           s.sched_cur.(o) <- None
         | None -> ()
       end
       else if learner_at s o = s.me then
         List.iter
           (function
             | Message.Flag big -> s.big_flag <- big
             | Message.Schedule offsets -> s.next_recv.(s.conductor) <- offsets
             | Message.Count _ -> ())
           m.Message.control
     | Feedback.Silence | Feedback.Collision -> ());
    Reaction.No_reaction

  let offline_tick s ~round ~queue = sync s ~round ~queue

  let sparse = None

  include Algorithm.Marshal_codec (struct
    type nonrec state = state
  end)
end

include Impl (struct
  let name = "orchestra"
  let big_threshold ~n = (n * n) - 1
end)

let with_big_threshold ~name threshold =
  (module Impl (struct
    let name = name
    let big_threshold = threshold
  end) : Algorithm.S)
