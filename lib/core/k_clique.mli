(** The k-Clique algorithm (paper §6): plain-packet, k-energy-oblivious,
    direct routing with latency at most 8(n²/k)(1 + β/2k) for injection
    rates up to k²/(2n(2n−k)).

    Set pairs ({!Clique_pairs}) are active round-robin for one round each;
    the active pair runs OF-RRW restricted to old packets whose destinations
    lie inside the pair — every delivery is therefore a single direct hop. *)

val algorithm : n:int -> k:int -> Mac_channel.Algorithm.t
