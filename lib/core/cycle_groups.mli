(** The overlapping group chain of the k-Cycle algorithm (paper §5).

    Stations are covered by ℓ groups of up to k consecutive stations;
    consecutive groups share one station (their connector), and the last
    group closes the cycle by sharing station 0 with the first. Group i is
    active — all its members switched on, everyone else off — for δ
    consecutive rounds, in round-robin order of groups.

    When n ≤ 2k the paper decreases k so that 2k = n + 1; [effective_k]
    applies that adjustment. δ = ⌈4(n−1)k / (n−k)⌉. *)

type t = private {
  n : int;
  k : int;                  (** effective group size after adjustment *)
  groups : int array array; (** members in chain order; wraps through 0 *)
  delta : int;              (** rounds of activity per group *)
}

val effective_k : n:int -> k:int -> int
(** Requires [2 <= k < n] and [n >= 3]. *)

val make : ?delta_scale:float -> n:int -> k:int -> unit -> t
(** [delta_scale] multiplies the paper's activity-segment length δ (for the
    ablation study); default 1. The scaled δ is at least 1 round. *)

val group_count : t -> int

val active_group : t -> round:int -> int

val member_groups : t -> int -> int list
(** Indices of the group(s) a station belongs to (one, or two if it is a
    connector). *)

val forward_connector : t -> int -> int
(** [forward_connector t i] is the chain-last member of group [i] — the
    station shared with group [i+1], which adopts packets leaving group [i]. *)

val backward_connector : t -> int -> int
(** The chain-first member of group [i], shared with group [i-1]. *)

val in_group : t -> group:int -> int -> bool
