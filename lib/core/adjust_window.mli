(** The Adjust-Window algorithm (paper §4.2): plain-packet, indirect routing
    with energy cap 2, universally stable with latency
    (18n³lg²n + 2β)/(1−ρ) for every injection rate ρ < 1.

    Execution is split into time windows of size L (initially the smallest L
    with L ≥ 18n³·lgL, doubling whenever a window fails to deliver all its
    old packets — those queued when the window began). Every window has
    three stages:

    - {b Gossip} (n²(2 + 3lgL) rounds): phases (i, j); j listens alone while
      a large i (window-start queue ≥ 4n·lgL) conveys, by *coded transfer* —
      transmitting some packet means bit 1, staying silent bit 0 — whether
      its queue exceeds L, min(queue, L), its packet count destined j, and
      its count destined below j. Packets heard by j that are not addressed
      to it are adopted (j relays them). Small stations stay silent, which
      is itself the signal.
    - {b Main} (L − gossip − auxiliary rounds): if some station declared
      more than L packets, the smallest such station transmits all stage
      long towards round-robin listeners (DESIGN.md interpretation 3);
      otherwise the gossip numbers let every station compute the same
      global schedule — senders in name order, each sender's old packets
      grouped by ascending destination — and exactly the scheduled sender
      and listener are on each round.
    - {b Auxiliary} (8n³·lgL rounds): pairs (i, j) round-robin; i sends j
      the packets it adopted during Gossip and, if i is small, its old
      packets for j.

    All replicated decisions (stage boundaries, doubling, schedules) are
    functions of the gossip bits every station heard, so the stations stay
    synchronised without any control bits — messages are bare packets. *)

include Mac_channel.Algorithm.S

val initial_window : n:int -> int
(** The smallest L whose Main stage fills at least half the window — the
    paper's L ≥ 18·n³·lgL criterion with the exact stage lengths instead of
    the large-n bound, so the invariant holds for every n ≥ 3. *)

val window_layout : n:int -> l:int -> int * int * int
(** [(gossip, main, auxiliary)] stage lengths for a window of size [l]. *)
