(** Pair-TDMA: the naive 2-energy-oblivious direct baseline.

    Rounds cycle over all n(n-1) ordered station pairs (s, d); in the pair's
    round, s transmits its oldest packet destined to d (if any) while d
    listens. This is what a practitioner would write first, and it is
    essentially the k = 2 instance of the paper's k-Subsets schedule with the
    trivial per-pair discipline; its worst-case stable rate is
    1/(n(n-1)) = k(k−1)/(n(n−1)) with k = 2. The paper's algorithms are
    benchmarked against it. *)

include Mac_channel.Algorithm.S
