open Mac_channel
open Mac_broadcast

let subsets_memo : (int * int, int array array) Hashtbl.t = Hashtbl.create 8

let subsets ~n ~k =
  match Hashtbl.find_opt subsets_memo (n, k) with
  | Some s -> s
  | None ->
    let s = Combi.k_subsets ~n ~k in
    Hashtbl.replace subsets_memo (n, k) s;
    s

let in_subset subset station = Array.exists (fun m -> m = station) subset

(* Per-round membership lookup must be O(1): subset_of.(t mod γ).(station). *)
let membership_memo : (int * int, bool array array) Hashtbl.t = Hashtbl.create 8

let membership ~n ~k =
  match Hashtbl.find_opt membership_memo (n, k) with
  | Some m -> m
  | None ->
    let sets = subsets ~n ~k in
    let m =
      Array.map
        (fun subset ->
          let row = Array.make n false in
          Array.iter (fun station -> row.(station) <- true) subset;
          row)
        sets
    in
    Hashtbl.replace membership_memo (n, k) m;
    m

let threads_for ~n ~k ~src ~dst =
  let sets = subsets ~n ~k in
  let result = ref [] in
  for i = Array.length sets - 1 downto 0 do
    if in_subset sets.(i) src && in_subset sets.(i) dst then result := i :: !result
  done;
  !result

(* Scheduling state of one thread at one station. MBTF threads track the
   replicated list; RRW threads track the replicated token ring plus the
   holder's withheld batch size. *)
type thread_sched =
  | Mbtf_thread of Mbtf_list.t
  | Rrw_thread of { ring : Token_ring.t; mutable batch : int }

type thread_state = {
  sched : thread_sched;
  fifo : Packet.t Queue.t; (* my packets assigned to this thread, FIFO *)
}

type state = {
  me : int;
  n : int;
  k : int;
  gamma : int;
  threads : (int, thread_state) Hashtbl.t; (* thread index -> state *)
  threads_with : int array array;          (* per destination w *)
  alloc_count : int array array;           (* x_i(w): [w].(thread) *)
  assigned : (int, int) Hashtbl.t;         (* packet id -> thread *)
  mutable synced_phase : int;
  mutable last_sent : Packet.t option;     (* transmission awaiting feedback *)
}

let algorithm ?(discipline = `Mbtf) ?(allocation = `Balanced) ~n ~k () =
  if k < 2 || k >= n then invalid_arg "K_subsets: need 2 <= k < n";
  ignore (membership ~n ~k);
  let module M = struct
    type nonrec state = state

    let name =
      Printf.sprintf "k-subsets(k=%d,%s%s)" k
        (match discipline with `Mbtf -> "mbtf" | `Rrw -> "rrw")
        (match allocation with `Balanced -> "" | `First_fit -> ",first-fit")

    let plain_packet = (discipline = `Rrw)
    let direct = true
    let oblivious = true
    let required_cap ~n:_ ~k = k

    let static_schedule =
      Some
        (fun ~n ~k ~me ~round ->
          let m = membership ~n ~k in
          m.(round mod Array.length m).(me))

    let create ~n ~k ~me =
      let sets = subsets ~n ~k in
      let gamma = Array.length sets in
      let threads = Hashtbl.create 64 in
      Array.iteri
        (fun i subset ->
          if in_subset subset me then begin
            let sched =
              match discipline with
              | `Mbtf -> Mbtf_thread (Mbtf_list.create ~members:subset)
              | `Rrw -> Rrw_thread { ring = Token_ring.create ~members:subset; batch = 0 }
            in
            Hashtbl.replace threads i { sched; fifo = Queue.create () }
          end)
        sets;
      let threads_with =
        Array.init n (fun w ->
            if w = me then [||]
            else Array.of_list (threads_for ~n ~k ~src:me ~dst:w))
      in
      { me; n; k; gamma; threads; threads_with;
        alloc_count = Array.make_matrix n gamma 0;
        assigned = Hashtbl.create 256;
        synced_phase = 0; last_sent = None }

    (* Phase-boundary allocation: spread last phase's arrivals over the
       eligible threads, balancing the per-destination counters. *)
    let allocate s ~queue ~phase_start =
      Pqueue.iter queue ~f:(fun p ->
          if p.Packet.injected_at < phase_start
             && not (Hashtbl.mem s.assigned p.Packet.id)
          then begin
            let w = p.Packet.dst in
            let eligible = s.threads_with.(w) in
            let best = ref eligible.(0) in
            (match allocation with
             | `First_fit -> ()
             | `Balanced ->
               Array.iter
                 (fun i ->
                   if s.alloc_count.(w).(i) < s.alloc_count.(w).(!best) then best := i)
                 eligible);
            s.alloc_count.(w).(!best) <- s.alloc_count.(w).(!best) + 1;
            Hashtbl.replace s.assigned p.Packet.id !best;
            Queue.add p (Hashtbl.find s.threads !best).fifo
          end)

    let sync s ~round ~queue =
      let phase = round / s.gamma in
      if phase > s.synced_phase || (round = 0 && s.synced_phase = 0) then begin
        s.synced_phase <- phase;
        allocate s ~queue ~phase_start:(phase * s.gamma)
      end

    let on_duty s ~round ~queue =
      sync s ~round ~queue;
      Hashtbl.mem s.threads (round mod s.gamma)

    let front_packet (ts : thread_state) ~queue =
      (* Drop stale heads defensively; in lawful runs the head is live. *)
      let rec go () =
        match Queue.peek_opt ts.fifo with
        | None -> None
        | Some p ->
          if Pqueue.mem queue p then Some p
          else begin
            ignore (Queue.pop ts.fifo);
            go ()
          end
      in
      go ()

    let act s ~round ~queue =
      let i = round mod s.gamma in
      s.last_sent <- None;
      match Hashtbl.find_opt s.threads i with
      | None -> Action.Listen
      | Some ts ->
        (match ts.sched with
         | Mbtf_thread list ->
           if Mbtf_list.holder list <> s.me then Action.Listen
           else begin
             match front_packet ts ~queue with
             | None -> Action.Listen
             | Some p ->
               let big = Queue.length ts.fifo >= s.k in
               s.last_sent <- Some p;
               Action.Transmit (Message.make ~packet:p [ Message.Flag big ])
           end
         | Rrw_thread r ->
           if Token_ring.holder r.ring <> s.me || r.batch <= 0 then Action.Listen
           else begin
             match front_packet ts ~queue with
             | None ->
               r.batch <- 0;
               Action.Listen
             | Some p ->
               s.last_sent <- Some p;
               Action.Transmit (Message.packet_only p)
           end)

    let observe s ~round ~queue:_ ~feedback =
      let i = round mod s.gamma in
      (match Hashtbl.find_opt s.threads i with
       | None -> ()
       | Some ts ->
         (match feedback, s.last_sent with
          | Feedback.Heard m, Some p ->
            (match m.Message.packet with
             | Some q when Packet.equal p q ->
               (* Our transmission succeeded: retire it locally. *)
               ignore (Queue.pop ts.fifo);
               Hashtbl.remove s.assigned p.Packet.id
             | Some _ | None -> ())
          | _ -> ());
         (match ts.sched, feedback with
          | Mbtf_thread list, Feedback.Heard m ->
            (match m.Message.control with
             | [ Message.Flag true ] -> Mbtf_list.note_heard_big list
             | _ -> Mbtf_list.note_heard_small list)
          | Mbtf_thread list, (Feedback.Silence | Feedback.Collision) ->
            Mbtf_list.note_silence list
          | Rrw_thread r, Feedback.Heard _ ->
            Token_ring.note_heard r.ring;
            if Token_ring.holder r.ring = s.me then r.batch <- r.batch - 1
          | Rrw_thread r, (Feedback.Silence | Feedback.Collision) ->
            Token_ring.note_silence r.ring;
            (* A fresh holder withholds: it may send only the packets
               present at the moment it received the token. *)
            if Token_ring.holder r.ring = s.me then r.batch <- Queue.length ts.fifo));
      s.last_sent <- None;
      Reaction.No_reaction

    (* Keep phase allocation running while switched off: assignment is
       local bookkeeping over the station's own queue, not channel use. *)
    let offline_tick s ~round ~queue = sync s ~round ~queue

    let sparse = None

    include Algorithm.Marshal_codec (struct
      type nonrec state = state
    end)
  end in
  (module M : Algorithm.S)
