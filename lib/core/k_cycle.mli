(** The k-Cycle algorithm (paper §5): plain-packet, k-energy-oblivious,
    indirect routing with latency O((32+β)·n) for injection rates below
    (k−1)/(n−1).

    Stations form the overlapping group chain of {!Cycle_groups}. The active
    group runs OF-RRW: a token cycles through the members; the holder
    transmits its old packets one by one and a silent round advances the
    token. A packet heard inside the group is delivered if its destination
    is a member; otherwise the group's forward connector adopts it, so
    packets hop group-to-group around the cycle until they reach their
    destination's group. *)

val algorithm : n:int -> k:int -> Mac_channel.Algorithm.t
(** The paper's algorithm for the given system; [required_cap] reports the
    adjusted (effective) k. *)

val algorithm_scaled : delta_scale:float -> n:int -> k:int -> Mac_channel.Algorithm.t
(** Like {!algorithm} with the activity segment δ shrunk or stretched by
    [delta_scale] (the ablation study; 1 gives the paper's
    δ = ⌈4(n−1)k/(n−k)⌉). *)
