(** The k-Subsets algorithm (paper §6): k-energy-oblivious direct routing
    with the optimal oblivious-direct throughput k(k−1)/(n(n−1)).

    Fix the lexicographic enumeration A₀ … A_{γ−1} of all γ = C(n,k)
    k-element subsets of the stations. Rounds of the form i + jγ make
    thread i; the stations of Aᵢ are switched on exactly in thread i's
    rounds and run one instance of a broadcast discipline there, with a
    dedicated logical queue per station per thread.

    At every phase boundary (each γ rounds), a station assigns the packets
    injected during the previous phase to threads: a packet from v to w may
    ride any of the C(n−2, k−2) threads whose subset contains both v and w,
    and v keeps the per-destination allocation balanced (the counters
    x₀(w) … x_{γ−1}(w) of the paper never differ by more than one across
    eligible threads). Destinations are awake whenever their thread is
    active, so routing is direct.

    Disciplines:
    - [`Mbtf] — the paper's choice, Move-Big-To-Front per thread (stable at
      the optimal rate, latency may be unbounded; uses one control bit);
    - [`Rrw] — the paper's §6 remark: replacing MBTF with
      Round-Robin-Withholding yields bounded latency Θ(γ(n+β)) for rates
      below the threshold, and keeps messages plain. *)

val algorithm :
  ?discipline:[ `Mbtf | `Rrw ] ->
  ?allocation:[ `Balanced | `First_fit ] ->
  n:int -> k:int -> unit ->
  Mac_channel.Algorithm.t
(** Default discipline is [`Mbtf], default allocation [`Balanced] (the
    paper's). [`First_fit] always picks the first eligible thread — the
    ablation showing the balanced allocation is what buys the optimal rate:
    first-fit concentrates a (v, w) flood on one thread of capacity 1/γ.
    Requires [2 <= k < n]; beware that state scales with C(n,k) per
    station. *)

val threads_for : n:int -> k:int -> src:int -> dst:int -> int list
(** The threads eligible to carry a (src, dst) packet (for tests). *)
