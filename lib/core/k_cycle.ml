open Mac_channel
open Mac_broadcast

type group_state = {
  index : int;
  ring : Token_ring.t;
  old : (int, unit) Hashtbl.t; (* ids old for this group's current phase *)
}

type state = {
  me : int;
  cg : Cycle_groups.t;
  mine : group_state array; (* the 1 or 2 groups this station belongs to *)
}

let find_mine s group_index =
  let rec go i =
    if i >= Array.length s.mine then None
    else if s.mine.(i).index = group_index then Some s.mine.(i)
    else go (i + 1)
  in
  go 0

(* Whether the token holder [me] may transmit packet [p] while group [g] is
   active. Destinations inside the group are always fair game; a packet
   leaving the group may not be sent by the forward connector (it would only
   hand the packet to itself), nor by a connector whose other group contains
   the destination (it will deliver it directly there instead). *)
let eligible s ~(g : group_state) (p : Packet.t) =
  Hashtbl.mem g.old p.id
  && (Cycle_groups.in_group s.cg ~group:g.index p.dst
      || (s.me <> Cycle_groups.forward_connector s.cg g.index
          && not
               (Array.exists
                  (fun (other : group_state) ->
                    other.index <> g.index
                    && Cycle_groups.in_group s.cg ~group:other.index p.dst)
                  s.mine)))

let build ?delta_scale ~n ~k () =
  let cg0 = Cycle_groups.make ?delta_scale ~n ~k () in
  let module M = struct
    type nonrec state = state

    let name =
      match delta_scale with
      | None | Some 1.0 -> Printf.sprintf "k-cycle(k=%d)" cg0.Cycle_groups.k
      | Some s -> Printf.sprintf "k-cycle(k=%d,delta*%g)" cg0.Cycle_groups.k s

    let plain_packet = true
    let direct = false
    let oblivious = true
    let required_cap ~n:_ ~k:_ = cg0.Cycle_groups.k

    let static_schedule =
      Some
        (fun ~n:_ ~k:_ ~me ~round ->
          Cycle_groups.in_group cg0 ~group:(Cycle_groups.active_group cg0 ~round) me)

    let create ~n:n' ~k:_ ~me =
      assert (n' = n);
      let mine =
        Cycle_groups.member_groups cg0 me
        |> List.map (fun index ->
               { index;
                 ring = Token_ring.create ~members:cg0.Cycle_groups.groups.(index);
                 old = Hashtbl.create 64 })
        |> Array.of_list
      in
      { me; cg = cg0; mine }

    let on_duty s ~round ~queue:_ =
      Cycle_groups.in_group s.cg ~group:(Cycle_groups.active_group s.cg ~round) s.me

    let act s ~round ~queue =
      let active = Cycle_groups.active_group s.cg ~round in
      match find_mine s active with
      | None -> Action.Listen (* unreachable: off stations are not asked *)
      | Some g ->
        if Token_ring.holder g.ring <> s.me then Action.Listen
        else begin
          match Pqueue.oldest_such queue (eligible s ~g) with
          | Some p -> Action.Transmit (Message.packet_only p)
          | None -> Action.Listen
        end

    let observe s ~round ~queue ~feedback =
      let active = Cycle_groups.active_group s.cg ~round in
      match find_mine s active with
      | None -> Reaction.No_reaction
      | Some g ->
        (match feedback with
         | Feedback.Heard m ->
           Token_ring.note_heard g.ring;
           (match m.Message.packet with
            | Some p
              when (not (Cycle_groups.in_group s.cg ~group:g.index p.Packet.dst))
                   && s.me = Cycle_groups.forward_connector s.cg g.index ->
              Reaction.Adopt_heard_packet
            | Some _ | None -> Reaction.No_reaction)
         | Feedback.Silence | Feedback.Collision ->
           let phase_before = Token_ring.phase g.ring in
           Token_ring.note_silence g.ring;
           if Token_ring.phase g.ring <> phase_before then begin
             Hashtbl.reset g.old;
             Pqueue.iter queue ~f:(fun p -> Hashtbl.replace g.old p.Packet.id ())
           end;
           Reaction.No_reaction)

    let offline_tick _ ~round:_ ~queue:_ = ()

    let sparse = None

    include Algorithm.Marshal_codec (struct
      type nonrec state = state
    end)
  end in
  (module M : Algorithm.S)

let algorithm ~n ~k = build ~n ~k ()

let algorithm_scaled ~delta_scale ~n ~k = build ~delta_scale ~n ~k ()
