open Mac_channel
open Mac_broadcast

let structures : (int * int, Clique_pairs.t) Hashtbl.t = Hashtbl.create 8

let structure ~n ~k =
  match Hashtbl.find_opt structures (n, k) with
  | Some cp -> cp
  | None ->
    let cp = Clique_pairs.make ~n ~k in
    Hashtbl.replace structures (n, k) cp;
    cp

type pair_state = {
  index : int;
  ring : Token_ring.t;
  old : (int, unit) Hashtbl.t;
}

type state = {
  me : int;
  cp : Clique_pairs.t;
  mine : pair_state array;
  by_index : (int, pair_state) Hashtbl.t;
}

let algorithm ~n ~k =
  let module M = struct
    type nonrec state = state

    let cp0 = structure ~n ~k
    let name = Printf.sprintf "k-clique(k=%d)" cp0.Clique_pairs.k
    let plain_packet = true
    let direct = true
    let oblivious = true
    let required_cap ~n ~k = (structure ~n ~k).Clique_pairs.k

    let static_schedule =
      Some
        (fun ~n ~k ~me ~round ->
          let cp = structure ~n ~k in
          Clique_pairs.in_pair cp ~pair:(Clique_pairs.active_pair cp ~round) me)

    let create ~n ~k ~me =
      let cp = structure ~n ~k in
      let mine =
        Clique_pairs.member_pairs cp me
        |> List.map (fun index ->
               { index;
                 ring = Token_ring.create ~members:cp.Clique_pairs.members.(index);
                 old = Hashtbl.create 32 })
        |> Array.of_list
      in
      let by_index = Hashtbl.create (Array.length mine) in
      Array.iter (fun ps -> Hashtbl.replace by_index ps.index ps) mine;
      { me; cp; mine; by_index }

    let on_duty s ~round ~queue:_ =
      Clique_pairs.in_pair s.cp ~pair:(Clique_pairs.active_pair s.cp ~round) s.me

    let eligible s ~(ps : pair_state) (p : Packet.t) =
      Hashtbl.mem ps.old p.id && Clique_pairs.in_pair s.cp ~pair:ps.index p.dst

    let act s ~round ~queue =
      let active = Clique_pairs.active_pair s.cp ~round in
      match Hashtbl.find_opt s.by_index active with
      | None -> Action.Listen
      | Some ps ->
        if Token_ring.holder ps.ring <> s.me then Action.Listen
        else begin
          match Pqueue.oldest_such queue (eligible s ~ps) with
          | Some p -> Action.Transmit (Message.packet_only p)
          | None -> Action.Listen
        end

    let observe s ~round ~queue ~feedback =
      let active = Clique_pairs.active_pair s.cp ~round in
      (match Hashtbl.find_opt s.by_index active with
       | None -> ()
       | Some ps ->
         (match feedback with
          | Feedback.Heard _ -> Token_ring.note_heard ps.ring
          | Feedback.Silence | Feedback.Collision ->
            let phase_before = Token_ring.phase ps.ring in
            Token_ring.note_silence ps.ring;
            if Token_ring.phase ps.ring <> phase_before then begin
              Hashtbl.reset ps.old;
              Pqueue.iter queue ~f:(fun p -> Hashtbl.replace ps.old p.Packet.id ())
            end));
      Reaction.No_reaction

    let offline_tick _ ~round:_ ~queue:_ = ()

    let sparse = None

    include Algorithm.Marshal_codec (struct
      type nonrec state = state
    end)
  end in
  (module M : Algorithm.S)
