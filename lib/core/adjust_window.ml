open Mac_channel

let window_layout ~n ~l =
  let lg_l = Combi.lg l in
  let gossip = n * n * (2 + (3 * lg_l)) in
  let aux = 8 * n * n * n * lg_l in
  (gossip, l - gossip - aux, aux)

(* The paper wants the smallest L whose Main stage fills at least half the
   window. It bounds gossip+auxiliary by 9n^3 lg L (valid for large n); we
   use the exact stage lengths so the invariant holds for every n >= 3. *)
let initial_window ~n =
  let need l =
    let gossip, _, aux = window_layout ~n ~l in
    2 * (gossip + aux)
  in
  let rec fix l =
    let target = need l in
    if l >= target then l else fix target
  in
  fix 2

type stage =
  | Gossip
  | Main
  | Auxiliary

type state = {
  me : int;
  n : int;
  mutable window_start : int;
  mutable l : int;
  mutable lg_l : int;
  mutable l_g : int;
  mutable l_m : int;
  mutable l_a : int;
  old : (int, unit) Hashtbl.t;     (* ids queued when the window began *)
  adopted : (int, unit) Hashtbl.t; (* ids adopted during this window *)
  (* My declared numbers (window-start snapshot). *)
  mutable my_small : bool;
  mutable my_over : bool;
  mutable my_q : int;       (* min(size, L) *)
  my_cnt : int array;       (* old packets per destination *)
  my_below : int array;     (* prefix sums of my_cnt *)
  (* What gossip taught me about everyone. *)
  is_large : bool array;
  over_l : bool array;
  qsize : int array;
  cnt_me : int array;
  cnt_below : int array;
  (* Main-stage schedule, fixed once per window when Main begins. *)
  mutable main_ready : bool;
  mutable dedicated : int;  (* station owning a dedicated Main; -1 = normal *)
  starts : int array;       (* per-sender first slot of its Main segment *)
}

let name = "adjust-window"
let plain_packet = true
let direct = false
let oblivious = false
let required_cap ~n:_ ~k:_ = 2
let static_schedule = None

let small_threshold s = 4 * s.n * s.lg_l

(* Window-start snapshot: remember the old cohort and fix the numbers this
   station will declare during Gossip. *)
let open_window s ~round ~l ~queue =
  s.window_start <- round;
  s.l <- l;
  s.lg_l <- Combi.lg l;
  let g, m, a = window_layout ~n:s.n ~l in
  s.l_g <- g;
  s.l_m <- m;
  s.l_a <- a;
  Hashtbl.reset s.old;
  Hashtbl.reset s.adopted;
  Pqueue.iter queue ~f:(fun p -> Hashtbl.replace s.old p.Packet.id ());
  let size = Pqueue.size queue in
  s.my_small <- size < small_threshold s;
  s.my_over <- size > l;
  s.my_q <- min size l;
  for w = 0 to s.n - 1 do
    s.my_cnt.(w) <- Pqueue.count_to queue w
  done;
  let acc = ref 0 in
  for w = 0 to s.n - 1 do
    s.my_below.(w) <- !acc;
    acc := !acc + s.my_cnt.(w)
  done;
  Array.fill s.is_large 0 s.n false;
  Array.fill s.over_l 0 s.n false;
  Array.fill s.qsize 0 s.n 0;
  Array.fill s.cnt_me 0 s.n 0;
  Array.fill s.cnt_below 0 s.n 0;
  (* I know my own numbers without gossiping to myself. *)
  s.is_large.(s.me) <- not s.my_small;
  s.over_l.(s.me) <- s.my_over;
  s.qsize.(s.me) <- s.my_q;
  s.cnt_me.(s.me) <- 0;
  s.cnt_below.(s.me) <- s.my_below.(s.me);
  s.main_ready <- false;
  s.dedicated <- -1

let create ~n ~k:_ ~me =
  let s =
    { me; n; window_start = 0; l = 0; lg_l = 0; l_g = 0; l_m = 0; l_a = 0;
      old = Hashtbl.create 256; adopted = Hashtbl.create 64;
      my_small = true; my_over = false; my_q = 0;
      my_cnt = Array.make n 0; my_below = Array.make n 0;
      is_large = Array.make n false; over_l = Array.make n false;
      qsize = Array.make n 0; cnt_me = Array.make n 0;
      cnt_below = Array.make n 0;
      main_ready = false; dedicated = -1; starts = Array.make n 0 }
  in
  s.l <- initial_window ~n;
  s

(* End-of-window decision, identical at every station: double when someone
   declared more than L packets or the declared backlog exceeds the Main
   stage that just ran. *)
let close_window s ~round ~queue =
  let over_any = Array.exists (fun b -> b) s.over_l in
  let declared = ref 0 in
  for i = 0 to s.n - 1 do
    if s.is_large.(i) then declared := !declared + s.qsize.(i)
  done;
  let l' = if over_any || !declared > s.l_m then 2 * s.l else s.l in
  open_window s ~round ~l:l' ~queue

let sync s ~round ~queue =
  if round = 0 && s.lg_l = 0 then open_window s ~round ~l:s.l ~queue
  else if round = s.window_start + s.l then close_window s ~round ~queue

(* ---- Gossip stage ---- *)

let gossip_phase_len s = 2 + (3 * s.lg_l)

(* Phase (i, j) and round-within-phase for a gossip offset. *)
let gossip_pos s off =
  let len = gossip_phase_len s in
  let phase = off / len in
  (phase / s.n, phase mod s.n, off mod len)

(* The bit a large station i conveys in round r of phase (i, j): presence,
   the over-L flag, then three lgL-bit numbers, most significant bit first. *)
let gossip_bit s ~j ~r =
  if r = 0 then true
  else if r = 1 then s.my_over
  else begin
    let idx = (r - 2) / s.lg_l in
    let bit = (r - 2) mod s.lg_l in
    let value =
      match idx with
      | 0 -> s.my_q
      | 1 -> min s.my_cnt.(j) s.l
      | _ -> min s.my_below.(j) s.l
    in
    value lsr (s.lg_l - 1 - bit) land 1 = 1
  end

(* The packet spent on a 1-bit: preferably one addressed to the listener
   (it is consumed on the spot), otherwise the oldest packet we hold. *)
let coded_transfer_packet ~queue ~j =
  match Pqueue.oldest_to queue j with
  | Some p -> Some p
  | None -> Pqueue.oldest queue

(* ---- Main stage ---- *)

let prepare_main s =
  if not s.main_ready then begin
    s.main_ready <- true;
    s.dedicated <- -1;
    for i = s.n - 1 downto 0 do
      if s.over_l.(i) then s.dedicated <- i
    done;
    let acc = ref 0 in
    for i = 0 to s.n - 1 do
      s.starts.(i) <- !acc;
      if s.is_large.(i) && not s.over_l.(i) then acc := !acc + s.qsize.(i)
    done
  end

(* In dedicated mode the owner transmits every round towards round-robin
   listeners (all stations but the owner, ascending). *)
let dedicated_listener s ~slot =
  let idx = slot mod (s.n - 1) in
  if idx >= s.dedicated then idx + 1 else idx

(* My sending destination for a Main slot, if the slot lies in my segment. *)
let main_my_dest s ~slot =
  if s.my_small || s.my_over then None
  else begin
    let rel = slot - s.starts.(s.me) in
    if rel < 0 || rel >= s.my_q then None
    else begin
      let rec find w =
        if w >= s.n then None
        else if rel < s.my_below.(w) + s.my_cnt.(w) then Some w
        else find (w + 1)
      in
      find 0
    end
  end

(* Whether I must listen in a Main slot: some large sender's sub-interval
   for destination me covers it. *)
let main_listening s ~slot =
  let rec check i =
    if i >= s.n then false
    else if
      i <> s.me && s.is_large.(i) && not s.over_l.(i)
      && slot >= s.starts.(i) + s.cnt_below.(i)
      && slot < s.starts.(i) + s.cnt_below.(i) + s.cnt_me.(i)
    then true
    else check (i + 1)
  in
  check 0

(* ---- Auxiliary stage ---- *)

let aux_pos s off =
  let e = off mod (s.n * s.n) in
  (e / s.n, e mod s.n)

let aux_eligible s (p : Packet.t) =
  Hashtbl.mem s.adopted p.id || (s.my_small && Hashtbl.mem s.old p.id)

let aux_packet s ~queue ~j = Pqueue.oldest_to_such queue j (aux_eligible s)

(* ---- Algorithm hooks ---- *)

let stage_of s off =
  if off < s.l_g then (Gossip, off)
  else if off < s.l_g + s.l_m then (Main, off - s.l_g)
  else (Auxiliary, off - s.l_g - s.l_m)

let on_duty s ~round ~queue =
  sync s ~round ~queue;
  let off = round - s.window_start in
  match stage_of s off with
  | Gossip, off ->
    let i, j, _ = gossip_pos s off in
    if i = j then false
    else if s.me = j then true
    else s.me = i && not s.my_small
  | Main, slot ->
    prepare_main s;
    if s.dedicated >= 0 then
      s.me = s.dedicated || s.me = dedicated_listener s ~slot
    else main_my_dest s ~slot <> None || main_listening s ~slot
  | Auxiliary, off ->
    let i, j = aux_pos s off in
    if i = j then false
    else if s.me = j then true
    else s.me = i && aux_packet s ~queue ~j <> None

let act s ~round ~queue =
  let off = round - s.window_start in
  match stage_of s off with
  | Gossip, off ->
    let i, j, r = gossip_pos s off in
    if s.me <> i || i = j || s.my_small then Action.Listen
    else if not (gossip_bit s ~j ~r) then Action.Listen
    else begin
      match coded_transfer_packet ~queue ~j with
      | Some p -> Action.Transmit (Message.packet_only p)
      | None ->
        (* Unreachable: the large threshold covers the whole gossip spend. *)
        Action.Listen
    end
  | Main, slot ->
    prepare_main s;
    if s.dedicated >= 0 then begin
      if s.me <> s.dedicated then Action.Listen
      else begin
        let w = dedicated_listener s ~slot in
        match Pqueue.oldest_to queue w with
        | Some p -> Action.Transmit (Message.packet_only p)
        | None -> Action.Listen
      end
    end
    else begin
      match main_my_dest s ~slot with
      | None -> Action.Listen
      | Some w ->
        (match Pqueue.oldest_to queue w with
         | Some p -> Action.Transmit (Message.packet_only p)
         | None -> Action.Listen)
    end
  | Auxiliary, off ->
    let i, j = aux_pos s off in
    if s.me <> i || i = j then Action.Listen
    else begin
      match aux_packet s ~queue ~j with
      | Some p -> Action.Transmit (Message.packet_only p)
      | None -> Action.Listen
    end

let observe s ~round ~queue:_ ~feedback =
  let off = round - s.window_start in
  match stage_of s off with
  | Gossip, off ->
    let i, j, r = gossip_pos s off in
    if s.me <> j || i = j then Reaction.No_reaction
    else begin
      let heard_packet =
        match feedback with
        | Feedback.Heard m -> m.Message.packet
        | Feedback.Silence | Feedback.Collision -> None
      in
      let bit = heard_packet <> None in
      (if r = 0 then s.is_large.(i) <- bit
       else if r = 1 then (if bit then s.over_l.(i) <- true)
       else begin
         let idx = (r - 2) / s.lg_l in
         let cell =
           match idx with
           | 0 -> s.qsize
           | 1 -> s.cnt_me
           | _ -> s.cnt_below
         in
         cell.(i) <- (2 * cell.(i)) + Bool.to_int bit
       end);
      match heard_packet with
      | Some p when p.Packet.dst <> s.me ->
        Hashtbl.replace s.adopted p.Packet.id ();
        Reaction.Adopt_heard_packet
      | Some _ | None -> Reaction.No_reaction
    end
  | Main, _ | Auxiliary, _ -> Reaction.No_reaction

let offline_tick s ~round ~queue = sync s ~round ~queue

let sparse = None

include Algorithm.Marshal_codec (struct
  type nonrec state = state
end)
