open Mac_channel

type state = { me : int; n : int }

let name = "pair-tdma"
let plain_packet = true
let direct = true
let oblivious = true
let required_cap ~n:_ ~k:_ = 2

(* Round t serves ordered pair number t mod n(n-1), enumerated as
   (s, d) = (idx / (n-1), skip-diagonal of idx mod (n-1)). *)
let pair_of_round ~n ~round =
  let idx = round mod (n * (n - 1)) in
  let s = idx / (n - 1) in
  let r = idx mod (n - 1) in
  let d = if r >= s then r + 1 else r in
  (s, d)

let static_schedule =
  Some
    (fun ~n ~k:_ ~me ~round ->
      let s, d = pair_of_round ~n ~round in
      me = s || me = d)

let create ~n ~k:_ ~me = { me; n }

let on_duty s ~round ~queue:_ =
  let src, dst = pair_of_round ~n:s.n ~round in
  s.me = src || s.me = dst

let act s ~round ~queue =
  let src, dst = pair_of_round ~n:s.n ~round in
  if s.me <> src then Action.Listen
  else
    match Pqueue.oldest_such queue (fun p -> p.Packet.dst = dst) with
    | Some p -> Action.Transmit (Message.packet_only p)
    | None -> Action.Listen

let observe _ ~round:_ ~queue:_ ~feedback:_ = Reaction.No_reaction

let offline_tick _ ~round:_ ~queue:_ = ()

(* The schedule is a pure function of the round with an O(1) inverse, and
   stations carry no evolving state, so the full sparse contract holds:
   [on_set] is the scheduled pair; the next round at which anything can be
   transmitted is the minimum, over queued (source, destination) pairs, of
   the next round serving that ordered pair. *)
let sparse =
  Some
    (fun ~n ~k:_ ->
      let cycle = n * (n - 1) in
      let on_set ~round =
        let s, d = pair_of_round ~n ~round in
        if s < d then [| s; d |] else [| d; s |]
      in
      let on_count_in ~from ~until ~cap =
        let m = until - from in
        if m <= 0 then (0, 0, 0) else (2 * m, 2, if 2 > cap then m else 0)
      in
      (* Next round >= round serving ordered pair (src, dst): the pair's
         fixed slot in the n(n-1) cycle, shifted to the current cycle. *)
      let next_serving ~round ~src ~dst =
        let idx = (src * (n - 1)) + (if dst > src then dst - 1 else dst) in
        round + ((idx - round) mod cycle + cycle) mod cycle
      in
      let next_active ~round ~nonempty =
        List.fold_left
          (fun best (src, q) ->
            List.fold_left
              (fun best dst ->
                let r = next_serving ~round ~src ~dst in
                match best with
                | Some b when b <= r -> best
                | _ -> Some r)
              best (Pqueue.dests q))
          None nonempty
      in
      { Algorithm.on_set; on_count_in; next_active })

include Algorithm.Marshal_codec (struct
  type nonrec state = state
end)
