open Mac_channel

type state = { me : int; n : int }

let name = "pair-tdma"
let plain_packet = true
let direct = true
let oblivious = true
let required_cap ~n:_ ~k:_ = 2

(* Round t serves ordered pair number t mod n(n-1), enumerated as
   (s, d) = (idx / (n-1), skip-diagonal of idx mod (n-1)). *)
let pair_of_round ~n ~round =
  let idx = round mod (n * (n - 1)) in
  let s = idx / (n - 1) in
  let r = idx mod (n - 1) in
  let d = if r >= s then r + 1 else r in
  (s, d)

let static_schedule =
  Some
    (fun ~n ~k:_ ~me ~round ->
      let s, d = pair_of_round ~n ~round in
      me = s || me = d)

let create ~n ~k:_ ~me = { me; n }

let on_duty s ~round ~queue:_ =
  let src, dst = pair_of_round ~n:s.n ~round in
  s.me = src || s.me = dst

let act s ~round ~queue =
  let src, dst = pair_of_round ~n:s.n ~round in
  if s.me <> src then Action.Listen
  else
    match Pqueue.oldest_such queue (fun p -> p.Packet.dst = dst) with
    | Some p -> Action.Transmit (Message.packet_only p)
    | None -> Action.Listen

let observe _ ~round:_ ~queue:_ ~feedback:_ = Reaction.No_reaction

let offline_tick _ ~round:_ ~queue:_ = ()

include Algorithm.Marshal_codec (struct
  type nonrec state = state
end)
