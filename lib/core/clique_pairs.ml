type t = {
  n : int;
  k : int;
  set_size : int;
  sets : int;
  pairs : (int * int) array;
  members : int array array;
}

let effective_k ~n ~k =
  if n < 3 then invalid_arg "Clique_pairs: n must be >= 3";
  if k < 2 || k >= n then invalid_arg "Clique_pairs: need 2 <= k < n";
  let fits candidate =
    candidate >= 2
    && candidate mod 2 = 0
    && 2 * n mod candidate = 0
    && 3 * candidate <= 2 * n
  in
  let rec search candidate =
    if fits candidate then candidate else search (candidate - 1)
  in
  search (min k (2 * n / 3))

let make ~n ~k =
  let k = effective_k ~n ~k in
  let set_size = k / 2 in
  let sets = 2 * n / k in
  let pairs = Combi.subset_pairs ~sets in
  let members =
    Array.map
      (fun (a, b) ->
        Array.init k (fun i ->
            if i < set_size then (a * set_size) + i
            else (b * set_size) + i - set_size))
      pairs
  in
  { n; k; set_size; sets; pairs; members }

let pair_count t = Array.length t.pairs

let active_pair t ~round = round mod pair_count t

let set_of_station t station = station / t.set_size

let member_pairs t station =
  let my_set = set_of_station t station in
  let result = ref [] in
  for p = pair_count t - 1 downto 0 do
    let a, b = t.pairs.(p) in
    if a = my_set || b = my_set then result := p :: !result
  done;
  !result

let in_pair t ~pair station =
  let a, b = t.pairs.(pair) in
  let s = set_of_station t station in
  s = a || s = b
