open Mac_channel

type state = {
  me : int;
  big_threshold : int;
  list : Mbtf_list.t;
}

let name = "mbtf"
let plain_packet = false
let direct = true
let oblivious = true
let required_cap ~n ~k:_ = n
let static_schedule = Some (fun ~n:_ ~k:_ ~me:_ ~round:_ -> true)

let create ~n ~k:_ ~me =
  let members = Array.init n (fun i -> i) in
  { me; big_threshold = n; list = Mbtf_list.create ~members }

let on_duty _ ~round:_ ~queue:_ = true

let act s ~round:_ ~queue =
  if Mbtf_list.holder s.list <> s.me then Action.Listen
  else
    match Pqueue.oldest queue with
    | None -> Action.Listen
    | Some p ->
      let big = Pqueue.size queue >= s.big_threshold in
      Action.Transmit (Message.make ~packet:p [ Message.Flag big ])

let observe s ~round:_ ~queue:_ ~feedback =
  (match feedback with
   | Feedback.Heard m ->
     (match m.Message.control with
      | [ Message.Flag true ] -> Mbtf_list.note_heard_big s.list
      | _ -> Mbtf_list.note_heard_small s.list)
   | Feedback.Silence | Feedback.Collision -> Mbtf_list.note_silence s.list);
  Reaction.No_reaction

let offline_tick _ ~round:_ ~queue:_ = ()

let sparse = None

include Algorithm.Marshal_codec (struct
  type nonrec state = state
end)
