open Mac_channel

type state = {
  me : int;
  n : int;
  mutable stack : (int * int) list;
      (* Enabled intervals [lo, hi), top of stack first. Invariants: the
         stack is never empty, every interval is non-empty, and the
         intervals partition a suffix of the original enabled set — so the
         stack depth never exceeds [n]. All stations keep identical copies
         (they all hear the same ternary feedback). *)
}

let name = "fs-tree"
let plain_packet = true
let direct = true
let oblivious = true
let required_cap ~n ~k:_ = n
let static_schedule = Some (fun ~n:_ ~k:_ ~me:_ ~round:_ -> true)
let create ~n ~k:_ ~me = { me; n; stack = [ (0, n) ] }

let top s = match s.stack with iv :: _ -> iv | [] -> assert false
let on_duty _ ~round:_ ~queue:_ = true

let act s ~round:_ ~queue =
  let lo, hi = top s in
  if s.me < lo || s.me >= hi then Action.Listen
  else
    match Pqueue.oldest queue with
    | Some p -> Action.Transmit (Message.packet_only p)
    | None -> Action.Listen

let observe s ~round:_ ~queue:_ ~feedback =
  (match feedback with
  | Feedback.Heard _ ->
    (* Exactly one station in the enabled interval transmitted; it keeps
       the interval (withholding) until it runs dry and yields by silence. *)
    ()
  | Feedback.Silence -> (
    (* The enabled interval holds no pending packets: retire it. When the
       last interval retires the search restarts over the full ring. *)
    match s.stack with
    | _ :: (_ :: _ as rest) -> s.stack <- rest
    | _ -> s.stack <- [ (0, s.n) ])
  | Feedback.Collision ->
    let lo, hi = top s in
    if hi - lo > 1 then begin
      (* Two or more contenders: binary-split the interval, left half
         first (the tree-search step of the full-sensing protocol). *)
      let mid = (lo + hi) / 2 in
      s.stack <- (lo, mid) :: (mid, hi) :: List.tl s.stack
    end
    (* A collision on a singleton interval can only be channel noise or
       jamming; the singleton keeps the floor and retries. *));
  Reaction.No_reaction

let offline_tick _ ~round:_ ~queue:_ = ()
let sparse = None

include Algorithm.Marshal_codec (struct
  type nonrec state = state
end)
