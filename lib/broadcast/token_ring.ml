type t = {
  members : int array;
  mutable index : int;
  mutable phase : int;
}

let create ~members =
  if Array.length members = 0 then invalid_arg "Token_ring.create: empty";
  { members = Array.copy members; index = 0; phase = 0 }

let members t = Array.copy t.members

let size t = Array.length t.members

let holder t = t.members.(t.index)

let holder_index t = t.index

let phase t = t.phase

let note_heard _t = ()

let note_silence t =
  t.index <- t.index + 1;
  if t.index = Array.length t.members then begin
    t.index <- 0;
    t.phase <- t.phase + 1
  end
