(** Move-Big-To-Front (reference [17]): stable for injection rate 1 on a
    channel without energy cap.

    A token traverses the station list. A holder with at least
    [big_threshold] (= n) queued packets transmits with a "big" control bit,
    moves to the front of the list and keeps the token; a holder below the
    threshold transmits one packet (token advances), and an empty holder
    stays silent (token advances). The subroutine of the paper's k-Subsets
    algorithm. *)

include Mac_channel.Algorithm.S
