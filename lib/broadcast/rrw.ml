include Ring_broadcast.Make (struct
  let name = "rrw"
  let snapshot_policy = `On_token
end)
