include Ring_broadcast.Make (struct
  let name = "of-rrw"
  let snapshot_policy = `On_phase
end)
