(** Full-sensing broadcast by replicated binary tree search.

    The full-sensing family (Chlebus–Kowalski–Rokicki, "Maximum Throughput
    of Multiple Access Channels in Adversarial Environments") lets every
    station read the channel's full ternary feedback — silence, collision,
    or a heard message — every round, and requires nothing else: no token,
    no control bits, plain packets only.

    All stations replicate a stack of station intervals, initially the
    whole ring [0, n). Each round every station inside the top interval
    with a pending packet transmits its oldest packet:

    - [Heard]: the lone transmitter keeps the floor and continues draining
      its queue (withholding, as in RRW) until it falls silent;
    - [Silence]: the top interval has no pending packets and is popped
      (the empty stack resets to the full ring);
    - [Collision]: the top interval is split in half, left half searched
      first — the classical tree-search resolution. A collision on a
      singleton interval is attributable only to jamming or noise, so the
      singleton retries unchanged.

    Because every station applies the same transition to the same feedback,
    the stacks stay identical without any messages — this is exactly the
    knowledge a full-sensing algorithm may legally extract from the
    channel. Crash-restarted stations re-enter with a fresh full-ring
    stack; their copy re-synchronises with the survivors' at the next
    full-ring reset (divergence until then is tolerated the same way the
    token-ring variants tolerate it). *)

include Mac_channel.Algorithm.S
