open Mac_channel

type state = {
  me : int;
  rng : Rng.t;
  mutable window_exp : int;
  mutable sent : bool;  (* transmitted this round, awaiting the outcome *)
}

let max_exp = 10

let algorithm ?(seed = 0) () : Algorithm.t =
  let module M = struct
    type nonrec state = state

    let name = Printf.sprintf "backoff(seed=%d)" seed
    let plain_packet = true
    let direct = true
    let oblivious = true
    let required_cap ~n ~k:_ = n
    let static_schedule = Some (fun ~n:_ ~k:_ ~me:_ ~round:_ -> true)

    let create ~n:_ ~k:_ ~me =
      (* Mix the station id into the shared seed so stations draw
         independent streams while the whole system stays a pure function
         of [seed]. *)
      { me;
        rng = Rng.create ~seed:(seed + (0x9E3779B9 * (me + 1)));
        window_exp = 0;
        sent = false }

    let on_duty _ ~round:_ ~queue:_ = true

    let act s ~round:_ ~queue =
      match Pqueue.oldest queue with
      | None -> Action.Listen
      | Some p ->
        if Rng.int s.rng (1 lsl s.window_exp) = 0 then begin
          s.sent <- true;
          Action.Transmit (Message.packet_only p)
        end
        else Action.Listen

    (* Ack-based legality: feedback is inspected only in rounds this
       station transmitted, i.e. only the fate of its own packet. *)
    let observe s ~round:_ ~queue:_ ~feedback =
      if s.sent then begin
        s.sent <- false;
        match feedback with
        | Feedback.Heard _ -> s.window_exp <- 0
        | Feedback.Collision -> s.window_exp <- min max_exp (s.window_exp + 1)
        | Feedback.Silence -> ()
      end;
      Reaction.No_reaction

    let offline_tick _ ~round:_ ~queue:_ = ()
    let sparse = None

    include Algorithm.Marshal_codec (struct
      type nonrec state = state
    end)
  end in
  (module M)
