(** Seeded randomised binary exponential backoff (contrast baseline).

    The classical randomised contender for the adversarial-queuing
    broadcast problem, included as the baseline the deterministic families
    are measured against (both cited papers prove their deterministic
    algorithms dominate backoff under adversarial injection, which the
    matrix driver makes observable).

    A station holding packets transmits its oldest with probability
    [2^-w] each round, where [w] is its current window exponent: reset to
    0 by a successful transmission, incremented (capped at 10) when its
    own transmission collides. Feedback is read only in rounds the station
    itself transmitted, so the algorithm sits in the acknowledgment-based
    family.

    All randomness flows from the explicit [seed] through per-station
    {!Mac_channel.Rng} streams — runs are reproducible bit-for-bit, the
    engine/oracle differential harness applies unchanged, and the state
    (including the generator) round-trips through checkpoints. *)

val algorithm : ?seed:int -> unit -> Mac_channel.Algorithm.t
(** [algorithm ~seed ()] instantiates the family for one seed; the seed is
    embedded in the algorithm's [name]. Default seed 0. *)
