(** Replicated station-list state for Move-Big-To-Front (Chlebus, Kowalski,
    Rokicki 2009, the paper's reference [17]).

    The token traverses an ordered list of members. When the holder
    announces it is big (it has at least the threshold many packets), it
    moves to the front of the list and keeps the token, transmitting again
    next round; a non-big transmission or a silent round passes the token to
    the next list position. All members update identical copies from the
    shared feedback (the big announcement is a control bit in the heard
    message). *)

type t

val create : members:int array -> t

val holder : t -> int

val order : t -> int array
(** Current list order, front first (for tests). *)

val note_heard_big : t -> unit
(** The holder announced big: move it to the front; it keeps the token. *)

val note_heard_small : t -> unit
(** The holder transmitted without the big flag: token advances. *)

val note_silence : t -> unit
(** Silent round: token advances. *)
