(** Old-First-Round-Robin-Withholding (reference [3]): like {!Rrw}, but the
    holder may only transmit packets that were already queued when the
    current phase (complete token cycle) began. The building block of the
    paper's k-Cycle and k-Clique algorithms. *)

include Mac_channel.Algorithm.S
