open Mac_channel

type state = { me : int; n : int }

let name = "ack-rr"
let plain_packet = true
let direct = true
let oblivious = true
let required_cap ~n ~k:_ = n
let static_schedule = Some (fun ~n:_ ~k:_ ~me:_ ~round:_ -> true)
let create ~n ~k:_ ~me = { me; n }
let on_duty _ ~round:_ ~queue:_ = true

let act s ~round ~queue =
  if round mod s.n <> s.me then Action.Listen
  else
    match Pqueue.oldest queue with
    | Some p -> Action.Transmit (Message.packet_only p)
    | None -> Action.Listen

let observe _ ~round:_ ~queue:_ ~feedback:_ = Reaction.No_reaction
let offline_tick _ ~round:_ ~queue:_ = ()

(* The round-robin slot assignment is pure in the round number, so the
   sparse engine can skip silent stretches analytically: every station is
   always on, and the next possibly-audible round is the first slot of a
   station that holds packets. *)
let sparse =
  Some
    (fun ~n ~k:_ ->
      let on_set ~round:_ = Array.init n Fun.id in
      let on_count_in ~from ~until ~cap =
        let m = until - from in
        if m <= 0 then (0, 0, 0) else (n * m, n, if n > cap then m else 0)
      in
      let next_active ~round ~nonempty =
        List.fold_left
          (fun best (src, _q) ->
            let r = round + ((((src - round) mod n) + n) mod n) in
            match best with Some b when b <= r -> best | _ -> Some r)
          None nonempty
      in
      { Algorithm.on_set; on_count_in; next_active })

include Algorithm.Marshal_codec (struct
  type nonrec state = state
end)
