(** Acknowledgment-based broadcast: collision-free round-robin TDMA.

    The acknowledgment-based family (Aldawsari–Chlebus–Kowalski,
    "Broadcasting on Adversarial Multiple Access Channels") restricts what
    a station may learn from the channel: only the fate of its *own*
    transmissions — a packet either went through (the implicit
    acknowledgment of hearing it back) or it did not. Stations may not act
    on silence-vs-collision feedback from rounds in which they listened.

    The schedule that needs no feedback at all is time division: station
    [i] owns every round [r] with [r mod n = i] and transmits its oldest
    pending packet in its slot, listening otherwise. A successful slot is
    its own acknowledgment (the engine dequeues the packet on [Heard]); a
    jammed slot leaves the packet queued and it is retried in the owner's
    next slot — the algorithm never even inspects the feedback, which makes
    its legality under the ack-based restriction trivial.

    No two stations ever share a slot, so the algorithm is collision-free
    on a fault-free channel, at the price of a factor-[n] slowdown: it is
    stable exactly for injection rates below [1/n] against single-queue
    bursts, the baseline the adaptive families are measured against.

    The slot assignment is pure in the round number, so the module exposes
    a {!Mac_channel.Algorithm.sparse} hook and participates in the sparse
    engine's analytic skip-ahead. *)

include Mac_channel.Algorithm.S
