type t = {
  order : int array; (* station names, front first *)
  mutable index : int;
}

let create ~members =
  if Array.length members = 0 then invalid_arg "Mbtf_list.create: empty";
  { order = Array.copy members; index = 0 }

let holder t = t.order.(t.index)

let order t = Array.copy t.order

let note_heard_big t =
  (* Move the holder to the front; entries before it shift back by one. *)
  let station = t.order.(t.index) in
  for i = t.index downto 1 do
    t.order.(i) <- t.order.(i - 1)
  done;
  t.order.(0) <- station;
  t.index <- 0

let advance t = t.index <- (t.index + 1) mod Array.length t.order

let note_heard_small t = advance t

let note_silence t = advance t
