open Mac_channel

let full_sensing () : Algorithm.t = (module Fs_tree)
let ack_based () : Algorithm.t = (module Ack_rr)

module Make (P : sig
  val name : string
  val snapshot_policy : [ `On_token | `On_phase ]
end) : Algorithm.S = struct
  type state = {
    me : int;
    ring : Token_ring.t;
    eligible : (int, unit) Hashtbl.t;
    mutable need_snapshot : bool;
  }

  let name = P.name
  let plain_packet = true
  let direct = true
  let oblivious = true
  let required_cap ~n ~k:_ = n
  let static_schedule = Some (fun ~n:_ ~k:_ ~me:_ ~round:_ -> true)

  let create ~n ~k:_ ~me =
    let members = Array.init n (fun i -> i) in
    { me; ring = Token_ring.create ~members;
      eligible = Hashtbl.create 64;
      (* The initial holder snapshots at its first turn. *)
      need_snapshot = (me = 0) }

  let refill s ~queue =
    Hashtbl.reset s.eligible;
    Pqueue.iter queue ~f:(fun p -> Hashtbl.replace s.eligible p.Packet.id ())

  let on_duty _ ~round:_ ~queue:_ = true

  let act s ~round:_ ~queue =
    if Token_ring.holder s.ring <> s.me then Action.Listen
    else begin
      if s.need_snapshot then begin
        refill s ~queue;
        s.need_snapshot <- false
      end;
      match Pqueue.oldest_such queue (fun p -> Hashtbl.mem s.eligible p.Packet.id) with
      | Some p -> Action.Transmit (Message.packet_only p)
      | None -> Action.Listen
    end

  let observe s ~round:_ ~queue ~feedback =
    (match feedback with
     | Feedback.Heard _ -> Token_ring.note_heard s.ring
     | Feedback.Silence | Feedback.Collision ->
       let phase_before = Token_ring.phase s.ring in
       let holder_before = Token_ring.holder s.ring in
       Token_ring.note_silence s.ring;
       (match P.snapshot_policy with
        | `On_phase ->
          if Token_ring.phase s.ring <> phase_before then refill s ~queue
        | `On_token ->
          (* Re-arm when the token (re)arrives: either it just moved here
             from another station, or the ring wrapped a full phase while
             this station kept it throughout — the n=1 ring (or a ring
             whose other members all crashed) wraps on every silent round,
             so without the phase test the snapshot would never re-arm and
             later-injected packets would stay ineligible forever. *)
          if
            Token_ring.holder s.ring = s.me
            && (holder_before <> s.me
                || Token_ring.phase s.ring <> phase_before)
          then s.need_snapshot <- true));
    Reaction.No_reaction

  let offline_tick _ ~round:_ ~queue:_ = ()

  let sparse = None

  include Algorithm.Marshal_codec (struct
    type nonrec state = state
  end)
end
