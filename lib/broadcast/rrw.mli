(** Round-Robin-Withholding (reference [18]): a token cycles through all
    stations; the holder transmits the packets it had when the token arrived,
    one per round; a silent round passes the token. All stations stay on. *)

include Mac_channel.Algorithm.S
