(** Shared core of the withholding ring broadcast algorithms (RRW and
    OF-RRW, the paper's references [18] and [3]), plus the entry points of
    the two cross-paper broadcast families.

    The ring variants run all stations switched on permanently (they
    predate the energy cap; as routing algorithms they are n-energy-
    oblivious and direct) and pass a token around the ring of all stations,
    advancing on silence. They differ only in when a station fixes the set
    of packets it may transmit:

    - [`On_token]: packets present when the token arrives (RRW — packets
      arriving while holding the token are withheld until the next visit);
    - [`On_phase]: packets present when the current phase began, a phase
      being a completed token cycle (OF-RRW — "old-first"). *)

val full_sensing : unit -> Mac_channel.Algorithm.t
(** The full-sensing broadcast family's representative: {!Fs_tree},
    replicated binary tree search over the full ternary channel feedback
    (Chlebus–Kowalski–Rokicki, "Maximum Throughput of Multiple Access
    Channels in Adversarial Environments"). *)

val ack_based : unit -> Mac_channel.Algorithm.t
(** The acknowledgment-based family's representative: {!Ack_rr},
    collision-free round-robin TDMA that reads nothing from the channel
    beyond the fate of its own transmissions (Aldawsari–Chlebus–Kowalski,
    "Broadcasting on Adversarial Multiple Access Channels"). *)

module Make (P : sig
  val name : string
  val snapshot_policy : [ `On_token | `On_phase ]
end) : Mac_channel.Algorithm.S
