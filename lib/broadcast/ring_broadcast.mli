(** Shared core of the withholding ring broadcast algorithms (RRW and
    OF-RRW, the paper's references [18] and [3]).

    Both run all stations switched on permanently (they predate the energy
    cap; as routing algorithms they are n-energy-oblivious and direct) and
    pass a token around the ring of all stations, advancing on silence. They
    differ only in when a station fixes the set of packets it may transmit:

    - [`On_token]: packets present when the token arrives (RRW — packets
      arriving while holding the token are withheld until the next visit);
    - [`On_phase]: packets present when the current phase began, a phase
      being a completed token cycle (OF-RRW — "old-first"). *)

exception Unimplemented of string
(** Raised by entry points of broadcast variants that are named in the
    cross-paper matrix (ROADMAP item 4) but not implemented yet. The
    message says which variant and where the plan lives. *)

val full_sensing : unit -> Mac_channel.Algorithm.t
(** Full-sensing broadcast family (Broadcasting on Adversarial MAC).
    Not implemented: always raises {!Unimplemented}. This is a loud
    placeholder so a catalog or CLI wiring it in fails with a pointer
    to ROADMAP item 4 instead of silently running the wrong thing. *)

val ack_based : unit -> Mac_channel.Algorithm.t
(** Acknowledgment-based broadcast family. Not implemented: always
    raises {!Unimplemented} (same rationale as {!full_sensing}). *)

module Make (P : sig
  val name : string
  val snapshot_policy : [ `On_token | `On_phase ]
end) : Mac_channel.Algorithm.S
