(** Shared core of the withholding ring broadcast algorithms (RRW and
    OF-RRW, the paper's references [18] and [3]).

    Both run all stations switched on permanently (they predate the energy
    cap; as routing algorithms they are n-energy-oblivious and direct) and
    pass a token around the ring of all stations, advancing on silence. They
    differ only in when a station fixes the set of packets it may transmit:

    - [`On_token]: packets present when the token arrives (RRW — packets
      arriving while holding the token are withheld until the next visit);
    - [`On_phase]: packets present when the current phase began, a phase
      being a completed token cycle (OF-RRW — "old-first"). *)

module Make (P : sig
  val name : string
  val snapshot_policy : [ `On_token | `On_phase ]
end) : Mac_channel.Algorithm.S
