(** Replicated token state for round-robin-withholding style algorithms.

    A conceptual token travels a fixed cyclic list of member stations. Every
    member keeps its own copy of this structure and feeds it the same channel
    feedback, so the copies stay identical without any token messages: a
    heard message means the holder continues, a silent round means the holder
    is done and the token advances. A completed cycle ends a phase.

    The structure is deterministic; [note_silence]/[note_heard] must be
    called exactly once per round the ring is live (for k-Cycle, rounds in
    which the group is active). *)

type t

val create : members:int array -> t
(** Requires a non-empty array of distinct station names. The token starts
    at [members.(0)], in phase 0. *)

val members : t -> int array

val size : t -> int

val holder : t -> int
(** Station name currently holding the token. *)

val holder_index : t -> int

val phase : t -> int
(** Completed token cycles. Increments when the token wraps to the first
    member. *)

val note_heard : t -> unit
(** The holder transmitted and was heard: it keeps the token. *)

val note_silence : t -> unit
(** Silent round: the token advances to the next member (possibly ending the
    phase). *)
