module Imap = Map.Make (Int)

(* Per-destination structures are keyed hashtables holding only the
   destinations currently present, not n-sized arrays: a queue costs O(1)
   memory regardless of the system size, which is what lets the engine
   materialise n = 10^5+ stations (n queues of n-sized arrays would be
   O(n^2)). Invariant: [by_dest] and [dest_count] have a binding for a
   destination iff at least one packet to it is queued. *)
type t = {
  n : int;
  mutable by_arrival : Packet.t Imap.t; (* key: arrival sequence number *)
  by_dest : (int, Packet.t Imap.t) Hashtbl.t; (* same keys, split by dest *)
  seq_of_id : (int, int) Hashtbl.t;
  dest_count : (int, int) Hashtbl.t;
  mutable next_seq : int;
}

let create ~n =
  { n; by_arrival = Imap.empty;
    by_dest = Hashtbl.create 8;
    seq_of_id = Hashtbl.create 8;
    dest_count = Hashtbl.create 8; next_seq = 0 }

let add t (p : Packet.t) =
  if Hashtbl.mem t.seq_of_id p.id then
    invalid_arg "Pqueue.add: duplicate packet id";
  assert (p.dst >= 0 && p.dst < t.n);
  Hashtbl.replace t.seq_of_id p.id t.next_seq;
  t.by_arrival <- Imap.add t.next_seq p t.by_arrival;
  let dm =
    match Hashtbl.find_opt t.by_dest p.dst with
    | Some m -> m
    | None -> Imap.empty
  in
  Hashtbl.replace t.by_dest p.dst (Imap.add t.next_seq p dm);
  let dc =
    match Hashtbl.find_opt t.dest_count p.dst with Some c -> c | None -> 0
  in
  Hashtbl.replace t.dest_count p.dst (dc + 1);
  t.next_seq <- t.next_seq + 1

let remove t (p : Packet.t) =
  match Hashtbl.find_opt t.seq_of_id p.id with
  | None -> false
  | Some seq ->
    let stored = Imap.find seq t.by_arrival in
    Hashtbl.remove t.seq_of_id p.id;
    t.by_arrival <- Imap.remove seq t.by_arrival;
    (match Hashtbl.find_opt t.dest_count stored.dst with
     | Some 1 ->
       Hashtbl.remove t.dest_count stored.dst;
       Hashtbl.remove t.by_dest stored.dst
     | Some c ->
       Hashtbl.replace t.dest_count stored.dst (c - 1);
       let dm = Hashtbl.find t.by_dest stored.dst in
       Hashtbl.replace t.by_dest stored.dst (Imap.remove seq dm)
     | None -> assert false);
    true

let mem t (p : Packet.t) = Hashtbl.mem t.seq_of_id p.id

let size t = Hashtbl.length t.seq_of_id

let is_empty t = size t = 0

let count_to t d =
  match Hashtbl.find_opt t.dest_count d with Some c -> c | None -> 0

let count_to_below t j =
  Hashtbl.fold (fun d c total -> if d < j then total + c else total)
    t.dest_count 0

let dests t =
  List.sort compare (Hashtbl.fold (fun d _ acc -> d :: acc) t.dest_count [])

let oldest t =
  match Imap.min_binding_opt t.by_arrival with
  | None -> None
  | Some (_, p) -> Some p

let oldest_to t d =
  match Hashtbl.find_opt t.by_dest d with
  | None -> None
  | Some dm ->
    (match Imap.min_binding_opt dm with
     | None -> None
     | Some (_, p) -> Some p)

exception Found of Packet.t

let oldest_such t pred =
  try
    Imap.iter (fun _ p -> if pred p then raise (Found p)) t.by_arrival;
    None
  with Found p -> Some p

let oldest_to_such t d pred =
  match Hashtbl.find_opt t.by_dest d with
  | None -> None
  | Some dm -> (
    try
      Imap.iter (fun _ p -> if pred p then raise (Found p)) dm;
      None
    with Found p -> Some p)

let fold t ~init ~f = Imap.fold (fun _ p acc -> f acc p) t.by_arrival init

let iter t ~f = Imap.iter (fun _ p -> f p) t.by_arrival

let to_list t = List.rev (fold t ~init:[] ~f:(fun acc p -> p :: acc))

let drain t =
  let packets = to_list t in
  t.by_arrival <- Imap.empty;
  Hashtbl.reset t.by_dest;
  Hashtbl.reset t.seq_of_id;
  Hashtbl.reset t.dest_count;
  packets

let ids t =
  let h = Hashtbl.create (size t) in
  iter t ~f:(fun p -> Hashtbl.replace h p.id ());
  h
