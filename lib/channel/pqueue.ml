module Imap = Map.Make (Int)

type t = {
  n : int;
  mutable by_arrival : Packet.t Imap.t; (* key: arrival sequence number *)
  by_dest : Packet.t Imap.t array;      (* same keys, split by destination *)
  seq_of_id : (int, int) Hashtbl.t;
  dest_count : int array;
  mutable next_seq : int;
}

let create ~n =
  { n; by_arrival = Imap.empty;
    by_dest = Array.make n Imap.empty;
    seq_of_id = Hashtbl.create 64;
    dest_count = Array.make n 0; next_seq = 0 }

let add t (p : Packet.t) =
  if Hashtbl.mem t.seq_of_id p.id then
    invalid_arg "Pqueue.add: duplicate packet id";
  assert (p.dst >= 0 && p.dst < t.n);
  Hashtbl.replace t.seq_of_id p.id t.next_seq;
  t.by_arrival <- Imap.add t.next_seq p t.by_arrival;
  t.by_dest.(p.dst) <- Imap.add t.next_seq p t.by_dest.(p.dst);
  t.dest_count.(p.dst) <- t.dest_count.(p.dst) + 1;
  t.next_seq <- t.next_seq + 1

let remove t (p : Packet.t) =
  match Hashtbl.find_opt t.seq_of_id p.id with
  | None -> false
  | Some seq ->
    let stored = Imap.find seq t.by_arrival in
    Hashtbl.remove t.seq_of_id p.id;
    t.by_arrival <- Imap.remove seq t.by_arrival;
    t.by_dest.(stored.dst) <- Imap.remove seq t.by_dest.(stored.dst);
    t.dest_count.(stored.dst) <- t.dest_count.(stored.dst) - 1;
    true

let mem t (p : Packet.t) = Hashtbl.mem t.seq_of_id p.id

let size t = Hashtbl.length t.seq_of_id

let is_empty t = size t = 0

let count_to t d = t.dest_count.(d)

let count_to_below t j =
  let total = ref 0 in
  for d = 0 to j - 1 do
    total := !total + t.dest_count.(d)
  done;
  !total

let oldest t =
  match Imap.min_binding_opt t.by_arrival with
  | None -> None
  | Some (_, p) -> Some p

let oldest_to t d =
  match Imap.min_binding_opt t.by_dest.(d) with
  | None -> None
  | Some (_, p) -> Some p

exception Found of Packet.t

let oldest_such t pred =
  try
    Imap.iter (fun _ p -> if pred p then raise (Found p)) t.by_arrival;
    None
  with Found p -> Some p

let oldest_to_such t d pred =
  try
    Imap.iter (fun _ p -> if pred p then raise (Found p)) t.by_dest.(d);
    None
  with Found p -> Some p

let fold t ~init ~f = Imap.fold (fun _ p acc -> f acc p) t.by_arrival init

let iter t ~f = Imap.iter (fun _ p -> f p) t.by_arrival

let to_list t = List.rev (fold t ~init:[] ~f:(fun acc p -> p :: acc))

let drain t =
  let packets = to_list t in
  t.by_arrival <- Imap.empty;
  Array.fill t.by_dest 0 t.n Imap.empty;
  Hashtbl.reset t.seq_of_id;
  Array.fill t.dest_count 0 t.n 0;
  packets

let ids t =
  let h = Hashtbl.create (size t) in
  iter t ~f:(fun p -> Hashtbl.replace h p.id ());
  h
