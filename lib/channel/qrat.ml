type t = { num : int; den : int }

exception Overflow of string

let overflow op = raise (Overflow (Printf.sprintf "Qrat: %s overflow" op))

(* Overflow-checked native-int primitives. [checked_mul] relies on the
   division round-trip, which is exact for every non-wrapping product. *)
let checked_add a b =
  let s = a + b in
  if a >= 0 = (b >= 0) && s >= 0 <> (a >= 0) then overflow "add";
  s

let checked_mul a b =
  if a = 0 || b = 0 then 0
  else begin
    let p = a * b in
    if p / b <> a || (a = min_int && b = -1) then overflow "mul";
    p
  end

let checked_neg a = if a = min_int then overflow "neg" else -a

let rec gcd a b = if b = 0 then a else gcd b (a mod b)

let make num den =
  if den = 0 then invalid_arg "Qrat.make: zero denominator";
  let num, den = if den < 0 then (checked_neg num, checked_neg den) else (num, den) in
  let g = gcd (abs num) den in
  if g <= 1 then { num; den } else { num = num / g; den = den / g }

let of_int n = { num = n; den = 1 }

let zero = of_int 0
let one = of_int 1

let num t = t.num
let den t = t.den

let equal a b = a.num = b.num && a.den = b.den

let compare a b =
  if a.den = b.den then Stdlib.compare a.num b.num
  else begin
    (* Cross-multiply over the gcd-reduced denominators: token arithmetic
       keeps all values on a shared denominator lattice, so this usually
       shrinks the products by the whole common factor. *)
    let g = gcd a.den b.den in
    Stdlib.compare (checked_mul a.num (b.den / g)) (checked_mul b.num (a.den / g))
  end

let min a b = if compare a b <= 0 then a else b
let max a b = if compare a b >= 0 then a else b

let add a b =
  if a.den = b.den then make (checked_add a.num b.num) a.den
  else begin
    let g = gcd a.den b.den in
    let bd = b.den / g and ad = a.den / g in
    make
      (checked_add (checked_mul a.num bd) (checked_mul b.num ad))
      (checked_mul a.den bd)
  end

let neg a = { a with num = checked_neg a.num }

let sub a b = add a (neg b)

let mul a b =
  (* Cross-reduce first so intermediate products stay small. *)
  let g1 = gcd (abs a.num) b.den and g2 = gcd (abs b.num) a.den in
  let g1 = if g1 = 0 then 1 else g1 and g2 = if g2 = 0 then 1 else g2 in
  make
    (checked_mul (a.num / g1) (b.num / g2))
    (checked_mul (a.den / g2) (b.den / g1))

let mul_int a i = mul a (of_int i)

let floor a =
  if a.num >= 0 then a.num / a.den else -(((-a.num) + a.den - 1) / a.den)

let is_integer a = a.den = 1

let sign a = Stdlib.compare a.num 0

let to_float a = float_of_int a.num /. float_of_int a.den

(* Simplest rational that rounds back to exactly [f]: walk the continued
   fraction of |f|, returning the first convergent whose float quotient
   is [f] again. The usual decimal literals terminate almost immediately
   (0.1 -> 1/10 on the second convergent).

   When the double's exact dyadic value p/2^s fits in native ints, the
   walk runs Euclid on (p, 2^s) — partial quotients are exact and every
   convergent satisfies h <= p, k <= 2^s, so nothing can overflow, and
   the last convergent is p/2^s itself, whose quotient rounds back to
   [f] by construction: termination is certain. Only doubles with
   |exponent| so large that 2^s leaves the int range take the float
   walk, and those round-trip on their first convergents. *)
let of_float f =
  if not (Float.is_finite f) then invalid_arg "Qrat.of_float: not finite";
  if Float.is_integer f && Float.abs f <= 1e18 then of_int (int_of_float f)
  else begin
    let target = Float.abs f in
    let restore q = if f < 0.0 then neg q else q in
    let found h k = float_of_int h /. float_of_int k = target in
    let m, e = Float.frexp target in
    let p = int_of_float (Float.ldexp m 53) in
    let tz =
      let rec go p tz = if p land 1 = 0 then go (p lsr 1) (tz + 1) else tz in
      go p 0
    in
    let p = p asr tz and s = 53 - e - tz in
    if s >= 1 && s <= 62 then begin
      let rec walk num den h1 k1 h2 k2 =
        let a = num / den and r = num mod den in
        let h = (a * h1) + h2 and k = (a * k1) + k2 in
        if r = 0 || found h k then { num = h; den = k }
        else walk den r h k h1 k1
      in
      restore (walk p (1 lsl s) 1 0 0 1)
    end
    else begin
      let rec walk x h1 k1 h2 k2 =
        let a = int_of_float (Float.floor x) in
        let h = checked_add (checked_mul a h1) h2 in
        let k = checked_add (checked_mul a k1) k2 in
        let frac = x -. Float.floor x in
        if frac <= 0.0 || found h k then { num = h; den = k }
        else walk (1.0 /. frac) h k h1 k1
      in
      restore (walk target 1 0 0 1)
    end
  end

let to_string a =
  if a.den = 1 then string_of_int a.num
  else Printf.sprintf "%d/%d" a.num a.den

let pp ppf a = Format.pp_print_string ppf (to_string a)

let of_string s =
  let s = String.trim s in
  if s = "" then Error "empty rational"
  else
    match String.index_opt s '/' with
    | Some i ->
      let a = String.sub s 0 i
      and b = String.sub s (i + 1) (String.length s - i - 1) in
      (match (int_of_string_opt (String.trim a), int_of_string_opt (String.trim b)) with
       | Some n, Some d ->
         if d = 0 then Error (Printf.sprintf "%S: zero denominator" s)
         else Ok (make n d)
       | _ -> Error (Printf.sprintf "%S: expected INT/INT" s))
    | None -> (
      match int_of_string_opt s with
      | Some n -> Ok (of_int n)
      | None -> (
        match float_of_string_opt s with
        | Some f when Float.is_finite f -> Ok (of_float f)
        | _ -> Error (Printf.sprintf "%S: not a rational (INT, INT/INT or decimal)" s)))

let of_string_exn s =
  match of_string s with
  | Ok q -> q
  | Error msg -> invalid_arg ("Qrat.of_string_exn: " ^ msg)
