(** Typed channel events.

    One value per observable step of the simulated round: injections,
    mode switches, transmissions, channel resolution (silence, collision,
    a heard message), packet fate (delivery, relay adoption, stranding),
    energy-cap violations and the end-of-round marker. The engine emits
    them in order within a round, so a recorded stream is a complete
    journal: per-station queue sizes, on-sets and every counter in
    [Metrics.summary] can be reconstructed from it (see [Mac_sim.Sink]).

    Stations are identified by index; [round] is carried alongside the
    event by the emitting sink, not inside the variant. *)

type t =
  | Injected of { id : int; src : int; dst : int }
      (** The adversary injected packet [id] at [src] for [dst]. When
          [src = dst] the packet is delivered instantly and never queued
          (a [Delivered] with [hops = 0] follows). *)
  | Switched_on of { station : int }
      (** Mode edge: the station was off last round and is on now. *)
  | Switched_off of { station : int }
  | Transmit of { station : int; light : bool }
      (** The station transmitted; [light] means the message carried no
          packet. Emitted for every transmitter, colliding or not. *)
  | Silence
  | Collision of { stations : int list }  (** Two or more transmitters. *)
  | Heard of { station : int; bits : int; light : bool }
      (** Exactly one transmitter: everybody on hears [station]'s message
          carrying [bits] control bits. *)
  | Delivered of { id : int; from_ : int; dst : int; delay : int; hops : int }
      (** The heard packet reached its switched-on destination. [from_]
          is the transmitter (source or relay); [hops = 0] only for
          self-addressed packets delivered at injection. *)
  | Relayed of { id : int; from_ : int; relay : int; dst : int }
      (** The heard packet was adopted by [relay]. *)
  | Stranded of { id : int; station : int }
      (** Nobody consumed the heard packet; returned to the transmitter. *)
  | Cap_exceeded of { on_count : int; cap : int }
  | Adoption_conflict of { stations : int list }
  | Spurious_adoption of { stations : int list }
  | Round_end of { on_count : int; draining : bool }
      (** Always the last event of a round; [on_count] stations were on. *)
  | Station_crashed of { station : int; lost : int }
      (** Fault injection: the station crashed at the top of the round
          (before mode decisions); [lost] packets were dropped from its
          queue ([0] when the queue is retained). *)
  | Station_restarted of { station : int }
      (** Fault injection: a crashed station rebooted with fresh
          algorithm state and takes part from this round on. *)
  | Round_jammed of { transmitters : int; noise : bool }
      (** Fault injection: a jam or noise fault fired this round.
          [noise] marks spurious noise (forces a collision even with
          zero transmitters). A jam with at least one transmitter forces
          a collision; a jam of an empty round leaves the channel silent
          but is still recorded — [transmitters = 0] and [noise = false]
          then precedes a [Silence]. Otherwise the event immediately
          precedes the [Collision] it forces ([>= 2] transmitters: it
          merely annotates the natural collision). *)
  | Telemetry of { sample : (string * float) list }
      (** Live telemetry snapshot: the registry's counters and gauges as
          [(metric name, value)] pairs, in registration order, emitted by
          the engine on the configured cadence (see [Mac_sim.Telemetry]).
          Carries no channel semantics — replay-oriented consumers
          ignore it. *)

val notable : t -> bool
(** The historically traced subset: injections, collisions, light
    messages, deliveries, relays, faults, and protocol violations. [Transmit],
    [Silence], [Heard] of a packet, mode edges and [Round_end] are not
    notable — they exist for replay and timelines, not for eyeballing. *)

val to_string : t -> string
(** Compact human-readable form ("inject #3 0->2", "deliver #3 1->2
    (delay 4, hop 2)", ...) — the format the [Trace] ring buffer shows. *)

val to_json : round:int -> t -> string
(** One-line JSON object, e.g.
    [{"round":7,"type":"injected","id":3,"src":0,"dst":2}]. *)

val of_json_line : string -> (int * t, string) result
(** Parse a line produced by {!to_json} back into [(round, event)];
    [Error msg] on malformed input. The parser accepts any field order. *)
