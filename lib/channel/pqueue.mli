(** A station's private packet queue.

    The paper lets a station scan its queue and access any packet in
    negligible time, and transmit queued packets in arbitrary order; this
    structure therefore supports removal of arbitrary packets, per-destination
    counting (needed by Count-Hop and Adjust-Window gossip), and
    injection-order iteration (algorithms schedule packets in the order of
    their injection / adoption). Adopted packets count as newly arrived:
    their position in arrival order is the adoption time, not the original
    injection. *)

type t

val create : n:int -> t
(** [create ~n] is an empty queue for a system of [n] stations (destinations
    are in [0, n-1]). *)

val add : t -> Packet.t -> unit
(** Appends [p] in arrival order. Raises [Invalid_argument] if a packet with
    the same id is already present. *)

val remove : t -> Packet.t -> bool
(** [remove q p] removes the packet with [p]'s id; [false] if absent. *)

val mem : t -> Packet.t -> bool

val size : t -> int

val is_empty : t -> bool

val count_to : t -> int -> int
(** [count_to q d] is the number of queued packets with destination [d]. *)

val count_to_below : t -> int -> int
(** [count_to_below q j] is the number of queued packets with destination
    strictly less than [j] (the third Adjust-Window gossip number). *)

val dests : t -> int list
(** The destinations with at least one queued packet, ascending. O(d log d)
    in the number [d] of distinct destinations present — used by sparse
    [next_active] hooks to enumerate the pairs that could transmit. *)

val oldest : t -> Packet.t option
(** Earliest-arrived packet. *)

val oldest_to : t -> int -> Packet.t option
(** Earliest-arrived packet with the given destination. O(log size). *)

val oldest_such : t -> (Packet.t -> bool) -> Packet.t option
(** Earliest-arrived packet satisfying the predicate. *)

val oldest_to_such : t -> int -> (Packet.t -> bool) -> Packet.t option
(** Earliest-arrived packet with the given destination satisfying the
    predicate; scans only that destination's packets. *)

val fold : t -> init:'a -> f:('a -> Packet.t -> 'a) -> 'a
(** Folds in arrival order. *)

val iter : t -> f:(Packet.t -> unit) -> unit
(** Iterates in arrival order. *)

val to_list : t -> Packet.t list
(** Queued packets in arrival order. *)

val drain : t -> Packet.t list
(** [drain q] empties the queue in one pass and returns the packets in
    arrival order: equivalent to [to_list q] followed by [remove]-ing each
    returned packet, without the per-packet map surgery. Arrival sequence
    numbers are not reset, so packets added later still sort after any
    previously drained ones. *)

val ids : t -> (int, unit) Hashtbl.t
(** Fresh snapshot of the ids currently queued (used by algorithms to mark a
    cohort of packets as "old" at a phase boundary). *)
