(** Messages transmitted on the channel.

    A message consists of at most one packet and a string of control bits.
    Control payloads are kept structured (the simulator does not serialise
    them) but their size in bits is accounted by [control_bits] so that the
    paper's O(log n) control-bit budget can be audited per algorithm.
    Plain-packet algorithms must transmit messages satisfying [is_plain]. *)

type control =
  | Count of int           (** a non-negative numeric field *)
  | Flag of bool           (** a toggle bit *)
  | Schedule of int list   (** a list of round numbers (Orchestra teaching) *)

type t = private { packet : Packet.t option; control : control list }

val make : ?packet:Packet.t -> control list -> t

val packet_only : Packet.t -> t
(** A plain-packet message: one packet, no control bits. *)

val light : control list -> t
(** A message carrying no packet, only control bits. *)

val is_light : t -> bool
(** [true] when the message carries no packet. *)

val is_plain : t -> bool
(** [true] when the message is exactly one packet with no control bits. *)

val control_bits : t -> int
(** Size of the control payload in bits: [Flag] counts 1, [Count c] counts
    the binary length of [c] (at least 1), [Schedule l] counts the sum over
    its entries plus a length header. The packet's destination address is not
    control (per the paper). *)

val pp : Format.formatter -> t -> unit
