(** Deterministic pseudo-random number generator (SplitMix64).

    Simulations must be reproducible bit-for-bit across runs and platforms,
    so the library never touches [Stdlib.Random]; every source of randomness
    is an explicit [Rng.t] seeded by the caller. *)

type t

val create : seed:int -> t
(** [create ~seed] returns an independent generator. Equal seeds give equal
    streams. *)

val split : t -> t
(** [split t] derives a new independent generator from [t], advancing [t]. *)

val state : t -> int64
(** The full internal state, for checkpointing. *)

val set_state : t -> int64 -> unit
(** Restore a state previously read with {!state}. [set_state t (state t')]
    makes [t] produce exactly [t']'s future stream. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. Requires [bound > 0]. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val bool : t -> bool

val pick : t -> 'a array -> 'a
(** [pick t arr] is a uniform element of [arr]. Requires [arr] non-empty. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)
