type t = {
  cap : int;
  mutable rounds : int;
  mutable max_on : int;
  mutable total : int;
  mutable violations : int;
}

let create ~cap = { cap; rounds = 0; max_on = 0; total = 0; violations = 0 }

let cap t = t.cap

let record_round t ~on_count =
  t.rounds <- t.rounds + 1;
  t.total <- t.total + on_count;
  if on_count > t.max_on then t.max_on <- on_count;
  if on_count > t.cap then t.violations <- t.violations + 1

let rounds t = t.rounds

let max_on t = t.max_on

let total_station_rounds t = t.total

let mean_on t = if t.rounds = 0 then 0.0 else float_of_int t.total /. float_of_int t.rounds

let violations t = t.violations
